/**
 * @file
 * Shared helpers for the evaluation-reproduction benches: argument
 * handling, run-time scaling, parallel sweep execution and fixed-width
 * table output.
 *
 * Every bench accepts key=value arguments:
 *   iters=N      override the workload iteration count (0 = default)
 *   quick=1      reduce iteration counts ~4x for a fast smoke pass
 *   workloads=a,b,c   restrict to a subset of benchmarks
 *   jobs=N       sweep worker threads (default: hardware concurrency)
 *   batch=K      lockstep-batch up to K same-workload configs over one
 *                shared fetch stream (0/1 = off); stats and JSON are
 *                bit-identical to batch=1, only wall-clock changes
 *   bench_out=path    also write every result as JSON to `path`
 *   ff=N         fast-forward N instructions before the timed run
 *                (count keys accept k/m/g suffixes, e.g. ff=300m)
 *   bb_cache=0   use the step()-based reference interpreter for the
 *                functional paths (default: basic-block cache)
 *   iq_soa=0     use the object-per-entry segmented-IQ engine instead
 *                of the SoA engine (bit-identical; host speed only)
 *   ckpt_dir=path     persist/reuse warm-up checkpoints in `path`
 *   ckpt_reuse=0      disable the in-process sweep-level checkpoint
 *                     cache (each run fast-forwards cold again)
 *   journal=path      append-only JSONL result journal; restarting the
 *                     bench re-runs only unfinished/failed jobs
 *   retries=N    extra attempts for transient job errors (default 2)
 *   artifact_dir=path failure artifacts (pipeline dumps) land here
 *   watchdog_cycles=N no-commit deadlock watchdog window (0 = off)
 *   deadline_sec=S    per-job wall-clock deadline (0 = none)
 *
 * Unknown keys are rejected with a "did you mean" suggestion so a
 * typo'd override fails loudly instead of silently measuring the
 * wrong configuration.
 */

#ifndef SCIQ_BENCH_BENCH_UTIL_HH
#define SCIQ_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "sim/checkpoint.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "workload/workloads.hh"

namespace sciq {
namespace bench {

struct BenchArgs
{
    std::uint64_t iters = 0;  ///< 0 = kernel default
    bool quick = false;
    unsigned jobs = 0;        ///< 0 = hardware concurrency
    unsigned batch = 1;       ///< lockstep batch width (0/1 = off)
    std::string benchOut;     ///< JSON output path ("" = none)
    std::uint64_t ff = 0;     ///< fast-forward length (0 = none)
    std::string ckptDir;      ///< on-disk checkpoint cache ("" = none)
    bool ckptReuse = true;    ///< share warm-ups across the sweep
    std::string journal;      ///< resumable result journal ("" = off)
    unsigned retries = 2;     ///< transient-error retry budget
    std::string artifactDir;  ///< failure artifacts ("" = env/off)
    std::vector<std::string> workloads;
    ConfigMap raw;

    /** Every result produced through SweepBatch, for bench_out. */
    std::vector<RunResult> collected;
};

/**
 * Parse bench command-line arguments.  `extra_known` lists the keys a
 * particular bench reads beyond the shared set (e.g. iq_size); any
 * other key aborts with a suggestion.  Negative counts are rejected
 * up front so they cannot wrap around in the unsigned config fields.
 */
inline BenchArgs
parseArgs(int argc, char **argv, std::vector<std::string> default_wls,
          std::vector<std::string> extra_known = {})
{
    BenchArgs args;
    args.raw = ConfigMap::fromArgs(argc, argv);

    std::vector<std::string> known = {
        "iters",       "quick",       "workloads",       "jobs",
        "bench_out",   "ff",          "ckpt_dir",        "ckpt_reuse",
        "audit",       "audit_panic", "journal",         "retries",
        "artifact_dir", "watchdog_cycles", "deadline_sec", "bb_cache",
        "batch",       "iq_soa",
    };
    known.insert(known.end(), extra_known.begin(), extra_known.end());
    const std::string complaint = args.raw.unknownKeyMessage(known);
    if (!complaint.empty()) {
        std::fprintf(stderr, "ERROR: %s\n", complaint.c_str());
        std::exit(2);
    }
    for (const char *key : {"iters", "jobs", "batch", "ff", "retries",
                            "watchdog_cycles"}) {
        if (args.raw.getCount(key, 0) < 0) {
            std::fprintf(stderr, "ERROR: %s= must be >= 0\n", key);
            std::exit(2);
        }
    }
    if (args.raw.getDouble("deadline_sec", 0.0) < 0.0) {
        std::fprintf(stderr, "ERROR: deadline_sec= must be >= 0\n");
        std::exit(2);
    }

    args.iters =
        static_cast<std::uint64_t>(args.raw.getCount("iters", 0));
    args.quick = args.raw.getBool("quick", false);
    args.jobs = static_cast<unsigned>(args.raw.getInt("jobs", 0));
    args.batch = static_cast<unsigned>(args.raw.getCount("batch", 1));
    args.benchOut = args.raw.getString("bench_out", "");
    args.ff = static_cast<std::uint64_t>(args.raw.getCount("ff", 0));
    args.ckptDir = args.raw.getString("ckpt_dir", "");
    args.ckptReuse = args.raw.getBool("ckpt_reuse", true);
    args.journal = args.raw.getString("journal", "");
    args.retries = static_cast<unsigned>(args.raw.getInt("retries", 2));
    args.artifactDir = args.raw.getString("artifact_dir", "");
    std::string wls = args.raw.getString("workloads", "");
    if (wls.empty()) {
        args.workloads = std::move(default_wls);
    } else {
        std::size_t pos = 0;
        while (pos != std::string::npos) {
            auto comma = wls.find(',', pos);
            std::string tok = wls.substr(
                pos, comma == std::string::npos ? comma : comma - pos);
            // Skip empty tokens from stray/trailing commas ("a,,b",
            // "a,b,") instead of passing them on to workload lookup.
            if (!tok.empty())
                args.workloads.push_back(std::move(tok));
            pos = comma == std::string::npos ? comma : comma + 1;
        }
    }
    return args;
}

/** Apply the bench-wide iteration overrides to one configuration. */
inline void
applyArgs(SimConfig &cfg, const BenchArgs &args)
{
    cfg.wl.iterations = args.iters;
    if (args.quick && args.iters == 0) {
        // Quick mode: a fixed reduced iteration count (roughly a
        // quarter of the kernels' calibrated defaults).
        cfg.wl.iterations = 1500;
    }
    cfg.validate = false;  // benches measure; tests validate
    // Every bench accepts audit=1 to run under the invariant auditor.
    cfg.audit = args.raw.getBool("audit", false);
    cfg.auditPanic = args.raw.getBool("audit_panic", false);
    if (args.ff > 0)
        cfg.fastForward = args.ff;
    cfg.bbCache = args.raw.getBool("bb_cache", true);
    cfg.core.iq.soaLayout = args.raw.getBool("iq_soa", true);
    if (args.raw.has("watchdog_cycles")) {
        cfg.core.watchdogCycles = static_cast<Cycle>(
            args.raw.getCount("watchdog_cycles", 0));
    }
    cfg.deadlineSec = args.raw.getDouble("deadline_sec", 0.0);
}

/**
 * Deferred-execution batch over the SweepRunner.  A bench first add()s
 * every configuration it will report (remembering indices, or relying
 * on add order and next()), then calls run() once so all of them
 * execute in parallel, then formats its tables from the results.
 */
class SweepBatch
{
  public:
    explicit SweepBatch(BenchArgs &args) : args_(args) {}

    /** Queue one configuration; returns its result index. */
    std::size_t
    add(SimConfig cfg)
    {
        applyArgs(cfg, args_);
        configs_.push_back(std::move(cfg));
        return configs_.size() - 1;
    }

    /** Execute every queued configuration (jobs= worker threads). */
    void
    run()
    {
        // One shared checkpoint cache per sweep: each distinct warm-up
        // (workload x ff length) executes once and every other
        // configuration restores the snapshot.  ckpt_dir= additionally
        // persists the blobs so later sweeps skip warm-up entirely.
        bool anyFf = false;
        for (const SimConfig &cfg : configs_)
            anyFf = anyFf || cfg.fastForward > 0;
        if (anyFf && args_.ckptReuse) {
            auto cache =
                std::make_shared<CheckpointCache>(args_.ckptDir);
            for (SimConfig &cfg : configs_) {
                if (!cfg.ckptCache && cfg.ckptFile.empty())
                    cfg.ckptCache = cache;
            }
        }
        SweepRunner runner(args_.jobs);
        SweepRunner::Options options;
        options.journal = args_.journal;
        options.maxRetries = args_.retries;
        options.artifactDir = args_.artifactDir;
        options.batch = args_.batch;
        results_ = runner.run(configs_, options);
        for (const RunResult &r : results_) {
            if (!r.outcome.ok()) {
                std::fprintf(
                    stderr, "WARNING: %s/%s %s: [%s] %s\n",
                    r.workload.c_str(), r.iqKind.c_str(),
                    jobStatusName(r.outcome.status),
                    errorCodeName(r.outcome.code),
                    r.outcome.message.c_str());
            } else if (!r.haltedCleanly) {
                std::fprintf(
                    stderr,
                    "WARNING: %s/%s did not halt within the cycle cap\n",
                    r.workload.c_str(), r.iqKind.c_str());
            }
        }
        args_.collected.insert(args_.collected.end(), results_.begin(),
                               results_.end());
    }

    const RunResult &result(std::size_t i) const { return results_[i]; }

    /** Consume results in add() order. */
    const RunResult &next() { return results_[cursor_++]; }

    std::size_t size() const { return configs_.size(); }

  private:
    BenchArgs &args_;
    std::vector<SimConfig> configs_;
    std::vector<RunResult> results_;
    std::size_t cursor_ = 0;
};

/** Run a single configuration through the sweep machinery. */
inline RunResult
runConfig(SimConfig cfg, BenchArgs &args)
{
    SweepBatch batch(args);
    batch.add(std::move(cfg));
    batch.run();
    return batch.result(0);
}

/** Write collected results to bench_out (if requested); end of main. */
inline void
finishBench(const BenchArgs &args)
{
    if (args.benchOut.empty())
        return;
    if (writeResultsJson(args.benchOut, args.collected)) {
        std::fprintf(stderr, "wrote %zu results to %s\n",
                     args.collected.size(), args.benchOut.c_str());
    } else {
        std::fprintf(stderr, "ERROR: could not write %s\n",
                     args.benchOut.c_str());
    }
}

inline void
hr(char c = '-', int width = 92)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace bench
} // namespace sciq

#endif // SCIQ_BENCH_BENCH_UTIL_HH
