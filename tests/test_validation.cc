/**
 * @file
 * The cornerstone property: for every workload on every IQ design, the
 * pipeline's committed architectural state must match the functional
 * golden model bit for bit.  This exercises renaming, squash recovery,
 * the LSQ, chain bookkeeping, deadlock recovery and commit ordering all
 * at once.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/simulator.hh"

using namespace sciq;

namespace {

using Case = std::tuple<std::string, std::string>;

SimConfig
configFor(const std::string &iq, const std::string &workload)
{
    SimConfig cfg;
    if (iq == "ideal") {
        cfg = makeIdealConfig(128, workload);
    } else if (iq == "segmented") {
        cfg = makeSegmentedConfig(128, 64, true, true, workload);
    } else if (iq == "segmented-base") {
        cfg = makeSegmentedConfig(128, -1, false, false, workload);
    } else if (iq == "prescheduled") {
        cfg = makePrescheduledConfig(128, workload);
    } else {
        cfg = makeFifoConfig(16, 8, workload);
    }
    cfg.wl.iterations = 150;
    cfg.maxCycles = 3'000'000;
    cfg.validate = true;
    return cfg;
}

} // namespace

class StateValidation : public ::testing::TestWithParam<Case> {};

TEST_P(StateValidation, CommittedStateMatchesGoldenModel)
{
    auto [iq, workload] = GetParam();
    RunResult r = runSim(configFor(iq, workload));
    EXPECT_TRUE(r.haltedCleanly) << iq << "/" << workload;
    EXPECT_TRUE(r.validated) << iq << "/" << workload;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StateValidation,
    ::testing::Combine(::testing::Values("ideal", "segmented",
                                         "segmented-base", "prescheduled",
                                         "fifo"),
                       ::testing::ValuesIn(workloadNames())),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param);
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(StateValidationLarge, SegmentedFiveTwelveEntrySwim)
{
    SimConfig cfg = makeSegmentedConfig(512, 128, true, true, "swim");
    cfg.wl.iterations = 400;
    cfg.maxCycles = 3'000'000;
    RunResult r = runSim(cfg);
    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.validated);
}

TEST(StateValidationLarge, SegmentedTinyChainBudgetStillCorrect)
{
    // Starving the queue of chain wires must degrade performance, not
    // correctness.
    SimConfig cfg = makeSegmentedConfig(256, 8, false, false, "equake");
    cfg.wl.iterations = 200;
    cfg.maxCycles = 3'000'000;
    RunResult r = runSim(cfg);
    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.validated);
}

TEST(StateValidationLarge, SegmentedTinySegmentsStress)
{
    // Many small segments maximise promotion traffic and wire latency.
    SimConfig cfg = makeSegmentedConfig(128, 64, true, true, "ammp");
    cfg.core.iq.segmentSize = 8;  // 16 segments
    cfg.wl.iterations = 150;
    cfg.maxCycles = 3'000'000;
    RunResult r = runSim(cfg);
    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.validated);
}

TEST(StateValidationLarge, NoBypassNoPushdownStillCorrect)
{
    SimConfig cfg = makeSegmentedConfig(128, -1, false, false, "twolf");
    cfg.core.iq.enableBypass = false;
    cfg.core.iq.enablePushdown = false;
    cfg.wl.iterations = 200;
    cfg.maxCycles = 3'000'000;
    RunResult r = runSim(cfg);
    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.validated);
}
