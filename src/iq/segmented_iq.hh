/**
 * @file
 * The paper's contribution: a segmented instruction queue scheduled by
 * dependence chains (Raasch, Binkert & Reinhardt, ISCA 2002).
 *
 * The queue is a pipeline of small segments; instructions issue only
 * from segment 0 (the issue buffer).  Promotion from segment to segment
 * is governed by per-instruction *delay values* maintained as a fixed
 * latency behind a *chain head*:
 *
 *  - each segment k admits instructions whose delay is below its
 *    threshold 2*(k+1); dispatch into the top segment is unconditional;
 *  - chain heads broadcast one-hot chain-wire signals when they promote
 *    or issue; the wires are pipelined upward one segment per cycle;
 *  - members decrement their delay by 2 per head promotion, and enter
 *    self-timed (1/cycle) mode once the head issues;
 *  - a load head that misses sends a suspend signal up its chain, and a
 *    resume signal on completion;
 *  - enhancements: full-segment pushdown (4.1), empty-segment dispatch
 *    bypass (4.2), left/right operand prediction (4.3), hit/miss
 *    prediction (4.4), and deadlock detection/recovery (4.5).
 *
 * Implementation note: chain-wire signals are kept in a per-chain log
 * with an explicit generation cycle and origin segment; an entry in
 * segment s applies a signal generated at cycle g from segment o once
 * the current cycle reaches g + (s - o).  This models the paper's
 * one-segment-per-cycle wire pipelining exactly while guaranteeing
 * that entries which move between segments (promotion, dispatch
 * bypass, deadlock recovery) never miss or double-apply a signal.
 *
 * Scheduling is event-driven (DESIGN.md section 11): signal delivery
 * walks only the chains with in-flight signals and, per chain, only
 * the entries subscribed to it; self-timed countdowns walk explicit
 * countdown lists; the promotion pass visits only segments with
 * promotion candidates (or pushdown pressure), tracked incrementally
 * on every delay/segment change.  Per-cycle cost is therefore
 * proportional to scheduler *activity*, not queue occupancy.  The
 * invariant auditor (audit=1) re-derives every index from a full
 * rescan each cycle and counts disagreements.
 *
 * Two engines share this class (DESIGN.md section 16).  The default
 * data-oriented engine (`iq_soa=1`) keeps per-entry scheduler state in
 * per-segment structure-of-arrays lanes addressed by stable slots,
 * with occupancy/eligibility/countdown bitmask words, batched
 * chain-wire delivery (one pass per chain over packed subscriber
 * records, with a per-(chain, segment) visible-prefix memo), and a
 * register-availability mask that lets independent instructions skip
 * the dispatch plan entirely.  The original object-per-entry engine
 * (`iq_soa=0`) is retained as the bit-identical differential
 * reference; architected stats, checkpoints and batch=K outputs are
 * byte-identical between the two.
 */

#ifndef SCIQ_IQ_SEGMENTED_IQ_HH
#define SCIQ_IQ_SEGMENTED_IQ_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "iq/chain_allocator.hh"
#include "iq/iq_base.hh"

namespace sciq {

class HitMissPredictor;
class LeftRightPredictor;

class SegmentedIq : public IqBase
{
  public:
    /**
     * @param hmp Optional hit/miss predictor (used when params.useHmp).
     * @param lrp Optional left/right predictor (used when params.useLrp).
     */
    SegmentedIq(const IqParams &params, const Scoreboard &scoreboard,
                const FuPool &fu, HitMissPredictor *hmp,
                LeftRightPredictor *lrp);

    bool canInsert(const DynInstPtr &inst) override;
    void insert(const DynInstPtr &inst, Cycle cycle) override;
    void issueSelect(Cycle cycle, const TryIssue &try_issue) override;
    void tick(Cycle cycle, bool core_busy) override;
    void onLoadMiss(const DynInstPtr &inst, Cycle cycle) override;
    void onLoadComplete(const DynInstPtr &inst, Cycle cycle) override;
    void onWriteback(const DynInstPtr &inst, Cycle cycle) override;
    void onCommit(const DynInstPtr &inst) override;
    void onSquashInst(const DynInstPtr &inst) override;
    void squash(SeqNum youngest_kept) override;
    std::size_t occupancy() const override;

    /** The segmented design adds a dispatch pipeline stage (section 5). */
    unsigned extraDispatchCycles() const override { return 1; }

    unsigned
    numSegments() const
    {
        return static_cast<unsigned>(segments.size());
    }

    std::size_t segmentOccupancy(unsigned k) const
    {
        return segments[k].size();
    }

    /** Promotion threshold of segment k (paper section 3.1). */
    static int threshold(unsigned k) { return 2 * (static_cast<int>(k) + 1); }

    unsigned chainsInUse() const { return chains.inUse(); }
    unsigned chainsPeak() const { return chains.peak(); }

    /**
     * Deterministic host-work counters (DESIGN.md section 16.5).
     * Plain integers outside the stats tree: they measure *host* effort
     * (and so differ between the two engines), while the stats tree
     * stays byte-identical across `iq_soa={0,1}`.  Exact and
     * noise-free, so CI can gate on them where wall-clock would flake.
     */
    struct WorkCounters
    {
        std::uint64_t signalDeliveries = 0;  ///< chain-log entries examined
        std::uint64_t planCalls = 0;         ///< full computePlan executions
        std::uint64_t segmentsScanned = 0;   ///< promotion-pass segment visits
        std::uint64_t laneWordsTouched = 0;  ///< 8-byte sched words touched
    };
    const WorkCounters &workCounters() const { return work; }

    /**
     * Wall-clock per-substage accounting of the scheduler hot path,
     * enabled by setProfiling(true) (micro benches only; adds a timer
     * call per substage and never affects architected state).
     */
    struct TickProfile
    {
        double promoteSec = 0.0;    ///< tick step 1 (promotion pass)
        double deliverSec = 0.0;    ///< tick step 2 (signal delivery)
        double countdownSec = 0.0;  ///< tick step 3 (self-timed countdown)
        double issueSec = 0.0;      ///< issueSelect
        double dispatchSec = 0.0;   ///< canInsert + insert
        std::uint64_t ticks = 0;
    };
    void setProfiling(bool on) { profiling = on; }
    const TickProfile &profile() const { return prof; }

    /**
     * Test/debug view of a resident instruction's membership `m` under
     * either engine (the SoA engine keeps the authoritative copy in
     * lanes; the AoS mirror inside DynInst is stale after insert).
     * Index back-pointers are engine-internal and reported as -1.
     */
    ChainMembership debugMembership(const DynInstPtr &inst, int m) const;
    int debugEffectiveDelay(const DynInstPtr &inst) const;

    /** Segments currently powered (== numSegments unless resizing). */
    unsigned activeSegmentCount() const { return activeSegments; }

    void setAuditTracking(bool on) override;

    /** Pipe-trace-style dump of one segment's entries (audit panics). */
    void dumpSegment(std::ostream &os, unsigned k) const;

    /** Every segment plus chain-allocator state (watchdog dumps). */
    void dumpState(std::ostream &os) const override;

    // --- Statistics (Table 2, Figure 2 and section 6 text) ---------------
    stats::Scalar chainsCreated;
    stats::Scalar headsFromLoads;
    stats::Scalar twoOutstanding;     ///< insts w/ 2 pending operand chains
    stats::Scalar chainStalls;        ///< dispatch stalls: no free chain
    stats::Scalar promotions;
    stats::Scalar pushdownPromotions;
    stats::Scalar deadlockCycles;
    stats::Scalar deadlockRecoveries;
    stats::Average chainsInUseAvg;
    stats::Average seg0Occupancy;
    stats::Average seg0Ready;         ///< ready instructions in segment 0
    stats::Average dispatchSegment;   ///< bypass effectiveness

    // Dynamic-resizing / power-proxy statistics (section 7).
    stats::Scalar resizeGrows;
    stats::Scalar resizeShrinks;
    stats::Scalar segmentCyclesActive;  ///< sum over cycles of segments on
    stats::Average activeSegmentsAvg;

    // Scheduling-index statistics (section 11).
    stats::Scalar logPeak;       ///< peak per-chain signal-log length
    stats::Scalar dirtySegments; ///< segments visited by the promotion pass

  private:
    friend class Auditor;

    enum class SignalKind : std::uint8_t { Assert, Suspend, Resume };

    /** One chain-wire event, pipelined upward from originSegment. */
    struct LoggedSignal
    {
        std::uint64_t seq;
        Cycle cycle;
        int originSegment;
        SignalKind kind;
    };

    /**
     * Bounded FIFO of in-flight chain-wire signals.  Pruning at the
     * delivery horizon (tick step 5) keeps the population to the wire
     * pipeline depth, so the ring stays at its initial capacity in
     * practice; it grows by doubling rather than asserting a hard cap.
     */
    class SignalRing
    {
      public:
        bool empty() const { return count == 0; }
        std::size_t size() const { return count; }
        void clear() { head = 0; count = 0; }
        const LoggedSignal &front() const { return buf[head]; }
        const LoggedSignal &at(std::size_t i) const
        {
            return buf[(head + i) & (buf.size() - 1)];
        }
        void
        push_back(const LoggedSignal &sig)
        {
            if (count == buf.size())
                grow();
            buf[(head + count) & (buf.size() - 1)] = sig;
            ++count;
        }
        void
        pop_front()
        {
            head = (head + 1) & (buf.size() - 1);
            --count;
        }

      private:
        void grow();

        std::vector<LoggedSignal> buf;  ///< power-of-two capacity
        std::size_t head = 0;
        std::size_t count = 0;
    };

    /** One resident-entry subscription to a chain wire. */
    struct MemberSub
    {
        DynInst *inst;
        int slot;  ///< membership index within the instruction
    };

    /**
     * SoA-engine subscriber record: names a lane, not an object, so a
     * chain's delivery pass never dereferences a DynInst.  Kept exact
     * under moves via the lane's subIdx back-pointer.
     */
    struct SoaSub
    {
        std::uint16_t seg;   ///< segment index
        std::uint16_t slot;  ///< lane slot within the segment
        std::uint16_t mem;   ///< membership lane (0 or 1)
    };

    /**
     * Authoritative per-chain-wire state, read by dispatch when a new
     * member joins, plus the signal log in-flight entries consume and
     * the subscriber index delivery walks.  Subscriber lists survive
     * wire reuse: stale-generation subscribers are skipped by the
     * delivery generation check and unsubscribe through their normal
     * lifecycle (issue, squash, table overwrite).
     */
    struct ChainState
    {
        std::uint32_t gen = 0;
        int headSegment = 0;
        bool selfTimed = false;   ///< head has issued
        bool suspended = false;
        bool active = false;      ///< on the activeChains list
        std::uint64_t seqCounter = 0;
        SignalRing log;
        std::vector<MemberSub> memberSubs;  ///< resident listeners (AoS)
        std::vector<SoaSub> soaSubs;        ///< resident listeners (SoA)
        std::vector<RegIndex> regSubs;      ///< regInfo listeners

        /**
         * Highest log seq proven visible per segment (SoA delivery).
         * Visibility at a fixed segment is monotone in `cycle`, so the
         * per-cycle probe resumes here instead of rescanning the log.
         * Cleared on wire reuse (the seq numbering restarts).
         */
        std::vector<std::uint64_t> soaVisFloor;
    };

    /**
     * Packed mirror of the ChainState scalars computePlan reads (16
     * bytes, four per cache line), so the SoA dispatch path never
     * touches the cold ChainState objects.  Written at wire (re)init,
     * emitSignal, and deadlock recovery; audited against ChainState.
     */
    struct ChainHot
    {
        std::uint64_t seqCounter = 0;
        std::uint32_t gen = 0;
        std::int16_t headSegment = 0;
        std::uint8_t selfTimed = 0;
        std::uint8_t suspended = 0;
    };

    /** Dispatch-stage register information table entry (section 3.3). */
    struct RegInfoEntry
    {
        bool pending = false;
        ChainId chain = kNoChain;   ///< kNoChain: pure countdown entry
        std::uint32_t gen = 0;
        std::uint64_t appliedSeq = 0;
        int latency = 0;            ///< rel. to head issue / to now if selfTimed
        int headSeg = 0;            ///< tracked head location (lagged)
        bool selfTimed = false;
        bool suspended = false;
    };

    /** Undo record for squash recovery of the table. */
    struct Undo
    {
        SeqNum seq;
        RegIndex archDst;
        RegInfoEntry prev;
    };

    /** Everything insert() needs, precomputed identically by canInsert. */
    struct Plan
    {
        ChainMembership memberships[2];
        int numMemberships = 0;
        bool needNewChain = false;
        bool isLoadHead = false;
        bool hadTwoOutstanding = false;
        bool usedLrp = false;
        bool lrpPickedLeft = false;
        bool usedHmp = false;
        bool hmpPredictedHit = false;
    };

    /** True once the table says this operand's value is available. */
    static bool entryAvailable(const RegInfoEntry &e);

    /** Predicted latency from issue to dependent-ready (section 3.3). */
    unsigned predictedLatency(const DynInst &inst) const;

    /**
     * Build the chain/membership plan for an instruction.
     * @param counting true to update predictor statistics (insert path).
     */
    Plan computePlan(const DynInstPtr &inst, bool counting) const;

    /** Dispatch target segment honouring the bypass rule (section 4.2). */
    int targetSegment() const;

    int effectiveDelay(const DynInst &inst) const;

    ChainState &stateOf(ChainId id);
    const ChainState &stateOf(ChainId id) const;

    /** Record a signal on a chain's wire (updates authoritative state). */
    void emitSignal(const DynInstPtr &head, SignalKind kind,
                    int origin_segment, Cycle cycle);

    /** Apply every signal now visible at this entry's segment. */
    void deliverToMembership(ChainMembership &m, int segment, Cycle now);

    /** Apply every signal now visible at the table (top segment). */
    void deliverToRegEntry(RegInfoEntry &e, const ChainState &cs,
                           Cycle now);

    // --- Incremental-index maintenance (section 11) ----------------------
    // Subscriber lists, countdown lists and promotion-candidate counts
    // are redundant views over the authoritative per-entry state; every
    // mutation site keeps them in sync and the auditor re-derives them
    // from a full rescan under audit=1.

    /** Register membership `slot` of `inst` on its chain's wire. */
    void subscribeMember(DynInst *inst, int slot);
    void unsubscribeMember(DynInst *inst, int slot);

    /** Keep membership `slot` on/off the self-timed countdown list. */
    void subSyncMemberCd(DynInst *inst, int slot);
    void removeMemberCd(DynInst *inst, int slot);

    void subscribeReg(RegIndex r);
    void unsubscribeReg(RegIndex r);
    /** Keep table entry r on/off the self-timed countdown list. */
    void syncRegCd(RegIndex r);

    /** Recompute promotion eligibility of a resident instruction. */
    void refreshElig(DynInst *inst);
    void leaveElig(DynInst *inst);

    /** Update the near-full (pushdown pressure) bit for segment k. */
    void onSegSizeChanged(unsigned k);

    /** Drop every index reference as inst leaves the queue. */
    void onLeaveQueue(const DynInstPtr &inst);

    void insertSorted(std::vector<DynInstPtr> &seg, const DynInstPtr &inst);
    /** As insertSorted, returning the insertion position (SoA slotAt). */
    std::size_t insertSortedPos(std::vector<DynInstPtr> &seg,
                                const DynInstPtr &inst);

    /** Move inst down one pipeline step; heads assert their wire. */
    void moveInst(const DynInstPtr &inst, unsigned from, unsigned to,
                  Cycle cycle);

    /** Begin the delayed release of a head's chain wire. */
    void releaseChain(const DynInstPtr &inst, Cycle cycle);

    void runDeadlockRecovery(Cycle cycle);

    // tick() substages of the reference (object-per-entry) engine.
    void aosTickPromote(Cycle cycle);
    void aosTickDeliver(Cycle cycle);
    void aosTickCountdown();

    // --- Data-oriented engine (DESIGN.md section 16) ---------------------
    // Scheduler state lives in per-segment lanes addressed by *stable
    // slots*: a slot is claimed at insert and keeps its index until the
    // entry leaves the segment, so per-cycle sweeps never shift lane
    // data.  The seq-sorted order the reference engine iterates in is
    // kept as a parallel position->slot byte map (slotAt).

    bool soa() const { return params.soaLayout; }

    struct SegmentLanes
    {
        // Slot-indexed membership lanes (capacity = segmentSize each).
        std::vector<std::int32_t> delay[2];
        std::vector<ChainId> chain[2];
        std::vector<std::uint32_t> gen[2];
        std::vector<std::uint64_t> applied[2];
        std::vector<std::int16_t> headSeg[2];
        std::vector<std::uint8_t> flags[2];   ///< kLaneSelfTimed|kLaneSuspended
        std::vector<std::int32_t> subIdx[2];  ///< back-ptr into soaSubs
        std::vector<RegIndex> src[2];  ///< scoreboard-gating operands
        std::vector<std::uint8_t> memCount;
        std::vector<SeqNum> seq;       ///< lane<->instruction identity

        // 64-wide bitmask words over slots.
        std::vector<std::uint64_t> occBits;
        std::vector<std::uint64_t> eligBits;
        std::vector<std::uint64_t> cdBits[2];

        /** Position (seq-sorted order) -> slot; parallel to the segment. */
        std::vector<std::uint16_t> slotAt;
    };

    static constexpr std::uint8_t kLaneSelfTimed = 1;
    static constexpr std::uint8_t kLaneSuspended = 2;

    /** Effective (gating) delay of the lane at `slot`: max over lanes. */
    static int laneEffDelay(const SegmentLanes &L, unsigned slot);

    unsigned allocSlot(SegmentLanes &L) const;
    void setLaneElig(unsigned k, unsigned slot, bool now);
    void syncLaneCd(unsigned k, unsigned slot, int mem);

    /** SoA counterpart of onLeaveQueue: drop one slot's references. */
    void soaLeaveSlot(unsigned k, unsigned slot);

    /** SoA counterpart of moveInst (erases/inserts position vectors). */
    void soaMove(unsigned from, std::size_t pos, unsigned to, Cycle cycle);

    /** First candidate segment > `from` under the live masks (0: none). */
    unsigned nextCandidateSegment(unsigned from) const;

    void soaInsert(const DynInstPtr &inst, int target, const Plan &plan);
    void soaTickPromote(Cycle cycle);
    void soaTickDeliver(Cycle cycle);
    void soaTickCountdown();
    void soaIssueSelect(Cycle cycle, const TryIssue &try_issue);
    void soaSquash(SeqNum youngest_kept);
    void soaRunDeadlockRecovery(Cycle cycle);

    /** All gating arch sources available in the table (regAvail hit)? */
    bool fastPlanEligible(const DynInst &inst) const;

    // Shared transition helpers behind eligCount/eligMask/eligSegW.
    void eligCountInc(unsigned k);
    void eligCountDec(unsigned k);

    /** Mirror a wire's ChainState scalars into chainHot. */
    void syncChainHot(ChainId id);

    std::vector<SegmentLanes> lanes;   ///< per segment (SoA engine only)
    std::vector<ChainHot> chainHot;    ///< parallel to chainStates

    /** Bit r: regInfo[r] names an available value (entryAvailable). */
    std::uint64_t regAvail = ~0ULL;

    // Per-(chain, segment) visible-prefix memo for batched delivery,
    // valid while memoStamp[s] == memoToken (bumped per chain).
    std::vector<std::uint32_t> memoStamp;
    std::vector<std::uint32_t> memoEnd;
    std::uint32_t memoToken = 0;

    // Promotion-candidate masks generalised to any segment count (the
    // legacy eligMask/nearFullMask cover k < 64 for the AoS engine).
    std::vector<std::uint64_t> eligSegW;   ///< segments with candidates
    std::vector<std::uint64_t> nearFullW;  ///< free < issueWidth
    std::vector<std::uint64_t> roomyW;     ///< 2*free > 3*issueWidth
    std::vector<unsigned> cdCountSeg;      ///< countdown lanes per segment

    // SoA promotion scratch (positions/slots collected per round).
    std::vector<std::uint32_t> scratchEligPos, scratchPushPos, movedOrig;

    mutable WorkCounters work;
    bool profiling = false;
    TickProfile prof;

    std::vector<std::vector<DynInstPtr>> segments;  ///< [0]=issue buffer
    std::vector<unsigned> freePrevCycle;            ///< per segment

    std::vector<ChainState> chainStates;
    std::deque<std::pair<ChainId, Cycle>> chainDrainQueue;

    // --- Incremental scheduling indices (section 11) ---------------------

    /** Chains with a non-empty signal log (unordered, swap-removed). */
    std::vector<ChainId> activeChains;

    /** One self-timed countdown reference (membership slot). */
    struct CdRef
    {
        DynInst *inst;
        int slot;
    };
    std::vector<CdRef> memberCountdown;   ///< memberships counting down
    std::vector<RegIndex> regCountdown;   ///< table entries counting down

    // Back-pointers for O(1) swap-removal from the register-side lists.
    std::array<int, kNumArchRegs> regCdPos;       ///< pos in regCountdown
    std::array<int, kNumArchRegs> regSubPos;      ///< pos in chain regSubs
    std::array<ChainId, kNumArchRegs> regSubChain;  ///< subscribed chain

    std::vector<unsigned> eligCount;  ///< promotion candidates per segment
    std::uint64_t eligMask = 0;       ///< segments (<64) with candidates
    std::uint64_t nearFullMask = 0;   ///< segments (<64) w/ pushdown pressure
    std::size_t totalOcc = 0;         ///< occupancy, O(1)

    // Promotion-pass scratch (reused to keep allocations off the hot
    // path; only live within one segment's round).
    std::vector<DynInstPtr> scratchElig, scratchPush;

    std::array<RegInfoEntry, kNumArchRegs> regInfo;
    std::deque<Undo> undoLog;

    // canInsert -> insert plan memo.  Dispatch always probes canInsert
    // immediately before insert with no intervening queue mutation, so
    // insert can reuse the admission plan instead of recomputing it;
    // insert re-issues the stat-counting predictor reads the peek-mode
    // pass skipped (predict and peek return identical values).  A seq
    // mismatch (e.g. insert without a matching probe) falls back to a
    // full computePlan.
    SeqNum planMemoSeq = kInvalidSeqNum;
    Plan planMemo;

    mutable ChainAllocator chains;
    HitMissPredictor *hmp;
    LeftRightPredictor *lrp;

    unsigned issuedThisCycle = 0;
    unsigned promotedThisCycle = 0;
    unsigned activeSegments = 1;
    Cycle nextResizeCheck = 0;

    // Audit bookkeeping (setAuditTracking): what each tick's promotion
    // round actually used and did, so the auditor can re-check the
    // bound after the fact.  Deadlock-recovery moves are not counted.
    bool auditTracking = false;
    std::vector<unsigned> freePrevSnapshot;  ///< freePrevCycle at tick start
    std::vector<unsigned> promotedInto;      ///< promotions per destination
};

} // namespace sciq

#endif // SCIQ_IQ_SEGMENTED_IQ_HH
