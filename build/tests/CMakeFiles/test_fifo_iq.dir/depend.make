# Empty dependencies file for test_fifo_iq.
# This may be replaced when dependencies are built.
