/**
 * @file
 * Fast-forwarding with functional warming.
 *
 * The paper measures a 100M-instruction sample after skipping 20
 * billion instructions; the skipped region leaves the caches and
 * predictors warm.  This facility reproduces that methodology at our
 * scale: it executes a prefix of the program on the functional core
 * while *functionally warming* the cache tag arrays, the branch
 * predictor, the BTB and the hit/miss predictor, then seeds the timing
 * core's architectural state so measurement starts mid-program.
 */

#ifndef SCIQ_SIM_FAST_FORWARD_HH
#define SCIQ_SIM_FAST_FORWARD_HH

#include <cstdint>

#include "core/ooo_core.hh"
#include "isa/functional_core.hh"

namespace sciq {

struct FastForwardStats
{
    std::uint64_t instsSkipped = 0;
    std::uint64_t memAccessesWarmed = 0;
    std::uint64_t branchesWarmed = 0;
    bool hitHalt = false;  ///< the program ended inside the prefix
};

/**
 * Execute up to `insts` instructions on `golden`, warming `core`'s
 * caches and predictors, then seed `core`'s architectural state from
 * the functional state.  Call before the core's first tick().
 */
FastForwardStats fastForward(FunctionalCore &golden, OooCore &core,
                             std::uint64_t insts);

} // namespace sciq

#endif // SCIQ_SIM_FAST_FORWARD_HH
