#include "sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <new>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "sim/batch.hh"
#include "sim/job_exec.hh"
#include "sim/journal.hh"
#include "sim/run_result_fields.hh"

namespace sciq {

SweepRunner::SweepRunner(unsigned jobs) : jobs_(jobs)
{
    if (jobs_ == 0) {
        jobs_ = std::thread::hardware_concurrency();
        if (jobs_ == 0)
            jobs_ = 1;
    }
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SimConfig> &configs,
                 const Progress &progress) const
{
    Options options;
    options.progress = progress;
    return run(configs, options);
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SimConfig> &configs,
                 const Options &options_in) const
{
    Options options = options_in;
    if (options.artifactDir.empty()) {
        if (const char *env = std::getenv("SCIQ_ARTIFACT_DIR"))
            options.artifactDir = env;
    }

    const std::size_t total = configs.size();
    std::vector<RunResult> results(total);
    std::vector<std::string> keys(total);
    for (std::size_t i = 0; i < total; ++i)
        keys[i] = sweepKey(configs[i]);

    // Resume: reuse journaled-ok entries whose identity still matches;
    // failed/timeout/missing/mismatched jobs run again.  Later journal
    // lines supersede earlier ones with the same index.
    std::vector<char> have(total, 0);
    std::unique_ptr<ResultJournal> journal;
    if (!options.journal.empty()) {
        applyJournal(options.journal, keys, results, have);
        journal = std::make_unique<ResultJournal>(options.journal);
    }

    std::vector<std::size_t> pending;
    pending.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        if (!have[i])
            pending.push_back(i);
    }

    std::atomic<std::size_t> done{total - pending.size()};
    std::mutex progressMutex;

    auto runOne = [&](std::size_t i) {
        RunResult r = job_exec::executeWithRetry(
            configs[i], keys[i], i, options.maxRetries, options.backoffMs,
            options.artifactDir);
        if (journal)
            journal->record(i, keys[i], r);
        results[i] = std::move(r);
        const std::size_t n = done.fetch_add(1) + 1;
        if (options.progress) {
            std::lock_guard<std::mutex> lock(progressMutex);
            options.progress(n, total, results[i]);
        }
    };

    // Batched lockstep execution (DESIGN.md §15): group batchable jobs
    // that may share a fetch stream into units of up to options.batch
    // configs and run each unit in one lockstep pass.  Results are
    // journaled and reported per config exactly as in the per-job path;
    // batch <= 1 leaves that path below completely untouched.
    if (options.batch > 1) {
        std::vector<std::vector<std::size_t>> units;
        std::vector<std::pair<std::string, std::vector<std::size_t>>> groups;
        for (std::size_t i : pending) {
            if (!lockstepBatchable(configs[i])) {
                units.push_back({i});
                continue;
            }
            const std::string bkey = lockstepBatchKey(configs[i]);
            auto it = std::find_if(
                groups.begin(), groups.end(),
                [&bkey](const auto &g) { return g.first == bkey; });
            if (it == groups.end()) {
                groups.emplace_back(bkey, std::vector<std::size_t>{});
                it = groups.end() - 1;
            }
            it->second.push_back(i);
        }
        for (const auto &group : groups) {
            const std::vector<std::size_t> &members = group.second;
            for (std::size_t at = 0; at < members.size();
                 at += options.batch) {
                const std::size_t end =
                    std::min(members.size(), at + options.batch);
                units.emplace_back(members.begin() + at,
                                   members.begin() + end);
            }
        }

        auto runUnit = [&](const std::vector<std::size_t> &unit) {
            if (unit.size() == 1) {
                runOne(unit[0]);
                return;
            }
            std::vector<SimConfig> unitConfigs;
            std::vector<std::string> unitKeys;
            for (std::size_t i : unit) {
                unitConfigs.push_back(configs[i]);
                unitKeys.push_back(keys[i]);
            }
            std::vector<RunResult> rs =
                runLockstepBatch(unitConfigs, unitKeys, unit, options);
            for (std::size_t j = 0; j < unit.size(); ++j) {
                const std::size_t i = unit[j];
                if (journal)
                    journal->record(i, keys[i], rs[j]);
                results[i] = std::move(rs[j]);
                const std::size_t n = done.fetch_add(1) + 1;
                if (options.progress) {
                    std::lock_guard<std::mutex> lock(progressMutex);
                    options.progress(n, total, results[i]);
                }
            }
        };

        const unsigned unitWorkers = static_cast<unsigned>(
            std::min<std::size_t>(jobs_, units.size()));
        if (unitWorkers <= 1) {
            for (const auto &unit : units)
                runUnit(unit);
            return results;
        }

        std::atomic<std::size_t> nextUnit{0};
        std::vector<std::exception_ptr> unitErrors(unitWorkers);
        auto unitWorker = [&](unsigned id) {
            try {
                for (;;) {
                    const std::size_t slot =
                        nextUnit.fetch_add(1, std::memory_order_relaxed);
                    if (slot >= units.size())
                        return;
                    runUnit(units[slot]);
                }
            } catch (...) {
                unitErrors[id] = std::current_exception();
            }
        };
        std::vector<std::thread> unitThreads;
        unitThreads.reserve(unitWorkers);
        for (unsigned id = 0; id < unitWorkers; ++id)
            unitThreads.emplace_back(unitWorker, id);
        for (auto &t : unitThreads)
            t.join();
        for (auto &err : unitErrors) {
            if (err)
                std::rethrow_exception(err);
        }
        return results;
    }

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, pending.size()));

    if (workers <= 1) {
        for (std::size_t i : pending)
            runOne(i);
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(workers);

    auto worker = [&](unsigned id) {
        // executeWithRetry never throws; anything caught here is harness
        // trouble (e.g. journal I/O), reported after the other workers
        // have drained the queue so no completed result is lost.
        try {
            for (;;) {
                const std::size_t slot =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (slot >= pending.size())
                    return;
                runOne(pending[slot]);
            }
        } catch (...) {
            errors[id] = std::current_exception();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned id = 0; id < workers; ++id)
        threads.emplace_back(worker, id);
    for (auto &t : threads)
        t.join();

    for (auto &err : errors) {
        if (err)
            std::rethrow_exception(err);
    }
    return results;
}

namespace {

/** Pretty writer over the shared field list (4-space indent). */
struct PrettyWriter
{
    std::ostream &os;

    void
    str(const char *key, const std::string &v)
    {
        os << "    \"" << key << "\": ";
        json::writeString(os, v);
        os << ",\n";
    }
    void uns(const char *key, unsigned v) { line(key) << v << ",\n"; }
    void i(const char *key, int v) { line(key) << v << ",\n"; }
    void u64(const char *key, std::uint64_t v) { line(key) << v << ",\n"; }
    void
    num(const char *key, double v)
    {
        // json::writeNumber emits `null` for nan/inf (e.g. hmp_accuracy
        // on a run with no HMP-eligible loads), keeping the output
        // strictly RFC 8259 parseable.
        line(key);
        json::writeNumber(os, v);
        os << ",\n";
    }
    void
    b(const char *key, bool v)
    {
        line(key) << (v ? "true" : "false") << ",\n";
    }

    std::ostream &line(const char *key)
    {
        return os << "    \"" << key << "\": ";
    }
};

} // namespace

void
writeResultsJson(std::ostream &os, const std::vector<RunResult> &results)
{
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        os << "  {\n";
        PrettyWriter w{os};
        visitRunResultFields(w, r);
        w.line("outcome");
        json::writeString(os, jobStatusName(r.outcome.status));
        os << ",\n";
        w.line("error_code");
        json::writeString(os, errorCodeName(r.outcome.code));
        os << ",\n";
        w.line("error_msg");
        json::writeString(os, r.outcome.message);
        os << ",\n";
        w.line("attempts") << r.outcome.attempts << "\n";
        os << "  }" << (i + 1 == results.size() ? "\n" : ",\n");
    }
    os << "]\n";
}

bool
writeResultsJson(const std::string &path,
                 const std::vector<RunResult> &results)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeResultsJson(out, results);
    return static_cast<bool>(out);
}

} // namespace sciq
