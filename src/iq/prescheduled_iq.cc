#include "prescheduled_iq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sciq {

PrescheduledIq::PrescheduledIq(const IqParams &params_,
                               const Scoreboard &scoreboard_,
                               const FuPool &fu_)
    : IqBase(params_, scoreboard_, fu_, "iq")
{
    SCIQ_ASSERT(params.numEntries > params.issueBufferSize,
                "prescheduled IQ smaller than its issue buffer");
    const unsigned array_slots = params.numEntries - params.issueBufferSize;
    SCIQ_ASSERT(array_slots % params.preschedLineWidth == 0,
                "scheduling array (%u) not a multiple of line width %u",
                array_slots, params.preschedLineWidth);
    lines.resize(array_slots / params.preschedLineWidth);
    issueBuffer.reserve(params.issueBufferSize);

    statsGroup.addScalar("array_stall_cycles", &arrayStallCycles,
                         "cycles the array could not shift");
    statsGroup.addAverage("issue_buffer_occ", &issueBufferOcc,
                          "issue-buffer occupancy per cycle");
}

std::size_t
PrescheduledIq::occupancy() const
{
    std::size_t total = issueBuffer.size();
    for (const auto &line : lines)
        total += line.size();
    return total;
}

unsigned
PrescheduledIq::predictedLatency(const DynInst &inst) const
{
    if (inst.isLoad())
        return params.predictedLoadLatency;  // loads predicted as hits
    return fu.latency(inst.opClass());
}

unsigned
PrescheduledIq::predictedDelay(const DynInst &inst) const
{
    std::uint64_t ready = shiftCount;
    const auto srcs = inst.staticInst.srcRegs();
    for (int i = 0; i < 2; ++i) {
        if (srcs[i] == kInvalidReg)
            continue;
        if (inst.isStore() && i == 1)
            continue;  // store data is the LSQ's problem
        ready = std::max(ready, regReadyShift[srcs[i]]);
    }
    return static_cast<unsigned>(ready - shiftCount);
}

int
PrescheduledIq::findLine(unsigned want) const
{
    unsigned idx = std::min<unsigned>(want,
                                      static_cast<unsigned>(lines.size()) - 1);
    for (unsigned k = idx; k < lines.size(); ++k) {
        if (lines[k].size() < params.preschedLineWidth)
            return static_cast<int>(k);
    }
    return -1;
}

bool
PrescheduledIq::canInsert(const DynInstPtr &inst)
{
    if (findLine(predictedDelay(*inst)) < 0) {
        dispatchStallsFull.inc();
        return false;
    }
    return true;
}

void
PrescheduledIq::insert(const DynInstPtr &inst, Cycle)
{
    const unsigned delay = predictedDelay(*inst);
    int line = findLine(delay);
    SCIQ_ASSERT(line >= 0, "insert into full prescheduled IQ");
    inst->presched.line = line;
    lines[static_cast<std::size_t>(line)].push_back(inst);
    instsInserted.inc();

    RegIndex dst = inst->staticInst.dstReg();
    if (dst != kInvalidReg) {
        undoLog.push_back({inst->seq, dst, regReadyShift[dst]});
        // Result predicted ready once the instruction reaches the
        // issue buffer (`line`+1 shifts) and executes.  Using the
        // *placed* line (post clamping/overflow) keeps dependents
        // behind this instruction in the array.
        regReadyShift[dst] = shiftCount + static_cast<std::uint64_t>(line) +
                             1 + predictedLatency(*inst);
    }
}

void
PrescheduledIq::issueSelect(Cycle, const TryIssue &try_issue)
{
    issueBufferOcc.sample(static_cast<double>(issueBuffer.size()));
    unsigned issued = 0;
    for (auto it = issueBuffer.begin();
         it != issueBuffer.end() && issued < params.issueWidth;) {
        if (operandsReady(**it) && try_issue(*it)) {
            instsIssued.inc();
            ++issued;
            it = issueBuffer.erase(it);
        } else {
            ++it;
        }
    }
}

void
PrescheduledIq::tick(Cycle, bool)
{
    // Shift the scheduling array one line toward the issue buffer,
    // stalling if the oldest line does not fit.
    auto &oldest = lines.front();
    if (issueBuffer.size() + oldest.size() <= params.issueBufferSize) {
        for (auto &inst : oldest) {
            inst->presched.line = -1;
            issueBuffer.push_back(inst);
        }
        oldest.clear();
        lines.pop_front();
        lines.emplace_back();
        ++shiftCount;
    } else {
        arrayStallCycles.inc();
    }

    std::sort(issueBuffer.begin(), issueBuffer.end(),
              [](const DynInstPtr &a, const DynInstPtr &b) {
                  return a->seq < b->seq;
              });

    occupancyAvg.sample(static_cast<double>(occupancy()));
}

void
PrescheduledIq::onCommit(const DynInstPtr &inst)
{
    while (!undoLog.empty() && undoLog.front().seq <= inst->seq)
        undoLog.pop_front();
}

void
PrescheduledIq::onSquashInst(const DynInstPtr &inst)
{
    while (!undoLog.empty() && undoLog.back().seq == inst->seq) {
        regReadyShift[undoLog.back().archDst] = undoLog.back().prevReady;
        undoLog.pop_back();
    }
}

void
PrescheduledIq::squash(SeqNum youngest_kept)
{
    auto prune = [youngest_kept](std::vector<DynInstPtr> &v) {
        v.erase(std::remove_if(v.begin(), v.end(),
                               [youngest_kept](const DynInstPtr &p) {
                                   return p->seq > youngest_kept;
                               }),
                v.end());
    };
    prune(issueBuffer);
    for (auto &line : lines)
        prune(line);
}

} // namespace sciq
