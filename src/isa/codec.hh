/**
 * @file
 * 32-bit binary encoding of SRV instructions.
 *
 * Layouts (msb..lsb):
 *   R : op[31:26] rd[25:20] rs1[19:14] rs2[13:8] 0[7:0]
 *   I : op[31:26] rd[25:20] rs1[19:14] imm[13:0] (signed)
 *   M : op[31:26] rd-or-rs2[25:20] rs1[19:14] imm[13:0] (signed)
 *   B : op[31:26] rs1[25:20] rs2[19:14] imm[13:0] (signed, in insts)
 *   J : op[31:26] rd[25:20] imm[19:0] (signed)
 *   JR: op[31:26] rd[25:20] rs1[19:14]
 *   N : op[31:26]
 */

#ifndef SCIQ_ISA_CODEC_HH
#define SCIQ_ISA_CODEC_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace sciq {

/** Immediate width for I/M/B formats. */
constexpr unsigned kImm14Bits = 14;
/** Immediate width for J format. */
constexpr unsigned kImm20Bits = 20;

constexpr std::int64_t kImm14Min = -(1LL << (kImm14Bits - 1));
constexpr std::int64_t kImm14Max = (1LL << (kImm14Bits - 1)) - 1;
constexpr std::int64_t kImm20Min = -(1LL << (kImm20Bits - 1));
constexpr std::int64_t kImm20Max = (1LL << (kImm20Bits - 1)) - 1;

/** True if the instruction's fields fit its format's encoding. */
bool encodable(const Instruction &inst);

/** Encode to a 32-bit word; panics if !encodable(inst). */
std::uint32_t encode(const Instruction &inst);

/** Decode a 32-bit word; panics on an invalid opcode field. */
Instruction decode(std::uint32_t word);

} // namespace sciq

#endif // SCIQ_ISA_CODEC_HH
