/**
 * @file
 * Distributed-sweep worker: connects to a sweep_serve coordinator,
 * leases jobs one at a time and streams results back (DESIGN.md §17).
 *
 * Point every worker of a fleet at the same ckpt_dir= and the
 * cross-process producer election makes the whole fleet execute each
 * distinct warm-up exactly once.
 *
 * Usage:
 *   sweep_worker socket=/tmp/sweep.sock name=w0 ckpt_dir=/tmp/ckpt
 */

#include <iostream>
#include <memory>

#include "common/config.hh"
#include "sim/fault_injector.hh"
#include "sim/shard.hh"

using namespace sciq;

int
main(int argc, char **argv)
{
    ConfigMap args = ConfigMap::fromArgs(argc, argv);
    if (args.has("help")) {
        std::cout <<
            "keys: socket=PATH          coordinator socket (required)\n"
            "      name=ID              worker name for logs\n"
            "      ckpt_dir=DIR         shared warm-state store\n"
            "      retries=N backoff_ms=N artifact_dir=DIR\n"
            "      connect_timeout_ms=N\n"
            "      fault_worker_abort=N fault_seed=N   (chaos testing:\n"
            "      _exit(137) in place of the Nth result)\n";
        return 0;
    }
    const std::string complaint = args.unknownKeyMessage(
        {"socket", "name", "ckpt_dir", "retries", "backoff_ms",
         "artifact_dir", "connect_timeout_ms", "fault_worker_abort",
         "fault_seed", "help"});
    if (!complaint.empty()) {
        std::cerr << complaint << "\n";
        return 2;
    }

    WorkerOptions options;
    options.socketPath = args.getString("socket");
    if (options.socketPath.empty()) {
        std::cerr << "sweep_worker: socket= is required\n";
        return 2;
    }
    options.name = args.getString("name", "worker");
    options.ckptDir = args.getString("ckpt_dir");
    options.maxRetries = static_cast<unsigned>(args.getInt("retries", 2));
    options.backoffMs =
        static_cast<unsigned>(args.getInt("backoff_ms", 10));
    options.artifactDir = args.getString("artifact_dir");
    options.connectTimeoutMs =
        static_cast<unsigned>(args.getInt("connect_timeout_ms", 10'000));
    options.abortExits = true;
    if (args.has("fault_worker_abort")) {
        options.faults = std::make_shared<FaultInjector>(
            static_cast<std::uint64_t>(args.getInt("fault_seed", 1)));
        options.faults->abortWorker =
            args.getInt("fault_worker_abort", 0);
    }

    const WorkerReport report = runWorker(options);
    std::cout << options.name << ": ran " << report.jobsRun << " jobs, "
              << report.restored << " restored a warm-up\n";
    if (!report.error.empty()) {
        std::cerr << options.name << ": " << report.error << "\n";
        return 1;
    }
    return report.drained ? 0 : 1;
}
