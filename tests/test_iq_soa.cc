/**
 * @file
 * Differential coverage of the data-oriented (SoA) segmented-IQ engine
 * against the reference engine (iq_soa=0), which stays in the tree as
 * the executable specification.
 *
 * Four layers:
 *  - end-to-end differential: byte-identical core stats trees between
 *    the two engines for every workload at 64- and 256-entry queues,
 *    with the invariant auditor enabled on both;
 *  - checkpoint interchange: warm-state blobs are engine-independent,
 *    byte for byte, and a checkpoint produced under one engine restores
 *    under the other with no stat drift;
 *  - batched lockstep (batch=K) and sweep-JSON equivalence across
 *    engines and batch widths;
 *  - lane-level torture at segment boundaries: both engines driven in
 *    lockstep through tiny segments with chain signals, suspends,
 *    squashes and deadlock recovery, comparing membership state and
 *    issue order cycle by cycle.
 *
 * Plus the deterministic perf proxy: the iq.work.* counters must
 * strictly shrink under the SoA engine, and their exact values at the
 * pinned quick-mode configuration are committed in
 * tests/golden/work_proxy.json.  Regenerate after an intentional
 * scheduler change with:
 *
 *     ./build/tests/test_iq_soa --update-work-proxy
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "branch/hit_miss_predictor.hh"
#include "branch/left_right_predictor.hh"
#include "common/json.hh"
#include "iq/segmented_iq.hh"
#include "iq_harness.hh"
#include "isa/functional_core.hh"
#include "sim/checkpoint.hh"
#include "sim/fast_forward.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "workload/workloads.hh"

using namespace sciq;
using namespace sciq::test;

namespace {

bool g_update_proxy = false;

/** The pinned differential configuration (quick mode). */
SimConfig
soaConfig(const std::string &workload, unsigned iq_size, bool soa,
          bool audit)
{
    SimConfig cfg = makeSegmentedConfig(iq_size, 64, true, true, workload);
    cfg.wl.iterations = 300;
    cfg.fastForward = 1500;
    cfg.validate = true;
    cfg.audit = audit;
    cfg.core.iq.soaLayout = soa;
    return cfg;
}

std::string
statsDump(Simulator &sim)
{
    std::ostringstream os;
    sim.core().statGroup().dumpJson(os);
    return os.str();
}

/**
 * Serialize one result with every host-dependent field zeroed.  The
 * iq.work.* counters are deterministic but engine-specific, so they
 * are scrubbed only when comparing *across* engines.
 */
std::string
scrubbedJson(RunResult r, bool scrub_work)
{
    r.hostSeconds = 0.0;
    r.hostKcyclesPerSec = 0.0;
    r.hostKinstsPerSec = 0.0;
    r.warmSeconds = 0.0;
    r.warmInstsPerSec = 0.0;
    r.ckptRestored = false;
    r.outcome.message.clear();
    if (scrub_work) {
        r.iqSignalDeliveries = 0;
        r.iqPlanCalls = 0;
        r.iqSegmentsScanned = 0;
        r.iqLaneWordsTouched = 0;
    }
    std::ostringstream os;
    writeResultsJson(os, {r});
    return os.str();
}

// ---------------------------------------------------------------------
// End-to-end differential: engines are observationally identical.

class IqSoaDifferential : public ::testing::TestWithParam<std::string>
{
};

TEST_P(IqSoaDifferential, StatsTreesByteIdenticalWithAuditOn)
{
    const std::string workload = GetParam();
    for (unsigned size : {64u, 256u}) {
        Simulator ref(soaConfig(workload, size, false, true));
        RunResult r0 = ref.run();
        ASSERT_TRUE(r0.haltedCleanly) << size;
        ASSERT_TRUE(r0.validated) << size;
        EXPECT_EQ(r0.auditViolations, 0u) << size;

        Simulator soa(soaConfig(workload, size, true, true));
        RunResult r1 = soa.run();
        ASSERT_TRUE(r1.haltedCleanly) << size;
        ASSERT_TRUE(r1.validated) << size;
        EXPECT_EQ(r1.auditViolations, 0u) << size;

        EXPECT_EQ(r0.cycles, r1.cycles) << size;
        EXPECT_EQ(r0.insts, r1.insts) << size;
        // The whole core stats tree — caches, predictors, IQ, LSQ,
        // ROB, audit counters — byte for byte.
        EXPECT_EQ(statsDump(ref), statsDump(soa)) << "iq_size " << size;
        // Architected sweep output too (work counters excluded: they
        // measure host effort, which is exactly what the SoA engine
        // changes).
        EXPECT_EQ(scrubbedJson(r0, true), scrubbedJson(r1, true))
            << "iq_size " << size;
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, IqSoaDifferential,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

// ---------------------------------------------------------------------
// Deterministic perf proxy: SoA must do strictly less host work, and
// the exact counters at the pinned configuration are committed.

struct WorkPoint
{
    std::uint64_t sig = 0, plan = 0, scanned = 0, words = 0;
};

WorkPoint
workOf(const RunResult &r)
{
    return {r.iqSignalDeliveries, r.iqPlanCalls, r.iqSegmentsScanned,
            r.iqLaneWordsTouched};
}

std::string
proxyPath()
{
    return std::string(SCIQ_GOLDEN_DIR) + "/work_proxy.json";
}

/** Per-workload {reference, soa} counters gathered in update mode. */
std::map<std::string, std::pair<WorkPoint, WorkPoint>> g_collected;

WorkPoint
workFromJson(const json::Value &e)
{
    WorkPoint w;
    w.sig = static_cast<std::uint64_t>(e.at("signal_deliveries").asNumber());
    w.plan = static_cast<std::uint64_t>(e.at("plan_calls").asNumber());
    w.scanned =
        static_cast<std::uint64_t>(e.at("segments_scanned").asNumber());
    w.words =
        static_cast<std::uint64_t>(e.at("lane_words_touched").asNumber());
    return w;
}

void
writeProxyFile()
{
    // Merge with the committed file so a filtered update run (a single
    // workload) does not drop the others.
    std::map<std::string, std::pair<WorkPoint, WorkPoint>> merged;
    try {
        json::Value root = json::parseFile(proxyPath());
        for (const std::string &wl : workloadNames()) {
            if (root.at("workloads").contains(wl)) {
                const json::Value &e = root.at("workloads").at(wl);
                merged[wl] = {workFromJson(e.at("reference")),
                              workFromJson(e.at("soa"))};
            }
        }
    } catch (...) {
        // No readable committed file yet: write what we collected.
    }
    for (const auto &[wl, pair] : g_collected)
        merged[wl] = pair;

    std::ofstream out(proxyPath());
    if (!out) {
        std::fprintf(stderr, "ERROR: cannot write %s\n",
                     proxyPath().c_str());
        return;
    }
    auto engine = [&](const WorkPoint &w) {
        out << "{\"signal_deliveries\": " << w.sig
            << ", \"plan_calls\": " << w.plan
            << ", \"segments_scanned\": " << w.scanned
            << ", \"lane_words_touched\": " << w.words << "}";
    };
    out << "{\n  \"config\": {\"iq_size\": 256, \"iterations\": 300, "
           "\"fast_forward\": 1500},\n  \"workloads\": {\n";
    std::size_t i = 0;
    for (const auto &[wl, pair] : merged) {
        out << "    \"" << wl << "\": {\n      \"reference\": ";
        engine(pair.first);
        out << ",\n      \"soa\": ";
        engine(pair.second);
        out << "\n    }" << (++i == merged.size() ? "\n" : ",\n");
    }
    out << "  }\n}\n";
    std::fprintf(stderr, "wrote %s\n", proxyPath().c_str());
}

class IqSoaWorkProxy : public ::testing::TestWithParam<std::string>
{
};

TEST_P(IqSoaWorkProxy, SoaReducesWorkAndMatchesCommittedCounters)
{
    const std::string workload = GetParam();
    const unsigned size = 256;
    RunResult r0 = runSim(soaConfig(workload, size, false, false));
    RunResult r1 = runSim(soaConfig(workload, size, true, false));
    ASSERT_TRUE(r0.validated);
    ASSERT_TRUE(r1.validated);
    EXPECT_EQ(r0.cycles, r1.cycles);
    const WorkPoint ref = workOf(r0);
    const WorkPoint soa = workOf(r1);

    // The tentpole's whole point: strictly less host work per run.
    EXPECT_LT(soa.sig, ref.sig);
    EXPECT_LT(soa.plan, ref.plan);
    EXPECT_LT(soa.scanned, ref.scanned);
    EXPECT_LT(soa.words, ref.words);

    if (g_update_proxy) {
        // Collected here, written as one file after RUN_ALL_TESTS (so
        // running the full suite regenerates every workload at once).
        g_collected[workload] = {ref, soa};
        return;
    }

    json::Value golden;
    try {
        golden = json::parseFile(proxyPath());
    } catch (const json::ParseError &e) {
        FAIL() << e.what()
               << "\n(regenerate with: test_iq_soa --update-work-proxy)";
    }
    ASSERT_TRUE(golden.at("workloads").contains(workload))
        << "no committed counters for " << workload
        << " (regenerate with --update-work-proxy)";
    const json::Value &entry = golden.at("workloads").at(workload);
    auto check = [&](const char *eng, const WorkPoint &w) {
        const json::Value &e = entry.at(eng);
        EXPECT_EQ(e.at("signal_deliveries").asNumber(),
                  static_cast<double>(w.sig))
            << eng;
        EXPECT_EQ(e.at("plan_calls").asNumber(),
                  static_cast<double>(w.plan))
            << eng;
        EXPECT_EQ(e.at("segments_scanned").asNumber(),
                  static_cast<double>(w.scanned))
            << eng;
        EXPECT_EQ(e.at("lane_words_touched").asNumber(),
                  static_cast<double>(w.words))
            << eng;
    };
    check("reference", ref);
    check("soa", soa);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, IqSoaWorkProxy,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

/** The reduction must hold at the small queue size too. */
TEST(IqSoaWork, SoaReducesWorkAtSmallQueue)
{
    for (const std::string &wl : workloadNames()) {
        RunResult r0 = runSim(soaConfig(wl, 64, false, false));
        RunResult r1 = runSim(soaConfig(wl, 64, true, false));
        ASSERT_TRUE(r0.validated) << wl;
        ASSERT_TRUE(r1.validated) << wl;
        EXPECT_EQ(r0.cycles, r1.cycles) << wl;
        EXPECT_LT(r1.iqSignalDeliveries, r0.iqSignalDeliveries) << wl;
        EXPECT_LT(r1.iqPlanCalls, r0.iqPlanCalls) << wl;
        EXPECT_LT(r1.iqLaneWordsTouched, r0.iqLaneWordsTouched) << wl;
        EXPECT_LE(r1.iqSegmentsScanned, r0.iqSegmentsScanned) << wl;
    }
}

// ---------------------------------------------------------------------
// Checkpoint interchange.

TEST(IqSoaCheckpoint, WarmBlobsAreEngineIndependent)
{
    for (const std::string &wl : {std::string("swim"), std::string("vortex")}) {
        SimConfig ref_cfg = soaConfig(wl, 256, false, false);
        SimConfig soa_cfg = soaConfig(wl, 256, true, false);
        Program prog = buildWorkload(wl, ref_cfg.wl);

        FunctionalCore golden0(prog);
        OooCore core0(prog, ref_cfg.core);
        FastForwardStats ff0 = fastForward(golden0, core0, ref_cfg.fastForward);
        const std::string blob0 = saveCheckpoint(ref_cfg, golden0, core0, ff0);

        FunctionalCore golden1(prog);
        OooCore core1(prog, soa_cfg.core);
        FastForwardStats ff1 = fastForward(golden1, core1, soa_cfg.fastForward);
        const std::string blob1 = saveCheckpoint(soa_cfg, golden1, core1, ff1);

        EXPECT_EQ(blob0, blob1) << wl;
    }
}

TEST(IqSoaCheckpoint, RestoreAcrossEnginesMatchesColdBitForBit)
{
    // The reference engine produces the warm checkpoint; the SoA engine
    // restores it.  The restored run must match a cold SoA run byte for
    // byte — warm state carries no engine fingerprint.
    SimConfig ref_cfg = soaConfig("mgrid", 256, false, false);
    SimConfig soa_cfg = soaConfig("mgrid", 256, true, false);
    auto cache = std::make_shared<CheckpointCache>();  // memory-only
    ref_cfg.ckptCache = cache;
    soa_cfg.ckptCache = cache;

    Simulator producer(ref_cfg);
    RunResult first = producer.run();
    ASSERT_TRUE(first.validated);
    EXPECT_FALSE(first.ckptRestored);

    Simulator restored(soa_cfg);
    RunResult warm = restored.run();
    ASSERT_TRUE(warm.validated);
    EXPECT_TRUE(warm.ckptRestored);

    Simulator cold(soaConfig("mgrid", 256, true, false));
    RunResult coldR = cold.run();
    ASSERT_TRUE(coldR.validated);

    EXPECT_EQ(coldR.cycles, warm.cycles);
    EXPECT_EQ(coldR.insts, warm.insts);
    EXPECT_EQ(statsDump(cold), statsDump(restored));
}

// ---------------------------------------------------------------------
// Batched lockstep: batch=K equivalence holds for both engines, and
// the engines agree with each other at every batch width.

TEST(IqSoaBatch, SweepJsonIdenticalAcrossBatchWidthsAndEngines)
{
    std::vector<SimConfig> cfgs;
    for (const std::string &wl : workloadNames()) {
        for (unsigned size : {64u, 256u}) {
            for (bool soa : {false, true}) {
                SimConfig c = makeSegmentedConfig(size, 64, true, true, wl);
                c.wl.iterations = 120;
                c.core.iq.soaLayout = soa;
                cfgs.push_back(c);
            }
        }
    }

    const std::vector<RunResult> base = SweepRunner(1).run(cfgs);
    for (const RunResult &r : base)
        ASSERT_TRUE(r.outcome.ok()) << r.outcome.message;

    // Adjacent pairs are (reference, soa) of the same point: identical
    // architected output, work counters excluded.
    for (std::size_t i = 0; i + 1 < base.size(); i += 2) {
        EXPECT_EQ(scrubbedJson(base[i], true), scrubbedJson(base[i + 1], true))
            << base[i].workload << " size " << base[i].iqSize;
    }

    for (unsigned k : {1u, 4u}) {
        SweepRunner::Options options;
        options.batch = k;
        const std::vector<RunResult> batched =
            SweepRunner(1).run(cfgs, options);
        ASSERT_EQ(batched.size(), base.size());
        for (std::size_t i = 0; i < base.size(); ++i) {
            // Work counters kept in the comparison: the batched driver
            // must not change how much scheduling work each member does.
            EXPECT_EQ(scrubbedJson(base[i], false),
                      scrubbedJson(batched[i], false))
                << "batch=" << k << " config " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Lane-level torture at segment boundaries: drive both engines in
// lockstep and compare every observable after every step.

/** One engine instance with its own register/FU universe. */
struct Rig
{
    Scoreboard scoreboard{128};
    FuPool fu;
    HitMissPredictor hmp{64};
    LeftRightPredictor lrp{64};
    std::unique_ptr<SegmentedIq> iq;

    Rig(IqParams params, bool soa)
    {
        params.soaLayout = soa;
        iq = std::make_unique<SegmentedIq>(params, scoreboard, fu, &hmp,
                                           &lrp);
    }
};

/**
 * Drives the reference and SoA engines through an identical script and
 * compares occupancy, chain usage, per-instruction membership state and
 * issue order after every step.
 */
class DualRig
{
  public:
    explicit DualRig(const IqParams &params)
        : ref_(params, false), soa_(params, true)
    {
    }

    /** Dispatch the same instruction into both engines (if accepted). */
    bool
    dispatch(SeqNum seq, Opcode op, RegIndex rd = kInvalidReg,
             RegIndex rs1 = kInvalidReg, RegIndex rs2 = kInvalidReg)
    {
        DynInstPtr a = makeInst(seq, op, rd, rs1, rs2);
        DynInstPtr b = makeInst(seq, op, rd, rs1, rs2);
        const bool can_a = ref_.iq->canInsert(a);
        const bool can_b = soa_.iq->canInsert(b);
        EXPECT_EQ(can_a, can_b) << "canInsert disagrees, seq " << seq;
        if (!can_a || !can_b)
            return false;
        insertInto(ref_, a);
        insertInto(soa_, b);
        live_[seq] = {a, b};
        compare("dispatch", seq);
        return true;
    }

    /** One issue round with an issue budget; orders must match. */
    std::vector<SeqNum>
    issue(unsigned budget, bool complete = true)
    {
        std::vector<SeqNum> got_a = issueOn(ref_, budget, complete);
        std::vector<SeqNum> got_b = issueOn(soa_, budget, complete);
        EXPECT_EQ(got_a, got_b) << "issue order diverged at cycle "
                                << cycle_;
        for (SeqNum s : got_a)
            live_.erase(s);
        compare("issue", 0);
        return got_a;
    }

    void
    tick(bool busy = true)
    {
        ++cycle_;
        ref_.iq->tick(cycle_, busy);
        soa_.iq->tick(cycle_, busy);
        compare("tick", 0);
    }

    void
    loadMiss(SeqNum seq)
    {
        auto it = issued_.find(seq);
        ASSERT_NE(it, issued_.end());
        ref_.iq->onLoadMiss(it->second.first, cycle_);
        soa_.iq->onLoadMiss(it->second.second, cycle_);
        compare("loadMiss", seq);
    }

    void
    loadComplete(SeqNum seq, bool writeback = true)
    {
        auto it = issued_.find(seq);
        ASSERT_NE(it, issued_.end());
        ref_.iq->onLoadComplete(it->second.first, cycle_);
        soa_.iq->onLoadComplete(it->second.second, cycle_);
        if (writeback) {
            setReady(it->second.first->physDst);
            ref_.iq->onWriteback(it->second.first, cycle_);
            soa_.iq->onWriteback(it->second.second, cycle_);
        }
        compare("loadComplete", seq);
    }

    /** Squash everything younger than `keep` (youngest first). */
    void
    squash(SeqNum keep)
    {
        std::vector<SeqNum> doomed;
        for (const auto &[seq, pair] : live_) {
            if (seq > keep)
                doomed.push_back(seq);
        }
        for (auto it = doomed.rbegin(); it != doomed.rend(); ++it) {
            ref_.iq->onSquashInst(live_[*it].first);
            soa_.iq->onSquashInst(live_[*it].second);
        }
        ref_.iq->squash(keep);
        soa_.iq->squash(keep);
        for (SeqNum s : doomed)
            live_.erase(s);
        compare("squash", keep);
    }

    void
    setReady(RegIndex r)
    {
        if (r == kInvalidReg)
            return;
        ref_.scoreboard.setReady(r);
        soa_.scoreboard.setReady(r);
    }

    /** Model an outstanding producer outside the queue. */
    void
    clearReady(RegIndex r)
    {
        ref_.scoreboard.clearReady(r);
        soa_.scoreboard.clearReady(r);
    }

    /** Tick/issue until `seq` issues (it must, within the bound). */
    void
    issueUntil(SeqNum seq, bool complete, unsigned max_cycles = 30)
    {
        for (unsigned i = 0; i < max_cycles; ++i) {
            std::vector<SeqNum> got = issue(1, complete);
            if (!got.empty() && got.front() == seq)
                return;
            EXPECT_TRUE(got.empty()) << "unexpected issue of "
                                     << got.front();
            tick();
        }
        FAIL() << "seq " << seq << " never issued";
    }

    std::size_t occupancy() const { return ref_.iq->occupancy(); }
    Cycle cycle() const { return cycle_; }

    /** Full observable comparison between the two engines. */
    void
    compare(const char *when, SeqNum seq)
    {
        SCOPED_TRACE(std::string(when) + " seq " + std::to_string(seq) +
                     " cycle " + std::to_string(cycle_));
        ASSERT_EQ(ref_.iq->occupancy(), soa_.iq->occupancy());
        ASSERT_EQ(ref_.iq->chainsInUse(), soa_.iq->chainsInUse());
        for (unsigned k = 0; k < ref_.iq->numSegments(); ++k) {
            ASSERT_EQ(ref_.iq->segmentOccupancy(k),
                      soa_.iq->segmentOccupancy(k))
                << "segment " << k;
        }
        for (const auto &[s, pair] : live_) {
            const auto &[a, b] = pair;
            ASSERT_EQ(a->seg.segment, b->seg.segment) << "seq " << s;
            ASSERT_EQ(ref_.iq->debugEffectiveDelay(a),
                      soa_.iq->debugEffectiveDelay(b))
                << "seq " << s;
            ASSERT_EQ(a->seg.numMemberships, b->seg.numMemberships)
                << "seq " << s;
            for (int m = 0; m < a->seg.numMemberships; ++m) {
                const ChainMembership ma = ref_.iq->debugMembership(a, m);
                const ChainMembership mb = soa_.iq->debugMembership(b, m);
                ASSERT_EQ(ma.chain, mb.chain) << "seq " << s << " m " << m;
                ASSERT_EQ(ma.gen, mb.gen) << "seq " << s << " m " << m;
                ASSERT_EQ(ma.delay, mb.delay) << "seq " << s << " m " << m;
                ASSERT_EQ(ma.selfTimed, mb.selfTimed)
                    << "seq " << s << " m " << m;
                ASSERT_EQ(ma.suspended, mb.suspended)
                    << "seq " << s << " m " << m;
            }
        }
    }

    /** Tick both engines until empty (or a bound), issuing greedily. */
    void
    drain(unsigned max_cycles = 200)
    {
        for (unsigned i = 0; i < max_cycles && occupancy() > 0; ++i) {
            issue(8);
            tick();
        }
        EXPECT_EQ(occupancy(), 0u) << "failed to drain";
    }

  private:
    void
    insertInto(Rig &rig, const DynInstPtr &inst)
    {
        if (inst->physDst != kInvalidReg)
            rig.scoreboard.clearReady(inst->physDst);
        rig.iq->insert(inst, cycle_);
    }

    std::vector<SeqNum>
    issueOn(Rig &rig, unsigned budget, bool complete)
    {
        std::vector<SeqNum> got;
        rig.iq->issueSelect(cycle_, [&](const DynInstPtr &inst) {
            if (got.size() >= budget)
                return false;
            got.push_back(inst->seq);
            inst->issued = true;
            if (complete && inst->physDst != kInvalidReg)
                rig.scoreboard.setReady(inst->physDst);
            // Record for load miss/complete scripting (live_ still
            // holds the pair; issue() erases it after both engines).
            auto it = live_.find(inst->seq);
            if (it != live_.end())
                issued_[inst->seq] = it->second;
            return true;
        });
        return got;
    }

    Rig ref_;
    Rig soa_;
    Cycle cycle_ = 0;
    std::map<SeqNum, std::pair<DynInstPtr, DynInstPtr>> live_;
    std::map<SeqNum, std::pair<DynInstPtr, DynInstPtr>> issued_;
};

IqParams
tinyParams(unsigned entries, unsigned seg_size)
{
    IqParams p;
    p.numEntries = entries;
    p.segmentSize = seg_size;
    p.issueWidth = 4;
    p.maxChains = -1;
    p.enableBypass = false;  // keep everything flowing through segments
    p.enablePushdown = true;
    p.predictedLoadLatency = 4;
    return p;
}

TEST(IqSoaTorture, DeliveryAcrossManyTinySegments)
{
    // 6 two-entry segments: every chain-wire signal crosses several
    // segment boundaries and every promotion straddles a lane-word
    // boundary.  A never-ready load heads the chain; dependents fill
    // the upper segments.
    DualRig rig(tinyParams(12, 2));
    rig.clearReady(intReg(1));  // the head's address is outstanding
    ASSERT_TRUE(rig.dispatch(1, Opcode::LD, intReg(2), intReg(1)));
    for (SeqNum s = 2; s <= 9; ++s) {
        rig.dispatch(s, Opcode::ADD, intReg(10 + s), intReg(2), intReg(3));
        rig.tick();
    }
    for (int i = 0; i < 10; ++i) {
        rig.issue(2);
        rig.tick();
    }
    // Release the head: the Assert signal walks up through all six
    // segments while dependents promote down past each boundary.
    rig.setReady(intReg(1));
    rig.setReady(intReg(3));
    rig.drain();
}

TEST(IqSoaTorture, SuspendResumeStraddlingBoundaries)
{
    DualRig rig(tinyParams(12, 2));
    ASSERT_TRUE(rig.dispatch(1, Opcode::LD, intReg(2), intReg(1)));
    rig.setReady(intReg(1));
    for (SeqNum s = 2; s <= 7; ++s)
        rig.dispatch(s, Opcode::ADD, intReg(10 + s), intReg(2), intReg(3));
    rig.setReady(intReg(3));

    // Issue the load (once it promotes into segment 0), then miss: the
    // Suspend signal chases the earlier Assert up the segment stack
    // while dependents are mid-promotion.
    rig.issueUntil(1, /*complete=*/false);
    rig.tick();
    rig.loadMiss(1);
    for (int i = 0; i < 6; ++i) {
        rig.issue(2);
        rig.tick();
    }
    // Data returns: Resume propagates and the queue drains.
    rig.loadComplete(1);
    rig.tick();
    rig.drain();
}

TEST(IqSoaTorture, SquashMidDelivery)
{
    DualRig rig(tinyParams(12, 2));
    ASSERT_TRUE(rig.dispatch(1, Opcode::LD, intReg(2), intReg(1)));
    ASSERT_TRUE(rig.dispatch(2, Opcode::LD, intReg(3), intReg(1)));
    for (SeqNum s = 3; s <= 8; ++s)
        rig.dispatch(s, Opcode::ADD, intReg(10 + s), intReg(2), intReg(3));
    rig.tick();
    rig.tick();

    // Squash the younger half while chain signals are still in flight,
    // then re-fill the freed slots with a fresh dependence pattern.
    rig.squash(4);
    for (SeqNum s = 9; s <= 12; ++s)
        rig.dispatch(s, Opcode::ADD, intReg(20 + (s - 9)), intReg(3),
                     intReg(4));
    rig.tick();
    rig.setReady(intReg(1));
    rig.setReady(intReg(3));
    rig.setReady(intReg(4));
    rig.drain();
}

TEST(IqSoaTorture, DeadlockRecoveryParity)
{
    // Wedge a 4-entry queue behind a never-ready load; with the core
    // idle the watchdog fires and both engines must run the identical
    // recovery (heads hoisted, memberships rebuilt).  Bypass on so all
    // four instructions fit past the 2-entry dispatch segment.
    IqParams params = tinyParams(4, 2);
    params.enableBypass = true;
    DualRig rig(params);
    rig.clearReady(intReg(1));
    ASSERT_TRUE(rig.dispatch(1, Opcode::LD, intReg(2), intReg(1)));
    for (SeqNum s = 2; s <= 4; ++s)
        rig.dispatch(s, Opcode::ADD, intReg(10 + s), intReg(2), intReg(3));
    ASSERT_EQ(rig.occupancy(), 4u);
    for (int i = 0; i < 6; ++i) {
        rig.issue(4);
        rig.tick(/*busy=*/false);
    }
    EXPECT_EQ(rig.occupancy(), 4u);
    rig.setReady(intReg(1));
    rig.setReady(intReg(2));
    rig.setReady(intReg(3));
    rig.drain();
}

} // namespace

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-work-proxy")
            g_update_proxy = true;
    }
    const int rc = RUN_ALL_TESTS();
    if (g_update_proxy && rc == 0)
        writeProxyFile();
    return rc;
}
