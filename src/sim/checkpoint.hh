/**
 * @file
 * Warm-state checkpoint/restore (paper methodology, DESIGN.md §12).
 *
 * The paper fast-forwards 20 billion instructions before every
 * 100M-instruction sample; at our scale that warm-up prefix is re-run
 * for every configuration of a sweep even though the produced state —
 * functional-core architectural state and memory image, cache tag
 * arrays, branch/BTB/RAS/hit-miss predictor tables — depends only on
 * (workload, ff length, memory config, branch config), never on the IQ
 * under test.  This module snapshots that state once into a versioned
 * binary blob and restores it into fresh timing cores in milliseconds,
 * with a strict contract: a restored run produces bit-identical
 * architected statistics to a cold fast-forwarded run.
 *
 * Blob layout (all little-endian, serial::Writer encoding):
 *
 *   "SCIQCKPT" magic | u32 version | u64 key hash |
 *   workload name/params | u64 ff insts | u64 program checksum |
 *   "FFST" FastForwardStats | "FUNC" FunctionalCore |
 *   "L1I_" "L1D_" "L2__" caches | "BPRD" "BTB_" "RAS_" "HMP_" "LRP_"
 *   predictors | "END_" | u64 FNV-1a trailer over everything before it.
 *
 * The trailer detects corruption/truncation before any section is
 * parsed; the key hash and program checksum reject checkpoints taken
 * under a different workload/memory/branch configuration.  All
 * rejection paths throw CheckpointError with a specific message.
 */

#ifndef SCIQ_SIM_CHECKPOINT_HH
#define SCIQ_SIM_CHECKPOINT_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/errors.hh"
#include "sim/fast_forward.hh"
#include "sim/sim_config.hh"

namespace sciq {

// CheckpointError lives in common/errors.hh as part of the structured
// error taxonomy (DESIGN.md §13); re-exported here for its users.

/** Format version; bump on any layout change. */
constexpr std::uint32_t kCheckpointVersion = 1;

/**
 * Cache key for a warm-up: hashes exactly the inputs that determine
 * the saved bits — workload (name + generator params), fast-forward
 * length, cache geometries, predictor geometries and warmICache.
 * IQ/FU/width parameters are deliberately excluded: that independence
 * is what lets a whole sweep share one warm-up per workload.
 */
std::uint64_t checkpointKeyHash(const SimConfig &config);

/**
 * Serialize the warm state produced by fastForward(golden, core, ...).
 * Must be called before the core's first tick(), while the memory
 * hierarchy is quiescent.
 */
std::string saveCheckpoint(const SimConfig &config,
                           const FunctionalCore &golden, OooCore &core,
                           const FastForwardStats &ff);

/**
 * Validate `blob` against (config, program) and restore it into `core`
 * exactly as the cold path would: caches and predictor tables are
 * overwritten, and the core's architectural state is seeded unless the
 * warm-up hit HALT.  Returns the FastForwardStats recorded at save
 * time.  Throws CheckpointError on any mismatch or corruption.
 */
FastForwardStats restoreCheckpoint(const std::string &blob,
                                   const SimConfig &config,
                                   const Program &program, OooCore &core);

/** Atomically (write + rename) persist a blob; CheckpointError on I/O. */
void writeCheckpointFile(const std::string &path, const std::string &blob);

/** Read a whole checkpoint file; CheckpointError if unreadable. */
std::string readCheckpointFile(const std::string &path);

/**
 * Sweep-level checkpoint reuse: a thread-safe blob cache keyed by
 * checkpointKeyHash, optionally backed by a directory of
 * `ckpt-<key>.sciqckpt` files.
 *
 * Producer election makes concurrent sweeps do each distinct warm-up
 * exactly once: the first thread to ask for a missing key becomes its
 * producer (findOrBegin returns nullptr) while later askers block until
 * publish()/cancel().  Results stay bit-identical regardless of which
 * job ends up producing, so the election order is free to race.
 *
 * With a backing directory the election also spans processes
 * (distributed sweep workers all pointed at one ckpt_dir, DESIGN.md
 * §17): the first process to create `<blob path>.lock` (O_EXCL)
 * produces; the others poll for the published blob file and take a disk
 * hit once it appears.  A loser that outwaits `electionWaitMs` produces
 * its own copy — wasteful but still correct, since every producer
 * writes bit-identical state.  publish()/cancel() release the lock; a
 * crashed producer's stale lock is bounded by the same timeout.
 */
class CheckpointCache
{
  public:
    using Blob = std::shared_ptr<const std::string>;

    /** @param dir backing directory; empty = in-memory only. */
    explicit CheckpointCache(std::string dir = "");

    /**
     * Return the blob for `key`, blocking while another thread
     * produces it.  Returns nullptr to exactly one caller per missing
     * key; that caller must publish() or cancel() the key.
     */
    Blob findOrBegin(std::uint64_t key);

    /** Store a produced blob (and write it to the backing dir). */
    Blob publish(std::uint64_t key, std::string blob);

    /** Give up producing `key` (e.g. the warm-up threw). */
    void cancel(std::uint64_t key);

    /** Backing file path for a key ("" when in-memory only). */
    std::string pathFor(std::uint64_t key) const;

    const std::string &dir() const { return dir_; }

    /**
     * Cross-process election patience: how long a process that lost
     * the lock race waits for the winner's blob before producing a
     * duplicate, and how often it probes.  Public so tests can shrink
     * the stale-lock timeout from minutes to milliseconds.
     */
    unsigned electionWaitMs = 120'000;
    unsigned electionPollMs = 50;

    // Reuse accounting (monotonic; read after a sweep completes).
    std::uint64_t memoryHits() const;
    std::uint64_t diskHits() const;
    std::uint64_t produced() const;

  private:
    struct Entry
    {
        bool producing = false;
        bool diskLock = false;  ///< this process holds the .lock file
        Blob blob;
    };

    bool tryLockKey(std::uint64_t key) const;
    void unlockKey(std::uint64_t key) const;

    std::string dir_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::unordered_map<std::uint64_t, Entry> entries_;
    std::uint64_t memoryHits_ = 0;
    std::uint64_t diskHits_ = 0;
    std::uint64_t produced_ = 0;
};

} // namespace sciq

#endif // SCIQ_SIM_CHECKPOINT_HH
