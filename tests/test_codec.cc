/** @file Encode/decode round-trip tests for the SRV binary codec. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/codec.hh"

using namespace sciq;

namespace {

/** A representative instruction of each format for an opcode. */
Instruction
sampleFor(Opcode op)
{
    Instruction i;
    i.op = op;
    switch (opInfo(op).format) {
      case Format::R:
        i.rd = intReg(3);
        i.rs1 = fpReg(1);
        i.rs2 = intReg(31);
        break;
      case Format::I:
        i.rd = fpReg(7);
        i.rs1 = intReg(2);
        i.imm = -1234;
        break;
      case Format::M:
        if (opInfo(op).opClass == OpClass::MemWrite)
            i.rs2 = intReg(5);
        else
            i.rd = intReg(5);
        i.rs1 = intReg(6);
        i.imm = 4095;
        break;
      case Format::B:
        i.rs1 = intReg(8);
        i.rs2 = intReg(9);
        i.imm = -100;
        break;
      case Format::J:
        i.rd = op == Opcode::J ? kInvalidReg : intReg(31);
        i.imm = 7777;
        break;
      case Format::JR:
        i.rd = op == Opcode::JR ? kInvalidReg : intReg(30);
        i.rs1 = intReg(29);
        break;
      case Format::N:
        break;
    }
    return i;
}

} // namespace

class CodecRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(CodecRoundTrip, EveryOpcodeSurvivesEncodeDecode)
{
    const auto op = static_cast<Opcode>(GetParam());
    Instruction orig = sampleFor(op);
    ASSERT_TRUE(encodable(orig)) << opInfo(op).mnemonic;
    Instruction back = decode(encode(orig));
    EXPECT_EQ(back.op, orig.op);
    EXPECT_TRUE(back == orig) << "mnemonic " << opInfo(op).mnemonic;
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, CodecRoundTrip,
                         ::testing::Range(0u, kNumOpcodes));

TEST(Codec, ImmediateBoundsI)
{
    Instruction i;
    i.op = Opcode::ADDI;
    i.rd = intReg(1);
    i.rs1 = intReg(2);
    i.imm = kImm14Max;
    EXPECT_TRUE(encodable(i));
    EXPECT_EQ(decode(encode(i)).imm, kImm14Max);
    i.imm = kImm14Min;
    EXPECT_TRUE(encodable(i));
    EXPECT_EQ(decode(encode(i)).imm, kImm14Min);
    i.imm = kImm14Max + 1;
    EXPECT_FALSE(encodable(i));
    i.imm = kImm14Min - 1;
    EXPECT_FALSE(encodable(i));
}

TEST(Codec, ImmediateBoundsJ)
{
    Instruction i;
    i.op = Opcode::JAL;
    i.rd = intReg(31);
    i.imm = kImm20Max;
    EXPECT_TRUE(encodable(i));
    EXPECT_EQ(decode(encode(i)).imm, kImm20Max);
    i.imm = kImm20Min;
    EXPECT_EQ(decode(encode(i)).imm, kImm20Min);
    i.imm = kImm20Max + 1;
    EXPECT_FALSE(encodable(i));
}

TEST(Codec, BadRegisterUnencodable)
{
    Instruction i;
    i.op = Opcode::ADD;
    i.rd = 64;  // out of the 64-register architectural space
    i.rs1 = intReg(1);
    i.rs2 = intReg(2);
    EXPECT_FALSE(encodable(i));
}

TEST(Codec, EncodeUnencodablePanics)
{
    Instruction i;
    i.op = Opcode::ADDI;
    i.rd = intReg(1);
    i.rs1 = intReg(2);
    i.imm = 1 << 20;
    EXPECT_THROW(encode(i), PanicError);
}

TEST(Codec, DecodeInvalidOpcodePanics)
{
    const std::uint32_t bad = 0xFC000000u;  // opcode field 63
    EXPECT_THROW(decode(bad), PanicError);
}

TEST(Codec, StoreDataRegisterField)
{
    // Stores carry the data register where loads carry the dest.
    Instruction st;
    st.op = Opcode::ST;
    st.rs2 = intReg(17);
    st.rs1 = intReg(3);
    st.imm = 40;
    Instruction back = decode(encode(st));
    EXPECT_EQ(back.rs2, intReg(17));
    EXPECT_EQ(back.rs1, intReg(3));
    EXPECT_EQ(back.imm, 40);
}

TEST(Codec, FpRegistersEncodeAsHighIndices)
{
    Instruction i;
    i.op = Opcode::FADD;
    i.rd = fpReg(31);
    i.rs1 = fpReg(0);
    i.rs2 = fpReg(15);
    Instruction back = decode(encode(i));
    EXPECT_EQ(back.rd, fpReg(31));
    EXPECT_TRUE(isFpReg(back.rd));
    EXPECT_EQ(back.rs1, fpReg(0));
    EXPECT_EQ(back.rs2, fpReg(15));
}
