/**
 * @file
 * The idealised monolithic instruction queue: single-cycle wakeup and
 * select over the entire window, any size.  This is the paper's upper
 * bound ("ideal" curves in Figures 2 and 3); a real implementation of
 * this structure at 512 entries would not meet cycle time.
 *
 * Wakeup is event-driven (DESIGN.md section 11): entries with pending
 * operands register as waiters on the producing physical registers and
 * move to a seq-sorted ready list when the core reports the register
 * ready (onRegReady), so issue selection walks only ready entries
 * instead of polling every resident instruction's scoreboard bits each
 * cycle.  Scoreboard readiness is monotone while an instruction is
 * resident, which is what makes the ready set grow-only between
 * issues.
 */

#ifndef SCIQ_IQ_IDEAL_IQ_HH
#define SCIQ_IQ_IDEAL_IQ_HH

#include <vector>

#include "iq/iq_base.hh"

namespace sciq {

class IdealIq : public IqBase
{
  public:
    IdealIq(const IqParams &params, const Scoreboard &scoreboard,
            const FuPool &fu);

    bool canInsert(const DynInstPtr &inst) override;
    void insert(const DynInstPtr &inst, Cycle cycle) override;
    void issueSelect(Cycle cycle, const TryIssue &try_issue) override;
    void tick(Cycle cycle, bool core_busy) override;
    void onRegReady(RegIndex r) override;
    void squash(SeqNum youngest_kept) override;
    std::size_t occupancy() const override { return insts.size(); }

  private:
    friend class Auditor;

    /** Append to the ready list, keeping it seq-sorted. */
    void pushReady(const DynInstPtr &inst);

    /** Held in dispatch (= program) order, so oldest-first is a scan. */
    std::vector<DynInstPtr> insts;

    /**
     * Resident instructions whose gating operands are all ready, in
     * seq order.  Issue selection walks only this list.
     */
    std::vector<DynInstPtr> readyList;

    /**
     * Per-physical-register waiter lists.  Entries hold strong refs
     * (pinning the pool slot) but are guarded by ideal.inQueue, so a
     * squashed waiter is simply dropped when its register fires; every
     * cleared register is eventually set ready (writeback or squash
     * undo), so the lists drain promptly.
     */
    std::vector<std::vector<DynInstPtr>> waiters;
};

} // namespace sciq

#endif // SCIQ_IQ_IDEAL_IQ_HH
