#!/bin/sh
# Launch a local distributed sweep: one sweep_serve coordinator plus a
# small worker fleet on this machine (DESIGN.md §17).
#
#   tools/sweep_local.sh [-b build_dir] [-w workers] [-k kill_idx] \
#                        [-d ckpt_dir] -- <sweep_serve args...>
#
#   -b DIR   build tree holding examples/sweep_serve (default ./build)
#   -w N     worker processes to start (default 3)
#   -k IDX   chaos mode: kill -9 worker IDX once the coordinator's
#            journal shows progress (requires journal= in the serve
#            args); the victim's exit status is ignored
#   -d DIR   shared ckpt_dir= handed to every worker
#
# The serve args must include socket=PATH (workers connect to it).
# Exit status: the coordinator's, unless a non-victim worker failed.
set -eu

build=./build
workers=3
kill_idx=""
ckpt_dir=""

while getopts "b:w:k:d:" opt; do
  case "$opt" in
    b) build=$OPTARG ;;
    w) workers=$OPTARG ;;
    k) kill_idx=$OPTARG ;;
    d) ckpt_dir=$OPTARG ;;
    *) echo "usage: $0 [-b dir] [-w n] [-k idx] [-d ckpt_dir] -- args" >&2
       exit 2 ;;
  esac
done
shift $((OPTIND - 1))

socket=""
journal=""
for arg in "$@"; do
  case "$arg" in
    socket=*) socket=${arg#socket=} ;;
    journal=*) journal=${arg#journal=} ;;
  esac
done
if [ -z "$socket" ]; then
  echo "sweep_local: socket=PATH must be among the sweep_serve args" >&2
  exit 2
fi
if [ -n "$kill_idx" ] && [ -z "$journal" ]; then
  echo "sweep_local: -k needs journal= among the sweep_serve args" \
       "(used to wait for sweep progress before killing)" >&2
  exit 2
fi

"$build/examples/sweep_serve" "$@" &
serve_pid=$!

# Workers retry their connect during startup, but waiting for the
# socket here keeps the timeline readable and catches a coordinator
# that died on bad arguments immediately.
tries=0
while [ ! -S "$socket" ]; do
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "sweep_local: coordinator exited before listening" >&2
    wait "$serve_pid" || exit $?
    exit 1
  fi
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "sweep_local: coordinator socket never appeared" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done

pids=""
w=1
while [ "$w" -le "$workers" ]; do
  if [ -n "$ckpt_dir" ]; then
    "$build/examples/sweep_worker" "socket=$socket" "name=w$w" \
        "ckpt_dir=$ckpt_dir" &
  else
    "$build/examples/sweep_worker" "socket=$socket" "name=w$w" &
  fi
  pids="$pids $w:$!"
  w=$((w + 1))
done

if [ -n "$kill_idx" ]; then
  # Wait for at least one journaled result so the victim dies mid-sweep
  # (possibly holding a lease), not before doing anything.
  tries=0
  while [ ! -s "$journal" ] && [ "$tries" -le 600 ]; do
    tries=$((tries + 1))
    sleep 0.1
  done
  victim=""
  for entry in $pids; do
    case "$entry" in
      "$kill_idx":*) victim=${entry#*:} ;;
    esac
  done
  if [ -n "$victim" ]; then
    echo "sweep_local: kill -9 worker $kill_idx (pid $victim)"
    kill -9 "$victim" 2>/dev/null || true
  else
    echo "sweep_local: -k $kill_idx: no such worker" >&2
  fi
fi

status=0
for entry in $pids; do
  idx=${entry%%:*}
  pid=${entry#*:}
  rc=0
  wait "$pid" || rc=$?
  if [ "$rc" -ne 0 ] && [ "$idx" != "$kill_idx" ]; then
    echo "sweep_local: worker $idx failed (exit $rc)" >&2
    status=1
  fi
done

wait "$serve_pid" || status=$?
exit "$status"
