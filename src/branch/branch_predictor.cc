#include "branch_predictor.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace sciq {

HybridBranchPredictor::HybridBranchPredictor(const BranchPredictorParams &p)
    : params(p), statsGroup("bpred")
{
    SCIQ_ASSERT(isPowerOf2(p.globalPhtEntries) &&
                    isPowerOf2(p.localPhtEntries) &&
                    isPowerOf2(p.choicePhtEntries) &&
                    isPowerOf2(p.localHistoryRegs),
                "predictor table sizes must be powers of two");

    historyMask = (1u << params.globalHistoryBits) - 1;
    globalPht.assign(params.globalPhtEntries, SatCounter(2, 1));
    localHistories.assign(params.localHistoryRegs, 0);
    localPht.assign(params.localPhtEntries, SatCounter(2, 1));
    choicePht.assign(params.choicePhtEntries, SatCounter(2, 1));

    statsGroup.addScalar("lookups", &lookups, "total predictions");
    statsGroup.addScalar("cond_predicts", &condPredicts,
                         "conditional branches predicted");
    statsGroup.addScalar("cond_mispredicts", &condMispredicts,
                         "conditional branches mispredicted");
    statsGroup.addScalar("choice_global", &choiceGlobal,
                         "predictions taken from the global component");
}

std::size_t
HybridBranchPredictor::globalIndex(std::uint32_t history) const
{
    return history & (params.globalPhtEntries - 1);
}

std::size_t
HybridBranchPredictor::localRegIndex(Addr pc) const
{
    return (pc >> 2) & (params.localHistoryRegs - 1);
}

std::size_t
HybridBranchPredictor::choiceIndex(std::uint32_t history) const
{
    return history & (params.choicePhtEntries - 1);
}

bool
HybridBranchPredictor::predict(Addr pc)
{
    lookups.inc();
    condPredicts.inc();

    const std::uint32_t hist = globalHistory;
    const bool global_pred = globalPht[globalIndex(hist)].isSet();

    const std::uint32_t lhist =
        localHistories[localRegIndex(pc)] & ((1u << params.localHistoryBits) - 1);
    const bool local_pred =
        localPht[lhist & (params.localPhtEntries - 1)].isSet();

    const bool use_global = choicePht[choiceIndex(hist)].isSet();
    if (use_global)
        choiceGlobal.inc();

    const bool pred = use_global ? global_pred : local_pred;

    // Speculative global-history update; squashes restore via snapshot.
    globalHistory = ((globalHistory << 1) | (pred ? 1 : 0)) & historyMask;
    return pred;
}

void
HybridBranchPredictor::update(Addr pc, bool taken,
                              HistorySnapshot history_at_predict)
{
    const std::uint32_t hist = history_at_predict;

    SatCounter &gctr = globalPht[globalIndex(hist)];
    const bool global_pred = gctr.isSet();

    const std::size_t lreg = localRegIndex(pc);
    const std::uint32_t lhist =
        localHistories[lreg] & ((1u << params.localHistoryBits) - 1);
    SatCounter &lctr = localPht[lhist & (params.localPhtEntries - 1)];
    const bool local_pred = lctr.isSet();

    // Train the chooser toward whichever component was right.
    SatCounter &cctr = choicePht[choiceIndex(hist)];
    if (global_pred != local_pred) {
        if (global_pred == taken)
            cctr.increment();
        else
            cctr.decrement();
    }

    if (taken) {
        gctr.increment();
        lctr.increment();
    } else {
        gctr.decrement();
        lctr.decrement();
    }

    localHistories[lreg] = ((localHistories[lreg] << 1) | (taken ? 1 : 0)) &
                           ((1u << params.localHistoryBits) - 1);
}

void
HybridBranchPredictor::warmTrain(Addr pc, bool taken)
{
    lookups.inc();
    condPredicts.inc();

    const std::uint32_t hist = globalHistory;
    SatCounter &gctr = globalPht[globalIndex(hist)];
    const bool global_pred = gctr.isSet();

    const std::size_t lreg = localRegIndex(pc);
    const std::uint32_t lmask = (1u << params.localHistoryBits) - 1;
    const std::uint32_t lhist = localHistories[lreg] & lmask;
    SatCounter &lctr = localPht[lhist & (params.localPhtEntries - 1)];
    const bool local_pred = lctr.isSet();

    SatCounter &cctr = choicePht[choiceIndex(hist)];
    const bool use_global = cctr.isSet();
    if (use_global)
        choiceGlobal.inc();
    const bool pred = use_global ? global_pred : local_pred;

    // predict()'s speculative shift: the *prediction* enters the
    // global history (update() never rewrites it).
    globalHistory = ((hist << 1) | (pred ? 1 : 0)) & historyMask;

    if (global_pred != local_pred) {
        if (global_pred == taken)
            cctr.increment();
        else
            cctr.decrement();
    }
    if (taken) {
        gctr.increment();
        lctr.increment();
    } else {
        gctr.decrement();
        lctr.decrement();
    }
    localHistories[lreg] = ((localHistories[lreg] << 1) | (taken ? 1 : 0)) &
                           lmask;
}

namespace {

void
saveCounters(serial::Writer &w, const std::vector<SatCounter> &table)
{
    w.u64(table.size());
    for (const SatCounter &c : table)
        w.u8(static_cast<std::uint8_t>(c.read()));
}

void
restoreCounters(serial::Reader &r, std::vector<SatCounter> &table,
                const char *what)
{
    const std::uint64_t n = r.u64();
    if (n != table.size()) {
        throw serial::Error(std::string(what) + " table size mismatch: "
                            "snapshot " + std::to_string(n) +
                            ", configured " + std::to_string(table.size()));
    }
    for (SatCounter &c : table)
        c.set(r.u8());
}

} // namespace

void
HybridBranchPredictor::save(serial::Writer &w) const
{
    w.u32(globalHistory);
    saveCounters(w, globalPht);
    w.u64(localHistories.size());
    for (std::uint32_t h : localHistories)
        w.u32(h);
    saveCounters(w, localPht);
    saveCounters(w, choicePht);
    w.f64(lookups.value());
    w.f64(condPredicts.value());
    w.f64(condMispredicts.value());
    w.f64(choiceGlobal.value());
}

void
HybridBranchPredictor::restore(serial::Reader &r)
{
    globalHistory = r.u32();
    restoreCounters(r, globalPht, "global PHT");
    const std::uint64_t nhist = r.u64();
    if (nhist != localHistories.size()) {
        throw serial::Error("local history count mismatch: snapshot " +
                            std::to_string(nhist) + ", configured " +
                            std::to_string(localHistories.size()));
    }
    for (std::uint32_t &h : localHistories)
        h = r.u32();
    restoreCounters(r, localPht, "local PHT");
    restoreCounters(r, choicePht, "choice PHT");
    lookups.set(r.f64());
    condPredicts.set(r.f64());
    condMispredicts.set(r.f64());
    choiceGlobal.set(r.f64());
}

} // namespace sciq
