/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/stats.hh"

using namespace sciq;
using namespace sciq::stats;

TEST(StatsScalar, IncrementAndSet)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    s.inc();
    s.inc(2.5);
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(7);
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(StatsAverage, MeanOfSamples)
{
    Average a;
    EXPECT_EQ(a.value(), 0.0);
    a.sample(1);
    a.sample(2);
    a.sample(3);
    EXPECT_DOUBLE_EQ(a.value(), 2.0);
    EXPECT_EQ(a.samples(), 3u);
    a.reset();
    EXPECT_EQ(a.samples(), 0u);
}

TEST(StatsDistribution, TracksMinMaxMean)
{
    Distribution d;
    d.configure(0, 100, 10);
    d.sample(5);
    d.sample(15);
    d.sample(95);
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
    EXPECT_DOUBLE_EQ(d.max(), 95.0);
    EXPECT_NEAR(d.mean(), (5 + 15 + 95) / 3.0, 1e-9);
    EXPECT_EQ(d.samples(), 3u);
}

TEST(StatsDistribution, HistogramBuckets)
{
    Distribution d;
    d.configure(0, 4, 1);
    d.sample(0);
    d.sample(1);
    d.sample(1.5);
    d.sample(100);  // overflow lands in the final bucket
    const auto &h = d.histogram();
    EXPECT_EQ(h[0], 1u);
    EXPECT_EQ(h[1], 2u);
    EXPECT_EQ(h.back(), 1u);
}

TEST(StatsGroup, LookupByName)
{
    Group g("core");
    Scalar s;
    s.set(42);
    g.addScalar("cycles", &s, "desc");
    EXPECT_DOUBLE_EQ(g.lookup("cycles"), 42.0);
    EXPECT_TRUE(g.contains("cycles"));
    EXPECT_FALSE(g.contains("nope"));
}

TEST(StatsGroup, DottedChildLookup)
{
    Group parent("core");
    Group child("iq");
    Scalar s;
    s.set(9);
    child.addScalar("issued", &s, "");
    parent.addChild(&child);
    EXPECT_DOUBLE_EQ(parent.lookup("iq.issued"), 9.0);
    EXPECT_TRUE(parent.contains("iq.issued"));
    EXPECT_FALSE(parent.contains("iq.bogus"));
    EXPECT_FALSE(parent.contains("rob.bogus"));
}

TEST(StatsGroup, UnknownLookupPanics)
{
    Group g("core");
    EXPECT_THROW(g.lookup("missing"), PanicError);
}

// Regression: lookup() used to ignore distributions entirely while
// contains() reported them present, so any name contains() approved
// could still panic in lookup().
TEST(StatsGroup, DistributionSubFieldLookup)
{
    Group g("core");
    Distribution d;
    d.configure(0, 100, 10);
    d.sample(10);
    d.sample(30);
    g.addDistribution("occ", &d, "occupancy");

    EXPECT_TRUE(g.contains("occ"));
    EXPECT_TRUE(g.contains("occ.mean"));
    EXPECT_TRUE(g.contains("occ.min"));
    EXPECT_TRUE(g.contains("occ.max"));
    EXPECT_TRUE(g.contains("occ.samples"));
    EXPECT_FALSE(g.contains("occ.bogus"));

    EXPECT_DOUBLE_EQ(g.lookup("occ.mean"), 20.0);
    EXPECT_DOUBLE_EQ(g.lookup("occ.min"), 10.0);
    EXPECT_DOUBLE_EQ(g.lookup("occ.max"), 30.0);
    EXPECT_DOUBLE_EQ(g.lookup("occ.samples"), 2.0);

    // A bare distribution name is ambiguous - the panic must say so.
    EXPECT_THROW(g.lookup("occ"), PanicError);
    EXPECT_THROW(g.lookup("occ.bogus"), PanicError);
}

TEST(StatsGroup, DistributionLookupThroughChildGroups)
{
    Group parent("core");
    Group child("iq");
    Distribution d;
    d.configure(0, 8, 1);
    d.sample(4);
    child.addDistribution("lat", &d, "");
    parent.addChild(&child);

    EXPECT_TRUE(parent.contains("iq.lat.mean"));
    EXPECT_DOUBLE_EQ(parent.lookup("iq.lat.mean"), 4.0);
}

TEST(StatsGroup, DumpJsonRoundTripsThroughStrictParser)
{
    Group parent("core");
    Group child("iq");
    Scalar cycles;
    cycles.set(123);
    Average occ;
    occ.sample(2);
    occ.sample(4);
    Distribution d;
    d.configure(0, 4, 1);
    d.sample(1);
    d.sample(3);
    parent.addScalar("cycles", &cycles, "");
    parent.addDistribution("occ_dist", &d, "");
    child.addAverage("occ", &occ, "");
    parent.addChild(&child);

    std::ostringstream os;
    parent.dumpJson(os);

    json::Value v = json::parse(os.str());
    EXPECT_DOUBLE_EQ(v.at("cycles").asNumber(), 123.0);
    EXPECT_DOUBLE_EQ(v.at("iq").at("occ").asNumber(), 3.0);
    const json::Value &dist = v.at("occ_dist");
    EXPECT_DOUBLE_EQ(dist.at("mean").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(dist.at("min").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(dist.at("max").asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(dist.at("samples").asNumber(), 2.0);
    ASSERT_TRUE(dist.at("histogram").isArray());
    EXPECT_DOUBLE_EQ(dist.at("histogram").at(std::size_t{1}).asNumber(),
                     1.0);
    EXPECT_DOUBLE_EQ(dist.at("histogram").at(std::size_t{3}).asNumber(),
                     1.0);
}

TEST(StatsGroup, DumpJsonEmptyGroup)
{
    Group g("empty");
    std::ostringstream os;
    g.dumpJson(os);
    json::Value v = json::parse(os.str());
    EXPECT_TRUE(v.isObject());
    EXPECT_EQ(v.size(), 0u);
}

TEST(StatsGroup, DumpContainsNamesAndValues)
{
    Group g("core");
    Scalar s;
    s.set(5);
    g.addScalar("cycles", &s, "total cycles");
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("core.cycles"), std::string::npos);
    EXPECT_NE(out.find("5"), std::string::npos);
    EXPECT_NE(out.find("total cycles"), std::string::npos);
}

TEST(StatsGroup, ResetAllRecursive)
{
    Group parent("a");
    Group child("b");
    Scalar s1, s2;
    s1.set(1);
    s2.set(2);
    parent.addScalar("x", &s1, "");
    child.addScalar("y", &s2, "");
    parent.addChild(&child);
    parent.resetAll();
    EXPECT_EQ(s1.value(), 0.0);
    EXPECT_EQ(s2.value(), 0.0);
}
