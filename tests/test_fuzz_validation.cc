/**
 * @file
 * Randomised differential testing: generate random (but guaranteed-
 * terminating) SRV programs full of data-dependent branches, loads,
 * stores and mixed-latency arithmetic, then require every IQ design's
 * committed state to match the functional model bit for bit.
 *
 * This is the heavy hammer for pipeline bookkeeping bugs - squash
 * recovery, LSQ ordering, rename undo, chain teardown - because random
 * programs explore corner interleavings no hand-written test does.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.hh"
#include "core/ooo_core.hh"
#include "isa/asm_builder.hh"
#include "isa/functional_core.hh"

using namespace sciq;

namespace {

constexpr Addr kRegion = 0x200000;
constexpr std::uint64_t kRegionWords = 512;

/** Generate a random terminating program. */
Program
randomProgram(std::uint64_t seed)
{
    Random rng(seed);
    AsmBuilder b;

    std::vector<std::uint64_t> data(kRegionWords);
    for (auto &w : data)
        w = rng.next();
    b.words(kRegion, data);

    auto reg = [&](unsigned lo = 1, unsigned hi = 8) {
        return intReg(
            static_cast<unsigned>(rng.range(static_cast<int>(lo),
                                            static_cast<int>(hi))));
    };
    auto freg = [&] {
        return fpReg(static_cast<unsigned>(rng.range(1, 4)));
    };

    for (unsigned r = 1; r <= 8; ++r)
        b.li(intReg(r), static_cast<std::int64_t>(rng.next() >> 8));
    b.la(intReg(20), kRegion);

    int label_id = 0;

    // Random address within the data region from a data register.
    auto random_addr = [&](RegIndex into) {
        b.andi(intReg(15), reg(), static_cast<std::int64_t>(
                                      kRegionWords - 1));
        b.slli(intReg(15), intReg(15), 3);
        b.add(into, intReg(15), intReg(20));
    };

    auto emit_op = [&] {
        switch (rng.below(12)) {
          case 0:
            b.add(reg(), reg(), reg());
            break;
          case 1:
            b.sub(reg(), reg(), reg());
            break;
          case 2:
            b.xor_(reg(), reg(), reg());
            break;
          case 3:
            b.mul(reg(), reg(), reg());
            break;
          case 4:
            b.div(reg(), reg(), reg());  // division by zero is defined
            break;
          case 5:
            b.slli(reg(), reg(), rng.range(1, 12));
            break;
          case 6: {
            random_addr(intReg(16));
            b.ld(reg(), intReg(16), 0);
            break;
          }
          case 7: {
            random_addr(intReg(16));
            b.st(reg(), intReg(16), 0);
            break;
          }
          case 8:
            b.fcvtif(freg(), reg());
            break;
          case 9:
            b.fadd(freg(), freg(), freg());
            break;
          case 10:
            b.fmul(freg(), freg(), freg());
            break;
          case 11:
            b.fcvtfi(reg(), freg());
            break;
        }
    };

    const unsigned blocks = 16 + static_cast<unsigned>(rng.below(12));
    for (unsigned blk = 0; blk < blocks; ++blk) {
        // Occasionally a short counted loop around the block.
        const bool looped = rng.chance(0.4);
        const std::string loop_label = "loop" + std::to_string(label_id);
        if (looped) {
            b.li(intReg(25), rng.range(2, 7));
            b.label(loop_label);
        }

        const unsigned ops = 3 + static_cast<unsigned>(rng.below(6));
        for (unsigned k = 0; k < ops; ++k) {
            // Data-dependent forward skip over a couple of ops: the
            // bread and butter of squash testing.
            if (rng.chance(0.25)) {
                const std::string skip =
                    "skip" + std::to_string(label_id++);
                switch (rng.below(3)) {
                  case 0:
                    b.beq(reg(), reg(), skip);
                    break;
                  case 1:
                    b.blt(reg(), reg(), skip);
                    break;
                  case 2:
                    b.bgeu(reg(), reg(), skip);
                    break;
                }
                emit_op();
                if (rng.chance(0.5))
                    emit_op();
                b.label(skip);
            } else {
                emit_op();
            }
        }

        if (looped) {
            b.addi(intReg(25), intReg(25), -1);
            b.bne(intReg(25), intReg(0), loop_label);
            ++label_id;
        }
    }

    // Fold everything into the checksum register and stop.
    for (unsigned r = 1; r <= 8; ++r)
        b.xor_(intReg(10), intReg(10), intReg(r));
    b.fcvtfi(intReg(9), fpReg(1));
    b.xor_(intReg(10), intReg(10), intReg(9));
    b.halt();
    return b.build("fuzz" + std::to_string(seed));
}

CoreParams
configFor(int variant)
{
    CoreParams p;
    switch (variant) {
      case 0:
        p.iqKind = IqKind::Ideal;
        p.iq.numEntries = 64;
        break;
      case 1:
        p.iqKind = IqKind::Segmented;
        p.iq.numEntries = 128;
        p.iq.segmentSize = 16;
        p.iq.maxChains = 32;
        p.iq.useHmp = true;
        p.iq.useLrp = true;
        break;
      case 2:
        p.iqKind = IqKind::Segmented;
        p.iq.numEntries = 64;
        p.iq.segmentSize = 8;
        p.iq.maxChains = 8;  // chain starvation stress
        break;
      case 3:
        p.iqKind = IqKind::Prescheduled;
        p.iq.numEntries = 128;
        break;
      case 4:
        p.iqKind = IqKind::Fifo;
        p.iq.numFifos = 8;
        p.iq.fifoDepth = 8;
        p.iq.numEntries = 64;
        break;
      default:
        p.iqKind = IqKind::Segmented;
        p.iq.numEntries = 128;
        p.iq.segmentSize = 16;
        p.iq.maxChains = 64;
        p.iq.dynamicResize = true;
        p.iq.resizeInterval = 32;
        break;
    }
    return p;
}

const char *kVariantNames[] = {"ideal",        "segmented_comb",
                               "segmented_starved", "prescheduled",
                               "fifo",         "segmented_resize"};

} // namespace

class FuzzValidation
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(FuzzValidation, RandomProgramMatchesGoldenModel)
{
    auto [seed, variant] = GetParam();
    Program prog = randomProgram(static_cast<std::uint64_t>(seed));

    FunctionalCore golden(prog);
    golden.run(5'000'000);
    ASSERT_TRUE(golden.halted()) << "generator produced a non-halting "
                                    "program (seed "
                                 << seed << ")";

    OooCore core(prog, configFor(variant));
    core.run(~0ULL, 5'000'000);
    ASSERT_TRUE(core.halted())
        << kVariantNames[variant] << " seed " << seed;
    ASSERT_EQ(core.committedCount(), golden.instCount());
    for (RegIndex r = 1; r < kNumArchRegs; ++r) {
        ASSERT_EQ(core.commitRegs()[r], golden.reg(r))
            << kVariantNames[variant] << " seed " << seed << " reg "
            << static_cast<int>(r);
    }
    ASSERT_TRUE(core.commitMemory().equalContents(golden.memory()))
        << kVariantNames[variant] << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByDesign, FuzzValidation,
    ::testing::Combine(::testing::Range(1, 11), ::testing::Range(0, 6)),
    [](const auto &info) {
        return std::string(kVariantNames[std::get<1>(info.param)]) +
               "_seed" + std::to_string(std::get<0>(info.param));
    });
