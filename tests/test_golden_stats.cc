/**
 * @file
 * Golden-stats regression harness.
 *
 * Every workload runs on the segmented and the ideal IQ at fixed seeds
 * with the invariant auditor enabled; a curated subset of the stats
 * tree is compared against the committed snapshots under
 * tests/golden/<workload>.json.  Counts must match exactly, derived
 * averages within a tiny relative tolerance.
 *
 * Regenerate the snapshots after an intentional behaviour change with:
 *
 *     ./build/tests/test_golden_stats --update-golden
 *
 * and commit the refreshed files under tests/golden/.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/audit.hh"
#include "sim/simulator.hh"
#include "workload/workloads.hh"

using namespace sciq;

namespace {

bool g_update_golden = false;

/** One audited statistic: dotted path into the core stats tree. */
struct StatCheck
{
    const char *path;
    bool exact;  ///< false: relative tolerance for derived averages
};

constexpr double kRelTol = 1e-9;

/** Curated subset shared by every IQ model. */
const std::vector<StatCheck> &
commonChecks()
{
    static const std::vector<StatCheck> checks = {
        {"cycles", true},
        {"committed_insts", true},
        {"fetched_insts", true},
        {"wrong_path_insts", true},
        {"squashes", true},
        {"committed_loads", true},
        {"committed_stores", true},
        {"committed_branches", true},
        {"rob_occupancy", false},
        {"rob_occupancy_dist.mean", false},
        {"rob_occupancy_dist.samples", true},
        {"iq.inserted", true},
        {"iq.issued", true},
        {"iq.occupancy", false},
        {"lsq.loads_issued", true},
        {"lsq.store_drains", true},
        {"bpred.cond_mispredicts", true},
        // The auditor ran (audit=1 below) and found nothing.
        {"audit.cycles_audited", true},
        {"audit.negative_delay", true},
        {"audit.segment_overflow", true},
        {"audit.promotion_bound", true},
        {"audit.issue_over_width", true},
        {"audit.wire_delivery", true},
        {"audit.pool_bound", true},
    };
    return checks;
}

/** Chain-machinery statistics only the segmented IQ has. */
const std::vector<StatCheck> &
segmentedChecks()
{
    static const std::vector<StatCheck> checks = {
        {"iq.chains_created", true},
        {"iq.heads_from_loads", true},
        {"iq.promotions", true},
        {"iq.deadlock_cycles", true},
        {"iq.chains_in_use", false},
        {"iq.seg0_occupancy", false},
    };
    return checks;
}

/** Wakeup-array statistics specific to the prescheduled IQ (section 2). */
const std::vector<StatCheck> &
prescheduledChecks()
{
    static const std::vector<StatCheck> checks = {
        {"iq.array_stall_cycles", true},
        {"iq.issue_buffer_occ", false},
    };
    return checks;
}

/** Steering statistics specific to the dependence-FIFO IQ (section 2). */
const std::vector<StatCheck> &
fifoChecks()
{
    static const std::vector<StatCheck> checks = {
        {"iq.steered_behind_producer", true},
        {"iq.steered_to_empty", true},
        {"iq.no_empty_fifo_stalls", true},
    };
    return checks;
}

/** Descend a dotted path through nested JSON objects. */
const json::Value *
navigate(const json::Value &root, const std::string &path)
{
    const json::Value *v = &root;
    std::size_t pos = 0;
    while (pos <= path.size()) {
        const std::size_t dot = path.find('.', pos);
        const std::string part =
            path.substr(pos, dot == std::string::npos ? dot : dot - pos);
        if (!v->contains(part))
            return nullptr;
        v = &v->at(part);
        if (dot == std::string::npos)
            break;
        pos = dot + 1;
    }
    return v;
}

/**
 * Count curated-subset mismatches between a golden tree and a freshly
 * produced one.  Returns the number of differing stats and appends a
 * description of each to @p diffs.
 */
unsigned
compareTrees(const json::Value &golden, const json::Value &current,
             const std::vector<const std::vector<StatCheck> *> &check_sets,
             std::string &diffs)
{
    unsigned mismatches = 0;
    auto differ = [&](const std::string &path, const std::string &why) {
        ++mismatches;
        diffs += "  " + path + ": " + why + "\n";
    };

    for (const auto *checks : check_sets) {
        for (const StatCheck &c : *checks) {
            const json::Value *g = navigate(golden, c.path);
            const json::Value *n = navigate(current, c.path);
            if (!g) {
                differ(c.path, "missing from golden snapshot");
                continue;
            }
            if (!n) {
                differ(c.path, "missing from current stats tree");
                continue;
            }
            if (g->isNull() && n->isNull())
                continue;
            if (!g->isNumber() || !n->isNumber()) {
                differ(c.path, "non-numeric value");
                continue;
            }
            const double gv = g->asNumber();
            const double nv = n->asNumber();
            if (c.exact) {
                if (gv != nv) {
                    differ(c.path, "expected " + std::to_string(gv) +
                                       ", got " + std::to_string(nv));
                }
            } else {
                const double tol =
                    kRelTol * std::max(1.0, std::fabs(gv));
                if (std::fabs(gv - nv) > tol) {
                    differ(c.path, "expected " + std::to_string(gv) +
                                       " +- " + std::to_string(tol) +
                                       ", got " + std::to_string(nv));
                }
            }
        }
    }
    return mismatches;
}

std::string
goldenPath(const std::string &workload)
{
    return std::string(SCIQ_GOLDEN_DIR) + "/" + workload + ".json";
}

/** The fixed configuration the snapshots were generated with. */
SimConfig
goldenConfig(const std::string &workload, const std::string &kind)
{
    SimConfig cfg = [&] {
        if (kind == "segmented")
            return makeSegmentedConfig(128, 64, true, true, workload);
        if (kind == "prescheduled")
            return makePrescheduledConfig(128, workload);
        if (kind == "fifo")
            return makeFifoConfig(16, 8, workload);
        return makeIdealConfig(128, workload);
    }();
    cfg.wl.iterations = 300;
    cfg.audit = true;
    return cfg;
}

/** Run one configuration and snapshot the whole core stats tree. */
std::string
runAndDump(const SimConfig &cfg)
{
    Simulator sim(cfg);
    RunResult r = sim.run();
    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.validated);
    EXPECT_EQ(r.auditViolations, 0u);
    std::ostringstream os;
    sim.core().statGroup().dumpJson(os);
    return os.str();
}

class GoldenStats : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GoldenStats, MatchesCommittedSnapshot)
{
    const std::string workload = GetParam();
    const std::string seg_tree =
        runAndDump(goldenConfig(workload, "segmented"));
    const std::string ideal_tree =
        runAndDump(goldenConfig(workload, "ideal"));
    const std::string presched_tree =
        runAndDump(goldenConfig(workload, "prescheduled"));
    const std::string fifo_tree =
        runAndDump(goldenConfig(workload, "fifo"));

    if (g_update_golden) {
        std::ofstream out(goldenPath(workload));
        ASSERT_TRUE(out) << "cannot write " << goldenPath(workload);
        out << "{\n\"segmented\": " << seg_tree << ",\n\"ideal\": "
            << ideal_tree << ",\n\"prescheduled\": " << presched_tree
            << ",\n\"fifo\": " << fifo_tree << "\n}\n";
        return;
    }

    json::Value golden;
    try {
        golden = json::parseFile(goldenPath(workload));
    } catch (const json::ParseError &e) {
        FAIL() << e.what()
               << "\n(regenerate with: test_golden_stats --update-golden)";
    }

    std::string diffs;
    unsigned bad = compareTrees(
        golden.at("segmented"), json::parse(seg_tree),
        {&commonChecks(), &segmentedChecks()}, diffs);
    bad += compareTrees(golden.at("ideal"), json::parse(ideal_tree),
                        {&commonChecks()}, diffs);
    bad += compareTrees(golden.at("prescheduled"),
                        json::parse(presched_tree),
                        {&commonChecks(), &prescheduledChecks()}, diffs);
    bad += compareTrees(golden.at("fifo"), json::parse(fifo_tree),
                        {&commonChecks(), &fifoChecks()}, diffs);
    EXPECT_EQ(bad, 0u)
        << "stat drift vs " << goldenPath(workload) << ":\n" << diffs
        << "(if intentional, regenerate with --update-golden)";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, GoldenStats,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

// The comparator itself: exact stats must differ on any change, toleranced
// stats only beyond the relative tolerance.  Without this, a vacuous
// comparator would let every golden test pass silently.
TEST(GoldenCompare, DetectsPerturbationBeyondTolerance)
{
    using json::Value;
    std::map<std::string, Value> iq;
    iq["occupancy"] = Value::makeNumber(0.5);
    std::map<std::string, Value> tree;
    tree["cycles"] = Value::makeNumber(1000.0);
    tree["iq"] = Value::makeObject(iq);
    const Value golden = Value::makeObject(tree);

    static const std::vector<StatCheck> checks = {
        {"cycles", true},
        {"iq.occupancy", false},
    };
    const std::vector<const std::vector<StatCheck> *> sets = {&checks};

    std::string diffs;
    EXPECT_EQ(compareTrees(golden, golden, sets, diffs), 0u) << diffs;

    // Off-by-one in an exact counter is a failure.
    tree["cycles"] = Value::makeNumber(1001.0);
    diffs.clear();
    EXPECT_EQ(compareTrees(golden, Value::makeObject(tree), sets, diffs),
              1u);
    EXPECT_NE(diffs.find("cycles"), std::string::npos);
    tree["cycles"] = Value::makeNumber(1000.0);

    // Sub-tolerance float noise passes; drift beyond it does not.
    iq["occupancy"] = Value::makeNumber(0.5 * (1.0 + 1e-12));
    tree["iq"] = Value::makeObject(iq);
    diffs.clear();
    EXPECT_EQ(compareTrees(golden, Value::makeObject(tree), sets, diffs),
              0u) << diffs;

    iq["occupancy"] = Value::makeNumber(0.5 * 1.01);
    tree["iq"] = Value::makeObject(iq);
    diffs.clear();
    EXPECT_EQ(compareTrees(golden, Value::makeObject(tree), sets, diffs),
              1u);
    EXPECT_NE(diffs.find("iq.occupancy"), std::string::npos);

    // A stat missing from either side is always reported.
    std::map<std::string, Value> sparse;
    sparse["cycles"] = Value::makeNumber(1000.0);
    diffs.clear();
    EXPECT_EQ(compareTrees(golden, Value::makeObject(sparse), sets, diffs),
              1u);
    EXPECT_NE(diffs.find("missing from current"), std::string::npos);
}

} // namespace

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden")
            g_update_golden = true;
    }
    return RUN_ALL_TESTS();
}
