#include "workloads.hh"

#include <bit>
#include <map>

#include "common/errors.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace sciq {

namespace {

using Builder = Program (*)(const WorkloadParams &);

const std::map<std::string, Builder> &
builders()
{
    static const std::map<std::string, Builder> map = {
        {"ammp", buildAmmp},     {"applu", buildApplu},
        {"equake", buildEquake}, {"gcc", buildGcc},
        {"mgrid", buildMgrid},   {"swim", buildSwim},
        {"twolf", buildTwolf},   {"vortex", buildVortex},
    };
    return map;
}

} // namespace

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "ammp", "applu", "equake", "gcc",
        "mgrid", "swim", "twolf", "vortex",
    };
    return names;
}

const std::vector<std::string> &
fpWorkloadNames()
{
    static const std::vector<std::string> names = {
        "ammp", "applu", "equake", "mgrid", "swim",
    };
    return names;
}

Program
buildWorkload(const std::string &name, const WorkloadParams &params)
{
    auto it = builders().find(name);
    if (it == builders().end())
        throw WorkloadError("unknown workload '" + name + "'");
    return it->second(params);
}

std::uint64_t
workloadFingerprint(const std::string &name, const WorkloadParams &params)
{
    serial::Fnv64 h;
    h.update(name);
    h.update(params.iterations);
    h.update(params.seed);
    h.update(std::bit_cast<std::uint64_t>(params.scale));
    return h.digest();
}

} // namespace sciq
