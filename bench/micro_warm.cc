/**
 * @file
 * Warming-throughput micro-benchmark for the basic-block cache
 * (DESIGN.md §14, BENCH_PR6.json).
 *
 * For every workload it measures functional-warming throughput
 * (fastForward with cache/predictor training) and pure functional
 * execution throughput (FunctionalCore::run, no training), each with
 * the step()-based cold-decode interpreter (bb_cache=0) and with the
 * basic-block cache (bb_cache=1), best-of `repeats` timed runs.
 *
 * Arguments:
 *   warm_insts=N  instructions per timed run (default 2m; quick: 400k;
 *                 accepts k/m/g suffixes)
 *   repeats=N     timed repetitions, best-of (default 3; quick: 2)
 *   workloads=a,b,c   subset (default: all eight)
 *   quick=1       shrink for a smoke pass
 *   json_out=path machine-readable results (BENCH_PR6.json source)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/json.hh"
#include "core/ooo_core.hh"
#include "isa/functional_core.hh"
#include "sim/fast_forward.hh"

using namespace sciq;
using namespace sciq::bench;

namespace {

using Clock = std::chrono::steady_clock;

struct WorkloadNumbers
{
    std::string workload;
    std::uint64_t warmInsts = 0;
    double warmStepIps = 0.0;  ///< fastForward, bb_cache=0
    double warmBbIps = 0.0;    ///< fastForward, bb_cache=1
    double runStepIps = 0.0;   ///< pure run(), bb_cache=0
    double runBbIps = 0.0;     ///< pure run(), bb_cache=1
    std::uint64_t bbBlocks = 0;
    std::uint64_t bbOpsCached = 0;
    std::uint64_t bbTraceHits = 0;
    std::uint64_t bbSuccHits = 0;

    double warmSpeedup() const
    {
        return warmStepIps > 0 ? warmBbIps / warmStepIps : 0.0;
    }
    double runSpeedup() const
    {
        return runStepIps > 0 ? runBbIps / runStepIps : 0.0;
    }
};

double
seconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Iteration count that keeps the program running past `insts`
 * instructions, calibrated from one cold run with small iterations.
 */
std::uint64_t
calibrateIters(const std::string &workload, std::uint64_t insts)
{
    WorkloadParams wl;
    wl.iterations = 200;
    Program prog = buildWorkload(workload, wl);
    FunctionalCore probe(prog);
    probe.run();
    const double perIter =
        static_cast<double>(probe.instCount()) / 200.0;
    // 1.5x margin so the timed region never includes the HALT ramp.
    const auto iters = static_cast<std::uint64_t>(
        1.5 * static_cast<double>(insts) / perIter) + 1;
    return std::max<std::uint64_t>(iters, 200);
}

CoreParams
coreParams()
{
    SimConfig cfg = makeSegmentedConfig(128, 64, true, true, "swim");
    return cfg.core;
}

WorkloadNumbers
measure(const std::string &workload, std::uint64_t insts, unsigned repeats)
{
    WorkloadNumbers n;
    n.workload = workload;
    n.warmInsts = insts;

    WorkloadParams wl;
    wl.iterations = calibrateIters(workload, insts);
    const Program prog = buildWorkload(workload, wl);
    const CoreParams params = coreParams();

    for (bool bb : {false, true}) {
        double &warmIps = bb ? n.warmBbIps : n.warmStepIps;
        double &runIps = bb ? n.runBbIps : n.runStepIps;
        for (unsigned rep = 0; rep < repeats; ++rep) {
            {
                // Functional warming: trains a fresh OooCore's caches
                // and predictors, exactly the sweep warm-up path.
                FunctionalCore warm(prog, bb);
                OooCore core(prog, params);
                const auto t0 = Clock::now();
                FastForwardStats ff = fastForward(warm, core, insts);
                const double dt = seconds(t0);
                if (dt > 0) {
                    warmIps = std::max(
                        warmIps,
                        static_cast<double>(ff.instsSkipped) / dt);
                }
                if (bb && warm.blockCache()) {
                    const BbCache &c = *warm.blockCache();
                    n.bbBlocks = c.blocksDiscovered();
                    n.bbOpsCached = c.opsCached();
                    n.bbTraceHits = c.traceHits();
                    n.bbSuccHits = c.succHits();
                }
            }
            {
                // Pure functional execution, no training: the upper
                // bound the warming path is converging towards.
                FunctionalCore fc(prog, bb);
                const auto t0 = Clock::now();
                const std::uint64_t ran = fc.run(insts);
                const double dt = seconds(t0);
                if (dt > 0) {
                    runIps = std::max(
                        runIps, static_cast<double>(ran) / dt);
                }
            }
        }
    }
    return n;
}

void
writeJson(const std::string &path, std::uint64_t insts, unsigned repeats,
          const std::vector<WorkloadNumbers> &rows)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "ERROR: could not write %s\n", path.c_str());
        return;
    }
    os << "{\n  \"bench\": \"micro_warm\",\n"
       << "  \"warm_insts\": " << insts << ",\n"
       << "  \"repeats\": " << repeats << ",\n"
       << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const WorkloadNumbers &n = rows[i];
        os << "    {\"workload\": \"" << n.workload << "\""
           << ", \"warm_step_insts_per_sec\": ";
        json::writeNumber(os, n.warmStepIps);
        os << ", \"warm_bbcache_insts_per_sec\": ";
        json::writeNumber(os, n.warmBbIps);
        os << ", \"warm_speedup\": ";
        json::writeNumber(os, n.warmSpeedup());
        os << ", \"run_step_insts_per_sec\": ";
        json::writeNumber(os, n.runStepIps);
        os << ", \"run_bbcache_insts_per_sec\": ";
        json::writeNumber(os, n.runBbIps);
        os << ", \"run_speedup\": ";
        json::writeNumber(os, n.runSpeedup());
        os << ", \"bb_blocks\": " << n.bbBlocks
           << ", \"bb_ops_cached\": " << n.bbOpsCached
           << ", \"bb_trace_hits\": " << n.bbTraceHits
           << ", \"bb_succ_hits\": " << n.bbSuccHits << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::fprintf(stderr, "wrote %zu workloads to %s\n", rows.size(),
                 path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, workloadNames(),
                               {"warm_insts", "repeats", "json_out"});
    const std::uint64_t insts = static_cast<std::uint64_t>(
        args.raw.getCount("warm_insts", args.quick ? 400'000 : 2'000'000));
    const unsigned repeats = static_cast<unsigned>(
        args.raw.getInt("repeats", args.quick ? 2 : 3));
    const std::string jsonOut = args.raw.getString("json_out", "");

    std::printf("warming-throughput micro-bench: %llu insts/run, "
                "best of %u\n\n",
                static_cast<unsigned long long>(insts), repeats);
    std::printf("%-10s %12s %12s %8s %12s %12s %8s\n", "workload",
                "warm step/s", "warm bb/s", "speedup", "run step/s",
                "run bb/s", "speedup");
    hr('-', 80);

    std::vector<WorkloadNumbers> rows;
    for (const std::string &wl : args.workloads) {
        WorkloadNumbers n = measure(wl, insts, repeats);
        std::printf("%-10s %12.3e %12.3e %7.2fx %12.3e %12.3e %7.2fx\n",
                    n.workload.c_str(), n.warmStepIps, n.warmBbIps,
                    n.warmSpeedup(), n.runStepIps, n.runBbIps,
                    n.runSpeedup());
        rows.push_back(std::move(n));
    }

    double worst = 0.0, best = 0.0;
    unsigned atLeast5x = 0;
    for (const WorkloadNumbers &n : rows) {
        const double s = n.warmSpeedup();
        worst = worst == 0.0 ? s : std::min(worst, s);
        best = std::max(best, s);
        if (s >= 5.0)
            ++atLeast5x;
    }
    hr('-', 80);
    std::printf("warming speedup: worst %.2fx, best %.2fx, "
                ">=5x on %u/%zu workloads\n",
                worst, best, atLeast5x, rows.size());

    if (!jsonOut.empty())
        writeJson(jsonOut, insts, repeats, rows);
    return 0;
}
