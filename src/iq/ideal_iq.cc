#include "ideal_iq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sciq {

IdealIq::IdealIq(const IqParams &params, const Scoreboard &scoreboard,
                 const FuPool &fu)
    : IqBase(params, scoreboard, fu, "iq")
{
    insts.reserve(params.numEntries);
}

bool
IdealIq::canInsert(const DynInstPtr &)
{
    return insts.size() < params.numEntries;
}

void
IdealIq::insert(const DynInstPtr &inst, Cycle)
{
    SCIQ_ASSERT(insts.size() < params.numEntries, "ideal IQ overflow");
    instsInserted.inc();
    insts.push_back(inst);
}

void
IdealIq::issueSelect(Cycle, const TryIssue &try_issue)
{
    unsigned issued = 0;
    for (auto it = insts.begin();
         it != insts.end() && issued < params.issueWidth;) {
        if (operandsReady(**it) && try_issue(*it)) {
            instsIssued.inc();
            ++issued;
            it = insts.erase(it);
        } else {
            ++it;
        }
    }
}

void
IdealIq::tick(Cycle, bool)
{
    occupancyAvg.sample(static_cast<double>(insts.size()));
}

void
IdealIq::squash(SeqNum youngest_kept)
{
    insts.erase(std::remove_if(insts.begin(), insts.end(),
                               [youngest_kept](const DynInstPtr &p) {
                                   return p->seq > youngest_kept;
                               }),
                insts.end());
}

} // namespace sciq
