/**
 * @file
 * Sparse byte-addressable simulated memory backed by 4 KiB pages.
 * Untouched locations read as zero, and any 64-bit address is legal,
 * which matters because wrong-path execution may compute wild addresses.
 */

#ifndef SCIQ_ISA_SPARSE_MEMORY_HH
#define SCIQ_ISA_SPARSE_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace sciq {

class SparseMemory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr Addr kPageSize = 1ULL << kPageShift;

    /** Read `size` (1..8) bytes little-endian; zero for untouched. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write the low `size` (1..8) bytes of val little-endian. */
    void write(Addr addr, unsigned size, std::uint64_t val);

    /** Bulk write (used to load program data segments). */
    void writeBlob(Addr addr, const std::uint8_t *data, std::size_t len);

    /** Bulk read. */
    void readBlob(Addr addr, std::uint8_t *data, std::size_t len) const;

    /** Convenience: read/write an IEEE-754 double. */
    double readDouble(Addr addr) const;
    void writeDouble(Addr addr, double v);

    /** Number of allocated pages (for tests). */
    std::size_t numPages() const { return pages.size(); }

    /**
     * Host pointer to the page holding `addr`, or nullptr when the
     * page is untouched.  Never allocates: a read of an absent page
     * must stay invisible to numPages() and to the serialized image
     * (checkpoint blobs encode exactly the allocated pages).
     * The pointer stays valid until clear()/restore(): unordered_map
     * never moves mapped values on insertion.
     */
    std::uint8_t *
    pageData(Addr addr)
    {
        auto it = pages.find(addr >> kPageShift);
        return it == pages.end() ? nullptr : it->second.data();
    }

    const std::uint8_t *
    pageData(Addr addr) const
    {
        auto it = pages.find(addr >> kPageShift);
        return it == pages.end() ? nullptr : it->second.data();
    }

    /** Host pointer to the page holding `addr`, zero-filled on demand. */
    std::uint8_t *
    pageDataForWrite(Addr addr)
    {
        return getPage(addr).data();
    }

    /**
     * Content equality: untouched pages compare equal to all-zero
     * pages, so two memories match iff every byte matches.
     */
    bool equalContents(const SparseMemory &other) const;

    void clear() { pages.clear(); }

    /**
     * Serialize the allocated pages (sorted by page number, so the
     * encoding is a deterministic function of the contents).
     */
    void save(serial::Writer &w) const;

    /** Replace the contents from a saved image. */
    void restore(serial::Reader &r);

  private:
    using Page = std::array<std::uint8_t, kPageSize>;

    const Page *findPage(Addr addr) const;
    Page &getPage(Addr addr);

    std::unordered_map<Addr, Page> pages;
};

} // namespace sciq

#endif // SCIQ_ISA_SPARSE_MEMORY_HH
