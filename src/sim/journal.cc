#include "journal.hh"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "common/errors.hh"
#include "sim/run_result_fields.hh"

namespace sciq {

std::string
sweepKey(const SimConfig &config)
{
    const CoreParams &c = config.core;
    const IqParams &iq = c.iq;
    std::ostringstream os;
    os << "workload=" << config.workload << " iters=" << config.wl.iterations
       << " seed=" << config.wl.seed << " scale=" << config.wl.scale
       << " iq=" << iqKindName(c.iqKind) << " iq_size=" << iq.numEntries;
    switch (c.iqKind) {
      case IqKind::Segmented:
        os << " seg_size=" << iq.segmentSize << " chains=" << iq.maxChains
           << " hmp=" << iq.useHmp << " lrp=" << iq.useLrp
           << " pushdown=" << iq.enablePushdown
           << " bypass=" << iq.enableBypass << " resize=" << iq.dynamicResize;
        break;
      case IqKind::Prescheduled:
        os << " line_width=" << iq.preschedLineWidth
           << " issue_buffer=" << iq.issueBufferSize;
        break;
      case IqKind::Fifo:
        os << " fifos=" << iq.numFifos << " depth=" << iq.fifoDepth;
        break;
      case IqKind::Ideal:
        break;
    }
    os << " ff=" << config.fastForward << " max_cycles=" << config.maxCycles;
    return os.str();
}

namespace {

/** Compact writer over the shared field list. */
struct CompactWriter
{
    std::ostream &os;
    bool first = true;

    void
    sep(const char *key)
    {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << key << "\":";
    }


    void str(const char *key, const std::string &v)
    {
        sep(key);
        json::writeString(os, v);
    }
    void uns(const char *key, unsigned v) { sep(key); os << v; }
    void i(const char *key, int v) { sep(key); os << v; }
    void u64(const char *key, std::uint64_t v) { sep(key); os << v; }
    void num(const char *key, double v) { sep(key); json::writeNumber(os, v); }
    void b(const char *key, bool v) { sep(key); os << (v ? "true" : "false"); }
};

/**
 * Range-checked narrowing for journal/wire-supplied numbers.  A corrupt
 * or hostile line must make the parse throw (and the tolerant loaders
 * skip the line), never reach the undefined behaviour of an
 * out-of-range double-to-integer cast.
 */
std::uint64_t
checkedU64(const json::Value &v)
{
    const double d = v.asNumber();
    if (!(d >= 0.0) || d > 9007199254740992.0 /* 2^53 */ ||
        d != std::floor(d)) {
        throw std::range_error("journal number out of range");
    }
    return static_cast<std::uint64_t>(d);
}

int
checkedI32(const json::Value &v)
{
    const double d = v.asNumber();
    if (!(d >= -2147483648.0) || d > 2147483647.0 || d != std::floor(d))
        throw std::range_error("journal number out of range");
    return static_cast<int>(d);
}

/** Parser counterpart: pulls each field out of a json object. */
struct FieldReader
{
    const json::Value &obj;

    void
    str(const char *key, std::string &v)
    {
        if (obj.contains(key))
            v = obj.at(key).asString();
    }
    void
    uns(const char *key, unsigned &v)
    {
        if (!obj.contains(key))
            return;
        const std::uint64_t u = checkedU64(obj.at(key));
        if (u > 0xffffffffull)
            throw std::range_error("journal number out of range");
        v = static_cast<unsigned>(u);
    }
    void
    i(const char *key, int &v)
    {
        if (obj.contains(key))
            v = checkedI32(obj.at(key));
    }
    void
    u64(const char *key, std::uint64_t &v)
    {
        if (obj.contains(key))
            v = checkedU64(obj.at(key));
    }
    void
    num(const char *key, double &v)
    {
        if (!obj.contains(key))
            return;
        // `null` is the tree-wide encoding of an undefined rate
        // (json::writeNumber); read it back as a quiet NaN.
        const json::Value &f = obj.at(key);
        v = f.isNull() ? std::nan("") : f.asNumber();
    }
    void
    b(const char *key, bool &v)
    {
        if (obj.contains(key))
            v = obj.at(key).asBool();
    }
};

} // namespace

void
writeResultCompactJson(std::ostream &os, const RunResult &r)
{
    os << "{";
    CompactWriter w{os};
    visitRunResultFields(w, r);
    w.sep("outcome");
    json::writeString(os, jobStatusName(r.outcome.status));
    w.sep("error_code");
    json::writeString(os, errorCodeName(r.outcome.code));
    w.sep("error_msg");
    json::writeString(os, r.outcome.message);
    w.sep("attempts");
    os << r.outcome.attempts;
    os << "}";
}

RunResult
resultFromJson(const json::Value &obj)
{
    RunResult r;
    FieldReader reader{obj};
    visitRunResultFields(reader, r);
    if (obj.contains("outcome"))
        r.outcome.status = jobStatusFromName(obj.at("outcome").asString());
    if (obj.contains("error_code"))
        r.outcome.code = errorCodeFromName(obj.at("error_code").asString());
    if (obj.contains("error_msg"))
        r.outcome.message = obj.at("error_msg").asString();
    if (obj.contains("attempts")) {
        const std::uint64_t u = checkedU64(obj.at("attempts"));
        if (u > 0xffffffffull)
            throw std::range_error("journal number out of range");
        r.outcome.attempts = static_cast<unsigned>(u);
    }
    return r;
}

std::vector<JournalEntry>
loadJournal(const std::string &path)
{
    std::vector<JournalEntry> entries;
    std::ifstream in(path);
    if (!in)
        return entries;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        JournalEntry entry;
        try {
            const json::Value v = json::parse(line);
            entry.index = static_cast<std::size_t>(checkedU64(v.at("index")));
            entry.key = v.at("key").asString();
            entry.result = resultFromJson(v.at("result"));
        } catch (const std::exception &) {
            // A killed writer leaves at most one truncated tail line;
            // anything unparseable is simply not a finished job.
            continue;
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

std::size_t
applyJournal(const std::string &path,
             const std::vector<std::string> &keys,
             std::vector<RunResult> &results, std::vector<char> &have)
{
    std::size_t reused = 0;
    for (JournalEntry &entry : loadJournal(path)) {
        if (entry.index >= keys.size() || keys[entry.index] != entry.key)
            continue;
        if (entry.result.outcome.ok()) {
            results[entry.index] = std::move(entry.result);
            if (!have[entry.index])
                ++reused;
            have[entry.index] = 1;
        } else {
            if (have[entry.index])
                --reused;
            have[entry.index] = 0;
        }
    }
    return reused;
}

ResultJournal::ResultJournal(const std::string &path, bool sync)
    : path_(path), sync_(sync)
{
    // A writer killed mid-record leaves a torn tail line with no
    // newline; appending straight after it would corrupt the first new
    // record too.  Start on a fresh line instead.
    bool needNewline = false;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (in && in.tellg() > 0) {
            in.seekg(-1, std::ios::end);
            needNewline = in.get() != '\n';
        }
    }
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        throw ResourceError("cannot open result journal '" + path +
                            "' for append: " + std::strerror(errno));
    }
    if (needNewline && ::write(fd_, "\n", 1) != 1) {
        const std::string msg = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw ResourceError("write to result journal '" + path +
                            "' failed: " + msg);
    }
}

ResultJournal::~ResultJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ResultJournal::record(std::size_t index, const std::string &key,
                      const RunResult &result)
{
    std::ostringstream line;
    line << "{\"index\":" << index << ",\"key\":";
    json::writeString(line, key);
    line << ",\"result\":";
    writeResultCompactJson(line, result);
    line << "}\n";
    const std::string buf = line.str();

    std::lock_guard<std::mutex> lock(mu_);
    std::size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n =
            ::write(fd_, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ResourceError("write to result journal '" + path_ +
                                "' failed: " + std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    // The coordinator acks a result to its worker only after this
    // returns; with sync_ the row must be durable, not merely in the
    // page cache, before that ack can release the worker's copy.
    if (sync_ && ::fsync(fd_) != 0) {
        throw ResourceError("fsync of result journal '" + path_ +
                            "' failed: " + std::strerror(errno));
    }
}

} // namespace sciq
