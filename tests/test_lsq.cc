/** @file Tests for the load/store queue: ordering, forwarding, timing. */

#include <gtest/gtest.h>

#include "core/lsq.hh"
#include "iq_harness.hh"
#include "mem/hierarchy.hh"

using namespace sciq;
using namespace sciq::test;

namespace {

struct LsqFixture : public ::testing::Test
{
    LsqFixture() : scoreboard(128)
    {
        Lsq::Callbacks cb;
        cb.onLoadComplete = [this](const DynInstPtr &inst, Cycle when) {
            inst->completed = true;
            loadDone.emplace_back(inst, when);
        };
        cb.onLoadMiss = [this](const DynInstPtr &inst, Cycle when) {
            missNotified.emplace_back(inst, when);
        };
        cb.onStoreReady = [this](const DynInstPtr &inst, Cycle when) {
            inst->completed = true;
            storeReady.emplace_back(inst, when);
        };
        lsq = std::make_unique<Lsq>(16, mem.dcache(), fu, scoreboard,
                                    std::move(cb));
    }

    DynInstPtr
    makeLoad(SeqNum seq, Addr addr, RegIndex dst = intReg(5))
    {
        auto inst = makeInst(seq, Opcode::LD, dst, intReg(1));
        inst->effAddr = addr;
        return inst;
    }

    DynInstPtr
    makeStore(SeqNum seq, Addr addr, RegIndex data_reg = intReg(6),
              Opcode op = Opcode::ST)
    {
        auto inst = makeInst(seq, op, kInvalidReg, intReg(1), data_reg);
        inst->effAddr = addr;
        inst->memValue = 0xAB;
        return inst;
    }

    void
    step()
    {
        ++cycle;
        mem.tick(cycle);
        lsq->tick(cycle);
    }

    void
    stepUntil(const std::function<bool()> &done, int limit = 400)
    {
        for (int i = 0; i < limit && !done(); ++i)
            step();
        ASSERT_TRUE(done());
    }

    MemHierarchy mem;
    FuPool fu;
    Scoreboard scoreboard;
    std::unique_ptr<Lsq> lsq;
    std::vector<std::pair<DynInstPtr, Cycle>> loadDone;
    std::vector<std::pair<DynInstPtr, Cycle>> missNotified;
    std::vector<std::pair<DynInstPtr, Cycle>> storeReady;
    Cycle cycle = 0;
};

} // namespace

TEST_F(LsqFixture, ColdLoadMissesAndCompletes)
{
    auto load = makeLoad(1, 0x8000);
    lsq->insert(load);
    lsq->setAddrReady(load, 0);
    stepUntil([&] { return !loadDone.empty(); });
    EXPECT_FALSE(load->loadWasL1Hit);
    EXPECT_FALSE(load->loadForwarded);
    ASSERT_EQ(missNotified.size(), 1u);
    // Miss detected at L1 lookup time, well before completion.
    EXPECT_LT(missNotified[0].second, loadDone[0].second);
    // Full memory round trip: ~122 cycles from the access.
    EXPECT_GT(loadDone[0].second, 100u);
}

TEST_F(LsqFixture, WarmLoadHitsInThreeCycles)
{
    auto warm = makeLoad(1, 0x8000);
    lsq->insert(warm);
    lsq->setAddrReady(warm, 0);
    stepUntil([&] { return !loadDone.empty(); });
    lsq->commitLoad(warm);

    loadDone.clear();
    auto load = makeLoad(2, 0x8008);
    lsq->insert(load);
    lsq->setAddrReady(load, cycle);
    const Cycle sent = cycle + 1;  // next tick sends the access
    stepUntil([&] { return !loadDone.empty(); });
    EXPECT_TRUE(load->loadWasL1Hit);
    EXPECT_EQ(loadDone[0].second, sent + 3);  // L1D latency
    EXPECT_TRUE(missNotified.size() == 1u);   // only the cold one
}

TEST_F(LsqFixture, SecondLoadToInFlightLineIsDelayedHit)
{
    auto a = makeLoad(1, 0x9000);
    auto b = makeLoad(2, 0x9008, intReg(7));
    lsq->insert(a);
    lsq->insert(b);
    lsq->setAddrReady(a, 0);
    lsq->setAddrReady(b, 0);
    stepUntil([&] { return loadDone.size() == 2; });
    EXPECT_TRUE(a->loadWasDelayedHit || b->loadWasDelayedHit);
    EXPECT_EQ(mem.dcache().delayedHits.value(), 1.0);
}

TEST_F(LsqFixture, FullCoverageStoreForwardsInOneCycle)
{
    auto st = makeStore(1, 0xA000);
    auto ld = makeLoad(2, 0xA000);
    lsq->insert(st);
    lsq->insert(ld);
    lsq->setAddrReady(st, 0);
    lsq->setAddrReady(ld, 0);
    // Store data (r6) is ready by default in the scoreboard.
    stepUntil([&] { return !loadDone.empty(); }, 10);
    EXPECT_TRUE(ld->loadForwarded);
    EXPECT_EQ(lsq->loadForwards.value(), 1.0);
    EXPECT_EQ(lsq->loadsIssued.value(), 0.0);  // never touched the cache
}

TEST_F(LsqFixture, ForwardingWaitsForStoreData)
{
    scoreboard.clearReady(intReg(6));
    auto st = makeStore(1, 0xA100);
    auto ld = makeLoad(2, 0xA100);
    lsq->insert(st);
    lsq->insert(ld);
    lsq->setAddrReady(st, 0);
    lsq->setAddrReady(ld, 0);
    for (int i = 0; i < 10; ++i)
        step();
    EXPECT_TRUE(loadDone.empty());  // blocked on store data
    scoreboard.setReady(intReg(6));
    stepUntil([&] { return !loadDone.empty(); }, 10);
    EXPECT_TRUE(ld->loadForwarded);
}

TEST_F(LsqFixture, PartialOverlapBlocksUntilStoreCommits)
{
    auto st = makeStore(1, 0xA200, intReg(6), Opcode::SW);  // 4 bytes
    auto ld = makeLoad(2, 0xA200);                          // 8 bytes
    lsq->insert(st);
    lsq->insert(ld);
    lsq->setAddrReady(st, 0);
    lsq->setAddrReady(ld, 0);
    for (int i = 0; i < 10; ++i)
        step();
    EXPECT_TRUE(loadDone.empty());
    EXPECT_GT(lsq->loadConflictStalls.value(), 0.0);

    // Committing the store unblocks the load (it reads the cache).
    ASSERT_FALSE(storeReady.empty());
    lsq->commitStore(st, cycle);
    stepUntil([&] { return !loadDone.empty(); });
    EXPECT_FALSE(ld->loadForwarded);
}

TEST_F(LsqFixture, UnknownOlderStoreAddressBlocksLoads)
{
    auto st = makeStore(1, 0xB000);
    auto ld = makeLoad(2, 0xC000);  // would not conflict - but unknown
    lsq->insert(st);
    lsq->insert(ld);
    lsq->setAddrReady(ld, 0);
    for (int i = 0; i < 10; ++i)
        step();
    EXPECT_TRUE(loadDone.empty());
    lsq->setAddrReady(st, cycle);
    stepUntil([&] { return !loadDone.empty(); });
}

TEST_F(LsqFixture, YoungerNonConflictingLoadMayBypassStalledLoad)
{
    scoreboard.clearReady(intReg(6));
    auto st = makeStore(1, 0xD000);
    auto blocked = makeLoad(2, 0xD000);   // overlaps, store data unready
    auto free_ld = makeLoad(3, 0xE000, intReg(7));
    lsq->insert(st);
    lsq->insert(blocked);
    lsq->insert(free_ld);
    lsq->setAddrReady(st, 0);
    lsq->setAddrReady(blocked, 0);
    lsq->setAddrReady(free_ld, 0);
    stepUntil([&] { return !loadDone.empty(); });
    EXPECT_EQ(loadDone[0].first->seq, 3u);
}

TEST_F(LsqFixture, StoreReadyRequiresAddressAndData)
{
    scoreboard.clearReady(intReg(6));
    auto st = makeStore(1, 0xF000);
    lsq->insert(st);
    for (int i = 0; i < 3; ++i)
        step();
    EXPECT_TRUE(storeReady.empty());  // no address yet
    lsq->setAddrReady(st, cycle);
    for (int i = 0; i < 3; ++i)
        step();
    EXPECT_TRUE(storeReady.empty());  // no data yet
    scoreboard.setReady(intReg(6));
    stepUntil([&] { return !storeReady.empty(); }, 5);
}

TEST_F(LsqFixture, CommittedStoresDrainThroughPorts)
{
    auto st = makeStore(1, 0x11000);
    lsq->insert(st);
    lsq->setAddrReady(st, 0);
    stepUntil([&] { return !storeReady.empty(); }, 5);
    lsq->commitStore(st, cycle);
    EXPECT_TRUE(lsq->busy());  // drain buffer non-empty
    stepUntil([&] { return !lsq->busy(); });
    EXPECT_EQ(lsq->storeDrains.value(), 1.0);
    EXPECT_GT(mem.dcache().accesses.value(), 0.0);
}

TEST_F(LsqFixture, CachePortsLimitLoadsPerCycle)
{
    // 10 independent ready loads, 8 data-cache ports.
    for (SeqNum s = 1; s <= 10; ++s) {
        auto ld = makeLoad(s, 0x20000 + 0x1000 * s,
                           intReg(static_cast<RegIndex>(10 + s)));
        lsq->insert(ld);
        lsq->setAddrReady(ld, 0);
    }
    step();
    EXPECT_EQ(lsq->loadsIssued.value(), 8.0);
    EXPECT_GT(lsq->portStalls.value(), 0.0);
    step();
    EXPECT_EQ(lsq->loadsIssued.value(), 10.0);
}

TEST_F(LsqFixture, SquashRemovesYoungerEntries)
{
    auto a = makeLoad(1, 0x30000);
    auto b = makeLoad(2, 0x31000);
    auto c = makeStore(3, 0x32000);
    lsq->insert(a);
    lsq->insert(b);
    lsq->insert(c);
    EXPECT_EQ(lsq->size(), 3u);
    b->squashed = true;
    c->squashed = true;
    lsq->squash(1);
    EXPECT_EQ(lsq->size(), 1u);
    // The survivor still works.
    lsq->setAddrReady(a, 0);
    stepUntil([&] { return !loadDone.empty(); });
    EXPECT_EQ(loadDone[0].first->seq, 1u);
}

TEST_F(LsqFixture, SquashedInFlightLoadDoesNotCallBack)
{
    auto ld = makeLoad(1, 0x40000);
    lsq->insert(ld);
    lsq->setAddrReady(ld, 0);
    step();  // access sent
    ld->squashed = true;
    lsq->squash(0);
    for (int i = 0; i < 200; ++i)
        step();
    EXPECT_TRUE(loadDone.empty());
}

TEST_F(LsqFixture, CapacityAccounting)
{
    EXPECT_EQ(lsq->freeEntries(), 16u);
    auto ld = makeLoad(1, 0x50000);
    lsq->insert(ld);
    EXPECT_EQ(lsq->freeEntries(), 15u);
    EXPECT_FALSE(lsq->full());
}
