#include "batch.hh"

#include <chrono>
#include <memory>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "core/fetch_stream.hh"
#include "sim/job_exec.hh"

namespace sciq {

std::string
lockstepBatchKey(const SimConfig &config)
{
    // Only what determines the correct-path fetch sequence: the program
    // (workload + generation parameters) and the functional warm-up
    // length.  Warming is purely architectural, so cache and predictor
    // geometry are irrelevant to the warm state.
    std::ostringstream os;
    os << config.workload << "|it" << config.wl.iterations << "|sd"
       << config.wl.seed << "|sc" << config.wl.scale << "|ff"
       << config.fastForward;
    return os.str();
}

bool
lockstepBatchable(const SimConfig &config)
{
    return config.deadlineSec == 0.0;
}

namespace {

/** Per-member execution state across the batch phases. */
struct Slot
{
    std::unique_ptr<Simulator> sim;
    std::uint64_t skipped = 0;
    bool restored = false;
    unsigned attempts = 1;
    double hostSeconds = 0.0;
    bool active = false;   ///< still ticking in the lockstep loop
    bool failed = false;
    RunResult result;      ///< failure row (failed members only)
};

} // namespace

std::vector<RunResult>
runLockstepBatch(const std::vector<SimConfig> &configs,
                 const std::vector<std::string> &keys,
                 const std::vector<std::size_t> &indices,
                 const SweepRunner::Options &options)
{
    using clock = std::chrono::steady_clock;
    const std::size_t n = configs.size();
    std::vector<Slot> slots(n);

    // Phase A: construct and warm each member, with the same
    // retry-with-backoff containment the per-job path applies.  (Only
    // this phase can hit transient errors — they all come from the
    // checkpoint machinery.)
    for (std::size_t i = 0; i < n; ++i) {
        Slot &s = slots[i];
        for (unsigned attempt = 1;; ++attempt) {
            std::exception_ptr ep;
            try {
                s.sim = std::make_unique<Simulator>(configs[i]);
                s.skipped = s.sim->prepare(s.restored);
                s.attempts = attempt;
                s.active = true;
                break;
            } catch (...) {
                ep = std::current_exception();
            }
            s.sim.reset();
            job_exec::Classified c = job_exec::classify(ep);
            if (c.transient && attempt <= options.maxRetries) {
                warn("job %zu (%s): transient %s error, retrying "
                     "(attempt %u/%u): %s",
                     indices[i], keys[i].c_str(), errorCodeName(c.code),
                     attempt, options.maxRetries + 1, c.message.c_str());
                if (options.backoffMs) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(
                        options.backoffMs << (attempt - 1)));
                }
                continue;
            }
            warn("job %zu (%s) %s: [%s] %s", indices[i], keys[i].c_str(),
                 c.timeout ? "timed out" : "failed", errorCodeName(c.code),
                 c.message.c_str());
            job_exec::writeArtifact(options.artifactDir, indices[i], c,
                                    keys[i]);
            s.result = job_exec::failedResult(configs[i], c, attempt);
            s.failed = true;
            break;
        }
    }

    // Phase B: build the shared stream from the first surviving
    // member's seeded architectural state (all members were warmed to
    // the same state — that is what the batch key guarantees).
    std::unique_ptr<SharedFetchStream> stream;
    for (std::size_t i = 0; i < n && !stream; ++i) {
        if (!slots[i].active)
            continue;
        OooCore &core = slots[i].sim->core();
        stream = std::make_unique<SharedFetchStream>(
            slots[i].sim->program(), core.commitRegs(), core.commitMemory(),
            core.fetchProgramCounter());
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (slots[i].active)
            slots[i].sim->core().attachFetchStream(stream.get());
    }

    // Phase C: lockstep rounds.  Always advance the most-behind member
    // (fewest committed instructions) so the stream window stays as
    // small as the pipeline skew between members; a member leaves the
    // rotation when it halts, exhausts its cycle cap, or fails.
    constexpr Cycle kChunk = 32768;
    for (;;) {
        std::size_t pick = n;
        std::uint64_t behind = ~0ULL;
        for (std::size_t i = 0; i < n; ++i) {
            if (!slots[i].active)
                continue;
            const std::uint64_t cc = slots[i].sim->core().committedCount();
            if (cc < behind) {
                behind = cc;
                pick = i;
            }
        }
        if (pick == n)
            break;

        Slot &s = slots[pick];
        OooCore &core = s.sim->core();
        const Cycle left = configs[pick].maxCycles - core.cycles();
        const Cycle step = std::min<Cycle>(kChunk, left);
        const auto t0 = clock::now();
        std::exception_ptr ep;
        try {
            core.run(~0ULL, step);
        } catch (...) {
            ep = std::current_exception();
        }
        s.hostSeconds +=
            std::chrono::duration<double>(clock::now() - t0).count();

        if (ep) {
            // Mid-run errors (watchdog deadlocks, invariant panics) are
            // not retryable — the pipeline state is gone.  Contain this
            // member; its batch-mates keep running.
            job_exec::Classified c = job_exec::classify(ep);
            warn("job %zu (%s) %s: [%s] %s", indices[pick],
                 keys[pick].c_str(), c.timeout ? "timed out" : "failed",
                 errorCodeName(c.code), c.message.c_str());
            job_exec::writeArtifact(options.artifactDir, indices[pick], c,
                                    keys[pick]);
            s.result = job_exec::failedResult(configs[pick], c, s.attempts);
            s.failed = true;
            s.active = false;
            s.sim.reset();
        } else if (core.halted() || core.cycles() >= configs[pick].maxCycles) {
            s.active = false;  // finished; collected below
        }

        if (stream) {
            // Entries below every active member's commit point can
            // never be re-read (squash resume points are younger).
            std::uint64_t floor = ~0ULL;
            bool any = false;
            for (std::size_t i = 0; i < n; ++i) {
                if (!slots[i].active)
                    continue;
                any = true;
                floor = std::min(floor,
                                 slots[i].sim->core().streamTrimFloor());
            }
            if (any)
                stream->trim(static_cast<std::size_t>(floor));
        }
    }

    // Phase D: collect results in input order.
    std::vector<RunResult> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        Slot &s = slots[i];
        if (s.failed || !s.sim) {
            out[i] = std::move(s.result);
            continue;
        }
        std::exception_ptr ep;
        try {
            out[i] = s.sim->collect(s.hostSeconds, s.skipped, s.restored);
            out[i].outcome.attempts = s.attempts;
            continue;
        } catch (...) {
            ep = std::current_exception();
        }
        job_exec::Classified c = job_exec::classify(ep);
        warn("job %zu (%s) failed collecting results: [%s] %s", indices[i],
             keys[i].c_str(), errorCodeName(c.code), c.message.c_str());
        job_exec::writeArtifact(options.artifactDir, indices[i], c, keys[i]);
        out[i] = job_exec::failedResult(configs[i], c, s.attempts);
    }
    return out;
}

} // namespace sciq
