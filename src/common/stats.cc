#include "stats.hh"

#include <iomanip>

namespace sciq {
namespace stats {

double
Group::lookup(const std::string &name) const
{
    auto dot = name.find('.');
    if (dot != std::string::npos) {
        const std::string head = name.substr(0, dot);
        const std::string rest = name.substr(dot + 1);
        for (const auto *child : children) {
            if (child->name() == head)
                return child->lookup(rest);
        }
        panic("stat group '%s' has no child '%s'", groupName.c_str(),
              head.c_str());
    }

    if (auto it = scalars.find(name); it != scalars.end())
        return it->second.stat->value();
    if (auto it = averages.find(name); it != averages.end())
        return it->second.stat->value();
    panic("stat '%s' not found in group '%s'", name.c_str(),
          groupName.c_str());
}

bool
Group::contains(const std::string &name) const
{
    auto dot = name.find('.');
    if (dot != std::string::npos) {
        const std::string head = name.substr(0, dot);
        const std::string rest = name.substr(dot + 1);
        for (const auto *child : children) {
            if (child->name() == head)
                return child->contains(rest);
        }
        return false;
    }
    return scalars.count(name) > 0 || averages.count(name) > 0 ||
           distributions.count(name) > 0;
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? groupName : prefix + "." + groupName;

    auto emit = [&](const std::string &name, double value,
                    const std::string &desc) {
        os << std::left << std::setw(48) << (full + "." + name)
           << std::setprecision(6) << value;
        if (!desc.empty())
            os << "  # " << desc;
        os << '\n';
    };

    for (const auto &[name, e] : scalars)
        emit(name, e.stat->value(), e.desc);
    for (const auto &[name, e] : averages)
        emit(name, e.stat->value(), e.desc);
    for (const auto &[name, e] : distributions) {
        emit(name + ".mean", e.stat->mean(), e.desc);
        emit(name + ".min", e.stat->min(), "");
        emit(name + ".max", e.stat->max(), "");
        emit(name + ".samples", static_cast<double>(e.stat->samples()), "");
    }
    for (const auto *child : children)
        child->dump(os, full);
}

void
Group::resetAll()
{
    for (auto &[name, e] : scalars)
        e.stat->reset();
    for (auto &[name, e] : averages)
        e.stat->reset();
    for (auto &[name, e] : distributions)
        e.stat->reset();
    for (auto *child : children)
        child->resetAll();
}

} // namespace stats
} // namespace sciq
