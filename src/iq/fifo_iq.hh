/**
 * @file
 * Palacharla/Jouppi/Smith dependence-based FIFO instruction queue
 * (the original dependence-based design the paper's related-work
 * section builds on; included as an additional baseline).
 *
 * Dispatch steers each instruction behind a producer of one of its
 * operands if that producer is currently a FIFO tail; otherwise it
 * goes to an empty FIFO, and dispatch stalls if none exists.  Only the
 * FIFO heads are examined by wakeup/select.
 */

#ifndef SCIQ_IQ_FIFO_IQ_HH
#define SCIQ_IQ_FIFO_IQ_HH

#include <array>
#include <deque>
#include <vector>

#include "iq/iq_base.hh"

namespace sciq {

class FifoIq : public IqBase
{
  public:
    FifoIq(const IqParams &params, const Scoreboard &scoreboard,
           const FuPool &fu);

    bool canInsert(const DynInstPtr &inst) override;
    void insert(const DynInstPtr &inst, Cycle cycle) override;
    void issueSelect(Cycle cycle, const TryIssue &try_issue) override;
    void tick(Cycle cycle, bool core_busy) override;
    void squash(SeqNum youngest_kept) override;
    std::size_t occupancy() const override;

    stats::Scalar steeredBehindProducer;
    stats::Scalar steeredToEmpty;
    stats::Scalar noEmptyFifoStalls;

  private:
    /** FIFO the instruction should enter, or -1 to stall. */
    int steer(const DynInstPtr &inst) const;

    std::vector<std::deque<DynInstPtr>> fifos;
    std::size_t totalOcc = 0;  ///< sum of FIFO sizes, O(1) occupancy

    /** Issue-select scratch (reused; avoids per-cycle allocation). */
    std::vector<std::size_t> readyScratch;

    /** Most recent in-queue producer of each architectural register. */
    std::array<DynInstPtr, kNumArchRegs> producer;
};

} // namespace sciq

#endif // SCIQ_IQ_FIFO_IQ_HH
