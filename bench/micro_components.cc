/**
 * @file
 * M1: google-benchmark microbenchmarks of the simulator's hot
 * components - useful when tuning the simulator itself (the per-cycle
 * cost of the segmented IQ's tick dominates large-queue runs).
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "branch/branch_predictor.hh"
#include "branch/hit_miss_predictor.hh"
#include "common/json.hh"
#include "common/random.hh"
#include "core/ooo_core.hh"
#include "iq/segmented_iq.hh"
#include "isa/functional_core.hh"
#include "mem/hierarchy.hh"
#include "sim/sim_config.hh"
#include "workload/workloads.hh"

using namespace sciq;

namespace {

void
BM_FunctionalCoreStep(benchmark::State &state)
{
    WorkloadParams wp;
    wp.iterations = 1 << 20;
    Program prog = buildSwim(wp);
    FunctionalCore core(prog);
    for (auto _ : state) {
        if (core.halted())
            state.SkipWithError("program ended early");
        core.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FunctionalCoreStep);

void
BM_CacheHit(benchmark::State &state)
{
    MemHierarchy mem;
    // Warm one line.
    mem.dcache().warmInsert(0x8000);
    Cycle cycle = 0;
    for (auto _ : state) {
        mem.dcache().access(0x8000, false, ++cycle,
                            [](Cycle, AccessOutcome) {});
        mem.tick(cycle + 10);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheHit);

void
BM_BranchPredict(benchmark::State &state)
{
    HybridBranchPredictor bp;
    Random rng(1);
    Addr pc = 0x1000;
    for (auto _ : state) {
        auto snap = bp.snapshot();
        bool pred = bp.predict(pc);
        benchmark::DoNotOptimize(pred);
        bp.update(pc, rng.chance(0.5), snap);
        pc = 0x1000 + (rng.next() & 0xFFC);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BranchPredict);

void
BM_HitMissPredict(benchmark::State &state)
{
    HitMissPredictor hmp;
    Random rng(2);
    for (auto _ : state) {
        Addr pc = 0x1000 + (rng.next() & 0xFFC);
        bool hit = hmp.peekHit(pc);
        benchmark::DoNotOptimize(hit);
        hmp.update(pc, rng.chance(0.9));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HitMissPredict);

/** Whole-pipeline cycles/second for each IQ design on swim. */
void
BM_CoreTick(benchmark::State &state)
{
    const auto kind = static_cast<IqKind>(state.range(0));
    WorkloadParams wp;
    wp.iterations = 1 << 20;  // effectively unbounded for the bench
    Program prog = buildSwim(wp);
    CoreParams params;
    params.iqKind = kind;
    params.iq.numEntries = 512;
    params.iq.maxChains = 128;
    params.iq.useHmp = true;
    params.iq.useLrp = true;
    OooCore core(prog, params);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel(iqKindName(kind));
}
BENCHMARK(BM_CoreTick)
    ->Arg(static_cast<int>(IqKind::Ideal))
    ->Arg(static_cast<int>(IqKind::Segmented))
    ->Arg(static_cast<int>(IqKind::Prescheduled))
    ->Arg(static_cast<int>(IqKind::Fifo))
    ->Unit(benchmark::kMicrosecond);

/**
 * Where inside SegmentedIq::tick the time goes.  Runs a swim core for
 * a fixed tick count with the IQ's substage profiling enabled and
 * reports the per-substage split (promotion / signal delivery /
 * countdown / issue select / dispatch) plus the deterministic
 * iq.work.* counters.
 */
struct SubstageSample
{
    SegmentedIq::TickProfile prof;
    SegmentedIq::WorkCounters work;
    unsigned iqSize = 0;
    bool soa = true;
};

SubstageSample
runSegmentedSubstages(unsigned iq_size, bool soa, std::uint64_t ticks)
{
    WorkloadParams wp;
    wp.iterations = 1 << 20;  // effectively unbounded for the bench
    Program prog = buildSwim(wp);
    CoreParams params;
    params.iqKind = IqKind::Segmented;
    params.iq.numEntries = iq_size;
    params.iq.maxChains = 128;
    params.iq.useHmp = true;
    params.iq.useLrp = true;
    params.iq.soaLayout = soa;
    OooCore core(prog, params);
    auto *seg = dynamic_cast<SegmentedIq *>(&core.iqUnit());
    seg->setProfiling(true);
    for (std::uint64_t t = 0; t < ticks; ++t)
        core.tick();
    SubstageSample s;
    s.prof = seg->profile();
    s.work = seg->workCounters();
    s.iqSize = iq_size;
    s.soa = soa;
    return s;
}

void
BM_SegmentedTickSubstages(benchmark::State &state)
{
    const auto iq_size = static_cast<unsigned>(state.range(0));
    const bool soa = state.range(1) != 0;
    SubstageSample s;
    std::uint64_t total_ticks = 0;
    for (auto _ : state) {
        state.PauseTiming();  // construction/warm-up excluded
        constexpr std::uint64_t kTicks = 20000;
        state.ResumeTiming();
        s = runSegmentedSubstages(iq_size, soa, kTicks);
        total_ticks += kTicks;
    }
    const double total = s.prof.promoteSec + s.prof.deliverSec +
                         s.prof.countdownSec + s.prof.issueSec +
                         s.prof.dispatchSec;
    auto frac = [&](double sec) { return total > 0.0 ? sec / total : 0.0; };
    state.counters["promote_frac"] = frac(s.prof.promoteSec);
    state.counters["deliver_frac"] = frac(s.prof.deliverSec);
    state.counters["countdown_frac"] = frac(s.prof.countdownSec);
    state.counters["issue_frac"] = frac(s.prof.issueSec);
    state.counters["dispatch_frac"] = frac(s.prof.dispatchSec);
    state.SetItemsProcessed(static_cast<std::int64_t>(total_ticks));
    state.SetLabel(soa ? "soa" : "reference");
}
BENCHMARK(BM_SegmentedTickSubstages)
    ->Args({256, 1})
    ->Args({256, 0})
    ->Unit(benchmark::kMillisecond);

/**
 * json_out= payload: one substage-profile record per (iq_size, engine)
 * point, with absolute seconds, ns/tick, fractions, and the exact
 * iq.work.* counters for the same tick window.
 */
void
writeSubstageJson(const std::string &path)
{
    constexpr std::uint64_t kTicks = 50000;
    std::vector<SubstageSample> samples;
    for (unsigned size : {64u, 256u})
        for (bool soa : {false, true})
            samples.push_back(runSegmentedSubstages(size, soa, kTicks));

    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "ERROR: could not write %s\n", path.c_str());
        return;
    }
    out << "{\n  \"bench\": \"micro_components.substages\",\n"
        << "  \"workload\": \"swim\",\n  \"ticks\": " << kTicks
        << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const SubstageSample &s = samples[i];
        const double total = s.prof.promoteSec + s.prof.deliverSec +
                             s.prof.countdownSec + s.prof.issueSec +
                             s.prof.dispatchSec;
        auto stage = [&](const char *name, double sec, bool last = false) {
            out << "        {\"stage\": \"" << name << "\", \"seconds\": ";
            json::writeNumber(out, sec);
            out << ", \"ns_per_tick\": ";
            json::writeNumber(
                out, s.prof.ticks ? sec * 1e9 / s.prof.ticks : 0.0);
            out << ", \"frac\": ";
            json::writeNumber(out, total > 0.0 ? sec / total : 0.0);
            out << "}" << (last ? "\n" : ",\n");
        };
        out << "    {\"iq_size\": " << s.iqSize << ", \"engine\": \""
            << (s.soa ? "soa" : "reference") << "\",\n"
            << "      \"substages\": [\n";
        stage("promote", s.prof.promoteSec);
        stage("deliver", s.prof.deliverSec);
        stage("countdown", s.prof.countdownSec);
        stage("issue_select", s.prof.issueSec);
        stage("dispatch", s.prof.dispatchSec, true);
        out << "      ],\n      \"work\": {"
            << "\"signal_deliveries\": " << s.work.signalDeliveries
            << ", \"plan_calls\": " << s.work.planCalls
            << ", \"segments_scanned\": " << s.work.segmentsScanned
            << ", \"lane_words_touched\": " << s.work.laneWordsTouched
            << "}}" << (i + 1 == samples.size() ? "\n" : ",\n");
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "wrote substage profile to %s\n", path.c_str());
}

} // namespace

/**
 * Standard BENCHMARK_MAIN plus one repo-style key=value argument:
 *   json_out=path  write the SegmentedIq tick-substage profile (runs
 *                  a dedicated profiling pass after the benchmarks)
 */
int
main(int argc, char **argv)
{
    std::string json_out;
    std::vector<char *> bench_argv;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "json_out=", 9) == 0) {
            json_out = argv[i] + 9;
            continue;
        }
        bench_argv.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_argv.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!json_out.empty())
        writeSubstageJson(json_out);
    return 0;
}
