/**
 * @file
 * Allocator for dependence-chain wires.  Chain IDs are physical wire
 * indices; each carries a generation number so that in-flight signals
 * of a deallocated chain can never be confused with signals of a new
 * chain reusing the same wire.
 */

#ifndef SCIQ_IQ_CHAIN_ALLOCATOR_HH
#define SCIQ_IQ_CHAIN_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace sciq {

class ChainAllocator
{
  public:
    /** @param max_chains Number of chain wires; -1 = unlimited. */
    explicit ChainAllocator(int max_chains) : maxChains(max_chains)
    {
        if (max_chains > 0) {
            gens.assign(static_cast<std::size_t>(max_chains), 0);
            for (int i = max_chains - 1; i >= 0; --i)
                freeList.push_back(i);
        }
    }

    bool
    available() const
    {
        return maxChains < 0 || !freeList.empty();
    }

    /** Allocate a chain wire.  @return (id, generation). */
    std::pair<ChainId, std::uint32_t>
    alloc()
    {
        ChainId id;
        if (!freeList.empty()) {
            id = freeList.back();
            freeList.pop_back();
        } else {
            SCIQ_ASSERT(maxChains < 0, "chain allocator exhausted");
            id = static_cast<ChainId>(gens.size());
            gens.push_back(0);
        }
        ++inUseCount;
        if (inUseCount > peakCount)
            peakCount = inUseCount;
        return {id, gens[static_cast<std::size_t>(id)]};
    }

    /** Release a chain wire; its generation is bumped immediately. */
    void
    free(ChainId id)
    {
        SCIQ_ASSERT(inUseCount > 0, "freeing with none allocated");
        ++gens[static_cast<std::size_t>(id)];
        freeList.push_back(id);
        --inUseCount;
    }

    std::uint32_t
    generation(ChainId id) const
    {
        return gens[static_cast<std::size_t>(id)];
    }

    /**
     * True when `gen` is the generation the wire currently carries,
     * i.e. signals and memberships tagged with it are still
     * authoritative.  After free() the old generation is dead even
     * though listeners may still hold it (they compare generations
     * before applying anything).
     */
    bool
    isLive(ChainId id, std::uint32_t gen) const
    {
        return gens[static_cast<std::size_t>(id)] == gen;
    }

    unsigned inUse() const { return inUseCount; }
    unsigned peak() const { return peakCount; }
    int capacity() const { return maxChains; }

  private:
    int maxChains;
    std::vector<std::uint32_t> gens;
    std::vector<ChainId> freeList;
    unsigned inUseCount = 0;
    unsigned peakCount = 0;
};

} // namespace sciq

#endif // SCIQ_IQ_CHAIN_ALLOCATOR_HH
