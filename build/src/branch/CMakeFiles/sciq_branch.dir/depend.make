# Empty dependencies file for sciq_branch.
# This may be replaced when dependencies are built.
