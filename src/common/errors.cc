#include "errors.hh"

#include <array>
#include <utility>

namespace sciq {

namespace {

constexpr std::array<std::pair<ErrorCode, const char *>, 8> kCodeNames{{
    {ErrorCode::None, "none"},
    {ErrorCode::Config, "config"},
    {ErrorCode::Workload, "workload"},
    {ErrorCode::Checkpoint, "checkpoint"},
    {ErrorCode::Deadlock, "deadlock"},
    {ErrorCode::Invariant, "invariant"},
    {ErrorCode::Resource, "resource"},
    {ErrorCode::Internal, "internal"},
}};

} // namespace

const char *
errorCodeName(ErrorCode code)
{
    for (const auto &[c, name] : kCodeNames) {
        if (c == code)
            return name;
    }
    return "internal";
}

ErrorCode
errorCodeFromName(const std::string &name)
{
    for (const auto &[c, n] : kCodeNames) {
        if (name == n)
            return c;
    }
    return ErrorCode::Internal;
}

} // namespace sciq
