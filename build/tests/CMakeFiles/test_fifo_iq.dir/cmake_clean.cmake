file(REMOVE_RECURSE
  "CMakeFiles/test_fifo_iq.dir/test_fifo_iq.cc.o"
  "CMakeFiles/test_fifo_iq.dir/test_fifo_iq.cc.o.d"
  "test_fifo_iq"
  "test_fifo_iq.pdb"
  "test_fifo_iq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fifo_iq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
