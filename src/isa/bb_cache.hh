/**
 * @file
 * Runtime basic-block cache for the functional interpreter.
 *
 * The step()-based functional path pays a Program::fetch bounds check,
 * an opcode-class classification and several virtual ExecContext calls
 * for every instruction.  Warming runs execute the same few loop bodies
 * hundreds of millions of times, so this cache discovers basic blocks
 * on first execution (walk from an entry PC to the next control-flow
 * instruction), flattens each into a trace of by-value instruction
 * copies with pre-classified kind flags, and lets the
 * interpreter replay whole blocks through a devirtualized execute path
 * (FunctionalCore::runBlocks).  Blocks chain through inline-cached
 * successor pointers (fall-through / taken / last-indirect-target), so
 * steady-state loops never touch the per-instruction fetch lookup.
 *
 * The cache is pure acceleration state: it holds no architectural
 * state, is never serialized, and a block is a pure function of the
 * (immutable) program, so discovery order cannot affect results.
 * DESIGN.md §14 describes the contract; tests/test_bb_cache.cc pins
 * bit-identity against the step()-based reference.
 */

#ifndef SCIQ_ISA_BB_CACHE_HH
#define SCIQ_ISA_BB_CACHE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace sciq {

/** Pre-classified kind flags for one cached micro-op. */
enum BbFlags : std::uint8_t
{
    kBbMem = 1u << 0,
    kBbLoad = 1u << 1,
    kBbCondBranch = 1u << 2,
    kBbIndirect = 1u << 3,
    kBbControl = 1u << 4,
    kBbHalt = 1u << 5,
};

/**
 * One flattened micro-op.  The instruction is copied *by value* so the
 * replay loop streams the trace sequentially instead of chasing a
 * pointer into Program::code for every op (the dependent load showed
 * up as the single largest cost in the warming profile).  The op's PC
 * is not stored: it is `block.startPc + i * kInstBytes` by
 * construction.  `src` is the canonical program instruction, kept only
 * for lastInst() introspection.
 */
struct BbOp
{
    Instruction inst;
    const Instruction *src;
    std::uint8_t flags;
};

/**
 * A discovered basic block: the ops from its entry PC up to and
 * including the first control-flow (or HALT) instruction, plus
 * inline-cached successor links filled in as control flow resolves.
 */
struct BasicBlock
{
    Addr startPc = 0;
    std::vector<BbOp> ops;

    /** Fall-through / not-taken successor (startPc of next op). */
    BasicBlock *seqNext = nullptr;
    /** Taken successor of a direct branch/jump (target is static). */
    BasicBlock *takenNext = nullptr;
    /** One-entry inline cache for register-indirect targets. */
    Addr indirectPc = 0;
    BasicBlock *indirectNext = nullptr;

    const BbOp &terminator() const { return ops.back(); }
};

class BbCache
{
  public:
    /**
     * Discovery stops after this many ops even without control flow,
     * bounding block size; correctness is unaffected because the
     * replay loop re-enters through lookup() at the cut PC.
     */
    static constexpr std::size_t kMaxBlockOps = 1024;

    explicit BbCache(const Program &prog) : program(prog) {}

    BbCache(const BbCache &) = delete;
    BbCache &operator=(const BbCache &) = delete;

    /**
     * The block starting at `pc`, discovering it on first use.
     * Returns nullptr when `pc` addresses no instruction of the
     * program (the caller reproduces the step()-path panic).
     */
    BasicBlock *
    lookup(Addr pc)
    {
        auto it = blocks.find(pc);
        if (it != blocks.end()) [[likely]] {
            ++traceHits_;
            return it->second.get();
        }
        return discover(pc);
    }

    /**
     * Successor of `bb` given its terminator's resolved next PC,
     * through the inline caches.  `taken` is the terminator's branch
     * outcome (always true for jumps, false for a non-control
     * terminator cut by kMaxBlockOps).
     */
    BasicBlock *
    successor(BasicBlock *bb, Addr next_pc, bool taken)
    {
        if (bb->terminator().flags & kBbIndirect) {
            if (bb->indirectNext && bb->indirectPc == next_pc)
                [[likely]] {
                ++succHits_;
                return bb->indirectNext;
            }
            bb->indirectNext = lookup(next_pc);
            bb->indirectPc = next_pc;
            return bb->indirectNext;
        }
        BasicBlock *&slot = taken ? bb->takenNext : bb->seqNext;
        if (slot) [[likely]] {
            ++succHits_;
            return slot;
        }
        slot = lookup(next_pc);
        return slot;
    }

    // Accounting (host-side observability; never architectural).
    std::uint64_t blocksDiscovered() const { return blocksDiscovered_; }
    std::uint64_t opsCached() const { return opsCached_; }
    std::uint64_t traceHits() const { return traceHits_; }
    std::uint64_t succHits() const { return succHits_; }

  private:
    static std::uint8_t
    classify(const Instruction &inst)
    {
        std::uint8_t f = 0;
        if (inst.isMem())
            f |= kBbMem;
        if (inst.isLoad())
            f |= kBbLoad;
        if (inst.isCondBranch())
            f |= kBbCondBranch;
        if (inst.isIndirect())
            f |= kBbIndirect;
        if (inst.isControl())
            f |= kBbControl;
        if (inst.isHalt())
            f |= kBbHalt;
        return f;
    }

    BasicBlock *discover(Addr pc);

    const Program &program;
    std::unordered_map<Addr, std::unique_ptr<BasicBlock>> blocks;

    std::uint64_t blocksDiscovered_ = 0;
    std::uint64_t opsCached_ = 0;
    std::uint64_t traceHits_ = 0;
    std::uint64_t succHits_ = 0;
};

} // namespace sciq

#endif // SCIQ_ISA_BB_CACHE_HH
