#include "ideal_iq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sciq {

IdealIq::IdealIq(const IqParams &params, const Scoreboard &scoreboard,
                 const FuPool &fu)
    : IqBase(params, scoreboard, fu, "iq")
{
    insts.reserve(params.numEntries);
    readyList.reserve(params.numEntries);
    waiters.resize(scoreboard.size());
}

bool
IdealIq::canInsert(const DynInstPtr &)
{
    return insts.size() < params.numEntries;
}

void
IdealIq::pushReady(const DynInstPtr &inst)
{
    // Almost always the youngest entry so far; fall back to a sorted
    // insert for the rare out-of-order wakeup.
    if (readyList.empty() || readyList.back()->seq < inst->seq) {
        readyList.push_back(inst);
        return;
    }
    auto pos = std::lower_bound(readyList.begin(), readyList.end(), inst,
                                [](const DynInstPtr &a, const DynInstPtr &b) {
                                    return a->seq < b->seq;
                                });
    readyList.insert(pos, inst);
}

void
IdealIq::insert(const DynInstPtr &inst, Cycle)
{
    SCIQ_ASSERT(insts.size() < params.numEntries, "ideal IQ overflow");
    instsInserted.inc();
    insts.push_back(inst);
    inst->ideal.inQueue = true;

    int pending = 0;
    const auto srcs = iqSources(*inst);
    for (RegIndex r : srcs) {
        if (r == kInvalidReg || scoreboard.isReady(r))
            continue;
        ++pending;
        waiters[r].push_back(inst);
    }
    inst->ideal.pendingOps = pending;
    if (pending == 0)
        pushReady(inst);
}

void
IdealIq::onRegReady(RegIndex r)
{
    if (r == kInvalidReg || static_cast<std::size_t>(r) >= waiters.size())
        return;
    auto &list = waiters[r];
    if (list.empty())
        return;
    for (DynInstPtr &w : list) {
        if (!w->ideal.inQueue)
            continue;  // squashed or issued while waiting
        if (--w->ideal.pendingOps == 0)
            pushReady(w);
    }
    list.clear();
}

void
IdealIq::issueSelect(Cycle, const TryIssue &try_issue)
{
    unsigned issued = 0;
    for (auto it = readyList.begin();
         it != readyList.end() && issued < params.issueWidth;) {
        // Copy (and so refcount) only the entry actually issued.
        if (operandsReady(**it) && try_issue(*it)) {
            DynInstPtr inst = *it;
            instsIssued.inc();
            ++issued;
            inst->ideal.inQueue = false;
            it = readyList.erase(it);
            // Residency list is seq-sorted: binary search the victim.
            auto pos = std::lower_bound(
                insts.begin(), insts.end(), inst,
                [](const DynInstPtr &a, const DynInstPtr &b) {
                    return a->seq < b->seq;
                });
            SCIQ_ASSERT(pos != insts.end() && *pos == inst,
                        "issued instruction missing from the ideal IQ");
            insts.erase(pos);
        } else {
            ++it;
        }
    }
}

void
IdealIq::tick(Cycle, bool)
{
    occupancyAvg.sample(static_cast<double>(insts.size()));
}

void
IdealIq::squash(SeqNum youngest_kept)
{
    // Both lists are seq-sorted, so the squashed set is a suffix.
    auto cmp = [](SeqNum s, const DynInstPtr &p) { return s < p->seq; };
    auto pos = std::upper_bound(insts.begin(), insts.end(), youngest_kept,
                                cmp);
    for (auto it = pos; it != insts.end(); ++it)
        (*it)->ideal.inQueue = false;
    insts.erase(pos, insts.end());
    auto rpos = std::upper_bound(readyList.begin(), readyList.end(),
                                 youngest_kept, cmp);
    readyList.erase(rpos, readyList.end());
}

} // namespace sciq
