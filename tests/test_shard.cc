/**
 * @file
 * Distributed sweep service (DESIGN.md §17): shard partition
 * stability, config-spec round-trips, wire-protocol tolerance, the
 * JobBoard lease state machine, and end-to-end coordinator/worker
 * sweeps that must merge byte-identically to a single-process run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "common/errors.hh"
#include "sim/fault_injector.hh"
#include "sim/journal.hh"
#include "sim/shard.hh"
#include "sim/sweep.hh"
#include "sim/worker_proto.hh"

using namespace sciq;

namespace {

std::string
testSocket(const std::string &tag)
{
    // Keep well under the sockaddr_un sun_path limit.
    return "/tmp/sciq-" + tag + "-" + std::to_string(::getpid()) +
           ".sock";
}

std::vector<SimConfig>
smallConfigSet()
{
    std::vector<SimConfig> cfgs;
    for (const auto &wl : {"swim", "gcc"}) {
        for (unsigned size : {32u, 64u}) {
            SimConfig seg = makeSegmentedConfig(size, 32, true, true, wl);
            seg.wl.iterations = 200;
            cfgs.push_back(seg);
        }
        SimConfig ideal = makeIdealConfig(64, wl);
        ideal.wl.iterations = 200;
        cfgs.push_back(ideal);
    }
    return cfgs;
}

void
expectSameBits(double a, double b, const char *field, std::size_t i)
{
    std::uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    EXPECT_EQ(ab, bb) << field << " differs (" << a << " vs " << b
                      << ") config " << i;
}

/** writeResultsJson with the host wall-clock lines removed. */
std::string
maskedResultsJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(os, results);
    static const char *masked[] = {
        "\"host_seconds\"", "\"host_kcycles_per_sec\"",
        "\"host_kinsts_per_sec\"", "\"warm_seconds\"",
        "\"warm_insts_per_sec\"",
    };
    std::istringstream is(os.str());
    std::string out, line;
    while (std::getline(is, line)) {
        bool skip = false;
        for (const char *m : masked)
            skip = skip || line.find(m) != std::string::npos;
        if (!skip)
            out += line + "\n";
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Sharding and config specs

TEST(Shard, ShardOfIsPermutationStableAndInRange)
{
    const std::vector<SimConfig> cfgs = smallConfigSet();
    for (unsigned shards : {1u, 2u, 3u, 7u}) {
        std::vector<unsigned> forward, backward;
        for (const SimConfig &cfg : cfgs)
            forward.push_back(shardOf(sweepKey(cfg), shards));
        for (auto it = cfgs.rbegin(); it != cfgs.rend(); ++it)
            backward.push_back(shardOf(sweepKey(*it), shards));
        std::reverse(backward.begin(), backward.end());
        // A pure function of the key: the job list's order (or any
        // lease history) cannot move a job between shards.
        EXPECT_EQ(forward, backward);
        for (const unsigned s : forward)
            EXPECT_LT(s, shards);
    }
    EXPECT_EQ(shardOf("anything", 0), 0u);
}

TEST(Shard, DistinctKeysSpreadAcrossShards)
{
    // Not a strict uniformity claim - just that the hash is not
    // degenerate for realistic key sets.
    const std::vector<SimConfig> cfgs = smallConfigSet();
    std::vector<bool> hit(3, false);
    for (const SimConfig &cfg : cfgs)
        hit[shardOf(sweepKey(cfg), 3)] = true;
    EXPECT_TRUE(hit[0] || hit[1] || hit[2]);
    unsigned used = 0;
    for (const bool h : hit)
        used += h;
    EXPECT_GE(used, 2u) << "6 distinct keys all hashed to one shard";
}

TEST(Shard, ConfigSpecRoundTripsEveryIqKind)
{
    std::vector<SimConfig> cfgs;
    cfgs.push_back(makeSegmentedConfig(128, 16, true, false, "swim"));
    cfgs.push_back(makeIdealConfig(64, "gcc"));
    cfgs.push_back(makePrescheduledConfig(96, "twolf"));
    cfgs.push_back(makeFifoConfig(8, 16, "equake"));
    cfgs[0].fastForward = 5000;
    cfgs[0].validate = true;
    cfgs[1].audit = true;
    cfgs[2].core.iq.preschedLineWidth = 7;
    cfgs[3].core.iq.fifoDepth = 16;
    cfgs[3].bbCache = false;

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const std::string spec = configSpec(cfgs[i]);
        const SimConfig back = configFromSpec(spec);
        // The spec must reproduce the job's full architected identity:
        // same sweep key and a fixpoint spec.
        EXPECT_EQ(sweepKey(back), sweepKey(cfgs[i])) << "config " << i;
        EXPECT_EQ(configSpec(back), spec) << "config " << i;
    }
}

TEST(Shard, ConfigFromSpecRejectsJunk)
{
    EXPECT_THROW(configFromSpec("workload=swim not-a-kv-token"),
                 ConfigError);
    EXPECT_THROW(configFromSpec("iq=bogus"), ConfigError);
}

// ---------------------------------------------------------------------
// Wire protocol

TEST(WorkerProto, MessagesRoundTrip)
{
    Message hello;
    hello.type = MsgType::Hello;
    hello.proto = kWorkerProtoVersion;
    hello.worker = "w\"0\n";  // hostile name: quotes and newline
    Message out;
    ASSERT_TRUE(decodeMessage(encodeMessage(hello), out));
    EXPECT_EQ(out.type, MsgType::Hello);
    EXPECT_EQ(out.proto, hello.proto);
    EXPECT_EQ(out.worker, hello.worker);

    Message welcome;
    welcome.type = MsgType::Welcome;
    welcome.proto = 1;
    welcome.shard = 2;
    welcome.shards = 3;
    welcome.jobs = 42;
    welcome.leaseMs = 60'000;
    welcome.heartbeatMs = 1'000;
    ASSERT_TRUE(decodeMessage(encodeMessage(welcome), out));
    EXPECT_EQ(out.type, MsgType::Welcome);
    EXPECT_EQ(out.shard, 2);
    EXPECT_EQ(out.shards, 3u);
    EXPECT_EQ(out.jobs, 42u);
    EXPECT_EQ(out.leaseMs, 60'000u);
    EXPECT_EQ(out.heartbeatMs, 1'000u);

    Message ack;
    ack.type = MsgType::ResultAck;
    ack.index = 9;
    ASSERT_TRUE(decodeMessage(encodeMessage(ack), out));
    EXPECT_EQ(out.type, MsgType::ResultAck);
    EXPECT_EQ(out.index, 9u);

    for (const MsgType t : {MsgType::Ping, MsgType::Pong}) {
        Message hb;
        hb.type = t;
        hb.seq = 123456789012345ull;
        ASSERT_TRUE(decodeMessage(encodeMessage(hb), out));
        EXPECT_EQ(out.type, t);
        EXPECT_EQ(out.seq, 123456789012345ull);
    }

    Message lease;
    lease.type = MsgType::Lease;
    lease.index = 7;
    lease.key = "workload=swim iters=200";
    lease.spec = lease.key + " validate=0";
    ASSERT_TRUE(decodeMessage(encodeMessage(lease), out));
    EXPECT_EQ(out.type, MsgType::Lease);
    EXPECT_EQ(out.index, 7u);
    EXPECT_EQ(out.key, lease.key);
    EXPECT_EQ(out.spec, lease.spec);

    for (const MsgType t :
         {MsgType::LeaseReq, MsgType::Drain}) {
        Message bare;
        bare.type = t;
        ASSERT_TRUE(decodeMessage(encodeMessage(bare), out));
        EXPECT_EQ(out.type, t);
    }

    Message wait;
    wait.type = MsgType::Wait;
    wait.waitMs = 250;
    ASSERT_TRUE(decodeMessage(encodeMessage(wait), out));
    EXPECT_EQ(out.type, MsgType::Wait);
    EXPECT_EQ(out.waitMs, 250u);

    Message reject;
    reject.type = MsgType::Reject;
    reject.reason = "version mismatch";
    ASSERT_TRUE(decodeMessage(encodeMessage(reject), out));
    EXPECT_EQ(out.type, MsgType::Reject);
    EXPECT_EQ(out.reason, reject.reason);
}

TEST(WorkerProto, ResultPayloadRoundTripsDoublesBitForBit)
{
    Message res;
    res.type = MsgType::Result;
    res.index = 3;
    res.key = "workload=swim iters=200";
    res.result.workload = "swim";
    res.result.iqKind = "segmented";
    res.result.iqSize = 64;
    res.result.ipc = 1.0 / 3.0;
    res.result.hmpAccuracy = std::nan("");  // undefined rate
    res.result.outcome.status = JobOutcome::Status::Ok;

    Message out;
    ASSERT_TRUE(decodeMessage(encodeMessage(res), out));
    EXPECT_EQ(out.index, 3u);
    EXPECT_EQ(out.result.workload, "swim");
    EXPECT_EQ(out.result.iqSize, 64u);
    expectSameBits(out.result.ipc, res.result.ipc, "ipc", 0);
    EXPECT_TRUE(std::isnan(out.result.hmpAccuracy));
}

TEST(WorkerProto, TornAndMalformedLinesAreTolerated)
{
    Message res;
    res.type = MsgType::Result;
    res.index = 1;
    res.key = "k";
    res.result.ipc = 0.5;
    const std::string full = encodeMessage(res);

    Message out;
    // Every strict prefix is a torn line a killed worker could leave.
    for (std::size_t len = 0; len < full.size(); ++len)
        EXPECT_FALSE(decodeMessage(full.substr(0, len), out))
            << "prefix length " << len;
    EXPECT_TRUE(decodeMessage(full, out));

    EXPECT_FALSE(decodeMessage("", out));
    EXPECT_FALSE(decodeMessage("not json at all", out));
    EXPECT_FALSE(decodeMessage("{\"type\":\"no-such-type\"}", out));
    EXPECT_FALSE(decodeMessage("{\"type\":\"lease\"}", out));
}

TEST(WorkerProto, OutOfRangeNumbersAreMalformedNotNarrowed)
{
    // Narrowing a hostile number would be UB; decode must say no.
    Message out;
    EXPECT_FALSE(decodeMessage(
        "{\"type\":\"result_ack\",\"index\":-1}", out));
    EXPECT_FALSE(decodeMessage(
        "{\"type\":\"result_ack\",\"index\":1.5}", out));
    EXPECT_FALSE(decodeMessage(
        "{\"type\":\"result_ack\",\"index\":1e300}", out));
    EXPECT_FALSE(decodeMessage(
        "{\"type\":\"hello\",\"proto\":-2,\"worker\":\"w\"}", out));
    EXPECT_FALSE(decodeMessage(
        "{\"type\":\"hello\",\"proto\":4294967296,\"worker\":\"w\"}",
        out));
    EXPECT_FALSE(decodeMessage(
        "{\"type\":\"wait\",\"ms\":\"soon\"}", out));
    // In-range values still decode.
    EXPECT_TRUE(decodeMessage(
        "{\"type\":\"result_ack\",\"index\":4294967295}", out));
    EXPECT_EQ(out.index, 4294967295u);
}

// ---------------------------------------------------------------------
// Endpoints

TEST(Endpoint, TcpSpecsParseAndReject)
{
    Endpoint ep = tcpEndpoint("127.0.0.1:7070");
    EXPECT_EQ(ep.kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(ep.host, "127.0.0.1");
    EXPECT_EQ(ep.port, 7070u);
    EXPECT_EQ(ep.str(), "127.0.0.1:7070");

    ep = tcpEndpoint("[::1]:9000");
    EXPECT_EQ(ep.host, "::1");
    EXPECT_EQ(ep.port, 9000u);

    ep = tcpEndpoint("build-box:0");
    EXPECT_EQ(ep.host, "build-box");
    EXPECT_EQ(ep.port, 0u);

    EXPECT_THROW(tcpEndpoint("no-port"), ConfigError);
    EXPECT_THROW(tcpEndpoint(":7070"), ConfigError);
    EXPECT_THROW(tcpEndpoint("host:"), ConfigError);
    EXPECT_THROW(tcpEndpoint("host:notaport"), ConfigError);
    EXPECT_THROW(tcpEndpoint("host:70000"), ConfigError);
    EXPECT_THROW(tcpEndpoint("::1:7070"), ConfigError)
        << "raw v6 needs brackets";
    EXPECT_THROW(tcpEndpoint("[::1]7070"), ConfigError);
}

TEST(Endpoint, ParseAutoDetectsKind)
{
    EXPECT_EQ(parseEndpoint("/tmp/x.sock").kind, Endpoint::Kind::Unix);
    EXPECT_EQ(parseEndpoint("relative.sock").kind,
              Endpoint::Kind::Unix);
    EXPECT_EQ(parseEndpoint("localhost:80").kind, Endpoint::Kind::Tcp);
    // A colon without a '/' is claimed by TCP; junk after it is loud.
    EXPECT_THROW(parseEndpoint("host:junk"), ConfigError);
}

TEST(Endpoint, TcpLoopbackListenConnectRoundTrip)
{
    Endpoint listen = tcpEndpoint("127.0.0.1:0");
    const int lfd = listenEndpoint(listen);
    ASSERT_GE(lfd, 0);
    const unsigned port = boundPort(lfd);
    ASSERT_GT(port, 0u);

    Endpoint peer = tcpEndpoint("127.0.0.1:" + std::to_string(port));
    const int cfd = connectEndpoint(peer, 5'000);
    ASSERT_GE(cfd, 0);
    const int afd = acceptConn(lfd);
    ASSERT_GE(afd, 0);

    LineChannel client(cfd), server(afd);
    ASSERT_TRUE(client.sendLine("over tcp"));
    std::string line;
    ASSERT_TRUE(server.recvLine(line, 5'000));
    EXPECT_EQ(line, "over tcp");
    ::close(lfd);
}

// ---------------------------------------------------------------------
// JobBoard lease state machine (fake clock, no sockets)

namespace {

JobBoard::Clock::time_point
t0()
{
    return JobBoard::Clock::time_point() + std::chrono::hours(1);
}

std::vector<std::string>
boardKeys(std::size_t n)
{
    std::vector<std::string> keys;
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back("job-" + std::to_string(i));
    return keys;
}

} // namespace

TEST(JobBoard, PrefersOwnShardThenSteals)
{
    JobBoard::Options options;
    options.shards = 2;
    const std::vector<std::string> keys = boardKeys(4);
    JobBoard board(keys, std::vector<char>(4, 0), options);

    // Find one job from each shard for a worker homed there.
    const unsigned shard0 = board.shardOfJob(0);
    std::size_t index = 0;
    ASSERT_EQ(board.lease(1, shard0, t0(), index),
              JobBoard::Grant::Leased);
    EXPECT_EQ(board.shardOfJob(index), shard0);
    EXPECT_EQ(board.steals(), 0u);

    // Lease everything; once a shard empties, grants become steals.
    std::uint64_t granted = 1;
    while (board.lease(1, shard0, t0(), index) ==
           JobBoard::Grant::Leased)
        ++granted;
    EXPECT_EQ(granted, 4u);
    EXPECT_GT(board.steals(), 0u);

    // All in flight, none old enough to duplicate: wait.
    EXPECT_EQ(board.lease(2, 1, t0(), index), JobBoard::Grant::Wait);
}

TEST(JobBoard, CompleteIsIdempotentAndDrains)
{
    JobBoard board(boardKeys(2), std::vector<char>(2, 0), {});
    std::size_t index = 0;
    ASSERT_EQ(board.lease(1, 0, t0(), index), JobBoard::Grant::Leased);
    EXPECT_TRUE(board.complete(index));
    EXPECT_FALSE(board.complete(index)) << "duplicate result must lose";
    ASSERT_EQ(board.lease(1, 0, t0(), index), JobBoard::Grant::Leased);
    EXPECT_TRUE(board.complete(index));
    EXPECT_TRUE(board.allDone());
    EXPECT_EQ(board.lease(1, 0, t0(), index),
              JobBoard::Grant::Drained);
}

TEST(JobBoard, JournalDoneJobsAreNeverLeased)
{
    std::vector<char> done = {1, 0, 1};
    JobBoard board(boardKeys(3), done, {});
    std::size_t index = 99;
    ASSERT_EQ(board.lease(1, 0, t0(), index), JobBoard::Grant::Leased);
    EXPECT_EQ(index, 1u);
    EXPECT_TRUE(board.complete(1));
    EXPECT_TRUE(board.allDone());
}

TEST(JobBoard, ExpiryRequeuesWithoutLossOrDuplication)
{
    JobBoard::Options options;
    options.leaseMs = 1000;
    JobBoard board(boardKeys(2), std::vector<char>(2, 0), options);

    std::size_t a = 0, b = 0;
    ASSERT_EQ(board.lease(1, 0, t0(), a), JobBoard::Grant::Leased);
    ASSERT_EQ(board.lease(1, 0, t0(), b), JobBoard::Grant::Leased);
    EXPECT_NE(a, b);

    // Nothing expires before the deadline.
    std::vector<std::size_t> requeued, failed;
    board.expireLeases(t0() + std::chrono::milliseconds(999), requeued,
                       failed);
    EXPECT_TRUE(requeued.empty());
    EXPECT_TRUE(failed.empty());

    // Both leases expire exactly once; the jobs come back leasable.
    board.expireLeases(t0() + std::chrono::milliseconds(1001), requeued,
                       failed);
    EXPECT_EQ(requeued.size(), 2u);
    EXPECT_TRUE(failed.empty());
    EXPECT_EQ(board.requeues(), 2u);
    EXPECT_FALSE(board.allDone());

    std::size_t again = 99;
    const auto later = t0() + std::chrono::milliseconds(2000);
    ASSERT_EQ(board.lease(2, 0, later, again), JobBoard::Grant::Leased);
    EXPECT_TRUE(board.complete(again));
    ASSERT_EQ(board.lease(2, 0, later, again), JobBoard::Grant::Leased);
    EXPECT_TRUE(board.complete(again));
    EXPECT_TRUE(board.allDone()) << "requeue lost or duplicated a job";
}

TEST(JobBoard, RepeatedDropsFailTheJob)
{
    JobBoard::Options options;
    options.leaseMs = 10;
    options.maxLeaseDrops = 2;
    JobBoard board(boardKeys(1), std::vector<char>(1, 0), options);

    auto now = t0();
    for (unsigned round = 0; round < 3; ++round) {
        std::size_t index = 0;
        ASSERT_EQ(board.lease(1, 0, now, index),
                  JobBoard::Grant::Leased);
        std::vector<std::size_t> requeued, failed;
        now += std::chrono::milliseconds(11);
        board.expireLeases(now, requeued, failed);
        if (round < 2) {
            EXPECT_EQ(requeued.size(), 1u) << "round " << round;
            EXPECT_TRUE(failed.empty()) << "round " << round;
        } else {
            EXPECT_TRUE(requeued.empty());
            ASSERT_EQ(failed.size(), 1u);
            EXPECT_EQ(failed[0], 0u);
        }
    }
    EXPECT_TRUE(board.allDone()) << "drop cap must contain the job";
}

TEST(JobBoard, WorkerLossDropsOnlyOrphanedJobs)
{
    JobBoard::Options options;
    options.duplicateAfterMs = 100;
    JobBoard board(boardKeys(1), std::vector<char>(1, 0), options);

    std::size_t index = 0;
    ASSERT_EQ(board.lease(1, 0, t0(), index), JobBoard::Grant::Leased);
    // Old enough: a second worker gets a duplicate lease of the job.
    const auto later = t0() + std::chrono::milliseconds(200);
    ASSERT_EQ(board.lease(2, 0, later, index), JobBoard::Grant::Leased);
    EXPECT_EQ(board.duplicates(), 1u);

    // Losing the duplicate holder is free: the original still covers
    // the job, so no drop is charged.
    std::vector<std::size_t> requeued, failed;
    board.workerLost(2, requeued, failed);
    EXPECT_TRUE(requeued.empty());
    EXPECT_TRUE(failed.empty());
    EXPECT_EQ(board.requeues(), 0u);

    // Losing the last holder orphans the job: one requeue.
    board.workerLost(1, requeued, failed);
    EXPECT_EQ(requeued.size(), 1u);
    EXPECT_TRUE(failed.empty());
    EXPECT_EQ(board.requeues(), 1u);
}

// ---------------------------------------------------------------------
// End-to-end coordinator/worker sweeps (in-process threads)

namespace {

ServeOptions
quickServeOptions(const std::string &endpoint, unsigned shards)
{
    ServeOptions options;
    options.endpoint = endpoint;
    options.shards = shards;
    options.leaseMs = 60'000;
    options.workerGraceMs = 30'000;
    return options;
}

WorkerOptions
quickWorkerOptions(const std::string &endpoint, const std::string &name)
{
    WorkerOptions options;
    options.endpoint = endpoint;
    options.name = name;
    options.backoffMs = 0;
    return options;
}

/** Raw-client receive that skips heartbeat traffic. */
bool
recvSkippingHeartbeats(LineChannel &ch, Message &msg, unsigned timeout_ms)
{
    std::string line;
    while (ch.recvLine(line, timeout_ms)) {
        if (!decodeMessage(line, msg))
            continue;
        if (msg.type == MsgType::Ping || msg.type == MsgType::Pong)
            continue;
        return true;
    }
    return false;
}

} // namespace

TEST(ServeSweep, DistributedMatchesSingleProcessByteForByte)
{
    const std::vector<SimConfig> cfgs = smallConfigSet();
    const std::vector<RunResult> ref = SweepRunner(1).run(cfgs);

    const std::string socket = testSocket("e2e");
    ServeStats stats;
    std::vector<RunResult> dist;
    std::thread coord([&] {
        dist = serveSweep(cfgs, quickServeOptions(socket, 2), &stats);
    });
    std::thread w0(
        [&] { runWorker(quickWorkerOptions(socket, "w0")); });
    std::thread w1(
        [&] { runWorker(quickWorkerOptions(socket, "w1")); });
    w0.join();
    w1.join();
    coord.join();

    ASSERT_EQ(dist.size(), ref.size());
    EXPECT_EQ(stats.workersSeen, 2u);
    EXPECT_GE(stats.leases, cfgs.size());
    for (const RunResult &r : dist)
        EXPECT_TRUE(r.outcome.ok()) << r.outcome.message;
    // The merge contract: identical bytes up to wall-clock fields.
    EXPECT_EQ(maskedResultsJson(dist), maskedResultsJson(ref));
}

TEST(ServeSweep, ResumesFromJournalWithoutRerunning)
{
    const std::vector<SimConfig> cfgs = smallConfigSet();
    const std::string socket = testSocket("resume");
    const std::string journal =
        "/tmp/sciq-resume-" + std::to_string(::getpid()) + ".jsonl";
    ::unlink(journal.c_str());

    ServeOptions options = quickServeOptions(socket, 1);
    options.journal = journal;

    std::vector<RunResult> first;
    std::thread coord(
        [&] { first = serveSweep(cfgs, options, nullptr); });
    std::thread w0(
        [&] { runWorker(quickWorkerOptions(socket, "w0")); });
    w0.join();
    coord.join();

    // Second serve: every job is already journaled, so the sweep
    // drains without a single lease (and without any worker).
    ServeStats stats;
    std::vector<RunResult> second;
    std::thread coord2(
        [&] { second = serveSweep(cfgs, options, &stats); });
    coord2.join();
    EXPECT_EQ(stats.leases, 0u);
    EXPECT_EQ(maskedResultsJson(second), maskedResultsJson(first));
    ::unlink(journal.c_str());
}

TEST(ServeSweep, RejectsVersionMismatchedWorkers)
{
    std::vector<SimConfig> cfgs = {makeIdealConfig(64, "swim")};
    cfgs[0].wl.iterations = 100;

    const std::string socket = testSocket("proto");
    ServeStats stats;
    std::thread coord([&] {
        serveSweep(cfgs, quickServeOptions(socket, 1), &stats);
    });

    // A worker from a different build speaks a different version; the
    // coordinator must refuse it instead of merging its results.
    {
        LineChannel ch(connectUnix(socket, 10'000));
        Message hello;
        hello.type = MsgType::Hello;
        hello.proto = kWorkerProtoVersion + 1;
        hello.worker = "time-traveller";
        ASSERT_TRUE(ch.sendLine(encodeMessage(hello)));
        Message reply;
        ASSERT_TRUE(recvSkippingHeartbeats(ch, reply, 10'000));
        EXPECT_EQ(reply.type, MsgType::Reject);
        EXPECT_NE(reply.reason.find("version"), std::string::npos);
    }

    // A current-version worker still drains the sweep.
    WorkerReport report = runWorker(quickWorkerOptions(socket, "ok"));
    coord.join();
    EXPECT_TRUE(report.drained) << report.error;
    EXPECT_EQ(stats.rejectedWorkers, 1u);
}

TEST(ServeSweep, DeadWorkerLeaseIsRequeuedWithoutLossOrDuplication)
{
    const std::vector<SimConfig> cfgs = smallConfigSet();
    const std::vector<RunResult> ref = SweepRunner(1).run(cfgs);

    const std::string socket = testSocket("death");
    ServeOptions options = quickServeOptions(socket, 1);
    ServeStats stats;
    std::vector<RunResult> dist;
    std::thread coord(
        [&] { dist = serveSweep(cfgs, options, &stats); });

    // A worker that leases one job and dies with the result unsent:
    // connection EOF must requeue the lease.
    {
        LineChannel ch(connectUnix(socket, 10'000));
        Message hello;
        hello.type = MsgType::Hello;
        hello.proto = kWorkerProtoVersion;
        hello.worker = "doomed";
        ASSERT_TRUE(ch.sendLine(encodeMessage(hello)));
        Message welcome;
        ASSERT_TRUE(recvSkippingHeartbeats(ch, welcome, 10'000));
        ASSERT_EQ(welcome.type, MsgType::Welcome);
        Message req;
        req.type = MsgType::LeaseReq;
        ASSERT_TRUE(ch.sendLine(encodeMessage(req)));
        Message lease;
        ASSERT_TRUE(recvSkippingHeartbeats(ch, lease, 10'000));
        ASSERT_EQ(lease.type, MsgType::Lease);
        // kill -9 equivalent: drop the connection, lease outstanding.
    }

    WorkerReport report = runWorker(quickWorkerOptions(socket, "w0"));
    coord.join();
    EXPECT_TRUE(report.drained) << report.error;
    EXPECT_EQ(stats.requeues, 1u);
    EXPECT_EQ(stats.boardFailed, 0u);
    EXPECT_EQ(maskedResultsJson(dist), maskedResultsJson(ref));
}

TEST(ServeSweep, FaultInjectedWorkerAbortIsRecovered)
{
    const std::vector<SimConfig> cfgs = smallConfigSet();
    const std::vector<RunResult> ref = SweepRunner(1).run(cfgs);

    const std::string socket = testSocket("chaos");
    ServeStats stats;
    std::vector<RunResult> dist;
    std::thread coord([&] {
        dist = serveSweep(cfgs, quickServeOptions(socket, 2), &stats);
    });

    // Deterministic chaos: the seeded budget makes this worker die in
    // place of sending its first result (abortExits=false drops the
    // connection instead of _exit so the test process survives).
    WorkerOptions chaotic = quickWorkerOptions(socket, "chaotic");
    chaotic.faults = std::make_shared<FaultInjector>(42);
    chaotic.faults->abortWorker = 1;
    chaotic.abortExits = false;

    WorkerReport chaosReport;
    std::thread w0([&] { chaosReport = runWorker(chaotic); });
    w0.join();
    EXPECT_TRUE(chaosReport.aborted);
    EXPECT_EQ(chaotic.faults->workerAborts(), 1u);

    WorkerReport report = runWorker(quickWorkerOptions(socket, "w1"));
    coord.join();
    EXPECT_TRUE(report.drained) << report.error;
    EXPECT_GE(stats.requeues, 1u);
    EXPECT_EQ(stats.boardFailed, 0u);
    EXPECT_EQ(maskedResultsJson(dist), maskedResultsJson(ref));
}

TEST(ServeSweep, RejectsWallClockDeadlineJobs)
{
    std::vector<SimConfig> cfgs = {makeIdealConfig(64, "swim")};
    cfgs[0].deadlineSec = 1.0;
    EXPECT_THROW(
        serveSweep(cfgs, quickServeOptions(testSocket("dl"), 1)),
        ConfigError);
}

TEST(ServeSweep, TcpLoopbackMatchesSingleProcessByteForByte)
{
    const std::vector<SimConfig> cfgs = smallConfigSet();
    const std::vector<RunResult> ref = SweepRunner(1).run(cfgs);

    // Bind port 0 and pick up the kernel-assigned port: no fixed-port
    // collisions between parallel test runs.
    ServeOptions options = quickServeOptions("127.0.0.1:0", 2);
    std::atomic<unsigned> port{0};
    options.boundPortOut = &port;

    ServeStats stats;
    std::vector<RunResult> dist;
    std::thread coord([&] { dist = serveSweep(cfgs, options, &stats); });
    while (port == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::string peer = "127.0.0.1:" + std::to_string(port);

    WorkerReport r0, r1;
    std::thread w0([&] { r0 = runWorker(quickWorkerOptions(peer, "w0")); });
    std::thread w1([&] { r1 = runWorker(quickWorkerOptions(peer, "w1")); });
    w0.join();
    w1.join();
    coord.join();

    EXPECT_TRUE(r0.drained) << r0.error;
    EXPECT_TRUE(r1.drained) << r1.error;
    EXPECT_EQ(stats.workersSeen, 2u);
    EXPECT_EQ(maskedResultsJson(dist), maskedResultsJson(ref));
}

// ---------------------------------------------------------------------
// Handshake failure containment (satellite: skew + torn Welcome)

namespace {

/** A minimal scripted coordinator for handshake-failure tests. */
struct FakeCoordinator
{
    int lfd = -1;
    unsigned port = 0;
    std::thread thread;

    explicit FakeCoordinator(std::function<void(int fd)> script)
    {
        lfd = listenEndpoint(tcpEndpoint("127.0.0.1:0"));
        port = boundPort(lfd);
        thread = std::thread([this, script = std::move(script)] {
            const int fd = ::accept(lfd, nullptr, nullptr);
            if (fd >= 0)
                script(fd);
        });
    }

    ~FakeCoordinator()
    {
        if (thread.joinable())
            thread.join();
        ::close(lfd);
    }

    std::string endpoint() const
    {
        return "127.0.0.1:" + std::to_string(port);
    }
};

/** Read one line (the hello) off a raw fd. */
void
eatLine(int fd)
{
    char c = 0;
    while (::read(fd, &c, 1) == 1 && c != '\n') {
    }
}

} // namespace

TEST(Handshake, WorkerRejectsSkewedCoordinatorWithoutHanging)
{
    // A coordinator from a different build welcomes with the wrong
    // proto version: the worker must classify and stop, not merge.
    FakeCoordinator fake([](int fd) {
        eatLine(fd);
        Message welcome;
        welcome.type = MsgType::Welcome;
        welcome.proto = kWorkerProtoVersion + 1;
        welcome.shards = 1;
        const std::string line = encodeMessage(welcome) + "\n";
        (void)!::write(fd, line.data(), line.size());
        ::close(fd);
    });

    WorkerOptions options = quickWorkerOptions(fake.endpoint(), "w0");
    options.maxReconnects = 0;
    options.replyTimeoutMs = 5'000;
    const WorkerReport report = runWorker(options);
    EXPECT_FALSE(report.drained);
    EXPECT_NE(report.error.find("unexpected handshake reply"),
              std::string::npos)
        << report.error;
}

TEST(Handshake, RejectIsPermanentNotRetried)
{
    FakeCoordinator fake([](int fd) {
        eatLine(fd);
        Message reject;
        reject.type = MsgType::Reject;
        reject.reason = "protocol version mismatch";
        const std::string line = encodeMessage(reject) + "\n";
        (void)!::write(fd, line.data(), line.size());
        ::close(fd);
    });

    WorkerOptions options = quickWorkerOptions(fake.endpoint(), "w0");
    options.maxReconnects = 5;  // must NOT be consumed by a reject
    options.replyTimeoutMs = 5'000;
    const WorkerReport report = runWorker(options);
    EXPECT_EQ(report.reconnects, 0u);
    EXPECT_NE(report.error.find("rejected by coordinator"),
              std::string::npos)
        << report.error;
}

TEST(Handshake, TornWelcomeIsContainedOnTheWorkerSide)
{
    // The coordinator dies mid-Welcome: the worker sees a torn line
    // then EOF, and must come back with a classified error quickly.
    FakeCoordinator fake([](int fd) {
        eatLine(fd);
        Message welcome;
        welcome.type = MsgType::Welcome;
        welcome.proto = kWorkerProtoVersion;
        welcome.shards = 1;
        const std::string line = encodeMessage(welcome);
        (void)!::write(fd, line.data(), line.size() / 2);  // no '\n'
        ::close(fd);
    });

    WorkerOptions options = quickWorkerOptions(fake.endpoint(), "w0");
    options.maxReconnects = 0;
    options.connectTimeoutMs = 2'000;
    options.replyTimeoutMs = 5'000;
    const auto start = std::chrono::steady_clock::now();
    const WorkerReport report = runWorker(options);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_FALSE(report.drained);
    EXPECT_NE(report.error.find("no handshake reply"),
              std::string::npos)
        << report.error;
    EXPECT_LT(elapsed, std::chrono::seconds(5)) << "must not hang";
}

TEST(Handshake, TornHelloIsContainedOnTheCoordinatorSide)
{
    // The worker dies mid-Hello: the coordinator must drop the torn
    // connection and still serve a real worker afterwards.
    std::vector<SimConfig> cfgs = {makeIdealConfig(64, "swim")};
    cfgs[0].wl.iterations = 100;

    const std::string socket = testSocket("tornhello");
    ServeStats stats;
    std::thread coord([&] {
        serveSweep(cfgs, quickServeOptions(socket, 1), &stats);
    });

    {
        LineChannel ch(connectUnix(socket, 10'000));
        Message hello;
        hello.type = MsgType::Hello;
        hello.proto = kWorkerProtoVersion;
        hello.worker = "torn";
        const std::string full = encodeMessage(hello);
        // Half a hello and EOF; never a complete line.
        ASSERT_TRUE(ch.sendLine(full.substr(0, full.size() / 2) +
                                "\x01partial"));
    }

    WorkerReport report = runWorker(quickWorkerOptions(socket, "ok"));
    coord.join();
    EXPECT_TRUE(report.drained) << report.error;
}

TEST(Heartbeat, FrozenCoordinatorIsDetectedInSeconds)
{
    // The coordinator welcomes on a 200ms heartbeat then freezes
    // completely (no pings, no replies).  The worker must declare it
    // dead from the missed-heartbeat deadline — well under 3s and far
    // under the 60s replyTimeout — instead of waiting a lease out.
    std::atomic<bool> holdOpen{true};
    FakeCoordinator fake([&holdOpen](int fd) {
        eatLine(fd);
        Message welcome;
        welcome.type = MsgType::Welcome;
        welcome.proto = kWorkerProtoVersion;
        welcome.shards = 1;
        welcome.jobs = 1;
        welcome.leaseMs = 60'000;
        welcome.heartbeatMs = 200;
        const std::string line = encodeMessage(welcome) + "\n";
        (void)!::write(fd, line.data(), line.size());
        // Frozen, but the connection stays open (half-open peer).
        while (holdOpen.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ::close(fd);
    });

    WorkerOptions options = quickWorkerOptions(fake.endpoint(), "w0");
    options.maxReconnects = 0;
    options.replyTimeoutMs = 60'000;
    const auto start = std::chrono::steady_clock::now();
    const WorkerReport report = runWorker(options);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    holdOpen.store(false);
    EXPECT_FALSE(report.drained);
    EXPECT_FALSE(report.error.empty());
    EXPECT_LT(elapsed, std::chrono::seconds(3))
        << "frozen peer not detected by heartbeat deadline";
}
