file(REMOVE_RECURSE
  "libsciq_iq.a"
)
