# Empty dependencies file for ablation_enhancements.
# This may be replaced when dependencies are built.
