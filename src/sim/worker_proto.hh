/**
 * @file
 * Line-oriented coordinator/worker protocol for distributed sweeps
 * (DESIGN.md §17, availability model §18).
 *
 * Every message is one newline-delimited JSON object with a `type`
 * field, exchanged over a stream socket — AF_UNIX on one host, or
 * AF_INET/AF_INET6 (`host:port` endpoints) across machines:
 *
 *   worker -> coordinator   {"type":"hello","proto":2,"worker":"w0"}
 *   coordinator -> worker   {"type":"welcome","proto":2,"shard":0,
 *                            "shards":3,"jobs":42,"lease_ms":60000,
 *                            "heartbeat_ms":1000}
 *                           {"type":"reject","reason":"..."}
 *   worker -> coordinator   {"type":"lease_req"}
 *   coordinator -> worker   {"type":"lease","index":7,"key":"...",
 *                            "spec":"workload=swim ..."}
 *                           {"type":"wait","ms":200}
 *                           {"type":"drain"}
 *   worker -> coordinator   {"type":"result","index":7,"key":"...",
 *                            "result":{...}}
 *   coordinator -> worker   {"type":"result_ack","index":7}
 *   either direction        {"type":"ping","seq":N} / {"type":"pong",
 *                            "seq":N}
 *
 * The handshake is versioned: a coordinator rejects any hello whose
 * `proto` differs from kWorkerProtoVersion, so mixed-build fleets fail
 * loudly instead of merging subtly different results.  The `result`
 * body is exactly the journal's compact RunResult object, so a result
 * streamed over the wire round-trips doubles bit-for-bit just like a
 * journal line (journal.hh), which is what makes the coordinator's
 * merged JSON byte-identical to a single-process run.
 *
 * Heartbeats make half-open connections visible in seconds instead of
 * a lease length: both sides ping on the Welcome's `heartbeat_ms`
 * cadence and treat a peer silent for kHeartbeatTimeoutFactor
 * intervals as dead.  Any received byte counts as liveness, so a
 * worker busy executing a job stays alive through its pinger thread
 * even though it only reads replies between jobs.
 *
 * A result is not discarded by the worker until the coordinator has
 * acknowledged it (`result_ack`) *after* journaling it durably; a
 * worker that loses its connection first redelivers on reconnect and
 * the coordinator's first-result-wins merge dedups.
 *
 * Decoding is tolerant in the same way the journal loader is: a torn
 * or truncated line (killed writer, half-flushed buffer) decodes to
 * `false` and is skipped by the receiver rather than aborting the
 * sweep.  Hostile input is contained: numeric fields are range-checked
 * before narrowing, and LineChannel caps both the longest buffered
 * line and the pending outbound bytes so one slow or malicious peer
 * cannot wedge or balloon the coordinator pump.
 */

#ifndef SCIQ_SIM_WORKER_PROTO_HH
#define SCIQ_SIM_WORKER_PROTO_HH

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

#include "sim/simulator.hh"

namespace sciq {

/** Wire-format version; bump on any message/layout change. */
constexpr unsigned kWorkerProtoVersion = 2;

/** A peer silent for this many heartbeat intervals is dead. */
constexpr unsigned kHeartbeatTimeoutFactor = 3;

enum class MsgType
{
    Hello,      ///< worker introduces itself (proto, name)
    Welcome,    ///< coordinator accepts (shard id, totals, heartbeat)
    Reject,     ///< coordinator refuses (version mismatch, bad state)
    LeaseReq,   ///< idle worker asks for a job
    Lease,      ///< one job: index, sweep key, full config spec
    Wait,       ///< nothing leasable right now; retry in `waitMs`
    Drain,      ///< no work left, ever; worker should exit
    Result,     ///< finished job: index, key, journal-format result
    ResultAck,  ///< coordinator journaled the result durably
    Ping,       ///< liveness probe (either direction)
    Pong,       ///< liveness reply
};

const char *msgTypeName(MsgType type);

struct Message
{
    MsgType type = MsgType::Hello;

    unsigned proto = 0;       ///< hello/welcome
    std::string worker;       ///< hello: worker name
    int shard = -1;           ///< welcome: assigned shard id
    unsigned shards = 0;      ///< welcome: coordinator shard count
    std::size_t jobs = 0;     ///< welcome: total jobs in the sweep
    unsigned leaseMs = 0;     ///< welcome: lease length workers see
    unsigned heartbeatMs = 0; ///< welcome: ping cadence (0 = disabled)
    unsigned waitMs = 0;      ///< wait: suggested retry delay
    std::string reason;       ///< reject
    std::size_t index = 0;    ///< lease/result/result_ack: job index
    std::string key;          ///< lease/result: host-setting-free sweepKey
    std::string spec;         ///< lease: complete configSpec string
    std::uint64_t seq = 0;    ///< ping/pong sequence number
    RunResult result;         ///< result payload (journal format)
};

/** Serialize one message as a single line (no trailing newline). */
std::string encodeMessage(const Message &msg);

/**
 * Parse one line into `out`.  Returns false — never throws — on torn,
 * truncated, type-confused or otherwise malformed input, mirroring the
 * journal loader's tolerance.  Out-of-range numbers (negative indices,
 * non-integers, values past 2^53) are malformed, not narrowed.
 */
bool decodeMessage(const std::string &line, Message &out);

// ---------------------------------------------------------------------
// Stream-socket transport: AF_UNIX paths and TCP host:port endpoints.

/** Where a coordinator listens / a worker connects. */
struct Endpoint
{
    enum class Kind { Unix, Tcp };

    Kind kind = Kind::Unix;
    std::string path;  ///< unix: socket file path
    std::string host;  ///< tcp: hostname or numeric address
    unsigned port = 0; ///< tcp: port (0 = kernel-assigned, listen only)

    /** Human-readable form ("path" or "host:port"). */
    std::string str() const;
};

/**
 * Parse an explicit `host:port` endpoint ("127.0.0.1:7070",
 * "[::1]:7070", "build-box:9000").  Throws ConfigError with a
 * what-to-write message on bad syntax or an out-of-range port.
 */
Endpoint tcpEndpoint(const std::string &host_port);

/** An AF_UNIX endpoint at `path`. */
Endpoint unixEndpoint(const std::string &path);

/**
 * Auto-detect: a spec containing '/' is a unix path; otherwise it must
 * parse as host:port; otherwise it is treated as a unix path in the
 * current directory.
 */
Endpoint parseEndpoint(const std::string &spec);

/**
 * Create, bind and listen on `ep`.  Unix sockets remove any stale
 * file first; TCP listeners set SO_REUSEADDR so a restarted
 * coordinator can rebind immediately.  Throws ResourceError on
 * failure.
 */
int listenEndpoint(const Endpoint &ep);

/**
 * Accept one pending connection, or -1 when none is ready.  TCP
 * connections get TCP_NODELAY (one small JSON line per message; delay
 * coalescing would serialize the lease round-trip on the RTT).
 */
int acceptConn(int listen_fd);

/**
 * Connect to `ep`, retrying while the coordinator is still starting
 * up (or restarting after a crash), until `timeout_ms` elapses.
 * Throws ResourceError on timeout.
 */
int connectEndpoint(const Endpoint &ep, unsigned timeout_ms);

/** Local port a bound socket ended up on (0 for unix sockets). */
unsigned boundPort(int fd);

// Backward-compatible AF_UNIX spellings.
int listenUnix(const std::string &path);
int acceptUnix(int listen_fd);
int connectUnix(const std::string &path, unsigned timeout_ms);

/**
 * Buffered newline-delimited channel over one socket fd (owned:
 * closed on destruction; move-only).
 *
 * The coordinator uses the non-blocking trio pump()/popLine()/
 * flushQueued() from its poll loop; workers use the blocking
 * recvLine()/sendLine().  sendLine() never raises SIGPIPE — a peer
 * that died mid-send surfaces as `false`.  Sends (blocking or queued)
 * are serialized by an internal mutex so a heartbeat pinger thread
 * can share the channel with the main worker loop without interleaving
 * partial lines.
 *
 * Both directions are bounded: a single inbound line longer than
 * maxLine() marks the channel overflowed-and-dead (contained as a
 * ResourceError-class failure by the callers), and queued outbound
 * bytes past maxPending() mark it dead instead of buffering without
 * limit — a peer that stops reading cannot wedge the pump or balloon
 * the coordinator.
 */
class LineChannel
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit LineChannel(int fd) : fd_(fd), lastRecv_(Clock::now()) {}
    ~LineChannel();

    LineChannel(LineChannel &&other) noexcept;
    LineChannel &operator=(LineChannel &&other) noexcept;
    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    int fd() const { return fd_; }

    /** Open and not known-dead (no EOF, error or overflow seen). */
    bool alive() const { return fd_ >= 0 && !dead_; }

    /** The inbound line cap tripped (hostile/corrupt peer). */
    bool overflowed() const { return overflow_; }

    /** Longest accepted inbound line (default 1 MiB). */
    void setMaxLine(std::size_t bytes) { maxLine_ = bytes; }
    std::size_t maxLine() const { return maxLine_; }

    /** Outbound queue cap before the peer counts as wedged (4 MiB). */
    void setMaxPending(std::size_t bytes) { maxPending_ = bytes; }

    /** Milliseconds since any byte was received (liveness signal). */
    unsigned msSinceRecv() const;

    /** Write `line` + '\n', blocking; false once the peer is gone. */
    bool sendLine(const std::string &line);

    /**
     * Queue `line` + '\n' and opportunistically flush without
     * blocking.  False (and dead) when the pending cap is exceeded or
     * the peer is gone; the coordinator drops such connections.
     */
    bool queueLine(const std::string &line);

    /** Non-blocking drain of the outbound queue; false on hard error. */
    bool flushQueued();

    /** Outbound bytes still queued (poll for POLLOUT while nonzero). */
    std::size_t pendingOut() const { return obuf_.size(); }

    /**
     * Read whatever the socket has ready into the internal buffer
     * without blocking.  Returns false on EOF, a hard error or an
     * inbound-line overflow (the buffered complete lines remain
     * poppable).
     */
    bool pump();

    /** Pop the next complete buffered line; false when none. */
    bool popLine(std::string &line);

    /**
     * Blocking receive of one complete line, waiting up to
     * `timeout_ms` (0 = forever).  False on EOF, error, overflow or
     * timeout; distinguish a mere timeout via alive().
     */
    bool recvLine(std::string &line, unsigned timeout_ms);

    /** Close the fd now (e.g. to simulate an abrupt worker death). */
    void close();

  private:
    /** Append received bytes, update liveness, enforce the line cap. */
    bool takeIn(const char *data, std::size_t n);

    int fd_ = -1;
    bool dead_ = false;
    bool overflow_ = false;
    std::string buf_;
    std::string obuf_;
    std::size_t maxLine_ = 1u << 20;
    std::size_t maxPending_ = 4u << 20;
    Clock::time_point lastRecv_;
    std::mutex sendMu_;
};

} // namespace sciq

#endif // SCIQ_SIM_WORKER_PROTO_HH
