/**
 * @file
 * End-to-end deadlock-recovery test (paper section 4.5).  The scenario
 * the paper describes: left/right operand mispredictions assign an
 * instruction to the chain of the *earlier* operand, letting it and
 * its dependants promote past the producer of the other operand until
 * a lower segment fills completely and promotion wedges.  Recovery
 * must restore forward progress, and the run must still validate.
 */

#include <gtest/gtest.h>

#include "iq/segmented_iq.hh"
#include "isa/asm_builder.hh"
#include "sim/simulator.hh"

using namespace sciq;

namespace {

/**
 * A program engineered to stress LRP mispredictions: each iteration
 * combines one fast operand (L1 hit) and one slow operand (fresh-line
 * miss), with roles alternating so the 2-bit counters keep flipping,
 * and a burst of dependants on the combined value.
 */
Program
adversarialProgram(unsigned iters)
{
    AsmBuilder b;
    b.doubles(0x100000, std::vector<double>(8, 1.25));  // hot line
    const Addr cold_base = 0x4000000;  // touched once per iteration

    const RegIndex hot = intReg(11), cold = intReg(12);
    const RegIndex count = intReg(13), t = intReg(14);
    b.la(hot, 0x100000);
    b.la(cold, cold_base);
    b.li(count, iters);

    b.label("loop");
    // Alternate which side is slow based on the iteration parity.
    b.andi(t, count, 1);
    b.beq(t, intReg(0), "even");

    b.fld(fpReg(1), hot, 0);    // fast
    b.fld(fpReg(2), cold, 0);   // slow (cold miss)
    b.j("combine");
    b.label("even");
    b.fld(fpReg(2), hot, 0);    // fast
    b.fld(fpReg(1), cold, 0);   // slow

    b.label("combine");
    b.fadd(fpReg(3), fpReg(1), fpReg(2));  // two-outstanding-operand
    // A burst of dependants that follow whichever chain LRP picked.
    for (unsigned k = 0; k < 6; ++k)
        b.fadd(fpReg(4 + k), fpReg(3), fpReg(1));
    b.fadd(fpReg(10), fpReg(10), fpReg(3));

    b.addi(cold, cold, 4096);  // a new cold line every iteration
    b.addi(count, count, -1);
    b.bne(count, intReg(0), "loop");

    b.fcvtfi(intReg(9), fpReg(10));
    b.xor_(intReg(10), intReg(10), intReg(9));
    b.halt();
    return b.build("adversarial-lrp");
}

} // namespace

TEST(DeadlockE2E, AdversarialLrpStillValidatesWithTinySegments)
{
    Program prog = adversarialProgram(800);
    CoreParams p;
    p.iqKind = IqKind::Segmented;
    p.iq.numEntries = 32;
    p.iq.segmentSize = 4;  // 8 tiny segments maximise wedge pressure
    p.iq.maxChains = 16;
    p.iq.useLrp = true;
    p.iq.useHmp = true;
    OooCore core(prog, p);
    core.run(~0ULL, 4'000'000);
    ASSERT_TRUE(core.halted());

    FunctionalCore golden(prog);
    golden.run();
    EXPECT_EQ(core.committedCount(), golden.instCount());
    for (RegIndex r = 1; r < kNumArchRegs; ++r)
        EXPECT_EQ(core.commitRegs()[r], golden.reg(r)) << "reg " << r;
}

TEST(DeadlockE2E, RecoveryKeepsRareDeadlocksFromHanging)
{
    // The paper reports the deadlock condition in ~0.05% of cycles;
    // whatever the exact rate here, the run must terminate and any
    // detected deadlocks must be recovered.
    Program prog = adversarialProgram(600);
    CoreParams p;
    p.iqKind = IqKind::Segmented;
    p.iq.numEntries = 64;
    p.iq.segmentSize = 8;
    p.iq.maxChains = 16;
    p.iq.useLrp = true;
    OooCore core(prog, p);
    core.run(~0ULL, 4'000'000);
    ASSERT_TRUE(core.halted());

    auto &seg = dynamic_cast<SegmentedIq &>(core.iqUnit());
    EXPECT_EQ(seg.deadlockCycles.value(), seg.deadlockRecoveries.value());
    // Deadlocks must be rare relative to total cycles.
    EXPECT_LT(seg.deadlockCycles.value(),
              0.05 * static_cast<double>(core.cycles()));
}

TEST(DeadlockE2E, LrpMispredictionsActuallyHappen)
{
    // The stressor is only meaningful if it defeats the LRP.
    Program prog = adversarialProgram(600);
    CoreParams p;
    p.iqKind = IqKind::Segmented;
    p.iq.numEntries = 128;
    p.iq.segmentSize = 16;
    p.iq.maxChains = 64;
    p.iq.useLrp = true;
    OooCore core(prog, p);
    core.run(~0ULL, 4'000'000);
    ASSERT_TRUE(core.halted());
    EXPECT_GT(core.leftRightPredictor().mispredicts.value(), 50.0);
}
