# Empty dependencies file for test_fast_forward.
# This may be replaced when dependencies are built.
