#include "sweep.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <fstream>
#include <mutex>
#include <thread>

#include "common/json.hh"

namespace sciq {

SweepRunner::SweepRunner(unsigned jobs) : jobs_(jobs)
{
    if (jobs_ == 0) {
        jobs_ = std::thread::hardware_concurrency();
        if (jobs_ == 0)
            jobs_ = 1;
    }
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SimConfig> &configs,
                 const Progress &progress) const
{
    const std::size_t total = configs.size();
    std::vector<RunResult> results(total);

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, total));

    if (workers <= 1) {
        for (std::size_t i = 0; i < total; ++i) {
            results[i] = runSim(configs[i]);
            if (progress)
                progress(i + 1, total, results[i]);
        }
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progressMutex;
    std::vector<std::exception_ptr> errors(workers);

    auto worker = [&](unsigned id) {
        try {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= total)
                    return;
                results[i] = runSim(configs[i]);
                const std::size_t n =
                    done.fetch_add(1, std::memory_order_relaxed) + 1;
                if (progress) {
                    std::lock_guard<std::mutex> lock(progressMutex);
                    progress(n, total, results[i]);
                }
            }
        } catch (...) {
            errors[id] = std::current_exception();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned id = 0; id < workers; ++id)
        threads.emplace_back(worker, id);
    for (auto &t : threads)
        t.join();

    for (auto &err : errors) {
        if (err)
            std::rethrow_exception(err);
    }
    return results;
}

namespace {

/**
 * One numeric field.  json::writeNumber emits `null` for nan/inf
 * (e.g. hmp_accuracy on a run with no HMP-eligible loads), keeping
 * the output strictly RFC 8259 parseable.
 */
void
jsonField(std::ostream &os, const char *key, double v, bool last = false)
{
    os << "    \"" << key << "\": ";
    json::writeNumber(os, v);
    os << (last ? "\n" : ",\n");
}

} // namespace

void
writeResultsJson(std::ostream &os, const std::vector<RunResult> &results)
{
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        os << "  {\n";
        os << "    \"workload\": ";
        json::writeString(os, r.workload);
        os << ",\n    \"iq_kind\": ";
        json::writeString(os, r.iqKind);
        os << ",\n";
        os << "    \"iq_size\": " << r.iqSize << ",\n";
        os << "    \"chains\": " << r.chains << ",\n";
        os << "    \"cycles\": " << r.cycles << ",\n";
        os << "    \"insts\": " << r.insts << ",\n";
        jsonField(os, "ipc", r.ipc);
        jsonField(os, "avg_chains", r.avgChains);
        jsonField(os, "peak_chains", r.peakChains);
        jsonField(os, "hmp_accuracy", r.hmpAccuracy);
        jsonField(os, "hmp_coverage", r.hmpCoverage);
        jsonField(os, "lrp_mispredict_rate", r.lrpMispredictRate);
        jsonField(os, "branch_mispredict_rate", r.branchMispredictRate);
        jsonField(os, "iq_occupancy_avg", r.iqOccupancyAvg);
        jsonField(os, "seg0_ready_avg", r.seg0ReadyAvg);
        jsonField(os, "seg0_occupancy_avg", r.seg0OccupancyAvg);
        jsonField(os, "deadlock_cycle_frac", r.deadlockCycleFrac);
        jsonField(os, "two_outstanding_frac", r.twoOutstandingFrac);
        jsonField(os, "heads_from_loads_frac", r.headsFromLoadsFrac);
        jsonField(os, "l1d_miss_rate", r.l1dMissRate);
        jsonField(os, "l1d_delayed_hit_frac", r.l1dDelayedHitFrac);
        jsonField(os, "seg_active_avg", r.segActiveAvg);
        jsonField(os, "seg_cycles_active", r.segCyclesActive);
        jsonField(os, "host_seconds", r.hostSeconds);
        jsonField(os, "host_kcycles_per_sec", r.hostKcyclesPerSec);
        jsonField(os, "host_kinsts_per_sec", r.hostKinstsPerSec);
        os << "    \"audit_violations\": " << r.auditViolations << ",\n";
        os << "    \"ckpt_restored\": "
           << (r.ckptRestored ? "true" : "false") << ",\n";
        os << "    \"validated\": " << (r.validated ? "true" : "false")
           << ",\n";
        os << "    \"halted_cleanly\": "
           << (r.haltedCleanly ? "true" : "false") << "\n";
        os << "  }" << (i + 1 == results.size() ? "\n" : ",\n");
    }
    os << "]\n";
}

bool
writeResultsJson(const std::string &path,
                 const std::vector<RunResult> &results)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeResultsJson(out, results);
    return static_cast<bool>(out);
}

} // namespace sciq
