#include "bb_cache.hh"

namespace sciq {

BasicBlock *
BbCache::discover(Addr pc)
{
    const Instruction *first = program.fetch(pc);
    if (first == nullptr)
        return nullptr;

    auto bb = std::make_unique<BasicBlock>();
    bb->startPc = pc;

    Addr cur = pc;
    const Instruction *inst = first;
    while (true) {
        const std::uint8_t flags = classify(*inst);
        bb->ops.push_back({*inst, inst, flags});
        if ((flags & (kBbControl | kBbHalt)) != 0 ||
            bb->ops.size() >= kMaxBlockOps) {
            break;
        }
        cur += kInstBytes;
        inst = program.fetch(cur);
        // Straight-line code running off the program image: end the
        // block here; the replay loop re-enters lookup() at `cur`,
        // fails, and reproduces the step()-path panic exactly.
        if (inst == nullptr)
            break;
    }

    ++blocksDiscovered_;
    opsCached_ += bb->ops.size();
    BasicBlock *raw = bb.get();
    blocks.emplace(pc, std::move(bb));
    return raw;
}

} // namespace sciq
