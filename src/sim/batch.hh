/**
 * @file
 * Batched lockstep execution (DESIGN.md §15): one worker advances K
 * same-workload configurations over a single shared correct-path fetch
 * stream.  The expensive front-end work — decode and oracle execution
 * of every correct-path instruction — is a pure function of (workload,
 * warm-up state) and is performed once per batch by a SharedFetchStream
 * instead of once per configuration; every back-end structure (IQ,
 * scoreboard, FU pool, LSQ, caches, predictors, stats) stays fully
 * replicated per configuration, so each member's architected stats are
 * bit-identical to an unbatched run of the same config.
 */

#ifndef SCIQ_SIM_BATCH_HH
#define SCIQ_SIM_BATCH_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/sim_config.hh"
#include "sim/sweep.hh"

namespace sciq {

/**
 * Grouping key for lockstep batching: two configs may share a fetch
 * stream iff the correct-path instruction sequence they fetch is
 * identical, i.e. same workload program and same (purely architectural)
 * functional warm-up.  Core geometry, cache/predictor parameters and
 * cycle caps may differ freely within a batch.
 */
std::string lockstepBatchKey(const SimConfig &config);

/**
 * Whether this config may join a lockstep batch at all.  Wall-clock
 * deadline runs are excluded: the deadline is defined over a dedicated
 * run loop, and interleaved execution would change which cycle it
 * trips at.
 */
bool lockstepBatchable(const SimConfig &config);

/**
 * Execute one batch in lockstep and return results in input order.
 * `keys`/`indices` carry each job's sweep key and submission index for
 * journaling, warnings and failure artifacts.  Job failures (warm-up or
 * mid-run) are contained into RunResult::outcome exactly as in the
 * per-job path; a failing member is dropped from the batch without
 * disturbing the others.  Never throws.
 */
std::vector<RunResult> runLockstepBatch(
    const std::vector<SimConfig> &configs,
    const std::vector<std::string> &keys,
    const std::vector<std::size_t> &indices,
    const SweepRunner::Options &options);

} // namespace sciq

#endif // SCIQ_SIM_BATCH_HH
