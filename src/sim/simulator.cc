#include "simulator.hh"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"
#include "iq/segmented_iq.hh"
#include "isa/functional_core.hh"
#include "sim/audit.hh"
#include "sim/checkpoint.hh"
#include "sim/fast_forward.hh"
#include "sim/fault_injector.hh"

namespace sciq {

const char *
jobStatusName(JobOutcome::Status status)
{
    switch (status) {
      case JobOutcome::Status::Ok: return "ok";
      case JobOutcome::Status::Failed: return "failed";
      case JobOutcome::Status::Timeout: return "timeout";
    }
    return "failed";
}

JobOutcome::Status
jobStatusFromName(const std::string &name)
{
    if (name == "ok")
        return JobOutcome::Status::Ok;
    if (name == "timeout")
        return JobOutcome::Status::Timeout;
    return JobOutcome::Status::Failed;
}

Simulator::Simulator(const SimConfig &cfg) : config(cfg)
{
    program_ = std::make_unique<Program>(
        buildWorkload(config.workload, config.wl));
    core_ = std::make_unique<OooCore>(*program_, config.core);
    if (config.audit) {
        auditor_ = std::make_unique<Auditor>(config.auditPanic);
        auditor_->attach(*core_);
    }

    warmStats_.addScalar("seconds", &warmSecondsStat_,
                         "wall-clock seconds in functional warming");
    warmStats_.addScalar("insts_per_sec", &warmIpsStat_,
                         "functional-warming throughput");
    bbStats_.addScalar("blocks", &bbBlocksStat_,
                       "basic blocks discovered");
    bbStats_.addScalar("ops_cached", &bbOpsStat_,
                       "micro-ops across cached blocks");
    bbStats_.addScalar("trace_hits", &bbTraceHitsStat_,
                       "block lookups served from the cache");
    bbStats_.addScalar("succ_hits", &bbSuccHitsStat_,
                       "successor inline-cache hits");
    warmStats_.addChild(&bbStats_);
}

Simulator::~Simulator() = default;

void
Simulator::noteWarm(double seconds, std::uint64_t insts,
                    const FunctionalCore &warm)
{
    warmSecondsStat_.set(seconds);
    if (seconds > 0.0)
        warmIpsStat_.set(static_cast<double>(insts) / seconds);
    if (const BbCache *bb = warm.blockCache()) {
        bbBlocksStat_.set(static_cast<double>(bb->blocksDiscovered()));
        bbOpsStat_.set(static_cast<double>(bb->opsCached()));
        bbTraceHitsStat_.set(static_cast<double>(bb->traceHits()));
        bbSuccHitsStat_.set(static_cast<double>(bb->succHits()));
    }
}

std::uint64_t
Simulator::warmUp(bool &restored)
{
    restored = false;

    auto coldFf = [&]() -> FastForwardStats {
        FunctionalCore warm(*program_, config.bbCache);
        const auto t0 = std::chrono::steady_clock::now();
        FastForwardStats ff =
            fastForward(warm, *core_, config.fastForward);
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        noteWarm(dt.count(), ff.instsSkipped, warm);
        if (ff.hitHalt) {
            warn("fast-forward of %llu insts consumed the whole program",
                 static_cast<unsigned long long>(config.fastForward));
        }
        return ff;
    };

    auto coldFfAndBlob = [&](std::string &blob) -> FastForwardStats {
        FunctionalCore warm(*program_, config.bbCache);
        const auto t0 = std::chrono::steady_clock::now();
        FastForwardStats ff =
            fastForward(warm, *core_, config.fastForward);
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        noteWarm(dt.count(), ff.instsSkipped, warm);
        if (ff.hitHalt) {
            warn("fast-forward of %llu insts consumed the whole program",
                 static_cast<unsigned long long>(config.fastForward));
        }
        blob = saveCheckpoint(config, warm, *core_, ff);
        return ff;
    };

    // Explicit single-file mode: restore if present, else create.
    if (!config.ckptFile.empty()) {
        std::string blob;
        try {
            blob = readCheckpointFile(config.ckptFile);
        } catch (const CheckpointError &) {
            // Not there yet: fast-forward cold and save it.
            FastForwardStats ff = coldFfAndBlob(blob);
            if (config.faults && config.faults->takeDiskWriteFault()) {
                throw CheckpointError(
                    "injected disk-write failure for '" + config.ckptFile +
                        "'",
                    /*transient=*/true);
            }
            writeCheckpointFile(config.ckptFile, blob);
            return ff.instsSkipped;
        }
        if (config.faults && config.faults->takeCorruptRead())
            config.faults->corrupt(blob);
        const FastForwardStats ff =
            restoreCheckpoint(blob, config, *program_, *core_);
        restored = true;
        return ff.instsSkipped;
    }

    // Cache mode: a shared in-process cache (sweep-level reuse) or a
    // run-local one over ckpt_dir (cross-process reuse).
    std::shared_ptr<CheckpointCache> cache = config.ckptCache;
    if (!cache && !config.ckptDir.empty())
        cache = std::make_shared<CheckpointCache>(config.ckptDir);
    if (!cache)
        return coldFf().instsSkipped;

    const std::uint64_t key = checkpointKeyHash(config);
    CheckpointCache::Blob blob = cache->findOrBegin(key);
    if (blob) {
        std::string damaged;
        const std::string *bytes = blob.get();
        if (config.faults && config.faults->takeCorruptRead()) {
            damaged = *blob;
            config.faults->corrupt(damaged);
            bytes = &damaged;
        }
        try {
            const FastForwardStats ff =
                restoreCheckpoint(*bytes, config, *program_, *core_);
            restored = true;
            return ff.instsSkipped;
        } catch (const CheckpointError &e) {
            // A stale or damaged entry (e.g. hand-edited file): warm
            // up cold and replace it so later runs restore cleanly.
            warn("ignoring unusable checkpoint for %s: %s",
                 config.workload.c_str(), e.what());
            std::string fresh;
            FastForwardStats ff = coldFfAndBlob(fresh);
            cache->publish(key, std::move(fresh));
            return ff.instsSkipped;
        }
    }

    // This run was elected producer for the key.
    try {
        std::string fresh;
        FastForwardStats ff = coldFfAndBlob(fresh);
        if (config.faults && config.faults->takeDiskWriteFault()) {
            throw CheckpointError("injected disk-write failure publishing "
                                  "checkpoint",
                                  /*transient=*/true);
        }
        cache->publish(key, std::move(fresh));
        return ff.instsSkipped;
    } catch (...) {
        cache->cancel(key);
        throw;
    }
}

std::uint64_t
Simulator::prepare(bool &restored)
{
    restored = false;
    return config.fastForward > 0 ? warmUp(restored) : 0;
}

RunResult
Simulator::run()
{
    bool ckptRestored = false;
    const std::uint64_t skipped = prepare(ckptRestored);

    // Time only the cycle-accurate core loop: construction, fast-forward
    // and golden-model validation are excluded so the number tracks the
    // tick path the ROADMAP's throughput work targets.
    const auto host_start = std::chrono::steady_clock::now();
    if (config.deadlineSec > 0.0) {
        // Chunk the core loop so the deadline is polled off the hot
        // path; the chunked run is tick-for-tick identical.
        const auto deadline =
            host_start + std::chrono::duration<double>(config.deadlineSec);
        constexpr Cycle kChunk = 1u << 16;
        Cycle remaining = config.maxCycles;
        while (!core_->halted() && remaining > 0) {
            const Cycle step = std::min<Cycle>(kChunk, remaining);
            core_->run(~0ULL, step);
            remaining -= step;
            if (std::chrono::steady_clock::now() >= deadline &&
                !core_->halted() && remaining > 0) {
                std::ostringstream dump;
                core_->dumpPipelineState(dump);
                throw DeadlockError(
                    "wall-clock deadline of " +
                        std::to_string(config.deadlineSec) +
                        "s exceeded at cycle " +
                        std::to_string(core_->cycles()),
                    dump.str(), /*wall_clock=*/true);
            }
        }
    } else {
        core_->run(~0ULL, config.maxCycles);
    }
    const std::chrono::duration<double> host_elapsed =
        std::chrono::steady_clock::now() - host_start;

    return collect(host_elapsed.count(), skipped, ckptRestored);
}

RunResult
Simulator::collect(double host_seconds, std::uint64_t skipped,
                   bool restored)
{
    RunResult r;
    r.workload = config.workload;
    r.iqKind = iqKindName(config.core.iqKind);
    r.iqSize = config.core.iq.numEntries;
    r.chains = config.core.iqKind == IqKind::Segmented
                   ? config.core.iq.maxChains
                   : -1;
    r.cycles = core_->cycles();
    r.insts = core_->committedCount();
    r.ipc = core_->ipc();
    r.haltedCleanly = core_->halted();
    r.ckptRestored = restored;
    if (auditor_)
        r.auditViolations = auditor_->totalViolations();

    r.hostSeconds = host_seconds;
    if (r.hostSeconds > 0.0) {
        r.hostKcyclesPerSec = r.cycles / r.hostSeconds / 1e3;
        r.hostKinstsPerSec = r.insts / r.hostSeconds / 1e3;
    }

    r.warmSeconds = warmSecondsStat_.value();
    r.warmInstsPerSec = warmIpsStat_.value();
    r.bbBlocks = static_cast<std::uint64_t>(bbBlocksStat_.value());
    r.bbOpsCached = static_cast<std::uint64_t>(bbOpsStat_.value());
    r.bbTraceHits = static_cast<std::uint64_t>(bbTraceHitsStat_.value());
    r.bbSuccHits = static_cast<std::uint64_t>(bbSuccHitsStat_.value());

    // Misprediction rate per *committed* conditional branch (wrong-path
    // and post-squash refetch predictions would inflate the base).
    auto &bp = core_->branchPredictor();
    if (core_->committedCondBranches.value() > 0) {
        r.branchMispredictRate = bp.condMispredicts.value() /
                                 core_->committedCondBranches.value();
    }

    auto &hmp = core_->hitMissPredictor();
    r.hmpAccuracy = hmp.hitAccuracy();
    r.hmpCoverage = hmp.hitCoverage();

    auto &lrp = core_->leftRightPredictor();
    if (lrp.predicts.value() > 0)
        r.lrpMispredictRate = lrp.mispredicts.value() / lrp.predicts.value();

    auto &l1d = core_->memHierarchy().dcache();
    const double accesses = l1d.accesses.value();
    if (accesses > 0) {
        r.l1dMissRate =
            (l1d.misses.value() + l1d.delayedHits.value()) / accesses;
        const double all_misses = l1d.misses.value() +
                                  l1d.delayedHits.value();
        if (all_misses > 0)
            r.l1dDelayedHitFrac = l1d.delayedHits.value() / all_misses;
    }

    r.iqOccupancyAvg = core_->iqUnit().occupancyAvg.value();

    if (auto *seg = dynamic_cast<SegmentedIq *>(&core_->iqUnit())) {
        r.avgChains = seg->chainsInUseAvg.value();
        r.peakChains = seg->chainsPeak();
        r.seg0ReadyAvg = seg->seg0Ready.value();
        r.seg0OccupancyAvg = seg->seg0Occupancy.value();
        if (r.cycles > 0) {
            r.deadlockCycleFrac =
                seg->deadlockCycles.value() / static_cast<double>(r.cycles);
        }
        if (seg->instsInserted.value() > 0) {
            r.twoOutstandingFrac =
                seg->twoOutstanding.value() / seg->instsInserted.value();
        }
        if (seg->chainsCreated.value() > 0) {
            r.headsFromLoadsFrac =
                seg->headsFromLoads.value() / seg->chainsCreated.value();
        }
        r.segActiveAvg = seg->activeSegmentsAvg.value();
        r.segCyclesActive = seg->segmentCyclesActive.value();
        const auto &work = seg->workCounters();
        r.iqSignalDeliveries = work.signalDeliveries;
        r.iqPlanCalls = work.planCalls;
        r.iqSegmentsScanned = work.segmentsScanned;
        r.iqLaneWordsTouched = work.laneWordsTouched;
    }

    if (config.validate) {
        // The golden model executes the skipped prefix plus exactly as
        // many instructions as the pipeline committed; state must then
        // agree bit for bit.
        FunctionalCore golden(*program_, config.bbCache);
        golden.run(skipped + r.insts);
        bool regs_ok = true;
        for (RegIndex reg = 1; reg < kNumArchRegs; ++reg) {
            if (golden.reg(reg) != core_->commitRegs()[reg]) {
                regs_ok = false;
                break;
            }
        }
        // Compare only data pages the golden model wrote (the pipeline
        // image also contains the loaded program text).
        r.validated = regs_ok &&
                      core_->commitMemory().equalContents(golden.memory());
        if (!r.validated) {
            warn("validation FAILED for %s on %s IQ",
                 config.workload.c_str(), r.iqKind.c_str());
        }
    }

    return r;
}

RunResult
runSim(const SimConfig &config)
{
    Simulator sim(config);
    return sim.run();
}

void
printResultHeader(std::ostream &os)
{
    os << std::left << std::setw(10) << "workload" << std::setw(14)
       << "iq" << std::setw(8) << "size" << std::setw(8) << "chains"
       << std::setw(12) << "cycles" << std::setw(10) << "insts"
       << std::setw(8) << "ipc" << std::setw(6) << "ok" << '\n';
    os << std::string(76, '-') << '\n';
}

void
printResultRow(std::ostream &os, const RunResult &r)
{
    os << std::left << std::setw(10) << r.workload << std::setw(14)
       << r.iqKind << std::setw(8) << r.iqSize << std::setw(8)
       << (r.chains < 0 ? std::string("inf") : std::to_string(r.chains))
       << std::setw(12) << r.cycles << std::setw(10) << r.insts
       << std::setw(8) << std::fixed << std::setprecision(3) << r.ipc
       << std::setw(6) << (r.validated ? "yes" : "NO") << '\n';
}

} // namespace sciq
