#!/bin/sh
# Full pre-merge check: tier-1 tests, the invariant-audit sweep, and one
# sanitizer configuration.  Run from the repository root:
#
#   tools/check.sh [ubsan|asan|tsan]
#
# The optional argument picks the sanitizer config (default: ubsan).
set -eu

san="${1:-ubsan}"
case "$san" in
  ubsan) san_flag=-DSCIQ_UBSAN=ON ;;
  asan)  san_flag=-DSCIQ_ASAN=ON ;;
  tsan)  san_flag=-DSCIQ_TSAN=ON ;;
  *) echo "unknown sanitizer '$san' (want ubsan, asan or tsan)" >&2
     exit 2 ;;
esac

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== audit sweep (all workloads, segmented + ideal, audit=1) =="
./build/tests/test_audit

echo "== scheduling-index differential sweep (audit=1) =="
./build/tests/test_sched_index

echo "== host-throughput bench (quick) =="
./build/bench/bench_throughput quick=1 workloads=swim,twolf

echo "== sanitizer smoke ($san) =="
cmake -B "build-$san" -S . "$san_flag" >/dev/null
cmake --build "build-$san" -j "$jobs"
ctest --test-dir "build-$san" --output-on-failure -j "$jobs" \
      -L sanitize_smoke

echo "== all checks passed =="
