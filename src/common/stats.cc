#include "stats.hh"

#include <iomanip>

#include "json.hh"

namespace sciq {
namespace stats {

double
Group::lookup(const std::string &name) const
{
    auto dot = name.find('.');
    if (dot != std::string::npos) {
        const std::string head = name.substr(0, dot);
        const std::string rest = name.substr(dot + 1);
        for (const auto *child : children) {
            if (child->name() == head)
                return child->lookup(rest);
        }
        // Not a child group: a distribution read through a sub-field
        // ("dist.mean"), matching what contains() reports as present.
        if (auto it = distributions.find(head); it != distributions.end()) {
            const Distribution &d = *it->second.stat;
            if (rest == "mean")
                return d.mean();
            if (rest == "min")
                return d.min();
            if (rest == "max")
                return d.max();
            if (rest == "samples")
                return static_cast<double>(d.samples());
            panic("distribution '%s' in group '%s' has no field '%s' "
                  "(mean/min/max/samples)",
                  head.c_str(), groupName.c_str(), rest.c_str());
        }
        panic("stat group '%s' has no child '%s'", groupName.c_str(),
              head.c_str());
    }

    if (auto it = scalars.find(name); it != scalars.end())
        return it->second.stat->value();
    if (auto it = averages.find(name); it != averages.end())
        return it->second.stat->value();
    if (distributions.count(name) > 0) {
        panic("stat '%s' in group '%s' is a distribution; read a "
              "sub-field (%s.mean/.min/.max/.samples)",
              name.c_str(), groupName.c_str(), name.c_str());
    }
    panic("stat '%s' not found in group '%s'", name.c_str(),
          groupName.c_str());
}

bool
Group::contains(const std::string &name) const
{
    auto dot = name.find('.');
    if (dot != std::string::npos) {
        const std::string head = name.substr(0, dot);
        const std::string rest = name.substr(dot + 1);
        for (const auto *child : children) {
            if (child->name() == head)
                return child->contains(rest);
        }
        return distributions.count(head) > 0 &&
               (rest == "mean" || rest == "min" || rest == "max" ||
                rest == "samples");
    }
    return scalars.count(name) > 0 || averages.count(name) > 0 ||
           distributions.count(name) > 0;
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? groupName : prefix + "." + groupName;

    auto emit = [&](const std::string &name, double value,
                    const std::string &desc) {
        os << std::left << std::setw(48) << (full + "." + name)
           << std::setprecision(6) << value;
        if (!desc.empty())
            os << "  # " << desc;
        os << '\n';
    };

    for (const auto &[name, e] : scalars)
        emit(name, e.stat->value(), e.desc);
    for (const auto &[name, e] : averages)
        emit(name, e.stat->value(), e.desc);
    for (const auto &[name, e] : distributions) {
        emit(name + ".mean", e.stat->mean(), e.desc);
        emit(name + ".min", e.stat->min(), "");
        emit(name + ".max", e.stat->max(), "");
        emit(name + ".samples", static_cast<double>(e.stat->samples()), "");
    }
    for (const auto *child : children)
        child->dump(os, full);
}

void
Group::dumpJson(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    bool first = true;
    auto sep = [&]() {
        os << (first ? "\n" : ",\n") << pad;
        first = false;
    };

    os << '{';
    for (const auto &[name, e] : scalars) {
        sep();
        json::writeString(os, name);
        os << ": ";
        json::writeNumber(os, e.stat->value());
    }
    for (const auto &[name, e] : averages) {
        sep();
        json::writeString(os, name);
        os << ": ";
        json::writeNumber(os, e.stat->value());
    }
    for (const auto &[name, e] : distributions) {
        sep();
        json::writeString(os, name);
        const Distribution &d = *e.stat;
        os << ": {\"mean\": ";
        json::writeNumber(os, d.mean());
        os << ", \"min\": ";
        json::writeNumber(os, d.min());
        os << ", \"max\": ";
        json::writeNumber(os, d.max());
        os << ", \"samples\": ";
        json::writeNumber(os, static_cast<double>(d.samples()));
        os << ", \"histogram\": [";
        const auto &h = d.histogram();
        for (std::size_t i = 0; i < h.size(); ++i) {
            if (i)
                os << ", ";
            json::writeNumber(os, static_cast<double>(h[i]));
        }
        os << "]}";
    }
    for (const auto *child : children) {
        sep();
        json::writeString(os, child->name());
        os << ": ";
        child->dumpJson(os, indent + 2);
    }
    if (!first)
        os << '\n' << std::string(static_cast<std::size_t>(indent), ' ');
    os << '}';
}

void
Group::resetAll()
{
    for (auto &[name, e] : scalars)
        e.stat->reset();
    for (auto &[name, e] : averages)
        e.stat->reset();
    for (auto &[name, e] : distributions)
        e.stat->reset();
    for (auto *child : children)
        child->resetAll();
}

} // namespace stats
} // namespace sciq
