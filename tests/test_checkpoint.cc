/**
 * @file
 * Warm-state checkpoint/restore tests (DESIGN.md §12).
 *
 * Three layers of coverage:
 *  - per-component save -> restore -> save round-trips must reproduce
 *    the first blob bit for bit;
 *  - a restored Simulator run must produce byte-identical stats trees
 *    to a cold fast-forwarded run, for every workload on both the
 *    segmented and the ideal IQ (the module's correctness contract);
 *  - corrupted, truncated, version-bumped, mislabelled and mismatched
 *    blobs are rejected with specific CheckpointError messages.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "branch/branch_predictor.hh"
#include "branch/btb.hh"
#include "branch/hit_miss_predictor.hh"
#include "branch/left_right_predictor.hh"
#include "branch/ras.hh"
#include "common/serialize.hh"
#include "sim/checkpoint.hh"
#include "sim/fast_forward.hh"
#include "sim/simulator.hh"
#include "workload/workloads.hh"

using namespace sciq;
namespace fs = std::filesystem;

namespace {

/** Fresh scratch directory under the system temp dir, per test. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(fs::temp_directory_path() / ("sciq-ckpt-test-" + name))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    fs::path operator/(const std::string &leaf) const
    {
        return path_ / leaf;
    }

  private:
    fs::path path_;
};

SimConfig
testConfig(const std::string &workload, IqKind kind)
{
    SimConfig cfg = makeSegmentedConfig(128, 64, true, true, workload);
    cfg.core.iqKind = kind;
    cfg.wl.iterations = 300;
    cfg.fastForward = 1500;
    cfg.validate = true;
    return cfg;
}

std::string
statsDump(Simulator &sim)
{
    std::ostringstream os;
    sim.core().statGroup().dumpJson(os);
    return os.str();
}

/** Serialize `obj` through its save() into a fresh buffer. */
template <typename T>
std::string
blobOf(const T &obj)
{
    serial::Writer w;
    obj.save(w);
    return w.take();
}

/** Restore `obj` from `blob` and check the whole blob was consumed. */
template <typename T>
void
restoreFrom(T &obj, const std::string &blob)
{
    serial::Reader r(blob);
    obj.restore(r);
    ASSERT_EQ(r.remaining(), 0u);
}

} // namespace

// ---------------------------------------------------------------------
// Serialization primitives.

TEST(Serialize, ScalarsRoundTrip)
{
    serial::Writer w;
    w.u8(0xab);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    w.f64(-1.5e-300);
    w.str("hello");
    w.tag("TAG1");

    serial::Reader r(w.buffer());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.f64(), -1.5e-300);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_NO_THROW(r.expectTag("TAG1"));
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialize, TruncationThrows)
{
    serial::Writer w;
    w.u64(42);
    std::string cut = w.take().substr(0, 3);
    serial::Reader r(cut);
    EXPECT_THROW(r.u64(), serial::Error);
}

TEST(Serialize, WrongTagThrows)
{
    serial::Writer w;
    w.tag("AAAA");
    serial::Reader r(w.buffer());
    try {
        r.expectTag("BBBB");
        FAIL() << "expectTag should have thrown";
    } catch (const serial::Error &e) {
        EXPECT_NE(std::string(e.what()).find("BBBB"),
                  std::string::npos);
    }
}

TEST(Serialize, FnvMatchesKnownVector)
{
    // FNV-1a 64-bit test vector: empty input hashes to the offset
    // basis, and "a" to 0xaf63dc4c8601ec8c.
    EXPECT_EQ(serial::fnv1a(nullptr, 0), 0xcbf29ce484222325ULL);
    EXPECT_EQ(serial::fnv1a("a", 1), 0xaf63dc4c8601ec8cULL);
}

// ---------------------------------------------------------------------
// Per-component round-trips: save -> restore -> save reproduces the
// blob bit for bit.

TEST(CheckpointComponents, SparseMemoryRoundTrip)
{
    SparseMemory mem;
    mem.write(0x1000, 8, 0x1122334455667788ULL);
    mem.write(0x20'0000, 8, 42);
    mem.write(0x3f'ffff, 1, 0x7f);

    const std::string blob = blobOf(mem);
    SparseMemory back;
    restoreFrom(back, blob);
    EXPECT_EQ(back.read(0x1000, 8), 0x1122334455667788ULL);
    EXPECT_EQ(back.read(0x3f'ffff, 1), 0x7fu);
    EXPECT_EQ(blobOf(back), blob);
    EXPECT_TRUE(back.equalContents(mem));
}

TEST(CheckpointComponents, FunctionalCoreRoundTrip)
{
    Program prog = buildWorkload("twolf", {.iterations = 200});
    FunctionalCore core(prog);
    core.run(3000);

    const std::string blob = blobOf(core);
    FunctionalCore back(prog);
    restoreFrom(back, blob);
    EXPECT_EQ(back.pc(), core.pc());
    EXPECT_EQ(back.instCount(), core.instCount());
    for (RegIndex r = 0; r < kNumArchRegs; ++r)
        EXPECT_EQ(back.reg(r), core.reg(r)) << "reg " << r;
    EXPECT_EQ(blobOf(back), blob);

    // The restored core must continue executing identically.
    core.run(500);
    back.run(500);
    EXPECT_EQ(back.pc(), core.pc());
    for (RegIndex r = 0; r < kNumArchRegs; ++r)
        EXPECT_EQ(back.reg(r), core.reg(r)) << "reg " << r;
}

TEST(CheckpointComponents, BranchPredictorRoundTrip)
{
    HybridBranchPredictor bp;
    for (int i = 0; i < 500; ++i) {
        const Addr pc = 0x4000 + (i % 37) * 4;
        const auto snap = bp.snapshot();
        bp.predict(pc);
        bp.update(pc, i % 3 != 0, snap);
    }

    const std::string blob = blobOf(bp);
    HybridBranchPredictor back;
    restoreFrom(back, blob);
    EXPECT_EQ(blobOf(back), blob);
    // Stats counters are part of the warm state (predict() counts).
    EXPECT_EQ(back.lookups.value(), bp.lookups.value());
    EXPECT_EQ(back.condPredicts.value(), bp.condPredicts.value());
}

TEST(CheckpointComponents, BranchPredictorSizeMismatchThrows)
{
    HybridBranchPredictor bp;
    const std::string blob = blobOf(bp);
    BranchPredictorParams small;
    small.globalPhtEntries = 1024;
    HybridBranchPredictor other(small);
    serial::Reader r(blob);
    EXPECT_THROW(other.restore(r), serial::Error);
}

TEST(CheckpointComponents, BtbRasHmpLrpRoundTrip)
{
    Btb btb(256, 4);
    ReturnAddressStack ras(16);
    HitMissPredictor hmp(512);
    LeftRightPredictor lrp(512);
    for (int i = 0; i < 300; ++i) {
        const Addr pc = 0x8000 + i * 12;
        btb.update(pc, pc + 40);
        Addr tgt = 0;
        btb.lookup(pc - 12, tgt);
        ras.push(pc + 4);
        if (i % 5 == 0)
            ras.pop();
        hmp.predictHit(pc);
        hmp.update(pc, i % 2 == 0);
        hmp.recordOutcome(i % 2 == 0, i % 2 == 0);
        lrp.predictLeftCritical(pc);
        lrp.update(pc, i % 3 == 0);
    }

    {
        const std::string blob = blobOf(btb);
        Btb back(256, 4);
        restoreFrom(back, blob);
        EXPECT_EQ(blobOf(back), blob);
    }
    {
        const std::string blob = blobOf(ras);
        ReturnAddressStack back(16);
        serial::Reader r(blob);
        back.restore(r);
        EXPECT_EQ(r.remaining(), 0u);
        EXPECT_EQ(blobOf(back), blob);
    }
    {
        const std::string blob = blobOf(hmp);
        HitMissPredictor back(512);
        restoreFrom(back, blob);
        EXPECT_EQ(blobOf(back), blob);
    }
    {
        const std::string blob = blobOf(lrp);
        LeftRightPredictor back(512);
        restoreFrom(back, blob);
        EXPECT_EQ(blobOf(back), blob);
    }
}

TEST(CheckpointComponents, CacheRoundTripThroughWarmedCore)
{
    // Warm a timing core's hierarchy with a real fast-forward, then
    // round-trip each cache level into a cold core of the same shape.
    Program prog = buildWorkload("swim", {.iterations = 400});
    CoreParams params;
    params.iqKind = IqKind::Ideal;
    params.iq.numEntries = 64;

    FunctionalCore golden(prog);
    OooCore warm(prog, params);
    fastForward(golden, warm, 4000);

    OooCore cold(prog, params);
    const std::string l1i = blobOf(warm.memHierarchy().icache());
    const std::string l1d = blobOf(warm.memHierarchy().dcache());
    const std::string l2 = blobOf(warm.memHierarchy().l2cache());

    restoreFrom(cold.memHierarchy().icache(), l1i);
    restoreFrom(cold.memHierarchy().dcache(), l1d);
    restoreFrom(cold.memHierarchy().l2cache(), l2);
    EXPECT_EQ(blobOf(cold.memHierarchy().icache()), l1i);
    EXPECT_EQ(blobOf(cold.memHierarchy().dcache()), l1d);
    EXPECT_EQ(blobOf(cold.memHierarchy().l2cache()), l2);
}

TEST(CheckpointComponents, CacheGeometryMismatchThrows)
{
    Program prog = buildWorkload("swim", {.iterations = 200});
    CoreParams params;
    params.iqKind = IqKind::Ideal;
    params.iq.numEntries = 64;
    OooCore a(prog, params);

    CoreParams other = params;
    other.mem.l1d.sizeBytes = 32 * 1024;
    OooCore b(prog, other);

    const std::string blob = blobOf(a.memHierarchy().dcache());
    serial::Reader r(blob);
    EXPECT_THROW(b.memHierarchy().dcache().restore(r), serial::Error);
}

// ---------------------------------------------------------------------
// Whole-checkpoint blob: save -> restore -> save identity.

TEST(Checkpoint, BlobRoundTripIsBitIdentical)
{
    SimConfig cfg = testConfig("vortex", IqKind::Segmented);
    Program prog = buildWorkload(cfg.workload, cfg.wl);

    FunctionalCore golden(prog);
    OooCore core(prog, cfg.core);
    FastForwardStats ff = fastForward(golden, core, cfg.fastForward);
    const std::string blob = saveCheckpoint(cfg, golden, core, ff);

    OooCore core2(prog, cfg.core);
    FastForwardStats ff2 = restoreCheckpoint(blob, cfg, prog, core2);
    EXPECT_EQ(ff2.instsSkipped, ff.instsSkipped);
    EXPECT_EQ(ff2.hitHalt, ff.hitHalt);

    // Re-derive the warm functional state (deterministic replay) and
    // re-save from the restored core: every byte must match.
    FunctionalCore golden2(prog);
    golden2.run(ff.instsSkipped);
    EXPECT_EQ(saveCheckpoint(cfg, golden2, core2, ff2), blob);
}

// ---------------------------------------------------------------------
// The correctness contract: restored == cold, bit for bit, for every
// workload on both IQ designs.

class CheckpointIdentity
    : public ::testing::TestWithParam<std::tuple<std::string, IqKind>>
{
};

TEST_P(CheckpointIdentity, RestoredMatchesColdBitForBit)
{
    const auto &[workload, kind] = GetParam();
    SimConfig cfg = testConfig(workload, kind);
    cfg.ckptCache = std::make_shared<CheckpointCache>();  // memory-only

    Simulator coldSim(cfg);
    RunResult cold = coldSim.run();
    EXPECT_FALSE(cold.ckptRestored);
    ASSERT_TRUE(cold.haltedCleanly);
    ASSERT_TRUE(cold.validated);

    Simulator warmSim(cfg);
    RunResult warm = warmSim.run();
    EXPECT_TRUE(warm.ckptRestored);
    ASSERT_TRUE(warm.haltedCleanly);
    ASSERT_TRUE(warm.validated);

    EXPECT_EQ(cold.cycles, warm.cycles);
    EXPECT_EQ(cold.insts, warm.insts);
    // The whole stats tree, byte for byte — caches, predictors, IQ,
    // LSQ, ROB: any drift in restored warm state shows up here.
    EXPECT_EQ(statsDump(coldSim), statsDump(warmSim));

    EXPECT_EQ(cfg.ckptCache->produced(), 1u);
    EXPECT_EQ(cfg.ckptCache->memoryHits(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CheckpointIdentity,
    ::testing::Combine(::testing::ValuesIn(workloadNames()),
                       ::testing::Values(IqKind::Segmented,
                                         IqKind::Ideal)),
    [](const auto &info) {
        return std::get<0>(info.param) +
               (std::get<1>(info.param) == IqKind::Segmented
                    ? "_segmented"
                    : "_ideal");
    });

// ---------------------------------------------------------------------
// Rejection paths.

class CheckpointReject : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg = testConfig("gcc", IqKind::Ideal);
        prog = std::make_unique<Program>(
            buildWorkload(cfg.workload, cfg.wl));
        FunctionalCore golden(*prog);
        OooCore core(*prog, cfg.core);
        ff = fastForward(golden, core, cfg.fastForward);
        blob = saveCheckpoint(cfg, golden, core, ff);
    }

    /** Expect restoreCheckpoint(mutated) to fail mentioning `what`. */
    void
    expectReject(const std::string &mutated, const std::string &what)
    {
        OooCore core(*prog, cfg.core);
        try {
            restoreCheckpoint(mutated, cfg, *prog, core);
            FAIL() << "expected CheckpointError containing '" << what
                   << "'";
        } catch (const CheckpointError &e) {
            EXPECT_NE(std::string(e.what()).find(what),
                      std::string::npos)
                << "actual message: " << e.what();
        }
    }

    SimConfig cfg;
    std::unique_ptr<Program> prog;
    FastForwardStats ff;
    std::string blob;
};

TEST_F(CheckpointReject, CorruptedByteFailsChecksum)
{
    std::string bad = blob;
    bad[bad.size() / 2] ^= 0x01;
    expectReject(bad, "checksum");
}

TEST_F(CheckpointReject, TruncationIsRejected)
{
    expectReject(blob.substr(0, blob.size() - 9), "checksum");
    expectReject(blob.substr(0, 4), "truncated");
    expectReject("", "truncated");
}

TEST_F(CheckpointReject, BadMagicIsRejected)
{
    std::string bad = blob;
    bad[0] = 'X';
    expectReject(bad, "magic");
}

TEST_F(CheckpointReject, FutureVersionIsRejected)
{
    std::string bad = blob;
    bad[8] = static_cast<char>(kCheckpointVersion + 1);
    expectReject(bad, "version");
}

TEST_F(CheckpointReject, DifferentConfigurationIsRejected)
{
    SimConfig other = cfg;
    other.fastForward += 1;  // key hash input
    OooCore core(*prog, other.core);
    EXPECT_THROW(restoreCheckpoint(blob, other, *prog, core),
                 CheckpointError);

    other = cfg;
    other.wl.seed += 1;  // workload fingerprint input
    Program otherProg = buildWorkload(other.workload, other.wl);
    OooCore core2(otherProg, other.core);
    EXPECT_THROW(restoreCheckpoint(blob, other, otherProg, core2),
                 CheckpointError);
}

TEST_F(CheckpointReject, UnreadableFileThrows)
{
    EXPECT_THROW(readCheckpointFile("/nonexistent/dir/x.sciqckpt"),
                 CheckpointError);
}

// ---------------------------------------------------------------------
// CheckpointCache semantics.

TEST(CheckpointCacheTest, ProducerElectionAndMemoryHits)
{
    CheckpointCache cache;  // memory-only
    EXPECT_EQ(cache.pathFor(1), "");

    CheckpointCache::Blob b = cache.findOrBegin(7);
    EXPECT_EQ(b, nullptr);  // we are the producer
    cache.publish(7, "payload");

    CheckpointCache::Blob again = cache.findOrBegin(7);
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(*again, "payload");
    EXPECT_EQ(cache.produced(), 1u);
    EXPECT_EQ(cache.memoryHits(), 1u);
    EXPECT_EQ(cache.diskHits(), 0u);
}

TEST(CheckpointCacheTest, CancelReleasesTheKey)
{
    CheckpointCache cache;
    EXPECT_EQ(cache.findOrBegin(3), nullptr);
    cache.cancel(3);
    // The key is claimable again after a cancel.
    EXPECT_EQ(cache.findOrBegin(3), nullptr);
    cache.publish(3, "second try");
    EXPECT_EQ(*cache.findOrBegin(3), "second try");
}

TEST(CheckpointCacheTest, DiskBackingPersistsAcrossInstances)
{
    ScratchDir dir("cache-disk");
    const std::uint64_t key = 0x123456789abcdef0ULL;
    {
        CheckpointCache cache(dir.str());
        EXPECT_EQ(cache.findOrBegin(key), nullptr);
        cache.publish(key, "persisted");
        EXPECT_TRUE(fs::exists(cache.pathFor(key)));
    }
    {
        CheckpointCache cache(dir.str());
        CheckpointCache::Blob b = cache.findOrBegin(key);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(*b, "persisted");
        EXPECT_EQ(cache.diskHits(), 1u);
        EXPECT_EQ(cache.produced(), 0u);
    }
}

// ---------------------------------------------------------------------
// End-to-end through SimConfig keys.

TEST(CheckpointEndToEnd, FileModeCreatesThenRestores)
{
    ScratchDir dir("file-mode");
    SimConfig cfg = testConfig("mgrid", IqKind::Segmented);
    cfg.ckptFile = (dir / "warm.sciqckpt").string();

    RunResult first = runSim(cfg);
    EXPECT_FALSE(first.ckptRestored);
    EXPECT_TRUE(first.validated);
    EXPECT_TRUE(fs::exists(cfg.ckptFile));

    RunResult second = runSim(cfg);
    EXPECT_TRUE(second.ckptRestored);
    EXPECT_TRUE(second.validated);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.insts, second.insts);
}

TEST(CheckpointEndToEnd, DirModeSharesAcrossRuns)
{
    ScratchDir dir("dir-mode");
    SimConfig cfg = testConfig("applu", IqKind::Segmented);
    cfg.ckptDir = dir.str();

    RunResult first = runSim(cfg);
    EXPECT_FALSE(first.ckptRestored);

    // A different IQ configuration restores the same warm-up: the key
    // deliberately excludes IQ parameters.
    SimConfig other = cfg;
    other.core.iq.numEntries = 256;
    other.core.iq.maxChains = 32;
    RunResult second = runSim(other);
    EXPECT_TRUE(second.ckptRestored);
    EXPECT_TRUE(second.validated);
}

TEST(CheckpointEndToEnd, DamagedCacheFileIsRepairedCold)
{
    ScratchDir dir("repair");
    SimConfig cfg = testConfig("equake", IqKind::Ideal);
    cfg.ckptDir = dir.str();

    RunResult first = runSim(cfg);
    EXPECT_FALSE(first.ckptRestored);

    // Corrupt the persisted blob in place.
    CheckpointCache probe(dir.str());
    const std::string path =
        probe.pathFor(checkpointKeyHash(cfg));
    ASSERT_TRUE(fs::exists(path));
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(200);
        f.put('\xff');
    }

    // The damaged file is detected, the run falls back to a cold
    // fast-forward (identical results) and republishes a good blob.
    RunResult second = runSim(cfg);
    EXPECT_FALSE(second.ckptRestored);
    EXPECT_TRUE(second.validated);
    EXPECT_EQ(first.cycles, second.cycles);

    RunResult third = runSim(cfg);
    EXPECT_TRUE(third.ckptRestored);
    EXPECT_EQ(first.cycles, third.cycles);
}
