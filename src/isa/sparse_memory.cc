#include "sparse_memory.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace sciq {

const SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    auto it = pages.find(addr >> kPageShift);
    return it == pages.end() ? nullptr : &it->second;
}

SparseMemory::Page &
SparseMemory::getPage(Addr addr)
{
    auto [it, inserted] = pages.try_emplace(addr >> kPageShift);
    if (inserted)
        it->second.fill(0);
    return it->second;
}

std::uint64_t
SparseMemory::read(Addr addr, unsigned size) const
{
    SCIQ_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    std::uint64_t val = 0;
    if (((addr ^ (addr + size - 1)) >> kPageShift) == 0) {
        // Fast path: the access stays within one page, so one map
        // lookup serves every byte.
        const Page *p = findPage(addr);
        if (!p)
            return 0;
        const std::size_t off = addr & (kPageSize - 1);
        for (unsigned i = 0; i < size; ++i)
            val |= static_cast<std::uint64_t>((*p)[off + i]) << (8 * i);
        return val;
    }
    for (unsigned i = 0; i < size; ++i) {
        Addr a = addr + i;
        const Page *p = findPage(a);
        std::uint8_t byte = p ? (*p)[a & (kPageSize - 1)] : 0;
        val |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return val;
}

void
SparseMemory::write(Addr addr, unsigned size, std::uint64_t val)
{
    SCIQ_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    if (((addr ^ (addr + size - 1)) >> kPageShift) == 0) {
        Page &p = getPage(addr);
        const std::size_t off = addr & (kPageSize - 1);
        for (unsigned i = 0; i < size; ++i)
            p[off + i] = static_cast<std::uint8_t>(val >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < size; ++i) {
        Addr a = addr + i;
        getPage(a)[a & (kPageSize - 1)] =
            static_cast<std::uint8_t>(val >> (8 * i));
    }
}

void
SparseMemory::writeBlob(Addr addr, const std::uint8_t *data, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        getPage(addr + i)[(addr + i) & (kPageSize - 1)] = data[i];
}

void
SparseMemory::readBlob(Addr addr, std::uint8_t *data, std::size_t len) const
{
    for (std::size_t i = 0; i < len; ++i) {
        const Page *p = findPage(addr + i);
        data[i] = p ? (*p)[(addr + i) & (kPageSize - 1)] : 0;
    }
}

bool
SparseMemory::equalContents(const SparseMemory &other) const
{
    static const Page kZeroPage = [] {
        Page p;
        p.fill(0);
        return p;
    }();

    auto covers = [](const SparseMemory &a, const SparseMemory &b) {
        for (const auto &[page_no, page] : a.pages) {
            auto it = b.pages.find(page_no);
            const Page &theirs = it == b.pages.end() ? kZeroPage
                                                     : it->second;
            if (std::memcmp(page.data(), theirs.data(), kPageSize) != 0)
                return false;
        }
        return true;
    };
    return covers(*this, other) && covers(other, *this);
}

void
SparseMemory::save(serial::Writer &w) const
{
    std::vector<Addr> page_nos;
    page_nos.reserve(pages.size());
    for (const auto &[page_no, page] : pages)
        page_nos.push_back(page_no);
    std::sort(page_nos.begin(), page_nos.end());

    w.u64(page_nos.size());
    for (Addr page_no : page_nos) {
        w.u64(page_no);
        const Page &page = pages.at(page_no);
        w.bytes(page.data(), kPageSize);
    }
}

void
SparseMemory::restore(serial::Reader &r)
{
    pages.clear();
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        const Addr page_no = r.u64();
        Page &page = pages[page_no];
        r.bytes(page.data(), kPageSize);
    }
}

double
SparseMemory::readDouble(Addr addr) const
{
    return std::bit_cast<double>(read(addr, 8));
}

void
SparseMemory::writeDouble(Addr addr, double v)
{
    write(addr, 8, std::bit_cast<std::uint64_t>(v));
}

} // namespace sciq
