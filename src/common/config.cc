#include "config.hh"

#include <algorithm>
#include <cstdlib>

#include "logging.hh"

namespace sciq {

ConfigMap
ConfigMap::fromArgs(int argc, const char *const *argv)
{
    ConfigMap cfg;
    for (int i = 1; i < argc; ++i) {
        std::string tok(argv[i]);
        if (!cfg.parseLine(tok))
            cfg.args.push_back(tok);
    }
    return cfg;
}

bool
ConfigMap::parseLine(const std::string &line)
{
    auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(line.substr(0, eq), line.substr(eq + 1));
    return true;
}

void
ConfigMap::set(const std::string &key, const std::string &value)
{
    values[key] = value;
}

bool
ConfigMap::has(const std::string &key) const
{
    return values.count(key) > 0;
}

std::string
ConfigMap::getString(const std::string &key, const std::string &def) const
{
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
}

std::int64_t
ConfigMap::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values.find(key);
    if (it == values.end())
        return def;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not an integer", key.c_str(),
              it->second.c_str());
    return v;
}

double
ConfigMap::getDouble(const std::string &key, double def) const
{
    auto it = values.find(key);
    if (it == values.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not a number", key.c_str(),
              it->second.c_str());
    return v;
}

bool
ConfigMap::getBool(const std::string &key, bool def) const
{
    auto it = values.find(key);
    if (it == values.end())
        return def;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(), ::tolower);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("config key '%s': '%s' is not a boolean", key.c_str(),
          it->second.c_str());
}

} // namespace sciq
