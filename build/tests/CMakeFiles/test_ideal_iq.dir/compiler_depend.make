# Empty compiler generated dependencies file for test_ideal_iq.
# This may be replaced when dependencies are built.
