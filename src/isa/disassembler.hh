/**
 * @file
 * Textual disassembly of SRV instructions, inverse of the Assembler.
 */

#ifndef SCIQ_ISA_DISASSEMBLER_HH
#define SCIQ_ISA_DISASSEMBLER_HH

#include <string>

#include "isa/instruction.hh"
#include "isa/program.hh"

namespace sciq {

/** One instruction as text, e.g. "add r3, r1, r2" or "fld f2, 16(r4)". */
std::string disassemble(const Instruction &inst);

/** Whole program, one instruction per line with PCs. */
std::string disassemble(const Program &prog);

/** Register name, e.g. "r5" or "f17". */
std::string regName(RegIndex r);

} // namespace sciq

#endif // SCIQ_ISA_DISASSEMBLER_HH
