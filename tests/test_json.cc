/**
 * @file
 * Strict-JSON parser and writer tests.  The parser guards the
 * `bench_out=` result files and the golden-stats snapshots, so it must
 * reject everything RFC 8259 rejects -- in particular the bare
 * `nan`/`inf` tokens the old emitter used to produce.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "common/json.hh"

using namespace sciq;

namespace {

TEST(JsonParse, AcceptsScalars)
{
    EXPECT_TRUE(json::parse("null").isNull());
    EXPECT_TRUE(json::parse("true").asBool());
    EXPECT_FALSE(json::parse("false").asBool());
    EXPECT_DOUBLE_EQ(json::parse("0").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(json::parse("-0.5").asNumber(), -0.5);
    EXPECT_DOUBLE_EQ(json::parse("1e3").asNumber(), 1000.0);
    EXPECT_DOUBLE_EQ(json::parse("2.5E-1").asNumber(), 0.25);
    EXPECT_EQ(json::parse("\"hi\"").asString(), "hi");
    EXPECT_TRUE(json::parse("  42  ").isNumber());
}

TEST(JsonParse, AcceptsContainers)
{
    json::Value v = json::parse(
        "{\"a\": [1, 2, 3], \"b\": {\"c\": null}, \"d\": \"x\"}");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v.at("a").size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("a").at(std::size_t{2}).asNumber(), 3.0);
    EXPECT_TRUE(v.at("b").at("c").isNull());
    EXPECT_TRUE(v.contains("d"));
    EXPECT_FALSE(v.contains("e"));
    EXPECT_TRUE(json::parse("[]").isArray());
    EXPECT_EQ(json::parse("{}").size(), 0u);
}

TEST(JsonParse, RejectsNonFiniteTokens)
{
    // The regression that motivated the strict parser: the sweep emitter
    // wrote bare nan/inf, which no conforming consumer accepts.
    EXPECT_THROW(json::parse("nan"), json::ParseError);
    EXPECT_THROW(json::parse("inf"), json::ParseError);
    EXPECT_THROW(json::parse("-inf"), json::ParseError);
    EXPECT_THROW(json::parse("NaN"), json::ParseError);
    EXPECT_THROW(json::parse("Infinity"), json::ParseError);
    EXPECT_THROW(json::parse("{\"ipc\": nan}"), json::ParseError);
    EXPECT_THROW(json::parse("[1, inf]"), json::ParseError);
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    EXPECT_THROW(json::parse(""), json::ParseError);
    EXPECT_THROW(json::parse("   "), json::ParseError);
    EXPECT_THROW(json::parse("[1, 2,]"), json::ParseError);     // trailing ,
    EXPECT_THROW(json::parse("{\"a\": 1,}"), json::ParseError);
    EXPECT_THROW(json::parse("{a: 1}"), json::ParseError);      // bare key
    EXPECT_THROW(json::parse("{'a': 1}"), json::ParseError);
    EXPECT_THROW(json::parse("{\"a\": 1 \"b\": 2}"), json::ParseError);
    EXPECT_THROW(json::parse("[1 2]"), json::ParseError);
    EXPECT_THROW(json::parse("[1] garbage"), json::ParseError);  // trailing
    EXPECT_THROW(json::parse("{\"a\": 1} {\"b\": 2}"), json::ParseError);
    EXPECT_THROW(json::parse("{\"a\": }"), json::ParseError);
    EXPECT_THROW(json::parse("[1,"), json::ParseError);
    EXPECT_THROW(json::parse("\"unterminated"), json::ParseError);
}

TEST(JsonParse, RejectsDuplicateKeys)
{
    EXPECT_THROW(json::parse("{\"a\": 1, \"a\": 2}"), json::ParseError);
    // ... but the same key in sibling objects is fine.
    EXPECT_NO_THROW(json::parse("[{\"a\": 1}, {\"a\": 2}]"));
}

TEST(JsonParse, RejectsBadNumbers)
{
    EXPECT_THROW(json::parse("01"), json::ParseError);   // leading zero
    EXPECT_THROW(json::parse("+1"), json::ParseError);
    EXPECT_THROW(json::parse("1."), json::ParseError);
    EXPECT_THROW(json::parse(".5"), json::ParseError);
    EXPECT_THROW(json::parse("1e"), json::ParseError);
    EXPECT_THROW(json::parse("1e+"), json::ParseError);
    EXPECT_THROW(json::parse("-"), json::ParseError);
    EXPECT_THROW(json::parse("0x10"), json::ParseError);
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(json::parse("\"a\\n\\t\\\\\\\"b\\/\"").asString(),
              "a\n\t\\\"b/");
    EXPECT_EQ(json::parse("\"\\u0041\"").asString(), "A");
    // Non-ASCII BMP codepoint -> UTF-8.
    EXPECT_EQ(json::parse("\"\\u00e9\"").asString(), "\xc3\xa9");
    // Surrogate pair -> 4-byte UTF-8 (U+1F600).
    EXPECT_EQ(json::parse("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsBadStrings)
{
    EXPECT_THROW(json::parse("\"\\x41\""), json::ParseError);
    EXPECT_THROW(json::parse("\"\\u12\""), json::ParseError);
    EXPECT_THROW(json::parse("\"\\ud800\""), json::ParseError);  // lone hi
    EXPECT_THROW(json::parse("\"\\ude00\""), json::ParseError);  // lone lo
    EXPECT_THROW(json::parse("\"\\ud800\\u0041\""), json::ParseError);
    EXPECT_THROW(json::parse("\"a\nb\""), json::ParseError);
}

TEST(JsonParse, RejectsExcessiveNesting)
{
    std::string deep(300, '[');
    deep += std::string(300, ']');
    EXPECT_THROW(json::parse(deep), json::ParseError);
    // A comfortably shallow document is fine.
    std::string ok(50, '[');
    ok += std::string(50, ']');
    EXPECT_NO_THROW(json::parse(ok));
}

TEST(JsonParse, ErrorsCarryLineAndColumn)
{
    try {
        json::parse("{\n  \"a\": nan\n}");
        FAIL() << "expected ParseError";
    } catch (const json::ParseError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
            << e.what();
    }
}

TEST(JsonValue, AccessorsEnforceKind)
{
    json::Value v = json::parse("{\"a\": [1]}");
    EXPECT_THROW(v.asNumber(), json::ParseError);
    EXPECT_THROW(v.at(std::size_t{0}), json::ParseError);
    EXPECT_THROW(v.at("missing"), json::ParseError);
    EXPECT_THROW(v.at("a").at(std::size_t{5}), json::ParseError);
}

TEST(JsonWrite, NumberShortestRoundTrip)
{
    auto fmt = [](double d) {
        std::ostringstream os;
        json::writeNumber(os, d);
        return os.str();
    };
    EXPECT_EQ(fmt(0.0), "0");
    EXPECT_EQ(fmt(1.5), "1.5");
    EXPECT_EQ(fmt(-2.0), "-2");
    // 0.1 must survive a write/parse round trip bit-for-bit.
    EXPECT_EQ(json::parse(fmt(0.1)).asNumber(), 0.1);
    const double tricky = 1.0 / 3.0;
    EXPECT_EQ(json::parse(fmt(tricky)).asNumber(), tricky);
}

TEST(JsonWrite, NonFiniteBecomesNull)
{
    auto fmt = [](double d) {
        std::ostringstream os;
        json::writeNumber(os, d);
        return os.str();
    };
    EXPECT_EQ(fmt(std::nan("")), "null");
    EXPECT_EQ(fmt(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(fmt(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWrite, StringEscapingRoundTrips)
{
    const std::string nasty = "quote\" slash\\ nl\n tab\t bell\x07 end";
    std::ostringstream os;
    json::writeString(os, nasty);
    EXPECT_EQ(json::parse(os.str()).asString(), nasty);
}

TEST(JsonParseFile, MissingFileThrows)
{
    EXPECT_THROW(json::parseFile("/no/such/file.json"), json::ParseError);
}

} // namespace
