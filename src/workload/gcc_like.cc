/**
 * @file
 * gcc-like kernel: branchy, low-ILP integer code.
 *
 * A register-resident PRNG drives an essentially unpredictable branch
 * every iteration over a small (L1-resident) hash table.  The serial
 * PRNG recurrence caps ILP, and the misprediction rate means a larger
 * window buys nothing - matching gcc's flat curve in Figure 3 and its
 * sensitivity to the segmented IQ's extra pipeline depth.
 */

#include "workload/kernel_util.hh"
#include "workload/workloads.hh"

namespace sciq {

using namespace kernel;

Program
buildGcc(const WorkloadParams &params)
{
    const std::uint64_t table_words = 2048;  // 16 KB: L1 resident
    const std::uint64_t iters =
        params.iterations ? params.iterations : 16384;

    const Addr table_base = dataBase(0);

    AsmBuilder b;
    b.words(table_base,
            randomIndices(table_words, ~0ULL, params.seed + 11));

    const RegIndex state = intReg(11), p_tab = intReg(12);
    const RegIndex count = intReg(13), acc = intReg(14);
    const RegIndex t1 = intReg(15), t2 = intReg(16), addr = intReg(17);
    const RegIndex lcg_a = intReg(18), lcg_c = intReg(19);

    b.la(p_tab, table_base);
    b.li(count, static_cast<std::int64_t>(iters));
    b.li(state, static_cast<std::int64_t>(params.seed | 1));
    b.li(lcg_a, 0x5851F42D4C957F2DLL);  // Knuth MMIX multiplier
    b.li(lcg_c, 0x14057B7EF767814FLL);
    b.addi(acc, intReg(0), 0);

    b.label("loop");
    // LCG PRNG: a serial mul+add chain through every iteration whose
    // high bits are not a linear function of past outcomes, so the
    // branch below is genuinely unpredictable to a history predictor.
    b.mul(state, state, lcg_a);
    b.add(state, state, lcg_c);

    b.srli(t2, state, 61);
    b.andi(t2, t2, 1);
    b.bne(t2, intReg(0), "odd");   // ~50% taken: unpredictable

    // Even path: hash-table update (load-modify-store).
    b.andi(addr, state, 2047);
    b.slli(addr, addr, 3);
    b.add(addr, addr, p_tab);
    b.ld(t1, addr, 0);
    b.add(t1, t1, state);
    b.st(t1, addr, 0);
    b.j("join");

    b.label("odd");
    // Odd path: pure register work.
    b.add(acc, acc, state);
    b.srli(t1, state, 3);
    b.xor_(acc, acc, t1);

    b.label("join");
    b.addi(count, count, -1);
    b.bne(count, intReg(0), "loop");

    epilogueInt(b, acc);
    return b.build("gcc");
}

} // namespace sciq
