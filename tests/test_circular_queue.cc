/** @file Unit tests for the fixed-capacity circular queue. */

#include <gtest/gtest.h>

#include <memory>

#include "common/circular_queue.hh"
#include "common/logging.hh"

using namespace sciq;

TEST(CircularQueue, BasicFifo)
{
    CircularQueue<int> q(4);
    EXPECT_TRUE(q.empty());
    q.pushBack(1);
    q.pushBack(2);
    q.pushBack(3);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.front(), 1);
    EXPECT_EQ(q.back(), 3);
    EXPECT_EQ(q.popFront(), 1);
    EXPECT_EQ(q.popFront(), 2);
    EXPECT_EQ(q.size(), 1u);
}

TEST(CircularQueue, PopBackForSquash)
{
    CircularQueue<int> q(4);
    q.pushBack(1);
    q.pushBack(2);
    q.pushBack(3);
    EXPECT_EQ(q.popBack(), 3);
    EXPECT_EQ(q.popBack(), 2);
    EXPECT_EQ(q.back(), 1);
}

TEST(CircularQueue, WrapsAround)
{
    CircularQueue<int> q(3);
    for (int round = 0; round < 10; ++round) {
        q.pushBack(round);
        q.pushBack(round + 100);
        EXPECT_EQ(q.popFront(), round);
        EXPECT_EQ(q.popFront(), round + 100);
    }
    EXPECT_TRUE(q.empty());
}

TEST(CircularQueue, FullAndFreeEntries)
{
    CircularQueue<int> q(2);
    EXPECT_EQ(q.freeEntries(), 2u);
    q.pushBack(1);
    q.pushBack(2);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.freeEntries(), 0u);
    EXPECT_THROW(q.pushBack(3), PanicError);
}

TEST(CircularQueue, IndexedAccess)
{
    CircularQueue<int> q(5);
    q.pushBack(10);
    q.pushBack(11);
    q.pushBack(12);
    q.popFront();
    q.pushBack(13);
    EXPECT_EQ(q.at(0), 11);
    EXPECT_EQ(q.at(1), 12);
    EXPECT_EQ(q.at(2), 13);
    EXPECT_THROW(q.at(3), PanicError);
}

TEST(CircularQueue, PopEmptyPanics)
{
    CircularQueue<int> q(2);
    EXPECT_THROW(q.popFront(), PanicError);
    EXPECT_THROW(q.popBack(), PanicError);
}

TEST(CircularQueue, ClearResets)
{
    CircularQueue<int> q(3);
    q.pushBack(1);
    q.pushBack(2);
    q.clear();
    EXPECT_TRUE(q.empty());
    q.pushBack(7);
    EXPECT_EQ(q.front(), 7);
}

// Regression: clear() used to reset only head/count, leaving the
// abandoned slots holding live T objects.  For owning element types
// (DynInstPtr, shared_ptr) that pinned the pointees until the same
// position happened to be overwritten again.
TEST(CircularQueue, ClearDestroysHeldElements)
{
    CircularQueue<std::shared_ptr<int>> q(4);
    auto p = std::make_shared<int>(7);
    q.pushBack(p);
    q.pushBack(p);
    q.pushBack(p);
    EXPECT_EQ(p.use_count(), 4);
    q.clear();
    EXPECT_EQ(p.use_count(), 1) << "clear() left live copies in the buffer";
}

TEST(CircularQueue, PopFrontReleasesOwnership)
{
    // popFront/popBack move out of the slot; nothing may linger behind.
    CircularQueue<std::shared_ptr<int>> q(2);
    auto p = std::make_shared<int>(1);
    q.pushBack(p);
    q.pushBack(p);
    (void)q.popFront();
    (void)q.popBack();
    EXPECT_EQ(p.use_count(), 1);
}

TEST(CircularQueue, SetCapacityOnEmpty)
{
    CircularQueue<int> q(2);
    q.setCapacity(8);
    for (int i = 0; i < 8; ++i)
        q.pushBack(i);
    EXPECT_TRUE(q.full());
    q.clear();
    q.pushBack(1);
    EXPECT_THROW(q.setCapacity(4), PanicError);
}
