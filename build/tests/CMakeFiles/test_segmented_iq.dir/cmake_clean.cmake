file(REMOVE_RECURSE
  "CMakeFiles/test_segmented_iq.dir/test_segmented_iq.cc.o"
  "CMakeFiles/test_segmented_iq.dir/test_segmented_iq.cc.o.d"
  "test_segmented_iq"
  "test_segmented_iq.pdb"
  "test_segmented_iq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_segmented_iq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
