file(REMOVE_RECURSE
  "CMakeFiles/test_chain_allocator.dir/test_chain_allocator.cc.o"
  "CMakeFiles/test_chain_allocator.dir/test_chain_allocator.cc.o.d"
  "test_chain_allocator"
  "test_chain_allocator.pdb"
  "test_chain_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
