/**
 * @file
 * A cycle-ordered event queue used by the memory hierarchy to schedule
 * fill completions, bandwidth slots, and MSHR retirements.
 */

#ifndef SCIQ_COMMON_EVENT_QUEUE_HH
#define SCIQ_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace sciq {

/**
 * Min-heap of (cycle, callback) events.
 *
 * Events scheduled for the same cycle fire in FIFO order of scheduling,
 * which keeps the simulation deterministic.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule cb to run at the given absolute cycle. */
    void
    schedule(Cycle when, Callback cb)
    {
        SCIQ_ASSERT(when >= now, "scheduling event in the past (%llu < %llu)",
                    static_cast<unsigned long long>(when),
                    static_cast<unsigned long long>(now));
        heap.push(Event{when, nextTieBreaker++, std::move(cb)});
    }

    /** Run all events scheduled at or before `upto`, advancing time. */
    void
    runUntil(Cycle upto)
    {
        while (!heap.empty() && heap.top().when <= upto) {
            // Move out before pop: the callback may schedule new
            // events.  Moving from the top is safe — the comparator
            // only reads the scalar (when, tieBreaker) fields, which
            // the move leaves intact.
            Event ev = std::move(const_cast<Event &>(heap.top()));
            heap.pop();
            now = ev.when;
            ev.cb();
        }
        now = upto;
    }

    /** Current simulated cycle (last advanced-to point). */
    Cycle curCycle() const { return now; }

    bool empty() const { return heap.empty(); }
    std::size_t size() const { return heap.size(); }

    /** Cycle of the earliest pending event (kCycleNever if empty). */
    Cycle
    nextEventCycle() const
    {
        return heap.empty() ? kCycleNever : heap.top().when;
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t order;
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            if (when != o.when)
                return when > o.when;
            return order > o.order;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap;
    Cycle now = 0;
    std::uint64_t nextTieBreaker = 0;
};

} // namespace sciq

#endif // SCIQ_COMMON_EVENT_QUEUE_HH
