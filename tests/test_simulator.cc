/** @file Tests for the simulation facade and configuration plumbing. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/errors.hh"
#include "sim/simulator.hh"

using namespace sciq;

TEST(SimConfig, FactoryHelpers)
{
    SimConfig ideal = makeIdealConfig(256, "mgrid");
    EXPECT_EQ(ideal.core.iqKind, IqKind::Ideal);
    EXPECT_EQ(ideal.core.iq.numEntries, 256u);
    EXPECT_EQ(ideal.workload, "mgrid");

    SimConfig seg = makeSegmentedConfig(512, 128, true, false, "swim");
    EXPECT_EQ(seg.core.iqKind, IqKind::Segmented);
    EXPECT_EQ(seg.core.iq.maxChains, 128);
    EXPECT_TRUE(seg.core.iq.useHmp);
    EXPECT_FALSE(seg.core.iq.useLrp);
    EXPECT_EQ(seg.core.iq.segmentSize, 32u);

    SimConfig pre = makePrescheduledConfig(320, "gcc");
    EXPECT_EQ(pre.core.iqKind, IqKind::Prescheduled);
    EXPECT_EQ(pre.core.iq.numEntries, 320u);
    EXPECT_EQ(pre.core.iq.issueBufferSize, 32u);

    SimConfig fifo = makeFifoConfig(16, 32, "twolf");
    EXPECT_EQ(fifo.core.iqKind, IqKind::Fifo);
    EXPECT_EQ(fifo.core.iq.numFifos, 16u);
}

TEST(SimConfig, ApplyOverrides)
{
    SimConfig cfg;
    ConfigMap m;
    m.set("iq", "prescheduled");
    m.set("iq_size", "704");
    m.set("workload", "vortex");
    m.set("iters", "1234");
    m.set("hmp", "1");
    m.set("chains", "64");
    m.set("validate", "0");
    m.set("max_cycles", "5000");
    cfg.apply(m);
    EXPECT_EQ(cfg.core.iqKind, IqKind::Prescheduled);
    EXPECT_EQ(cfg.core.iq.numEntries, 704u);
    EXPECT_EQ(cfg.workload, "vortex");
    EXPECT_EQ(cfg.wl.iterations, 1234u);
    EXPECT_TRUE(cfg.core.iq.useHmp);
    EXPECT_EQ(cfg.core.iq.maxChains, 64);
    EXPECT_FALSE(cfg.validate);
    EXPECT_EQ(cfg.maxCycles, 5000u);
}

TEST(SimConfig, BadIqKindThrowsConfigError)
{
    SimConfig cfg;
    ConfigMap m;
    m.set("iq", "quantum");
    EXPECT_THROW(cfg.apply(m), ConfigError);
}

TEST(SimConfig, PrintParametersMentionsTable1)
{
    SimConfig cfg = makeSegmentedConfig(512, 128, true, true, "swim");
    std::ostringstream os;
    cfg.printParameters(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("segmented"), std::string::npos);
    EXPECT_NE(out.find("16 segments of 32"), std::string::npos);
    EXPECT_NE(out.find("chains=128"), std::string::npos);
    EXPECT_NE(out.find("100-cycle"), std::string::npos);
}

TEST(Simulator, RunProducesPopulatedResult)
{
    SimConfig cfg = makeSegmentedConfig(128, 64, true, true, "twolf");
    cfg.wl.iterations = 200;
    RunResult r = runSim(cfg);
    EXPECT_EQ(r.workload, "twolf");
    EXPECT_EQ(r.iqKind, std::string("segmented"));
    EXPECT_EQ(r.iqSize, 128u);
    EXPECT_EQ(r.chains, 64);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.insts, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.avgChains, 0.0);
    EXPECT_GE(r.peakChains, r.avgChains);
}

TEST(Simulator, ChainStatsOnlyForSegmented)
{
    SimConfig cfg = makeIdealConfig(64, "twolf");
    cfg.wl.iterations = 100;
    RunResult r = runSim(cfg);
    EXPECT_EQ(r.avgChains, 0.0);
    EXPECT_EQ(r.chains, -1);
}

TEST(Simulator, ResultTablePrinting)
{
    RunResult r;
    r.workload = "swim";
    r.iqKind = "segmented";
    r.iqSize = 512;
    r.chains = 128;
    r.cycles = 1000;
    r.insts = 800;
    r.ipc = 0.8;
    r.validated = true;
    std::ostringstream os;
    printResultHeader(os);
    printResultRow(os, r);
    const std::string out = os.str();
    EXPECT_NE(out.find("swim"), std::string::npos);
    EXPECT_NE(out.find("128"), std::string::npos);
    EXPECT_NE(out.find("0.800"), std::string::npos);
}

TEST(Simulator, MaxCyclesCapsRunaways)
{
    SimConfig cfg = makeIdealConfig(64, "swim");
    cfg.maxCycles = 500;
    cfg.validate = true;  // prefix validation must still pass
    RunResult r = runSim(cfg);
    EXPECT_FALSE(r.haltedCleanly);
    EXPECT_LE(r.cycles, 501u);
    EXPECT_TRUE(r.validated);  // committed prefix matches the oracle
}
