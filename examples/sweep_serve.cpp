/**
 * @file
 * Distributed-sweep coordinator (and single-process reference runner).
 *
 * Serves a configuration set to sweep_worker processes over an AF_UNIX
 * socket or a TCP listener (DESIGN.md §17/§18) and merges their
 * streamed results into the same final JSON a single-process sweep
 * writes — byte-identical up to the host wall-clock fields.
 *
 * SIGTERM/SIGINT trigger a graceful drain: leasing stops, in-flight
 * results are collected and journaled (fsync'd), and the process exits
 * with status 3.  Re-running with the same listen=/journal= resumes
 * the sweep; surviving workers reconnect by themselves.
 *
 * Usage examples:
 *   # coordinator, expecting ~3 workers, over a unix socket
 *   sweep_serve socket=/tmp/sweep.sock workers=3 out=dist.json \
 *               journal=dist.jsonl
 *   # same over TCP (workers connect=host:port from other machines)
 *   sweep_serve listen=0.0.0.0:7070 workers=3 journal=dist.jsonl
 *   # single-process reference over the same config set
 *   sweep_serve mode=local jobs=4 out=ref.json
 *   # explicit config list (one configSpec line per job)
 *   sweep_serve spec=jobs.txt socket=/tmp/sweep.sock out=dist.json
 */

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/config.hh"
#include "sim/checkpoint.hh"
#include "sim/fault_injector.hh"
#include "sim/shard.hh"
#include "sim/worker_proto.hh"

using namespace sciq;

namespace {

std::atomic<bool> g_stop{false};

void
onStopSignal(int)
{
    g_stop.store(true);
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

/**
 * The built-in config sets.  `quick` is the CI differential set: three
 * IQ designs per workload, big enough to exercise sharding and work
 * stealing, small enough for a smoke gate.  `tiny` is for local
 * experiments.
 */
std::vector<SimConfig>
presetConfigs(const std::string &preset,
              std::vector<std::string> workloads)
{
    std::uint64_t iters = 0;
    if (preset == "quick") {
        if (workloads.empty())
            workloads = {"swim", "twolf"};
        iters = 1500;
    } else if (preset == "tiny") {
        if (workloads.empty())
            workloads = {"swim", "gcc"};
        iters = 200;
    } else {
        throw ConfigError("unknown preset '" + preset +
                          "' (quick|tiny)");
    }

    std::vector<SimConfig> configs;
    for (const std::string &wl : workloads) {
        configs.push_back(makeSegmentedConfig(64, 32, true, true, wl));
        configs.push_back(makeSegmentedConfig(256, 32, true, true, wl));
        configs.push_back(makeIdealConfig(256, wl));
    }
    for (SimConfig &cfg : configs) {
        cfg.wl.iterations = iters;
        cfg.validate = false;
    }
    return configs;
}

std::vector<SimConfig>
specFileConfigs(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError("cannot read spec file '" + path + "'");
    std::vector<SimConfig> configs;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        configs.push_back(configFromSpec(line));
    }
    return configs;
}

} // namespace

int
main(int argc, char **argv)
{
    ConfigMap args = ConfigMap::fromArgs(argc, argv);
    if (args.has("help")) {
        std::cout <<
            "keys: mode=serve|local     (default serve)\n"
            "      preset=quick|tiny    built-in config set\n"
            "      spec=FILE            configSpec lines instead of a "
            "preset\n"
            "      workloads=a,b iters=N ff=N   preset overrides\n"
            "      socket=PATH          AF_UNIX listen socket\n"
            "      listen=HOST:PORT     TCP listener instead of a "
            "socket\n"
            "      workers=N            expected worker count (= shard "
            "count)\n"
            "      lease_ms=N lease_drops=N dup_ms=N grace_ms=N\n"
            "      heartbeat_ms=N       ping cadence (0 disables)\n"
            "      drain_ms=N           SIGTERM/SIGINT drain window\n"
            "      journal=FILE out=FILE sync_journal=0|1\n"
            "      jobs=N batch=N ckpt_dir=DIR  (mode=local)\n"
            "      retries=N artifact_dir=DIR\n"
            "      fault_coord_abort=N fault_seed=N  (chaos testing:\n"
            "      _exit(137) after journaling the Nth result)\n";
        return 0;
    }
    const std::string complaint = args.unknownKeyMessage(
        {"mode", "preset", "spec", "workloads", "iters", "ff", "socket",
         "listen", "workers", "lease_ms", "lease_drops", "dup_ms",
         "grace_ms", "heartbeat_ms", "drain_ms", "journal", "out",
         "sync_journal", "jobs", "batch", "ckpt_dir", "retries",
         "artifact_dir", "fault_coord_abort", "fault_seed", "help"});
    if (!complaint.empty()) {
        std::cerr << complaint << "\n";
        return 2;
    }

    try {
        std::vector<SimConfig> configs;
        if (args.has("spec")) {
            configs = specFileConfigs(args.getString("spec"));
        } else {
            configs = presetConfigs(
                args.getString("preset", "quick"),
                splitList(args.getString("workloads")));
        }
        for (SimConfig &cfg : configs) {
            cfg.wl.iterations = static_cast<std::uint64_t>(args.getCount(
                "iters", static_cast<std::int64_t>(cfg.wl.iterations)));
            cfg.fastForward = static_cast<std::uint64_t>(args.getCount(
                "ff", static_cast<std::int64_t>(cfg.fastForward)));
        }
        if (configs.empty()) {
            std::cerr << "no configurations to run\n";
            return 2;
        }

        const std::string mode = args.getString("mode", "serve");
        std::vector<RunResult> results;
        bool interrupted = false;
        auto progress = [](std::size_t done, std::size_t total,
                           const RunResult &r) {
            std::cout << "[" << done << "/" << total << "] "
                      << r.workload << " " << r.iqKind << "/" << r.iqSize
                      << " -> " << jobStatusName(r.outcome.status)
                      << "\n";
        };

        if (mode == "local") {
            SweepRunner::Options options;
            options.journal = args.getString("journal");
            options.maxRetries =
                static_cast<unsigned>(args.getInt("retries", 2));
            options.artifactDir = args.getString("artifact_dir");
            options.batch =
                static_cast<unsigned>(args.getInt("batch", 1));
            options.progress = progress;

            // Mirror the distributed fleet's shared warm-state store:
            // one cache for the whole sweep (bench_util.hh idiom).
            std::shared_ptr<CheckpointCache> cache;
            const std::string ckptDir = args.getString("ckpt_dir");
            for (SimConfig &cfg : configs) {
                if (cfg.fastForward == 0)
                    continue;
                if (!cache)
                    cache = std::make_shared<CheckpointCache>(ckptDir);
                cfg.ckptCache = cache;
            }

            SweepRunner runner(
                static_cast<unsigned>(args.getInt("jobs", 0)));
            results = runner.run(configs, options);
        } else if (mode == "serve") {
            ServeOptions options;
            if (args.has("listen")) {
                // Validate up front so a typo fails with a what-to-write
                // message instead of a late bind error.
                options.endpoint =
                    tcpEndpoint(args.getString("listen")).str();
            } else {
                options.endpoint =
                    args.getString("socket", "/tmp/sciq-sweep.sock");
            }
            options.shards =
                static_cast<unsigned>(args.getInt("workers", 1));
            options.leaseMs =
                static_cast<unsigned>(args.getInt("lease_ms", 60'000));
            options.maxLeaseDrops =
                static_cast<unsigned>(args.getInt("lease_drops", 3));
            options.duplicateAfterMs =
                static_cast<unsigned>(args.getInt("dup_ms", 1'000));
            options.workerGraceMs =
                static_cast<unsigned>(args.getInt("grace_ms", 60'000));
            options.heartbeatMs = static_cast<unsigned>(
                args.getInt("heartbeat_ms", 1'000));
            options.drainGraceMs =
                static_cast<unsigned>(args.getInt("drain_ms", 2'000));
            options.journal = args.getString("journal");
            options.syncJournal = args.getInt("sync_journal", 1) != 0;
            options.progress = progress;
            options.abortExits = true;
            if (args.has("fault_coord_abort")) {
                options.faults = std::make_shared<FaultInjector>(
                    static_cast<std::uint64_t>(
                        args.getInt("fault_seed", 1)));
                options.faults->abortCoordinator =
                    args.getInt("fault_coord_abort", 0);
            }

            // Graceful drain on SIGTERM/SIGINT: stop leasing, journal
            // the in-flight results, exit 3 so supervisors restart us.
            std::signal(SIGINT, onStopSignal);
            std::signal(SIGTERM, onStopSignal);
            options.stop = &g_stop;

            ServeStats stats;
            results = serveSweep(configs, options, &stats);
            interrupted = stats.interrupted;
            std::cout << "served " << results.size() << " jobs to "
                      << stats.workersSeen << " workers: "
                      << stats.leases << " leases, " << stats.steals
                      << " steals, " << stats.duplicates
                      << " duplicate leases ("
                      << stats.duplicateResults << " losing results), "
                      << stats.requeues << " requeues, "
                      << stats.boardFailed << " drop-cap failures, "
                      << stats.rejectedWorkers << " rejected workers, "
                      << stats.heartbeatDrops << " heartbeat drops\n";
        } else {
            std::cerr << "unknown mode '" << mode << "' (serve|local)\n";
            return 2;
        }

        if (interrupted) {
            // The sweep is incomplete by request; the journal is valid
            // and fsync'd.  Do not write out= — a restart on the same
            // journal produces the byte-identical final file instead.
            std::cout << "interrupted: journal is resumable, rerun "
                         "with the same listen=/journal= to finish\n";
            return 3;
        }

        std::size_t ok = 0, restored = 0;
        for (const RunResult &r : results) {
            ok += r.outcome.ok();
            restored += r.ckptRestored;
        }
        std::cout << ok << "/" << results.size() << " jobs ok, "
                  << restored << " restored a warm-up checkpoint\n";

        const std::string out = args.getString("out");
        if (!out.empty()) {
            if (!writeResultsJson(out, results)) {
                std::cerr << "cannot write '" << out << "'\n";
                return 1;
            }
            std::cout << "wrote " << out << "\n";
        }
        return ok == results.size() ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << "sweep_serve: " << e.what() << "\n";
        return 1;
    }
}
