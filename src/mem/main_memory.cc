#include "main_memory.hh"

#include <algorithm>

#include "common/intmath.hh"

namespace sciq {

MainMemory::MainMemory(const MainMemoryParams &params, EventQueue &ev)
    : params_(params), events(ev), statsGroup("memory")
{
    transferCycles = static_cast<unsigned>(
        divCeil(params_.lineBytes, params_.bytesPerCycle));
    statsGroup.addScalar("reads", &reads, "line reads");
    statsGroup.addScalar("writes", &writes, "line writebacks");
    statsGroup.addScalar("bus_busy_cycles", &busBusyCycles,
                         "cycles the memory bus was occupied");
}

void
MainMemory::request(Addr, bool is_write, Cycle now,
                    std::function<void(Cycle)> done)
{
    if (is_write)
        writes.inc();
    else
        reads.inc();

    // The access overlaps with other accesses (banked DRAM) but the
    // data transfer serialises on the bus.
    Cycle data_ready = now + params_.latency;
    Cycle start = std::max(data_ready, busFree);
    Cycle finish = start + transferCycles;
    busFree = finish;
    busBusyCycles.inc(transferCycles);

    events.schedule(finish, [done = std::move(done), finish]() mutable {
        done(finish);
    });
}

} // namespace sciq
