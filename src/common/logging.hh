/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal simulator invariant was violated (a bug in us).
 * fatal()  - the simulation cannot continue due to a user error
 *            (bad configuration, impossible parameter combination).
 * warn()   - something looks dubious but the simulation continues.
 * inform() - plain status output.
 */

#ifndef SCIQ_COMMON_LOGGING_HH
#define SCIQ_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace sciq {

/** Exception thrown by panic() so tests can assert on invariants. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal() for user-level configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Report an internal invariant violation and throw PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    throw PanicError("panic: " + detail::formatMessage(fmt, args...));
}

/** Report an unrecoverable user error and throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    throw FatalError("fatal: " + detail::formatMessage(fmt, args...));
}

/** Print a warning to stderr; execution continues. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::formatMessage(fmt, args...).c_str());
}

/** Print an informational message to stdout. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    std::fprintf(stdout, "info: %s\n",
                 detail::formatMessage(fmt, args...).c_str());
}

/** panic() unless the condition holds. */
#define SCIQ_ASSERT(cond, ...)                                       \
    do {                                                             \
        if (!(cond)) {                                               \
            ::sciq::panic("assertion '%s' failed at %s:%d: %s",      \
                          #cond, __FILE__, __LINE__,                 \
                          ::sciq::detail::formatMessage(             \
                              __VA_ARGS__).c_str());                 \
        }                                                            \
    } while (0)

} // namespace sciq

#endif // SCIQ_COMMON_LOGGING_HH
