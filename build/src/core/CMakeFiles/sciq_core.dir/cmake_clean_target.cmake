file(REMOVE_RECURSE
  "libsciq_core.a"
)
