# Empty dependencies file for fig2_relative_performance.
# This may be replaced when dependencies are built.
