#!/bin/sh
# Full pre-merge check: tier-1 tests, the invariant-audit sweep, the
# SoA-engine differential + exact work-counter proxy, and one or all
# sanitizer configurations.  Run from the repository root:
#
#   tools/check.sh [ubsan|asan|tsan|all|faults]
#
# The optional argument picks the sanitizer config (default: ubsan).
# `all` runs every sanitizer sequentially in its own build tree, which
# is what CI's sanitizer job invokes.  `faults` instead runs only the
# fault-containment suite (error taxonomy, watchdog, fault injection,
# journal resume) against the tier-1 build — the fast loop when
# iterating on DESIGN.md §13 machinery.
set -eu

san="${1:-ubsan}"
case "$san" in
  ubsan|asan|tsan|all|faults) ;;
  *) echo "unknown mode '$san' (want ubsan, asan, tsan, all or faults)" >&2
     exit 2 ;;
esac

jobs="$(nproc 2>/dev/null || echo 2)"

# One sanitizer configuration: configure + build under build-<name>,
# then run the fast sanitize_smoke test subset.  TSAN additionally runs
# the full parallel-sweep suite: determinism across worker counts is
# exactly what a data race would break.
run_sanitizer() {
  name="$1"
  flag="$2"
  echo "== sanitizer smoke ($name) =="
  cmake -B "build-$name" -S . "$flag" >/dev/null
  cmake --build "build-$name" -j "$jobs"
  ctest --test-dir "build-$name" --output-on-failure -j "$jobs" \
        -L sanitize_smoke
  if [ "$name" = tsan ]; then
    echo "== tsan: parallel sweep + checkpoint reuse + lockstep batching =="
    "./build-$name/tests/test_sweep"
    "./build-$name/tests/test_checkpoint" \
        --gtest_filter='CheckpointCacheTest.*:CheckpointEndToEnd.*'
    "./build-$name/tests/test_batch"
  fi
}

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

if [ "$san" = faults ]; then
  echo "== fault-containment suite (taxonomy, watchdog, injection, journal) =="
  ./build/tests/test_errors
  ./build/tests/test_faults
  ./build/tests/test_journal
  ./build/tests/test_sweep
  echo "== all checks passed =="
  exit 0
fi

ctest --test-dir build --output-on-failure -j "$jobs"

echo "== audit sweep (all workloads, segmented + ideal, audit=1) =="
./build/tests/test_audit

echo "== scheduling-index differential sweep (audit=1) =="
./build/tests/test_sched_index

echo "== SoA-engine differential + exact work-counter proxy =="
./build/tests/test_iq_soa

echo "== segmented-tick substage profile (quick) =="
./build/bench/micro_components --benchmark_filter='BM_SegmentedTickSubstages' \
    --benchmark_min_time=0.01 json_out=/tmp/sciq-substages.json
grep -q '"bench": "micro_components.substages"' /tmp/sciq-substages.json

echo "== host-throughput bench (quick, unbatched + lockstep batch=3) =="
./build/bench/bench_throughput quick=1 workloads=swim,twolf
./build/bench/bench_throughput quick=1 workloads=swim,twolf batch=3

echo "== bb-cache differential + warming bench (quick) =="
./build/tests/test_bb_cache
./build/bench/micro_warm quick=1 workloads=swim,twolf

if [ "$san" = all ]; then
  run_sanitizer ubsan -DSCIQ_UBSAN=ON
  run_sanitizer asan -DSCIQ_ASAN=ON
  run_sanitizer tsan -DSCIQ_TSAN=ON
else
  case "$san" in
    ubsan) run_sanitizer ubsan -DSCIQ_UBSAN=ON ;;
    asan)  run_sanitizer asan -DSCIQ_ASAN=ON ;;
    tsan)  run_sanitizer tsan -DSCIQ_TSAN=ON ;;
  esac
fi

# Lint the shell tooling when shellcheck is available (CI always has
# it; skip with a notice on bare development machines).
if command -v shellcheck >/dev/null 2>&1; then
  echo "== shellcheck tools/*.sh =="
  shellcheck tools/*.sh
else
  echo "== shellcheck not installed; skipping shell lint =="
fi

echo "== all checks passed =="
