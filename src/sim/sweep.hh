/**
 * @file
 * Parallel design-space sweep driver.  The evaluation reproduces the
 * paper's figures by running 100+ independent simulator configurations;
 * SweepRunner executes a batch of SimConfigs on a pool of worker
 * threads while preserving the input ordering of the results, so
 * `jobs=1` and `jobs=N` emit bit-identical tables.
 *
 * Safety model: every runSim() call owns its Program, OooCore and
 * DynInstPool outright, and the simulator keeps no global mutable
 * state, so configurations are embarrassingly parallel.  The only
 * cross-thread traffic is the work-queue index and the result slots,
 * which are disjoint per job.
 *
 * Fault containment (DESIGN.md §13): a job that throws does not kill
 * the sweep.  Its exception is classified through the error taxonomy
 * into RunResult::outcome — retried with backoff first when tagged
 * transient — and the failed row still appears in every table and JSON
 * file with its error code.  With a journal attached, finished jobs
 * are persisted as they complete and a restarted sweep re-runs only
 * the failed/missing ones.
 */

#ifndef SCIQ_SIM_SWEEP_HH
#define SCIQ_SIM_SWEEP_HH

#include <cstddef>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace sciq {

class SweepRunner
{
  public:
    /** Called after each finished run (always on the calling thread
     *  for jobs<=1, under a lock otherwise): done count, total, and
     *  the just-finished result.  Jobs skipped via the journal count
     *  toward `done` but produce no callback. */
    using Progress =
        std::function<void(std::size_t, std::size_t, const RunResult &)>;

    /** Per-sweep fault-containment and resumability policy. */
    struct Options
    {
        /**
         * Append-only JSONL journal path (key: `journal=`); "" = off.
         * Existing entries whose (index, sweep key) match the submitted
         * configs and ended ok are reused instead of re-run.
         */
        std::string journal;

        /** Extra attempts for errors tagged transient. */
        unsigned maxRetries = 2;

        /** Backoff before retry k is `backoffMs << (k-1)`. */
        unsigned backoffMs = 10;

        /**
         * Directory for failure artifacts (watchdog pipeline dumps,
         * auditor state); "" = $SCIQ_ARTIFACT_DIR, or no artifacts
         * when that is unset too.  Created on first use.
         */
        std::string artifactDir;

        /**
         * Lockstep batch width (key: `batch=`): group same-workload,
         * same-warm-up jobs into units of up to this many configs and
         * advance each unit over one shared correct-path fetch stream
         * (DESIGN.md §15).  Per-config stats, sweep JSON and journal
         * records are bit-identical to an unbatched run; only host
         * wall-clock fields differ.  0/1 = off (the per-job path runs
         * unchanged).
         */
        unsigned batch = 1;

        Progress progress;
    };

    /** @param jobs worker threads; 0 = std::thread::hardware_concurrency. */
    explicit SweepRunner(unsigned jobs = 0);

    /**
     * Run every configuration and return results in input order.  Job
     * failures are contained into RunResult::outcome; only harness
     * failures (e.g. an unwritable journal) propagate, after all
     * workers have drained.
     */
    std::vector<RunResult> run(const std::vector<SimConfig> &configs,
                               const Options &options) const;

    /** Convenience overload with default containment options. */
    std::vector<RunResult> run(const std::vector<SimConfig> &configs,
                               const Progress &progress = nullptr) const;

    unsigned jobs() const { return jobs_; }

  private:
    unsigned jobs_;
};

/**
 * Emit results as a machine-readable JSON array (one object per run,
 * every RunResult field including the job outcome) for trajectory
 * tracking and plotting.
 */
void writeResultsJson(std::ostream &os,
                      const std::vector<RunResult> &results);

/** writeResultsJson to a file path; returns false on I/O failure. */
bool writeResultsJson(const std::string &path,
                      const std::vector<RunResult> &results);

} // namespace sciq

#endif // SCIQ_SIM_SWEEP_HH
