/**
 * @file
 * The idealised monolithic instruction queue: single-cycle wakeup and
 * select over the entire window, any size.  This is the paper's upper
 * bound ("ideal" curves in Figures 2 and 3); a real implementation of
 * this structure at 512 entries would not meet cycle time.
 */

#ifndef SCIQ_IQ_IDEAL_IQ_HH
#define SCIQ_IQ_IDEAL_IQ_HH

#include <vector>

#include "iq/iq_base.hh"

namespace sciq {

class IdealIq : public IqBase
{
  public:
    IdealIq(const IqParams &params, const Scoreboard &scoreboard,
            const FuPool &fu);

    bool canInsert(const DynInstPtr &inst) override;
    void insert(const DynInstPtr &inst, Cycle cycle) override;
    void issueSelect(Cycle cycle, const TryIssue &try_issue) override;
    void tick(Cycle cycle, bool core_busy) override;
    void squash(SeqNum youngest_kept) override;
    std::size_t occupancy() const override { return insts.size(); }

  private:
    /** Held in dispatch (= program) order, so oldest-first is a scan. */
    std::vector<DynInstPtr> insts;
};

} // namespace sciq

#endif // SCIQ_IQ_IDEAL_IQ_HH
