# Empty dependencies file for fig3_size_sweep.
# This may be replaced when dependencies are built.
