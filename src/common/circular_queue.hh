/**
 * @file
 * Fixed-capacity circular FIFO used for the ROB, LSQ and pipeline
 * latches.  Supports removal from the tail (squash) as well as the head
 * (commit), which std::deque would allow but without the capacity bound
 * these structures model.
 */

#ifndef SCIQ_COMMON_CIRCULAR_QUEUE_HH
#define SCIQ_COMMON_CIRCULAR_QUEUE_HH

#include <cstddef>
#include <vector>

#include "logging.hh"

namespace sciq {

template <typename T>
class CircularQueue
{
  public:
    explicit CircularQueue(std::size_t capacity = 0)
        : buf(capacity ? capacity : 1), cap(capacity)
    {
    }

    void
    setCapacity(std::size_t capacity)
    {
        SCIQ_ASSERT(empty(), "resizing a non-empty queue");
        cap = capacity;
        buf.assign(capacity ? capacity : 1, T{});
        head = 0;
        count = 0;
    }

    bool empty() const { return count == 0; }
    bool full() const { return count == cap; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return cap; }
    std::size_t freeEntries() const { return cap - count; }

    /** Append at the tail (youngest end). */
    void
    pushBack(T v)
    {
        SCIQ_ASSERT(!full(), "push to full queue");
        buf[(head + count) % buf.size()] = std::move(v);
        ++count;
    }

    /** Remove from the head (oldest end). */
    T
    popFront()
    {
        SCIQ_ASSERT(!empty(), "pop from empty queue");
        T v = std::move(buf[head]);
        head = (head + 1) % buf.size();
        --count;
        return v;
    }

    /** Remove from the tail (youngest end) - used when squashing. */
    T
    popBack()
    {
        SCIQ_ASSERT(!empty(), "popBack from empty queue");
        --count;
        return std::move(buf[(head + count) % buf.size()]);
    }

    T &front() { return at(0); }
    const T &front() const { return at(0); }
    T &back() { return at(count - 1); }
    const T &back() const { return at(count - 1); }

    /** Element i positions from the head (0 = oldest). */
    T &
    at(std::size_t i)
    {
        SCIQ_ASSERT(i < count, "index %zu out of range (size %zu)", i,
                    count);
        return buf[(head + i) % buf.size()];
    }

    const T &
    at(std::size_t i) const
    {
        SCIQ_ASSERT(i < count, "index %zu out of range (size %zu)", i,
                    count);
        return buf[(head + i) % buf.size()];
    }

    /** Unchecked element access for bounds-established hot loops. */
    T &operator[](std::size_t i) { return buf[(head + i) % buf.size()]; }
    const T &
    operator[](std::size_t i) const
    {
        return buf[(head + i) % buf.size()];
    }

    void
    clear()
    {
        // Resetting the live slots (not just the indices) matters for
        // owning element types: a CircularQueue<DynInstPtr> that only
        // forgot its indices would pin every DynInstPool slot it ever
        // held until the same position was overwritten again.
        for (std::size_t i = 0; i < count; ++i)
            buf[(head + i) % buf.size()] = T{};
        head = 0;
        count = 0;
    }

  private:
    std::vector<T> buf;
    std::size_t cap = 0;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace sciq

#endif // SCIQ_COMMON_CIRCULAR_QUEUE_HH
