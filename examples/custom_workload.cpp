/**
 * @file
 * Shows how to bring your own workload to the simulator: write SRV
 * assembly (or use the AsmBuilder API), validate it on the functional
 * core, then measure it across instruction-queue designs.
 *
 * The example program is a classic latency-tolerance litmus test: a
 * linked-list pointer chase (serial misses, window can't help) fused
 * with an independent streaming sum (window helps a lot).  The
 * segmented IQ must keep the stream flowing around the stalled chase
 * chain - precisely the scheduling flexibility of paper section 3.
 *
 * Usage: custom_workload [iq=segmented] [iq_size=256] ...
 */

#include <cstdio>
#include <iostream>

#include "common/config.hh"
#include "common/random.hh"
#include "isa/asm_builder.hh"
#include "isa/disassembler.hh"
#include "isa/functional_core.hh"
#include "sim/simulator.hh"
#include "workload/kernel_util.hh"

using namespace sciq;

namespace {

Program
buildChaseAndStream(unsigned nodes, unsigned steps)
{
    AsmBuilder b;

    // A shuffled ring of 16-byte nodes for the pointer chase.
    const Addr ring = 0x100000;
    Random rng(7);
    std::vector<std::uint64_t> order(nodes);
    for (unsigned i = 0; i < nodes; ++i)
        order[i] = i;
    for (unsigned i = nodes - 1; i > 0; --i)
        std::swap(order[i], order[rng.below(i + 1)]);
    std::vector<std::uint64_t> image(nodes * 2);
    for (unsigned k = 0; k < nodes; ++k) {
        image[order[k] * 2] = ring + order[(k + 1) % nodes] * 16;
        image[order[k] * 2 + 1] = k;
    }
    b.words(ring, image);

    // A large array for the independent stream.
    const Addr stream = 0x4000000;
    b.doubles(stream, kernel::randomDoubles(steps * 48 + 64, 11));

    const RegIndex chase = intReg(11), p_s = intReg(12);
    const RegIndex count = intReg(13), v = intReg(14);

    b.la(chase, ring);
    b.la(p_s, stream);
    b.li(count, steps);
    for (int lane = 0; lane < 4; ++lane)
        b.fsub(fpReg(4 + lane), fpReg(4 + lane), fpReg(4 + lane));

    b.label("loop");
    // Serial chase: one dependent (usually missing) load per iteration.
    b.ld(chase, chase, 0);
    b.ld(v, chase, 8);
    b.xor_(intReg(10), intReg(10), v);
    // A wide burst of independent stream work per chase step: whether
    // it fits the instruction window decides the achieved IPC.
    for (int group = 0; group < 12; ++group) {
        for (int lane = 0; lane < 4; ++lane) {
            const std::int64_t off = 8 * (group * 4 + lane);
            b.fld(fpReg(8 + lane), p_s, off);
            b.fadd(fpReg(4 + lane), fpReg(4 + lane), fpReg(8 + lane));
        }
    }
    b.addi(p_s, p_s, 48 * 8);
    b.addi(count, count, -1);
    b.bne(count, intReg(0), "loop");

    b.fadd(fpReg(4), fpReg(4), fpReg(5));
    b.fadd(fpReg(6), fpReg(6), fpReg(7));
    b.fadd(fpReg(4), fpReg(4), fpReg(6));
    b.fcvtfi(intReg(9), fpReg(4));
    b.xor_(intReg(10), intReg(10), intReg(9));
    b.halt();
    return b.build("chase+stream");
}

} // namespace

int
main(int argc, char **argv)
{
    ConfigMap args = ConfigMap::fromArgs(argc, argv);
    const unsigned steps =
        static_cast<unsigned>(args.getInt("steps", 4000));

    Program prog = buildChaseAndStream(/*nodes=*/4096, steps);
    std::printf("Program: %zu static instructions; first lines:\n",
                prog.size());
    std::cout << disassemble(prog).substr(0, 400) << "  ...\n\n";

    // 1. Functional check first - is the program even correct?
    FunctionalCore golden(prog);
    golden.run(50'000'000);
    if (!golden.halted()) {
        std::fprintf(stderr, "program did not halt!\n");
        return 1;
    }
    std::printf("functional run: %llu instructions, checksum r10 = "
                "%#llx\n\n",
                static_cast<unsigned long long>(golden.instCount()),
                static_cast<unsigned long long>(golden.reg(intReg(10))));

    // 2. Timing across IQ designs.
    std::printf("%-26s %8s %10s\n", "design", "ipc", "validated");
    for (auto [label, make] :
         std::initializer_list<
             std::pair<const char *, SimConfig>>{
             {"ideal 32 (conventional)", makeIdealConfig(32, "swim")},
             {"ideal 512", makeIdealConfig(512, "swim")},
             {"segmented 512 comb/128",
              makeSegmentedConfig(512, 128, true, true, "swim")},
             {"prescheduled 704", makePrescheduledConfig(704, "swim")}}) {
        // Swap in our custom program via a dedicated core.
        make.core.finalize();
        OooCore core(prog, make.core);
        core.run(~0ULL, 50'000'000);
        bool ok = core.halted() &&
                  core.commitRegs()[intReg(10)] == golden.reg(intReg(10));
        std::printf("%-26s %8.3f %10s\n", label, core.ipc(),
                    ok ? "yes" : "NO");
    }

    std::printf("\nThe serial chase bounds every design; the question "
                "is how much of the independent\nstream each queue "
                "sustains around it.\n");
    return 0;
}
