/** @file Unit tests for common/intmath.hh bit utilities. */

#include <gtest/gtest.h>

#include "common/intmath.hh"

using namespace sciq;

TEST(IntMath, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 63));
    EXPECT_FALSE(isPowerOf2((1ULL << 63) + 1));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

TEST(IntMath, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(IntMath, RoundUpDown)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundDown(63, 64), 0u);
    EXPECT_EQ(roundDown(64, 64), 64u);
    EXPECT_EQ(roundDown(127, 64), 64u);
}

TEST(IntMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
}

TEST(IntMath, Bits)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xff00, 7, 0), 0u);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
    EXPECT_EQ(bits(0b1010, 3, 1), 0b101u);
}

TEST(IntMath, InsertBits)
{
    EXPECT_EQ(insertBits(0, 7, 4, 0xf), 0xf0u);
    EXPECT_EQ(insertBits(0xff, 7, 4, 0), 0x0fu);
    EXPECT_EQ(insertBits(0, 63, 0, ~0ULL), ~0ULL);
    // Values wider than the field are masked.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1ff), 0xfu);
}

TEST(IntMath, SignExtend)
{
    EXPECT_EQ(signExtend(0x1fff, 14), 0x1fff);
    EXPECT_EQ(signExtend(0x2000, 14), -8192);
    EXPECT_EQ(signExtend(0x3fff, 14), -1);
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0, 14), 0);
}

class SignExtendRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SignExtendRoundTrip, PreservesInRangeValues)
{
    const unsigned bit_count = 14;
    const std::int64_t v = GetParam();
    auto u = static_cast<std::uint64_t>(v) & ((1ULL << bit_count) - 1);
    EXPECT_EQ(signExtend(u, bit_count), v);
}

INSTANTIATE_TEST_SUITE_P(Imm14Range, SignExtendRoundTrip,
                         ::testing::Values(-8192, -8191, -1000, -1, 0, 1,
                                           42, 1000, 8190, 8191));
