file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_validation.dir/test_fuzz_validation.cc.o"
  "CMakeFiles/test_fuzz_validation.dir/test_fuzz_validation.cc.o.d"
  "test_fuzz_validation"
  "test_fuzz_validation.pdb"
  "test_fuzz_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
