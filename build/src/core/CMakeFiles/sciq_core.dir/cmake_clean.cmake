file(REMOVE_RECURSE
  "CMakeFiles/sciq_core.dir/fu_pool.cc.o"
  "CMakeFiles/sciq_core.dir/fu_pool.cc.o.d"
  "CMakeFiles/sciq_core.dir/lsq.cc.o"
  "CMakeFiles/sciq_core.dir/lsq.cc.o.d"
  "CMakeFiles/sciq_core.dir/ooo_core.cc.o"
  "CMakeFiles/sciq_core.dir/ooo_core.cc.o.d"
  "libsciq_core.a"
  "libsciq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
