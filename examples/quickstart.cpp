/**
 * @file
 * Quickstart: assemble a small program, run it on the segmented
 * dependence-chain IQ, and print the headline statistics.  Mirrors the
 * paper's Figure 1 walkthrough: a load-headed chain of dependent
 * instructions scheduled across queue segments.
 *
 * Usage: quickstart [key=value ...]   e.g. quickstart iq=ideal iq_size=32
 */

#include <cstdio>
#include <iostream>

#include "common/config.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "sim/simulator.hh"

using namespace sciq;

namespace {

// A miniature pointer-chase-plus-arithmetic loop: each iteration's load
// heads a dependence chain (paper Figure 1 territory).
const char *kSource = R"(
    .base 0x1000
    .doubles 0x20000 1.5 2.5 3.5 4.5
    # r11 = data pointer, r13 = loop count, f4 = accumulator
    lui  r11, 8          # r11 = 8 << 14 = 0x20000
    addi r13, r0, 1000
    fsub f4, f4, f4
loop:
    fld  f1, 0(r11)      # chain head (variable latency)
    fmul f2, f1, f1      # chain member, +4 predicted
    fadd f3, f2, f1      # chain member
    fadd f4, f4, f3      # accumulate
    addi r13, r13, -1
    bne  r13, r0, loop
    fcvtfi r9, f4
    xor  r10, r10, r9
    halt
)";

} // namespace

int
main(int argc, char **argv)
{
    ConfigMap overrides = ConfigMap::fromArgs(argc, argv);

    // --- 1. A hand-written program through the text assembler --------
    Program prog = assemble(kSource, "quickstart");
    std::cout << "Assembled " << prog.size() << " instructions:\n"
              << disassemble(prog).substr(0, 512) << "  ...\n\n";

    // --- 2. The full evaluation workloads through the simulator ------
    SimConfig cfg = makeSegmentedConfig(/*iq_size=*/256, /*chains=*/128,
                                        /*hmp=*/true, /*lrp=*/true,
                                        /*workload=*/"equake");
    cfg.wl.iterations = 2048;
    cfg.apply(overrides);

    cfg.printParameters(std::cout);
    std::cout << '\n';

    RunResult r = runSim(cfg);
    printResultHeader(std::cout);
    printResultRow(std::cout, r);

    std::cout << "\nDetail:\n"
              << "  L1D miss rate (incl. delayed hits): "
              << 100.0 * r.l1dMissRate << "%\n"
              << "  branch mispredict rate: "
              << 100.0 * r.branchMispredictRate << "%\n";
    if (cfg.core.iqKind == IqKind::Segmented) {
        std::cout << "  chains in use (avg/peak): " << r.avgChains << " / "
                  << r.peakChains << "\n"
                  << "  ready insts in segment 0 (avg): " << r.seg0ReadyAvg
                  << "\n";
    }
    std::cout << "  state validated against functional model: "
              << (r.validated ? "yes" : "NO") << "\n";
    return r.validated ? 0 : 1;
}
