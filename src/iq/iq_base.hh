/**
 * @file
 * Common interface for the four instruction-queue designs compared in
 * the paper: the ideal monolithic IQ, our segmented dependence-chain
 * IQ, Michaud/Seznec prescheduling, and Palacharla-style FIFOs.
 */

#ifndef SCIQ_IQ_IQ_BASE_HH
#define SCIQ_IQ_IQ_BASE_HH

#include <array>
#include <functional>
#include <iosfwd>

#include "common/stats.hh"
#include "core/dyn_inst.hh"
#include "core/fu_pool.hh"
#include "core/rename.hh"

namespace sciq {

class HitMissPredictor;
class LeftRightPredictor;

/** Parameters shared by (and specific to) the IQ designs. */
struct IqParams
{
    unsigned numEntries = 512;
    unsigned issueWidth = 8;

    // Segmented IQ (paper sections 3-4).
    unsigned segmentSize = 32;
    int maxChains = -1;            ///< -1 = unlimited chain wires
    bool useHmp = false;           ///< hit/miss predictor (4.4)
    bool useLrp = false;           ///< left/right operand predictor (4.3)
    bool enablePushdown = true;    ///< full-segment pushdown (4.1)
    bool enableBypass = true;      ///< empty-segment dispatch bypass (4.2)
    unsigned predictedLoadLatency = 4;  ///< agen issue -> dependent ready

    /**
     * Dynamic segment resizing (paper section 7, future work): gate
     * whole segments off when occupancy is low, re-enabling them under
     * pressure.  Dispatch is confined to the active segments; the
     * energy proxy statistics expose the gated fraction.
     */
    bool dynamicResize = false;
    unsigned resizeInterval = 256;       ///< cycles between decisions
    double resizeGrowOcc = 0.75;         ///< grow when occ/active above
    double resizeShrinkOcc = 0.40;       ///< shrink when occ/smaller below

    // Prescheduling IQ (Michaud & Seznec).
    unsigned preschedLineWidth = 12;
    unsigned issueBufferSize = 32;

    // FIFO IQ (Palacharla et al.).
    unsigned numFifos = 16;
    unsigned fifoDepth = 32;

    /**
     * Test-only fault injection: let promotion ignore the previous-cycle
     * free-entry bound (section 3.1) so the invariant auditor's negative
     * tests can prove a broken bound is caught.  Never set in real runs.
     */
    bool auditInjectOverPromote = false;

    /**
     * Segmented IQ only: run the data-oriented (structure-of-arrays)
     * per-cycle engine (DESIGN.md section 16).  `false` selects the
     * original object-per-entry engine, kept as the bit-identical
     * differential reference (`iq_soa=0`, mirroring `bb_cache=0`).
     */
    bool soaLayout = true;
};

class IqBase
{
  public:
    /**
     * Issue acceptor supplied by the core: returns true (and starts
     * execution) if a function unit is available for the instruction.
     */
    using TryIssue = std::function<bool(const DynInstPtr &)>;

    IqBase(const IqParams &params, const Scoreboard &scoreboard,
           const FuPool &fu, const std::string &stat_name);
    virtual ~IqBase() = default;

    IqBase(const IqBase &) = delete;
    IqBase &operator=(const IqBase &) = delete;

    /** Room (and chain resources) for this instruction right now? */
    virtual bool canInsert(const DynInstPtr &inst) = 0;

    /** Dispatch one instruction into the queue. */
    virtual void insert(const DynInstPtr &inst, Cycle cycle) = 0;

    /**
     * Select up to issueWidth ready instructions (oldest first),
     * offering each to `try_issue`; rejected instructions stay queued.
     */
    virtual void issueSelect(Cycle cycle, const TryIssue &try_issue) = 0;

    /**
     * Per-cycle bookkeeping run *after* the issue stage: segment
     * promotion, scheduling-array shifting, deadlock detection.
     * @param core_busy true if any instruction is executing or any
     *        memory access is in flight (deadlock detection input).
     */
    virtual void tick(Cycle cycle, bool core_busy) = 0;

    /** A load's L1 lookup missed: suspend its chain (segmented only). */
    virtual void onLoadMiss(const DynInstPtr &, Cycle) {}

    /** A load's data returned: resume its chain (segmented only). */
    virtual void onLoadComplete(const DynInstPtr &, Cycle) {}

    /** An instruction wrote back: chains may be deallocated. */
    virtual void onWriteback(const DynInstPtr &, Cycle) {}

    /**
     * A physical register just became ready in the scoreboard (load
     * completion, writeback, or squash undo).  Designs that keep a
     * ready-event index use it to wake waiters instead of re-polling
     * operands every cycle.
     */
    virtual void onRegReady(RegIndex) {}

    /** An instruction committed: recovery logs may be pruned. */
    virtual void onCommit(const DynInstPtr &) {}

    /**
     * Called youngest-first for every squashed instruction (whether it
     * is still queued, executing, or already completed), before the
     * bulk squash() call.  Designs use it to undo per-instruction
     * dispatch side effects (table entries, chain allocations).
     */
    virtual void onSquashInst(const DynInstPtr &) {}

    /** Remove every instruction younger than `youngest_kept`. */
    virtual void squash(SeqNum youngest_kept) = 0;

    virtual std::size_t occupancy() const = 0;
    virtual bool empty() const { return occupancy() == 0; }

    /**
     * Append a human-readable dump of internal scheduler state to `os`
     * (the watchdog embeds it in DeadlockError diagnostics).  The base
     * implementation prints nothing; designs with interesting state
     * (per-segment chains) override.
     */
    virtual void dumpState(std::ostream &) const {}

    /** Extra dispatch pipeline stages this design needs (paper: 1). */
    virtual unsigned extraDispatchCycles() const { return 0; }

    /**
     * Enable the per-cycle bookkeeping the invariant auditor reads
     * (promotion counts, free-entry snapshots).  A no-op for designs
     * with nothing to track.
     */
    virtual void setAuditTracking(bool) {}

    /**
     * The source registers that gate IQ issue.  Stores wait only on
     * their address operand in the queue; store data is checked by the
     * LSQ (paper section 5).
     */
    static std::array<RegIndex, 2>
    iqSources(const DynInst &inst)
    {
        std::array<RegIndex, 2> s = inst.physSrc;
        if (inst.isStore())
            s[1] = kInvalidReg;
        return s;
    }

    /** All IQ-gating sources ready per the scoreboard? */
    bool
    operandsReady(const DynInst &inst) const
    {
        auto s = iqSources(inst);
        return scoreboard.isReady(s[0]) && scoreboard.isReady(s[1]);
    }

    stats::Group &statGroup() { return statsGroup; }

    // Common statistics.
    stats::Scalar instsInserted;
    stats::Scalar instsIssued;
    stats::Scalar dispatchStallsFull;
    stats::Average occupancyAvg;

  protected:
    IqParams params;
    const Scoreboard &scoreboard;
    const FuPool &fu;
    stats::Group statsGroup;
};

} // namespace sciq

#endif // SCIQ_IQ_IQ_BASE_HH
