/**
 * @file
 * vortex-like kernel: linked-structure database traversal.
 *
 * Two interleaved pointer-chasing rings over a footprint slightly
 * larger than the L1, with highly predictable branches.  Per the
 * paper, vortex actively uses only a modest slice of a big queue, so
 * it gains from 32->128 entries and then flattens; its low chain
 * demand makes it insensitive to the chain-wire budget.
 */

#include "workload/kernel_util.hh"
#include "workload/workloads.hh"

namespace sciq {

using namespace kernel;

namespace {

/** Lay out one shuffled ring of 32-byte nodes; returns the image. */
std::vector<std::uint64_t>
buildRing(Addr base, std::uint64_t nodes, std::uint64_t seed)
{
    Random rng(seed);
    std::vector<std::uint64_t> order(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i)
        order[i] = i;
    for (std::uint64_t i = nodes - 1; i > 0; --i)
        std::swap(order[i], order[rng.below(i + 1)]);

    std::vector<std::uint64_t> image(nodes * 4);
    for (std::uint64_t k = 0; k < nodes; ++k) {
        const std::uint64_t cur = order[k];
        const std::uint64_t nxt = order[(k + 1) % nodes];
        image[cur * 4 + 0] = base + nxt * 32;  // next pointer
        image[cur * 4 + 1] = rng.next() & 0xffff;
        image[cur * 4 + 2] = rng.next() & 0xffff;
        image[cur * 4 + 3] = rng.next() & 0xffff;
    }
    return image;
}

} // namespace

Program
buildVortex(const WorkloadParams &params)
{
    const std::uint64_t nodes = scaled(768, params.scale, 2);  // 24 KB/ring
    const std::uint64_t iters =
        params.iterations ? params.iterations : 24576;

    const Addr ring0 = dataBase(0);
    const Addr ring1 = dataBase(1);

    AsmBuilder b;
    b.words(ring0, buildRing(ring0, nodes, params.seed));
    b.words(ring1, buildRing(ring1, nodes, params.seed + 9));

    const RegIndex p0 = intReg(11), p1 = intReg(12);
    const RegIndex count = intReg(13);
    const RegIndex a0 = intReg(14), a1 = intReg(15);
    const RegIndex v0 = intReg(16), v1 = intReg(17), v2 = intReg(18);
    const RegIndex w0 = intReg(19), w1 = intReg(20), w2 = intReg(21);
    const RegIndex acc0 = intReg(22), acc1 = intReg(23);

    b.la(p0, ring0).la(p1, ring1);
    b.li(count, static_cast<std::int64_t>(iters));
    b.addi(acc0, intReg(0), 0);
    b.addi(acc1, intReg(0), 0);

    b.label("loop");
    // Ring 0 step: serial next-pointer chase plus field work.
    b.ld(a0, p0, 0);
    b.ld(v0, p0, 8);
    b.ld(v1, p0, 16);
    b.ld(v2, p0, 24);
    b.add(v0, v0, v1);
    b.add(v0, v0, v2);
    b.add(acc0, acc0, v0);
    b.mov(p0, a0);
    // Ring 1 step, independent of ring 0.
    b.ld(a1, p1, 0);
    b.ld(w0, p1, 8);
    b.ld(w1, p1, 16);
    b.ld(w2, p1, 24);
    b.add(w0, w0, w1);
    b.add(w0, w0, w2);
    b.add(acc1, acc1, w0);
    b.mov(p1, a1);

    b.addi(count, count, -1);
    b.bne(count, intReg(0), "loop");

    b.add(acc0, acc0, acc1);
    epilogueInt(b, acc0);
    return b.build("vortex");
}

} // namespace sciq
