/** @file Tests for the hit/miss and left/right operand predictors. */

#include <gtest/gtest.h>

#include "branch/hit_miss_predictor.hh"
#include "branch/left_right_predictor.hh"

using namespace sciq;

TEST(HitMissPredictor, RequiresFourteenConsecutiveHits)
{
    // Paper 4.4: 4-bit counters, predict hit only when counter > 13.
    HitMissPredictor hmp(64);
    const Addr pc = 0x1000;
    for (int i = 0; i < 14; ++i) {
        EXPECT_FALSE(hmp.peekHit(pc)) << "after " << i << " hits";
        hmp.update(pc, true);
    }
    EXPECT_TRUE(hmp.peekHit(pc));
}

TEST(HitMissPredictor, ClearsToZeroOnMiss)
{
    HitMissPredictor hmp(64);
    const Addr pc = 0x2000;
    for (int i = 0; i < 20; ++i)
        hmp.update(pc, true);
    EXPECT_TRUE(hmp.peekHit(pc));
    hmp.update(pc, false);
    EXPECT_FALSE(hmp.peekHit(pc));
    // Needs the full run of hits again.
    for (int i = 0; i < 13; ++i)
        hmp.update(pc, true);
    EXPECT_FALSE(hmp.peekHit(pc));
    hmp.update(pc, true);
    EXPECT_TRUE(hmp.peekHit(pc));
}

TEST(HitMissPredictor, PeekHasNoStatSideEffects)
{
    HitMissPredictor hmp(64);
    hmp.peekHit(0x100);
    hmp.peekHit(0x104);
    EXPECT_EQ(hmp.predictHitCount.value(), 0.0);
    EXPECT_EQ(hmp.predictMissCount.value(), 0.0);
    hmp.predictHit(0x100);
    EXPECT_EQ(hmp.predictMissCount.value(), 1.0);
}

TEST(HitMissPredictor, AccuracyAndCoverageMath)
{
    HitMissPredictor hmp(64);
    // 3 predicted hits of which 2 correct; 4 actual hits total.
    hmp.recordOutcome(true, true);
    hmp.recordOutcome(true, true);
    hmp.recordOutcome(true, false);
    hmp.recordOutcome(false, true);
    hmp.recordOutcome(false, true);
    hmp.predictHitCount.set(3);
    EXPECT_DOUBLE_EQ(hmp.hitAccuracy(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(hmp.hitCoverage(), 2.0 / 4.0);
}

TEST(HitMissPredictor, HighConfidenceOnSteadyHits)
{
    // Property: a PC that always hits is eventually predicted hit with
    // perfect accuracy; one that misses 1-in-8 is never predicted hit
    // for the miss-adjacent window.
    HitMissPredictor hmp(1024);
    const Addr steady = 0x100, flaky = 0x200;
    int steady_predicted = 0;
    for (int i = 0; i < 200; ++i) {
        if (hmp.peekHit(steady))
            ++steady_predicted;
        hmp.update(steady, true);
        bool hit = (i % 8) != 7;
        EXPECT_FALSE(hmp.peekHit(flaky) && !hit);
        hmp.update(flaky, hit);
    }
    EXPECT_GT(steady_predicted, 180);
    EXPECT_FALSE(hmp.peekHit(flaky));  // counter keeps resetting
}

TEST(LeftRightPredictor, LearnsConsistentCriticalOperand)
{
    LeftRightPredictor lrp(64);
    const Addr pc = 0x1000;
    for (int i = 0; i < 8; ++i)
        lrp.update(pc, true);  // left always later
    EXPECT_TRUE(lrp.peekLeftCritical(pc));
    for (int i = 0; i < 8; ++i)
        lrp.update(pc, false);
    EXPECT_FALSE(lrp.peekLeftCritical(pc));
}

TEST(LeftRightPredictor, HysteresisNeedsTwoFlips)
{
    LeftRightPredictor lrp(64);
    const Addr pc = 0x2000;
    for (int i = 0; i < 4; ++i)
        lrp.update(pc, true);
    lrp.update(pc, false);  // single contrary outcome
    EXPECT_TRUE(lrp.peekLeftCritical(pc));  // 2-bit counter holds
    lrp.update(pc, false);
    EXPECT_FALSE(lrp.peekLeftCritical(pc));
}

TEST(LeftRightPredictor, PredictCountsStats)
{
    LeftRightPredictor lrp(64);
    lrp.predictLeftCritical(0x100);
    lrp.predictLeftCritical(0x104);
    EXPECT_EQ(lrp.predicts.value(), 2.0);
    lrp.peekLeftCritical(0x100);
    EXPECT_EQ(lrp.predicts.value(), 2.0);
}

TEST(Predictors, TableSizesMustBePow2)
{
    EXPECT_THROW(HitMissPredictor(100), PanicError);
    EXPECT_THROW(LeftRightPredictor(100), PanicError);
}
