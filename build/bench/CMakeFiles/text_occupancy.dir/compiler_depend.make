# Empty compiler generated dependencies file for text_occupancy.
# This may be replaced when dependencies are built.
