/**
 * @file
 * applu-like kernel: SSOR-style block sweep.
 *
 * Each 8-element block carries a serial multiply-add recurrence (the
 * lower/upper triangular solves of applu) terminated by a divide;
 * blocks are independent, so the window exposes inter-block
 * parallelism while intra-block chains exercise chain scheduling.
 */

#include "workload/kernel_util.hh"
#include "workload/workloads.hh"

namespace sciq {

using namespace kernel;

Program
buildApplu(const WorkloadParams &params)
{
    const std::uint64_t n = scaled(98304, params.scale);  // 768 KB
    std::uint64_t iters = params.iterations ? params.iterations : 8192;
    if (iters > n / 8)
        iters = n / 8;

    const Addr b_base = dataBase(0);
    const Addr z_base = dataBase(1);

    AsmBuilder b;
    b.doubles(b_base, randomDoubles(n, params.seed));
    b.doubles(0x9000, {0.8125, 3.5});

    const RegIndex p_b = intReg(11), p_z = intReg(12), count = intReg(13);
    const RegIndex tmp = intReg(14);
    const RegIndex a = fpReg(1), c = fpReg(2);
    const RegIndex acc = fpReg(3), z = fpReg(4), zero = fpReg(5);

    b.la(p_b, b_base).la(p_z, z_base);
    b.li(count, static_cast<std::int64_t>(iters));
    b.li(tmp, 0x9000);
    b.fld(a, tmp, 0).fld(c, tmp, 8);
    b.fsub(acc, acc, acc);
    b.fsub(zero, zero, zero);

    b.label("loop");
    b.fmov(z, zero);  // reset the block recurrence (no loop-carried dep)
    for (unsigned k = 0; k < 8; ++k) {
        const RegIndex bk = fpReg(8 + k);
        b.fld(bk, p_b, 8 * static_cast<std::int64_t>(k));
        b.fmul(z, z, a);      // z = z*a + b[k]  (serial within block)
        b.fadd(z, z, bk);
    }
    b.fdiv(z, z, c);          // block normalisation (long-latency op)
    b.fst(z, p_z, 0);
    b.fadd(acc, acc, z);
    b.addi(p_b, p_b, 64);
    b.addi(p_z, p_z, 8);
    b.addi(count, count, -1);
    b.bne(count, intReg(0), "loop");

    epilogueFp(b, acc);
    return b.build("applu");
}

} // namespace sciq
