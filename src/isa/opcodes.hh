/**
 * @file
 * Opcode and operation-class definitions for the SRV ISA.
 *
 * SRV ("Simple RISC for Validation") is the custom 64-bit ISA this
 * reproduction uses in place of Alpha.  It has 32 integer registers
 * (r0 hardwired to zero) and 32 floating-point registers, mapped onto a
 * unified architectural register space of 64 indices so that rename and
 * dependence tracking can be register-file agnostic.
 */

#ifndef SCIQ_ISA_OPCODES_HH
#define SCIQ_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

#include "common/types.hh"

namespace sciq {

/**
 * Operation class: selects the function-unit pool and predicted latency.
 * These mirror Table 1 of the paper.
 */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< 1-cycle integer ops (also branches and address gen)
    IntMul,   ///< 3-cycle integer multiply
    IntDiv,   ///< 20-cycle integer divide (unpipelined)
    FpAdd,    ///< 2-cycle FP add/sub/compare/convert
    FpMul,    ///< 4-cycle FP multiply
    FpDiv,    ///< 12-cycle FP divide (unpipelined)
    FpSqrt,   ///< 24-cycle FP square root (unpipelined)
    MemRead,  ///< load: address generation in IQ, access via LSQ
    MemWrite, ///< store: address generation in IQ, access at commit
    Branch,   ///< direct conditional/unconditional control flow
    Jump,     ///< indirect control flow (JR/JALR)
    Nop,      ///< no-op
    Halt,     ///< terminate the program
    NumClasses
};

/** Instruction encoding format (used by the codec and the assembler). */
enum class Format : std::uint8_t
{
    R,  ///< rd, rs1, rs2
    I,  ///< rd, rs1, imm
    M,  ///< rd/rs2, imm(rs1)    (loads and stores)
    B,  ///< rs1, rs2, imm       (conditional branches)
    J,  ///< rd, imm             (JAL) or imm (J)
    JR, ///< rd, rs1             (indirect jumps)
    N   ///< no operands         (NOP, HALT)
};

/** All SRV opcodes. */
enum class Opcode : std::uint8_t
{
    // Integer register-register ALU.
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // Integer register-immediate ALU.
    ADDI, ANDI, ORI, XORI, SLTI, SLLI, SRLI, SRAI, LUI,
    // Integer multiply / divide.
    MUL, MULH, DIV, REM,
    // Floating point (operands in f-registers unless noted).
    FADD, FSUB, FMUL, FDIV, FSQRT, FMIN, FMAX, FNEG, FABS, FMOV,
    FCMPEQ, FCMPLT, FCMPLE,  // rd is an integer register (0/1 result)
    FCVTIF,                  // int reg -> fp reg
    FCVTFI,                  // fp reg -> int reg (truncating)
    // Memory.
    LD,   // load 64-bit into integer register
    LW,   // load 32-bit sign-extended into integer register
    FLD,  // load 64-bit into fp register
    ST,   // store 64-bit from integer register
    SW,   // store low 32 bits from integer register
    FST,  // store 64-bit from fp register
    // Control.
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    J, JAL, JR, JALR,
    // Misc.
    NOP, HALT,
    NumOpcodes
};

/** Static properties of one opcode. */
struct OpInfo
{
    std::string_view mnemonic;
    OpClass opClass;
    Format format;
};

/** Number of opcodes (for parameterised tests). */
constexpr unsigned kNumOpcodes =
    static_cast<unsigned>(Opcode::NumOpcodes);

namespace detail {

/**
 * Static opcode properties, indexed by Opcode.  Lives in the header so
 * opInfo() inlines to a single table load: every per-instruction query
 * on the simulator's hot paths (source/destination registers, loads vs
 * stores, FU class) goes through it.
 */
constexpr OpInfo kOpTable[] = {
    {"add", OpClass::IntAlu, Format::R},
    {"sub", OpClass::IntAlu, Format::R},
    {"and", OpClass::IntAlu, Format::R},
    {"or", OpClass::IntAlu, Format::R},
    {"xor", OpClass::IntAlu, Format::R},
    {"sll", OpClass::IntAlu, Format::R},
    {"srl", OpClass::IntAlu, Format::R},
    {"sra", OpClass::IntAlu, Format::R},
    {"slt", OpClass::IntAlu, Format::R},
    {"sltu", OpClass::IntAlu, Format::R},
    {"addi", OpClass::IntAlu, Format::I},
    {"andi", OpClass::IntAlu, Format::I},
    {"ori", OpClass::IntAlu, Format::I},
    {"xori", OpClass::IntAlu, Format::I},
    {"slti", OpClass::IntAlu, Format::I},
    {"slli", OpClass::IntAlu, Format::I},
    {"srli", OpClass::IntAlu, Format::I},
    {"srai", OpClass::IntAlu, Format::I},
    {"lui", OpClass::IntAlu, Format::J},
    {"mul", OpClass::IntMul, Format::R},
    {"mulh", OpClass::IntMul, Format::R},
    {"div", OpClass::IntDiv, Format::R},
    {"rem", OpClass::IntDiv, Format::R},
    {"fadd", OpClass::FpAdd, Format::R},
    {"fsub", OpClass::FpAdd, Format::R},
    {"fmul", OpClass::FpMul, Format::R},
    {"fdiv", OpClass::FpDiv, Format::R},
    {"fsqrt", OpClass::FpSqrt, Format::I},
    {"fmin", OpClass::FpAdd, Format::R},
    {"fmax", OpClass::FpAdd, Format::R},
    {"fneg", OpClass::FpAdd, Format::I},
    {"fabs", OpClass::FpAdd, Format::I},
    {"fmov", OpClass::FpAdd, Format::I},
    {"fcmpeq", OpClass::FpAdd, Format::R},
    {"fcmplt", OpClass::FpAdd, Format::R},
    {"fcmple", OpClass::FpAdd, Format::R},
    {"fcvtif", OpClass::FpAdd, Format::I},
    {"fcvtfi", OpClass::FpAdd, Format::I},
    {"ld", OpClass::MemRead, Format::M},
    {"lw", OpClass::MemRead, Format::M},
    {"fld", OpClass::MemRead, Format::M},
    {"st", OpClass::MemWrite, Format::M},
    {"sw", OpClass::MemWrite, Format::M},
    {"fst", OpClass::MemWrite, Format::M},
    {"beq", OpClass::Branch, Format::B},
    {"bne", OpClass::Branch, Format::B},
    {"blt", OpClass::Branch, Format::B},
    {"bge", OpClass::Branch, Format::B},
    {"bltu", OpClass::Branch, Format::B},
    {"bgeu", OpClass::Branch, Format::B},
    {"j", OpClass::Branch, Format::J},
    {"jal", OpClass::Branch, Format::J},
    {"jr", OpClass::Jump, Format::JR},
    {"jalr", OpClass::Jump, Format::JR},
    {"nop", OpClass::Nop, Format::N},
    {"halt", OpClass::Halt, Format::N},
};

static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) == kNumOpcodes,
              "opcode table out of sync with Opcode enum");

} // namespace detail

/** Lookup table indexed by Opcode. */
inline const OpInfo &
opInfo(Opcode op)
{
    return detail::kOpTable[static_cast<unsigned>(op)];
}

/** Total architectural registers: 32 integer + 32 floating point. */
constexpr RegIndex kNumArchRegs = 64;

/** Integer register n as an architectural index (r0 is hardwired 0). */
constexpr RegIndex intReg(unsigned n) { return static_cast<RegIndex>(n); }

/** Floating-point register n as an architectural index. */
constexpr RegIndex fpReg(unsigned n) { return static_cast<RegIndex>(32 + n); }

/** True if the architectural index names an FP register. */
constexpr bool isFpReg(RegIndex r) { return r >= 32 && r < 64; }

/** The architectural zero register. */
constexpr RegIndex kZeroReg = intReg(0);

} // namespace sciq

#endif // SCIQ_ISA_OPCODES_HH
