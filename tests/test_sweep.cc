/**
 * @file
 * SweepRunner: deterministic result ordering under parallel execution,
 * worker-count handling, fault containment, and the JSON emitter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/errors.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "sim/sweep.hh"

using namespace sciq;

namespace {

/**
 * Bit-for-bit double equality: EXPECT_EQ fails on NaN == NaN, but for
 * determinism checks an undefined rate must reproduce as the *same*
 * undefined rate.
 */
void
expectSameBits(double a, double b, const char *field, std::size_t i)
{
    std::uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    EXPECT_EQ(ab, bb) << field << " differs (" << a << " vs " << b
                      << ") config " << i;
}

std::vector<SimConfig>
smallConfigSet()
{
    std::vector<SimConfig> cfgs;
    for (const auto &wl : {"swim", "gcc"}) {
        for (unsigned size : {32u, 64u}) {
            SimConfig seg = makeSegmentedConfig(size, 32, true, true, wl);
            seg.wl.iterations = 200;
            cfgs.push_back(seg);
        }
        SimConfig ideal = makeIdealConfig(64, wl);
        ideal.wl.iterations = 200;
        cfgs.push_back(ideal);
    }
    return cfgs;
}

/**
 * Every architected field of RunResult, bit-for-bit.  The host-
 * performance fields (hostSeconds and the derived rates) are wall-clock
 * measurements and deliberately excluded: two identical simulations
 * never take identical host time.
 */
void
expectIdentical(const RunResult &a, const RunResult &b, std::size_t i)
{
    EXPECT_EQ(a.workload, b.workload) << "config " << i;
    EXPECT_EQ(a.iqKind, b.iqKind) << "config " << i;
    EXPECT_EQ(a.iqSize, b.iqSize) << "config " << i;
    EXPECT_EQ(a.chains, b.chains) << "config " << i;
    EXPECT_EQ(a.cycles, b.cycles) << "config " << i;
    EXPECT_EQ(a.insts, b.insts) << "config " << i;
    expectSameBits(a.ipc, b.ipc, "ipc", i);
    expectSameBits(a.avgChains, b.avgChains, "avgChains", i);
    expectSameBits(a.peakChains, b.peakChains, "peakChains", i);
    expectSameBits(a.hmpAccuracy, b.hmpAccuracy, "hmpAccuracy", i);
    expectSameBits(a.hmpCoverage, b.hmpCoverage, "hmpCoverage", i);
    expectSameBits(a.lrpMispredictRate, b.lrpMispredictRate,
                   "lrpMispredictRate", i);
    expectSameBits(a.branchMispredictRate, b.branchMispredictRate,
                   "branchMispredictRate", i);
    expectSameBits(a.iqOccupancyAvg, b.iqOccupancyAvg, "iqOccupancyAvg",
                   i);
    expectSameBits(a.seg0ReadyAvg, b.seg0ReadyAvg, "seg0ReadyAvg", i);
    expectSameBits(a.seg0OccupancyAvg, b.seg0OccupancyAvg,
                   "seg0OccupancyAvg", i);
    expectSameBits(a.deadlockCycleFrac, b.deadlockCycleFrac,
                   "deadlockCycleFrac", i);
    expectSameBits(a.twoOutstandingFrac, b.twoOutstandingFrac,
                   "twoOutstandingFrac", i);
    expectSameBits(a.headsFromLoadsFrac, b.headsFromLoadsFrac,
                   "headsFromLoadsFrac", i);
    expectSameBits(a.l1dMissRate, b.l1dMissRate, "l1dMissRate", i);
    expectSameBits(a.l1dDelayedHitFrac, b.l1dDelayedHitFrac,
                   "l1dDelayedHitFrac", i);
    expectSameBits(a.segActiveAvg, b.segActiveAvg, "segActiveAvg", i);
    expectSameBits(a.segCyclesActive, b.segCyclesActive,
                   "segCyclesActive", i);
    EXPECT_EQ(a.auditViolations, b.auditViolations) << "config " << i;
    EXPECT_EQ(a.validated, b.validated) << "config " << i;
    EXPECT_EQ(a.haltedCleanly, b.haltedCleanly) << "config " << i;
}

TEST(SweepRunner, ParallelMatchesSerialBitForBit)
{
    const std::vector<SimConfig> cfgs = smallConfigSet();

    std::vector<RunResult> serial = SweepRunner(1).run(cfgs);
    std::vector<RunResult> parallel = SweepRunner(4).run(cfgs);

    ASSERT_EQ(serial.size(), cfgs.size());
    ASSERT_EQ(parallel.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        expectIdentical(serial[i], parallel[i], i);
}

TEST(SweepRunner, PreservesInputOrder)
{
    const std::vector<SimConfig> cfgs = smallConfigSet();
    std::vector<RunResult> results = SweepRunner(4).run(cfgs);
    ASSERT_EQ(results.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        EXPECT_EQ(results[i].workload, cfgs[i].workload);
        EXPECT_EQ(results[i].iqSize, cfgs[i].core.iq.numEntries);
        EXPECT_TRUE(results[i].haltedCleanly);
        EXPECT_TRUE(results[i].validated);
        // Host-perf sampling rides along with every run.
        EXPECT_GT(results[i].hostSeconds, 0.0);
        EXPECT_GT(results[i].hostKcyclesPerSec, 0.0);
        EXPECT_GT(results[i].hostKinstsPerSec, 0.0);
    }
}

TEST(SweepRunner, MoreJobsThanConfigs)
{
    SimConfig cfg = makeSegmentedConfig(32, 16, false, false, "swim");
    cfg.wl.iterations = 100;
    std::vector<RunResult> r = SweepRunner(16).run({cfg});
    ASSERT_EQ(r.size(), 1u);
    EXPECT_TRUE(r[0].haltedCleanly);
}

TEST(SweepRunner, EmptyBatch)
{
    EXPECT_TRUE(SweepRunner(4).run({}).empty());
}

TEST(SweepRunner, DefaultJobsIsNonZero)
{
    EXPECT_GE(SweepRunner(0).jobs(), 1u);
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

TEST(SweepRunner, ProgressCallbackSeesEveryRun)
{
    const std::vector<SimConfig> cfgs = smallConfigSet();
    std::size_t calls = 0;
    std::size_t last_done = 0;
    SweepRunner(2).run(cfgs,
                       [&](std::size_t done, std::size_t total,
                           const RunResult &r) {
                           ++calls;
                           EXPECT_EQ(total, cfgs.size());
                           EXPECT_GT(done, last_done);
                           last_done = done;
                           EXPECT_FALSE(r.workload.empty());
                       });
    EXPECT_EQ(calls, cfgs.size());
}

/**
 * Regression for the lost-results bug: the old runner rethrew the first
 * worker exception and discarded every completed job's result.  Now the
 * failing job is contained into its outcome and the other N-1 results
 * must survive, bit-identical to a clean run of those same configs.
 */
TEST(SweepFaultContainment, FailedJobContainedOthersBitIdentical)
{
    std::vector<SimConfig> cfgs = smallConfigSet();
    cfgs[2].workload = "no-such-workload";

    std::vector<SimConfig> good = cfgs;
    good.erase(good.begin() + 2);
    const std::vector<RunResult> clean = SweepRunner(1).run(good);

    for (unsigned jobs : {1u, 4u}) {
        std::vector<RunResult> results = SweepRunner(jobs).run(cfgs);
        ASSERT_EQ(results.size(), cfgs.size());

        const RunResult &bad = results[2];
        EXPECT_EQ(bad.outcome.status, JobOutcome::Status::Failed);
        EXPECT_EQ(bad.outcome.code, ErrorCode::Workload);
        EXPECT_NE(bad.outcome.message.find("no-such-workload"),
                  std::string::npos);
        // Non-transient errors must not burn retries.
        EXPECT_EQ(bad.outcome.attempts, 1u);
        // Identity fields survive so the row never vanishes from tables.
        EXPECT_EQ(bad.workload, "no-such-workload");
        EXPECT_EQ(bad.iqKind, "ideal");

        std::size_t j = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (i == 2)
                continue;
            EXPECT_TRUE(results[i].outcome.ok()) << "config " << i;
            expectIdentical(clean[j], results[i], i);
            ++j;
        }
    }
}

TEST(SweepFaultContainment, FailedJobSurfacesInJson)
{
    std::vector<SimConfig> cfgs = smallConfigSet();
    cfgs.resize(2);
    cfgs[1].workload = "no-such-workload";

    std::vector<RunResult> results = SweepRunner(1).run(cfgs);
    std::ostringstream os;
    writeResultsJson(os, results);

    json::Value v = json::parse(os.str());
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v.at(std::size_t{0}).at("outcome").asString(), "ok");
    EXPECT_EQ(v.at(std::size_t{0}).at("error_code").asString(), "none");
    EXPECT_EQ(v.at(std::size_t{1}).at("outcome").asString(), "failed");
    EXPECT_EQ(v.at(std::size_t{1}).at("error_code").asString(), "workload");
    EXPECT_NE(v.at(std::size_t{1}).at("error_msg").asString().find(
                  "no-such-workload"),
              std::string::npos);
}

TEST(SweepFaultContainment, ProgressReportsContainedFailures)
{
    std::vector<SimConfig> cfgs = smallConfigSet();
    cfgs[1].workload = "no-such-workload";
    std::size_t calls = 0, failures = 0;
    SweepRunner::Options options;
    options.progress = [&](std::size_t, std::size_t,
                           const RunResult &r) {
        ++calls;
        if (!r.outcome.ok())
            ++failures;
    };
    SweepRunner(2).run(cfgs, options);
    EXPECT_EQ(calls, cfgs.size());
    EXPECT_EQ(failures, 1u);
}

TEST(SweepJson, EmitsEveryResultWithFields)
{
    SimConfig cfg = makeSegmentedConfig(32, 16, true, false, "swim");
    cfg.wl.iterations = 100;
    std::vector<RunResult> results = SweepRunner(1).run({cfg, cfg});

    std::ostringstream os;
    writeResultsJson(os, results);
    const std::string json = os.str();

    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"workload\": \"swim\""), std::string::npos);
    EXPECT_NE(json.find("\"iq_kind\": \"segmented\""), std::string::npos);
    EXPECT_NE(json.find("\"ipc\":"), std::string::npos);
    EXPECT_NE(json.find("\"halted_cleanly\": true"), std::string::npos);
    // Two result objects.
    std::size_t count = 0;
    for (std::size_t pos = json.find("\"workload\"");
         pos != std::string::npos;
         pos = json.find("\"workload\"", pos + 1)) {
        ++count;
    }
    EXPECT_EQ(count, 2u);
}

TEST(SweepJson, EscapesStrings)
{
    RunResult r;
    r.workload = "we\"ird\\wl\n";
    r.iqKind = "ideal";
    std::ostringstream os;
    writeResultsJson(os, {r});
    EXPECT_NE(os.str().find("we\\\"ird\\\\wl\\n"), std::string::npos);
}

TEST(SweepJson, RoundTripsThroughStrictParser)
{
    SimConfig cfg = makeSegmentedConfig(32, 16, true, false, "swim");
    cfg.wl.iterations = 100;
    std::vector<RunResult> results = SweepRunner(1).run({cfg});

    std::ostringstream os;
    writeResultsJson(os, results);

    json::Value v = json::parse(os.str());
    ASSERT_TRUE(v.isArray());
    ASSERT_EQ(v.size(), 1u);
    const json::Value &r = v.at(std::size_t{0});
    EXPECT_EQ(r.at("workload").asString(), "swim");
    EXPECT_EQ(r.at("iq_kind").asString(), "segmented");
    EXPECT_DOUBLE_EQ(r.at("ipc").asNumber(), results[0].ipc);
    EXPECT_EQ(r.at("cycles").asNumber(),
              static_cast<double>(results[0].cycles));
    EXPECT_TRUE(r.at("halted_cleanly").asBool());
    EXPECT_EQ(r.at("audit_violations").asNumber(), 0.0);
}

TEST(SweepJson, NonFiniteRatesEmitNull)
{
    // A hand-built result with the undefined-rate fields left at NaN
    // (and one infinity for good measure) must still produce strictly
    // parseable JSON, with those fields serialised as null.
    RunResult r;
    r.workload = "empty";
    r.iqKind = "segmented";
    r.hmpAccuracy = std::nan("");
    r.hmpCoverage = std::nan("");
    r.ipc = std::numeric_limits<double>::infinity();

    std::ostringstream os;
    writeResultsJson(os, {r});
    const std::string text = os.str();
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);

    json::Value v = json::parse(text);
    const json::Value &obj = v.at(std::size_t{0});
    EXPECT_TRUE(obj.at("hmp_accuracy").isNull());
    EXPECT_TRUE(obj.at("hmp_coverage").isNull());
    EXPECT_TRUE(obj.at("ipc").isNull());
    EXPECT_TRUE(obj.at("l1d_miss_rate").isNumber());
}

TEST(SweepJson, NoHmpRunEmitsNullAccuracy)
{
    // End-to-end regression for the original bug: with the HMP disabled
    // nothing is ever predicted, hmp_accuracy is undefined, and the old
    // emitter wrote a bare `nan` token no parser would accept.
    SimConfig cfg = makeSegmentedConfig(32, 16, false, false, "swim");
    cfg.wl.iterations = 100;
    std::vector<RunResult> results = SweepRunner(1).run({cfg});
    ASSERT_TRUE(std::isnan(results[0].hmpAccuracy));

    std::ostringstream os;
    writeResultsJson(os, results);
    json::Value v = json::parse(os.str());
    EXPECT_TRUE(v.at(std::size_t{0}).at("hmp_accuracy").isNull());
}

} // namespace
