/**
 * @file
 * Shared correct-path fetch stream for batched lockstep simulation
 * (DESIGN.md §15).
 *
 * Oracle-at-fetch execution means every correct-path instruction's
 * oracle outcome (next PC, effective address, memory value, written
 * register) is a pure function of the workload and the warm-up state —
 * it does not depend on the IQ geometry, predictor contents or cache
 * configuration of the core consuming it.  This class materialises
 * that sequence once: a demand-grown trace of decoded instructions
 * plus their oracle results, produced by replaying the program
 * functionally through the PR 6 basic-block cache.
 *
 * K cores running the same workload each hold a cursor into the stream
 * and replace their correct-path fetch-stage oracle execution with a
 * table read; wrong-path fetch (which genuinely diverges per core with
 * its private branch predictor) still executes locally on the core's
 * speculative state.  Consumed entries below every cursor's possible
 * resume point are trimmed so memory stays bounded by pipeline skew,
 * not run length.
 *
 * Single-threaded: one lockstep batch (and therefore one stream) is
 * driven by one worker thread.
 */

#ifndef SCIQ_CORE_FETCH_STREAM_HH
#define SCIQ_CORE_FETCH_STREAM_HH

#include <array>
#include <cstddef>
#include <deque>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/bb_cache.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"
#include "isa/sparse_memory.hh"

namespace sciq {

/** One correct-path instruction with its oracle-execution outcome. */
struct FetchStreamEntry
{
    Instruction inst;         ///< decoded static instruction (by value)
    Addr pc = 0;
    Addr nextPc = 0;          ///< architected successor
    Addr effAddr = 0;         ///< memory ops: effective address
    std::uint64_t memValue = 0;  ///< load result / store data
    std::uint64_t dstValue = 0;  ///< value written to dstReg
    RegIndex dstReg = kInvalidReg;  ///< register written (invalid = none)
    bool taken = false;
    bool halted = false;
};

class SharedFetchStream
{
  public:
    /**
     * Start producing from the given architectural state — the state
     * every consumer core was seeded with (entry state, or the shared
     * post-warm-up checkpoint state).
     */
    SharedFetchStream(const Program &program,
                      const std::array<std::uint64_t, kNumArchRegs> &regs,
                      const SparseMemory &memory, Addr start_pc);

    /**
     * The entry at absolute stream index `idx`, growing the stream on
     * demand.  Returns nullptr once the correct path has ended (HALT
     * executed, or fetch left the program image) before `idx`; callers
     * fall back to local execution.  `idx` must be >= base().
     */
    const FetchStreamEntry *
    entry(std::size_t idx)
    {
        SCIQ_ASSERT(idx >= base_, "fetch stream entry %zu below base %zu",
                    idx, base_);
        while (idx - base_ >= entries_.size()) {
            if (!produceOne())
                return nullptr;
        }
        return &entries_[idx - base_];
    }

    /**
     * Release entries below `floor`.  Safe floor: the minimum number of
     * committed-since-seed instructions across the attached cores — a
     * committed instruction's stream slot can never be re-read (squash
     * resume points are always younger than the commit point).
     */
    void
    trim(std::size_t floor)
    {
        while (base_ < floor && !entries_.empty()) {
            entries_.pop_front();
            ++base_;
        }
    }

    /** Absolute index of the oldest retained entry. */
    std::size_t base() const { return base_; }

    /** Total entries produced so far (absolute index of the next one). */
    std::size_t produced() const { return base_ + entries_.size(); }

  private:
    /** Execute one correct-path instruction; false when the path ends. */
    bool produceOne();

    /**
     * Direct execution context over the producer's architectural state,
     * recording which register the instruction wrote.  Stores write the
     * producer's memory immediately — in program order this is exactly
     * the store-queue-over-committed-memory view the core's fetch-time
     * oracle uses.
     */
    struct ProducerContext
    {
        std::array<std::uint64_t, kNumArchRegs> &regs;
        SparseMemory &mem;
        RegIndex wroteReg = kInvalidReg;
        std::uint64_t wroteValue = 0;

        std::uint64_t readReg(RegIndex r) { return regs[r]; }
        void
        writeReg(RegIndex r, std::uint64_t v)
        {
            regs[r] = v;
            wroteReg = r;
            wroteValue = v;
        }
        std::uint64_t readMem(Addr addr, unsigned size)
        {
            return mem.read(addr, size);
        }
        void writeMem(Addr addr, unsigned size, std::uint64_t v)
        {
            mem.write(addr, size, v);
        }
    };

    /** Owned copy so callers may pass temporaries safely. */
    Program program_;
    SparseMemory mem_;
    std::array<std::uint64_t, kNumArchRegs> regs_;
    Addr pc_;
    bool ended_ = false;

    BbCache bb_;
    BasicBlock *curBb_ = nullptr;
    std::size_t opIdx_ = 0;

    std::deque<FetchStreamEntry> entries_;
    std::size_t base_ = 0;
};

} // namespace sciq

#endif // SCIQ_CORE_FETCH_STREAM_HH
