/** @file Tests for the function-unit pool (Table 1 configuration). */

#include <gtest/gtest.h>

#include "core/fu_pool.hh"

using namespace sciq;

TEST(FuPool, Table1Latencies)
{
    FuPool fu;
    EXPECT_EQ(fu.latency(OpClass::IntAlu), 1u);
    EXPECT_EQ(fu.latency(OpClass::IntMul), 3u);
    EXPECT_EQ(fu.latency(OpClass::IntDiv), 20u);
    EXPECT_EQ(fu.latency(OpClass::FpAdd), 2u);
    EXPECT_EQ(fu.latency(OpClass::FpMul), 4u);
    EXPECT_EQ(fu.latency(OpClass::FpDiv), 12u);
    EXPECT_EQ(fu.latency(OpClass::FpSqrt), 24u);
    EXPECT_EQ(fu.latency(OpClass::Branch), 1u);
    EXPECT_EQ(fu.latency(OpClass::MemRead), 1u);  // address generation
}

TEST(FuPool, EightPipelinedUnitsPerCycle)
{
    FuPool fu;
    fu.beginCycle(1);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(fu.tryAcquire(OpClass::IntAlu, 1));
    EXPECT_FALSE(fu.tryAcquire(OpClass::IntAlu, 1));
    // Next cycle they are all free again (fully pipelined).
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(fu.tryAcquire(OpClass::IntAlu, 2));
}

TEST(FuPool, PoolsAreIndependent)
{
    FuPool fu;
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(fu.tryAcquire(OpClass::IntAlu, 1));
    EXPECT_TRUE(fu.tryAcquire(OpClass::FpAdd, 1));
    EXPECT_TRUE(fu.tryAcquire(OpClass::IntMul, 1));
}

TEST(FuPool, DividesMonopoliseUnits)
{
    FuPool fu;
    // 8 divides occupy all integer-mul units for 20 cycles.
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(fu.tryAcquire(OpClass::IntDiv, 1));
    EXPECT_FALSE(fu.tryAcquire(OpClass::IntDiv, 1));
    EXPECT_FALSE(fu.tryAcquire(OpClass::IntMul, 10));  // shared pool busy
    EXPECT_FALSE(fu.tryAcquire(OpClass::IntMul, 20));
    EXPECT_TRUE(fu.tryAcquire(OpClass::IntMul, 21));
}

TEST(FuPool, FpDivSqrtSharePoolWithFpMul)
{
    FuPool fu;
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(fu.tryAcquire(OpClass::FpSqrt, 1));
    EXPECT_FALSE(fu.tryAcquire(OpClass::FpMul, 5));
    EXPECT_TRUE(fu.tryAcquire(OpClass::FpMul, 25));
}

TEST(FuPool, MixedPipelinedAndUnpipelined)
{
    FuPool fu;
    // One divide occupies one unit; the other 7 still pipeline muls.
    EXPECT_TRUE(fu.tryAcquire(OpClass::FpDiv, 1));
    for (int i = 0; i < 7; ++i)
        EXPECT_TRUE(fu.tryAcquire(OpClass::FpMul, 1));
    EXPECT_FALSE(fu.tryAcquire(OpClass::FpMul, 1));
    // Next cycle: 7 free units (divide still busy until cycle 13).
    for (int i = 0; i < 7; ++i)
        EXPECT_TRUE(fu.tryAcquire(OpClass::FpMul, 2));
    EXPECT_FALSE(fu.tryAcquire(OpClass::FpMul, 2));
}

TEST(FuPool, CachePorts)
{
    FuPool fu;
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(fu.tryAcquirePort(3));
    EXPECT_FALSE(fu.tryAcquirePort(3));
    EXPECT_TRUE(fu.tryAcquirePort(4));
}

TEST(FuPool, StructuralStallsCounted)
{
    FuPoolParams p;
    p.intAluUnits = 1;
    FuPool fu(p);
    EXPECT_TRUE(fu.tryAcquire(OpClass::IntAlu, 1));
    EXPECT_FALSE(fu.tryAcquire(OpClass::IntAlu, 1));
    EXPECT_EQ(fu.structuralStalls.value(), 1.0);
}

TEST(FuPool, CustomLatencies)
{
    FuPoolParams p;
    p.intMulLat = 5;
    p.fpSqrtLat = 30;
    FuPool fu(p);
    EXPECT_EQ(fu.latency(OpClass::IntMul), 5u);
    EXPECT_EQ(fu.latency(OpClass::FpSqrt), 30u);
}
