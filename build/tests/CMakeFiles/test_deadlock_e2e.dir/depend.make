# Empty dependencies file for test_deadlock_e2e.
# This may be replaced when dependencies are built.
