#include "worker_proto.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/errors.hh"
#include "common/json.hh"
#include "sim/journal.hh"

namespace sciq {

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::Hello: return "hello";
      case MsgType::Welcome: return "welcome";
      case MsgType::Reject: return "reject";
      case MsgType::LeaseReq: return "lease_req";
      case MsgType::Lease: return "lease";
      case MsgType::Wait: return "wait";
      case MsgType::Drain: return "drain";
      case MsgType::Result: return "result";
    }
    return "?";
}

std::string
encodeMessage(const Message &msg)
{
    std::ostringstream os;
    os << "{\"type\":\"" << msgTypeName(msg.type) << "\"";
    switch (msg.type) {
      case MsgType::Hello:
        os << ",\"proto\":" << msg.proto << ",\"worker\":";
        json::writeString(os, msg.worker);
        break;
      case MsgType::Welcome:
        os << ",\"proto\":" << msg.proto << ",\"shard\":" << msg.shard
           << ",\"shards\":" << msg.shards << ",\"jobs\":" << msg.jobs
           << ",\"lease_ms\":" << msg.leaseMs;
        break;
      case MsgType::Reject:
        os << ",\"reason\":";
        json::writeString(os, msg.reason);
        break;
      case MsgType::LeaseReq:
      case MsgType::Drain:
        break;
      case MsgType::Wait:
        os << ",\"ms\":" << msg.waitMs;
        break;
      case MsgType::Lease:
        os << ",\"index\":" << msg.index << ",\"key\":";
        json::writeString(os, msg.key);
        os << ",\"spec\":";
        json::writeString(os, msg.spec);
        break;
      case MsgType::Result:
        os << ",\"index\":" << msg.index << ",\"key\":";
        json::writeString(os, msg.key);
        os << ",\"result\":";
        writeResultCompactJson(os, msg.result);
        break;
    }
    os << "}";
    return os.str();
}

bool
decodeMessage(const std::string &line, Message &out)
{
    try {
        const json::Value v = json::parse(line);
        const std::string type = v.at("type").asString();
        if (type == "hello") {
            out.type = MsgType::Hello;
            out.proto = static_cast<unsigned>(v.at("proto").asNumber());
            out.worker = v.at("worker").asString();
        } else if (type == "welcome") {
            out.type = MsgType::Welcome;
            out.proto = static_cast<unsigned>(v.at("proto").asNumber());
            out.shard = static_cast<int>(v.at("shard").asNumber());
            out.shards = static_cast<unsigned>(v.at("shards").asNumber());
            out.jobs = static_cast<std::size_t>(v.at("jobs").asNumber());
            out.leaseMs =
                static_cast<unsigned>(v.at("lease_ms").asNumber());
        } else if (type == "reject") {
            out.type = MsgType::Reject;
            out.reason = v.at("reason").asString();
        } else if (type == "lease_req") {
            out.type = MsgType::LeaseReq;
        } else if (type == "lease") {
            out.type = MsgType::Lease;
            out.index = static_cast<std::size_t>(v.at("index").asNumber());
            out.key = v.at("key").asString();
            out.spec = v.at("spec").asString();
        } else if (type == "wait") {
            out.type = MsgType::Wait;
            out.waitMs = static_cast<unsigned>(v.at("ms").asNumber());
        } else if (type == "drain") {
            out.type = MsgType::Drain;
        } else if (type == "result") {
            out.type = MsgType::Result;
            out.index = static_cast<std::size_t>(v.at("index").asNumber());
            out.key = v.at("key").asString();
            out.result = resultFromJson(v.at("result"));
        } else {
            return false;
        }
        return true;
    } catch (const std::exception &) {
        // Torn/truncated line or wrong field shape: not a message.
        return false;
    }
}

// ---------------------------------------------------------------------

namespace {

sockaddr_un
unixAddr(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw ResourceError("socket path too long for AF_UNIX: '" +
                            path + "'");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

int
listenUnix(const std::string &path)
{
    const sockaddr_un addr = unixAddr(path);
    ::unlink(path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw ResourceError("socket(): " + std::string(strerror(errno)));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        const std::string msg = strerror(errno);
        ::close(fd);
        throw ResourceError("cannot listen on '" + path + "': " + msg);
    }
    return fd;
}

int
acceptUnix(int listen_fd)
{
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    return fd < 0 ? -1 : fd;
}

int
connectUnix(const std::string &path, unsigned timeout_ms)
{
    const sockaddr_un addr = unixAddr(path);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            throw ResourceError("socket(): " +
                                std::string(strerror(errno)));
        }
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            return fd;
        }
        ::close(fd);
        // The coordinator may still be binding its socket; retry until
        // the connect deadline instead of failing on startup races.
        if (std::chrono::steady_clock::now() >= deadline) {
            throw ResourceError("cannot connect to coordinator at '" +
                                path + "': " + strerror(errno));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

LineChannel::~LineChannel() { close(); }

LineChannel::LineChannel(LineChannel &&other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_))
{
    other.fd_ = -1;
}

LineChannel &
LineChannel::operator=(LineChannel &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buf_ = std::move(other.buf_);
        other.fd_ = -1;
    }
    return *this;
}

void
LineChannel::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
LineChannel::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + off,
                                 framed.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
LineChannel::pump()
{
    if (fd_ < 0)
        return false;
    char chunk[4096];
    for (;;) {
        const ssize_t n =
            ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0)
            return false;  // orderly EOF: peer is gone
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;  // drained everything currently available
        return false;
    }
}

bool
LineChannel::popLine(std::string &line)
{
    const std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos)
        return false;
    line.assign(buf_, 0, nl);
    buf_.erase(0, nl + 1);
    return true;
}

bool
LineChannel::recvLine(std::string &line, unsigned timeout_ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
        if (popLine(line))
            return true;
        if (fd_ < 0)
            return false;
        pollfd pfd{fd_, POLLIN, 0};
        int wait = -1;
        if (timeout_ms > 0) {
            const auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
            if (left.count() <= 0)
                return false;
            wait = static_cast<int>(left.count());
        }
        const int rc = ::poll(&pfd, 1, wait);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (rc == 0)
            return false;  // timeout
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
        } else if (n == 0) {
            // EOF: surface any final complete line first.
            return popLine(line);
        } else if (errno != EINTR) {
            return false;
        }
    }
}

} // namespace sciq
