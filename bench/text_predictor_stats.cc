/**
 * @file
 * Reproduces the numeric claims embedded in the paper's prose
 * (sections 4.4, 4.5 and 6.1):
 *
 *  - the hit/miss predictor achieves >98% accuracy on hit predictions
 *    while covering ~83% of actual hits;
 *  - ~35% of instructions have two outstanding operands in different
 *    chains;
 *  - loads account for ~65% of chains in the base configuration;
 *  - the deadlock condition arises in ~0.05% of cycles.
 */

#include <cmath>
#include <cstdio>
#include <limits>

#include "bench_util.hh"

using namespace sciq;
using namespace sciq::bench;

namespace {

/**
 * Mean over the finite samples only: undefined rates (NaN on runs with
 * no eligible events) would otherwise poison the cross-workload
 * average.
 */
struct FiniteMean
{
    double sum = 0;
    unsigned n = 0;

    void
    add(double v)
    {
        if (std::isfinite(v)) {
            sum += v;
            ++n;
        }
    }

    double
    value() const
    {
        return n ? sum / n : std::numeric_limits<double>::quiet_NaN();
    }
};

/** Print one percentage cell, or n/a for an undefined rate. */
void
cell(double v)
{
    if (std::isfinite(v))
        std::printf(" %9.2f", 100.0 * v);
    else
        std::printf(" %9s", "n/a");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, workloadNames(), {"iq_size"});
    const unsigned kIqSize = static_cast<unsigned>(
        args.raw.getInt("iq_size", 512));

    std::printf("Prose statistics, %u-entry segmented IQ\n\n", kIqSize);
    std::printf("%-9s | %9s %9s | %9s %9s | %9s | %12s\n", "bench",
                "HMP acc%", "cover%", "2-chain%", "ld-heads%", "LRPmis%",
                "deadlock%%cyc");
    hr('-', 86);

    // HMP/LRP stats come from the comb config (both predictors in
    // use); two-outstanding and load-head fractions are properties
    // of the base policy.
    SweepBatch batch(args);
    for (const auto &wl : args.workloads) {
        batch.add(makeSegmentedConfig(kIqSize, 128, true, true, wl));
        batch.add(makeSegmentedConfig(kIqSize, -1, false, false, wl));
    }
    batch.run();

    FiniteMean acc, cov, two, heads, lrp_mean, dead;
    for (const auto &wl : args.workloads) {
        RunResult rc = batch.next();
        RunResult rb = batch.next();

        std::printf("%-9s |", wl.c_str());
        cell(rc.hmpAccuracy);
        cell(rc.hmpCoverage);
        std::printf(" |");
        cell(rb.twoOutstandingFrac);
        cell(rb.headsFromLoadsFrac);
        std::printf(" |");
        cell(rc.lrpMispredictRate);
        std::printf(" | %12.4f\n", 100.0 * rc.deadlockCycleFrac);
        std::fflush(stdout);
        acc.add(rc.hmpAccuracy);
        cov.add(rc.hmpCoverage);
        two.add(rb.twoOutstandingFrac);
        heads.add(rb.headsFromLoadsFrac);
        lrp_mean.add(rc.lrpMispredictRate);
        dead.add(rc.deadlockCycleFrac);
    }
    hr('-', 86);
    std::printf("%-9s |", "average");
    cell(acc.value());
    cell(cov.value());
    std::printf(" |");
    cell(two.value());
    cell(heads.value());
    std::printf(" |");
    cell(lrp_mean.value());
    std::printf(" | %12.4f\n", 100.0 * dead.value());

    std::printf("\nPaper reference: HMP accuracy >98%% with ~83%% hit "
                "coverage; ~35%% two-outstanding instructions;\n"
                "loads are ~65%% of chains; deadlock in ~0.05%% of "
                "cycles.\n");
    finishBench(args);
    return 0;
}
