# Empty compiler generated dependencies file for ablation_power.
# This may be replaced when dependencies are built.
