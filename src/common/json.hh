/**
 * @file
 * Minimal strict JSON support for the evaluation harness.
 *
 * The parser is a validating recursive-descent implementation of RFC
 * 8259: it rejects everything the grammar rejects (bare `nan`/`inf`
 * tokens, trailing commas, comments, unquoted keys, trailing garbage),
 * because the `bench_out=` files it guards are consumed by external
 * plotting/trajectory tooling that is just as strict.  The writer
 * helpers exist so every JSON emitter in the tree shares one convention
 * for doubles: shortest round-trip formatting, and `null` for
 * non-finite values (an undefined rate is data, not a syntax error).
 */

#ifndef SCIQ_COMMON_JSON_HH
#define SCIQ_COMMON_JSON_HH

#include <cstddef>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sciq {
namespace json {

/** Thrown on malformed input, with offset context in the message. */
class ParseError : public std::runtime_error
{
  public:
    explicit ParseError(const std::string &msg) : std::runtime_error(msg) {}
};

/** One parsed JSON value (null / bool / number / string / array / object). */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Value() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { require(Kind::Bool); return bool_; }
    double asNumber() const { require(Kind::Number); return num_; }
    const std::string &asString() const { require(Kind::String); return str_; }
    const std::vector<Value> &asArray() const
    {
        require(Kind::Array);
        return arr_;
    }
    const std::map<std::string, Value> &asObject() const
    {
        require(Kind::Object);
        return obj_;
    }

    /** Array element access; throws on wrong kind or out of range. */
    const Value &at(std::size_t i) const;

    /** Object member access; throws if absent. */
    const Value &at(const std::string &key) const;

    bool contains(const std::string &key) const
    {
        return kind_ == Kind::Object && obj_.count(key) > 0;
    }

    /** Array/object element count (0 for scalars). */
    std::size_t
    size() const
    {
        if (kind_ == Kind::Array)
            return arr_.size();
        if (kind_ == Kind::Object)
            return obj_.size();
        return 0;
    }

    static Value makeNull() { return Value(); }
    static Value makeBool(bool b);
    static Value makeNumber(double d);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> a);
    static Value makeObject(std::map<std::string, Value> o);

  private:
    void require(Kind k) const;
    static const char *kindName(Kind k);

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Value> arr_;
    std::map<std::string, Value> obj_;
};

/**
 * Parse exactly one JSON document.  Throws ParseError on any grammar
 * violation, including trailing non-whitespace after the value.
 */
Value parse(std::string_view text);

/** Read and parse a file; throws ParseError on I/O or syntax failure. */
Value parseFile(const std::string &path);

/**
 * Emit a double as a JSON number token using shortest round-trip
 * formatting, or `null` when the value is NaN or infinite (JSON has no
 * token for those; `null` is the tree-wide "undefined rate" encoding).
 */
void writeNumber(std::ostream &os, double v);

/** Emit a quoted, escaped JSON string token. */
void writeString(std::ostream &os, std::string_view s);

} // namespace json
} // namespace sciq

#endif // SCIQ_COMMON_JSON_HH
