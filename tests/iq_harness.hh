/**
 * @file
 * Shared helpers for driving instruction-queue and LSQ unit tests:
 * hand-crafted DynInsts with controllable readiness, plus a small
 * issue-recording shim.
 */

#ifndef SCIQ_TESTS_IQ_HARNESS_HH
#define SCIQ_TESTS_IQ_HARNESS_HH

#include <vector>

#include "core/dyn_inst.hh"
#include "core/fu_pool.hh"
#include "core/rename.hh"
#include "iq/iq_base.hh"

namespace sciq {
namespace test {

/**
 * Build a DynInst whose physical registers equal its architectural
 * ones (identity renaming keeps unit tests legible).
 */
inline DynInstPtr
makeInst(SeqNum seq, Opcode op, RegIndex rd = kInvalidReg,
         RegIndex rs1 = kInvalidReg, RegIndex rs2 = kInvalidReg,
         std::int64_t imm = 0)
{
    DynInstPtr inst = makeDynInst();
    inst->staticInst.op = op;
    inst->staticInst.rd = rd;
    inst->staticInst.rs1 = rs1;
    inst->staticInst.rs2 = rs2;
    inst->staticInst.imm = imm;
    inst->seq = seq;
    inst->pc = 0x1000 + seq * kInstBytes;
    inst->archSrc = inst->staticInst.srcRegs();
    inst->archDst = inst->staticInst.dstReg();
    inst->physSrc = inst->archSrc;
    inst->physDst = inst->archDst;
    return inst;
}

/** Issue shim: accepts everything (or a fixed budget) and records. */
class IssueRecorder
{
  public:
    explicit IssueRecorder(Scoreboard &sb) : scoreboard(sb) {}

    IqBase::TryIssue
    acceptAll()
    {
        return [this](const DynInstPtr &inst) {
            issued.push_back(inst);
            inst->issued = true;
            return true;
        };
    }

    IqBase::TryIssue
    rejectAll()
    {
        return [this](const DynInstPtr &inst) {
            rejected.push_back(inst);
            return false;
        };
    }

    /** Accept everything and immediately mark the result ready. */
    IqBase::TryIssue
    acceptAndComplete()
    {
        return [this](const DynInstPtr &inst) {
            issued.push_back(inst);
            inst->issued = true;
            if (inst->physDst != kInvalidReg)
                scoreboard.setReady(inst->physDst);
            return true;
        };
    }

    std::vector<DynInstPtr> issued;
    std::vector<DynInstPtr> rejected;

  private:
    Scoreboard &scoreboard;
};

/** Mark every source of `inst` ready in the scoreboard. */
inline void
makeSourcesReady(Scoreboard &sb, const DynInstPtr &inst)
{
    for (RegIndex r : inst->physSrc) {
        if (r != kInvalidReg)
            sb.setReady(r);
    }
}

} // namespace test
} // namespace sciq

#endif // SCIQ_TESTS_IQ_HARNESS_HH
