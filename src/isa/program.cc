#include "program.hh"

#include <bit>
#include <cstring>

#include "common/serialize.hh"
#include "isa/codec.hh"
#include "isa/sparse_memory.hh"

namespace sciq {

void
Program::addDoubles(Addr addr, const std::vector<double> &values)
{
    std::vector<std::uint8_t> bytes(values.size() * 8);
    for (std::size_t i = 0; i < values.size(); ++i) {
        auto raw = std::bit_cast<std::uint64_t>(values[i]);
        std::memcpy(&bytes[i * 8], &raw, 8);
    }
    addData(addr, std::move(bytes));
}

void
Program::addWords(Addr addr, const std::vector<std::uint64_t> &values)
{
    std::vector<std::uint8_t> bytes(values.size() * 8);
    for (std::size_t i = 0; i < values.size(); ++i)
        std::memcpy(&bytes[i * 8], &values[i], 8);
    addData(addr, std::move(bytes));
}

void
Program::load(SparseMemory &mem) const
{
    // Encoded code image, so that tools reading simulated memory see
    // real machine words (the pipeline fetches decoded instructions
    // directly for speed).
    for (std::size_t i = 0; i < code.size(); ++i) {
        std::uint32_t word = encode(code[i]);
        mem.write(pcOf(i), 4, word);
    }
    for (const auto &blob : data)
        mem.writeBlob(blob.addr, blob.bytes.data(), blob.bytes.size());
}

std::uint64_t
Program::checksum() const
{
    serial::Fnv64 h;
    h.update(codeBase);
    h.update(code.size());
    for (const Instruction &inst : code) {
        h.update(static_cast<std::uint64_t>(inst.op));
        h.update(inst.rd);
        h.update(inst.rs1);
        h.update(inst.rs2);
        h.update(static_cast<std::uint64_t>(inst.imm));
    }
    h.update(data.size());
    for (const Blob &blob : data) {
        h.update(blob.addr);
        h.update(blob.bytes.size());
        h.update(blob.bytes.data(), blob.bytes.size());
    }
    return h.digest();
}

} // namespace sciq
