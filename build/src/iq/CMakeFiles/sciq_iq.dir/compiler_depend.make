# Empty compiler generated dependencies file for sciq_iq.
# This may be replaced when dependencies are built.
