# Empty compiler generated dependencies file for sciq_mem.
# This may be replaced when dependencies are built.
