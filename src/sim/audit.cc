#include "audit.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "core/ooo_core.hh"
#include "iq/segmented_iq.hh"

namespace sciq {

namespace {

/** Warn about the first few violations even when not panicking. */
constexpr int kMaxWarnings = 5;

} // namespace

Auditor::Auditor(bool panic_on_violation)
    : panicOnViolation_(panic_on_violation), group_("audit")
{
    group_.addScalar("cycles_audited", &cyclesAudited,
                     "cycles the invariant auditor ran");
    group_.addScalar("negative_delay", &negativeDelay,
                     "chain-member delay values below zero");
    group_.addScalar("segment_overflow", &segmentOverflow,
                     "segment occupancy above capacity");
    group_.addScalar("promotion_bound", &promotionBound,
                     "promotions above the prev-cycle free bound");
    group_.addScalar("issue_over_width", &issueOverWidth,
                     "cycles issuing more than the issue width");
    group_.addScalar("wire_delivery", &wireDelivery,
                     "chain-wire signals missed past their arrival cycle");
    group_.addScalar("pool_bound", &poolBound,
                     "cycles with leaked DynInstPool slots");
}

void
Auditor::attach(OooCore &core)
{
    core.statGroup().addChild(&group_);
    core.iqUnit().setAuditTracking(true);
    core.setCycleHook([this](OooCore &c, Cycle cycle) {
        auditCycle(c, cycle);
    });
}

void
Auditor::violation(stats::Scalar &counter, const char *invariant,
                   Cycle cycle, const std::string &detail)
{
    counter.inc();
    ++total_;
    if (panicOnViolation_) {
        panic("audit: invariant '%s' violated at cycle %llu\n%s",
              invariant, static_cast<unsigned long long>(cycle),
              detail.c_str());
    }
    if (total_ <= kMaxWarnings) {
        warn("audit: invariant '%s' violated at cycle %llu\n%s",
             invariant, static_cast<unsigned long long>(cycle),
             detail.c_str());
    }
}

void
Auditor::auditCycle(OooCore &core, Cycle cycle)
{
    cyclesAudited.inc();

    if (core.issuedThisCycleCount > core.params.iq.issueWidth) {
        std::ostringstream os;
        core.debugDump(os);
        violation(issueOverWidth, "issue <= issueWidth", cycle,
                  "issued " + std::to_string(core.issuedThisCycleCount) +
                      " > width " +
                      std::to_string(core.params.iq.issueWidth) + "\n" +
                      os.str());
    }

    // Everything holding a DynInstPtr is bounded: the ROB, the front-end
    // queue, and completed-but-squashed instructions draining through
    // the writeback queue (themselves once-ROB residents).  Twice the
    // ROB plus the front end is a deliberately generous but *finite*
    // ceiling: a storage leak (e.g. a container pinning recycled slots)
    // grows monotonically and crosses it quickly.
    const std::size_t pool_cap =
        2 * static_cast<std::size_t>(core.params.robSize) +
        core.frontEndCap;
    if (core.instPool.liveCount() > pool_cap) {
        std::ostringstream os;
        core.debugDump(os);
        violation(poolBound, "pool live count <= window bound", cycle,
                  "live " + std::to_string(core.instPool.liveCount()) +
                      " > bound " + std::to_string(pool_cap) + "\n" +
                      os.str());
    }

    if (auto *seg = dynamic_cast<SegmentedIq *>(core.iq.get()))
        auditSegmented(*seg, cycle);
}

void
Auditor::auditSegmented(SegmentedIq &iq, Cycle cycle)
{
    const unsigned n = static_cast<unsigned>(iq.segments.size());

    auto segDump = [&iq](unsigned k) {
        std::ostringstream os;
        iq.dumpSegment(os, k);
        return os.str();
    };

    for (unsigned k = 0; k < n; ++k) {
        const auto &seg = iq.segments[k];

        if (seg.size() > iq.params.segmentSize) {
            violation(segmentOverflow, "segment occupancy <= capacity",
                      cycle,
                      "segment " + std::to_string(k) + " holds " +
                          std::to_string(seg.size()) + " > " +
                          std::to_string(iq.params.segmentSize) + "\n" +
                          segDump(k));
        }

        for (const auto &inst : seg) {
            if (inst->seg.segment != static_cast<int>(k)) {
                violation(segmentOverflow,
                          "entry segment field matches its segment", cycle,
                          "seq " + std::to_string(inst->seq) +
                              " records segment " +
                              std::to_string(inst->seg.segment) +
                              " but lives in " + std::to_string(k) + "\n" +
                              segDump(k));
            }

            for (int m = 0; m < inst->seg.numMemberships; ++m) {
                const ChainMembership &mem = inst->seg.memberships[m];

                if (mem.delay < 0) {
                    violation(negativeDelay, "chain delay >= 0", cycle,
                              "seq " + std::to_string(inst->seq) +
                                  " membership " + std::to_string(m) +
                                  " delay " + std::to_string(mem.delay) +
                                  "\n" + segDump(k));
                }

                // Chain-wire exactness: every signal is applied on the
                // cycle it becomes visible at this segment.  A signal
                // generated at cycle g from segment o reaches segment s
                // at g + max(0, s - o); anything still unapplied a full
                // cycle past that arrival was missed by delivery.
                // (Signals generated after this cycle's delivery pass -
                // e.g. load-resume events from the LSQ - are legitimately
                // pending, hence the strict comparison.)
                if (mem.chain == kNoChain)
                    continue;
                const auto &cs = iq.stateOf(mem.chain);
                if (cs.gen != mem.gen)
                    continue;
                if (mem.appliedSeq > cs.seqCounter) {
                    violation(wireDelivery,
                              "applied signal count <= signals generated",
                              cycle,
                              "seq " + std::to_string(inst->seq) +
                                  " applied " +
                                  std::to_string(mem.appliedSeq) + " > " +
                                  std::to_string(cs.seqCounter) + "\n" +
                                  segDump(k));
                }
                for (const auto &sig : cs.log) {
                    if (sig.seq <= mem.appliedSeq)
                        continue;
                    const Cycle lag =
                        static_cast<int>(k) > sig.originSegment
                            ? static_cast<Cycle>(static_cast<int>(k) -
                                                 sig.originSegment)
                            : 0;
                    if (sig.cycle + lag < cycle) {
                        violation(
                            wireDelivery,
                            "chain-wire signals arrive on schedule", cycle,
                            "seq " + std::to_string(inst->seq) +
                                " in segment " + std::to_string(k) +
                                " missed signal " +
                                std::to_string(sig.seq) + " of chain " +
                                std::to_string(mem.chain) +
                                " (generated cycle " +
                                std::to_string(sig.cycle) +
                                " at segment " +
                                std::to_string(sig.originSegment) + ")\n" +
                                segDump(k));
                    }
                }
            }
        }
    }

    // The dispatch-stage register table listens at the top segment.
    {
        const int top = static_cast<int>(n) - 1;
        for (std::size_t r = 0; r < iq.regInfo.size(); ++r) {
            const auto &e = iq.regInfo[r];
            if (!e.pending || e.chain == kNoChain)
                continue;
            const auto &cs = iq.stateOf(e.chain);
            if (cs.gen != e.gen)
                continue;
            for (const auto &sig : cs.log) {
                if (sig.seq <= e.appliedSeq)
                    continue;
                const Cycle lag =
                    top > sig.originSegment
                        ? static_cast<Cycle>(top - sig.originSegment)
                        : 0;
                if (sig.cycle + lag < cycle) {
                    violation(wireDelivery,
                              "chain-wire signals arrive on schedule",
                              cycle,
                              "regInfo[" + std::to_string(r) +
                                  "] missed signal " +
                                  std::to_string(sig.seq) + " of chain " +
                                  std::to_string(e.chain) +
                                  " (generated cycle " +
                                  std::to_string(sig.cycle) +
                                  " at segment " +
                                  std::to_string(sig.originSegment) + ")");
                }
            }
        }
    }

    // Promotion respects the previous-cycle free count and the
    // inter-segment bandwidth (deadlock-recovery force promotions are
    // exempt and not counted by the tracking hooks).
    if (iq.auditTracking && !iq.promotedInto.empty()) {
        for (unsigned k = 0; k + 1 < n; ++k) {
            const unsigned bound = std::min<unsigned>(
                iq.params.issueWidth, iq.freePrevSnapshot[k]);
            if (iq.promotedInto[k] > bound) {
                violation(promotionBound,
                          "promotions <= prev-cycle free entries", cycle,
                          "segment " + std::to_string(k) + " accepted " +
                              std::to_string(iq.promotedInto[k]) +
                              " promotions, bound " +
                              std::to_string(bound) + "\n" + segDump(k));
            }
        }
    }
}

} // namespace sciq
