/**
 * @file
 * Batched lockstep simulation (DESIGN.md §15): batch=K must be
 * observationally equivalent to batch=1 — every architected stat in
 * every RunResult, the emitted sweep JSON, and the journal records are
 * byte-identical; only host wall-clock fields may differ.  Also covers
 * fault containment inside a batch (a watchdog deadlock in one member
 * must not disturb its batch-mates) and journal resume across different
 * batch settings (host-setting leakage regression).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/errors.hh"
#include "sim/batch.hh"
#include "sim/journal.hh"
#include "sim/sweep.hh"
#include "workload/workloads.hh"

using namespace sciq;
namespace fs = std::filesystem;

namespace {

/** Fresh scratch directory under the system temp dir, per test. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(fs::temp_directory_path() / ("sciq-batch-test-" + name))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    fs::path operator/(const std::string &leaf) const { return path_ / leaf; }

  private:
    fs::path path_;
};

void
expectSameBits(double a, double b, const char *field, std::size_t i)
{
    std::uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    EXPECT_EQ(ab, bb) << field << " differs (" << a << " vs " << b
                      << ") config " << i;
}

/** Every architected RunResult field, bit-for-bit (host perf excluded). */
void
expectIdentical(const RunResult &a, const RunResult &b, std::size_t i)
{
    EXPECT_EQ(a.workload, b.workload) << "config " << i;
    EXPECT_EQ(a.iqKind, b.iqKind) << "config " << i;
    EXPECT_EQ(a.iqSize, b.iqSize) << "config " << i;
    EXPECT_EQ(a.chains, b.chains) << "config " << i;
    EXPECT_EQ(a.cycles, b.cycles) << "config " << i;
    EXPECT_EQ(a.insts, b.insts) << "config " << i;
    expectSameBits(a.ipc, b.ipc, "ipc", i);
    expectSameBits(a.avgChains, b.avgChains, "avgChains", i);
    expectSameBits(a.peakChains, b.peakChains, "peakChains", i);
    expectSameBits(a.hmpAccuracy, b.hmpAccuracy, "hmpAccuracy", i);
    expectSameBits(a.hmpCoverage, b.hmpCoverage, "hmpCoverage", i);
    expectSameBits(a.lrpMispredictRate, b.lrpMispredictRate,
                   "lrpMispredictRate", i);
    expectSameBits(a.branchMispredictRate, b.branchMispredictRate,
                   "branchMispredictRate", i);
    expectSameBits(a.iqOccupancyAvg, b.iqOccupancyAvg, "iqOccupancyAvg", i);
    expectSameBits(a.seg0ReadyAvg, b.seg0ReadyAvg, "seg0ReadyAvg", i);
    expectSameBits(a.seg0OccupancyAvg, b.seg0OccupancyAvg,
                   "seg0OccupancyAvg", i);
    expectSameBits(a.deadlockCycleFrac, b.deadlockCycleFrac,
                   "deadlockCycleFrac", i);
    expectSameBits(a.twoOutstandingFrac, b.twoOutstandingFrac,
                   "twoOutstandingFrac", i);
    expectSameBits(a.headsFromLoadsFrac, b.headsFromLoadsFrac,
                   "headsFromLoadsFrac", i);
    expectSameBits(a.l1dMissRate, b.l1dMissRate, "l1dMissRate", i);
    expectSameBits(a.l1dDelayedHitFrac, b.l1dDelayedHitFrac,
                   "l1dDelayedHitFrac", i);
    expectSameBits(a.segActiveAvg, b.segActiveAvg, "segActiveAvg", i);
    expectSameBits(a.segCyclesActive, b.segCyclesActive, "segCyclesActive",
                   i);
    EXPECT_EQ(a.auditViolations, b.auditViolations) << "config " << i;
    EXPECT_EQ(a.validated, b.validated) << "config " << i;
    EXPECT_EQ(a.haltedCleanly, b.haltedCleanly) << "config " << i;
    EXPECT_EQ(a.outcome.status, b.outcome.status) << "config " << i;
    EXPECT_EQ(a.outcome.code, b.outcome.code) << "config " << i;
}

/**
 * Zero every wall-clock / scheduling-dependent field so the sweep JSON
 * can be compared byte-for-byte between batched and unbatched runs.
 */
std::vector<RunResult>
scrubbed(std::vector<RunResult> results)
{
    for (RunResult &r : results) {
        r.hostSeconds = 0.0;
        r.hostKcyclesPerSec = 0.0;
        r.hostKinstsPerSec = 0.0;
        r.warmSeconds = 0.0;
        r.warmInstsPerSec = 0.0;
        r.ckptRestored = false;
        r.outcome.message.clear();  // carries throw-site wall-clock text
    }
    return results;
}

std::string
jsonOf(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(os, scrubbed(results));
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// Differential: batch=K == batch=1, all workloads x both IQ designs.

TEST(LockstepBatch, AllWorkloadsBitIdenticalAcrossBatchWidths)
{
    // Deliberately varied back-end geometry within each batch: the
    // shared stream must tolerate members with different IQ sizes,
    // designs and (for segmented) chain counts.
    std::vector<SimConfig> cfgs;
    for (const std::string &wl : workloadNames()) {
        SimConfig seg = makeSegmentedConfig(64, 24, true, true, wl);
        seg.wl.iterations = 120;
        cfgs.push_back(seg);
        SimConfig ideal = makeIdealConfig(96, wl);
        ideal.wl.iterations = 120;
        cfgs.push_back(ideal);
    }

    const std::vector<RunResult> base = SweepRunner(1).run(cfgs);
    const std::string baseJson = jsonOf(base);
    for (const RunResult &r : base)
        ASSERT_TRUE(r.outcome.ok()) << r.outcome.message;

    for (unsigned k : {1u, 2u, 4u, 8u}) {
        SweepRunner::Options options;
        options.batch = k;
        std::vector<RunResult> batched = SweepRunner(1).run(cfgs, options);
        ASSERT_EQ(batched.size(), base.size());
        for (std::size_t i = 0; i < base.size(); ++i)
            expectIdentical(base[i], batched[i], i);
        EXPECT_EQ(baseJson, jsonOf(batched)) << "batch=" << k;
    }
}

TEST(LockstepBatch, MixedWorkloadsGroupCorrectly)
{
    // Interleave two workloads so grouping has to reorder execution;
    // results must still come back in submission order, bit-identical.
    std::vector<SimConfig> cfgs;
    for (unsigned size : {32u, 64u, 128u}) {
        SimConfig a = makeSegmentedConfig(size, size / 2, true, true, "swim");
        a.wl.iterations = 150;
        cfgs.push_back(a);
        SimConfig b = makeIdealConfig(size, "gcc");
        b.wl.iterations = 150;
        cfgs.push_back(b);
    }

    const std::vector<RunResult> base = SweepRunner(1).run(cfgs);
    SweepRunner::Options options;
    options.batch = 3;
    const std::vector<RunResult> batched = SweepRunner(1).run(cfgs, options);
    ASSERT_EQ(batched.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(batched[i].workload, cfgs[i].workload) << i;
        expectIdentical(base[i], batched[i], i);
    }
}

TEST(LockstepBatch, BatchKeyIgnoresGeometryButNotWarmup)
{
    SimConfig a = makeSegmentedConfig(64, 32, true, true, "swim");
    SimConfig b = makeIdealConfig(256, "swim");
    b.maxCycles = a.maxCycles / 2;
    EXPECT_EQ(lockstepBatchKey(a), lockstepBatchKey(b));

    SimConfig c = a;
    c.fastForward = 100'000;
    EXPECT_NE(lockstepBatchKey(a), lockstepBatchKey(c));
    SimConfig d = a;
    d.wl.seed = 999;
    EXPECT_NE(lockstepBatchKey(a), lockstepBatchKey(d));
    SimConfig e = a;
    e.workload = "gcc";
    EXPECT_NE(lockstepBatchKey(a), lockstepBatchKey(e));

    EXPECT_TRUE(lockstepBatchable(a));
    SimConfig f = a;
    f.deadlineSec = 10.0;
    EXPECT_FALSE(lockstepBatchable(f));
}

// ---------------------------------------------------------------------
// Fault containment inside a batch.

TEST(LockstepBatch, WatchdogDeadlockContainedWithoutCorruptingBatchMates)
{
    // Three same-workload members; the middle one deadlocks (injected
    // commit stall trips the watchdog).  Its row must come back as a
    // Failed/Deadlock outcome while both batch-mates stay bit-identical
    // to a clean unbatched run.
    std::vector<SimConfig> cfgs;
    SimConfig good1 = makeSegmentedConfig(64, 24, true, true, "swim");
    good1.wl.iterations = 150;
    cfgs.push_back(good1);

    SimConfig bad = makeIdealConfig(64, "swim");
    bad.wl.iterations = 150;
    bad.core.faultCommitStallAt = 500;
    bad.core.watchdogCycles = 5'000;
    bad.validate = false;
    cfgs.push_back(bad);

    SimConfig good2 = makeIdealConfig(128, "swim");
    good2.wl.iterations = 150;
    cfgs.push_back(good2);

    const std::vector<RunResult> clean =
        SweepRunner(1).run({cfgs[0], cfgs[2]});

    SweepRunner::Options options;
    options.batch = 3;
    const std::vector<RunResult> batched = SweepRunner(1).run(cfgs, options);
    ASSERT_EQ(batched.size(), 3u);

    EXPECT_EQ(batched[1].outcome.status, JobOutcome::Status::Failed);
    EXPECT_EQ(batched[1].outcome.code, ErrorCode::Deadlock);
    EXPECT_EQ(batched[1].workload, "swim");
    EXPECT_EQ(batched[1].iqKind, "ideal");

    expectIdentical(clean[0], batched[0], 0);
    expectIdentical(clean[1], batched[2], 2);
    EXPECT_TRUE(batched[0].outcome.ok());
    EXPECT_TRUE(batched[2].outcome.ok());
}

TEST(LockstepBatch, BadWorkloadContainedAtConstruction)
{
    std::vector<SimConfig> cfgs;
    SimConfig good = makeSegmentedConfig(64, 24, true, true, "gcc");
    good.wl.iterations = 150;
    cfgs.push_back(good);
    SimConfig bad = good;
    bad.workload = "no-such-workload";
    cfgs.push_back(bad);

    const std::vector<RunResult> clean = SweepRunner(1).run({good});

    SweepRunner::Options options;
    options.batch = 4;
    const std::vector<RunResult> batched = SweepRunner(1).run(cfgs, options);
    ASSERT_EQ(batched.size(), 2u);
    EXPECT_EQ(batched[1].outcome.status, JobOutcome::Status::Failed);
    EXPECT_EQ(batched[1].outcome.code, ErrorCode::Workload);
    expectIdentical(clean[0], batched[0], 0);
}

// ---------------------------------------------------------------------
// Journal / host-setting invariance (regression: a journal written at
// one batch/jobs setting must resume byte-identically at another).

TEST(LockstepBatch, JournalWrittenBatchedResumesUnbatched)
{
    ScratchDir dir("journal-b4-to-b1");
    const std::string journal = (dir / "sweep.jsonl").string();

    std::vector<SimConfig> cfgs;
    for (unsigned size : {32u, 64u, 96u, 128u}) {
        SimConfig c = makeSegmentedConfig(size, size / 2, true, true, "swim");
        c.wl.iterations = 150;
        cfgs.push_back(c);
    }

    SweepRunner::Options batchedOptions;
    batchedOptions.batch = 4;
    batchedOptions.journal = journal;
    const std::vector<RunResult> first =
        SweepRunner(1).run(cfgs, batchedOptions);
    for (const RunResult &r : first)
        ASSERT_TRUE(r.outcome.ok()) << r.outcome.message;

    // Resume at batch=1 (and again at batch=2): every job must be
    // served from the journal — no re-runs — and the results must be
    // byte-identical to the batched pass, proving the sweep key and the
    // journal records carry no batch/jobs fingerprint.
    for (unsigned k : {1u, 2u}) {
        SweepRunner::Options resumeOptions;
        resumeOptions.batch = k;
        resumeOptions.journal = journal;
        std::size_t reran = 0;
        resumeOptions.progress = [&](std::size_t, std::size_t,
                                     const RunResult &) { ++reran; };
        const std::vector<RunResult> resumed =
            SweepRunner(1).run(cfgs, resumeOptions);
        EXPECT_EQ(reran, 0u) << "batch=" << k << " re-ran journaled jobs";
        ASSERT_EQ(resumed.size(), first.size());
        for (std::size_t i = 0; i < first.size(); ++i) {
            expectIdentical(first[i], resumed[i], i);
            // Journal round-trip preserves even the wall-clock fields.
            expectSameBits(first[i].hostSeconds, resumed[i].hostSeconds,
                           "hostSeconds", i);
        }
    }
}

TEST(LockstepBatch, SweepKeyInvariantUnderHostSettings)
{
    // sweepKey() identifies *what* is simulated; batch/jobs describe
    // *how*.  The key must not move when host settings change, or
    // journals would silently stop resuming across them.
    SimConfig c = makeSegmentedConfig(64, 32, true, true, "swim");
    const std::string key = sweepKey(c);
    EXPECT_FALSE(key.empty());
    for (unsigned jobs : {0u, 1u, 7u}) {
        SweepRunner runner(jobs);
        EXPECT_EQ(sweepKey(c), key);
    }
    EXPECT_EQ(key.find("batch"), std::string::npos);
    EXPECT_EQ(key.find("jobs"), std::string::npos);
}
