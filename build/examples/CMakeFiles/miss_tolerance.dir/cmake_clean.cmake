file(REMOVE_RECURSE
  "CMakeFiles/miss_tolerance.dir/miss_tolerance.cpp.o"
  "CMakeFiles/miss_tolerance.dir/miss_tolerance.cpp.o.d"
  "miss_tolerance"
  "miss_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miss_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
