file(REMOVE_RECURSE
  "libsciq_isa.a"
)
