file(REMOVE_RECURSE
  "CMakeFiles/sciq_branch.dir/branch_predictor.cc.o"
  "CMakeFiles/sciq_branch.dir/branch_predictor.cc.o.d"
  "libsciq_branch.a"
  "libsciq_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciq_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
