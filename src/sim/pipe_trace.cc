#include "pipe_trace.hh"

#include <algorithm>

#include "isa/disassembler.hh"

namespace sciq {

void
PipeTrace::record(const DynInst &inst, Cycle commit_cycle, bool squashed)
{
    Record r;
    r.seq = inst.seq;
    r.pc = inst.pc;
    r.text = disassemble(inst.staticInst);
    r.fetch = inst.fetchCycle;
    r.dispatch = inst.dispatchReadyCycle;
    r.issue = inst.issued ? inst.issueCycle : 0;
    r.complete = inst.completed ? inst.completeCycle : 0;
    r.commit = commit_cycle;
    r.squashed = squashed;
    r.wrongPath = inst.onWrongPath;
    recs.push_back(std::move(r));
    if (recs.size() > cap)
        recs.erase(recs.begin(), recs.begin() + (recs.size() - cap));
}

void
PipeTrace::render(std::ostream &os, SeqNum first_seq,
                  std::size_t max_rows) const
{
    // Select the window of rows.
    std::vector<const Record *> rows;
    for (const Record &r : recs) {
        if (r.seq >= first_seq)
            rows.push_back(&r);
        if (rows.size() >= max_rows)
            break;
    }
    if (rows.empty()) {
        os << "(no trace records in window)\n";
        return;
    }

    Cycle t0 = kCycleNever, t1 = 0;
    for (const Record *r : rows) {
        t0 = std::min(t0, r->fetch);
        t1 = std::max(t1, std::max(r->commit, r->complete));
    }
    const Cycle span = t1 - t0 + 1;
    const Cycle max_span = 160;
    const Cycle shown = std::min(span, max_span);

    os << "cycles " << t0 << ".." << t0 + shown - 1
       << "   [f]etch [d]ispatch-ready [i]ssue [c]omplete [C]ommit "
          "(* = squashed)\n";
    for (const Record *r : rows) {
        std::string lane(shown, '.');
        auto put = [&](Cycle c, char ch) {
            if (c >= t0 && c < t0 + shown)
                lane[c - t0] = ch;
        };
        put(r->fetch, 'f');
        put(r->dispatch, 'd');
        if (r->issue)
            put(r->issue, 'i');
        if (r->complete)
            put(r->complete, 'c');
        if (!r->squashed)
            put(r->commit, 'C');

        char head[64];
        std::snprintf(head, sizeof(head), "%6llu%c %-28s |",
                      static_cast<unsigned long long>(r->seq),
                      r->squashed ? '*' : ' ',
                      r->text.substr(0, 28).c_str());
        os << head << lane << "|\n";
    }
}

} // namespace sciq
