/**
 * @file
 * Small integer-math helpers used throughout the simulator.
 */

#ifndef SCIQ_COMMON_INTMATH_HH
#define SCIQ_COMMON_INTMATH_HH

#include <cstdint>

namespace sciq {

/** True if the value is a (positive) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log base 2. floorLog2(0) is defined as 0. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

/** Ceiling of log base 2. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Round v up to the next multiple of align (align must be a power of 2). */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round v down to a multiple of align (align must be a power of 2). */
constexpr std::uint64_t
roundDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Ceiling integer division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Extract bits [lo, hi] (inclusive) of v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    std::uint64_t mask =
        (hi - lo >= 63) ? ~0ULL : ((1ULL << (hi - lo + 1)) - 1);
    return (v >> lo) & mask;
}

/** Insert val into bits [lo, hi] of base. */
constexpr std::uint64_t
insertBits(std::uint64_t base, unsigned hi, unsigned lo, std::uint64_t val)
{
    std::uint64_t mask =
        (hi - lo >= 63) ? ~0ULL : ((1ULL << (hi - lo + 1)) - 1);
    return (base & ~(mask << lo)) | ((val & mask) << lo);
}

/** Sign-extend the low `bits` bits of v to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t v, unsigned bit_count)
{
    if (bit_count == 0 || bit_count >= 64)
        return static_cast<std::int64_t>(v);
    std::uint64_t m = 1ULL << (bit_count - 1);
    v &= (1ULL << bit_count) - 1;
    return static_cast<std::int64_t>((v ^ m) - m);
}

} // namespace sciq

#endif // SCIQ_COMMON_INTMATH_HH
