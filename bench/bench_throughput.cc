/**
 * @file
 * Host-throughput bench: how many simulated kcycles per host second
 * the tick loop sustains.  This is the trajectory metric for the
 * ROADMAP's "fast as the hardware allows" goal -- each PR that touches
 * the scheduler appends a point (BENCH_PR3.json is the first).
 *
 * Runs are serial (jobs=1 by default) so wall-clock per run is not
 * polluted by sibling workers; every workload runs under each IQ
 * configuration and the per-config aggregate is
 * sum(cycles) / sum(host_seconds).
 *
 * Extra key=value arguments on top of bench_util.hh's standard set:
 *   repeats=N           timing repetitions per config (default 1; the
 *                       fastest repetition is reported)
 *   baseline_kcps=X     pre-change segmented-256 kcycles/s to compare
 *   baseline_label=S    provenance note for the baseline number
 *   trajectory_out=path write the trajectory-point JSON (speedup vs
 *                       baseline + per-config aggregates)
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/json.hh"

using namespace sciq;
using namespace sciq::bench;

namespace {

struct ConfigPoint
{
    std::string name;     ///< e.g. "segmented-256"
    std::string iqKind;
    unsigned iqSize;
    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;
    double hostSeconds = 0.0;

    // Deterministic host-work counters (iq.work.*, segmented only).
    // Identical across repetitions, so accumulating them alongside the
    // wall-clock numbers costs nothing and pairs every kcycles/s figure
    // with its noise-free proxy.
    std::uint64_t sigDeliveries = 0;
    std::uint64_t planCalls = 0;
    std::uint64_t segsScanned = 0;
    std::uint64_t laneWords = 0;

    double kcps() const
    {
        return hostSeconds > 0.0 ? cycles / hostSeconds / 1e3 : 0.0;
    }
    double kips() const
    {
        return hostSeconds > 0.0 ? insts / hostSeconds / 1e3 : 0.0;
    }
};

void
writeTrajectory(const std::string &path,
                const std::vector<ConfigPoint> &points,
                double baseline_kcps, const std::string &baseline_label,
                const ConfigPoint *anchor)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "ERROR: could not write %s\n", path.c_str());
        return;
    }
    out << "{\n  \"bench\": \"bench_throughput\",\n";
    out << "  \"metric\": \"host_kcycles_per_sec\",\n";
    out << "  \"anchor_config\": \"segmented-256\",\n";
    out << "  \"baseline\": {\n    \"label\": ";
    json::writeString(out, baseline_label);
    out << ",\n    \"kcycles_per_sec\": ";
    json::writeNumber(out, baseline_kcps);
    out << "\n  },\n";
    out << "  \"current\": {\n    \"kcycles_per_sec\": ";
    json::writeNumber(out, anchor ? anchor->kcps() : 0.0);
    out << ",\n    \"speedup_vs_baseline\": ";
    json::writeNumber(out, (anchor && baseline_kcps > 0.0)
                               ? anchor->kcps() / baseline_kcps
                               : 0.0);
    out << "\n  },\n  \"configs\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ConfigPoint &p = points[i];
        out << "    {\"config\": ";
        json::writeString(out, p.name);
        out << ", \"iq_kind\": ";
        json::writeString(out, p.iqKind);
        out << ", \"iq_size\": " << p.iqSize
            << ", \"cycles\": " << p.cycles
            << ", \"insts\": " << p.insts << ", \"host_seconds\": ";
        json::writeNumber(out, p.hostSeconds);
        out << ", \"kcycles_per_sec\": ";
        json::writeNumber(out, p.kcps());
        out << ", \"kinsts_per_sec\": ";
        json::writeNumber(out, p.kips());
        out << ", \"iq_work_signal_deliveries\": " << p.sigDeliveries
            << ", \"iq_work_plan_calls\": " << p.planCalls
            << ", \"iq_work_segments_scanned\": " << p.segsScanned
            << ", \"iq_work_lane_words_touched\": " << p.laneWords;
        out << "}" << (i + 1 == points.size() ? "\n" : ",\n");
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "wrote trajectory point to %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, workloadNames(),
                               {"repeats", "baseline_kcps",
                                "baseline_label", "trajectory_out"});
    // Timing fidelity: serial by default (jobs=1), unlike the sweep
    // benches that default to hardware concurrency.
    if (args.raw.getInt("jobs", 0) == 0)
        args.jobs = 1;
    const unsigned repeats =
        static_cast<unsigned>(args.raw.getInt("repeats", 1));
    const double baseline_kcps = args.raw.getDouble("baseline_kcps", 0.0);
    const std::string baseline_label =
        args.raw.getString("baseline_label", "");
    const std::string trajectory_out =
        args.raw.getString("trajectory_out", "");

    struct ConfigSpec
    {
        std::string name;
        SimConfig cfg;
    };
    std::vector<ConfigSpec> specs;
    for (unsigned size : {64u, 256u}) {
        for (const std::string &wl : args.workloads) {
            specs.push_back({"segmented-" + std::to_string(size),
                             makeSegmentedConfig(size, 32, true, true,
                                                 wl)});
        }
    }
    for (const std::string &wl : args.workloads)
        specs.push_back({"ideal-256", makeIdealConfig(256, wl)});

    std::printf("Host throughput (jobs=%u, repeats=%u)\n", args.jobs,
                repeats);
    hr();

    // Aggregate per configuration name, keeping the fastest repetition
    // of the whole batch (cycle counts are deterministic across
    // repetitions; only host time varies).
    std::vector<ConfigPoint> points;
    double best_seconds = 0.0;
    for (unsigned rep = 0; rep < repeats; ++rep) {
        SweepBatch batch(args);
        for (const ConfigSpec &s : specs)
            batch.add(s.cfg);
        batch.run();

        std::vector<ConfigPoint> rep_points;
        double rep_seconds = 0.0;
        for (const ConfigSpec &s : specs) {
            const RunResult &r = batch.next();
            rep_seconds += r.hostSeconds;
            ConfigPoint *p = nullptr;
            for (ConfigPoint &q : rep_points) {
                if (q.name == s.name)
                    p = &q;
            }
            if (!p) {
                rep_points.push_back(
                    {s.name, r.iqKind, r.iqSize, 0, 0, 0.0});
                p = &rep_points.back();
            }
            p->cycles += r.cycles;
            p->insts += r.insts;
            p->hostSeconds += r.hostSeconds;
            p->sigDeliveries += r.iqSignalDeliveries;
            p->planCalls += r.iqPlanCalls;
            p->segsScanned += r.iqSegmentsScanned;
            p->laneWords += r.iqLaneWordsTouched;
        }
        if (points.empty() || rep_seconds < best_seconds) {
            points = std::move(rep_points);
            best_seconds = rep_seconds;
        }
    }

    std::printf("%-16s %12s %12s %10s %12s %12s %14s %11s %14s %14s\n",
                "config", "cycles", "insts", "host s", "kcycles/s",
                "kinsts/s", "sig_deliveries", "plan_calls",
                "segs_scanned", "lane_words");
    const ConfigPoint *anchor = nullptr;
    for (const ConfigPoint &p : points) {
        std::printf("%-16s %12llu %12llu %10.3f %12.1f %12.1f %14llu "
                    "%11llu %14llu %14llu\n",
                    p.name.c_str(),
                    static_cast<unsigned long long>(p.cycles),
                    static_cast<unsigned long long>(p.insts),
                    p.hostSeconds, p.kcps(), p.kips(),
                    static_cast<unsigned long long>(p.sigDeliveries),
                    static_cast<unsigned long long>(p.planCalls),
                    static_cast<unsigned long long>(p.segsScanned),
                    static_cast<unsigned long long>(p.laneWords));
        if (p.name == "segmented-256")
            anchor = &p;
    }
    hr();
    if (anchor && baseline_kcps > 0.0) {
        std::printf("segmented-256: %.1f kcycles/s vs baseline %.1f "
                    "(%s) -> %.2fx\n",
                    anchor->kcps(), baseline_kcps,
                    baseline_label.c_str(),
                    anchor->kcps() / baseline_kcps);
    }

    if (!trajectory_out.empty()) {
        writeTrajectory(trajectory_out, points, baseline_kcps,
                        baseline_label, anchor);
    }
    finishBench(args);
    return 0;
}
