/**
 * @file
 * Load/store queue.  Memory instructions split into an address
 * generation (scheduled by the IQ as an integer op) and a memory access
 * managed here (paper section 5).  A load may access the cache once its
 * address is known and it provably does not conflict with any older
 * pending store; fully-covering older stores with ready data forward
 * directly.  Stores access the cache after commit from a drain buffer.
 *
 * Scheduling is event-driven (DESIGN.md §11/§15): instead of scanning
 * every entry every cycle, the queue keeps age-ordered side lists of
 * the instructions that can actually make progress — address-ready
 * loads that have not issued, and address-ready stores still waiting
 * for their data register — plus a per-load conflict-class cache that
 * is invalidated only by events on the older store it depends on
 * (address resolution, data arrival, commit).  Issue order, stall
 * accounting and forwarding latency are bit-identical to the original
 * full-scan formulation; the golden-stats harness and the sched-index
 * differential suite pin that equivalence.
 */

#ifndef SCIQ_CORE_LSQ_HH
#define SCIQ_CORE_LSQ_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/circular_queue.hh"
#include "common/stats.hh"
#include "core/dyn_inst.hh"
#include "core/fu_pool.hh"
#include "core/rename.hh"
#include "mem/cache.hh"

namespace sciq {

class Lsq
{
  public:
    struct Callbacks
    {
        /** Load data available: wake dependents, mark completed. */
        std::function<void(const DynInstPtr &, Cycle)> onLoadComplete;
        /** L1 lookup missed: segmented IQ suspends the load's chain. */
        std::function<void(const DynInstPtr &, Cycle)> onLoadMiss;
        /** Store has address + data: eligible to commit. */
        std::function<void(const DynInstPtr &, Cycle)> onStoreReady;
    };

    Lsq(unsigned capacity, Cache &dcache, FuPool &fu,
        const Scoreboard &scoreboard, Callbacks callbacks);

    bool full() const { return entries.full(); }
    std::size_t size() const { return entries.size(); }
    std::size_t freeEntries() const { return entries.freeEntries(); }

    /** Insert at dispatch (program order). */
    void insert(const DynInstPtr &inst);

    /** Address generation finished for this memory instruction. */
    void setAddrReady(const DynInstPtr &inst, Cycle cycle);

    /** Per-cycle processing: issue loads, check stores, drain buffer. */
    void tick(Cycle cycle);

    /** The store at the LSQ head commits: drain its access to the cache. */
    void commitStore(const DynInstPtr &inst, Cycle cycle);

    /** Remove a committed load from the queue. */
    void commitLoad(const DynInstPtr &inst);

    /** Remove everything younger than `youngest_kept`. */
    void squash(SeqNum youngest_kept);

    /** In-flight cache accesses or undrained committed stores exist. */
    bool busy() const;

    stats::Group &statGroup() { return statsGroup; }

    stats::Scalar loadsIssued;
    stats::Scalar loadForwards;
    stats::Scalar loadConflictStalls;
    stats::Scalar storeDrains;
    stats::Scalar portStalls;

  private:
    /**
     * Conflict scan for `load` against the older stores still queued.
     * Caches the result (and the store it depends on) on the DynInst.
     * @return 0 = free to access cache, 1 = can forward, 2 = must wait.
     */
    int classifyLoad(const DynInstPtr &load) const;

    /**
     * A store changed state (address resolved, data arrived, committed):
     * drop every cached load classification that depended on it.
     */
    void storeEvent(SeqNum seq);

    void sendLoadAccess(const DynInstPtr &inst, Cycle cycle);

    CircularQueue<DynInstPtr> entries;
    Cache &dcache;
    FuPool &fu;
    const Scoreboard &scoreboard;
    Callbacks cb;
    stats::Group statsGroup;

    /** Committed stores waiting for a cache port. */
    std::deque<std::pair<Addr, unsigned>> drainBuffer;

    /** Forwarded loads completing next cycle. */
    std::vector<std::pair<DynInstPtr, Cycle>> pendingForwards;

    /** Stores still in the queue, oldest first (conflict scans). */
    std::deque<DynInstPtr> storeList;

    /** Address-ready loads not yet issued, oldest first. */
    std::vector<DynInstPtr> pendingLoads;

    /** Address-ready, not-yet-completed stores, oldest first. */
    std::vector<DynInstPtr> dataWaitStores;

    unsigned pendingAccesses = 0;
};

} // namespace sciq

#endif // SCIQ_CORE_LSQ_HH
