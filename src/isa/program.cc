#include "program.hh"

#include <bit>
#include <cstring>

#include "isa/codec.hh"
#include "isa/sparse_memory.hh"

namespace sciq {

void
Program::addDoubles(Addr addr, const std::vector<double> &values)
{
    std::vector<std::uint8_t> bytes(values.size() * 8);
    for (std::size_t i = 0; i < values.size(); ++i) {
        auto raw = std::bit_cast<std::uint64_t>(values[i]);
        std::memcpy(&bytes[i * 8], &raw, 8);
    }
    addData(addr, std::move(bytes));
}

void
Program::addWords(Addr addr, const std::vector<std::uint64_t> &values)
{
    std::vector<std::uint8_t> bytes(values.size() * 8);
    for (std::size_t i = 0; i < values.size(); ++i)
        std::memcpy(&bytes[i * 8], &values[i], 8);
    addData(addr, std::move(bytes));
}

void
Program::load(SparseMemory &mem) const
{
    // Encoded code image, so that tools reading simulated memory see
    // real machine words (the pipeline fetches decoded instructions
    // directly for speed).
    for (std::size_t i = 0; i < code.size(); ++i) {
        std::uint32_t word = encode(code[i]);
        mem.write(pcOf(i), 4, word);
    }
    for (const auto &blob : data)
        mem.writeBlob(blob.addr, blob.bytes.data(), blob.bytes.size());
}

} // namespace sciq
