#include "audit.hh"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "common/errors.hh"
#include "common/logging.hh"
#include "core/ooo_core.hh"
#include "iq/ideal_iq.hh"
#include "iq/segmented_iq.hh"

namespace sciq {

namespace {

/** Warn about the first few violations even when not panicking. */
constexpr int kMaxWarnings = 5;

} // namespace

Auditor::Auditor(bool panic_on_violation)
    : panicOnViolation_(panic_on_violation), group_("audit")
{
    group_.addScalar("cycles_audited", &cyclesAudited,
                     "cycles the invariant auditor ran");
    group_.addScalar("negative_delay", &negativeDelay,
                     "chain-member delay values below zero");
    group_.addScalar("segment_overflow", &segmentOverflow,
                     "segment occupancy above capacity");
    group_.addScalar("promotion_bound", &promotionBound,
                     "promotions above the prev-cycle free bound");
    group_.addScalar("issue_over_width", &issueOverWidth,
                     "cycles issuing more than the issue width");
    group_.addScalar("wire_delivery", &wireDelivery,
                     "chain-wire signals missed past their arrival cycle");
    group_.addScalar("pool_bound", &poolBound,
                     "cycles with leaked DynInstPool slots");
    group_.addScalar("occ_index", &occIndex,
                     "O(1) occupancy counters disagreeing with a rescan");
    group_.addScalar("promo_index", &promoIndex,
                     "promotion-candidate indices disagreeing with a rescan");
    group_.addScalar("sub_index", &subIndex,
                     "chain subscriber indices disagreeing with a rescan");
    group_.addScalar("countdown_index", &countdownIndex,
                     "self-timed countdown lists disagreeing with a rescan");
    group_.addScalar("ready_index", &readyIndex,
                     "ideal ready-list entries disagreeing with a rescan");
    group_.addScalar("wb_ring_bound", &wbRingBound,
                     "writeback-ring population diverging from in-flight");
}

void
Auditor::attach(OooCore &core)
{
    core.statGroup().addChild(&group_);
    core.iqUnit().setAuditTracking(true);
    core.setCycleHook([this](OooCore &c, Cycle cycle) {
        auditCycle(c, cycle);
    });
}

void
Auditor::violation(stats::Scalar &counter, const char *invariant,
                   Cycle cycle, const std::string &detail)
{
    counter.inc();
    ++total_;
    if (panicOnViolation_) {
        throw InvariantError("audit: invariant '" + std::string(invariant) +
                                 "' violated at cycle " +
                                 std::to_string(cycle),
                             detail);
    }
    if (total_ <= kMaxWarnings) {
        warn("audit: invariant '%s' violated at cycle %llu\n%s",
             invariant, static_cast<unsigned long long>(cycle),
             detail.c_str());
    }
}

void
Auditor::auditCycle(OooCore &core, Cycle cycle)
{
    cyclesAudited.inc();

    if (core.issuedThisCycleCount > core.params.iq.issueWidth) {
        std::ostringstream os;
        core.debugDump(os);
        violation(issueOverWidth, "issue <= issueWidth", cycle,
                  "issued " + std::to_string(core.issuedThisCycleCount) +
                      " > width " +
                      std::to_string(core.params.iq.issueWidth) + "\n" +
                      os.str());
    }

    // Everything holding a DynInstPtr is bounded: the ROB, the front-end
    // queue, and completed-but-squashed instructions draining through
    // the writeback queue (themselves once-ROB residents).  Twice the
    // ROB plus the front end is a deliberately generous but *finite*
    // ceiling: a storage leak (e.g. a container pinning recycled slots)
    // grows monotonically and crosses it quickly.
    const std::size_t pool_cap =
        2 * static_cast<std::size_t>(core.params.robSize) +
        core.frontEndCap;
    if (core.instPool.liveCount() > pool_cap) {
        std::ostringstream os;
        core.debugDump(os);
        violation(poolBound, "pool live count <= window bound", cycle,
                  "live " + std::to_string(core.instPool.liveCount()) +
                      " > bound " + std::to_string(pool_cap) + "\n" +
                      os.str());
    }

    // The writeback ring holds exactly the issued-but-not-yet-written-
    // back instructions (squashed ones included; they drain normally).
    std::size_t wb_pop = 0;
    for (const auto &bucket : core.wbRing)
        wb_pop += bucket.size();
    if (wb_pop != core.inFlightExec) {
        violation(wbRingBound, "writeback ring population == in-flight",
                  cycle,
                  "ring holds " + std::to_string(wb_pop) +
                      " but inFlightExec=" +
                      std::to_string(core.inFlightExec));
    }

    if (auto *seg = dynamic_cast<SegmentedIq *>(core.iq.get()))
        auditSegmented(*seg, cycle);
    else if (auto *ideal = dynamic_cast<IdealIq *>(core.iq.get()))
        auditIdeal(*ideal, cycle);
}

void
Auditor::auditSegmented(SegmentedIq &iq, Cycle cycle)
{
    const unsigned n = static_cast<unsigned>(iq.segments.size());
    const bool soa = iq.params.soaLayout;

    auto segDump = [&iq](unsigned k) {
        std::ostringstream os;
        iq.dumpSegment(os, k);
        return os.str();
    };

    // Authoritative view of membership m of the entry at (segment k,
    // position pos).  The reference engine keeps it inside the DynInst;
    // the SoA engine keeps it in the segment lanes and the DynInst copy
    // is stale past the immutable chain/generation identity, so every
    // per-entry check below reads through this view.
    struct MemView
    {
        int delay;
        ChainId chain;
        std::uint32_t gen;
        std::uint64_t appliedSeq;
    };

    for (unsigned k = 0; k < n; ++k) {
        const auto &seg = iq.segments[k];

        if (seg.size() > iq.params.segmentSize) {
            violation(segmentOverflow, "segment occupancy <= capacity",
                      cycle,
                      "segment " + std::to_string(k) + " holds " +
                          std::to_string(seg.size()) + " > " +
                          std::to_string(iq.params.segmentSize) + "\n" +
                          segDump(k));
        }

        // SoA: the position->slot map is parallel to the segment, names
        // distinct occupied slots, and the occupancy words hold exactly
        // those slots.
        std::vector<char> slot_used;
        if (soa) {
            const auto &L = iq.lanes[k];
            if (L.slotAt.size() != seg.size()) {
                violation(occIndex, "slot map parallel to its segment",
                          cycle,
                          "segment " + std::to_string(k) + " holds " +
                              std::to_string(seg.size()) +
                              " entries but maps " +
                              std::to_string(L.slotAt.size()));
            }
            std::size_t occ_bits = 0;
            for (std::uint64_t w : L.occBits)
                occ_bits +=
                    static_cast<std::size_t>(__builtin_popcountll(w));
            if (occ_bits != seg.size()) {
                violation(occIndex, "occupancy bits == segment size",
                          cycle,
                          "segment " + std::to_string(k) + " holds " +
                              std::to_string(seg.size()) +
                              " entries but sets " +
                              std::to_string(occ_bits) + " bits");
            }
            slot_used.assign(iq.params.segmentSize, 0);
        }

        for (std::size_t pos = 0; pos < seg.size(); ++pos) {
            const auto &inst = seg[pos];

            if (inst->seg.segment != static_cast<int>(k)) {
                violation(segmentOverflow,
                          "entry segment field matches its segment", cycle,
                          "seq " + std::to_string(inst->seq) +
                              " records segment " +
                              std::to_string(inst->seg.segment) +
                              " but lives in " + std::to_string(k) + "\n" +
                              segDump(k));
            }

            unsigned slot = 0;
            bool lane_ok = !soa;
            if (soa && pos < iq.lanes[k].slotAt.size()) {
                const auto &L = iq.lanes[k];
                slot = L.slotAt[pos];
                const bool occupied =
                    slot < iq.params.segmentSize &&
                    ((L.occBits[slot >> 6] >> (slot & 63)) & 1) != 0;
                if (!occupied || slot_used[slot]) {
                    violation(occIndex,
                              "slot map names distinct occupied slots",
                              cycle,
                              "segment " + std::to_string(k) + " pos " +
                                  std::to_string(pos) + " slot " +
                                  std::to_string(slot));
                } else {
                    slot_used[slot] = 1;
                    lane_ok = true;
                    if (L.seq[slot] != inst->seq ||
                        static_cast<int>(L.memCount[slot]) !=
                            inst->seg.numMemberships) {
                        violation(occIndex,
                                  "lane identity matches its instruction",
                                  cycle,
                                  "seq " + std::to_string(inst->seq) +
                                      " lane seq " +
                                      std::to_string(L.seq[slot]) +
                                      " memCount " +
                                      std::to_string(L.memCount[slot]));
                    }
                    const auto srcs = iq.iqSources(*inst);
                    if (L.src[0][slot] != srcs[0] ||
                        L.src[1][slot] != srcs[1]) {
                        violation(occIndex,
                                  "lane operands match the instruction",
                                  cycle,
                                  "seq " + std::to_string(inst->seq) +
                                      " in segment " + std::to_string(k));
                    }
                }
            }
            if (soa && !lane_ok)
                continue;  // lane reads below would be unreliable

            for (int m = 0; m < inst->seg.numMemberships; ++m) {
                MemView v{};
                if (soa) {
                    const auto &L = iq.lanes[k];
                    v.delay = static_cast<int>(L.delay[m][slot]);
                    v.chain = L.chain[m][slot];
                    v.gen = L.gen[m][slot];
                    v.appliedSeq = L.applied[m][slot];
                    // Chain identity is fixed at dispatch; the lane and
                    // the DynInst mirror must agree for ever.
                    const ChainMembership &mir = inst->seg.memberships[m];
                    if (v.chain != mir.chain || v.gen != mir.gen) {
                        violation(occIndex,
                                  "lane chain identity matches dispatch",
                                  cycle,
                                  "seq " + std::to_string(inst->seq) +
                                      " membership " + std::to_string(m) +
                                      " lane chain " +
                                      std::to_string(v.chain) +
                                      " dispatched " +
                                      std::to_string(mir.chain));
                    }
                } else {
                    const ChainMembership &mem = inst->seg.memberships[m];
                    v.delay = mem.delay;
                    v.chain = mem.chain;
                    v.gen = mem.gen;
                    v.appliedSeq = mem.appliedSeq;
                }

                if (v.delay < 0) {
                    violation(negativeDelay, "chain delay >= 0", cycle,
                              "seq " + std::to_string(inst->seq) +
                                  " membership " + std::to_string(m) +
                                  " delay " + std::to_string(v.delay) +
                                  "\n" + segDump(k));
                }

                // Chain-wire exactness: every signal is applied on the
                // cycle it becomes visible at this segment.  A signal
                // generated at cycle g from segment o reaches segment s
                // at g + max(0, s - o); anything still unapplied a full
                // cycle past that arrival was missed by delivery.
                // (Signals generated after this cycle's delivery pass -
                // e.g. load-resume events from the LSQ - are legitimately
                // pending, hence the strict comparison.)
                if (v.chain == kNoChain)
                    continue;
                const auto &cs = iq.stateOf(v.chain);
                if (cs.gen != v.gen)
                    continue;
                if (v.appliedSeq > cs.seqCounter) {
                    violation(wireDelivery,
                              "applied signal count <= signals generated",
                              cycle,
                              "seq " + std::to_string(inst->seq) +
                                  " applied " +
                                  std::to_string(v.appliedSeq) + " > " +
                                  std::to_string(cs.seqCounter) + "\n" +
                                  segDump(k));
                }
                for (std::size_t si = 0; si < cs.log.size(); ++si) {
                    const auto &sig = cs.log.at(si);
                    if (sig.seq <= v.appliedSeq)
                        continue;
                    const Cycle lag =
                        static_cast<int>(k) > sig.originSegment
                            ? static_cast<Cycle>(static_cast<int>(k) -
                                                 sig.originSegment)
                            : 0;
                    if (sig.cycle + lag < cycle) {
                        violation(
                            wireDelivery,
                            "chain-wire signals arrive on schedule", cycle,
                            "seq " + std::to_string(inst->seq) +
                                " in segment " + std::to_string(k) +
                                " missed signal " +
                                std::to_string(sig.seq) + " of chain " +
                                std::to_string(v.chain) +
                                " (generated cycle " +
                                std::to_string(sig.cycle) +
                                " at segment " +
                                std::to_string(sig.originSegment) + ")\n" +
                                segDump(k));
                    }
                }
            }
        }
    }

    // The dispatch-stage register table listens at the top segment.
    {
        const int top = static_cast<int>(n) - 1;
        for (std::size_t r = 0; r < iq.regInfo.size(); ++r) {
            const auto &e = iq.regInfo[r];
            if (!e.pending || e.chain == kNoChain)
                continue;
            const auto &cs = iq.stateOf(e.chain);
            if (cs.gen != e.gen)
                continue;
            for (std::size_t si = 0; si < cs.log.size(); ++si) {
                const auto &sig = cs.log.at(si);
                if (sig.seq <= e.appliedSeq)
                    continue;
                const Cycle lag =
                    top > sig.originSegment
                        ? static_cast<Cycle>(top - sig.originSegment)
                        : 0;
                if (sig.cycle + lag < cycle) {
                    violation(wireDelivery,
                              "chain-wire signals arrive on schedule",
                              cycle,
                              "regInfo[" + std::to_string(r) +
                                  "] missed signal " +
                                  std::to_string(sig.seq) + " of chain " +
                                  std::to_string(e.chain) +
                                  " (generated cycle " +
                                  std::to_string(sig.cycle) +
                                  " at segment " +
                                  std::to_string(sig.originSegment) + ")");
                }
            }
        }
    }

    // Promotion respects the previous-cycle free count and the
    // inter-segment bandwidth (deadlock-recovery force promotions are
    // exempt and not counted by the tracking hooks).
    if (iq.auditTracking && !iq.promotedInto.empty()) {
        for (unsigned k = 0; k + 1 < n; ++k) {
            const unsigned bound = std::min<unsigned>(
                iq.params.issueWidth, iq.freePrevSnapshot[k]);
            if (iq.promotedInto[k] > bound) {
                violation(promotionBound,
                          "promotions <= prev-cycle free entries", cycle,
                          "segment " + std::to_string(k) + " accepted " +
                              std::to_string(iq.promotedInto[k]) +
                              " promotions, bound " +
                              std::to_string(bound) + "\n" + segDump(k));
            }
        }
    }

    // --- Incremental scheduling indices vs. full rescan (section 11) ---
    // Every index the event-driven tick consults is a redundant view
    // over per-entry state; re-derive each one the slow way and count
    // any disagreement.  The SoA engine keeps the per-entry state in
    // lanes and the indices in bitmask words; the checks below follow
    // whichever representation the selected engine actually reads.

    // O(1) occupancy.
    std::size_t occ_scan = 0;
    for (unsigned k = 0; k < n; ++k)
        occ_scan += iq.segments[k].size();
    if (occ_scan != iq.totalOcc) {
        violation(occIndex, "segmented occupancy counter == rescan", cycle,
                  "totalOcc=" + std::to_string(iq.totalOcc) +
                      " but segments hold " + std::to_string(occ_scan));
    }

    // Promotion-candidate counts, activity masks, and per-entry flags;
    // subscriber and countdown back-pointers along the way.
    std::size_t subs_scan = 0;   // resident memberships on a wire
    std::size_t cds_scan = 0;    // resident memberships counting down
    for (unsigned k = 0; k < n; ++k) {
        unsigned elig_scan = 0;
        const auto &seg = iq.segments[k];
        for (std::size_t pos = 0; pos < seg.size(); ++pos) {
            const auto &inst = seg[pos];

            if (soa) {
                const auto &L = iq.lanes[k];
                if (pos >= L.slotAt.size())
                    break;  // parallelism violation already counted
                const unsigned slot = L.slotAt[pos];
                if (slot >= iq.params.segmentSize)
                    continue;

                const bool elig =
                    k >= 1 && SegmentedIq::laneEffDelay(L, slot) <
                                  SegmentedIq::threshold(k - 1);
                if (elig)
                    ++elig_scan;
                const bool elig_bit =
                    ((L.eligBits[slot >> 6] >> (slot & 63)) & 1) != 0;
                if (elig != elig_bit) {
                    violation(promoIndex,
                              "promotion-eligibility bit == rescan",
                              cycle,
                              "seq " + std::to_string(inst->seq) +
                                  " bit " + std::to_string(elig_bit) +
                                  " but predicate says " +
                                  std::to_string(elig) + "\n" +
                                  segDump(k));
                }

                for (int m = 0; m < static_cast<int>(L.memCount[slot]);
                     ++m) {
                    const ChainId ch = L.chain[m][slot];
                    const std::int32_t si = L.subIdx[m][slot];
                    const bool on_wire = ch != kNoChain;
                    if (on_wire != (si >= 0)) {
                        violation(subIndex,
                                  "membership subscribed iff on a wire",
                                  cycle,
                                  "seq " + std::to_string(inst->seq) +
                                      " membership " + std::to_string(m) +
                                      " chain " + std::to_string(ch) +
                                      " subIdx " + std::to_string(si));
                    } else if (on_wire) {
                        ++subs_scan;
                        const auto &subs = iq.stateOf(ch).soaSubs;
                        const auto idx = static_cast<std::size_t>(si);
                        if (idx >= subs.size() || subs[idx].seg != k ||
                            subs[idx].slot != slot ||
                            static_cast<int>(subs[idx].mem) != m) {
                            violation(subIndex,
                                      "subscriber record is exact", cycle,
                                      "seq " + std::to_string(inst->seq) +
                                          " membership " +
                                          std::to_string(m) + " subIdx " +
                                          std::to_string(si));
                        }
                    }

                    const std::uint8_t f = L.flags[m][slot];
                    const bool want_cd =
                        (f & SegmentedIq::kLaneSelfTimed) != 0 &&
                        (f & SegmentedIq::kLaneSuspended) == 0 &&
                        L.delay[m][slot] > 0;
                    const bool cd_bit =
                        ((L.cdBits[m][slot >> 6] >> (slot & 63)) & 1) !=
                        0;
                    if (want_cd != cd_bit) {
                        violation(countdownIndex,
                                  "membership counts down iff self-timed",
                                  cycle,
                                  "seq " + std::to_string(inst->seq) +
                                      " membership " + std::to_string(m) +
                                      " bit " + std::to_string(cd_bit) +
                                      " predicate " +
                                      std::to_string(want_cd));
                    }
                    if (want_cd)
                        ++cds_scan;
                }
                continue;
            }

            const bool elig =
                k >= 1 &&
                iq.effectiveDelay(*inst) < SegmentedIq::threshold(k - 1);
            if (elig)
                ++elig_scan;
            if (elig != inst->seg.promoEligible) {
                violation(promoIndex,
                          "promotion-eligibility flag == rescan", cycle,
                          "seq " + std::to_string(inst->seq) +
                              " flag " +
                              std::to_string(inst->seg.promoEligible) +
                              " but predicate says " +
                              std::to_string(elig) + "\n" + segDump(k));
            }

            for (int m = 0; m < inst->seg.numMemberships; ++m) {
                const ChainMembership &mem = inst->seg.memberships[m];
                const bool on_wire = mem.chain != kNoChain;
                if (on_wire != (mem.subIdx >= 0)) {
                    violation(subIndex,
                              "membership subscribed iff on a wire", cycle,
                              "seq " + std::to_string(inst->seq) +
                                  " membership " + std::to_string(m) +
                                  " chain " + std::to_string(mem.chain) +
                                  " subIdx " + std::to_string(mem.subIdx));
                } else if (on_wire) {
                    ++subs_scan;
                    const auto &subs = iq.stateOf(mem.chain).memberSubs;
                    const auto idx = static_cast<std::size_t>(mem.subIdx);
                    if (idx >= subs.size() ||
                        subs[idx].inst != inst.get() ||
                        subs[idx].slot != m) {
                        violation(subIndex,
                                  "subscriber back-pointer is exact",
                                  cycle,
                                  "seq " + std::to_string(inst->seq) +
                                      " membership " + std::to_string(m) +
                                      " subIdx " +
                                      std::to_string(mem.subIdx));
                    }
                }

                const bool want_cd =
                    mem.selfTimed && !mem.suspended && mem.delay > 0;
                if (want_cd != (mem.cdIdx >= 0)) {
                    violation(countdownIndex,
                              "membership counts down iff self-timed",
                              cycle,
                              "seq " + std::to_string(inst->seq) +
                                  " membership " + std::to_string(m) +
                                  " cdIdx " + std::to_string(mem.cdIdx) +
                                  " predicate " + std::to_string(want_cd));
                } else if (want_cd) {
                    ++cds_scan;
                    const auto idx = static_cast<std::size_t>(mem.cdIdx);
                    if (idx >= iq.memberCountdown.size() ||
                        iq.memberCountdown[idx].inst != inst.get() ||
                        iq.memberCountdown[idx].slot != m) {
                        violation(countdownIndex,
                                  "countdown back-pointer is exact", cycle,
                                  "seq " + std::to_string(inst->seq) +
                                      " membership " + std::to_string(m) +
                                      " cdIdx " +
                                      std::to_string(mem.cdIdx));
                    }
                }
            }
        }

        if (elig_scan != iq.eligCount[k]) {
            violation(promoIndex, "promotion-candidate count == rescan",
                      cycle,
                      "segment " + std::to_string(k) + " tracks " +
                          std::to_string(iq.eligCount[k]) +
                          " candidates, rescan finds " +
                          std::to_string(elig_scan) + "\n" + segDump(k));
        }

        if (soa) {
            // Bit totals catch bits leaked on *freed* slots, which the
            // resident-lane scan above cannot see.
            const auto &L = iq.lanes[k];
            std::size_t elig_bits = 0;
            for (std::uint64_t w : L.eligBits)
                elig_bits +=
                    static_cast<std::size_t>(__builtin_popcountll(w));
            if (elig_bits != iq.eligCount[k]) {
                violation(promoIndex,
                          "eligibility bits == tracked count", cycle,
                          "segment " + std::to_string(k) + " sets " +
                              std::to_string(elig_bits) +
                              " bits, tracks " +
                              std::to_string(iq.eligCount[k]));
            }
            std::size_t cd_bits = 0;
            for (int m = 0; m < 2; ++m) {
                for (std::uint64_t w : L.cdBits[m])
                    cd_bits +=
                        static_cast<std::size_t>(__builtin_popcountll(w));
            }
            if (cd_bits != iq.cdCountSeg[k]) {
                violation(countdownIndex,
                          "countdown bits == tracked count", cycle,
                          "segment " + std::to_string(k) + " sets " +
                              std::to_string(cd_bits) + " bits, tracks " +
                              std::to_string(iq.cdCountSeg[k]));
            }
        }

        if (k < 64) {
            const bool mask_bit = (iq.eligMask >> k) & 1;
            if (mask_bit != (iq.eligCount[k] > 0)) {
                violation(promoIndex, "eligibility mask matches counts",
                          cycle,
                          "segment " + std::to_string(k) + " bit " +
                              std::to_string(mask_bit) + " count " +
                              std::to_string(iq.eligCount[k]));
            }
            const bool near_full =
                iq.params.segmentSize - iq.segments[k].size() <
                iq.params.issueWidth;
            if (near_full != (((iq.nearFullMask >> k) & 1) != 0)) {
                violation(promoIndex, "near-full mask matches occupancy",
                          cycle,
                          "segment " + std::to_string(k) + " holds " +
                              std::to_string(iq.segments[k].size()) +
                              " of " +
                              std::to_string(iq.params.segmentSize));
            }
        }

        // Generalised candidate/occupancy words (both engines maintain
        // them; the SoA promotion pass steers by them).
        const bool word_elig =
            ((iq.eligSegW[k >> 6] >> (k & 63)) & 1) != 0;
        if (word_elig != (iq.eligCount[k] > 0)) {
            violation(promoIndex, "candidate word matches counts", cycle,
                      "segment " + std::to_string(k) + " bit " +
                          std::to_string(word_elig) + " count " +
                          std::to_string(iq.eligCount[k]));
        }
        const std::size_t free_now =
            static_cast<std::size_t>(iq.params.segmentSize) - seg.size();
        const bool near_full_w = free_now < iq.params.issueWidth;
        if (near_full_w !=
            (((iq.nearFullW[k >> 6] >> (k & 63)) & 1) != 0)) {
            violation(promoIndex, "near-full word matches occupancy",
                      cycle,
                      "segment " + std::to_string(k) + " holds " +
                          std::to_string(seg.size()) + " of " +
                          std::to_string(iq.params.segmentSize));
        }
        const bool roomy =
            free_now * 2 >
            3 * static_cast<std::size_t>(iq.params.issueWidth);
        if (roomy != (((iq.roomyW[k >> 6] >> (k & 63)) & 1) != 0)) {
            violation(promoIndex, "roomy word matches occupancy", cycle,
                      "segment " + std::to_string(k) + " holds " +
                          std::to_string(seg.size()) + " of " +
                          std::to_string(iq.params.segmentSize));
        }
    }

    // Back-pointer exactness above makes the per-list maps injective,
    // so matching totals prove the lists hold exactly the resident
    // references - no leaks pinning recycled pool slots.
    if (soa) {
        if (!iq.memberCountdown.empty()) {
            violation(countdownIndex,
                      "reference countdown list idle under SoA", cycle,
                      "list holds " +
                          std::to_string(iq.memberCountdown.size()));
        }
    } else if (cds_scan != iq.memberCountdown.size()) {
        violation(countdownIndex, "countdown list size == rescan", cycle,
                  "list holds " +
                      std::to_string(iq.memberCountdown.size()) +
                      ", rescan finds " + std::to_string(cds_scan));
    }
    std::size_t subs_held = 0;
    std::size_t active_flags = 0;
    for (std::size_t c = 0; c < iq.chainStates.size(); ++c) {
        const auto &cs = iq.chainStates[c];
        subs_held += soa ? cs.soaSubs.size() : cs.memberSubs.size();
        if (cs.active)
            ++active_flags;
        if (!cs.log.empty() && !cs.active) {
            violation(subIndex, "chains with signals in flight are active",
                      cycle,
                      "chain " + std::to_string(c) + " logs " +
                          std::to_string(cs.log.size()) +
                          " signals but is not on the active list");
        }
        // The wire state either carries the allocator's current
        // generation (allocated, or draining before reuse) or lags it
        // by exactly the free() bump; anything else is gen drift.
        const ChainId id = static_cast<ChainId>(c);
        if (!iq.chains.isLive(id, cs.gen) &&
            iq.chains.generation(id) != cs.gen + 1) {
            violation(subIndex, "chain-state generation tracks allocator",
                      cycle,
                      "chain " + std::to_string(c) + " state gen " +
                          std::to_string(cs.gen) + " allocator gen " +
                          std::to_string(iq.chains.generation(id)));
        }
        // The packed mirror dispatch reads (SoA fast path) must track
        // the wire scalars at every mutation site, in either engine.
        if (c >= iq.chainHot.size()) {
            violation(subIndex, "chain-hot mirror allocated", cycle,
                      "chain " + std::to_string(c) +
                          " beyond mirror of " +
                          std::to_string(iq.chainHot.size()));
        } else {
            const auto &hot = iq.chainHot[c];
            if (hot.seqCounter != cs.seqCounter || hot.gen != cs.gen ||
                static_cast<int>(hot.headSegment) != cs.headSegment ||
                (hot.selfTimed != 0) != cs.selfTimed ||
                (hot.suspended != 0) != cs.suspended) {
                violation(subIndex, "chain-hot mirror matches wire state",
                          cycle,
                          "chain " + std::to_string(c) + " mirror gen " +
                              std::to_string(hot.gen) + " head " +
                              std::to_string(hot.headSegment) +
                              " vs state gen " + std::to_string(cs.gen) +
                              " head " + std::to_string(cs.headSegment));
            }
        }
    }
    if (subs_held != subs_scan) {
        violation(subIndex, "subscriber list sizes == rescan", cycle,
                  "lists hold " + std::to_string(subs_held) +
                      ", rescan finds " + std::to_string(subs_scan));
    }
    if (active_flags != iq.activeChains.size()) {
        violation(subIndex, "active-chain list size == flags", cycle,
                  "list holds " + std::to_string(iq.activeChains.size()) +
                      ", " + std::to_string(active_flags) +
                      " chains are flagged active");
    }

    // Register-table side: subscription and countdown back-pointers,
    // plus the availability mask the fast-plan path consults.
    std::size_t reg_cds_scan = 0;
    for (std::size_t r = 0; r < iq.regInfo.size(); ++r) {
        const auto &e = iq.regInfo[r];
        if (iq.regSubChain[r] != e.chain) {
            violation(subIndex, "table subscription tracks its chain",
                      cycle,
                      "regInfo[" + std::to_string(r) + "] chain " +
                          std::to_string(e.chain) + " but subscribed to " +
                          std::to_string(iq.regSubChain[r]));
        } else if (e.chain != kNoChain) {
            const auto &subs = iq.stateOf(e.chain).regSubs;
            const int pos = iq.regSubPos[r];
            if (pos < 0 ||
                static_cast<std::size_t>(pos) >= subs.size() ||
                subs[static_cast<std::size_t>(pos)] !=
                    static_cast<RegIndex>(r)) {
                violation(subIndex, "table subscriber back-pointer exact",
                          cycle,
                          "regInfo[" + std::to_string(r) + "] pos " +
                              std::to_string(pos));
            }
        }

        const bool want_cd =
            e.pending && e.selfTimed && !e.suspended && e.latency > 0;
        const int cd = iq.regCdPos[r];
        if (want_cd != (cd >= 0)) {
            violation(countdownIndex,
                      "table entry counts down iff self-timed", cycle,
                      "regInfo[" + std::to_string(r) + "] cdPos " +
                          std::to_string(cd) + " predicate " +
                          std::to_string(want_cd));
        } else if (want_cd) {
            ++reg_cds_scan;
            if (static_cast<std::size_t>(cd) >= iq.regCountdown.size() ||
                iq.regCountdown[static_cast<std::size_t>(cd)] !=
                    static_cast<RegIndex>(r)) {
                violation(countdownIndex,
                          "table countdown back-pointer exact", cycle,
                          "regInfo[" + std::to_string(r) + "] cdPos " +
                              std::to_string(cd));
            }
        }

        const bool avail = SegmentedIq::entryAvailable(e);
        if (avail != (((iq.regAvail >> r) & 1) != 0)) {
            violation(readyIndex,
                      "register-availability mask == rescan", cycle,
                      "regInfo[" + std::to_string(r) + "] available " +
                          std::to_string(avail) + " but mask bit is " +
                          std::to_string((iq.regAvail >> r) & 1));
        }
    }
    if (reg_cds_scan != iq.regCountdown.size()) {
        violation(countdownIndex, "table countdown size == rescan", cycle,
                  "list holds " + std::to_string(iq.regCountdown.size()) +
                      ", rescan finds " + std::to_string(reg_cds_scan));
    }
}

void
Auditor::auditIdeal(IdealIq &iq, Cycle cycle)
{
    // The ready list must hold exactly the resident instructions whose
    // gating operands are all ready; pendingOps must agree with the
    // scoreboard (readiness is monotone during residency, so the event
    // counts cannot drift from the polled truth).
    auto in_ready = [&iq](const DynInstPtr &inst) {
        auto pos = std::lower_bound(
            iq.readyList.begin(), iq.readyList.end(), inst,
            [](const DynInstPtr &a, const DynInstPtr &b) {
                return a->seq < b->seq;
            });
        return pos != iq.readyList.end() && *pos == inst;
    };

    for (const auto &inst : iq.insts) {
        if (!inst->ideal.inQueue) {
            violation(readyIndex, "resident instructions are flagged",
                      cycle, "seq " + std::to_string(inst->seq) +
                                 " resident but not inQueue");
        }
        int pending_scan = 0;
        for (RegIndex r : iq.iqSources(*inst)) {
            if (r != kInvalidReg && !iq.scoreboard.isReady(r))
                ++pending_scan;
        }
        if (pending_scan != inst->ideal.pendingOps) {
            violation(readyIndex, "pending-operand count == rescan", cycle,
                      "seq " + std::to_string(inst->seq) + " tracks " +
                          std::to_string(inst->ideal.pendingOps) +
                          " pending, scoreboard says " +
                          std::to_string(pending_scan));
        }
        if ((pending_scan == 0) != in_ready(inst)) {
            violation(readyIndex, "ready list == operands-ready residents",
                      cycle,
                      "seq " + std::to_string(inst->seq) + " pending " +
                          std::to_string(pending_scan) +
                          (in_ready(inst) ? " yet on" : " yet off") +
                          " the ready list");
        }
    }
    if (iq.readyList.size() > iq.insts.size()) {
        violation(readyIndex, "ready list within residency", cycle,
                  "ready " + std::to_string(iq.readyList.size()) +
                      " > resident " + std::to_string(iq.insts.size()));
    }
    for (const auto &inst : iq.readyList) {
        auto pos = std::lower_bound(
            iq.insts.begin(), iq.insts.end(), inst,
            [](const DynInstPtr &a, const DynInstPtr &b) {
                return a->seq < b->seq;
            });
        if (pos == iq.insts.end() || *pos != inst) {
            violation(readyIndex, "ready instructions are resident", cycle,
                      "seq " + std::to_string(inst->seq) +
                          " ready but not resident");
        }
    }
}

} // namespace sciq
