/**
 * @file
 * Pipeline visualiser: run a small program on the segmented IQ with
 * tracing attached and print a per-instruction timeline, showing chain
 * scheduling in action - watch the dependants of a missing load hold
 * position and then self-time toward issue after the data returns.
 *
 * Usage: pipeview [iq=segmented|ideal|prescheduled|fifo] [rows=N]
 */

#include <iostream>

#include "common/config.hh"
#include "isa/assembler.hh"
#include "sim/pipe_trace.hh"
#include "sim/sim_config.hh"

using namespace sciq;

namespace {

// Two iterations of a load-headed dependence chain plus independent
// work, small enough to read as a timeline.
const char *kSource = R"(
    .base 0x1000
    .doubles 0x20000 1.5 2.5 3.5 4.5 5.5 6.5 7.5 8.5
    lui  r11, 8            # 0x20000
    addi r13, r0, 3        # iterations
loop:
    fld  f1, 0(r11)        # chain head (first touch misses)
    fmul f2, f1, f1        # chain member
    fadd f3, f2, f1        # chain member
    fadd f4, f4, f3        # accumulate
    addi r12, r12, 1       # independent work
    addi r14, r12, 5
    addi r11, r11, 8
    addi r13, r13, -1
    bne  r13, r0, loop
    fcvtfi r9, f4
    xor  r10, r10, r9
    halt
)";

} // namespace

int
main(int argc, char **argv)
{
    ConfigMap args = ConfigMap::fromArgs(argc, argv);

    SimConfig cfg;
    cfg.core.iq.numEntries = 128;
    cfg.core.iq.segmentSize = 32;
    cfg.core.iq.maxChains = 64;
    cfg.apply(args);
    cfg.core.finalize();

    Program prog = assemble(kSource, "pipeview-demo");
    OooCore core(prog, cfg.core);
    PipeTrace trace;
    trace.traceSquashed = args.getBool("squashed", false);
    core.setObserver(&trace);

    core.run(~0ULL, 100000);
    std::cout << "IQ design: " << iqKindName(cfg.core.iqKind)
              << ", halted=" << core.halted() << ", cycles "
              << core.cycles() << "\n\n";
    trace.render(std::cout, 0,
                 static_cast<std::size_t>(args.getInt("rows", 48)));

    std::cout << "\nNote the gap between 'd' and 'i' on the fmul/fadd "
                 "chain after each fld: the chain\nholds its members "
                 "back until the load's latency resolves - compare "
                 "iq=ideal.\n";
    return core.halted() ? 0 : 1;
}
