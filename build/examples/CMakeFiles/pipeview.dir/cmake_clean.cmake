file(REMOVE_RECURSE
  "CMakeFiles/pipeview.dir/pipeview.cpp.o"
  "CMakeFiles/pipeview.dir/pipeview.cpp.o.d"
  "pipeview"
  "pipeview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
