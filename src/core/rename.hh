/**
 * @file
 * Register renaming: architectural-to-physical map with a free list,
 * plus the physical-register ready scoreboard the schedulers consult.
 * Squash recovery walks the ROB youngest-first undoing each mapping,
 * so no map checkpoints are needed.
 */

#ifndef SCIQ_CORE_RENAME_HH
#define SCIQ_CORE_RENAME_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/opcodes.hh"

namespace sciq {

/** Ready bit per physical register. */
class Scoreboard
{
  public:
    explicit Scoreboard(unsigned num_phys_regs)
        : ready(num_phys_regs, true)
    {
    }

    bool isReady(RegIndex phys) const
    {
        return phys == kInvalidReg || ready[phys];
    }

    void setReady(RegIndex phys) { ready[phys] = true; }
    void clearReady(RegIndex phys) { ready[phys] = false; }

    std::size_t size() const { return ready.size(); }

  private:
    std::vector<bool> ready;
};

class RenameMap
{
  public:
    /**
     * @param num_phys_regs Total physical registers; must be at least
     *        kNumArchRegs + the maximum number of in-flight dests.
     */
    explicit RenameMap(unsigned num_phys_regs)
        : map(kNumArchRegs), numPhys(num_phys_regs)
    {
        SCIQ_ASSERT(num_phys_regs > kNumArchRegs,
                    "need more physical than architectural registers");
        // Identity-map the architectural registers; the rest are free.
        for (RegIndex r = 0; r < kNumArchRegs; ++r)
            map[r] = r;
        for (RegIndex p = kNumArchRegs; p < num_phys_regs; ++p)
            freeList.push_back(p);
    }

    /** Current physical register holding architectural register r. */
    RegIndex
    lookup(RegIndex arch) const
    {
        SCIQ_ASSERT(arch < kNumArchRegs, "bad arch reg %u", arch);
        return map[arch];
    }

    bool hasFreeReg() const { return !freeList.empty(); }
    std::size_t freeRegs() const { return freeList.size(); }

    /**
     * Allocate a new physical register for `arch`.
     * @return {new phys, previous phys (for undo/freeing at commit)}.
     */
    std::pair<RegIndex, RegIndex>
    allocate(RegIndex arch)
    {
        SCIQ_ASSERT(!freeList.empty(), "rename out of physical registers");
        RegIndex phys = freeList.back();
        freeList.pop_back();
        RegIndex prev = map[arch];
        map[arch] = phys;
        return {phys, prev};
    }

    /** Undo an allocation during squash (youngest-first order!). */
    void
    undo(RegIndex arch, RegIndex allocated, RegIndex prev)
    {
        SCIQ_ASSERT(map[arch] == allocated,
                    "rename undo out of order (arch %u)", arch);
        map[arch] = prev;
        freeList.push_back(allocated);
    }

    /** Release the previous mapping once an instruction commits. */
    void
    release(RegIndex prev_phys)
    {
        if (prev_phys != kInvalidReg)
            freeList.push_back(prev_phys);
    }

    unsigned numPhysRegs() const { return numPhys; }

  private:
    std::vector<RegIndex> map;
    std::vector<RegIndex> freeList;
    unsigned numPhys;
};

} // namespace sciq

#endif // SCIQ_CORE_RENAME_HH
