/**
 * @file
 * M1: google-benchmark microbenchmarks of the simulator's hot
 * components - useful when tuning the simulator itself (the per-cycle
 * cost of the segmented IQ's tick dominates large-queue runs).
 */

#include <benchmark/benchmark.h>

#include "branch/branch_predictor.hh"
#include "branch/hit_miss_predictor.hh"
#include "common/random.hh"
#include "core/ooo_core.hh"
#include "isa/functional_core.hh"
#include "mem/hierarchy.hh"
#include "sim/sim_config.hh"
#include "workload/workloads.hh"

using namespace sciq;

namespace {

void
BM_FunctionalCoreStep(benchmark::State &state)
{
    WorkloadParams wp;
    wp.iterations = 1 << 20;
    Program prog = buildSwim(wp);
    FunctionalCore core(prog);
    for (auto _ : state) {
        if (core.halted())
            state.SkipWithError("program ended early");
        core.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FunctionalCoreStep);

void
BM_CacheHit(benchmark::State &state)
{
    MemHierarchy mem;
    // Warm one line.
    mem.dcache().warmInsert(0x8000);
    Cycle cycle = 0;
    for (auto _ : state) {
        mem.dcache().access(0x8000, false, ++cycle,
                            [](Cycle, AccessOutcome) {});
        mem.tick(cycle + 10);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheHit);

void
BM_BranchPredict(benchmark::State &state)
{
    HybridBranchPredictor bp;
    Random rng(1);
    Addr pc = 0x1000;
    for (auto _ : state) {
        auto snap = bp.snapshot();
        bool pred = bp.predict(pc);
        benchmark::DoNotOptimize(pred);
        bp.update(pc, rng.chance(0.5), snap);
        pc = 0x1000 + (rng.next() & 0xFFC);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BranchPredict);

void
BM_HitMissPredict(benchmark::State &state)
{
    HitMissPredictor hmp;
    Random rng(2);
    for (auto _ : state) {
        Addr pc = 0x1000 + (rng.next() & 0xFFC);
        bool hit = hmp.peekHit(pc);
        benchmark::DoNotOptimize(hit);
        hmp.update(pc, rng.chance(0.9));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HitMissPredict);

/** Whole-pipeline cycles/second for each IQ design on swim. */
void
BM_CoreTick(benchmark::State &state)
{
    const auto kind = static_cast<IqKind>(state.range(0));
    WorkloadParams wp;
    wp.iterations = 1 << 20;  // effectively unbounded for the bench
    Program prog = buildSwim(wp);
    CoreParams params;
    params.iqKind = kind;
    params.iq.numEntries = 512;
    params.iq.maxChains = 128;
    params.iq.useHmp = true;
    params.iq.useLrp = true;
    OooCore core(prog, params);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel(iqKindName(kind));
}
BENCHMARK(BM_CoreTick)
    ->Arg(static_cast<int>(IqKind::Ideal))
    ->Arg(static_cast<int>(IqKind::Segmented))
    ->Arg(static_cast<int>(IqKind::Prescheduled))
    ->Arg(static_cast<int>(IqKind::Fifo))
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
