/** @file Tests for the sparse simulated memory. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/sparse_memory.hh"

using namespace sciq;

TEST(SparseMemory, UntouchedReadsZero)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.read(0xFFFFFFFFFFFFFF00ULL, 4), 0u);
    EXPECT_EQ(m.numPages(), 0u);
}

TEST(SparseMemory, ReadWriteWidths)
{
    SparseMemory m;
    m.write(0x100, 8, 0x1122334455667788ULL);
    EXPECT_EQ(m.read(0x100, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.read(0x100, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x104, 4), 0x11223344u);
    EXPECT_EQ(m.read(0x100, 1), 0x88u);
    EXPECT_EQ(m.read(0x107, 1), 0x11u);
}

TEST(SparseMemory, PartialWritePreservesNeighbours)
{
    SparseMemory m;
    m.write(0x200, 8, ~0ULL);
    m.write(0x202, 2, 0);
    EXPECT_EQ(m.read(0x200, 8), 0xFFFFFFFF0000FFFFULL);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory m;
    const Addr boundary = SparseMemory::kPageSize;
    m.write(boundary - 4, 8, 0xAABBCCDDEEFF0011ULL);
    EXPECT_EQ(m.read(boundary - 4, 8), 0xAABBCCDDEEFF0011ULL);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(SparseMemory, WrapAroundAddressSpaceIsSafe)
{
    SparseMemory m;
    // Wrong-path execution can produce addresses near 2^64.
    m.write(~0ULL - 3, 8, 0x1234567890ABCDEFULL);
    EXPECT_EQ(m.read(~0ULL - 3, 8), 0x1234567890ABCDEFULL);
}

TEST(SparseMemory, Blobs)
{
    SparseMemory m;
    std::uint8_t data[5] = {1, 2, 3, 4, 5};
    m.writeBlob(0x300, data, 5);
    std::uint8_t out[5] = {};
    m.readBlob(0x300, out, 5);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(out[i], data[i]);
}

TEST(SparseMemory, Doubles)
{
    SparseMemory m;
    m.writeDouble(0x400, 3.14159);
    EXPECT_DOUBLE_EQ(m.readDouble(0x400), 3.14159);
    m.writeDouble(0x408, -0.0);
    EXPECT_EQ(m.read(0x408, 8), 0x8000000000000000ULL);
}

TEST(SparseMemory, EqualContentsIgnoresZeroPages)
{
    SparseMemory a, b;
    EXPECT_TRUE(a.equalContents(b));
    a.write(0x100, 8, 0);  // allocates a page of zeros
    EXPECT_TRUE(a.equalContents(b));
    EXPECT_TRUE(b.equalContents(a));
    a.write(0x100, 1, 7);
    EXPECT_FALSE(a.equalContents(b));
    b.write(0x100, 1, 7);
    EXPECT_TRUE(a.equalContents(b));
    b.write(0x5000, 4, 9);
    EXPECT_FALSE(a.equalContents(b));
}

TEST(SparseMemory, BadSizePanics)
{
    SparseMemory m;
    EXPECT_THROW(m.read(0, 0), PanicError);
    EXPECT_THROW(m.read(0, 9), PanicError);
    EXPECT_THROW(m.write(0, 16, 1), PanicError);
}
