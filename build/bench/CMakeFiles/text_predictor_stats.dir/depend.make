# Empty dependencies file for text_predictor_stats.
# This may be replaced when dependencies are built.
