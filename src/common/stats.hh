/**
 * @file
 * Lightweight statistics package modelled on gem5's Stats.
 *
 * A StatGroup owns named statistics; each simulated component registers
 * its counters with its group.  Groups can be dumped as text and queried
 * programmatically by the benchmark harnesses.
 */

#ifndef SCIQ_COMMON_STATS_HH
#define SCIQ_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "logging.hh"

namespace sciq {
namespace stats {

/** A named scalar counter. */
class Scalar
{
  public:
    Scalar() = default;

    void inc(double v = 1.0) { val += v; }
    void set(double v) { val = v; }
    double value() const { return val; }
    void reset() { val = 0.0; }

  private:
    double val = 0.0;
};

/** Running average (sum / count). */
class Average
{
  public:
    void
    sample(double v)
    {
        sum += v;
        ++count;
    }

    double value() const { return count ? sum / count : 0.0; }
    double total() const { return sum; }
    std::uint64_t samples() const { return count; }

    void
    reset()
    {
        sum = 0.0;
        count = 0;
    }

  private:
    double sum = 0.0;
    std::uint64_t count = 0;
};

/** Min/max/mean tracker with fixed-width histogram buckets. */
class Distribution
{
  public:
    Distribution() { configure(0, 64, 1); }

    /** Buckets cover [lo, hi) with the given bucket width. */
    void
    configure(double lo_, double hi_, double bucket_width)
    {
        SCIQ_ASSERT(hi_ > lo_ && bucket_width > 0,
                    "bad distribution bounds");
        lo = lo_;
        hi = hi_;
        width = bucket_width;
        buckets.assign(
            static_cast<std::size_t>((hi_ - lo_) / bucket_width) + 1, 0);
        reset();
    }

    void
    sample(double v)
    {
        sum += v;
        ++count;
        if (count == 1 || v < minVal)
            minVal = v;
        if (count == 1 || v > maxVal)
            maxVal = v;
        std::size_t idx;
        if (v < lo) {
            ++underflow;
            return;
        } else if (v >= hi) {
            idx = buckets.size() - 1;
        } else {
            idx = static_cast<std::size_t>((v - lo) / width);
        }
        ++buckets[idx];
    }

    double mean() const { return count ? sum / count : 0.0; }
    double min() const { return count ? minVal : 0.0; }
    double max() const { return count ? maxVal : 0.0; }
    std::uint64_t samples() const { return count; }
    const std::vector<std::uint64_t> &histogram() const { return buckets; }

    void
    reset()
    {
        sum = 0.0;
        count = 0;
        underflow = 0;
        minVal = 0.0;
        maxVal = 0.0;
        for (auto &b : buckets)
            b = 0;
    }

  private:
    double lo = 0.0, hi = 64.0, width = 1.0;
    double sum = 0.0;
    double minVal = 0.0, maxVal = 0.0;
    std::uint64_t count = 0;
    std::uint64_t underflow = 0;
    std::vector<std::uint64_t> buckets;
};

/**
 * A named collection of statistics.
 *
 * Values are registered by pointer; the owning component must outlive
 * the group.  Lookup by dotted name supports the experiment harness.
 */
class Group
{
  public:
    explicit Group(std::string name_) : groupName(std::move(name_)) {}

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    void
    addScalar(const std::string &name, Scalar *s, const std::string &desc)
    {
        scalars[name] = {s, desc};
    }

    void
    addAverage(const std::string &name, Average *a, const std::string &desc)
    {
        averages[name] = {a, desc};
    }

    void
    addDistribution(const std::string &name, Distribution *d,
                    const std::string &desc)
    {
        distributions[name] = {d, desc};
    }

    /** Attach a child group (e.g. core.iq). */
    void addChild(Group *child) { children.push_back(child); }

    /**
     * Value of a statistic by (possibly dotted) name; panics on unknown
     * names.  Dots first select child groups; a distribution is read
     * through its sub-fields: `dist.mean`, `dist.min`, `dist.max`,
     * `dist.samples`.
     */
    double lookup(const std::string &name) const;

    /** True if the (possibly dotted) name resolves in this group tree. */
    bool contains(const std::string &name) const;

    /** Print every statistic, one per line: name value # desc. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Snapshot the whole stats tree as one JSON object: scalars and
     * averages as numbers, distributions as objects with
     * mean/min/max/samples and the raw histogram, children as nested
     * objects keyed by group name.  Non-finite values follow the
     * tree-wide convention and serialise as `null`.
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /** Reset every registered statistic (incl. children). */
    void resetAll();

    const std::string &name() const { return groupName; }

  private:
    template <typename T>
    struct Entry
    {
        T *stat = nullptr;
        std::string desc;
    };

    std::string groupName;
    std::map<std::string, Entry<Scalar>> scalars;
    std::map<std::string, Entry<Average>> averages;
    std::map<std::string, Entry<Distribution>> distributions;
    std::vector<Group *> children;
};

} // namespace stats
} // namespace sciq

#endif // SCIQ_COMMON_STATS_HH
