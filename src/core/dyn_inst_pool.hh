/**
 * @file
 * Slab/free-list recycler for DynInst storage.  Every core owns one
 * pool; instructions retired at commit or killed by a squash return
 * their storage to the free list and the next fetch reuses it, so the
 * steady-state fetch path performs no heap allocation at all.
 *
 * The pool is deliberately not thread-safe: a DynInst never leaves the
 * core that fetched it, and concurrent sweep workers each drive their
 * own core (and therefore their own pool).
 */

#ifndef SCIQ_CORE_DYN_INST_POOL_HH
#define SCIQ_CORE_DYN_INST_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/logging.hh"
#include "core/dyn_inst.hh"

namespace sciq {

class DynInstPool
{
  public:
    explicit DynInstPool(std::size_t insts_per_slab = 256)
        : slabInsts_(insts_per_slab ? insts_per_slab : 1)
    {
    }

    DynInstPool(const DynInstPool &) = delete;
    DynInstPool &operator=(const DynInstPool &) = delete;

    ~DynInstPool()
    {
        if (live_ != 0) {
            // Ownership bug: a DynInstPtr outlived its pool.  Leak the
            // slabs so the outstanding pointers stay readable rather
            // than dangling into freed memory.
            warn("DynInstPool destroyed with %zu live instructions",
                 live_);
            for (auto &slab : slabs_)
                slab.release();
        }
    }

    /** Hand out a default-constructed instruction, reusing storage. */
    DynInstPtr
    create()
    {
        void *slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
            ++reused_;
        } else {
            slot = freshSlot();
            ++allocated_;
        }
        DynInst *inst = new (slot) DynInst;
        inst->pool_ = this;
        ++live_;
        return DynInstPtr(inst);
    }

    /**
     * Hand out a recycled fetch checkpoint, or null when none is
     * banked.  Checkpoints are salvaged from dying instructions in
     * recycle(), so the steady-state control-inst fetch path reuses
     * the ~0.5 KiB register-snapshot allocation instead of paying
     * new/delete per branch.  Every field is overwritten by the
     * caller, so no clearing is needed here.
     */
    std::unique_ptr<FetchCheckpoint>
    takeCheckpoint()
    {
        if (ckptFree_.empty())
            return nullptr;
        auto ckpt = std::move(ckptFree_.back());
        ckptFree_.pop_back();
        return ckpt;
    }

    std::size_t liveCount() const { return live_; }
    std::size_t slabCount() const { return slabs_.size(); }
    std::uint64_t slotsAllocated() const { return allocated_; }
    std::uint64_t slotsReused() const { return reused_; }

  private:
    friend class DynInstPtr;

    /** Called by DynInstPtr when the last reference dies. */
    void
    recycle(DynInst *inst)
    {
        if (inst->checkpoint && ckptFree_.size() < kCkptFreeCap)
            ckptFree_.push_back(std::move(inst->checkpoint));
        inst->~DynInst();
        free_.push_back(inst);
        SCIQ_ASSERT(live_ > 0, "DynInstPool recycle underflow");
        --live_;
    }

    void *
    freshSlot()
    {
        if (nextInSlab_ == slabInsts_ || slabs_.empty()) {
            slabs_.emplace_back(
                new std::byte[slabInsts_ * sizeof(DynInst)]);
            nextInSlab_ = 0;
        }
        std::byte *base = slabs_.back().get();
        return base + (nextInSlab_++) * sizeof(DynInst);
    }

    /** Bound on banked checkpoints: more in-flight control insts than
     *  this implies an ROB far larger than any swept configuration. */
    static constexpr std::size_t kCkptFreeCap = 512;

    std::size_t slabInsts_;
    std::size_t nextInSlab_ = 0;
    std::vector<std::unique_ptr<std::byte[]>> slabs_;
    std::vector<void *> free_;
    std::vector<std::unique_ptr<FetchCheckpoint>> ckptFree_;
    std::size_t live_ = 0;
    std::uint64_t allocated_ = 0;
    std::uint64_t reused_ = 0;
};

} // namespace sciq

#endif // SCIQ_CORE_DYN_INST_POOL_HH
