#include "shard.hh"

#include <algorithm>
#include <cstdlib>
#include <list>
#include <sstream>
#include <thread>

#include <poll.h>
#include <unistd.h>

#include "common/errors.hh"
#include "common/logging.hh"
#include "sim/checkpoint.hh"
#include "sim/fault_injector.hh"
#include "sim/job_exec.hh"
#include "sim/journal.hh"
#include "sim/worker_proto.hh"

namespace sciq {

std::uint64_t
shardHash(const std::string &sweep_key)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : sweep_key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

unsigned
shardOf(const std::string &sweep_key, unsigned shards)
{
    if (shards <= 1)
        return 0;
    return static_cast<unsigned>(shardHash(sweep_key) % shards);
}

std::string
configSpec(const SimConfig &config)
{
    std::ostringstream os;
    os << sweepKey(config)
       << " wrong_path=" << config.core.modelWrongPath
       << " resize_interval=" << config.core.iq.resizeInterval
       << " watchdog_cycles=" << config.core.watchdogCycles
       << " validate=" << config.validate << " audit=" << config.audit
       << " audit_panic=" << config.auditPanic
       << " bb_cache=" << config.bbCache
       << " iq_soa=" << config.core.iq.soaLayout;
    // Architected fault knobs travel with the job so negative tests
    // behave the same distributed as local; budgeted injector faults
    // stay worker-local by design.
    if (config.core.faultCommitStallAt > 0)
        os << " fault_commit_stall=" << config.core.faultCommitStallAt;
    if (config.core.iq.auditInjectOverPromote)
        os << " fault_overpromote=1";
    return os.str();
}

SimConfig
configFromSpec(const std::string &spec)
{
    ConfigMap map;
    std::istringstream is(spec);
    std::string token;
    while (is >> token) {
        if (!map.parseLine(token))
            throw ConfigError("malformed config-spec token '" + token +
                              "'");
    }
    SimConfig config;
    config.apply(map);
    return config;
}

// ---------------------------------------------------------------------
// JobBoard

JobBoard::JobBoard(const std::vector<std::string> &keys,
                   const std::vector<char> &done, const Options &options)
    : options_(options)
{
    if (options_.shards == 0)
        options_.shards = 1;
    jobs_.resize(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        jobs_[i].key = keys[i];
        jobs_[i].shard = shardOf(keys[i], options_.shards);
        if (i < done.size() && done[i]) {
            jobs_[i].done = true;
            ++doneCount_;
        }
    }
}

unsigned
JobBoard::shardOfJob(std::size_t index) const
{
    return jobs_[index].shard;
}

JobBoard::Grant
JobBoard::lease(int worker, unsigned shard, Clock::time_point now,
                std::size_t &index)
{
    if (allDone())
        return Grant::Drained;

    auto grant = [&](std::size_t i) {
        jobs_[i].active.push_back(
            {worker, now, now + std::chrono::milliseconds(options_.leaseMs)});
        ++leases_;
        index = i;
        return Grant::Leased;
    };

    // 1. Pending work from the worker's own shard, in input order.
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const Job &j = jobs_[i];
        if (!j.done && j.active.empty() && j.shard == shard)
            return grant(i);
    }

    // 2. Steal from the shard with the most pending work so straggler
    //    shards drain fastest.
    std::vector<std::size_t> pendingPerShard(options_.shards, 0);
    bool anyPending = false;
    for (const Job &j : jobs_) {
        if (!j.done && j.active.empty()) {
            ++pendingPerShard[j.shard];
            anyPending = true;
        }
    }
    if (anyPending) {
        const unsigned victim = static_cast<unsigned>(std::distance(
            pendingPerShard.begin(),
            std::max_element(pendingPerShard.begin(),
                             pendingPerShard.end())));
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            const Job &j = jobs_[i];
            if (!j.done && j.active.empty() && j.shard == victim) {
                ++steals_;
                return grant(i);
            }
        }
    }

    // 3. Straggler hedging: duplicate the longest-outstanding lease
    //    once it is old enough, as long as this worker does not
    //    already hold it.  First result wins; the loser is discarded.
    const auto oldEnough =
        now - std::chrono::milliseconds(options_.duplicateAfterMs);
    std::size_t best = jobs_.size();
    Clock::time_point bestStart{};
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const Job &j = jobs_[i];
        if (j.done || j.active.empty())
            continue;
        Clock::time_point oldest = j.active.front().start;
        bool mine = false;
        for (const Lease &l : j.active) {
            oldest = std::min(oldest, l.start);
            mine = mine || l.worker == worker;
        }
        if (mine || oldest > oldEnough)
            continue;
        if (best == jobs_.size() || oldest < bestStart) {
            best = i;
            bestStart = oldest;
        }
    }
    if (best != jobs_.size()) {
        ++duplicates_;
        return grant(best);
    }
    return Grant::Wait;
}

bool
JobBoard::complete(std::size_t index)
{
    Job &j = jobs_[index];
    if (j.done)
        return false;
    j.done = true;
    j.active.clear();
    ++doneCount_;
    return true;
}

void
JobBoard::drop(std::size_t index, std::vector<std::size_t> &requeued,
               std::vector<std::size_t> &failed)
{
    Job &j = jobs_[index];
    ++j.drops;
    if (j.drops > options_.maxLeaseDrops) {
        j.done = true;
        ++doneCount_;
        failed.push_back(index);
    } else {
        ++requeues_;
        requeued.push_back(index);
    }
}

void
JobBoard::workerLost(int worker, std::vector<std::size_t> &requeued,
                     std::vector<std::size_t> &failed)
{
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        Job &j = jobs_[i];
        if (j.done || j.active.empty())
            continue;
        const std::size_t before = j.active.size();
        j.active.erase(
            std::remove_if(j.active.begin(), j.active.end(),
                           [worker](const Lease &l) {
                               return l.worker == worker;
                           }),
            j.active.end());
        // Only an orphaned job (no surviving duplicate lease) counts
        // as a drop; a lost duplicate is covered by the original.
        if (before != j.active.size() && j.active.empty())
            drop(i, requeued, failed);
    }
}

void
JobBoard::expireLeases(Clock::time_point now,
                       std::vector<std::size_t> &requeued,
                       std::vector<std::size_t> &failed)
{
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        Job &j = jobs_[i];
        if (j.done || j.active.empty())
            continue;
        const std::size_t before = j.active.size();
        j.active.erase(std::remove_if(j.active.begin(), j.active.end(),
                                      [now](const Lease &l) {
                                          return l.deadline <= now;
                                      }),
                       j.active.end());
        if (before != j.active.size() && j.active.empty())
            drop(i, requeued, failed);
    }
}

// ---------------------------------------------------------------------
// Coordinator

namespace {

struct Conn
{
    Conn(int id_, int fd) : id(id_), ch(fd) {}

    int id;
    LineChannel ch;
    bool helloed = false;
    bool dead = false;
    unsigned shard = 0;
    std::string name;
};

} // namespace

std::vector<RunResult>
serveSweep(const std::vector<SimConfig> &configs,
           const ServeOptions &options, ServeStats *stats_out)
{
    using Clock = JobBoard::Clock;

    for (const SimConfig &cfg : configs) {
        if (cfg.deadlineSec > 0.0) {
            throw ConfigError(
                "distributed sweeps cannot serve deadline_sec jobs: "
                "wall-clock deadlines are not deterministic across "
                "workers (run them with a local sweep instead)");
        }
    }

    const std::size_t total = configs.size();
    std::vector<RunResult> results(total);
    std::vector<std::string> keys(total), specs(total);
    for (std::size_t i = 0; i < total; ++i) {
        keys[i] = sweepKey(configs[i]);
        specs[i] = configSpec(configs[i]);
    }

    // Resume exactly like SweepRunner::run: journaled-ok entries whose
    // (index, key) still match are merged up front and never re-leased.
    std::vector<char> have(total, 0);
    std::unique_ptr<ResultJournal> journal;
    if (!options.journal.empty()) {
        applyJournal(options.journal, keys, results, have);
        journal = std::make_unique<ResultJournal>(options.journal);
    }

    JobBoard::Options boardOptions;
    boardOptions.shards = options.shards == 0 ? 1 : options.shards;
    boardOptions.leaseMs = options.leaseMs;
    boardOptions.maxLeaseDrops = options.maxLeaseDrops;
    boardOptions.duplicateAfterMs = options.duplicateAfterMs;
    JobBoard board(keys, have, boardOptions);

    ServeStats stats;
    std::size_t done = 0;
    for (const char h : have)
        done += h != 0;

    auto finishJob = [&](std::size_t index, RunResult r) {
        if (journal)
            journal->record(index, keys[index], r);
        results[index] = std::move(r);
        ++done;
        if (options.progress)
            options.progress(done, total, results[index]);
    };

    // Repeated lease drops contain the job as a Failed row through the
    // §13 taxonomy, exactly like an in-process job that kept throwing.
    auto failDropped = [&](const std::vector<std::size_t> &failed) {
        for (const std::size_t index : failed) {
            ++stats.boardFailed;
            job_exec::Classified c;
            c.code = ErrorCode::Resource;
            c.transient = true;
            c.message = "worker lease dropped " +
                        std::to_string(options.maxLeaseDrops + 1) +
                        " times (workers died or stalled)";
            warn("job %zu (%s): %s", index, keys[index].c_str(),
                 c.message.c_str());
            finishJob(index, job_exec::failedResult(
                                 configs[index], c,
                                 options.maxLeaseDrops + 1));
        }
    };

    const int lfd = listenUnix(options.socketPath);
    std::list<Conn> conns;
    int nextConnId = 0;
    unsigned nextShard = 0;
    auto lastWorkerSeen = Clock::now();

    auto dropConn = [&](Conn &conn) {
        conn.dead = true;
        std::vector<std::size_t> requeued, failed;
        board.workerLost(conn.id, requeued, failed);
        failDropped(failed);
        conn.ch.close();
    };

    // Handle every complete line one connection has buffered; returns
    // false when the connection should be discarded.
    auto processConn = [&](Conn &conn) {
        std::string line;
        while (conn.ch.popLine(line)) {
            Message msg;
            if (!decodeMessage(line, msg))
                continue;  // torn line: same tolerance as the journal
            switch (msg.type) {
              case MsgType::Hello: {
                Message reply;
                if (msg.proto != kWorkerProtoVersion) {
                    ++stats.rejectedWorkers;
                    reply.type = MsgType::Reject;
                    reply.reason =
                        "protocol version mismatch (coordinator " +
                        std::to_string(kWorkerProtoVersion) +
                        ", worker " + std::to_string(msg.proto) + ")";
                    conn.ch.sendLine(encodeMessage(reply));
                    return false;
                }
                conn.helloed = true;
                conn.name = msg.worker;
                conn.shard = nextShard++ % boardOptions.shards;
                ++stats.workersSeen;
                reply.type = MsgType::Welcome;
                reply.proto = kWorkerProtoVersion;
                reply.shard = static_cast<int>(conn.shard);
                reply.shards = boardOptions.shards;
                reply.jobs = total;
                reply.leaseMs = options.leaseMs;
                if (!conn.ch.sendLine(encodeMessage(reply)))
                    return false;
                break;
              }
              case MsgType::LeaseReq: {
                if (!conn.helloed) {
                    Message reply;
                    reply.type = MsgType::Reject;
                    reply.reason = "lease_req before hello";
                    conn.ch.sendLine(encodeMessage(reply));
                    return false;
                }
                Message reply;
                std::size_t index = 0;
                switch (board.lease(conn.id, conn.shard, Clock::now(),
                                    index)) {
                  case JobBoard::Grant::Leased:
                    reply.type = MsgType::Lease;
                    reply.index = index;
                    reply.key = keys[index];
                    reply.spec = specs[index];
                    break;
                  case JobBoard::Grant::Wait:
                    reply.type = MsgType::Wait;
                    reply.waitMs = 100;
                    break;
                  case JobBoard::Grant::Drained:
                    reply.type = MsgType::Drain;
                    break;
                }
                if (!conn.ch.sendLine(encodeMessage(reply)))
                    return false;
                break;
              }
              case MsgType::Result: {
                if (!conn.helloed)
                    return false;
                if (msg.index >= total || keys[msg.index] != msg.key) {
                    warn("ignoring result for unknown job %zu (%s)",
                         msg.index, msg.key.c_str());
                    break;
                }
                if (board.complete(msg.index))
                    finishJob(msg.index, std::move(msg.result));
                else
                    ++stats.duplicateResults;
                break;
              }
              default:
                // Coordinator-bound streams never carry coordinator
                // replies; ignore rather than kill the worker.
                break;
            }
        }
        return !conn.dead;
    };

    auto cleanup = [&]() {
        conns.clear();
        ::close(lfd);
        ::unlink(options.socketPath.c_str());
    };

    try {
        // Main loop: poll the listen socket and every worker, expire
        // leases, and stop once the board is fully drained.
        while (!board.allDone()) {
            std::vector<pollfd> pfds;
            pfds.push_back({lfd, POLLIN, 0});
            for (Conn &conn : conns)
                pfds.push_back({conn.ch.fd(), POLLIN, 0});
            ::poll(pfds.data(), pfds.size(), 50);

            if (pfds[0].revents & POLLIN) {
                // One accept per POLLIN wakeup: the listen fd stays
                // readable while the backlog is non-empty, so the next
                // loop iteration picks up any further pending workers.
                const int fd = acceptUnix(lfd);
                if (fd >= 0)
                    conns.emplace_back(nextConnId++, fd);
            }

            std::size_t slot = 1;
            for (auto it = conns.begin(); it != conns.end(); ++slot) {
                Conn &conn = *it;
                bool alive = true;
                // A conn accepted above has no pfds entry yet; it is
                // pumped on the next iteration.
                if (slot < pfds.size() &&
                    (pfds[slot].revents & (POLLIN | POLLHUP | POLLERR)))
                    alive = conn.ch.pump();
                if (!processConn(conn) || !alive) {
                    dropConn(conn);
                    it = conns.erase(it);
                } else {
                    ++it;
                }
            }

            std::vector<std::size_t> requeued, failed;
            board.expireLeases(Clock::now(), requeued, failed);
            failDropped(failed);

            if (!conns.empty())
                lastWorkerSeen = Clock::now();
            else if (Clock::now() - lastWorkerSeen >
                     std::chrono::milliseconds(options.workerGraceMs)) {
                throw ResourceError(
                    "no workers connected for " +
                    std::to_string(options.workerGraceMs) + "ms with " +
                    std::to_string(board.remaining()) +
                    " jobs remaining");
            }
        }

        // Drain: answer every remaining lease_req with Drain and give
        // stragglers a moment to hear it before tearing down.
        const auto drainDeadline =
            Clock::now() + std::chrono::milliseconds(2000);
        while (!conns.empty() && Clock::now() < drainDeadline) {
            std::vector<pollfd> pfds;
            for (Conn &conn : conns)
                pfds.push_back({conn.ch.fd(), POLLIN, 0});
            ::poll(pfds.data(), pfds.size(), 50);
            std::size_t slot = 0;
            for (auto it = conns.begin(); it != conns.end(); ++slot) {
                Conn &conn = *it;
                bool alive = true;
                if (pfds[slot].revents & (POLLIN | POLLHUP | POLLERR))
                    alive = conn.ch.pump();
                if (!processConn(conn) || !alive)
                    it = conns.erase(it);
                else
                    ++it;
            }
        }
    } catch (...) {
        cleanup();
        throw;
    }
    cleanup();

    stats.leases = board.leases();
    stats.steals = board.steals();
    stats.duplicates = board.duplicates();
    stats.requeues = board.requeues();
    if (stats_out)
        *stats_out = stats;
    return results;
}

// ---------------------------------------------------------------------
// Worker

namespace {

/** Read lines until one decodes; torn lines are skipped. */
bool
recvMessage(LineChannel &ch, Message &msg, unsigned timeout_ms)
{
    std::string line;
    while (ch.recvLine(line, timeout_ms)) {
        if (decodeMessage(line, msg))
            return true;
    }
    return false;
}

} // namespace

WorkerReport
runWorker(const WorkerOptions &options)
{
    WorkerReport report;
    std::string artifactDir = options.artifactDir;
    if (artifactDir.empty()) {
        if (const char *env = std::getenv("SCIQ_ARTIFACT_DIR"))
            artifactDir = env;
    }

    try {
        LineChannel ch(
            connectUnix(options.socketPath, options.connectTimeoutMs));

        Message hello;
        hello.type = MsgType::Hello;
        hello.proto = kWorkerProtoVersion;
        hello.worker = options.name;
        if (!ch.sendLine(encodeMessage(hello))) {
            report.error = "handshake send failed";
            return report;
        }
        Message msg;
        if (!recvMessage(ch, msg, options.replyTimeoutMs)) {
            report.error = "no handshake reply from coordinator";
            return report;
        }
        if (msg.type == MsgType::Reject) {
            report.error = "rejected by coordinator: " + msg.reason;
            return report;
        }
        if (msg.type != MsgType::Welcome ||
            msg.proto != kWorkerProtoVersion) {
            report.error = "unexpected handshake reply";
            return report;
        }

        // One warm-state cache per worker process, disk-backed when
        // every worker points at the same ckpt_dir: the cross-process
        // producer election (checkpoint.cc) makes N workers execute
        // one warm-up total.
        std::shared_ptr<CheckpointCache> cache;
        if (!options.ckptDir.empty())
            cache = std::make_shared<CheckpointCache>(options.ckptDir);

        for (;;) {
            Message req;
            req.type = MsgType::LeaseReq;
            if (!ch.sendLine(encodeMessage(req))) {
                report.error = "coordinator connection lost";
                return report;
            }
            if (!recvMessage(ch, msg, options.replyTimeoutMs)) {
                report.error = "no lease reply from coordinator";
                return report;
            }
            if (msg.type == MsgType::Drain) {
                report.drained = true;
                return report;
            }
            if (msg.type == MsgType::Wait) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(msg.waitMs));
                continue;
            }
            if (msg.type == MsgType::Reject) {
                report.error = "rejected by coordinator: " + msg.reason;
                return report;
            }
            if (msg.type != MsgType::Lease)
                continue;

            RunResult r;
            try {
                SimConfig cfg = configFromSpec(msg.spec);
                cfg.faults = options.faults;
                if (cfg.fastForward > 0 && cache)
                    cfg.ckptCache = cache;
                r = job_exec::executeWithRetry(
                    cfg, msg.key, msg.index, options.maxRetries,
                    options.backoffMs, artifactDir);
            } catch (...) {
                // A spec the worker cannot even parse still produces a
                // contained Failed row, so the job cannot loop forever
                // through requeues.
                job_exec::Classified c =
                    job_exec::classify(std::current_exception());
                SimConfig blank;
                r = job_exec::failedResult(blank, c, 1);
            }
            ++report.jobsRun;
            if (r.ckptRestored)
                ++report.restored;

            if (options.faults && options.faults->takeWorkerAbort()) {
                // Chaos hook: die in place of reporting, exactly like
                // a worker killed mid-job — the coordinator must
                // requeue the outstanding lease.
                report.aborted = true;
                if (options.abortExits)
                    ::_exit(137);
                ch.close();
                return report;
            }

            Message res;
            res.type = MsgType::Result;
            res.index = msg.index;
            res.key = msg.key;
            res.result = std::move(r);
            if (!ch.sendLine(encodeMessage(res))) {
                report.error = "result send failed";
                return report;
            }
        }
    } catch (const std::exception &e) {
        report.error = e.what();
    }
    return report;
}

} // namespace sciq
