/**
 * @file
 * Line-oriented coordinator/worker protocol for distributed sweeps
 * (DESIGN.md §17).
 *
 * Every message is one newline-delimited JSON object with a `type`
 * field, exchanged over a local stream socket:
 *
 *   worker -> coordinator   {"type":"hello","proto":1,"worker":"w0"}
 *   coordinator -> worker   {"type":"welcome","proto":1,"shard":0,
 *                            "shards":3,"jobs":42,"lease_ms":60000}
 *                           {"type":"reject","reason":"..."}
 *   worker -> coordinator   {"type":"lease_req"}
 *   coordinator -> worker   {"type":"lease","index":7,"key":"...",
 *                            "spec":"workload=swim ..."}
 *                           {"type":"wait","ms":200}
 *                           {"type":"drain"}
 *   worker -> coordinator   {"type":"result","index":7,"key":"...",
 *                            "result":{...}}
 *
 * The handshake is versioned: a coordinator rejects any hello whose
 * `proto` differs from kWorkerProtoVersion, so mixed-build fleets fail
 * loudly instead of merging subtly different results.  The `result`
 * body is exactly the journal's compact RunResult object, so a result
 * streamed over the wire round-trips doubles bit-for-bit just like a
 * journal line (journal.hh), which is what makes the coordinator's
 * merged JSON byte-identical to a single-process run.
 *
 * Decoding is tolerant in the same way the journal loader is: a torn
 * or truncated line (killed writer, half-flushed buffer) decodes to
 * `false` and is skipped by the receiver rather than aborting the
 * sweep.
 */

#ifndef SCIQ_SIM_WORKER_PROTO_HH
#define SCIQ_SIM_WORKER_PROTO_HH

#include <cstddef>
#include <string>

#include "sim/simulator.hh"

namespace sciq {

/** Wire-format version; bump on any message/layout change. */
constexpr unsigned kWorkerProtoVersion = 1;

enum class MsgType
{
    Hello,     ///< worker introduces itself (proto, name)
    Welcome,   ///< coordinator accepts (shard id, totals)
    Reject,    ///< coordinator refuses (version mismatch, bad state)
    LeaseReq,  ///< idle worker asks for a job
    Lease,     ///< one job: index, sweep key, full config spec
    Wait,      ///< nothing leasable right now; retry in `waitMs`
    Drain,     ///< no work left, ever; worker should exit
    Result,    ///< finished job: index, key, journal-format result
};

const char *msgTypeName(MsgType type);

struct Message
{
    MsgType type = MsgType::Hello;

    unsigned proto = 0;       ///< hello/welcome
    std::string worker;       ///< hello: worker name
    int shard = -1;           ///< welcome: assigned shard id
    unsigned shards = 0;      ///< welcome: coordinator shard count
    std::size_t jobs = 0;     ///< welcome: total jobs in the sweep
    unsigned leaseMs = 0;     ///< welcome: lease length workers see
    unsigned waitMs = 0;      ///< wait: suggested retry delay
    std::string reason;       ///< reject
    std::size_t index = 0;    ///< lease/result: job index
    std::string key;          ///< lease/result: host-setting-free sweepKey
    std::string spec;         ///< lease: complete configSpec string
    RunResult result;         ///< result payload (journal format)
};

/** Serialize one message as a single line (no trailing newline). */
std::string encodeMessage(const Message &msg);

/**
 * Parse one line into `out`.  Returns false — never throws — on torn,
 * truncated or otherwise malformed input, mirroring the journal
 * loader's tolerance.
 */
bool decodeMessage(const std::string &line, Message &out);

// ---------------------------------------------------------------------
// Local stream-socket transport (AF_UNIX).

/**
 * Create, bind and listen on a Unix-domain socket, removing any stale
 * file at `path` first.  Throws ResourceError on failure.
 */
int listenUnix(const std::string &path);

/** Accept one pending connection, or -1 when none is ready. */
int acceptUnix(int listen_fd);

/**
 * Connect to `path`, retrying while the coordinator is still starting
 * up, until `timeout_ms` elapses.  Throws ResourceError on timeout.
 */
int connectUnix(const std::string &path, unsigned timeout_ms);

/**
 * Buffered newline-delimited channel over one socket fd (owned:
 * closed on destruction; move-only).
 *
 * The coordinator uses the non-blocking pair pump()/popLine() from its
 * poll loop; workers use the blocking recvLine().  sendLine() never
 * raises SIGPIPE — a peer that died mid-send surfaces as `false`.
 */
class LineChannel
{
  public:
    explicit LineChannel(int fd) : fd_(fd) {}
    ~LineChannel();

    LineChannel(LineChannel &&other) noexcept;
    LineChannel &operator=(LineChannel &&other) noexcept;
    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    int fd() const { return fd_; }

    /** Write `line` + '\n'; false once the peer is gone. */
    bool sendLine(const std::string &line);

    /**
     * Read whatever the socket has ready into the internal buffer
     * without blocking.  Returns false on EOF or a hard error (the
     * buffered complete lines remain poppable).
     */
    bool pump();

    /** Pop the next complete buffered line; false when none. */
    bool popLine(std::string &line);

    /**
     * Blocking receive of one complete line, waiting up to
     * `timeout_ms` (0 = forever).  False on EOF, error or timeout.
     */
    bool recvLine(std::string &line, unsigned timeout_ms);

    /** Close the fd now (e.g. to simulate an abrupt worker death). */
    void close();

  private:
    int fd_ = -1;
    std::string buf_;
};

} // namespace sciq

#endif // SCIQ_SIM_WORKER_PROTO_HH
