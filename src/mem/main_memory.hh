/**
 * @file
 * Main-memory timing model: fixed access latency plus a shared data bus
 * with finite bandwidth (Table 1: 100 cycles, 8 bytes per CPU cycle).
 */

#ifndef SCIQ_MEM_MAIN_MEMORY_HH
#define SCIQ_MEM_MAIN_MEMORY_HH

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "mem/cache.hh"

namespace sciq {

struct MainMemoryParams
{
    unsigned latency = 100;        ///< access latency, cycles
    unsigned bytesPerCycle = 8;    ///< bus bandwidth
    unsigned lineBytes = 64;       ///< transfer unit
};

class MainMemory : public MemLevel
{
  public:
    MainMemory(const MainMemoryParams &params, EventQueue &events);

    void request(Addr line_addr, bool is_write, Cycle now,
                 std::function<void(Cycle)> done) override;

    stats::Group &statGroup() { return statsGroup; }

    stats::Scalar reads;
    stats::Scalar writes;
    stats::Scalar busBusyCycles;

  private:
    MainMemoryParams params_;
    EventQueue &events;
    stats::Group statsGroup;
    Cycle busFree = 0;
    unsigned transferCycles;
};

} // namespace sciq

#endif // SCIQ_MEM_MAIN_MEMORY_HH
