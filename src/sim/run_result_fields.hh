/**
 * @file
 * Single source of truth for RunResult's serialized fields.
 *
 * Three consumers must agree on the exact field list and names: the
 * pretty array writer in sweep.cc (`bench_out=` files), the compact
 * journal writer in journal.cc (JSONL), and the journal parser that
 * reconstructs a RunResult on resume.  A drift between them would make
 * resumed sweeps silently non-identical to uninterrupted ones, so all
 * three iterate this one visitor.
 *
 * The visitor receives typed callbacks; RunResult's constness follows
 * the template argument, so the same function body serves writers
 * (const RunResult &) and the parser (RunResult &).
 */

#ifndef SCIQ_SIM_RUN_RESULT_FIELDS_HH
#define SCIQ_SIM_RUN_RESULT_FIELDS_HH

#include "sim/simulator.hh"

namespace sciq {

template <typename V, typename R>
void
visitRunResultFields(V &&v, R &r)
{
    v.str("workload", r.workload);
    v.str("iq_kind", r.iqKind);
    v.uns("iq_size", r.iqSize);
    v.i("chains", r.chains);
    v.u64("cycles", r.cycles);
    v.u64("insts", r.insts);
    v.num("ipc", r.ipc);
    v.num("avg_chains", r.avgChains);
    v.num("peak_chains", r.peakChains);
    v.num("hmp_accuracy", r.hmpAccuracy);
    v.num("hmp_coverage", r.hmpCoverage);
    v.num("lrp_mispredict_rate", r.lrpMispredictRate);
    v.num("branch_mispredict_rate", r.branchMispredictRate);
    v.num("iq_occupancy_avg", r.iqOccupancyAvg);
    v.num("seg0_ready_avg", r.seg0ReadyAvg);
    v.num("seg0_occupancy_avg", r.seg0OccupancyAvg);
    v.num("deadlock_cycle_frac", r.deadlockCycleFrac);
    v.num("two_outstanding_frac", r.twoOutstandingFrac);
    v.num("heads_from_loads_frac", r.headsFromLoadsFrac);
    v.num("l1d_miss_rate", r.l1dMissRate);
    v.num("l1d_delayed_hit_frac", r.l1dDelayedHitFrac);
    v.num("seg_active_avg", r.segActiveAvg);
    v.num("seg_cycles_active", r.segCyclesActive);
    v.num("host_seconds", r.hostSeconds);
    v.num("host_kcycles_per_sec", r.hostKcyclesPerSec);
    v.num("host_kinsts_per_sec", r.hostKinstsPerSec);
    v.num("warm_seconds", r.warmSeconds);
    v.num("warm_insts_per_sec", r.warmInstsPerSec);
    v.u64("bbcache_blocks", r.bbBlocks);
    v.u64("bbcache_ops_cached", r.bbOpsCached);
    v.u64("bbcache_trace_hits", r.bbTraceHits);
    v.u64("bbcache_succ_hits", r.bbSuccHits);
    v.u64("iq_work_signal_deliveries", r.iqSignalDeliveries);
    v.u64("iq_work_plan_calls", r.iqPlanCalls);
    v.u64("iq_work_segments_scanned", r.iqSegmentsScanned);
    v.u64("iq_work_lane_words_touched", r.iqLaneWordsTouched);
    v.u64("audit_violations", r.auditViolations);
    v.b("ckpt_restored", r.ckptRestored);
    v.b("validated", r.validated);
    v.b("halted_cleanly", r.haltedCleanly);
    // JobOutcome (DESIGN.md §13): serialized explicitly by each
    // consumer because status/code are enums with string encodings.
}

} // namespace sciq

#endif // SCIQ_SIM_RUN_RESULT_FIELDS_HH
