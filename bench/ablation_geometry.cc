/**
 * @file
 * Ablation A2: segment geometry at fixed total capacity.  The paper
 * fixes 32-entry segments ("the individual segments can be sized to
 * meet cycle-time requirements") and varies the count; this bench
 * sweeps the segment size at a fixed 512-entry queue, trading wakeup
 * complexity (segment size, i.e. attainable clock) against pipeline
 * depth and promotion latency.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sciq;
using namespace sciq::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv,
                               {"swim", "mgrid", "gcc", "equake"},
                               {"iq_size"});
    const unsigned kIqSize = static_cast<unsigned>(
        args.raw.getInt("iq_size", 512));
    const std::vector<unsigned> seg_sizes = {8, 16, 32, 64, 128};

    std::printf("Ablation: segment size at fixed %u-entry capacity "
                "(comb, 128 chains)\n\n",
                kIqSize);
    std::printf("%-9s", "bench");
    for (unsigned s : seg_sizes)
        std::printf(" %7u(%2u)", s, kIqSize / s);
    std::printf("   size(segments)\n");
    hr('-', 76);

    SweepBatch batch(args);
    for (const auto &wl : args.workloads) {
        for (unsigned s : seg_sizes) {
            SimConfig cfg =
                makeSegmentedConfig(kIqSize, 128, true, true, wl);
            cfg.core.iq.segmentSize = s;
            batch.add(std::move(cfg));
        }
    }
    batch.run();

    for (const auto &wl : args.workloads) {
        std::printf("%-9s", wl.c_str());
        for (unsigned s : seg_sizes) {
            (void)s;
            std::printf(" %11.3f", batch.next().ipc);
        }
        std::printf("\n");
    }
    std::printf("\nSmaller segments would clock faster (32-entry "
                "wakeup vs 512) but add pipeline stages;\nthis sweep "
                "shows the IPC cost side of that trade-off.\n");
    finishBench(args);
    return 0;
}
