# Empty compiler generated dependencies file for sciq_isa.
# This may be replaced when dependencies are built.
