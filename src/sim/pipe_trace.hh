/**
 * @file
 * Per-instruction pipeline tracing, in the spirit of gem5's O3
 * pipeview: records the fetch/dispatch/issue/complete/commit cycle of
 * every committed (and optionally squashed) instruction and renders a
 * compact text timeline.  Invaluable for seeing chain scheduling in
 * action - e.g. how a dependent chain self-times down the segments
 * behind a missing load.
 */

#ifndef SCIQ_SIM_PIPE_TRACE_HH
#define SCIQ_SIM_PIPE_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/commit_observer.hh"
#include "core/dyn_inst.hh"

namespace sciq {

class PipeTrace : public CommitObserver
{
  public:
    struct Record
    {
        SeqNum seq;
        Addr pc;
        std::string text;
        Cycle fetch, dispatch, issue, complete, commit;
        bool squashed;
        bool wrongPath;
    };

    /** @param capacity Keep at most this many most-recent records. */
    explicit PipeTrace(std::size_t capacity = 4096)
        : cap(capacity)
    {
    }

    /** Record an instruction at commit (or when squashed). */
    void record(const DynInst &inst, Cycle commit_cycle, bool squashed);

    // CommitObserver interface (attach with OooCore::setObserver).
    void
    onCommit(const DynInst &inst, Cycle cycle) override
    {
        record(inst, cycle, false);
    }

    void
    onSquash(const DynInst &inst, Cycle cycle) override
    {
        if (traceSquashed)
            record(inst, cycle, true);
    }

    /** Also keep squashed (wrong-path) instructions in the trace. */
    bool traceSquashed = false;

    const std::vector<Record> &records() const { return recs; }
    void clear() { recs.clear(); }

    /**
     * Render a timeline: one row per instruction, one column per
     * cycle, marking f(etch) d(ispatch) i(ssue) c(omplete) C(ommit).
     * @param first_seq start of the window (0 = from the oldest kept).
     * @param max_rows  rows to print.
     */
    void render(std::ostream &os, SeqNum first_seq = 0,
                std::size_t max_rows = 64) const;

  private:
    std::size_t cap;
    std::vector<Record> recs;
};

} // namespace sciq

#endif // SCIQ_SIM_PIPE_TRACE_HH
