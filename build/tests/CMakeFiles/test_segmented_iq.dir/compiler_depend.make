# Empty compiler generated dependencies file for test_segmented_iq.
# This may be replaced when dependencies are built.
