file(REMOVE_RECURSE
  "CMakeFiles/test_fast_forward.dir/test_fast_forward.cc.o"
  "CMakeFiles/test_fast_forward.dir/test_fast_forward.cc.o.d"
  "test_fast_forward"
  "test_fast_forward.pdb"
  "test_fast_forward[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fast_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
