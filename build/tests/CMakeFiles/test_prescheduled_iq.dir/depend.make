# Empty dependencies file for test_prescheduled_iq.
# This may be replaced when dependencies are built.
