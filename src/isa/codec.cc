#include "codec.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace sciq {

namespace {

bool
regOk(RegIndex r)
{
    return r < kNumArchRegs;
}

bool
immFits(std::int64_t imm, std::int64_t lo, std::int64_t hi)
{
    return imm >= lo && imm <= hi;
}

} // namespace

bool
encodable(const Instruction &inst)
{
    if (static_cast<unsigned>(inst.op) >= kNumOpcodes)
        return false;
    switch (opInfo(inst.op).format) {
      case Format::R:
        return regOk(inst.rd) && regOk(inst.rs1) && regOk(inst.rs2);
      case Format::I:
        return regOk(inst.rd) && regOk(inst.rs1) &&
               immFits(inst.imm, kImm14Min, kImm14Max);
      case Format::M: {
        RegIndex data = inst.isStore() ? inst.rs2 : inst.rd;
        return regOk(data) && regOk(inst.rs1) &&
               immFits(inst.imm, kImm14Min, kImm14Max);
      }
      case Format::B:
        return regOk(inst.rs1) && regOk(inst.rs2) &&
               immFits(inst.imm, kImm14Min, kImm14Max);
      case Format::J:
        return (inst.rd == kInvalidReg || regOk(inst.rd)) &&
               immFits(inst.imm, kImm20Min, kImm20Max);
      case Format::JR:
        return (inst.rd == kInvalidReg || regOk(inst.rd)) &&
               regOk(inst.rs1);
      case Format::N:
        return true;
    }
    return false;
}

std::uint32_t
encode(const Instruction &inst)
{
    SCIQ_ASSERT(encodable(inst), "unencodable instruction (op %u imm %lld)",
                static_cast<unsigned>(inst.op),
                static_cast<long long>(inst.imm));

    std::uint64_t w = 0;
    w = insertBits(w, 31, 26, static_cast<unsigned>(inst.op));
    auto imm_u = static_cast<std::uint64_t>(inst.imm);

    switch (opInfo(inst.op).format) {
      case Format::R:
        w = insertBits(w, 25, 20, inst.rd);
        w = insertBits(w, 19, 14, inst.rs1);
        w = insertBits(w, 13, 8, inst.rs2);
        break;
      case Format::I:
        w = insertBits(w, 25, 20, inst.rd);
        w = insertBits(w, 19, 14, inst.rs1);
        w = insertBits(w, 13, 0, imm_u);
        break;
      case Format::M:
        w = insertBits(w, 25, 20, inst.isStore() ? inst.rs2 : inst.rd);
        w = insertBits(w, 19, 14, inst.rs1);
        w = insertBits(w, 13, 0, imm_u);
        break;
      case Format::B:
        w = insertBits(w, 25, 20, inst.rs1);
        w = insertBits(w, 19, 14, inst.rs2);
        w = insertBits(w, 13, 0, imm_u);
        break;
      case Format::J:
        w = insertBits(w, 25, 20,
                       inst.rd == kInvalidReg ? 0u : inst.rd);
        w = insertBits(w, 19, 0, imm_u);
        break;
      case Format::JR:
        w = insertBits(w, 25, 20,
                       inst.rd == kInvalidReg ? 0u : inst.rd);
        w = insertBits(w, 19, 14, inst.rs1);
        break;
      case Format::N:
        break;
    }
    return static_cast<std::uint32_t>(w);
}

Instruction
decode(std::uint32_t word)
{
    Instruction inst;
    unsigned op_field = static_cast<unsigned>(bits(word, 31, 26));
    SCIQ_ASSERT(op_field < kNumOpcodes, "invalid opcode field %u",
                op_field);
    inst.op = static_cast<Opcode>(op_field);

    switch (opInfo(inst.op).format) {
      case Format::R:
        inst.rd = static_cast<RegIndex>(bits(word, 25, 20));
        inst.rs1 = static_cast<RegIndex>(bits(word, 19, 14));
        inst.rs2 = static_cast<RegIndex>(bits(word, 13, 8));
        break;
      case Format::I:
        inst.rd = static_cast<RegIndex>(bits(word, 25, 20));
        inst.rs1 = static_cast<RegIndex>(bits(word, 19, 14));
        inst.imm = signExtend(bits(word, 13, 0), kImm14Bits);
        break;
      case Format::M:
        if (opInfo(inst.op).opClass == OpClass::MemWrite)
            inst.rs2 = static_cast<RegIndex>(bits(word, 25, 20));
        else
            inst.rd = static_cast<RegIndex>(bits(word, 25, 20));
        inst.rs1 = static_cast<RegIndex>(bits(word, 19, 14));
        inst.imm = signExtend(bits(word, 13, 0), kImm14Bits);
        break;
      case Format::B:
        inst.rs1 = static_cast<RegIndex>(bits(word, 25, 20));
        inst.rs2 = static_cast<RegIndex>(bits(word, 19, 14));
        inst.imm = signExtend(bits(word, 13, 0), kImm14Bits);
        break;
      case Format::J:
        inst.rd = static_cast<RegIndex>(bits(word, 25, 20));
        inst.imm = signExtend(bits(word, 19, 0), kImm20Bits);
        if (inst.op == Opcode::J)
            inst.rd = kInvalidReg;
        break;
      case Format::JR:
        inst.rd = static_cast<RegIndex>(bits(word, 25, 20));
        inst.rs1 = static_cast<RegIndex>(bits(word, 19, 14));
        if (inst.op == Opcode::JR)
            inst.rd = kInvalidReg;
        break;
      case Format::N:
        break;
    }
    return inst;
}

} // namespace sciq
