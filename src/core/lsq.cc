#include "lsq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sciq {

namespace {

/** Insert into an age-ordered list (usually at the tail). */
void
insertByAge(std::vector<DynInstPtr> &list, const DynInstPtr &inst)
{
    auto it = list.end();
    while (it != list.begin() && (*(it - 1))->seq > inst->seq)
        --it;
    list.insert(it, inst);
}

} // namespace

Lsq::Lsq(unsigned capacity, Cache &dcache_, FuPool &fu_,
         const Scoreboard &scoreboard_, Callbacks callbacks)
    : entries(capacity), dcache(dcache_), fu(fu_),
      scoreboard(scoreboard_), cb(std::move(callbacks)), statsGroup("lsq")
{
    statsGroup.addScalar("loads_issued", &loadsIssued,
                         "loads sent to the data cache");
    statsGroup.addScalar("load_forwards", &loadForwards,
                         "loads satisfied by store-to-load forwarding");
    statsGroup.addScalar("load_conflict_stalls", &loadConflictStalls,
                         "load-cycles stalled on older stores");
    statsGroup.addScalar("store_drains", &storeDrains,
                         "committed stores written to the cache");
    statsGroup.addScalar("port_stalls", &portStalls,
                         "accesses delayed by cache-port contention");
}

void
Lsq::insert(const DynInstPtr &inst)
{
    SCIQ_ASSERT(!entries.full(), "LSQ overflow");
    inst->lsqIndex = 0;  // meaningful only as "is in LSQ"
    inst->lsqCls = -1;
    inst->lsqBlockSeq = 0;
    entries.pushBack(inst);
    if (inst->isStore())
        storeList.push_back(inst);
}

void
Lsq::setAddrReady(const DynInstPtr &inst, Cycle cycle)
{
    inst->addrReady = true;
    if (inst->isStore()) {
        // The store's address is now known: loads whose conservative
        // wait depended on it must re-classify.
        storeEvent(inst->seq);
        // Stores whose data is already available become commit-eligible
        // immediately; others wait on tick()'s data-ready list.
        RegIndex data_reg = inst->physSrc[1];
        if (scoreboard.isReady(data_reg))
            cb.onStoreReady(inst, cycle);
        if (!inst->completed)
            insertByAge(dataWaitStores, inst);
    } else {
        insertByAge(pendingLoads, inst);
    }
}

int
Lsq::classifyLoad(const DynInstPtr &load) const
{
    const Addr lo = load->effAddr;
    const Addr hi = lo + load->staticInst.memSize();

    // Scan older stores youngest-first so the first overlapping store
    // found is the forwarding candidate.
    auto it = std::upper_bound(
        storeList.begin(), storeList.end(), load->seq,
        [](SeqNum seq, const DynInstPtr &st) { return seq < st->seq; });
    int cls = 0;
    SeqNum dep = 0;
    while (it != storeList.begin()) {
        const DynInstPtr &st = *--it;
        if (!st->addrReady) {
            cls = 2;  // unknown older address: conservative wait
            dep = st->seq;
            break;
        }
        const Addr slo = st->effAddr;
        const Addr shi = slo + st->staticInst.memSize();
        if (slo < hi && lo < shi) {
            // Overlap: forward only on full coverage with ready data.
            const bool covers = slo <= lo && shi >= hi;
            const bool data_ready = scoreboard.isReady(st->physSrc[1]);
            cls = (covers && data_ready) ? 1 : 2;
            dep = st->seq;
            break;
        }
    }
    load->lsqCls = static_cast<std::int8_t>(cls);
    load->lsqBlockSeq = dep;
    return cls;
}

void
Lsq::storeEvent(SeqNum seq)
{
    // Only classes 1/2 carry a store dependence; class 0 ("no older
    // store can match") cannot be broken by resolving, completing or
    // committing a store, so it stays cached until the load issues.
    for (const DynInstPtr &load : pendingLoads) {
        if (load->lsqCls > 0 && load->lsqBlockSeq == seq)
            load->lsqCls = -1;
    }
}

void
Lsq::sendLoadAccess(const DynInstPtr &inst, Cycle cycle)
{
    inst->memAccessSent = true;
    loadsIssued.inc();
    ++pendingAccesses;

    dcache.access(
        inst->effAddr, false, cycle,
        [this, inst](Cycle when, AccessOutcome outcome) {
            --pendingAccesses;
            if (inst->squashed)
                return;
            inst->loadWasL1Hit = outcome == AccessOutcome::Hit;
            inst->loadWasDelayedHit = outcome == AccessOutcome::DelayedHit;
            inst->memAccessDone = true;
            cb.onLoadComplete(inst, when);
        },
        [this, inst](Cycle when) {
            if (!inst->squashed)
                cb.onLoadMiss(inst, when);
        });
}

void
Lsq::tick(Cycle cycle)
{
    // 1. Complete matured store-to-load forwards.
    for (auto it = pendingForwards.begin(); it != pendingForwards.end();) {
        if (it->first->squashed) {
            it = pendingForwards.erase(it);
        } else if (it->second <= cycle) {
            DynInstPtr inst = it->first;
            inst->memAccessDone = true;
            cb.onLoadComplete(inst, cycle);
            it = pendingForwards.erase(it);
        } else {
            ++it;
        }
    }

    // 2. Drain committed stores to the data cache through free ports.
    while (!drainBuffer.empty() && fu.tryAcquirePort(cycle)) {
        auto [addr, size] = drainBuffer.front();
        drainBuffer.pop_front();
        (void)size;
        storeDrains.inc();
        ++pendingAccesses;
        dcache.access(addr, true, cycle,
                      [this](Cycle, AccessOutcome) { --pendingAccesses; });
    }

    // 3. Stores whose data just became ready are now commit-eligible.
    //    The list holds only address-ready stores still waiting on
    //    their data register, oldest first.
    if (!dataWaitStores.empty()) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < dataWaitStores.size(); ++i) {
            DynInstPtr &inst = dataWaitStores[i];
            if (inst->completed || inst->squashed)
                continue;  // drop
            if (scoreboard.isReady(inst->physSrc[1])) {
                storeEvent(inst->seq);
                cb.onStoreReady(inst, cycle);
                if (inst->completed)
                    continue;  // drop
            }
            dataWaitStores[keep++] = std::move(inst);
        }
        dataWaitStores.resize(keep);
    }

    // 4. Issue ready loads (oldest first; non-conflicting loads may
    //    bypass stalled ones).  Once the cache ports are exhausted the
    //    remaining loads are not examined this cycle, matching the
    //    original scan's early exit.
    if (!pendingLoads.empty()) {
        std::size_t keep = 0;
        bool ports_exhausted = false;
        for (std::size_t i = 0; i < pendingLoads.size(); ++i) {
            DynInstPtr &inst = pendingLoads[i];
            if (ports_exhausted) {
                pendingLoads[keep++] = std::move(inst);
                continue;
            }
            const int cls =
                inst->lsqCls >= 0 ? inst->lsqCls : classifyLoad(inst);
            if (cls == 2) {
                loadConflictStalls.inc();
                pendingLoads[keep++] = std::move(inst);
                continue;
            }
            if (!fu.tryAcquirePort(cycle)) {
                portStalls.inc();
                ports_exhausted = true;
                pendingLoads[keep++] = std::move(inst);
                continue;
            }
            if (cls == 1) {
                inst->memAccessSent = true;
                inst->loadForwarded = true;
                loadForwards.inc();
                pendingForwards.emplace_back(inst, cycle + 1);
            } else {
                sendLoadAccess(inst, cycle);
            }
        }
        pendingLoads.resize(keep);
    }
}

void
Lsq::commitStore(const DynInstPtr &inst, Cycle cycle)
{
    SCIQ_ASSERT(!entries.empty() && entries.front() == inst,
                "committing store that is not the LSQ head");
    entries.popFront();
    SCIQ_ASSERT(!storeList.empty() && storeList.front() == inst,
                "store list out of sync at commit");
    storeList.pop_front();
    // The departed store can unblock loads that were waiting on it.
    storeEvent(inst->seq);
    inst->lsqIndex = -1;
    drainBuffer.emplace_back(inst->effAddr, inst->staticInst.memSize());
    (void)cycle;
}

void
Lsq::commitLoad(const DynInstPtr &inst)
{
    SCIQ_ASSERT(!entries.empty() && entries.front() == inst,
                "committing load that is not the LSQ head");
    entries.popFront();
    inst->lsqIndex = -1;
}

void
Lsq::squash(SeqNum youngest_kept)
{
    while (!entries.empty() && entries.back()->seq > youngest_kept)
        entries.popBack();
    while (!storeList.empty() && storeList.back()->seq > youngest_kept)
        storeList.pop_back();
    // Squashed entries are strictly younger than every survivor, so no
    // surviving load's cached class can depend on a removed store.
    while (!pendingLoads.empty() &&
           pendingLoads.back()->seq > youngest_kept) {
        pendingLoads.pop_back();
    }
    while (!dataWaitStores.empty() &&
           dataWaitStores.back()->seq > youngest_kept) {
        dataWaitStores.pop_back();
    }
    pendingForwards.erase(
        std::remove_if(pendingForwards.begin(), pendingForwards.end(),
                       [youngest_kept](const auto &p) {
                           return p.first->seq > youngest_kept;
                       }),
        pendingForwards.end());
}

bool
Lsq::busy() const
{
    return pendingAccesses > 0 || !drainBuffer.empty() ||
           !pendingForwards.empty();
}

} // namespace sciq
