#include "fast_forward.hh"

namespace sciq {

FastForwardStats
fastForward(FunctionalCore &golden, OooCore &core, std::uint64_t insts)
{
    FastForwardStats stats;
    auto &dcache = core.memHierarchy().dcache();
    auto &l2 = core.memHierarchy().l2cache();
    auto &bp = core.branchPredictor();
    auto &hmp = core.hitMissPredictor();

    for (std::uint64_t i = 0; i < insts && !golden.halted(); ++i) {
        if (!golden.step())
            break;
        ++stats.instsSkipped;

        const Instruction *inst = golden.lastInst();
        const ExecResult &res = golden.lastResult();
        const Addr pc = golden.lastPc();

        if (inst->isMem()) {
            ++stats.memAccessesWarmed;
            // Train the hit/miss predictor on loads with the pre-touch
            // residency, then install the line (L1 evictions fall back
            // to the L2 just as timed fills would).
            const bool resident = dcache.isResident(res.effAddr);
            if (inst->isLoad())
                hmp.update(pc, resident);
            dcache.warmInsert(res.effAddr);
            l2.warmInsert(res.effAddr);
        }

        if (inst->isCondBranch()) {
            ++stats.branchesWarmed;
            auto snap = bp.snapshot();
            bp.predict(pc);
            bp.update(pc, res.taken, snap);
        } else if (inst->isIndirect()) {
            core.btb().update(pc, res.nextPc);
        }
    }

    stats.hitHalt = golden.halted();
    if (!stats.hitHalt) {
        core.seedState(golden.regFile(), golden.memory(), golden.pc());
    }
    return stats;
}

} // namespace sciq
