file(REMOVE_RECURSE
  "CMakeFiles/test_disassembler.dir/test_disassembler.cc.o"
  "CMakeFiles/test_disassembler.dir/test_disassembler.cc.o.d"
  "test_disassembler"
  "test_disassembler.pdb"
  "test_disassembler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disassembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
