/** @file Tests for the Michaud/Seznec-style prescheduling IQ. */

#include <gtest/gtest.h>

#include "iq/prescheduled_iq.hh"
#include "iq_harness.hh"

using namespace sciq;
using namespace sciq::test;

namespace {

struct PreschedFixture : public ::testing::Test
{
    PreschedFixture() : scoreboard(128), rec(scoreboard)
    {
        params.issueBufferSize = 4;
        params.preschedLineWidth = 2;
        params.numEntries = 4 + 8 * 2;  // buffer + 8 lines of 2
        params.issueWidth = 4;
        params.predictedLoadLatency = 4;
    }

    std::unique_ptr<PrescheduledIq>
    makeIq()
    {
        return std::make_unique<PrescheduledIq>(params, scoreboard, fu);
    }

    void
    dispatch(PrescheduledIq &iq, const DynInstPtr &inst)
    {
        ASSERT_TRUE(iq.canInsert(inst));
        if (inst->physDst != kInvalidReg)
            scoreboard.clearReady(inst->physDst);
        iq.insert(inst, cycle);
    }

    void tick(PrescheduledIq &iq) { iq.tick(++cycle, true); }

    IqParams params;
    Scoreboard scoreboard;
    FuPool fu;
    IssueRecorder rec;
    Cycle cycle = 0;
};

} // namespace

TEST_F(PreschedFixture, GeometryFromParams)
{
    auto iq = makeIq();
    EXPECT_EQ(iq->numLines(), 8u);
    IqParams bad = params;
    bad.numEntries = 4 + 15;  // not a multiple of the line width
    EXPECT_THROW(PrescheduledIq(bad, scoreboard, fu), PanicError);
}

TEST_F(PreschedFixture, ReadyInstructionPlacedInLineZero)
{
    auto iq = makeIq();
    auto inst = makeInst(1, Opcode::ADD, intReg(3), intReg(1), intReg(2));
    dispatch(*iq, inst);
    EXPECT_EQ(inst->presched.line, 0);
}

TEST_F(PreschedFixture, DependentPlacedByPredictedLatency)
{
    auto iq = makeIq();
    auto prod = makeInst(1, Opcode::MUL, intReg(2), intReg(1), intReg(1));
    dispatch(*iq, prod);
    EXPECT_EQ(prod->presched.line, 0);
    auto dep = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(1));
    dispatch(*iq, dep);
    // Ready when mul (line 0) reaches the buffer (+1) and executes (3).
    EXPECT_EQ(dep->presched.line, 4);
}

TEST_F(PreschedFixture, LoadsPredictedAsCacheHits)
{
    auto iq = makeIq();
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    auto dep = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(1));
    dispatch(*iq, dep);
    EXPECT_EQ(dep->presched.line, 1 + 4);  // predictedLoadLatency
}

TEST_F(PreschedFixture, FullLineSpillsToNextLine)
{
    auto iq = makeIq();
    for (SeqNum s = 1; s <= 2; ++s)
        dispatch(*iq, makeInst(s, Opcode::NOP));
    auto third = makeInst(3, Opcode::NOP);
    dispatch(*iq, third);
    EXPECT_EQ(third->presched.line, 1);  // line 0 held only two
}

TEST_F(PreschedFixture, ArrayShiftsIntoIssueBufferEachCycle)
{
    auto iq = makeIq();
    auto inst = makeInst(1, Opcode::ADD, intReg(3), intReg(1), intReg(2));
    dispatch(*iq, inst);
    tick(*iq);
    EXPECT_EQ(inst->presched.line, -1);  // now in the issue buffer
    EXPECT_EQ(iq->issueBufferOccupancy(), 1u);
    iq->issueSelect(cycle, rec.acceptAll());
    ASSERT_EQ(rec.issued.size(), 1u);
}

TEST_F(PreschedFixture, IssueOnlyFromBufferAndOnlyWhenReady)
{
    auto iq = makeIq();
    scoreboard.clearReady(intReg(9));
    auto inst = makeInst(1, Opcode::ADD, intReg(3), intReg(9), intReg(1));
    dispatch(*iq, inst);
    // Still in the array: cannot issue no matter what.
    iq->issueSelect(cycle, rec.acceptAll());
    EXPECT_TRUE(rec.issued.empty());
    tick(*iq);
    // In the buffer but its operand is not ready.
    iq->issueSelect(cycle, rec.acceptAll());
    EXPECT_TRUE(rec.issued.empty());
    scoreboard.setReady(intReg(9));
    iq->issueSelect(cycle, rec.acceptAll());
    EXPECT_EQ(rec.issued.size(), 1u);
}

TEST_F(PreschedFixture, FullBufferStallsTheArray)
{
    auto iq = makeIq();
    // Four unready instructions fill the buffer.
    scoreboard.clearReady(intReg(9));
    for (SeqNum s = 1; s <= 4; ++s) {
        dispatch(*iq,
                 makeInst(s, Opcode::ADD, intReg(10 + s), intReg(9),
                          intReg(1)));
    }
    tick(*iq);
    tick(*iq);
    tick(*iq);
    EXPECT_EQ(iq->issueBufferOccupancy(), 4u);
    // A fifth instruction cannot enter the buffer: the array stalls.
    dispatch(*iq, makeInst(5, Opcode::NOP));
    const double stalls_before = iq->arrayStallCycles.value();
    tick(*iq);
    EXPECT_GT(iq->arrayStallCycles.value(), stalls_before);
    EXPECT_EQ(iq->issueBufferOccupancy(), 4u);

    // Draining the buffer lets the array move again.
    scoreboard.setReady(intReg(9));
    iq->issueSelect(cycle, rec.acceptAll());
    tick(*iq);
    EXPECT_GT(iq->issueBufferOccupancy(), 0u);
}

TEST_F(PreschedFixture, DependentsNeverEnterBufferBeforeProducers)
{
    // The anti-inversion property that prevents scheduler deadlock:
    // even with delays clamped by a short array, a dependent must not
    // reach the issue buffer while its producer is still in the array.
    auto iq = makeIq();
    std::vector<DynInstPtr> chain;
    RegIndex prev = intReg(1);
    for (SeqNum s = 1; s <= 10; ++s) {
        RegIndex dst = intReg(10 + s);
        auto inst = makeInst(s, Opcode::LD, dst, prev);
        if (!iq->canInsert(inst))
            break;  // dispatch stall is fine; inversion is not
        scoreboard.clearReady(dst);
        iq->insert(inst, cycle);
        chain.push_back(inst);
        prev = dst;
    }
    ASSERT_GE(chain.size(), 4u);
    for (int t = 0; t < 30; ++t) {
        tick(*iq);
        for (std::size_t i = 1; i < chain.size(); ++i) {
            // If a consumer left the array, its producer must have too.
            if (chain[i]->presched.line == -1) {
                EXPECT_EQ(chain[i - 1]->presched.line, -1)
                    << "inversion at link " << i << " tick " << t;
            }
        }
        iq->issueSelect(cycle, rec.acceptAndComplete());
    }
}

TEST_F(PreschedFixture, SquashRemovesAndRestoresPredictions)
{
    auto iq = makeIq();
    auto prod = makeInst(1, Opcode::MUL, intReg(2), intReg(1), intReg(1));
    dispatch(*iq, prod);
    auto dep = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(1));
    dispatch(*iq, dep);
    EXPECT_EQ(iq->occupancy(), 2u);

    iq->onSquashInst(dep);
    iq->onSquashInst(prod);
    iq->squash(0);
    EXPECT_EQ(iq->occupancy(), 0u);

    // With the table restored, a reader of r2 is placed as ready.
    scoreboard.setReady(intReg(2));
    auto reader = makeInst(3, Opcode::ADD, intReg(4), intReg(2), intReg(1));
    dispatch(*iq, reader);
    EXPECT_EQ(reader->presched.line, 0);
}

TEST_F(PreschedFixture, CapacityStallsWhenAllLinesFull)
{
    auto iq = makeIq();
    // Fill every line by blocking the buffer with unready insts.
    scoreboard.clearReady(intReg(9));
    SeqNum s = 1;
    while (true) {
        auto inst =
            makeInst(s, Opcode::ADD, intReg(0), intReg(9), intReg(1));
        if (!iq->canInsert(inst))
            break;
        iq->insert(inst, cycle);
        ++s;
        ASSERT_LT(s, 100u);
    }
    EXPECT_GT(iq->dispatchStallsFull.value(), 0.0);
    EXPECT_EQ(iq->occupancy(), 16u);  // 8 lines x 2
}

TEST_F(PreschedFixture, ExtraDispatchStage)
{
    auto iq = makeIq();
    EXPECT_EQ(iq->extraDispatchCycles(), 1u);
}
