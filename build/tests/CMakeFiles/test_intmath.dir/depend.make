# Empty dependencies file for test_intmath.
# This may be replaced when dependencies are built.
