/** @file Tests for the synthetic SPEC-stand-in workload kernels. */

#include <gtest/gtest.h>

#include "common/errors.hh"
#include "isa/functional_core.hh"
#include "sim/simulator.hh"
#include "workload/workloads.hh"

using namespace sciq;

namespace {

WorkloadParams
tiny()
{
    WorkloadParams p;
    p.iterations = 100;
    return p;
}

} // namespace

class WorkloadByName : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadByName, BuildsAndHaltsFunctionally)
{
    Program prog = buildWorkload(GetParam(), tiny());
    EXPECT_EQ(prog.name, GetParam());
    EXPECT_GT(prog.size(), 10u);
    FunctionalCore core(prog);
    core.run(2'000'000);
    EXPECT_TRUE(core.halted()) << GetParam();
    EXPECT_GT(core.instCount(), 100u);
}

TEST_P(WorkloadByName, ChecksumIsDeterministic)
{
    Program p1 = buildWorkload(GetParam(), tiny());
    Program p2 = buildWorkload(GetParam(), tiny());
    FunctionalCore a(p1), b(p2);
    a.run(2'000'000);
    b.run(2'000'000);
    EXPECT_EQ(a.reg(intReg(10)), b.reg(intReg(10)));
}

TEST_P(WorkloadByName, SeedChangesData)
{
    WorkloadParams p = tiny();
    Program p1 = buildWorkload(GetParam(), p);
    p.seed = 999;
    Program p2 = buildWorkload(GetParam(), p);
    FunctionalCore a(p1), b(p2);
    a.run(2'000'000);
    b.run(2'000'000);
    // gcc's checksum depends only on the PRNG seed register path; all
    // kernels must at least still halt; data-driven ones must differ.
    EXPECT_TRUE(a.halted() && b.halted());
}

TEST_P(WorkloadByName, IterationBudgetScalesWork)
{
    WorkloadParams small = tiny();
    WorkloadParams big = tiny();
    big.iterations = 200;
    FunctionalCore a(buildWorkload(GetParam(), small));
    FunctionalCore b(buildWorkload(GetParam(), big));
    a.run(4'000'000);
    b.run(4'000'000);
    EXPECT_GT(b.instCount(), a.instCount());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, WorkloadByName,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadRegistry, NamesAndLookup)
{
    EXPECT_EQ(workloadNames().size(), 8u);
    EXPECT_EQ(fpWorkloadNames().size(), 5u);
    EXPECT_THROW(buildWorkload("nonesuch"), WorkloadError);
}

// --- Characterisation: each kernel must show the property that drives
// --- its benchmark's behaviour in the paper (DESIGN.md section 4).

namespace {

RunResult
quickRun(const std::string &name, std::uint64_t iters = 600)
{
    SimConfig cfg = makeIdealConfig(128, name);
    cfg.wl.iterations = iters;
    cfg.validate = false;
    cfg.maxCycles = 2'000'000;
    return runSim(cfg);
}

} // namespace

TEST(WorkloadCharacter, SwimIsMemoryBoundWithDelayedHits)
{
    RunResult r = quickRun("swim");
    ASSERT_TRUE(r.haltedCleanly);
    EXPECT_GT(r.l1dMissRate, 0.5);        // paper: ~90% of loads miss
    EXPECT_GT(r.l1dDelayedHitFrac, 0.4);  // mostly delayed hits
    EXPECT_LT(r.branchMispredictRate, 0.05);
}

TEST(WorkloadCharacter, GccIsBranchBound)
{
    RunResult r = quickRun("gcc", 2000);
    ASSERT_TRUE(r.haltedCleanly);
    EXPECT_GT(r.branchMispredictRate, 0.05);
    EXPECT_LT(r.l1dMissRate, 0.2);  // tiny working set
}

TEST(WorkloadCharacter, VortexHasPredictableBranchesSmallFootprint)
{
    RunResult r = quickRun("vortex", 2000);
    ASSERT_TRUE(r.haltedCleanly);
    EXPECT_LT(r.branchMispredictRate, 0.02);
    EXPECT_LT(r.l1dMissRate, 0.30);
}

TEST(WorkloadCharacter, EquakeGathersMissTheCache)
{
    RunResult r = quickRun("equake");
    ASSERT_TRUE(r.haltedCleanly);
    EXPECT_GT(r.l1dMissRate, 0.25);
}

TEST(WorkloadCharacter, FpKernelsGainFromLargeWindows)
{
    // The paper's headline: FP codes speed up dramatically with IQ
    // size because independent misses overlap.  Check swim at two
    // sizes on the ideal queue.
    SimConfig small = makeIdealConfig(32, "swim");
    small.wl.iterations = 1200;
    small.validate = false;
    SimConfig large = makeIdealConfig(256, "swim");
    large.wl.iterations = 1200;
    large.validate = false;
    RunResult rs = runSim(small);
    RunResult rl = runSim(large);
    ASSERT_TRUE(rs.haltedCleanly && rl.haltedCleanly);
    EXPECT_GT(rl.ipc, rs.ipc * 1.8);  // paper: up to ~5x
}

TEST(WorkloadCharacter, GccGainsLittleFromLargeWindows)
{
    SimConfig small = makeIdealConfig(32, "gcc");
    small.wl.iterations = 2000;
    small.validate = false;
    SimConfig large = makeIdealConfig(256, "gcc");
    large.wl.iterations = 2000;
    large.validate = false;
    RunResult rs = runSim(small);
    RunResult rl = runSim(large);
    EXPECT_LT(rl.ipc, rs.ipc * 1.35);  // essentially flat in the paper
}

TEST(WorkloadCharacter, MgridLoadsMostlyHitAfterRework)
{
    // The windowed three-sweep structure makes most loads L1 hits, so
    // the hit/miss predictor can suppress chains (paper 6.1: mgrid
    // benefits most from the HMP).
    RunResult r = quickRun("mgrid", 1500);
    ASSERT_TRUE(r.haltedCleanly);
    EXPECT_LT(r.l1dMissRate, 0.5);
    EXPECT_GT(r.l1dMissRate, 0.02);  // the first sweep still misses
}

TEST(WorkloadCharacter, AmmpIsLatencyBoundNotMissBound)
{
    // Past the cold phase the coordinate set is cache resident; the
    // long run amortises the initial misses away.
    RunResult r = quickRun("ammp", 6000);
    ASSERT_TRUE(r.haltedCleanly);
    EXPECT_LT(r.l1dMissRate, 0.3);
    EXPECT_LT(r.branchMispredictRate, 0.05);
}

TEST(WorkloadCharacter, HmpSavesChainsOnMgridButNotSwim)
{
    auto chains_with = [](const std::string &wl, bool hmp) {
        SimConfig cfg = makeSegmentedConfig(512, -1, hmp, false, wl);
        cfg.wl.iterations = 1500;
        cfg.validate = false;
        return runSim(cfg).avgChains;
    };
    // Paper Table 2: HMP cuts mgrid/ammp chains substantially; swim is
    // immune because ~90% of its loads genuinely miss.
    EXPECT_LT(chains_with("mgrid", true),
              0.92 * chains_with("mgrid", false));
    EXPECT_GT(chains_with("swim", true),
              0.95 * chains_with("swim", false));
}
