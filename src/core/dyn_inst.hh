/**
 * @file
 * DynInst: one dynamic (in-flight) instruction.  Carries the decoded
 * static instruction, the oracle outcome computed by execute-at-fetch,
 * rename state, timing state, and the per-design scheduler state used
 * by the instruction-queue implementations.
 */

#ifndef SCIQ_CORE_DYN_INST_HH
#define SCIQ_CORE_DYN_INST_HH

#include <array>
#include <cstdint>
#include <memory>

#include "branch/branch_predictor.hh"
#include "branch/ras.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace sciq {

/** Speculative fetch-state checkpoint taken after a control inst. */
struct FetchCheckpoint
{
    std::array<std::uint64_t, kNumArchRegs> regs;
    ReturnAddressStack::Snapshot ras;
};

/**
 * Membership of an instruction in one dependence chain (paper 3.2/3.3).
 * Each IQ entry tracks: chain id, current delay value, the chain head's
 * segment location, and whether the chain is in self-timed mode.
 */
struct ChainMembership
{
    ChainId chain = kNoChain;
    std::uint32_t gen = 0;   ///< chain-wire generation (reuse safety)
    std::uint64_t appliedSeq = 0;  ///< last chain-wire signal applied
    int delay = 0;
    int headSegment = 0;
    bool selfTimed = false;
    bool suspended = false;  ///< self-timing suspended (head missed)
};

/** Scheduler state for the segmented IQ. */
struct SegIqState
{
    ChainMembership memberships[2];
    int numMemberships = 0;
    ChainId headedChain = kNoChain;  ///< chain this inst is the head of
    std::uint32_t headedGen = 0;
    bool chainReleased = false;      ///< headed chain already freed
    int segment = -1;        ///< current segment index (0 = issue buffer)
};

/** Scheduler state for the prescheduling IQ (Michaud-Seznec). */
struct PreschedState
{
    int line = -1;           ///< scheduling-array line, -1 = issue buffer
};

class DynInst
{
  public:
    // ---- Static / oracle -------------------------------------------------
    Instruction staticInst;
    Addr pc = 0;
    SeqNum seq = kInvalidSeqNum;

    Addr oracleNextPc = 0;      ///< architected successor along this path
    bool oracleTaken = false;
    bool isHalt = false;
    Addr effAddr = 0;           ///< memory ops: effective address
    std::uint64_t memValue = 0; ///< load result / store data (oracle)
    std::uint64_t dstValue = 0; ///< architectural result (oracle)
    bool onWrongPath = false;   ///< fetched beyond a mispredicted branch

    // ---- Branch prediction ------------------------------------------------
    bool predictedTaken = false;
    Addr predictedNextPc = 0;
    bool mispredicted = false;  ///< prediction != oracle (resolves at exec)
    bool usedCondPredictor = false;
    HybridBranchPredictor::HistorySnapshot historySnap = 0;
    std::unique_ptr<FetchCheckpoint> checkpoint;  ///< control insts only

    // ---- Rename -----------------------------------------------------------
    std::array<RegIndex, 2> archSrc{kInvalidReg, kInvalidReg};
    RegIndex archDst = kInvalidReg;
    std::array<RegIndex, 2> physSrc{kInvalidReg, kInvalidReg};
    RegIndex physDst = kInvalidReg;
    RegIndex prevPhysDst = kInvalidReg;  ///< for squash undo

    // ---- Pipeline status ---------------------------------------------------
    bool dispatched = false;
    bool issued = false;
    bool completed = false;   ///< result produced; may commit
    bool squashed = false;
    bool committed = false;

    Cycle fetchCycle = 0;
    Cycle dispatchReadyCycle = 0;  ///< earliest dispatch (front-end depth)
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;

    int lsqIndex = -1;
    bool addrReady = false;       ///< address generation finished
    bool memAccessDone = false;   ///< load data returned
    bool memAccessSent = false;
    bool loadForwarded = false;   ///< satisfied by store-to-load forward
    bool loadWasL1Hit = false;    ///< actual outcome (HMP training)
    bool loadWasDelayedHit = false;

    // ---- Predictor bookkeeping (paper 4.3/4.4) ------------------------------
    bool hmpPredictedHit = false;
    bool hmpUsed = false;
    bool lrpUsed = false;
    bool lrpPredictedLeft = false;
    bool hadTwoOutstanding = false;
    std::array<Cycle, 2> srcReadyCycle{0, 0};  ///< for LRP training

    // ---- IQ-design-specific scheduler state ---------------------------------
    SegIqState seg;
    PreschedState presched;
    int fifoId = -1;  ///< for the Palacharla FIFO design

    // Convenience forwarding helpers.
    OpClass opClass() const { return staticInst.opClass(); }
    bool isLoad() const { return staticInst.isLoad(); }
    bool isStore() const { return staticInst.isStore(); }
    bool isControl() const { return staticInst.isControl(); }
};

using DynInstPtr = std::shared_ptr<DynInst>;

} // namespace sciq

#endif // SCIQ_CORE_DYN_INST_HH
