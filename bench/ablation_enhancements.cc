/**
 * @file
 * Ablation A1 (beyond the paper's tables, motivated by sections 4.1
 * and 4.2): contribution of the *pushdown* and *dispatch bypass*
 * enhancements to segmented-IQ performance.
 *
 * The paper motivates both qualitatively ("a large segmented IQ has a
 * severe negative impact on a number of integer benchmarks" without
 * bypass; pushdown fixes top-segment clogging) but publishes no
 * numbers; this bench quantifies each on our substrate.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sciq;
using namespace sciq::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, workloadNames(), {"iq_size"});
    const unsigned kIqSize = static_cast<unsigned>(
        args.raw.getInt("iq_size", 512));

    std::printf("Ablation: pushdown (4.1) and dispatch bypass (4.2), "
                "%u-entry segmented IQ, comb/128\n\n",
                kIqSize);
    std::printf("%-9s | %8s %8s %8s %8s | %10s %10s\n", "bench", "full",
                "no-push", "no-byp", "neither", "push gain%",
                "byp gain%");
    hr('-', 80);

    SweepBatch batch(args);
    for (const auto &wl : args.workloads) {
        for (auto [pushdown, bypass] :
             {std::pair{true, true}, std::pair{false, true},
              std::pair{true, false}, std::pair{false, false}}) {
            SimConfig cfg = makeSegmentedConfig(kIqSize, 128, true, true,
                                                wl);
            cfg.core.iq.enablePushdown = pushdown;
            cfg.core.iq.enableBypass = bypass;
            batch.add(std::move(cfg));
        }
    }
    batch.run();

    for (const auto &wl : args.workloads) {
        double ipc[4];
        for (double &v : ipc)
            v = batch.next().ipc;
        std::printf("%-9s | %8.3f %8.3f %8.3f %8.3f | %10.1f %10.1f\n",
                    wl.c_str(), ipc[0], ipc[1], ipc[2], ipc[3],
                    ipc[1] > 0 ? 100.0 * (ipc[0] / ipc[1] - 1.0) : 0.0,
                    ipc[2] > 0 ? 100.0 * (ipc[0] / ipc[2] - 1.0) : 0.0);
    }
    std::printf("\nExpected: bypass mainly helps low-occupancy integer "
                "codes (vortex, twolf, gcc) by skipping\nempty "
                "segments; pushdown helps codes with long dependence "
                "chains that clog the top segment.\n");
    finishBench(args);
    return 0;
}
