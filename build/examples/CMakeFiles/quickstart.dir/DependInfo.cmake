
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sciq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sciq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sciq_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/iq/CMakeFiles/sciq_iq.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/sciq_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sciq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sciq_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sciq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
