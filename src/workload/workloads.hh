/**
 * @file
 * Synthetic stand-ins for the paper's SPEC CPU2000 subset (section 5).
 *
 * SPEC sources and Alpha binaries are not available offline, so each
 * kernel is constructed to reproduce the *property that drives the
 * paper's result* for its benchmark: cache-miss profile, branch
 * predictability, dependence-chain shape, and the amount of memory-
 * level parallelism a large instruction window can expose.  See
 * DESIGN.md section 4 for the mapping rationale.
 */

#ifndef SCIQ_WORKLOAD_WORKLOADS_HH
#define SCIQ_WORKLOAD_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace sciq {

struct WorkloadParams
{
    /** Main loop iteration count; 0 selects the kernel's default. */
    std::uint64_t iterations = 0;
    /** Seed for data/index initialisation (deterministic). */
    std::uint64_t seed = 12345;
    /** Footprint multiplier (1.0 = the calibrated default). */
    double scale = 1.0;
};

// The seven benchmarks of Figure 2 / Table 2 plus gcc (section 5).
Program buildSwim(const WorkloadParams &params = {});
Program buildMgrid(const WorkloadParams &params = {});
Program buildApplu(const WorkloadParams &params = {});
Program buildEquake(const WorkloadParams &params = {});
Program buildAmmp(const WorkloadParams &params = {});
Program buildGcc(const WorkloadParams &params = {});
Program buildTwolf(const WorkloadParams &params = {});
Program buildVortex(const WorkloadParams &params = {});

/** Names in the paper's presentation order. */
const std::vector<std::string> &workloadNames();

/** The floating-point subset (the big-window winners). */
const std::vector<std::string> &fpWorkloadNames();

/** Build a workload by name; fatals on unknown names. */
Program buildWorkload(const std::string &name,
                      const WorkloadParams &params = {});

/**
 * Stable fingerprint of (name, params) — everything the workload
 * generator consumes, so equal fingerprints mean buildWorkload()
 * produces identical programs.  Part of the checkpoint cache key.
 */
std::uint64_t workloadFingerprint(const std::string &name,
                                  const WorkloadParams &params);

} // namespace sciq

#endif // SCIQ_WORKLOAD_WORKLOADS_HH
