/** @file Tests for register renaming and the ready scoreboard. */

#include <gtest/gtest.h>

#include "core/rename.hh"

using namespace sciq;

TEST(RenameMap, InitialIdentityMapping)
{
    RenameMap rm(kNumArchRegs + 8);
    for (RegIndex r = 0; r < kNumArchRegs; ++r)
        EXPECT_EQ(rm.lookup(r), r);
    EXPECT_EQ(rm.freeRegs(), 8u);
}

TEST(RenameMap, AllocateRedirectsLookups)
{
    RenameMap rm(kNumArchRegs + 8);
    auto [phys, prev] = rm.allocate(intReg(5));
    EXPECT_EQ(prev, intReg(5));
    EXPECT_NE(phys, intReg(5));
    EXPECT_EQ(rm.lookup(intReg(5)), phys);
    EXPECT_EQ(rm.freeRegs(), 7u);
}

TEST(RenameMap, SerialAllocationsChain)
{
    RenameMap rm(kNumArchRegs + 8);
    auto [p1, prev1] = rm.allocate(intReg(3));
    auto [p2, prev2] = rm.allocate(intReg(3));
    EXPECT_EQ(prev2, p1);
    EXPECT_EQ(rm.lookup(intReg(3)), p2);
    (void)prev1;
}

TEST(RenameMap, UndoRestoresYoungestFirst)
{
    RenameMap rm(kNumArchRegs + 8);
    auto [p1, prev1] = rm.allocate(intReg(3));
    auto [p2, prev2] = rm.allocate(intReg(3));
    rm.undo(intReg(3), p2, prev2);
    EXPECT_EQ(rm.lookup(intReg(3)), p1);
    rm.undo(intReg(3), p1, prev1);
    EXPECT_EQ(rm.lookup(intReg(3)), intReg(3));
    EXPECT_EQ(rm.freeRegs(), 8u);
}

TEST(RenameMap, OutOfOrderUndoPanics)
{
    RenameMap rm(kNumArchRegs + 8);
    auto [p1, prev1] = rm.allocate(intReg(3));
    auto [p2, prev2] = rm.allocate(intReg(3));
    (void)p2;
    (void)prev2;
    EXPECT_THROW(rm.undo(intReg(3), p1, prev1), PanicError);
}

TEST(RenameMap, ReleaseReturnsToFreeList)
{
    RenameMap rm(kNumArchRegs + 4);
    std::vector<std::pair<RegIndex, RegIndex>> allocs;
    for (int i = 0; i < 4; ++i)
        allocs.push_back(rm.allocate(intReg(1)));
    EXPECT_FALSE(rm.hasFreeReg());
    // Committing frees the *previous* mapping.
    rm.release(allocs[0].second);
    EXPECT_TRUE(rm.hasFreeReg());
    rm.release(kInvalidReg);  // no-op, no crash
    EXPECT_EQ(rm.freeRegs(), 1u);
}

TEST(RenameMap, ExhaustionPanics)
{
    RenameMap rm(kNumArchRegs + 1);
    rm.allocate(intReg(1));
    EXPECT_FALSE(rm.hasFreeReg());
    EXPECT_THROW(rm.allocate(intReg(2)), PanicError);
}

TEST(Scoreboard, ReadyBits)
{
    Scoreboard sb(16);
    EXPECT_TRUE(sb.isReady(3));
    sb.clearReady(3);
    EXPECT_FALSE(sb.isReady(3));
    sb.setReady(3);
    EXPECT_TRUE(sb.isReady(3));
}

TEST(Scoreboard, InvalidRegisterAlwaysReady)
{
    Scoreboard sb(16);
    EXPECT_TRUE(sb.isReady(kInvalidReg));
}
