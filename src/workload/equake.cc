/**
 * @file
 * equake-like kernel: sparse matrix-vector style gather.
 *
 * An index stream drives dependent loads scattered across a 1 MB value
 * array: the index load feeds the address of the value load, forming
 * the two-level chains that make equake sensitive to both chain count
 * and window size in the paper.
 */

#include "workload/kernel_util.hh"
#include "workload/workloads.hh"

namespace sciq {

using namespace kernel;

Program
buildEquake(const WorkloadParams &params)
{
    const std::uint64_t n_idx = scaled(32768, params.scale);
    const std::uint64_t n_val = scaled(131072, params.scale);  // 1 MB
    std::uint64_t iters = params.iterations ? params.iterations : 8192;
    if (iters > n_idx / 4)
        iters = n_idx / 4;

    const Addr idx_base = dataBase(0);
    const Addr val_base = dataBase(1);

    AsmBuilder b;
    b.words(idx_base, randomIndices(n_idx, n_val, params.seed));
    b.doubles(val_base, randomDoubles(n_val, params.seed + 7));
    b.doubles(0x9000, {1.0009765625});

    const RegIndex p_idx = intReg(11), p_val = intReg(12);
    const RegIndex count = intReg(13), tmp = intReg(14);
    const RegIndex coeff = fpReg(1);

    b.la(p_idx, idx_base).la(p_val, val_base);
    b.li(count, static_cast<std::int64_t>(iters));
    b.li(tmp, 0x9000);
    b.fld(coeff, tmp, 0);
    for (unsigned lane = 0; lane < 4; ++lane) {
        const RegIndex acc = fpReg(4 + lane);
        b.fsub(acc, acc, acc);
    }

    b.label("loop");
    for (unsigned lane = 0; lane < 4; ++lane) {
        const RegIndex idx = intReg(16 + lane);
        const RegIndex addr = intReg(20 + lane);
        const RegIndex v = fpReg(8 + lane);
        const RegIndex acc = fpReg(4 + lane);
        b.ld(idx, p_idx, 8 * lane);       // index load (chain head)
        b.slli(addr, idx, 3);
        b.add(addr, addr, p_val);
        b.fld(v, addr, 0);                // dependent gather load
        b.fmul(v, v, coeff);
        b.fadd(acc, acc, v);              // per-lane accumulator
    }
    b.addi(p_idx, p_idx, 32);
    b.addi(count, count, -1);
    b.bne(count, intReg(0), "loop");

    b.fadd(fpReg(4), fpReg(4), fpReg(5));
    b.fadd(fpReg(6), fpReg(6), fpReg(7));
    b.fadd(fpReg(4), fpReg(4), fpReg(6));
    epilogueFp(b, fpReg(4));
    return b.build("equake");
}

} // namespace sciq
