/**
 * @file
 * Hybrid local/global branch predictor a la the Alpha 21264, with the
 * geometry of Table 1:
 *   global: 13-bit history register, 8K-entry PHT
 *   local:  2K 11-bit history registers, 2K-entry PHT
 *   choice: 13-bit global history register, 8K-entry PHT
 *
 * The global history is updated speculatively at prediction time and
 * restored from a snapshot when a branch squashes; local histories and
 * all counter tables train at commit.
 */

#ifndef SCIQ_BRANCH_BRANCH_PREDICTOR_HH
#define SCIQ_BRANCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace sciq {

struct BranchPredictorParams
{
    unsigned globalHistoryBits = 13;
    unsigned globalPhtEntries = 8192;
    unsigned localHistoryRegs = 2048;
    unsigned localHistoryBits = 11;
    unsigned localPhtEntries = 2048;
    unsigned choicePhtEntries = 8192;
};

class HybridBranchPredictor
{
  public:
    /** Opaque speculative-history snapshot for squash recovery. */
    using HistorySnapshot = std::uint32_t;

    explicit HybridBranchPredictor(const BranchPredictorParams &p = {});

    /**
     * Predict a conditional branch at `pc` and speculatively shift the
     * prediction into the global history.
     */
    bool predict(Addr pc);

    /** Snapshot the speculative global history (before predict()). */
    HistorySnapshot snapshot() const { return globalHistory; }

    /** Restore the speculative global history after a squash. */
    void restore(HistorySnapshot snap) { globalHistory = snap; }

    /** Shift a now-known outcome into the speculative history. */
    void
    pushSpecHistory(bool taken)
    {
        globalHistory =
            ((globalHistory << 1) | (taken ? 1 : 0)) & historyMask;
    }

    /**
     * Train at commit with the architecturally-correct outcome.
     * `commit_history` is the global history as it was when the branch
     * predicted (i.e. its snapshot), used to index the tables the same
     * way predict() did.
     */
    void update(Addr pc, bool taken, HistorySnapshot history_at_predict);

    /**
     * Functional-warming fast path: bit-identical to
     *   snap = snapshot(); predict(pc); update(pc, taken, snap);
     * (tables, histories and statistics counters all included) but
     * reads each table once instead of twice.  The predicted — not the
     * actual — outcome shifts into the speculative global history,
     * exactly as the sequence above leaves it.
     */
    void warmTrain(Addr pc, bool taken);

    /**
     * Serialize the history registers, all three counter tables and the
     * statistics counters (warm-up trains the tables *and* counts
     * lookups, so both must round-trip for stat bit-identity).
     */
    void save(serial::Writer &w) const;

    /** Restore a snapshot; table geometry must match (serial::Error). */
    void restore(serial::Reader &r);

    stats::Group &statGroup() { return statsGroup; }

    stats::Scalar lookups;
    stats::Scalar condPredicts;
    stats::Scalar condMispredicts;
    stats::Scalar choiceGlobal;  ///< times the chooser picked global

  private:
    std::size_t globalIndex(std::uint32_t history) const;
    std::size_t localRegIndex(Addr pc) const;
    std::size_t choiceIndex(std::uint32_t history) const;

    BranchPredictorParams params;
    stats::Group statsGroup;

    std::uint32_t globalHistory = 0;
    std::uint32_t historyMask;

    std::vector<SatCounter> globalPht;
    std::vector<std::uint32_t> localHistories;
    std::vector<SatCounter> localPht;
    std::vector<SatCounter> choicePht;
};

} // namespace sciq

#endif // SCIQ_BRANCH_BRANCH_PREDICTOR_HH
