/**
 * @file
 * Reproduces **Figure 3** of the paper: IPC across instruction-queue
 * sizes for every benchmark and four designs:
 *
 *   Ideal           - monolithic single-cycle IQ, 32..512 entries
 *   Comb-128chains  - segmented IQ (HMP+LRP), 128 chain wires
 *   Comb-64chains   - segmented IQ (HMP+LRP), 64 chain wires
 *   Prescheduled    - Michaud/Seznec array, 128/320/704/1472 slots
 *
 * Expected shape: FP codes climb steeply with size on the ideal and
 * segmented queues (the segmented ones tracking below the ideal and
 * saturating earlier with only 64 chains); gcc is flat; prescheduling
 * trails the segmented design at comparable capacities, with only
 * vortex improving as the prescheduling array grows.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sciq;
using namespace sciq::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, workloadNames());

    const std::vector<unsigned> sizes = {32, 64, 128, 256, 512};
    // 32-entry issue buffer + {8,24,56,120} lines of 12 (paper 6.3).
    const std::vector<unsigned> presched_sizes = {128, 320, 704, 1472};

    std::printf("Figure 3: IPC vs IQ size\n\n");

    // Queue every point of the figure, run them all in parallel, then
    // print the tables in add order.
    SweepBatch batch(args);
    for (const auto &wl : args.workloads) {
        for (unsigned s : sizes)
            batch.add(makeIdealConfig(s, wl));
        for (int chains : {128, 64}) {
            for (unsigned s : sizes)
                batch.add(makeSegmentedConfig(s, chains, true, true, wl));
        }
        for (unsigned s : presched_sizes)
            batch.add(makePrescheduledConfig(s, wl));
    }
    batch.run();

    for (const auto &wl : args.workloads) {
        std::printf("%s\n", wl.c_str());
        std::printf("  %-16s", "size");
        for (unsigned s : sizes)
            std::printf(" %8u", s);
        std::printf("\n");
        hr('-', 60);

        std::printf("  %-16s", "ideal");
        for (unsigned s : sizes) {
            (void)s;
            std::printf(" %8.3f", batch.next().ipc);
        }
        std::printf("\n");

        for (int chains : {128, 64}) {
            std::printf("  comb-%-3dchains  ", chains);
            for (unsigned s : sizes) {
                (void)s;
                std::printf(" %8.3f", batch.next().ipc);
            }
            std::printf("\n");
        }

        std::printf("  %-16s", "prescheduled");
        for (unsigned s : presched_sizes) {
            (void)s;
            std::printf(" %8.3f", batch.next().ipc);
        }
        std::printf("  (sizes 128/320/704/1472)\n\n");
    }

    std::printf("Paper reference shapes: FP benchmarks gain up to "
                "~400%% from 32->512 on the ideal IQ;\n"
                "segmented tracks 55-98%% of ideal; gcc is flat; "
                "prescheduling only helps vortex as it grows.\n");
    finishBench(args);
    return 0;
}
