/**
 * @file
 * Demonstrates the paper's central claim: the segmented IQ's chains
 * let a large window tolerate unpredictable cache-miss latencies.
 *
 * Two contrasting workloads run across queue designs at equal size:
 *   swim  - streaming FP with abundant memory-level parallelism: the
 *           bigger effective window, the more misses overlap;
 *   gcc   - branchy integer code in which the window barely matters.
 *
 * Compare how much of the ideal queue's speedup each realistic design
 * retains, and how the prescheduling baseline (which freezes its
 * schedule at dispatch) falls behind when latencies mispredict.
 *
 * Usage: miss_tolerance [iters=N] [iq_size=N]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/simulator.hh"

using namespace sciq;

int
main(int argc, char **argv)
{
    ConfigMap args = ConfigMap::fromArgs(argc, argv);
    const unsigned size =
        static_cast<unsigned>(args.getInt("iq_size", 256));
    const auto iters =
        static_cast<std::uint64_t>(args.getInt("iters", 3000));

    std::printf("Window-size tolerance of cache misses (IQ size %u)\n\n",
                size);

    for (const char *wl : {"swim", "gcc"}) {
        std::printf("--- %s ---\n", wl);

        auto run = [&](SimConfig cfg, const char *label) {
            cfg.wl.iterations = iters;
            cfg.validate = false;
            RunResult r = runSim(cfg);
            std::printf("  %-22s ipc %6.3f   (cycles %9llu)\n", label,
                        r.ipc,
                        static_cast<unsigned long long>(r.cycles));
            return r.ipc;
        };

        double base32 = run(makeIdealConfig(32, wl),
                            "conventional 32-entry");
        double ideal = run(makeIdealConfig(size, wl), "ideal (big)");
        double seg = run(makeSegmentedConfig(size, 128, true, true, wl),
                         "segmented comb/128");
        double pre = run(makePrescheduledConfig(size + 64, wl),
                         "prescheduled");
        double fifo = run(makeFifoConfig(size / 32, 32, wl),
                          "dependence FIFOs");

        std::printf("\n  big-window speedup over 32-entry: ideal %.2fx, "
                    "segmented %.2fx,\n"
                    "  prescheduled %.2fx, FIFOs %.2fx\n\n",
                    ideal / base32, seg / base32, pre / base32,
                    fifo / base32);
    }

    std::printf("Takeaway: on swim the segmented IQ retains most of the "
                "ideal window's speedup while the\nquasi-static designs "
                "lose it to latency mispredictions; on gcc no design "
                "helps, because the\nwindow is not the bottleneck - "
                "matching Figures 2 and 3 of the paper.\n");
    return 0;
}
