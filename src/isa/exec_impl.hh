/**
 * @file
 * The architectural execution semantics as a template over the execute
 * context, so the one switch body serves two instantiations:
 *
 *   - execute() in exec.cc binds it to the virtual ExecContext
 *     interface (the pipeline's fetch oracle, the step()-based
 *     functional path);
 *   - the basic-block cache's replay loop binds it to a concrete
 *     context with inline register-file and page-cached memory access
 *     (functional_core.hh), removing the per-operand virtual dispatch.
 *
 * Because both paths instantiate the same body, they cannot drift:
 * bit-identity of the block-cached interpreter (DESIGN.md §14) holds by
 * construction, not by a parallel implementation kept in sync by hand.
 */

#ifndef SCIQ_ISA_EXEC_IMPL_HH
#define SCIQ_ISA_EXEC_IMPL_HH

#include <bit>
#include <cmath>
#include <limits>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "isa/exec.hh"

namespace sciq {
namespace exec_detail {

inline double
asDouble(std::uint64_t raw)
{
    return std::bit_cast<double>(raw);
}

inline std::uint64_t
asRaw(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** double -> int64 conversion with defined behaviour on NaN/overflow. */
inline std::int64_t
toInt(double v)
{
    if (std::isnan(v))
        return 0;
    if (v >= 9.2233720368547758e18)
        return std::numeric_limits<std::int64_t>::max();
    if (v <= -9.2233720368547758e18)
        return std::numeric_limits<std::int64_t>::min();
    return static_cast<std::int64_t>(v);
}

} // namespace exec_detail

/**
 * Force the execute body into its (few) callers: the block-replay loop
 * must not pay a call plus a 40-byte struct return per instruction,
 * and each caller instantiates the template exactly once.
 */
#if defined(__GNUC__) || defined(__clang__)
#define SCIQ_EXEC_INLINE __attribute__((always_inline)) inline
#else
#define SCIQ_EXEC_INLINE inline
#endif

/** Execute `inst` at `pc` against `xc` and return the outcome. */
template <typename XC>
SCIQ_EXEC_INLINE ExecResult
executeImpl(const Instruction &inst, Addr pc, XC &xc)
{
    using exec_detail::asDouble;
    using exec_detail::asRaw;
    using exec_detail::toInt;

    ExecResult res;
    res.nextPc = pc + kInstBytes;

    auto rd_r = [&](RegIndex r) -> std::uint64_t {
        return r == kZeroReg ? 0 : xc.readReg(r);
    };
    auto wr_r = [&](RegIndex r, std::uint64_t v) {
        if (r != kZeroReg && r != kInvalidReg)
            xc.writeReg(r, v);
    };
    auto s = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
    auto u = [](std::int64_t v) { return static_cast<std::uint64_t>(v); };

    const std::uint64_t a =
        inst.rs1 == kInvalidReg ? 0 : rd_r(inst.rs1);
    const std::uint64_t b =
        inst.rs2 == kInvalidReg ? 0 : rd_r(inst.rs2);
    const std::int64_t imm = inst.imm;

    auto branch_to = [&](bool taken) {
        res.taken = taken;
        if (taken)
            res.nextPc = pc + u(imm) * kInstBytes;
    };

    switch (inst.op) {
      // Integer ALU.
      case Opcode::ADD: wr_r(inst.rd, a + b); break;
      case Opcode::SUB: wr_r(inst.rd, a - b); break;
      case Opcode::AND: wr_r(inst.rd, a & b); break;
      case Opcode::OR: wr_r(inst.rd, a | b); break;
      case Opcode::XOR: wr_r(inst.rd, a ^ b); break;
      case Opcode::SLL: wr_r(inst.rd, a << (b & 63)); break;
      case Opcode::SRL: wr_r(inst.rd, a >> (b & 63)); break;
      case Opcode::SRA: wr_r(inst.rd, u(s(a) >> (b & 63))); break;
      case Opcode::SLT: wr_r(inst.rd, s(a) < s(b) ? 1 : 0); break;
      case Opcode::SLTU: wr_r(inst.rd, a < b ? 1 : 0); break;
      case Opcode::ADDI: wr_r(inst.rd, a + u(imm)); break;
      case Opcode::ANDI: wr_r(inst.rd, a & u(imm)); break;
      case Opcode::ORI: wr_r(inst.rd, a | u(imm)); break;
      case Opcode::XORI: wr_r(inst.rd, a ^ u(imm)); break;
      case Opcode::SLTI: wr_r(inst.rd, s(a) < imm ? 1 : 0); break;
      case Opcode::SLLI: wr_r(inst.rd, a << (imm & 63)); break;
      case Opcode::SRLI: wr_r(inst.rd, a >> (imm & 63)); break;
      case Opcode::SRAI: wr_r(inst.rd, u(s(a) >> (imm & 63))); break;
      case Opcode::LUI: wr_r(inst.rd, u(imm) << 14); break;

      // Integer multiply / divide.
      case Opcode::MUL: wr_r(inst.rd, a * b); break;
      case Opcode::MULH:
        wr_r(inst.rd,
             static_cast<std::uint64_t>(
                 (static_cast<__int128>(s(a)) * s(b)) >> 64));
        break;
      case Opcode::DIV:
        if (b == 0) {
            wr_r(inst.rd, ~0ULL);
        } else if (s(a) == std::numeric_limits<std::int64_t>::min() &&
                   s(b) == -1) {
            wr_r(inst.rd, a);
        } else {
            wr_r(inst.rd, u(s(a) / s(b)));
        }
        break;
      case Opcode::REM:
        if (b == 0) {
            wr_r(inst.rd, a);
        } else if (s(a) == std::numeric_limits<std::int64_t>::min() &&
                   s(b) == -1) {
            wr_r(inst.rd, 0);
        } else {
            wr_r(inst.rd, u(s(a) % s(b)));
        }
        break;

      // Floating point.
      case Opcode::FADD: wr_r(inst.rd, asRaw(asDouble(a) + asDouble(b)));
        break;
      case Opcode::FSUB: wr_r(inst.rd, asRaw(asDouble(a) - asDouble(b)));
        break;
      case Opcode::FMUL: wr_r(inst.rd, asRaw(asDouble(a) * asDouble(b)));
        break;
      case Opcode::FDIV: wr_r(inst.rd, asRaw(asDouble(a) / asDouble(b)));
        break;
      case Opcode::FSQRT:
        wr_r(inst.rd, asRaw(std::sqrt(asDouble(a))));
        break;
      case Opcode::FMIN:
        wr_r(inst.rd, asRaw(std::fmin(asDouble(a), asDouble(b))));
        break;
      case Opcode::FMAX:
        wr_r(inst.rd, asRaw(std::fmax(asDouble(a), asDouble(b))));
        break;
      case Opcode::FNEG: wr_r(inst.rd, asRaw(-asDouble(a))); break;
      case Opcode::FABS: wr_r(inst.rd, asRaw(std::fabs(asDouble(a))));
        break;
      case Opcode::FMOV: wr_r(inst.rd, a); break;
      case Opcode::FCMPEQ:
        wr_r(inst.rd, asDouble(a) == asDouble(b) ? 1 : 0);
        break;
      case Opcode::FCMPLT:
        wr_r(inst.rd, asDouble(a) < asDouble(b) ? 1 : 0);
        break;
      case Opcode::FCMPLE:
        wr_r(inst.rd, asDouble(a) <= asDouble(b) ? 1 : 0);
        break;
      case Opcode::FCVTIF:
        wr_r(inst.rd, asRaw(static_cast<double>(s(a))));
        break;
      case Opcode::FCVTFI:
        wr_r(inst.rd, u(toInt(asDouble(a))));
        break;

      // Memory.
      case Opcode::LD:
      case Opcode::FLD:
        res.effAddr = a + u(imm);
        res.memValue = xc.readMem(res.effAddr, 8);
        wr_r(inst.rd, res.memValue);
        break;
      case Opcode::LW: {
        res.effAddr = a + u(imm);
        std::uint64_t raw = xc.readMem(res.effAddr, 4);
        res.memValue = u(signExtend(raw, 32));
        wr_r(inst.rd, res.memValue);
        break;
      }
      case Opcode::ST:
      case Opcode::FST:
        res.effAddr = a + u(imm);
        res.memValue = b;
        xc.writeMem(res.effAddr, 8, b);
        break;
      case Opcode::SW:
        res.effAddr = a + u(imm);
        res.memValue = b & 0xffffffffULL;
        xc.writeMem(res.effAddr, 4, b);
        break;

      // Control.
      case Opcode::BEQ: branch_to(a == b); break;
      case Opcode::BNE: branch_to(a != b); break;
      case Opcode::BLT: branch_to(s(a) < s(b)); break;
      case Opcode::BGE: branch_to(s(a) >= s(b)); break;
      case Opcode::BLTU: branch_to(a < b); break;
      case Opcode::BGEU: branch_to(a >= b); break;
      case Opcode::J:
        res.taken = true;
        res.nextPc = pc + u(imm) * kInstBytes;
        break;
      case Opcode::JAL:
        wr_r(inst.rd, pc + kInstBytes);
        res.taken = true;
        res.nextPc = pc + u(imm) * kInstBytes;
        break;
      case Opcode::JR:
        res.taken = true;
        res.nextPc = a;
        break;
      case Opcode::JALR:
        res.taken = true;
        res.nextPc = a;
        wr_r(inst.rd, pc + kInstBytes);
        break;

      case Opcode::NOP:
        break;
      case Opcode::HALT:
        res.halted = true;
        res.nextPc = pc;
        break;

      case Opcode::NumOpcodes:
        panic("executing invalid opcode");
    }

    return res;
}

} // namespace sciq

#endif // SCIQ_ISA_EXEC_IMPL_HH
