/**
 * @file
 * Shared helpers for the evaluation-reproduction benches: argument
 * handling, run-time scaling and fixed-width table output.
 *
 * Every bench accepts key=value arguments:
 *   iters=N      override the workload iteration count (0 = default)
 *   quick=1      reduce iteration counts ~4x for a fast smoke pass
 *   workloads=a,b,c   restrict to a subset of benchmarks
 */

#ifndef SCIQ_BENCH_BENCH_UTIL_HH
#define SCIQ_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/simulator.hh"
#include "workload/workloads.hh"

namespace sciq {
namespace bench {

struct BenchArgs
{
    std::uint64_t iters = 0;  ///< 0 = kernel default
    bool quick = false;
    std::vector<std::string> workloads;
    ConfigMap raw;
};

inline BenchArgs
parseArgs(int argc, char **argv, std::vector<std::string> default_wls)
{
    BenchArgs args;
    args.raw = ConfigMap::fromArgs(argc, argv);
    args.iters =
        static_cast<std::uint64_t>(args.raw.getInt("iters", 0));
    args.quick = args.raw.getBool("quick", false);
    std::string wls = args.raw.getString("workloads", "");
    if (wls.empty()) {
        args.workloads = std::move(default_wls);
    } else {
        std::size_t pos = 0;
        while (pos != std::string::npos) {
            auto comma = wls.find(',', pos);
            args.workloads.push_back(wls.substr(
                pos, comma == std::string::npos ? comma : comma - pos));
            pos = comma == std::string::npos ? comma : comma + 1;
        }
    }
    return args;
}

/** Apply iteration overrides to a config and run it. */
inline RunResult
runConfig(SimConfig cfg, const BenchArgs &args)
{
    cfg.wl.iterations = args.iters;
    if (args.quick && args.iters == 0) {
        // Quick mode: a fixed reduced iteration count (roughly a
        // quarter of the kernels' calibrated defaults).
        cfg.wl.iterations = 1500;
    }
    cfg.validate = false;  // benches measure; tests validate
    RunResult r = runSim(cfg);
    if (!r.haltedCleanly) {
        std::fprintf(stderr,
                     "WARNING: %s/%s did not halt within the cycle cap\n",
                     r.workload.c_str(), r.iqKind.c_str());
    }
    return r;
}

inline void
hr(char c = '-', int width = 92)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace bench
} // namespace sciq

#endif // SCIQ_BENCH_BENCH_UTIL_HH
