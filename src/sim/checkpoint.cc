#include "checkpoint.hh"

#include <bit>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace sciq {

namespace {

constexpr char kMagic[9] = "SCIQCKPT";  // 8 payload bytes

void
hashCacheGeometry(serial::Fnv64 &h, const CacheParams &p)
{
    h.update(p.sizeBytes);
    h.update(p.assoc);
    h.update(p.lineBytes);
}

std::string
hexKey(std::uint64_t key)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[i] = digits[key & 0xf];
        key >>= 4;
    }
    return s;
}

/** Trailer = FNV-1a over every byte before it. */
std::uint64_t
blobTrailer(const std::string &blob, std::size_t payload_len)
{
    return serial::fnv1a(blob.data(), payload_len);
}

void
saveFfStats(serial::Writer &w, const FastForwardStats &ff)
{
    w.u64(ff.instsSkipped);
    w.u64(ff.memAccessesWarmed);
    w.u64(ff.branchesWarmed);
    w.u8(ff.hitHalt ? 1 : 0);
}

FastForwardStats
restoreFfStats(serial::Reader &r)
{
    FastForwardStats ff;
    ff.instsSkipped = r.u64();
    ff.memAccessesWarmed = r.u64();
    ff.branchesWarmed = r.u64();
    ff.hitHalt = r.u8() != 0;
    return ff;
}

} // namespace

std::uint64_t
checkpointKeyHash(const SimConfig &config)
{
    serial::Fnv64 h;
    h.update(kCheckpointVersion);
    h.update(workloadFingerprint(config.workload, config.wl));
    h.update(config.fastForward);
    hashCacheGeometry(h, config.core.mem.l1i);
    hashCacheGeometry(h, config.core.mem.l1d);
    hashCacheGeometry(h, config.core.mem.l2);
    h.update(config.core.bp.globalHistoryBits);
    h.update(config.core.bp.globalPhtEntries);
    h.update(config.core.bp.localHistoryRegs);
    h.update(config.core.bp.localHistoryBits);
    h.update(config.core.bp.localPhtEntries);
    h.update(config.core.bp.choicePhtEntries);
    h.update(config.core.btbEntries);
    h.update(config.core.btbAssoc);
    h.update(config.core.rasEntries);
    h.update(config.core.hmpEntries);
    h.update(config.core.lrpEntries);
    h.update(config.core.warmICache ? 1 : 0);
    return h.digest();
}

std::string
saveCheckpoint(const SimConfig &config, const FunctionalCore &golden,
               OooCore &core, const FastForwardStats &ff)
{
    serial::Writer w;
    w.bytes(kMagic, 8);
    w.u32(kCheckpointVersion);
    w.u64(checkpointKeyHash(config));
    w.str(config.workload);
    w.u64(config.wl.iterations);
    w.u64(config.wl.seed);
    w.f64(config.wl.scale);
    w.u64(config.fastForward);
    w.u64(golden.prog().checksum());

    w.tag("FFST");
    saveFfStats(w, ff);
    w.tag("FUNC");
    golden.save(w);
    w.tag("L1I_");
    core.memHierarchy().icache().save(w);
    w.tag("L1D_");
    core.memHierarchy().dcache().save(w);
    w.tag("L2__");
    core.memHierarchy().l2cache().save(w);
    w.tag("BPRD");
    core.branchPredictor().save(w);
    w.tag("BTB_");
    core.btb().save(w);
    w.tag("RAS_");
    core.returnAddressStack().save(w);
    w.tag("HMP_");
    core.hitMissPredictor().save(w);
    w.tag("LRP_");
    core.leftRightPredictor().save(w);
    w.tag("END_");

    std::string blob = w.take();
    const std::uint64_t trailer = blobTrailer(blob, blob.size());
    serial::Writer t;
    t.u64(trailer);
    blob += t.buffer();
    return blob;
}

FastForwardStats
restoreCheckpoint(const std::string &blob, const SimConfig &config,
                  const Program &program, OooCore &core)
{
    if (blob.size() < 8 + 4 + 8 + 8) {
        throw CheckpointError("checkpoint truncated: " +
                                  std::to_string(blob.size()) +
                                  " bytes is smaller than any valid header",
                              /*transient=*/true);
    }
    if (blob.compare(0, 8, kMagic, 8) != 0)
        throw CheckpointError("not a checkpoint (bad magic)");

    try {
        serial::Reader r(blob);
        char magic[8];
        r.bytes(magic, 8);

        const std::uint32_t version = r.u32();
        if (version != kCheckpointVersion) {
            throw CheckpointError(
                "unsupported checkpoint version " + std::to_string(version) +
                " (this build reads version " +
                std::to_string(kCheckpointVersion) + ")");
        }

        // Verify the trailer before trusting any section payload.
        const std::size_t payload_len = blob.size() - 8;
        serial::Reader tr(std::string_view(blob).substr(payload_len));
        if (tr.u64() != blobTrailer(blob, payload_len)) {
            throw CheckpointError(
                "checkpoint checksum mismatch (corrupted file)",
                /*transient=*/true);
        }

        const std::uint64_t key = r.u64();
        const std::string wl_name = r.str();
        const std::uint64_t wl_iters = r.u64();
        const std::uint64_t wl_seed = r.u64();
        r.f64();  // wl scale, covered by the key hash
        const std::uint64_t ff_insts = r.u64();
        if (key != checkpointKeyHash(config)) {
            throw CheckpointError(
                "checkpoint key mismatch: snapshot is of '" + wl_name +
                "' (iters=" + std::to_string(wl_iters) + ", seed=" +
                std::to_string(wl_seed) + ", ff=" +
                std::to_string(ff_insts) +
                ") under a different workload/memory/branch configuration");
        }
        if (r.u64() != program.checksum()) {
            throw CheckpointError(
                "checkpoint program checksum mismatch: the workload "
                "generator produced a different program than the snapshot "
                "was taken from");
        }

        r.expectTag("FFST");
        const FastForwardStats ff = restoreFfStats(r);

        r.expectTag("FUNC");
        FunctionalCore warm(program);
        warm.restore(r);

        r.expectTag("L1I_");
        core.memHierarchy().icache().restore(r);
        r.expectTag("L1D_");
        core.memHierarchy().dcache().restore(r);
        r.expectTag("L2__");
        core.memHierarchy().l2cache().restore(r);
        r.expectTag("BPRD");
        core.branchPredictor().restore(r);
        r.expectTag("BTB_");
        core.btb().restore(r);
        r.expectTag("RAS_");
        core.returnAddressStack().restore(r);
        r.expectTag("HMP_");
        core.hitMissPredictor().restore(r);
        r.expectTag("LRP_");
        core.leftRightPredictor().restore(r);
        r.expectTag("END_");
        if (r.remaining() != 8) {
            throw CheckpointError("checkpoint has " +
                                  std::to_string(r.remaining() - 8) +
                                  " trailing bytes after END_");
        }

        // Mirror the cold path exactly: fastForward() only seeds the
        // timing core when the warm-up did not consume the program.
        if (!ff.hitHalt)
            core.seedState(warm.regFile(), warm.memory(), warm.pc());
        return ff;
    } catch (const serial::Error &e) {
        throw CheckpointError(std::string("malformed checkpoint: ") +
                                  e.what(),
                              /*transient=*/true);
    }
}

void
writeCheckpointFile(const std::string &path, const std::string &blob)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path target(path);
    if (target.has_parent_path())
        fs::create_directories(target.parent_path(), ec);

    // Unique temp name per writer thread, then an atomic rename, so
    // concurrent publishers of the same key never interleave bytes.
    const std::size_t tid =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string tmp = path + ".tmp." + hexKey(tid);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out || !out.write(blob.data(),
                               static_cast<std::streamsize>(blob.size()))) {
            fs::remove(tmp, ec);
            throw CheckpointError("cannot write checkpoint file '" + tmp +
                                      "'", /*transient=*/true);
        }
    }
    fs::rename(tmp, target, ec);
    if (ec) {
        fs::remove(tmp, ec);
        throw CheckpointError("cannot move checkpoint into place at '" +
                                  path + "'", /*transient=*/true);
    }
}

std::string
readCheckpointFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CheckpointError("cannot read checkpoint file '" + path + "'");
    std::string blob((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        throw CheckpointError("I/O error reading checkpoint file '" + path +
                                  "'", /*transient=*/true);
    return blob;
}

CheckpointCache::CheckpointCache(std::string dir) : dir_(std::move(dir)) {}

std::string
CheckpointCache::pathFor(std::uint64_t key) const
{
    if (dir_.empty())
        return "";
    return dir_ + "/ckpt-" + hexKey(key) + ".sciqckpt";
}

bool
CheckpointCache::tryLockKey(std::uint64_t key) const
{
    // Existence of `<blob>.lock` is the cross-process producer claim;
    // O_EXCL makes its creation the atomic election.
    const std::string lockPath = pathFor(key) + ".lock";
    const int fd = ::open(lockPath.c_str(),
                          O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    ::close(fd);
    return true;
}

void
CheckpointCache::unlockKey(std::uint64_t key) const
{
    ::unlink((pathFor(key) + ".lock").c_str());
}

CheckpointCache::Blob
CheckpointCache::findOrBegin(std::uint64_t key)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        auto it = entries_.find(key);
        if (it == entries_.end())
            break;
        if (it->second.blob) {
            ++memoryHits_;
            return it->second.blob;
        }
        // Another thread is producing this key; wait for its verdict.
        cv_.wait(lock);
    }

    // Claim production before probing the disk so only one thread pays
    // the file read (or, on a true miss, the warm-up).
    entries_[key].producing = true;
    lock.unlock();

    if (!dir_.empty()) {
        auto diskHit = [&](std::string blob) {
            lock.lock();
            Entry &e = entries_[key];
            e.blob =
                std::make_shared<const std::string>(std::move(blob));
            e.producing = false;
            ++diskHits_;
            cv_.notify_all();
            return e.blob;
        };

        // Poll-and-elect until we either read a published blob, win
        // the cross-process lock, or lose patience.  Iteration order:
        // blob first, so a winner that already published is picked up
        // without ever touching the lock.
        const auto giveUp =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(electionWaitMs);
        for (;;) {
            std::string from_disk;
            bool found = false;
            try {
                from_disk = readCheckpointFile(pathFor(key));
                found = true;
            } catch (const CheckpointError &) {
                // No usable file (yet).
            }
            if (found)
                return diskHit(std::move(from_disk));

            if (tryLockKey(key)) {
                // Won the election — but the previous holder may have
                // published between our read and its unlink, so probe
                // once more before paying for the warm-up.
                try {
                    from_disk = readCheckpointFile(pathFor(key));
                    found = true;
                } catch (const CheckpointError &) {
                }
                if (found) {
                    unlockKey(key);
                    return diskHit(std::move(from_disk));
                }
                lock.lock();
                entries_[key].diskLock = true;
                lock.unlock();
                return nullptr;
            }

            if (std::chrono::steady_clock::now() >= giveUp) {
                // Stale lock (crashed producer) or a glacial one:
                // produce our own copy.  Wasteful, never wrong — every
                // producer of this key writes bit-identical state.
                warn("checkpoint lock %s.lock held too long; producing "
                     "a duplicate warm-up",
                     pathFor(key).c_str());
                return nullptr;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(electionPollMs));
        }
    }
    return nullptr;
}

CheckpointCache::Blob
CheckpointCache::publish(std::uint64_t key, std::string blob)
{
    if (!dir_.empty()) {
        try {
            writeCheckpointFile(pathFor(key), blob);
        } catch (const CheckpointError &e) {
            warn("checkpoint not persisted: %s", e.what());
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entries_[key];
    if (e.diskLock) {
        unlockKey(key);
        e.diskLock = false;
    }
    e.blob = std::make_shared<const std::string>(std::move(blob));
    e.producing = false;
    ++produced_;
    cv_.notify_all();
    return e.blob;
}

void
CheckpointCache::cancel(std::uint64_t key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end() && !it->second.blob) {
        if (it->second.diskLock)
            unlockKey(key);
        entries_.erase(it);
    }
    cv_.notify_all();
}

std::uint64_t
CheckpointCache::memoryHits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return memoryHits_;
}

std::uint64_t
CheckpointCache::diskHits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return diskHits_;
}

std::uint64_t
CheckpointCache::produced() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return produced_;
}

} // namespace sciq
