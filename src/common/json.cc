#include "json.hh"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace sciq {
namespace json {

const Value &
Value::at(std::size_t i) const
{
    require(Kind::Array);
    if (i >= arr_.size())
        throw ParseError("json: array index " + std::to_string(i) +
                         " out of range (size " +
                         std::to_string(arr_.size()) + ")");
    return arr_[i];
}

const Value &
Value::at(const std::string &key) const
{
    require(Kind::Object);
    auto it = obj_.find(key);
    if (it == obj_.end())
        throw ParseError("json: object has no member '" + key + "'");
    return it->second;
}

const char *
Value::kindName(Kind k)
{
    switch (k) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

void
Value::require(Kind k) const
{
    if (kind_ != k)
        throw ParseError(std::string("json: expected ") + kindName(k) +
                         ", have " + kindName(kind_));
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::makeNumber(double d)
{
    Value v;
    v.kind_ = Kind::Number;
    v.num_ = d;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> a)
{
    Value v;
    v.kind_ = Kind::Array;
    v.arr_ = std::move(a);
    return v;
}

Value
Value::makeObject(std::map<std::string, Value> o)
{
    Value v;
    v.kind_ = Kind::Object;
    v.obj_ = std::move(o);
    return v;
}

namespace {

/** RFC 8259 recursive-descent parser over an in-memory document. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value
    document()
    {
        skipWs();
        Value v = value(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after the top-level value");
        return v;
    }

  private:
    static constexpr int kMaxDepth = 256;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw ParseError("json parse error at line " + std::to_string(line) +
                         ", column " + std::to_string(col) + ": " + what);
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    char
    next()
    {
        if (atEnd())
            fail("unexpected end of input");
        return text_[pos_++];
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    void
    expectLiteral(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            fail("invalid literal (expected '" + std::string(word) + "')");
        pos_ += word.size();
    }

    Value
    value(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting too deep");
        if (atEnd())
            fail("unexpected end of input");
        switch (peek()) {
          case '{': return object(depth);
          case '[': return array(depth);
          case '"': return Value::makeString(string());
          case 't': expectLiteral("true"); return Value::makeBool(true);
          case 'f': expectLiteral("false"); return Value::makeBool(false);
          case 'n': expectLiteral("null"); return Value::makeNull();
          default: return number();
        }
    }

    Value
    object(int depth)
    {
        next();  // '{'
        std::map<std::string, Value> members;
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return Value::makeObject(std::move(members));
        }
        for (;;) {
            skipWs();
            if (atEnd() || peek() != '"')
                fail("expected a quoted object key");
            std::string key = string();
            skipWs();
            if (next() != ':')
                fail("expected ':' after object key");
            skipWs();
            if (!members.emplace(key, value(depth + 1)).second)
                fail("duplicate object key '" + key + "'");
            skipWs();
            char c = next();
            if (c == '}')
                return Value::makeObject(std::move(members));
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Value
    array(int depth)
    {
        next();  // '['
        std::vector<Value> elems;
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return Value::makeArray(std::move(elems));
        }
        for (;;) {
            skipWs();
            elems.push_back(value(depth + 1));
            skipWs();
            char c = next();
            if (c == ']')
                return Value::makeArray(std::move(elems));
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    unsigned
    hex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            char c = next();
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return v;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
    }

    std::string
    string()
    {
        next();  // '"'
        std::string out;
        for (;;) {
            char c = next();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            char e = next();
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                unsigned cp = hex4();
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    if (next() != '\\' || next() != 'u')
                        fail("unpaired UTF-16 surrogate");
                    unsigned lo = hex4();
                    if (lo < 0xdc00 || lo > 0xdfff)
                        fail("invalid UTF-16 surrogate pair");
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    fail("unpaired UTF-16 surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("invalid escape sequence");
            }
        }
    }

    Value
    number()
    {
        const std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        // Integer part: one digit, or a nonzero digit followed by more.
        if (atEnd() || peek() < '0' || peek() > '9')
            fail("invalid number");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!atEnd() && peek() == '.') {
            ++pos_;
            if (atEnd() || peek() < '0' || peek() > '9')
                fail("digit required after decimal point");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (atEnd() || peek() < '0' || peek() > '9')
                fail("digit required in exponent");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        errno = 0;
        char *end = nullptr;
        double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            fail("invalid number");
        // Out-of-range magnitudes overflow to +-inf; the grammar
        // accepted the token, so keep the clamped value.
        return Value::makeNumber(v);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(std::string_view text)
{
    return Parser(text).document();
}

Value
parseFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ParseError("json: cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof())
        throw ParseError("json: read failure on '" + path + "'");
    return parse(buf.str());
}

void
writeNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[40];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os.write(buf, res.ptr - buf);
}

void
writeString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace json
} // namespace sciq
