#include "fetch_stream.hh"

#include "isa/exec_impl.hh"

namespace sciq {

SharedFetchStream::SharedFetchStream(
    const Program &program,
    const std::array<std::uint64_t, kNumArchRegs> &regs,
    const SparseMemory &memory, Addr start_pc)
    : program_(program), mem_(memory), regs_(regs), pc_(start_pc),
      bb_(program_)
{
}

bool
SharedFetchStream::produceOne()
{
    if (ended_)
        return false;

    if (curBb_ == nullptr || opIdx_ >= curBb_->ops.size()) {
        curBb_ = bb_.lookup(pc_);
        opIdx_ = 0;
        if (curBb_ == nullptr) {
            // The correct path left the program image: stop producing;
            // consumers fall back to local oracle execution (which
            // raises the same fetch-invalid condition the reference
            // core would).
            ended_ = true;
            return false;
        }
    }

    const BbOp &op = curBb_->ops[opIdx_];
    ProducerContext xc{regs_, mem_};
    const ExecResult res = executeImpl(op.inst, pc_, xc);

    FetchStreamEntry e;
    e.inst = op.inst;
    e.pc = pc_;
    e.nextPc = res.nextPc;
    e.effAddr = res.effAddr;
    e.memValue = res.memValue;
    e.dstValue = xc.wroteValue;
    e.dstReg = xc.wroteReg;
    e.taken = res.taken;
    e.halted = res.halted;
    entries_.push_back(e);

    pc_ = res.nextPc;
    if (res.halted) {
        ended_ = true;
        return true;
    }

    ++opIdx_;
    if (opIdx_ >= curBb_->ops.size()) {
        curBb_ = bb_.successor(curBb_, res.nextPc, res.taken);
        opIdx_ = 0;
    }
    return true;
}

} // namespace sciq
