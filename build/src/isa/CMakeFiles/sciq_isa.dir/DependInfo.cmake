
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/asm_builder.cc" "src/isa/CMakeFiles/sciq_isa.dir/asm_builder.cc.o" "gcc" "src/isa/CMakeFiles/sciq_isa.dir/asm_builder.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/isa/CMakeFiles/sciq_isa.dir/assembler.cc.o" "gcc" "src/isa/CMakeFiles/sciq_isa.dir/assembler.cc.o.d"
  "/root/repo/src/isa/codec.cc" "src/isa/CMakeFiles/sciq_isa.dir/codec.cc.o" "gcc" "src/isa/CMakeFiles/sciq_isa.dir/codec.cc.o.d"
  "/root/repo/src/isa/disassembler.cc" "src/isa/CMakeFiles/sciq_isa.dir/disassembler.cc.o" "gcc" "src/isa/CMakeFiles/sciq_isa.dir/disassembler.cc.o.d"
  "/root/repo/src/isa/exec.cc" "src/isa/CMakeFiles/sciq_isa.dir/exec.cc.o" "gcc" "src/isa/CMakeFiles/sciq_isa.dir/exec.cc.o.d"
  "/root/repo/src/isa/functional_core.cc" "src/isa/CMakeFiles/sciq_isa.dir/functional_core.cc.o" "gcc" "src/isa/CMakeFiles/sciq_isa.dir/functional_core.cc.o.d"
  "/root/repo/src/isa/opcodes.cc" "src/isa/CMakeFiles/sciq_isa.dir/opcodes.cc.o" "gcc" "src/isa/CMakeFiles/sciq_isa.dir/opcodes.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/isa/CMakeFiles/sciq_isa.dir/program.cc.o" "gcc" "src/isa/CMakeFiles/sciq_isa.dir/program.cc.o.d"
  "/root/repo/src/isa/sparse_memory.cc" "src/isa/CMakeFiles/sciq_isa.dir/sparse_memory.cc.o" "gcc" "src/isa/CMakeFiles/sciq_isa.dir/sparse_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sciq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
