file(REMOVE_RECURSE
  "CMakeFiles/ablation_enhancements.dir/ablation_enhancements.cc.o"
  "CMakeFiles/ablation_enhancements.dir/ablation_enhancements.cc.o.d"
  "ablation_enhancements"
  "ablation_enhancements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_enhancements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
