/**
 * @file
 * Observation hook for per-instruction pipeline events, used by
 * tracing/visualisation tools without coupling the core to them.
 */

#ifndef SCIQ_CORE_COMMIT_OBSERVER_HH
#define SCIQ_CORE_COMMIT_OBSERVER_HH

#include "core/dyn_inst.hh"

namespace sciq {

class CommitObserver
{
  public:
    virtual ~CommitObserver() = default;

    /** An instruction committed at `cycle`. */
    virtual void onCommit(const DynInst &inst, Cycle cycle) = 0;

    /** An in-flight instruction was squashed at `cycle`. */
    virtual void onSquash(const DynInst &inst, Cycle cycle) = 0;
};

} // namespace sciq

#endif // SCIQ_CORE_COMMIT_OBSERVER_HH
