/** @file Tests for fast-forwarding with functional warming. */

#include <gtest/gtest.h>

#include "sim/fast_forward.hh"
#include "sim/simulator.hh"

using namespace sciq;

TEST(FastForward, SkipsInstructionsAndSeedsState)
{
    Program prog = buildWorkload("twolf", {.iterations = 400});
    FunctionalCore golden(prog);
    CoreParams params;
    params.iqKind = IqKind::Ideal;
    params.iq.numEntries = 64;
    OooCore core(prog, params);

    FastForwardStats ff = fastForward(golden, core, 2000);
    EXPECT_EQ(ff.instsSkipped, 2000u);
    EXPECT_FALSE(ff.hitHalt);
    EXPECT_GT(ff.memAccessesWarmed, 0u);
    EXPECT_GT(ff.branchesWarmed, 0u);

    core.run(~0ULL, 2'000'000);
    ASSERT_TRUE(core.halted());

    // Final committed state equals a full functional run.
    FunctionalCore full(prog);
    full.run();
    EXPECT_EQ(ff.instsSkipped + core.committedCount(), full.instCount());
    for (RegIndex r = 1; r < kNumArchRegs; ++r)
        EXPECT_EQ(core.commitRegs()[r], full.reg(r)) << "reg " << r;
    EXPECT_TRUE(core.commitMemory().equalContents(full.memory()));
}

TEST(FastForward, WarmsTheDataCache)
{
    Program prog = buildWorkload("twolf", {.iterations = 600});

    auto cold_misses = [&](std::uint64_t ff_insts) {
        FunctionalCore golden(prog);
        CoreParams params;
        params.iqKind = IqKind::Ideal;
        params.iq.numEntries = 64;
        OooCore core(prog, params);
        if (ff_insts)
            fastForward(golden, core, ff_insts);
        core.run(~0ULL, 2'000'000);
        EXPECT_TRUE(core.halted());
        return core.memHierarchy().dcache().misses.value();
    };

    // Warming must eliminate most of the small-footprint cold misses.
    EXPECT_LT(cold_misses(4000), 0.5 * cold_misses(0));
}

TEST(FastForward, StopsAtHalt)
{
    Program prog = buildWorkload("gcc", {.iterations = 50});
    FunctionalCore golden(prog);
    CoreParams params;
    params.iq.numEntries = 64;
    params.iqKind = IqKind::Ideal;
    OooCore core(prog, params);
    FastForwardStats ff = fastForward(golden, core, 10'000'000);
    EXPECT_TRUE(ff.hitHalt);
    EXPECT_LT(ff.instsSkipped, 10'000'000u);
}

TEST(FastForward, SimulatorIntegrationValidates)
{
    SimConfig cfg = makeSegmentedConfig(128, 64, true, true, "vortex");
    cfg.wl.iterations = 500;
    cfg.fastForward = 1500;
    cfg.validate = true;
    RunResult r = runSim(cfg);
    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.validated);
}

TEST(FastForward, ConfigKey)
{
    SimConfig cfg;
    ConfigMap m;
    m.set("ff", "12345");
    cfg.apply(m);
    EXPECT_EQ(cfg.fastForward, 12345u);
}

TEST(FastForward, ConfigKeyCountSuffix)
{
    SimConfig cfg;
    ConfigMap m;
    m.set("ff", "300m");
    m.set("iters", "2k");
    m.set("max_cycles", "1m");
    cfg.apply(m);
    EXPECT_EQ(cfg.fastForward, 300'000'000u);
    EXPECT_EQ(cfg.wl.iterations, 2'000u);
    EXPECT_EQ(cfg.maxCycles, 1'000'000u);
}

TEST(FastForward, BbCacheConfigKey)
{
    SimConfig cfg;
    EXPECT_TRUE(cfg.bbCache);
    ConfigMap m;
    m.set("bb_cache", "0");
    cfg.apply(m);
    EXPECT_FALSE(cfg.bbCache);
}

TEST(FastForward, SeedStateAfterStartPanics)
{
    Program prog = buildWorkload("gcc", {.iterations = 50});
    CoreParams params;
    params.iq.numEntries = 64;
    params.iqKind = IqKind::Ideal;
    OooCore core(prog, params);
    core.tick();
    std::array<std::uint64_t, kNumArchRegs> regs{};
    SparseMemory mem;
    EXPECT_THROW(core.seedState(regs, mem, 0x1000), PanicError);
}
