#include "opcodes.hh"

#include "common/logging.hh"

namespace sciq {

namespace {

constexpr OpInfo kOpTable[] = {
    {"add", OpClass::IntAlu, Format::R},
    {"sub", OpClass::IntAlu, Format::R},
    {"and", OpClass::IntAlu, Format::R},
    {"or", OpClass::IntAlu, Format::R},
    {"xor", OpClass::IntAlu, Format::R},
    {"sll", OpClass::IntAlu, Format::R},
    {"srl", OpClass::IntAlu, Format::R},
    {"sra", OpClass::IntAlu, Format::R},
    {"slt", OpClass::IntAlu, Format::R},
    {"sltu", OpClass::IntAlu, Format::R},
    {"addi", OpClass::IntAlu, Format::I},
    {"andi", OpClass::IntAlu, Format::I},
    {"ori", OpClass::IntAlu, Format::I},
    {"xori", OpClass::IntAlu, Format::I},
    {"slti", OpClass::IntAlu, Format::I},
    {"slli", OpClass::IntAlu, Format::I},
    {"srli", OpClass::IntAlu, Format::I},
    {"srai", OpClass::IntAlu, Format::I},
    {"lui", OpClass::IntAlu, Format::J},
    {"mul", OpClass::IntMul, Format::R},
    {"mulh", OpClass::IntMul, Format::R},
    {"div", OpClass::IntDiv, Format::R},
    {"rem", OpClass::IntDiv, Format::R},
    {"fadd", OpClass::FpAdd, Format::R},
    {"fsub", OpClass::FpAdd, Format::R},
    {"fmul", OpClass::FpMul, Format::R},
    {"fdiv", OpClass::FpDiv, Format::R},
    {"fsqrt", OpClass::FpSqrt, Format::I},
    {"fmin", OpClass::FpAdd, Format::R},
    {"fmax", OpClass::FpAdd, Format::R},
    {"fneg", OpClass::FpAdd, Format::I},
    {"fabs", OpClass::FpAdd, Format::I},
    {"fmov", OpClass::FpAdd, Format::I},
    {"fcmpeq", OpClass::FpAdd, Format::R},
    {"fcmplt", OpClass::FpAdd, Format::R},
    {"fcmple", OpClass::FpAdd, Format::R},
    {"fcvtif", OpClass::FpAdd, Format::I},
    {"fcvtfi", OpClass::FpAdd, Format::I},
    {"ld", OpClass::MemRead, Format::M},
    {"lw", OpClass::MemRead, Format::M},
    {"fld", OpClass::MemRead, Format::M},
    {"st", OpClass::MemWrite, Format::M},
    {"sw", OpClass::MemWrite, Format::M},
    {"fst", OpClass::MemWrite, Format::M},
    {"beq", OpClass::Branch, Format::B},
    {"bne", OpClass::Branch, Format::B},
    {"blt", OpClass::Branch, Format::B},
    {"bge", OpClass::Branch, Format::B},
    {"bltu", OpClass::Branch, Format::B},
    {"bgeu", OpClass::Branch, Format::B},
    {"j", OpClass::Branch, Format::J},
    {"jal", OpClass::Branch, Format::J},
    {"jr", OpClass::Jump, Format::JR},
    {"jalr", OpClass::Jump, Format::JR},
    {"nop", OpClass::Nop, Format::N},
    {"halt", OpClass::Halt, Format::N},
};

static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) == kNumOpcodes,
              "opcode table out of sync with Opcode enum");

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<unsigned>(op);
    SCIQ_ASSERT(idx < kNumOpcodes, "bad opcode %u", idx);
    return kOpTable[idx];
}

} // namespace sciq
