
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/ammp.cc" "src/workload/CMakeFiles/sciq_workload.dir/ammp.cc.o" "gcc" "src/workload/CMakeFiles/sciq_workload.dir/ammp.cc.o.d"
  "/root/repo/src/workload/applu.cc" "src/workload/CMakeFiles/sciq_workload.dir/applu.cc.o" "gcc" "src/workload/CMakeFiles/sciq_workload.dir/applu.cc.o.d"
  "/root/repo/src/workload/equake.cc" "src/workload/CMakeFiles/sciq_workload.dir/equake.cc.o" "gcc" "src/workload/CMakeFiles/sciq_workload.dir/equake.cc.o.d"
  "/root/repo/src/workload/gcc_like.cc" "src/workload/CMakeFiles/sciq_workload.dir/gcc_like.cc.o" "gcc" "src/workload/CMakeFiles/sciq_workload.dir/gcc_like.cc.o.d"
  "/root/repo/src/workload/mgrid.cc" "src/workload/CMakeFiles/sciq_workload.dir/mgrid.cc.o" "gcc" "src/workload/CMakeFiles/sciq_workload.dir/mgrid.cc.o.d"
  "/root/repo/src/workload/registry.cc" "src/workload/CMakeFiles/sciq_workload.dir/registry.cc.o" "gcc" "src/workload/CMakeFiles/sciq_workload.dir/registry.cc.o.d"
  "/root/repo/src/workload/swim.cc" "src/workload/CMakeFiles/sciq_workload.dir/swim.cc.o" "gcc" "src/workload/CMakeFiles/sciq_workload.dir/swim.cc.o.d"
  "/root/repo/src/workload/twolf.cc" "src/workload/CMakeFiles/sciq_workload.dir/twolf.cc.o" "gcc" "src/workload/CMakeFiles/sciq_workload.dir/twolf.cc.o.d"
  "/root/repo/src/workload/vortex.cc" "src/workload/CMakeFiles/sciq_workload.dir/vortex.cc.o" "gcc" "src/workload/CMakeFiles/sciq_workload.dir/vortex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/sciq_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sciq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
