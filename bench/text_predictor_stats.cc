/**
 * @file
 * Reproduces the numeric claims embedded in the paper's prose
 * (sections 4.4, 4.5 and 6.1):
 *
 *  - the hit/miss predictor achieves >98% accuracy on hit predictions
 *    while covering ~83% of actual hits;
 *  - ~35% of instructions have two outstanding operands in different
 *    chains;
 *  - loads account for ~65% of chains in the base configuration;
 *  - the deadlock condition arises in ~0.05% of cycles.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sciq;
using namespace sciq::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, workloadNames());
    const unsigned kIqSize = static_cast<unsigned>(
        args.raw.getInt("iq_size", 512));

    std::printf("Prose statistics, %u-entry segmented IQ\n\n", kIqSize);
    std::printf("%-9s | %9s %9s | %9s %9s | %9s | %12s\n", "bench",
                "HMP acc%", "cover%", "2-chain%", "ld-heads%", "LRPmis%",
                "deadlock%%cyc");
    hr('-', 86);

    // HMP/LRP stats come from the comb config (both predictors in
    // use); two-outstanding and load-head fractions are properties
    // of the base policy.
    SweepBatch batch(args);
    for (const auto &wl : args.workloads) {
        batch.add(makeSegmentedConfig(kIqSize, 128, true, true, wl));
        batch.add(makeSegmentedConfig(kIqSize, -1, false, false, wl));
    }
    batch.run();

    double acc_sum = 0, cov_sum = 0, two_sum = 0, heads_sum = 0;
    double lrp_sum = 0, dead_sum = 0;
    for (const auto &wl : args.workloads) {
        RunResult rc = batch.next();
        RunResult rb = batch.next();

        std::printf("%-9s | %9.2f %9.2f | %9.2f %9.2f | %9.2f | %12.4f\n",
                    wl.c_str(), 100.0 * rc.hmpAccuracy,
                    100.0 * rc.hmpCoverage, 100.0 * rb.twoOutstandingFrac,
                    100.0 * rb.headsFromLoadsFrac,
                    100.0 * rc.lrpMispredictRate,
                    100.0 * rc.deadlockCycleFrac);
        std::fflush(stdout);
        acc_sum += rc.hmpAccuracy;
        cov_sum += rc.hmpCoverage;
        two_sum += rb.twoOutstandingFrac;
        heads_sum += rb.headsFromLoadsFrac;
        lrp_sum += rc.lrpMispredictRate;
        dead_sum += rc.deadlockCycleFrac;
    }
    hr('-', 86);
    const double n = static_cast<double>(args.workloads.size());
    std::printf("%-9s | %9.2f %9.2f | %9.2f %9.2f | %9.2f | %12.4f\n",
                "average", 100.0 * acc_sum / n, 100.0 * cov_sum / n,
                100.0 * two_sum / n, 100.0 * heads_sum / n,
                100.0 * lrp_sum / n, 100.0 * dead_sum / n);

    std::printf("\nPaper reference: HMP accuracy >98%% with ~83%% hit "
                "coverage; ~35%% two-outstanding instructions;\n"
                "loads are ~65%% of chains; deadlock in ~0.05%% of "
                "cycles.\n");
    finishBench(args);
    return 0;
}
