/**
 * @file
 * Invariant-auditor sweep: every workload, both IQ models, two IQ
 * sizes, all with `audit=1` -- a healthy simulator must report zero
 * violations.  The negative tests prove the auditor actually fires by
 * enabling the test-only over-promotion fault injection.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/errors.hh"
#include "common/logging.hh"
#include "sim/audit.hh"
#include "sim/simulator.hh"
#include "workload/workloads.hh"

using namespace sciq;

namespace {

using AuditParam = std::tuple<std::string, std::string, unsigned>;

class AuditSweep : public ::testing::TestWithParam<AuditParam>
{
};

TEST_P(AuditSweep, ZeroViolations)
{
    const auto &[workload, kind, iq_size] = GetParam();

    SimConfig cfg = kind == "segmented"
        ? makeSegmentedConfig(iq_size, 32, true, true, workload)
        : makeIdealConfig(iq_size, workload);
    cfg.wl.iterations = 200;
    cfg.audit = true;

    Simulator sim(cfg);
    RunResult r = sim.run();

    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.validated);
    ASSERT_NE(sim.auditor(), nullptr);
    EXPECT_GT(sim.auditor()->cyclesAudited.value(), 0.0);
    EXPECT_EQ(r.auditViolations, 0u)
        << "negative_delay=" << sim.auditor()->negativeDelay.value()
        << " segment_overflow=" << sim.auditor()->segmentOverflow.value()
        << " promotion_bound=" << sim.auditor()->promotionBound.value()
        << " issue_over_width=" << sim.auditor()->issueOverWidth.value()
        << " wire_delivery=" << sim.auditor()->wireDelivery.value()
        << " pool_bound=" << sim.auditor()->poolBound.value();
}

std::string
auditParamName(const ::testing::TestParamInfo<AuditParam> &info)
{
    return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_" +
           std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, AuditSweep,
    ::testing::Combine(::testing::ValuesIn(workloadNames()),
                       ::testing::Values("segmented", "ideal"),
                       ::testing::Values(64u, 256u)),
    auditParamName);

TEST(AuditStats, GroupIsWiredIntoCoreTree)
{
    SimConfig cfg = makeSegmentedConfig(64, 32, true, true, "swim");
    cfg.wl.iterations = 100;
    cfg.audit = true;

    Simulator sim(cfg);
    sim.run();

    stats::Group &core_stats = sim.core().statGroup();
    EXPECT_TRUE(core_stats.contains("audit.cycles_audited"));
    EXPECT_GT(core_stats.lookup("audit.cycles_audited"), 0.0);
    EXPECT_EQ(core_stats.lookup("audit.promotion_bound"), 0.0);
    EXPECT_EQ(core_stats.lookup("audit.wire_delivery"), 0.0);
}

TEST(AuditNegative, InjectedOverPromotionIsCaught)
{
    // The fault injection ignores the previous-cycle free-entry snapshot
    // when computing the promotion budget, which violates the section 9
    // bound whenever a segment drained this cycle.  The auditor must
    // notice; a zero count here would mean the check is vacuous.  ammp
    // keeps segment 0 close to full, so the injected budget overshoots
    // hundreds of times in 300 iterations.
    SimConfig cfg = makeSegmentedConfig(64, 16, true, true, "ammp");
    cfg.wl.iterations = 300;
    cfg.audit = true;
    cfg.core.iq.auditInjectOverPromote = true;

    Simulator sim(cfg);
    RunResult r = sim.run();

    ASSERT_NE(sim.auditor(), nullptr);
    EXPECT_GT(sim.auditor()->promotionBound.value(), 0.0);
    EXPECT_GT(r.auditViolations, 0u);
}

TEST(AuditNegative, PanicModeThrowsOnFirstViolation)
{
    SimConfig cfg = makeSegmentedConfig(64, 16, true, true, "ammp");
    cfg.wl.iterations = 300;
    cfg.audit = true;
    cfg.auditPanic = true;
    cfg.core.iq.auditInjectOverPromote = true;

    Simulator sim(cfg);
    try {
        sim.run();
        FAIL() << "expected InvariantError";
    } catch (const InvariantError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Invariant);
        EXPECT_NE(std::string(e.what()).find("promotions"), std::string::npos);
        EXPECT_FALSE(e.context().empty()) << "panic path must capture a dump";
    }
}

} // namespace
