/**
 * @file
 * Return address stack with checkpoint/restore for squash recovery.
 */

#ifndef SCIQ_BRANCH_RAS_HH
#define SCIQ_BRANCH_RAS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace sciq {

class ReturnAddressStack
{
  public:
    /** Snapshot = (top-of-stack index, value at top). */
    struct Snapshot
    {
        unsigned tos = 0;
        Addr topValue = 0;
    };

    explicit ReturnAddressStack(unsigned entries = 32)
        : stack(entries, 0)
    {
    }

    void
    push(Addr return_pc)
    {
        tos = (tos + 1) % stack.size();
        stack[tos] = return_pc;
    }

    Addr
    pop()
    {
        Addr v = stack[tos];
        tos = (tos + stack.size() - 1) % stack.size();
        return v;
    }

    Addr peek() const { return stack[tos]; }

    Snapshot
    snapshot() const
    {
        return {tos, stack[tos]};
    }

    void
    restore(const Snapshot &snap)
    {
        tos = snap.tos;
        stack[tos] = snap.topValue;
    }

  private:
    std::vector<Addr> stack;
    unsigned tos = 0;
};

} // namespace sciq

#endif // SCIQ_BRANCH_RAS_HH
