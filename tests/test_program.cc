/** @file Tests for the Program container and its loaded memory image. */

#include <gtest/gtest.h>

#include "isa/asm_builder.hh"
#include "isa/codec.hh"
#include "isa/program.hh"
#include "isa/sparse_memory.hh"

using namespace sciq;

TEST(Program, LoadWritesDecodableCodeImage)
{
    AsmBuilder b(0x1000);
    b.addi(intReg(1), intReg(0), 42);
    b.mul(intReg(2), intReg(1), intReg(1));
    b.halt();
    Program prog = b.build();

    SparseMemory mem;
    prog.load(mem);

    // The in-memory words decode back to the original instructions.
    for (std::size_t i = 0; i < prog.size(); ++i) {
        auto word = static_cast<std::uint32_t>(mem.read(prog.pcOf(i), 4));
        Instruction decoded = decode(word);
        EXPECT_TRUE(decoded == prog.instructions()[i]) << "index " << i;
    }
}

TEST(Program, AppendReturnsPc)
{
    Program prog(0x2000);
    Instruction nop;
    nop.op = Opcode::NOP;
    EXPECT_EQ(prog.append(nop), 0x2000u);
    EXPECT_EQ(prog.append(nop), 0x2004u);
    EXPECT_EQ(prog.size(), 2u);
}

TEST(Program, ContainsAndBounds)
{
    Program prog(0x2000);
    Instruction nop;
    nop.op = Opcode::NOP;
    prog.append(nop);
    EXPECT_TRUE(prog.contains(0x2000));
    EXPECT_FALSE(prog.contains(0x2004));
    EXPECT_FALSE(prog.contains(0x1ffc));
    EXPECT_FALSE(prog.contains(0x2001));
}

TEST(Program, DataBlobHelpers)
{
    Program prog;
    prog.addDoubles(0x8000, {1.0, 2.0});
    prog.addWords(0x9000, {0xAABB, 0xCCDD});
    SparseMemory mem;
    prog.load(mem);
    EXPECT_DOUBLE_EQ(mem.readDouble(0x8000), 1.0);
    EXPECT_DOUBLE_EQ(mem.readDouble(0x8008), 2.0);
    EXPECT_EQ(mem.read(0x9000, 8), 0xAABBu);
    EXPECT_EQ(mem.read(0x9008, 8), 0xCCDDu);
}

TEST(Program, NameCarriedThroughBuilder)
{
    AsmBuilder b;
    b.halt();
    Program prog = b.build("my-kernel");
    EXPECT_EQ(prog.name, "my-kernel");
}
