/**
 * @file
 * Distributed-sweep coordinator (and single-process reference runner).
 *
 * Serves a configuration set to sweep_worker processes over a local
 * socket (DESIGN.md §17) and merges their streamed results into the
 * same final JSON a single-process sweep writes — byte-identical up to
 * the host wall-clock fields.
 *
 * Usage examples:
 *   # coordinator, expecting ~3 workers
 *   sweep_serve socket=/tmp/sweep.sock workers=3 out=dist.json \
 *               journal=dist.jsonl
 *   # single-process reference over the same config set
 *   sweep_serve mode=local jobs=4 out=ref.json
 *   # explicit config list (one configSpec line per job)
 *   sweep_serve spec=jobs.txt socket=/tmp/sweep.sock out=dist.json
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/config.hh"
#include "sim/checkpoint.hh"
#include "sim/shard.hh"

using namespace sciq;

namespace {

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

/**
 * The built-in config sets.  `quick` is the CI differential set: three
 * IQ designs per workload, big enough to exercise sharding and work
 * stealing, small enough for a smoke gate.  `tiny` is for local
 * experiments.
 */
std::vector<SimConfig>
presetConfigs(const std::string &preset,
              std::vector<std::string> workloads)
{
    std::uint64_t iters = 0;
    if (preset == "quick") {
        if (workloads.empty())
            workloads = {"swim", "twolf"};
        iters = 1500;
    } else if (preset == "tiny") {
        if (workloads.empty())
            workloads = {"swim", "gcc"};
        iters = 200;
    } else {
        throw ConfigError("unknown preset '" + preset +
                          "' (quick|tiny)");
    }

    std::vector<SimConfig> configs;
    for (const std::string &wl : workloads) {
        configs.push_back(makeSegmentedConfig(64, 32, true, true, wl));
        configs.push_back(makeSegmentedConfig(256, 32, true, true, wl));
        configs.push_back(makeIdealConfig(256, wl));
    }
    for (SimConfig &cfg : configs) {
        cfg.wl.iterations = iters;
        cfg.validate = false;
    }
    return configs;
}

std::vector<SimConfig>
specFileConfigs(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError("cannot read spec file '" + path + "'");
    std::vector<SimConfig> configs;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        configs.push_back(configFromSpec(line));
    }
    return configs;
}

} // namespace

int
main(int argc, char **argv)
{
    ConfigMap args = ConfigMap::fromArgs(argc, argv);
    if (args.has("help")) {
        std::cout <<
            "keys: mode=serve|local     (default serve)\n"
            "      preset=quick|tiny    built-in config set\n"
            "      spec=FILE            configSpec lines instead of a "
            "preset\n"
            "      workloads=a,b iters=N ff=N   preset overrides\n"
            "      socket=PATH          coordinator listen socket\n"
            "      workers=N            expected worker count (= shard "
            "count)\n"
            "      lease_ms=N lease_drops=N dup_ms=N grace_ms=N\n"
            "      journal=FILE out=FILE\n"
            "      jobs=N batch=N ckpt_dir=DIR  (mode=local)\n"
            "      retries=N artifact_dir=DIR\n";
        return 0;
    }
    const std::string complaint = args.unknownKeyMessage(
        {"mode", "preset", "spec", "workloads", "iters", "ff", "socket",
         "workers", "lease_ms", "lease_drops", "dup_ms", "grace_ms",
         "journal", "out", "jobs", "batch", "ckpt_dir", "retries",
         "artifact_dir", "help"});
    if (!complaint.empty()) {
        std::cerr << complaint << "\n";
        return 2;
    }

    try {
        std::vector<SimConfig> configs;
        if (args.has("spec")) {
            configs = specFileConfigs(args.getString("spec"));
        } else {
            configs = presetConfigs(
                args.getString("preset", "quick"),
                splitList(args.getString("workloads")));
        }
        for (SimConfig &cfg : configs) {
            cfg.wl.iterations = static_cast<std::uint64_t>(args.getCount(
                "iters", static_cast<std::int64_t>(cfg.wl.iterations)));
            cfg.fastForward = static_cast<std::uint64_t>(args.getCount(
                "ff", static_cast<std::int64_t>(cfg.fastForward)));
        }
        if (configs.empty()) {
            std::cerr << "no configurations to run\n";
            return 2;
        }

        const std::string mode = args.getString("mode", "serve");
        std::vector<RunResult> results;
        auto progress = [](std::size_t done, std::size_t total,
                           const RunResult &r) {
            std::cout << "[" << done << "/" << total << "] "
                      << r.workload << " " << r.iqKind << "/" << r.iqSize
                      << " -> " << jobStatusName(r.outcome.status)
                      << "\n";
        };

        if (mode == "local") {
            SweepRunner::Options options;
            options.journal = args.getString("journal");
            options.maxRetries =
                static_cast<unsigned>(args.getInt("retries", 2));
            options.artifactDir = args.getString("artifact_dir");
            options.batch =
                static_cast<unsigned>(args.getInt("batch", 1));
            options.progress = progress;

            // Mirror the distributed fleet's shared warm-state store:
            // one cache for the whole sweep (bench_util.hh idiom).
            std::shared_ptr<CheckpointCache> cache;
            const std::string ckptDir = args.getString("ckpt_dir");
            for (SimConfig &cfg : configs) {
                if (cfg.fastForward == 0)
                    continue;
                if (!cache)
                    cache = std::make_shared<CheckpointCache>(ckptDir);
                cfg.ckptCache = cache;
            }

            SweepRunner runner(
                static_cast<unsigned>(args.getInt("jobs", 0)));
            results = runner.run(configs, options);
        } else if (mode == "serve") {
            ServeOptions options;
            options.socketPath =
                args.getString("socket", "/tmp/sciq-sweep.sock");
            options.shards =
                static_cast<unsigned>(args.getInt("workers", 1));
            options.leaseMs =
                static_cast<unsigned>(args.getInt("lease_ms", 60'000));
            options.maxLeaseDrops =
                static_cast<unsigned>(args.getInt("lease_drops", 3));
            options.duplicateAfterMs =
                static_cast<unsigned>(args.getInt("dup_ms", 1'000));
            options.workerGraceMs =
                static_cast<unsigned>(args.getInt("grace_ms", 60'000));
            options.journal = args.getString("journal");
            options.progress = progress;

            ServeStats stats;
            results = serveSweep(configs, options, &stats);
            std::cout << "served " << results.size() << " jobs to "
                      << stats.workersSeen << " workers: "
                      << stats.leases << " leases, " << stats.steals
                      << " steals, " << stats.duplicates
                      << " duplicate leases ("
                      << stats.duplicateResults << " losing results), "
                      << stats.requeues << " requeues, "
                      << stats.boardFailed << " drop-cap failures, "
                      << stats.rejectedWorkers << " rejected workers\n";
        } else {
            std::cerr << "unknown mode '" << mode << "' (serve|local)\n";
            return 2;
        }

        std::size_t ok = 0, restored = 0;
        for (const RunResult &r : results) {
            ok += r.outcome.ok();
            restored += r.ckptRestored;
        }
        std::cout << ok << "/" << results.size() << " jobs ok, "
                  << restored << " restored a warm-up checkpoint\n";

        const std::string out = args.getString("out");
        if (!out.empty()) {
            if (!writeResultsJson(out, results)) {
                std::cerr << "cannot write '" << out << "'\n";
                return 1;
            }
            std::cout << "wrote " << out << "\n";
        }
        return ok == results.size() ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << "sweep_serve: " << e.what() << "\n";
        return 1;
    }
}
