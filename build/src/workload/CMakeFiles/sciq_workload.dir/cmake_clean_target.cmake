file(REMOVE_RECURSE
  "libsciq_workload.a"
)
