# Empty dependencies file for sciq_workload.
# This may be replaced when dependencies are built.
