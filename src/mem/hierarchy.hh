/**
 * @file
 * The complete memory hierarchy of Table 1: split L1 I/D caches over a
 * unified L2 over main memory, driven by one event queue that the core
 * advances each cycle.
 */

#ifndef SCIQ_MEM_HIERARCHY_HH
#define SCIQ_MEM_HIERARCHY_HH

#include <memory>

#include "common/event_queue.hh"
#include "mem/cache.hh"
#include "mem/main_memory.hh"

namespace sciq {

struct HierarchyParams
{
    CacheParams l1i{.name = "l1i",
                    .sizeBytes = 64 * 1024,
                    .assoc = 2,
                    .lineBytes = 64,
                    .latency = 1,
                    .mshrs = 32,
                    .fillBandwidth = 1};
    CacheParams l1d{.name = "l1d",
                    .sizeBytes = 64 * 1024,
                    .assoc = 2,
                    .lineBytes = 64,
                    .latency = 3,
                    .mshrs = 32,
                    .fillBandwidth = 1};
    CacheParams l2{.name = "l2",
                   .sizeBytes = 1024 * 1024,
                   .assoc = 4,
                   .lineBytes = 64,
                   .latency = 10,
                   .mshrs = 32,
                   .fillBandwidth = 1};
    MainMemoryParams memory{};
};

class MemHierarchy
{
  public:
    explicit MemHierarchy(const HierarchyParams &params = {});

    /** Advance the event-driven machinery to `cycle`. */
    void tick(Cycle cycle) { events.runUntil(cycle); }

    Cache &icache() { return *l1i; }
    Cache &dcache() { return *l1d; }
    Cache &l2cache() { return *l2; }
    MainMemory &memory() { return *mem; }
    EventQueue &eventQueue() { return events; }

    /** Drop all cached lines (MSHRs must be idle). */
    void flushAll();

    stats::Group &statGroup() { return statsGroup; }

  private:
    EventQueue events;
    std::unique_ptr<MainMemory> mem;
    std::unique_ptr<Cache> l2;
    std::unique_ptr<Cache> l1i;
    std::unique_ptr<Cache> l1d;
    stats::Group statsGroup;
};

} // namespace sciq

#endif // SCIQ_MEM_HIERARCHY_HH
