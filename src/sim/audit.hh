/**
 * @file
 * Cycle-level invariant auditor (DESIGN.md section 9).
 *
 * When `SimConfig::audit` is set (config key `audit=1`), an Auditor is
 * attached to the core through its end-of-cycle hook and re-checks the
 * simulator's structural invariants every cycle:
 *
 *  - per-member chain delay values never go negative;
 *  - segment occupancy never exceeds segment capacity (and the queue
 *    never exceeds its total capacity);
 *  - promotions into a segment respect the previous-cycle free-entry
 *    bound and the issue width (deadlock-recovery force promotions are
 *    exempt, as section 4.5 specifies);
 *  - issue never exceeds the issue width;
 *  - chain-wire delivery is exact: a signal generated at segment o on
 *    cycle g is applied by every listener in segment s no later than
 *    cycle g + max(0, s - o) (the pipelined-wire timing), and never
 *    before;
 *  - the DynInstPool's live-slot count stays within the in-flight
 *    window bound (catches storage leaks such as containers pinning
 *    recycled slots);
 *  - every incremental scheduling index (DESIGN.md section 11) agrees
 *    with a brute-force rescan of the authoritative state: the O(1)
 *    occupancy counters, the per-segment promotion-candidate counts
 *    and activity masks, the per-chain subscriber lists and their
 *    back-pointers, the self-timed countdown lists, the ideal queue's
 *    ready list, and the core's writeback-ring population.
 *
 * Violations are accumulated into a `stats::Group` ("audit") so sweeps
 * can assert on them cheaply; with `auditPanic` (key `audit_panic=1`,
 * the default in assertion-enabled builds) the first violation panics
 * with a pipe-trace-style dump of the offending structure.
 */

#ifndef SCIQ_SIM_AUDIT_HH
#define SCIQ_SIM_AUDIT_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace sciq {

class IdealIq;
class OooCore;
class SegmentedIq;

class Auditor
{
  public:
    /**
     * @param panic_on_violation Panic (with a state dump) at the first
     *        violation instead of counting on.
     */
    explicit Auditor(bool panic_on_violation = false);

    Auditor(const Auditor &) = delete;
    Auditor &operator=(const Auditor &) = delete;

    /**
     * Wire this auditor into a core: registers the "audit" stats group
     * as a child of the core's group, enables audit bookkeeping in the
     * IQ, and installs the end-of-cycle hook that runs the checks.
     */
    void attach(OooCore &core);

    /** Run every invariant check against the core's current state. */
    void auditCycle(OooCore &core, Cycle cycle);

    std::uint64_t totalViolations() const { return total_; }

    stats::Group &statGroup() { return group_; }

    // Violation counters, one per audited invariant.
    stats::Scalar cyclesAudited;
    stats::Scalar negativeDelay;      ///< chain member delay below zero
    stats::Scalar segmentOverflow;    ///< occupancy above capacity
    stats::Scalar promotionBound;     ///< promotions above prev-cycle free
    stats::Scalar issueOverWidth;     ///< issued more than issueWidth
    stats::Scalar wireDelivery;       ///< chain-wire signal missed/early
    stats::Scalar poolBound;          ///< DynInstPool live slots leaked
    stats::Scalar occIndex;           ///< O(1) occupancy counter wrong
    stats::Scalar promoIndex;         ///< promotion-candidate index wrong
    stats::Scalar subIndex;           ///< chain subscriber index wrong
    stats::Scalar countdownIndex;     ///< self-timed countdown list wrong
    stats::Scalar readyIndex;         ///< ideal ready list wrong
    stats::Scalar wbRingBound;        ///< writeback ring population wrong

  private:
    void violation(stats::Scalar &counter, const char *invariant,
                   Cycle cycle, const std::string &detail);

    void auditSegmented(SegmentedIq &iq, Cycle cycle);
    void auditIdeal(IdealIq &iq, Cycle cycle);

    bool panicOnViolation_;
    std::uint64_t total_ = 0;
    stats::Group group_;
};

} // namespace sciq

#endif // SCIQ_SIM_AUDIT_HH
