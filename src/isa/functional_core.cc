#include "functional_core.hh"

#include <bit>

#include "common/logging.hh"

namespace sciq {

FunctionalCore::FunctionalCore(const Program &prog, bool bb_cache)
    : program(prog), curPc(prog.entry())
{
    prog.load(mem);
    if (bb_cache)
        bbCache = std::make_unique<BbCache>(program);
}

bool
FunctionalCore::step()
{
    if (isHalted)
        return false;

    const Instruction *inst = program.fetch(curPc);
    SCIQ_ASSERT(inst != nullptr,
                "functional core ran off the program at pc %#llx",
                static_cast<unsigned long long>(curPc));

    ExecResult res = execute(*inst, curPc, *this);
    ++executed;
    prevPc = curPc;
    prevResult = res;
    prevInst = inst;
    if (res.halted) {
        isHalted = true;
        return false;
    }
    curPc = res.nextPc;
    return true;
}

std::uint64_t
FunctionalCore::run(std::uint64_t max_insts)
{
    if (bbCache) {
        return runBlocks(max_insts,
                         [](const BbOp &, Addr, const ExecResult &) {});
    }
    const std::uint64_t start = executed;
    while (!isHalted && executed - start < max_insts)
        step();
    return executed - start;
}

void
FunctionalCore::save(serial::Writer &w) const
{
    for (std::uint64_t reg : regs)
        w.u64(reg);
    w.u64(curPc);
    w.u8(isHalted ? 1 : 0);
    w.u64(executed);
    mem.save(w);
}

void
FunctionalCore::restore(serial::Reader &r)
{
    for (std::uint64_t &reg : regs)
        reg = r.u64();
    curPc = r.u64();
    isHalted = r.u8() != 0;
    executed = r.u64();
    mem.restore(r);
    prevPc = 0;
    prevResult = ExecResult{};
    prevInst = nullptr;
}

double
FunctionalCore::fregAsDouble(unsigned n) const
{
    return std::bit_cast<double>(regs[fpReg(n)]);
}

} // namespace sciq
