/**
 * @file
 * M2: micro-benchmark for this PR's two harness optimisations.
 *
 *  1. DynInst allocation: heap shared_ptr (the old fetch path) vs the
 *     per-core DynInstPool recycler, in a window-churn pattern that
 *     mimics fetch -> squash/commit.
 *  2. Sweep throughput: the same small fig3-style configuration set
 *     run serially (jobs=1) and through the parallel SweepRunner,
 *     reporting the wall-clock speedup.
 *
 * Arguments: quick=1 shrinks the sweep; jobs=N sets the parallel
 * worker count (default hardware concurrency).
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "core/dyn_inst_pool.hh"

using namespace sciq;
using namespace sciq::bench;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Churn a ~window-sized set of in-flight instructions the way the
 * pipeline does: allocate a fetch group, retire the oldest group.
 */
template <typename MakeFn>
double
churn(std::uint64_t total, MakeFn make)
{
    constexpr std::size_t kWindow = 256;
    constexpr std::size_t kGroup = 8;
    using Ptr = decltype(make());
    std::vector<Ptr> window;
    window.reserve(kWindow);
    std::uint64_t made = 0;
    std::size_t retire = 0;
    const auto start = Clock::now();
    while (made < total) {
        for (std::size_t i = 0; i < kGroup && made < total; ++i, ++made) {
            Ptr inst = make();
            inst->seq = static_cast<SeqNum>(made);
            if (window.size() < kWindow) {
                window.push_back(std::move(inst));
            } else {
                window[retire] = std::move(inst);
                retire = (retire + 1) % kWindow;
            }
        }
    }
    window.clear();
    return secondsSince(start);
}

std::vector<SimConfig>
sweepConfigs(BenchArgs &args)
{
    std::vector<SimConfig> cfgs;
    for (const auto &wl : {"swim", "mgrid", "gcc", "twolf"}) {
        for (unsigned size : {32u, 64u, 128u, 256u}) {
            SimConfig cfg = makeSegmentedConfig(size, 128, true, true, wl);
            applyArgs(cfg, args);
            cfgs.push_back(std::move(cfg));
        }
    }
    return cfgs;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, {});

    // ---- Part 1: DynInst allocation/recycle ----------------------------
    const std::uint64_t n = args.quick ? 2'000'000 : 10'000'000;

    const double heap_s =
        churn(n, [] { return std::make_shared<DynInst>(); });

    DynInstPool pool;
    const double pool_s = churn(n, [&pool] { return pool.create(); });

    std::printf("DynInst allocation (%llu insts, 256-entry window "
                "churn)\n",
                static_cast<unsigned long long>(n));
    std::printf("  heap shared_ptr : %8.1f ns/inst\n",
                1e9 * heap_s / static_cast<double>(n));
    std::printf("  DynInstPool     : %8.1f ns/inst  (%.2fx faster, "
                "%llu slots for %llu insts)\n",
                1e9 * pool_s / static_cast<double>(n),
                pool_s > 0 ? heap_s / pool_s : 0.0,
                static_cast<unsigned long long>(pool.slotsAllocated()),
                static_cast<unsigned long long>(n));

    // ---- Part 2: serial vs parallel sweep ------------------------------
    if (args.iters == 0 && !args.quick) {
        // Keep the default run short enough to repeat serially.
        args.iters = 3000;
    }
    std::vector<SimConfig> cfgs = sweepConfigs(args);

    unsigned jobs = args.jobs ? args.jobs
                              : std::thread::hardware_concurrency();
    if (jobs == 0)
        jobs = 1;

    std::printf("\nSweep throughput (%zu configs, fig3-style "
                "segmented set)\n",
                cfgs.size());

    auto start = Clock::now();
    std::vector<RunResult> serial = SweepRunner(1).run(cfgs);
    const double serial_s = secondsSince(start);
    std::printf("  jobs=1          : %8.2f s\n", serial_s);

    start = Clock::now();
    std::vector<RunResult> parallel = SweepRunner(jobs).run(cfgs);
    const double parallel_s = secondsSince(start);
    std::printf("  jobs=%-2u         : %8.2f s  (%.2fx speedup, "
                "%u hw threads)\n",
                jobs, parallel_s,
                parallel_s > 0 ? serial_s / parallel_s : 0.0,
                std::thread::hardware_concurrency());

    // Determinism cross-check while we have both result sets.
    for (std::size_t i = 0; i < serial.size(); ++i) {
        if (serial[i].cycles != parallel[i].cycles ||
            serial[i].insts != parallel[i].insts) {
            std::printf("ERROR: serial/parallel results diverge at "
                        "config %zu\n",
                        i);
            return 1;
        }
    }
    std::printf("  serial and parallel results identical: yes\n");

    args.collected = std::move(parallel);
    finishBench(args);
    return 0;
}
