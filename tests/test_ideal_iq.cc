/** @file Tests for the idealised monolithic instruction queue. */

#include <gtest/gtest.h>

#include "iq/ideal_iq.hh"
#include "iq_harness.hh"

using namespace sciq;
using namespace sciq::test;

namespace {

struct IdealFixture : public ::testing::Test
{
    IdealFixture() : scoreboard(128), fu(), rec(scoreboard)
    {
        params.numEntries = 8;
        params.issueWidth = 4;
    }

    IqParams params;
    Scoreboard scoreboard;
    FuPool fu;
    IssueRecorder rec;
};

} // namespace

TEST_F(IdealFixture, CapacityGatesInsertion)
{
    IdealIq iq(params, scoreboard, fu);
    for (SeqNum s = 1; s <= 8; ++s) {
        auto inst = makeInst(s, Opcode::NOP);
        ASSERT_TRUE(iq.canInsert(inst));
        iq.insert(inst, 0);
    }
    auto extra = makeInst(9, Opcode::NOP);
    EXPECT_FALSE(iq.canInsert(extra));
    EXPECT_EQ(iq.occupancy(), 8u);
}

TEST_F(IdealFixture, OnlyReadyInstructionsIssue)
{
    IdealIq iq(params, scoreboard, fu);
    auto ready = makeInst(1, Opcode::ADD, intReg(3), intReg(1), intReg(2));
    auto unready = makeInst(2, Opcode::ADD, intReg(5), intReg(4), intReg(2));
    scoreboard.setReady(intReg(1));
    scoreboard.setReady(intReg(2));
    scoreboard.clearReady(intReg(4));
    iq.insert(ready, 0);
    iq.insert(unready, 0);

    iq.issueSelect(1, rec.acceptAll());
    ASSERT_EQ(rec.issued.size(), 1u);
    EXPECT_EQ(rec.issued[0]->seq, 1u);
    EXPECT_EQ(iq.occupancy(), 1u);

    // The owner must report newly-ready registers to the queue, as the
    // core does after every Scoreboard::setReady (DESIGN.md section 11).
    scoreboard.setReady(intReg(4));
    iq.onRegReady(intReg(4));
    iq.issueSelect(2, rec.acceptAll());
    EXPECT_EQ(rec.issued.size(), 2u);
    EXPECT_EQ(iq.occupancy(), 0u);
}

TEST_F(IdealFixture, OldestFirstWithinWidth)
{
    IdealIq iq(params, scoreboard, fu);
    for (SeqNum s = 1; s <= 6; ++s)
        iq.insert(makeInst(s, Opcode::NOP), 0);
    iq.issueSelect(1, rec.acceptAll());
    ASSERT_EQ(rec.issued.size(), 4u);  // issueWidth
    for (SeqNum s = 1; s <= 4; ++s)
        EXPECT_EQ(rec.issued[s - 1]->seq, s);
}

TEST_F(IdealFixture, RejectedInstructionsStayQueued)
{
    IdealIq iq(params, scoreboard, fu);
    iq.insert(makeInst(1, Opcode::NOP), 0);
    iq.issueSelect(1, rec.rejectAll());
    EXPECT_EQ(iq.occupancy(), 1u);
    iq.issueSelect(2, rec.acceptAll());
    EXPECT_EQ(iq.occupancy(), 0u);
}

TEST_F(IdealFixture, FuRejectDoesNotBlockOthers)
{
    IdealIq iq(params, scoreboard, fu);
    auto a = makeInst(1, Opcode::NOP);
    auto b = makeInst(2, Opcode::NOP);
    iq.insert(a, 0);
    iq.insert(b, 0);
    // Reject only the first instruction.
    iq.issueSelect(1, [&](const DynInstPtr &inst) {
        return inst->seq != 1;
    });
    EXPECT_EQ(iq.occupancy(), 1u);
    EXPECT_FALSE(a->issued);
}

TEST_F(IdealFixture, SquashRemovesYounger)
{
    IdealIq iq(params, scoreboard, fu);
    for (SeqNum s = 1; s <= 6; ++s)
        iq.insert(makeInst(s, Opcode::NOP), 0);
    iq.squash(3);
    EXPECT_EQ(iq.occupancy(), 3u);
    iq.issueSelect(1, rec.acceptAll());
    for (const auto &inst : rec.issued)
        EXPECT_LE(inst->seq, 3u);
}

TEST_F(IdealFixture, StoreDataDoesNotGateIssue)
{
    // A store's address generation waits only on the base register.
    IdealIq iq(params, scoreboard, fu);
    auto st = makeInst(1, Opcode::ST, kInvalidReg, intReg(1), intReg(9));
    scoreboard.setReady(intReg(1));
    scoreboard.clearReady(intReg(9));  // data not ready
    iq.insert(st, 0);
    iq.issueSelect(1, rec.acceptAll());
    ASSERT_EQ(rec.issued.size(), 1u);
}

TEST_F(IdealFixture, StatsTrackInsertsAndIssues)
{
    IdealIq iq(params, scoreboard, fu);
    iq.insert(makeInst(1, Opcode::NOP), 0);
    iq.insert(makeInst(2, Opcode::NOP), 0);
    iq.issueSelect(1, rec.acceptAll());
    EXPECT_EQ(iq.instsInserted.value(), 2.0);
    EXPECT_EQ(iq.instsIssued.value(), 2.0);
}
