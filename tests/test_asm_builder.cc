/** @file Tests for the fluent label-resolving program builder. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/asm_builder.hh"
#include "isa/exec.hh"
#include "isa/functional_core.hh"

using namespace sciq;

TEST(AsmBuilder, ForwardAndBackwardLabels)
{
    AsmBuilder b;
    b.label("start");
    b.addi(intReg(1), intReg(0), 3);
    b.label("loop");
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), intReg(0), "loop");
    b.beq(intReg(0), intReg(0), "end");
    b.addi(intReg(2), intReg(0), 99);  // skipped
    b.label("end");
    b.halt();
    Program p = b.build();

    // bne at index 2 targets index 1: offset -1.
    EXPECT_EQ(p.instructions()[2].imm, -1);
    // beq at index 3 targets index 5: offset +2.
    EXPECT_EQ(p.instructions()[3].imm, 2);
}

TEST(AsmBuilder, UndefinedLabelPanics)
{
    AsmBuilder b;
    b.j("nowhere");
    EXPECT_THROW(b.build(), PanicError);
}

TEST(AsmBuilder, DuplicateLabelPanics)
{
    AsmBuilder b;
    b.label("x");
    b.nop();
    EXPECT_THROW(b.label("x"), PanicError);
}

class LiValues : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(LiValues, LoadsArbitraryConstants)
{
    const std::int64_t value = GetParam();
    AsmBuilder b;
    b.li(intReg(5), value);
    b.halt();
    Program p = b.build();
    FunctionalCore core(p);
    core.run();
    EXPECT_EQ(core.reg(intReg(5)), static_cast<std::uint64_t>(value))
        << "value " << value << " program size " << p.size();
}

INSTANTIATE_TEST_SUITE_P(
    Constants, LiValues,
    ::testing::Values(0LL, 1LL, -1LL, 42LL, -8192LL, 8191LL, 8192LL,
                      -8193LL, 0x10000LL, 0xDEADBEEFLL, -0xDEADBEEFLL,
                      0x0102030405060708LL, -0x0102030405060708LL,
                      std::numeric_limits<std::int64_t>::max(),
                      std::numeric_limits<std::int64_t>::min()));

TEST(AsmBuilder, LiSmallValuesAreOneInstruction)
{
    AsmBuilder b;
    b.li(intReg(1), 100);
    EXPECT_EQ(b.here(), 1u);
    AsmBuilder b2;
    b2.li(intReg(1), 100000);
    EXPECT_GT(b2.here(), 1u);
}

TEST(AsmBuilder, LaMatchesAddress)
{
    AsmBuilder b;
    b.la(intReg(3), 0x12345678);
    b.halt();
    FunctionalCore core(b.build());
    core.run();
    EXPECT_EQ(core.reg(intReg(3)), 0x12345678u);
}

TEST(AsmBuilder, DataBlobsLoaded)
{
    AsmBuilder b;
    b.doubles(0x40000, {1.5, -2.25});
    b.words(0x50000, {7, 8});
    b.halt();
    Program p = b.build();
    SparseMemory mem;
    p.load(mem);
    EXPECT_DOUBLE_EQ(mem.readDouble(0x40000), 1.5);
    EXPECT_DOUBLE_EQ(mem.readDouble(0x40008), -2.25);
    EXPECT_EQ(mem.read(0x50000, 8), 7u);
    EXPECT_EQ(mem.read(0x50008, 8), 8u);
}

TEST(AsmBuilder, ProgramFetchByPc)
{
    AsmBuilder b(0x2000);
    b.nop();
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.base(), 0x2000u);
    ASSERT_NE(p.fetch(0x2000), nullptr);
    EXPECT_EQ(p.fetch(0x2000)->op, Opcode::NOP);
    EXPECT_EQ(p.fetch(0x2004)->op, Opcode::HALT);
    EXPECT_EQ(p.fetch(0x2008), nullptr);
    EXPECT_EQ(p.fetch(0x2002), nullptr);  // misaligned
    EXPECT_EQ(p.fetch(0x1ffc), nullptr);  // below base
}

TEST(AsmBuilder, MovIsAddiZero)
{
    AsmBuilder b;
    b.mov(intReg(2), intReg(1));
    Program p = b.build();
    EXPECT_EQ(p.instructions()[0].op, Opcode::ADDI);
    EXPECT_EQ(p.instructions()[0].imm, 0);
}

TEST(AsmBuilder, UnencodableImmediatePanicsAtBuild)
{
    AsmBuilder b;
    b.addi(intReg(1), intReg(0), 1 << 20);
    EXPECT_THROW(b.build(), PanicError);
}
