/** @file Tests for the pipeline trace / pipeview facility. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/ooo_core.hh"
#include "isa/assembler.hh"
#include "sim/pipe_trace.hh"

using namespace sciq;

namespace {

CoreParams
tinyCore()
{
    CoreParams p;
    p.iqKind = IqKind::Ideal;
    p.iq.numEntries = 32;
    return p;
}

} // namespace

TEST(PipeTrace, RecordsEveryCommittedInstruction)
{
    Program prog = assemble(R"(
        addi r1, r0, 3
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )");
    OooCore core(prog, tinyCore());
    PipeTrace trace;
    core.setObserver(&trace);
    core.run(~0ULL, 10000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(trace.records().size(), core.committedCount());

    // Records are in commit (program) order with monotone cycles.
    for (std::size_t i = 1; i < trace.records().size(); ++i) {
        EXPECT_GT(trace.records()[i].seq, trace.records()[i - 1].seq);
        EXPECT_GE(trace.records()[i].commit,
                  trace.records()[i - 1].commit);
    }
    for (const auto &r : trace.records()) {
        EXPECT_LE(r.fetch, r.commit);
        EXPECT_FALSE(r.squashed);
        if (r.issue) {
            EXPECT_LE(r.issue, r.complete);
        }
    }
}

TEST(PipeTrace, SquashedInstructionsOptIn)
{
    // An unpredictable branch guarantees wrong-path squashes.
    Program prog = assemble(R"(
        addi r1, r0, 300
        addi r5, r0, 77
    loop:
        mul r5, r5, r5
        addi r5, r5, 13
        srli r6, r5, 17
        andi r6, r6, 1
        beq r6, r0, skip
        addi r2, r2, 1
    skip:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )");
    {
        OooCore core(prog, tinyCore());
        PipeTrace trace;
        core.setObserver(&trace);
        core.run(~0ULL, 100000);
        for (const auto &r : trace.records())
            EXPECT_FALSE(r.squashed);
    }
    {
        OooCore core(prog, tinyCore());
        PipeTrace trace;
        trace.traceSquashed = true;
        core.setObserver(&trace);
        core.run(~0ULL, 100000);
        bool saw_squashed = false;
        for (const auto &r : trace.records())
            saw_squashed |= r.squashed;
        EXPECT_TRUE(saw_squashed);
    }
}

TEST(PipeTrace, CapacityBoundsMemory)
{
    Program prog = assemble(R"(
        addi r1, r0, 2000
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )");
    OooCore core(prog, tinyCore());
    PipeTrace trace(64);
    core.setObserver(&trace);
    core.run(~0ULL, 100000);
    EXPECT_LE(trace.records().size(), 64u);
    // The kept records are the most recent ones.
    EXPECT_EQ(trace.records().back().text, "halt");
}

TEST(PipeTrace, RenderProducesTimeline)
{
    Program prog = assemble("addi r1, r0, 5\nadd r2, r1, r1\nhalt\n");
    OooCore core(prog, tinyCore());
    PipeTrace trace;
    core.setObserver(&trace);
    core.run(~0ULL, 10000);

    std::ostringstream os;
    trace.render(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("addi r1, r0, 5"), std::string::npos);
    EXPECT_NE(out.find("halt"), std::string::npos);
    EXPECT_NE(out.find('f'), std::string::npos);
    EXPECT_NE(out.find('C'), std::string::npos);

    std::ostringstream empty;
    PipeTrace t2;
    t2.render(empty);
    EXPECT_NE(empty.str().find("no trace records"), std::string::npos);
}
