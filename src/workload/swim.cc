/**
 * @file
 * swim-like kernel: shallow-water-style streaming update.
 *
 * Three source arrays and one destination stream sequentially with a
 * combined footprint well beyond the 1 MB L2, so nearly every line
 * misses to memory and consecutive accesses to the same line are
 * *delayed hits* - the paper reports >90% of swim's loads missing in
 * the L1 with most being delayed hits.  Iterations are independent, so
 * a large window exposes massive memory-level parallelism.
 */

#include "workload/kernel_util.hh"
#include "workload/workloads.hh"

namespace sciq {

using namespace kernel;

Program
buildSwim(const WorkloadParams &params)
{
    const std::uint64_t n = scaled(40960, params.scale);  // per array
    std::uint64_t iters = params.iterations ? params.iterations : n / 4;
    if (iters > n / 4)
        iters = n / 4;

    const Addr u_base = dataBase(0);
    const Addr v_base = dataBase(1);
    const Addr p_base = dataBase(2);
    const Addr out_base = dataBase(3);

    AsmBuilder b;
    b.doubles(u_base, randomDoubles(n, params.seed));
    b.doubles(v_base, randomDoubles(n, params.seed + 1));
    b.doubles(p_base, randomDoubles(n, params.seed + 2));
    b.doubles(0x9000, {0.5, 0.25});

    const RegIndex p_u = intReg(11), p_v = intReg(12), p_p = intReg(13);
    const RegIndex p_out = intReg(14), count = intReg(15);
    const RegIndex tmp = intReg(16);
    const RegIndex c1 = fpReg(1), c2 = fpReg(2);
    const RegIndex acc = fpReg(4);

    b.la(p_u, u_base).la(p_v, v_base).la(p_p, p_base).la(p_out, out_base);
    b.li(count, static_cast<std::int64_t>(iters));
    b.li(tmp, 0x9000);
    b.fld(c1, tmp, 0).fld(c2, tmp, 8);
    b.fsub(acc, acc, acc);  // acc = 0

    b.label("loop");
    // Four independent lanes per iteration (unrolled).
    for (unsigned lane = 0; lane < 4; ++lane) {
        const RegIndex fu = fpReg(8 + lane);
        const RegIndex fv = fpReg(12 + lane);
        const RegIndex fp = fpReg(16 + lane);
        const std::int64_t off = 8 * lane;
        b.fld(fu, p_u, off);
        b.fld(fv, p_v, off);
        b.fld(fp, p_p, off);
        b.fmul(fu, fu, c1);     // u*c1
        b.fmul(fv, fv, c2);     // v*c2
        b.fadd(fu, fu, fv);     // u*c1 + v*c2
        b.fadd(fu, fu, fp);     // + p
        b.fst(fu, p_out, off);
    }
    b.fadd(acc, acc, fpReg(8));  // one accumulator tap per iteration
    b.addi(p_u, p_u, 32);
    b.addi(p_v, p_v, 32);
    b.addi(p_p, p_p, 32);
    b.addi(p_out, p_out, 32);
    b.addi(count, count, -1);
    b.bne(count, intReg(0), "loop");

    epilogueFp(b, acc);
    return b.build("swim");
}

} // namespace sciq
