/**
 * @file
 * Fluent, label-resolving program builder — the "assembler API" used by
 * the synthetic workload kernels, tests and examples.
 *
 * Branch/jump targets may be given as label strings; `build()` resolves
 * them to relative instruction offsets and panics on undefined labels.
 */

#ifndef SCIQ_ISA_ASM_BUILDER_HH
#define SCIQ_ISA_ASM_BUILDER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace sciq {

class AsmBuilder
{
  public:
    explicit AsmBuilder(Addr base = Program::kDefaultBase) : baseAddr(base)
    {
    }

    /** Define a label at the current position. */
    AsmBuilder &label(const std::string &name);

    /** Append a raw instruction. */
    AsmBuilder &emit(const Instruction &inst);

    // --- Integer ALU -----------------------------------------------------
    AsmBuilder &add(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &sub(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &and_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &or_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &xor_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &sll(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &srl(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &sra(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &slt(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &sltu(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &addi(RegIndex rd, RegIndex rs1, std::int64_t imm);
    AsmBuilder &andi(RegIndex rd, RegIndex rs1, std::int64_t imm);
    AsmBuilder &ori(RegIndex rd, RegIndex rs1, std::int64_t imm);
    AsmBuilder &xori(RegIndex rd, RegIndex rs1, std::int64_t imm);
    AsmBuilder &slti(RegIndex rd, RegIndex rs1, std::int64_t imm);
    AsmBuilder &slli(RegIndex rd, RegIndex rs1, std::int64_t imm);
    AsmBuilder &srli(RegIndex rd, RegIndex rs1, std::int64_t imm);
    AsmBuilder &srai(RegIndex rd, RegIndex rs1, std::int64_t imm);

    // --- Integer mul/div --------------------------------------------------
    AsmBuilder &mul(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &mulh(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &div(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &rem(RegIndex rd, RegIndex rs1, RegIndex rs2);

    // --- Floating point ---------------------------------------------------
    AsmBuilder &fadd(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &fsub(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &fmul(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &fdiv(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &fsqrt(RegIndex rd, RegIndex rs1);
    AsmBuilder &fmin(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &fmax(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &fneg(RegIndex rd, RegIndex rs1);
    AsmBuilder &fabs_(RegIndex rd, RegIndex rs1);
    AsmBuilder &fmov(RegIndex rd, RegIndex rs1);
    AsmBuilder &fcmpeq(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &fcmplt(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &fcmple(RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &fcvtif(RegIndex fd, RegIndex rs1);
    AsmBuilder &fcvtfi(RegIndex rd, RegIndex fs1);

    // --- Memory -----------------------------------------------------------
    AsmBuilder &ld(RegIndex rd, RegIndex base, std::int64_t off = 0);
    AsmBuilder &lw(RegIndex rd, RegIndex base, std::int64_t off = 0);
    AsmBuilder &fld(RegIndex fd, RegIndex base, std::int64_t off = 0);
    AsmBuilder &st(RegIndex rs2, RegIndex base, std::int64_t off = 0);
    AsmBuilder &sw(RegIndex rs2, RegIndex base, std::int64_t off = 0);
    AsmBuilder &fst(RegIndex fs2, RegIndex base, std::int64_t off = 0);

    // --- Control (label targets) -------------------------------------------
    AsmBuilder &beq(RegIndex rs1, RegIndex rs2, const std::string &target);
    AsmBuilder &bne(RegIndex rs1, RegIndex rs2, const std::string &target);
    AsmBuilder &blt(RegIndex rs1, RegIndex rs2, const std::string &target);
    AsmBuilder &bge(RegIndex rs1, RegIndex rs2, const std::string &target);
    AsmBuilder &bltu(RegIndex rs1, RegIndex rs2, const std::string &target);
    AsmBuilder &bgeu(RegIndex rs1, RegIndex rs2, const std::string &target);
    AsmBuilder &j(const std::string &target);
    AsmBuilder &jal(RegIndex rd, const std::string &target);
    AsmBuilder &jr(RegIndex rs1);
    AsmBuilder &jalr(RegIndex rd, RegIndex rs1);

    // --- Misc / pseudo-instructions ----------------------------------------
    AsmBuilder &nop();
    AsmBuilder &halt();
    /** mov rd, rs  (ADDI rd, rs, 0). */
    AsmBuilder &mov(RegIndex rd, RegIndex rs1);
    /** Load an arbitrary 64-bit constant (expands to 1..6 instructions). */
    AsmBuilder &li(RegIndex rd, std::int64_t value);
    /** Load an address constant (alias for li). */
    AsmBuilder &la(RegIndex rd, Addr addr) {
        return li(rd, static_cast<std::int64_t>(addr));
    }

    /** Attach an initialised-data blob. */
    AsmBuilder &data(Addr addr, std::vector<std::uint8_t> bytes);
    AsmBuilder &doubles(Addr addr, const std::vector<double> &values);
    AsmBuilder &words(Addr addr, const std::vector<std::uint64_t> &values);

    /** Index of the next instruction to be emitted. */
    std::size_t here() const { return insts.size(); }

    /** Resolve labels and return the finished program. */
    Program build(const std::string &name = "program");

  private:
    AsmBuilder &emitR(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2);
    AsmBuilder &emitI(Opcode op, RegIndex rd, RegIndex rs1,
                      std::int64_t imm);
    AsmBuilder &emitBranch(Opcode op, RegIndex rs1, RegIndex rs2,
                           const std::string &target);

    struct Fixup
    {
        std::size_t instIndex;
        std::string label;
    };

    struct Blob
    {
        Addr addr;
        std::vector<std::uint8_t> bytes;
    };

    Addr baseAddr;
    std::vector<Instruction> insts;
    std::vector<Blob> blobs;
    std::map<std::string, std::size_t> labels;
    std::vector<Fixup> fixups;
};

} // namespace sciq

#endif // SCIQ_ISA_ASM_BUILDER_HH
