#include "worker_proto.hh"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/errors.hh"
#include "common/json.hh"
#include "sim/journal.hh"

namespace sciq {

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::Hello: return "hello";
      case MsgType::Welcome: return "welcome";
      case MsgType::Reject: return "reject";
      case MsgType::LeaseReq: return "lease_req";
      case MsgType::Lease: return "lease";
      case MsgType::Wait: return "wait";
      case MsgType::Drain: return "drain";
      case MsgType::Result: return "result";
      case MsgType::ResultAck: return "result_ack";
      case MsgType::Ping: return "ping";
      case MsgType::Pong: return "pong";
    }
    return "?";
}

std::string
encodeMessage(const Message &msg)
{
    std::ostringstream os;
    os << "{\"type\":\"" << msgTypeName(msg.type) << "\"";
    switch (msg.type) {
      case MsgType::Hello:
        os << ",\"proto\":" << msg.proto << ",\"worker\":";
        json::writeString(os, msg.worker);
        break;
      case MsgType::Welcome:
        os << ",\"proto\":" << msg.proto << ",\"shard\":" << msg.shard
           << ",\"shards\":" << msg.shards << ",\"jobs\":" << msg.jobs
           << ",\"lease_ms\":" << msg.leaseMs
           << ",\"heartbeat_ms\":" << msg.heartbeatMs;
        break;
      case MsgType::Reject:
        os << ",\"reason\":";
        json::writeString(os, msg.reason);
        break;
      case MsgType::LeaseReq:
      case MsgType::Drain:
        break;
      case MsgType::Wait:
        os << ",\"ms\":" << msg.waitMs;
        break;
      case MsgType::Lease:
        os << ",\"index\":" << msg.index << ",\"key\":";
        json::writeString(os, msg.key);
        os << ",\"spec\":";
        json::writeString(os, msg.spec);
        break;
      case MsgType::Result:
        os << ",\"index\":" << msg.index << ",\"key\":";
        json::writeString(os, msg.key);
        os << ",\"result\":";
        writeResultCompactJson(os, msg.result);
        break;
      case MsgType::ResultAck:
        os << ",\"index\":" << msg.index;
        break;
      case MsgType::Ping:
      case MsgType::Pong:
        os << ",\"seq\":" << msg.seq;
        break;
    }
    os << "}";
    return os.str();
}

namespace {

// Checked narrowing for wire-supplied numbers: a hostile or corrupt
// frame must decode to `false`, never hit the UB of an out-of-range
// double-to-integer cast.

std::uint64_t
wireU64(const json::Value &v)
{
    const double d = v.asNumber();
    if (!(d >= 0.0) || d > 9007199254740992.0 /* 2^53 */ ||
        d != std::floor(d)) {
        throw std::range_error("wire number out of range");
    }
    return static_cast<std::uint64_t>(d);
}

unsigned
wireU32(const json::Value &v)
{
    const std::uint64_t u = wireU64(v);
    if (u > 0xffffffffull)
        throw std::range_error("wire number out of range");
    return static_cast<unsigned>(u);
}

int
wireI32(const json::Value &v)
{
    const double d = v.asNumber();
    if (!(d >= -2147483648.0) || d > 2147483647.0 || d != std::floor(d))
        throw std::range_error("wire number out of range");
    return static_cast<int>(d);
}

} // namespace

bool
decodeMessage(const std::string &line, Message &out)
{
    try {
        const json::Value v = json::parse(line);
        const std::string type = v.at("type").asString();
        if (type == "hello") {
            out.type = MsgType::Hello;
            out.proto = wireU32(v.at("proto"));
            out.worker = v.at("worker").asString();
        } else if (type == "welcome") {
            out.type = MsgType::Welcome;
            out.proto = wireU32(v.at("proto"));
            out.shard = wireI32(v.at("shard"));
            out.shards = wireU32(v.at("shards"));
            out.jobs = static_cast<std::size_t>(wireU64(v.at("jobs")));
            out.leaseMs = wireU32(v.at("lease_ms"));
            out.heartbeatMs = v.contains("heartbeat_ms")
                                  ? wireU32(v.at("heartbeat_ms"))
                                  : 0;
        } else if (type == "reject") {
            out.type = MsgType::Reject;
            out.reason = v.at("reason").asString();
        } else if (type == "lease_req") {
            out.type = MsgType::LeaseReq;
        } else if (type == "lease") {
            out.type = MsgType::Lease;
            out.index = static_cast<std::size_t>(wireU64(v.at("index")));
            out.key = v.at("key").asString();
            out.spec = v.at("spec").asString();
        } else if (type == "wait") {
            out.type = MsgType::Wait;
            out.waitMs = wireU32(v.at("ms"));
        } else if (type == "drain") {
            out.type = MsgType::Drain;
        } else if (type == "result") {
            out.type = MsgType::Result;
            out.index = static_cast<std::size_t>(wireU64(v.at("index")));
            out.key = v.at("key").asString();
            // Type confusion guard: resultFromJson tolerates missing
            // fields, so a non-object payload would otherwise decode
            // as an all-default (and journal-able) result.
            if (!v.at("result").isObject())
                return false;
            out.result = resultFromJson(v.at("result"));
        } else if (type == "result_ack") {
            out.type = MsgType::ResultAck;
            out.index = static_cast<std::size_t>(wireU64(v.at("index")));
        } else if (type == "ping" || type == "pong") {
            out.type = type == "ping" ? MsgType::Ping : MsgType::Pong;
            out.seq = v.contains("seq") ? wireU64(v.at("seq")) : 0;
        } else {
            return false;
        }
        return true;
    } catch (const std::exception &) {
        // Torn/truncated line or wrong field shape: not a message.
        return false;
    }
}

// ---------------------------------------------------------------------
// Endpoints

std::string
Endpoint::str() const
{
    if (kind == Kind::Unix)
        return path;
    return host + ":" + std::to_string(port);
}

Endpoint
tcpEndpoint(const std::string &host_port)
{
    const auto complain = [&](const std::string &why) -> ConfigError {
        return ConfigError("bad TCP endpoint '" + host_port + "': " +
                           why + " (want host:port, e.g. "
                           "127.0.0.1:7070 or [::1]:7070)");
    };

    Endpoint ep;
    ep.kind = Endpoint::Kind::Tcp;
    std::string portStr;
    if (!host_port.empty() && host_port[0] == '[') {
        // Bracketed IPv6 literal: [addr]:port.
        const std::size_t close = host_port.find(']');
        if (close == std::string::npos ||
            close + 1 >= host_port.size() ||
            host_port[close + 1] != ':') {
            throw complain("unterminated [ipv6] address");
        }
        ep.host = host_port.substr(1, close - 1);
        portStr = host_port.substr(close + 2);
    } else {
        const std::size_t colon = host_port.rfind(':');
        if (colon == std::string::npos)
            throw complain("missing ':port'");
        if (host_port.find(':') != colon) {
            throw complain(
                "raw IPv6 addresses need brackets: [addr]:port");
        }
        ep.host = host_port.substr(0, colon);
        portStr = host_port.substr(colon + 1);
    }
    if (ep.host.empty())
        throw complain("empty host");
    if (portStr.empty() ||
        portStr.find_first_not_of("0123456789") != std::string::npos) {
        throw complain("port '" + portStr + "' is not a number");
    }
    unsigned long port = 0;
    try {
        port = std::stoul(portStr);
    } catch (const std::exception &) {
        throw complain("port '" + portStr + "' is not a number");
    }
    if (port > 65535)
        throw complain("port " + portStr + " out of range (0-65535)");
    ep.port = static_cast<unsigned>(port);
    return ep;
}

Endpoint
unixEndpoint(const std::string &path)
{
    Endpoint ep;
    ep.kind = Endpoint::Kind::Unix;
    ep.path = path;
    return ep;
}

Endpoint
parseEndpoint(const std::string &spec)
{
    if (spec.find('/') != std::string::npos)
        return unixEndpoint(spec);
    if (spec.find(':') != std::string::npos)
        return tcpEndpoint(spec);
    return unixEndpoint(spec);
}

namespace {

sockaddr_un
unixAddr(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw ResourceError("socket path too long for AF_UNIX: '" +
                            path + "'");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

void
setNoDelay(int fd)
{
    // One small JSON line per message: without TCP_NODELAY the lease
    // round-trip serializes on Nagle coalescing.  Fails harmlessly on
    // AF_UNIX sockets.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/** getaddrinfo with RAII free; throws ResourceError on failure. */
struct AddrList
{
    addrinfo *head = nullptr;

    AddrList(const Endpoint &ep, bool passive)
    {
        addrinfo hints{};
        hints.ai_family = AF_UNSPEC;
        hints.ai_socktype = SOCK_STREAM;
        hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
        const std::string service = std::to_string(ep.port);
        const int rc = ::getaddrinfo(ep.host.c_str(), service.c_str(),
                                     &hints, &head);
        if (rc != 0) {
            throw ResourceError("cannot resolve '" + ep.str() +
                                "': " + gai_strerror(rc));
        }
    }
    ~AddrList() { if (head) ::freeaddrinfo(head); }
    AddrList(const AddrList &) = delete;
    AddrList &operator=(const AddrList &) = delete;
};

int
listenTcp(const Endpoint &ep)
{
    const AddrList addrs(ep, /*passive=*/true);
    std::string lastErr = "no usable address";
    for (addrinfo *ai = addrs.head; ai; ai = ai->ai_next) {
        const int fd =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            lastErr = strerror(errno);
            continue;
        }
        // A restarted coordinator must rebind the same endpoint
        // immediately; without SO_REUSEADDR, lingering connections
        // from the crashed instance block the bind for minutes.
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 64) == 0) {
            return fd;
        }
        lastErr = strerror(errno);
        ::close(fd);
    }
    throw ResourceError("cannot listen on '" + ep.str() + "': " +
                        lastErr);
}

int
connectTcpOnce(const Endpoint &ep, std::string &err)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_NUMERICSERV;
    addrinfo *head = nullptr;
    const std::string service = std::to_string(ep.port);
    const int rc =
        ::getaddrinfo(ep.host.c_str(), service.c_str(), &hints, &head);
    if (rc != 0) {
        err = gai_strerror(rc);
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = head; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            err = strerror(errno);
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            setNoDelay(fd);
            break;
        }
        err = strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(head);
    return fd;
}

} // namespace

int
listenEndpoint(const Endpoint &ep)
{
    if (ep.kind == Endpoint::Kind::Tcp)
        return listenTcp(ep);

    const sockaddr_un addr = unixAddr(ep.path);
    ::unlink(ep.path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw ResourceError("socket(): " + std::string(strerror(errno)));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        const std::string msg = strerror(errno);
        ::close(fd);
        throw ResourceError("cannot listen on '" + ep.path + "': " + msg);
    }
    return fd;
}

int
acceptConn(int listen_fd)
{
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0)
        setNoDelay(fd);
    return fd < 0 ? -1 : fd;
}

int
connectEndpoint(const Endpoint &ep, unsigned timeout_ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    std::string err = "timeout";
    for (;;) {
        if (ep.kind == Endpoint::Kind::Tcp) {
            if (ep.port == 0) {
                throw ResourceError("cannot connect to '" + ep.str() +
                                    "': port 0 is listen-only");
            }
            const int fd = connectTcpOnce(ep, err);
            if (fd >= 0)
                return fd;
        } else {
            const sockaddr_un addr = unixAddr(ep.path);
            const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd < 0) {
                throw ResourceError("socket(): " +
                                    std::string(strerror(errno)));
            }
            if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                          sizeof(addr)) == 0) {
                return fd;
            }
            err = strerror(errno);
            ::close(fd);
        }
        // The coordinator may still be binding its socket — or
        // restarting after a crash; retry until the connect deadline
        // instead of failing on startup races.
        if (std::chrono::steady_clock::now() >= deadline) {
            throw ResourceError("cannot connect to coordinator at '" +
                                ep.str() + "': " + err);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

unsigned
boundPort(int fd)
{
    sockaddr_storage ss{};
    socklen_t len = sizeof(ss);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&ss), &len) != 0)
        return 0;
    if (ss.ss_family == AF_INET) {
        return ntohs(reinterpret_cast<const sockaddr_in &>(ss).sin_port);
    }
    if (ss.ss_family == AF_INET6) {
        return ntohs(
            reinterpret_cast<const sockaddr_in6 &>(ss).sin6_port);
    }
    return 0;
}

int
listenUnix(const std::string &path)
{
    return listenEndpoint(unixEndpoint(path));
}

int
acceptUnix(int listen_fd)
{
    return acceptConn(listen_fd);
}

int
connectUnix(const std::string &path, unsigned timeout_ms)
{
    return connectEndpoint(unixEndpoint(path), timeout_ms);
}

// ---------------------------------------------------------------------
// LineChannel

LineChannel::~LineChannel() { close(); }

LineChannel::LineChannel(LineChannel &&other) noexcept
    : fd_(other.fd_), dead_(other.dead_), overflow_(other.overflow_),
      buf_(std::move(other.buf_)), obuf_(std::move(other.obuf_)),
      maxLine_(other.maxLine_), maxPending_(other.maxPending_),
      lastRecv_(other.lastRecv_)
{
    other.fd_ = -1;
}

LineChannel &
LineChannel::operator=(LineChannel &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        dead_ = other.dead_;
        overflow_ = other.overflow_;
        buf_ = std::move(other.buf_);
        obuf_ = std::move(other.obuf_);
        maxLine_ = other.maxLine_;
        maxPending_ = other.maxPending_;
        lastRecv_ = other.lastRecv_;
        other.fd_ = -1;
    }
    return *this;
}

void
LineChannel::close()
{
    // Serialized against concurrent sends (pinger thread): a send must
    // never race the close into a recycled fd number.
    std::lock_guard<std::mutex> lock(sendMu_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

unsigned
LineChannel::msSinceRecv() const
{
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - lastRecv_);
    return ms.count() < 0 ? 0 : static_cast<unsigned>(ms.count());
}

bool
LineChannel::takeIn(const char *data, std::size_t n)
{
    lastRecv_ = Clock::now();
    const bool chunkHasNewline = std::memchr(data, '\n', n) != nullptr;
    buf_.append(data, n);
    // The cap bounds a single line: if even the newest chunk brought
    // no terminator and the buffer is past the cap, the peer is
    // feeding one unbounded line — stop buffering and flag it.
    if (!chunkHasNewline && buf_.size() > maxLine_ &&
        buf_.find('\n', buf_.size() - n > maxLine_
                            ? buf_.size() - n
                            : 0) == std::string::npos) {
        overflow_ = true;
        dead_ = true;
        return false;
    }
    return true;
}

bool
LineChannel::sendLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(sendMu_);
    if (fd_ < 0 || dead_)
        return false;
    std::string framed = line;
    framed.push_back('\n');
    // Drain any queued bytes first so blocking and queued sends on the
    // same channel never interleave mid-line.
    std::string all = std::move(obuf_);
    obuf_.clear();
    all += framed;
    std::size_t off = 0;
    while (off < all.size()) {
        const ssize_t n = ::send(fd_, all.data() + off, all.size() - off,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            dead_ = true;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
LineChannel::queueLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(sendMu_);
    if (fd_ < 0 || dead_)
        return false;
    obuf_ += line;
    obuf_.push_back('\n');
    if (obuf_.size() > maxPending_) {
        // The peer stopped reading: treat it as wedged rather than
        // buffering without bound.
        dead_ = true;
        return false;
    }
    // Opportunistic non-blocking drain.
    while (!obuf_.empty()) {
        const ssize_t n = ::send(fd_, obuf_.data(), obuf_.size(),
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            dead_ = true;
            return false;
        }
        obuf_.erase(0, static_cast<std::size_t>(n));
    }
    return true;
}

bool
LineChannel::flushQueued()
{
    std::lock_guard<std::mutex> lock(sendMu_);
    if (fd_ < 0 || dead_)
        return obuf_.empty();
    while (!obuf_.empty()) {
        const ssize_t n = ::send(fd_, obuf_.data(), obuf_.size(),
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
            dead_ = true;
            return false;
        }
        obuf_.erase(0, static_cast<std::size_t>(n));
    }
    return true;
}

bool
LineChannel::pump()
{
    if (fd_ < 0 || dead_)
        return false;
    char chunk[4096];
    for (;;) {
        const ssize_t n =
            ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
        if (n > 0) {
            if (!takeIn(chunk, static_cast<std::size_t>(n)))
                return false;
            continue;
        }
        if (n == 0) {
            dead_ = true;
            return false;  // orderly EOF: peer is gone
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;  // drained everything currently available
        dead_ = true;
        return false;
    }
}

bool
LineChannel::popLine(std::string &line)
{
    const std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos)
        return false;
    line.assign(buf_, 0, nl);
    buf_.erase(0, nl + 1);
    return true;
}

bool
LineChannel::recvLine(std::string &line, unsigned timeout_ms)
{
    const auto deadline = Clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
        if (popLine(line))
            return true;
        if (fd_ < 0 || dead_)
            return false;
        pollfd pfd{fd_, POLLIN, 0};
        int wait = -1;
        if (timeout_ms > 0) {
            const auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline - Clock::now());
            if (left.count() <= 0)
                return false;
            wait = static_cast<int>(left.count());
        }
        const int rc = ::poll(&pfd, 1, wait);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            dead_ = true;
            return false;
        }
        if (rc == 0)
            return false;  // timeout; channel still alive()
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            if (!takeIn(chunk, static_cast<std::size_t>(n)))
                return false;
        } else if (n == 0) {
            // EOF: surface any buffered final line first, including an
            // unterminated tail — same semantics as the journal loader,
            // whose getline parses a final row whose '\n' was cut off.
            // A torn tail that isn't a full message still decodes to
            // false at the caller.
            dead_ = true;
            if (popLine(line))
                return true;
            if (buf_.empty())
                return false;
            line = std::move(buf_);
            buf_.clear();
            return true;
        } else if (errno != EINTR) {
            dead_ = true;
            return false;
        }
    }
}

} // namespace sciq
