/**
 * @file
 * Resumable result journals (DESIGN.md §13): sweep-key identity, the
 * compact JSON round trip that resumption's bit-identity contract
 * rests on, tolerant loading of killed-writer tails, and end-to-end
 * kill/resume equivalence with an uninterrupted sweep.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/errors.hh"
#include "sim/journal.hh"
#include "sim/sweep.hh"

using namespace sciq;
namespace fs = std::filesystem;

namespace {

/** Fresh scratch directory under the system temp dir, per test. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(fs::temp_directory_path() / ("sciq-journal-test-" + name))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    fs::path operator/(const std::string &leaf) const { return path_ / leaf; }

  private:
    fs::path path_;
};

std::vector<SimConfig>
configSet()
{
    std::vector<SimConfig> cfgs;
    for (const auto &wl : {"swim", "gcc"}) {
        SimConfig seg = makeSegmentedConfig(64, 32, true, true, wl);
        seg.wl.iterations = 200;
        cfgs.push_back(seg);
        SimConfig ideal = makeIdealConfig(64, wl);
        ideal.wl.iterations = 200;
        cfgs.push_back(ideal);
    }
    return cfgs;
}

void
expectSameBits(double a, double b, const char *field)
{
    std::uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    EXPECT_EQ(ab, bb) << field << " differs (" << a << " vs " << b << ")";
}

/** Architected fields only (host-perf is wall-clock, never compared). */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.iqKind, b.iqKind);
    EXPECT_EQ(a.iqSize, b.iqSize);
    EXPECT_EQ(a.chains, b.chains);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    expectSameBits(a.ipc, b.ipc, "ipc");
    expectSameBits(a.avgChains, b.avgChains, "avgChains");
    expectSameBits(a.hmpAccuracy, b.hmpAccuracy, "hmpAccuracy");
    expectSameBits(a.iqOccupancyAvg, b.iqOccupancyAvg, "iqOccupancyAvg");
    expectSameBits(a.deadlockCycleFrac, b.deadlockCycleFrac,
                   "deadlockCycleFrac");
    expectSameBits(a.l1dMissRate, b.l1dMissRate, "l1dMissRate");
    EXPECT_EQ(a.auditViolations, b.auditViolations);
    EXPECT_EQ(a.validated, b.validated);
    EXPECT_EQ(a.haltedCleanly, b.haltedCleanly);
    EXPECT_EQ(a.outcome.ok(), b.outcome.ok());
}

std::size_t
journalLines(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line))
        ++n;
    return n;
}

// ---------------------------------------------------------------------
// Sweep keys.

TEST(SweepKey, DeterministicAndSensitive)
{
    SimConfig a = makeSegmentedConfig(128, 64, true, true, "swim");
    EXPECT_EQ(sweepKey(a), sweepKey(a));

    SimConfig b = a;
    b.core.iq.numEntries = 256;
    EXPECT_NE(sweepKey(a), sweepKey(b));

    SimConfig c = a;
    c.workload = "gcc";
    EXPECT_NE(sweepKey(a), sweepKey(c));

    SimConfig d = a;
    d.wl.iterations = 999;
    EXPECT_NE(sweepKey(a), sweepKey(d));

    SimConfig e = a;
    e.core.iqKind = IqKind::Ideal;
    EXPECT_NE(sweepKey(a), sweepKey(e));
}

TEST(SweepKey, HostOnlySettingsExcluded)
{
    // Checkpoint caching, auditing and fault injection change how a
    // result is produced, never what it is - they must not invalidate
    // journal entries on resume.
    SimConfig a = makeSegmentedConfig(128, 64, true, true, "swim");
    SimConfig b = a;
    b.ckptDir = "/somewhere/else";
    b.audit = true;
    b.validate = false;
    EXPECT_EQ(sweepKey(a), sweepKey(b));
}

// ---------------------------------------------------------------------
// Compact round trip.

TEST(JournalRoundTrip, EveryFieldBitIdentical)
{
    SimConfig cfg = makeSegmentedConfig(64, 32, false, false, "swim");
    cfg.wl.iterations = 200;
    RunResult r = runSim(cfg);
    ASSERT_TRUE(std::isnan(r.hmpAccuracy)) << "want a NaN in the round trip";

    std::ostringstream os;
    writeResultCompactJson(os, r);
    RunResult back = resultFromJson(json::parse(os.str()));

    expectIdentical(r, back);
    // Host-perf fields round-trip too (same source run).
    expectSameBits(r.hostSeconds, back.hostSeconds, "hostSeconds");
    expectSameBits(r.hostKcyclesPerSec, back.hostKcyclesPerSec,
                   "hostKcyclesPerSec");
    EXPECT_EQ(back.outcome.status, JobOutcome::Status::Ok);
    EXPECT_EQ(back.outcome.code, ErrorCode::None);
    EXPECT_EQ(back.outcome.attempts, r.outcome.attempts);

    // And the canonical array emitter sees identical bytes.
    std::ostringstream pretty_a, pretty_b;
    writeResultsJson(pretty_a, {r});
    writeResultsJson(pretty_b, {back});
    EXPECT_EQ(pretty_a.str(), pretty_b.str());
}

TEST(JournalRoundTrip, FailedOutcomeSurvives)
{
    RunResult r;
    r.workload = "swim";
    r.iqKind = "segmented";
    r.outcome.status = JobOutcome::Status::Failed;
    r.outcome.code = ErrorCode::Checkpoint;
    r.outcome.message = "checkpoint checksum mismatch (corrupted file)";
    r.outcome.attempts = 3;

    std::ostringstream os;
    writeResultCompactJson(os, r);
    RunResult back = resultFromJson(json::parse(os.str()));
    EXPECT_EQ(back.outcome.status, JobOutcome::Status::Failed);
    EXPECT_EQ(back.outcome.code, ErrorCode::Checkpoint);
    EXPECT_EQ(back.outcome.message, r.outcome.message);
    EXPECT_EQ(back.outcome.attempts, 3u);
}

// ---------------------------------------------------------------------
// Loader tolerance.

TEST(JournalLoad, MissingFileIsEmpty)
{
    EXPECT_TRUE(loadJournal("/nonexistent/journal.jsonl").empty());
}

TEST(JournalLoad, SkipsTruncatedTailLine)
{
    ScratchDir dir("truncated");
    const std::string path = (dir / "j.jsonl").string();

    RunResult r;
    r.workload = "swim";
    r.iqKind = "ideal";
    {
        ResultJournal journal(path);
        journal.record(0, "key0", r);
        journal.record(1, "key1", r);
    }
    // Simulate a kill mid-write: append half a line.
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"index\":2,\"key\":\"key2\",\"result\":{\"work";
    }

    std::vector<JournalEntry> entries = loadJournal(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].index, 0u);
    EXPECT_EQ(entries[0].key, "key0");
    EXPECT_EQ(entries[1].index, 1u);
    EXPECT_EQ(entries[1].result.workload, "swim");
}

// ---------------------------------------------------------------------
// End-to-end resume.

TEST(JournalResume, KilledSweepResumesBitIdentical)
{
    ScratchDir dir("resume");
    const std::string path = (dir / "sweep.jsonl").string();
    const std::vector<SimConfig> cfgs = configSet();

    // Reference: uninterrupted, journal-free.
    const std::vector<RunResult> reference = SweepRunner(2).run(cfgs);

    // "Killed" sweep: only the first half of the configs ran before the
    // process died (same indices and keys as the full list)...
    std::vector<SimConfig> firstHalf(cfgs.begin(),
                                     cfgs.begin() + cfgs.size() / 2);
    SweepRunner::Options options;
    options.journal = path;
    SweepRunner(2).run(firstHalf, options);
    const std::size_t halfLines = journalLines(path);
    EXPECT_EQ(halfLines, firstHalf.size());

    // ...plus a torn final line from the kill.
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"index\":9,\"key\":\"torn";
    }

    // Resume over the full config list.
    std::vector<RunResult> resumed = SweepRunner(2).run(cfgs, options);
    ASSERT_EQ(resumed.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        expectIdentical(reference[i], resumed[i]);

    // Only the missing jobs ran: one new journal line each.
    EXPECT_EQ(journalLines(path),
              halfLines + 1 + (cfgs.size() - firstHalf.size()));

    // A second resume re-runs nothing at all.
    std::vector<RunResult> again = SweepRunner(2).run(cfgs, options);
    EXPECT_EQ(journalLines(path),
              halfLines + 1 + (cfgs.size() - firstHalf.size()));
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        expectIdentical(reference[i], again[i]);
}

TEST(JournalResume, FailedEntriesAreRerun)
{
    ScratchDir dir("rerun-failed");
    const std::string path = (dir / "sweep.jsonl").string();
    const std::vector<SimConfig> cfgs = configSet();

    // Journal a failed outcome for job 1 under its real key.
    {
        RunResult failed;
        failed.workload = cfgs[1].workload;
        failed.iqKind = "ideal";
        failed.outcome.status = JobOutcome::Status::Failed;
        failed.outcome.code = ErrorCode::Resource;
        failed.outcome.message = "out of memory";
        ResultJournal journal(path);
        journal.record(1, sweepKey(cfgs[1]), failed);
    }

    SweepRunner::Options options;
    options.journal = path;
    std::vector<RunResult> results = SweepRunner(1).run(cfgs, options);

    // The failed entry was re-run and succeeded this time.
    EXPECT_TRUE(results[1].outcome.ok());
    EXPECT_TRUE(results[1].validated);
    // All jobs ran (1 old line + one new line per config).
    EXPECT_EQ(journalLines(path), 1 + cfgs.size());
}

TEST(JournalResume, StaleKeysAreRerun)
{
    ScratchDir dir("stale-key");
    const std::string path = (dir / "sweep.jsonl").string();
    const std::vector<SimConfig> cfgs = configSet();

    // An ok entry journaled under a different configuration's key must
    // not be mispaired when the config list changes.
    {
        RunResult ok;
        ok.workload = "swim";
        ok.iqKind = "segmented";
        ok.cycles = 12345;  // a poison value that must not leak through
        ResultJournal journal(path);
        journal.record(0, "workload=swim iters=777 stale", ok);
    }

    SweepRunner::Options options;
    options.journal = path;
    std::vector<RunResult> results = SweepRunner(1).run(cfgs, options);
    EXPECT_NE(results[0].cycles, 12345u);
    EXPECT_TRUE(results[0].validated);
}

} // namespace
