/**
 * @file
 * Distributed sweep service: coordinator/worker sharding with leased
 * jobs (DESIGN.md §17).
 *
 * One sweep, many processes.  The coordinator (serveSweep) owns the
 * job list and the final results vector; workers (runWorker, or the
 * examples/sweep_worker binary) connect over a local socket, lease one
 * job at a time, execute it through the exact per-job containment path
 * a single-process sweep uses (job_exec::executeWithRetry), and stream
 * the journal-format result back.  Because the result wire format is
 * the journal's compact JSON — which round-trips doubles bit-for-bit —
 * the coordinator's merged writeResultsJson output is byte-identical
 * to a single-process `jobs=N` run of the same configs (modulo the
 * wall-clock host/warm fields, exactly as between two local runs).
 *
 * Sharding: every job has a static home shard, shardOf(sweepKey, K) —
 * a pure function of the host-setting-free sweep key, so the partition
 * is stable under any permutation of the job list and any lease/retry
 * history.  An idle worker is served (1) pending jobs from its own
 * shard, then (2) pending jobs stolen from the fullest other shard,
 * then (3) a duplicate lease of the longest-outstanding in-flight job
 * (straggler hedging; first result wins, the duplicate is discarded).
 *
 * Fault taxonomy reuse (DESIGN.md §13): a worker death is a lease
 * fault.  Its connection EOF (or lease expiry for a wedged-but-alive
 * worker) requeues the job; a job whose lease is dropped more than
 * `maxLeaseDrops` times is contained as a Failed row with a transient
 * ResourceError code — it appears in the final JSON like any other
 * contained failure, the sweep itself never dies.
 *
 * Availability model (DESIGN.md §18): endpoints may be AF_UNIX paths
 * or TCP host:port specs, heartbeats detect half-open connections in
 * seconds, workers reconnect with capped jittered backoff and
 * redeliver unacked results, and the coordinator journals each result
 * durably (fsync) before acking — so a coordinator killed at any
 * instant can be restarted on the same listen=/journal= pair, the
 * surviving workers reconnect into it, and the merged JSON stays
 * byte-identical to an uninterrupted run.
 */

#ifndef SCIQ_SIM_SHARD_HH
#define SCIQ_SIM_SHARD_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace sciq {

class FaultInjector;

/** FNV-1a over a sweep key (the shard hash; stable across hosts). */
std::uint64_t shardHash(const std::string &sweep_key);

/**
 * Home shard of a job: a pure, permutation-stable function of its
 * host-setting-free sweepKey.  `shards == 0` is treated as 1.
 */
unsigned shardOf(const std::string &sweep_key, unsigned shards);

/**
 * Complete wire form of a configuration: sweepKey(config) plus every
 * other apply()-understood key that affects the run's reported result
 * (validate/audit flags, wrong-path modelling, resize interval,
 * watchdog window, engine selectors).  configFromSpec(configSpec(c))
 * reproduces c's architected behaviour exactly; host-local settings
 * (checkpoint paths/caches, fault injectors, wall-clock deadlines) are
 * deliberately not part of the spec.
 */
std::string configSpec(const SimConfig &config);

/** Rebuild a SimConfig from a spec line; throws ConfigError on junk. */
SimConfig configFromSpec(const std::string &spec);

/**
 * Coordinator-side lease state machine.  Socket-free and clocked
 * explicitly so tests can drive expiry deterministically.
 */
class JobBoard
{
  public:
    using Clock = std::chrono::steady_clock;

    struct Options
    {
        unsigned shards = 1;            ///< static home-shard count
        unsigned leaseMs = 60'000;      ///< lease length before expiry
        unsigned maxLeaseDrops = 3;     ///< drops before the job fails
        unsigned duplicateAfterMs = 1'000;  ///< straggler-hedge age
    };

    /** `done[i]` marks jobs already satisfied (journal resume). */
    JobBoard(const std::vector<std::string> &keys,
             const std::vector<char> &done, const Options &options);

    enum class Grant
    {
        Leased,   ///< `index` holds the leased job
        Wait,     ///< nothing leasable right now; ask again shortly
        Drained,  ///< every job is done; the worker can exit
    };

    /**
     * Lease one job to the worker with connection id `worker` whose
     * assigned home shard is `shard`.
     */
    Grant lease(int worker, unsigned shard, Clock::time_point now,
                std::size_t &index);

    /**
     * Record a finished job.  Returns false when the job was already
     * completed (a duplicate lease lost the race) — the caller must
     * discard that result.
     */
    bool complete(std::size_t index);

    /**
     * Drop every lease held by `worker` (its connection died).
     * Requeued job indices are appended to `requeued`; jobs that hit
     * the drop cap are appended to `failed` and marked done.
     */
    void workerLost(int worker, std::vector<std::size_t> &requeued,
                    std::vector<std::size_t> &failed);

    /** Same dropping logic for leases whose deadline passed. */
    void expireLeases(Clock::time_point now,
                      std::vector<std::size_t> &requeued,
                      std::vector<std::size_t> &failed);

    bool allDone() const { return doneCount_ == jobs_.size(); }
    std::size_t remaining() const { return jobs_.size() - doneCount_; }
    unsigned shardOfJob(std::size_t index) const;

    // Observability (serveSweep logs these; tests pin them).
    std::uint64_t leases() const { return leases_; }
    std::uint64_t steals() const { return steals_; }
    std::uint64_t duplicates() const { return duplicates_; }
    std::uint64_t requeues() const { return requeues_; }

  private:
    struct Lease
    {
        int worker = -1;
        Clock::time_point start;
        Clock::time_point deadline;
    };

    struct Job
    {
        std::string key;
        unsigned shard = 0;
        bool done = false;
        unsigned drops = 0;
        std::vector<Lease> active;  ///< >1 only under duplicate leases
    };

    void drop(std::size_t index, std::vector<std::size_t> &requeued,
              std::vector<std::size_t> &failed);

    Options options_;
    std::vector<Job> jobs_;
    std::size_t doneCount_ = 0;
    std::uint64_t leases_ = 0;
    std::uint64_t steals_ = 0;
    std::uint64_t duplicates_ = 0;
    std::uint64_t requeues_ = 0;
};

/** Coordinator policy + observability for one served sweep. */
struct ServeOptions
{
    /**
     * Where workers connect: an AF_UNIX socket path ("/tmp/sweep.sock")
     * or a TCP host:port spec ("127.0.0.1:7070", "[::1]:7070";
     * port 0 = kernel-assigned, reported via boundPortOut).
     */
    std::string endpoint;

    /**
     * Expected worker count = static shard count for shardOf().  The
     * coordinator still serves fewer or more workers than this; it
     * only fixes the partition function.  0 = 1.
     */
    unsigned shards = 1;

    unsigned leaseMs = 60'000;
    unsigned maxLeaseDrops = 3;
    unsigned duplicateAfterMs = 1'000;

    /**
     * Abort (ResourceError) when no worker is connected for this long
     * while jobs remain — a sweep with a dead fleet should fail loudly
     * rather than hang forever.
     */
    unsigned workerGraceMs = 60'000;

    /**
     * Heartbeat cadence advertised in the Welcome; a peer silent for
     * kHeartbeatTimeoutFactor intervals is dropped (its leases
     * requeue).  0 disables heartbeats entirely.
     */
    unsigned heartbeatMs = 1'000;

    /** Same resumable JSONL journal as SweepRunner::Options. */
    std::string journal;

    /**
     * fsync the journal before each result is acked/counted.  On by
     * default: without it a coordinator crash can lose a
     * recorded-but-buffered row and break resume bit-identity.  Tests
     * that hammer thousands of tiny journals may turn it off.
     */
    bool syncJournal = true;

    /**
     * Graceful-drain trigger (SIGTERM/SIGINT in the binary): when the
     * pointed-to flag becomes true, the coordinator stops leasing,
     * collects in-flight results for up to drainGraceMs, leaves a
     * valid journal and returns with stats.interrupted set.
     */
    const std::atomic<bool> *stop = nullptr;

    /** How long a drain waits for in-flight results before returning. */
    unsigned drainGraceMs = 2'000;

    /**
     * Chaos injection: abortCoordinator fires in the ack path after a
     * result is journaled (see FaultInjector).  abortExits selects
     * `_exit(137)` (process chaos) vs a thrown ResourceError
     * (in-process tests restart the coordinator in the same process).
     */
    std::shared_ptr<FaultInjector> faults;
    bool abortExits = false;

    /**
     * When non-null, receives the bound TCP port (useful with port 0).
     * Atomic because the common pattern runs serveSweep on its own
     * thread and polls this from the launcher.
     */
    std::atomic<unsigned> *boundPortOut = nullptr;

    SweepRunner::Progress progress;
};

/** Counters surfaced by serveSweep for tests and the CLI summary. */
struct ServeStats
{
    std::uint64_t leases = 0;
    std::uint64_t steals = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t requeues = 0;
    std::uint64_t duplicateResults = 0;  ///< losing duplicate leases
    std::uint64_t boardFailed = 0;       ///< jobs failed by drop cap
    std::uint64_t rejectedWorkers = 0;   ///< handshake rejections
    std::uint64_t workersSeen = 0;
    std::uint64_t heartbeatDrops = 0;    ///< conns dropped as silent
    bool interrupted = false;            ///< stop-flag graceful drain
};

/**
 * Serve `configs` to connecting workers and return results in input
 * order, exactly as SweepRunner::run would.  Job failures (including
 * repeated lease drops) are contained into RunResult::outcome; only
 * harness failures (unusable socket/journal, fleet death) propagate.
 * Wall-clock deadlines are rejected up front: a distributed sweep has
 * no deterministic notion of them (same rule as lockstep batching).
 */
std::vector<RunResult> serveSweep(const std::vector<SimConfig> &configs,
                                  const ServeOptions &options,
                                  ServeStats *stats_out = nullptr);

/** One worker process/thread's configuration. */
struct WorkerOptions
{
    /** Coordinator endpoint: AF_UNIX path or TCP host:port spec. */
    std::string endpoint;
    std::string name = "worker";

    /** Shared warm-state store; all workers point at one directory. */
    std::string ckptDir;

    // Per-job containment policy (job_exec::executeWithRetry).
    unsigned maxRetries = 2;
    unsigned backoffMs = 10;
    std::string artifactDir;

    /**
     * Seeded fault injection, shared across this worker's jobs.  The
     * abortWorker budget kills the worker in place of sending a result
     * (chaos testing: the lease is outstanding, the result is lost).
     */
    std::shared_ptr<FaultInjector> faults;

    /**
     * When the abortWorker fault fires: true = _exit(137) like a real
     * `kill -9` (process workers); false = drop the connection and
     * return (in-process test workers).
     */
    bool abortExits = false;

    unsigned connectTimeoutMs = 10'000;

    /** Max wait for any coordinator reply (0 = forever). */
    unsigned replyTimeoutMs = 120'000;

    /**
     * Survive coordinator loss: on EOF/heartbeat-timeout the worker
     * keeps its unacked result, reconnects with capped exponential
     * backoff + jitter, re-handshakes under the same name, and
     * redelivers.  The failure counter resets on real progress (an
     * acked result or a granted lease), so a long sweep tolerates any
     * number of coordinator restarts as long as each one comes back.
     */
    unsigned maxReconnects = 8;
    unsigned reconnectBackoffMs = 100;
    unsigned reconnectBackoffCapMs = 5'000;
};

/** What one worker did, for logging and tests. */
struct WorkerReport
{
    std::uint64_t jobsRun = 0;
    std::uint64_t restored = 0;    ///< jobs whose warm-up was restored
    std::uint64_t reconnects = 0;  ///< successful re-handshakes
    std::uint64_t redelivered = 0; ///< results resent after reconnect
    bool drained = false;          ///< coordinator said Drain
    bool aborted = false;          ///< abortWorker fault fired
    std::string error;             ///< non-empty on protocol failure
};

/**
 * Run the worker loop: connect, handshake, lease-execute-report until
 * the coordinator drains us.  Never throws on job failures (they are
 * contained rows); protocol/transport trouble lands in report.error.
 */
WorkerReport runWorker(const WorkerOptions &options);

} // namespace sciq

#endif // SCIQ_SIM_SHARD_HH
