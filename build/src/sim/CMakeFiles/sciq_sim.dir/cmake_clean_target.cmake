file(REMOVE_RECURSE
  "libsciq_sim.a"
)
