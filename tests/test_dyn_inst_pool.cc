/**
 * @file
 * DynInstPool and the intrusive DynInstPtr: storage reuse across
 * squash/commit churn, refcount correctness (no premature or double
 * free), checkpoint ownership, and clean state on recycled slots.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/circular_queue.hh"
#include "core/dyn_inst_pool.hh"
#include "sim/simulator.hh"

using namespace sciq;

namespace {

TEST(DynInstPtr, RefCountingBasics)
{
    DynInstPtr a = makeDynInst();
    EXPECT_EQ(a.useCount(), 1u);

    DynInstPtr b = a;
    EXPECT_EQ(a.useCount(), 2u);
    EXPECT_TRUE(a == b);

    DynInstPtr c = std::move(b);
    EXPECT_EQ(a.useCount(), 2u);
    EXPECT_TRUE(b == nullptr);

    c.reset();
    EXPECT_EQ(a.useCount(), 1u);

    DynInstPtr d;
    EXPECT_FALSE(d);
    EXPECT_TRUE(d == nullptr);
    d = a;
    EXPECT_EQ(a.useCount(), 2u);
    d = nullptr;
    EXPECT_EQ(a.useCount(), 1u);
}

TEST(DynInstPtr, SelfAssignment)
{
    DynInstPtr a = makeDynInst();
    a = *&a;  // NOLINT: deliberate self-assignment
    EXPECT_EQ(a.useCount(), 1u);
    EXPECT_TRUE(a);
}

TEST(DynInstPool, ReusesStorageLifo)
{
    DynInstPool pool;
    DynInstPtr a = pool.create();
    DynInst *raw = a.get();
    EXPECT_EQ(pool.liveCount(), 1u);

    a.reset();
    EXPECT_EQ(pool.liveCount(), 0u);

    DynInstPtr b = pool.create();
    EXPECT_EQ(b.get(), raw) << "freed slot was not recycled";
    EXPECT_EQ(pool.slotsAllocated(), 1u);
    EXPECT_EQ(pool.slotsReused(), 1u);
}

TEST(DynInstPool, RecycledSlotIsFreshlyConstructed)
{
    DynInstPool pool;
    DynInstPtr a = pool.create();
    a->seq = 1234;
    a->squashed = true;
    a->fifoId = 7;
    a->seg.numMemberships = 2;
    a->checkpoint = std::make_unique<FetchCheckpoint>();
    DynInst *raw = a.get();
    a.reset();

    DynInstPtr b = pool.create();
    ASSERT_EQ(b.get(), raw);
    EXPECT_EQ(b->seq, kInvalidSeqNum);
    EXPECT_FALSE(b->squashed);
    EXPECT_EQ(b->fifoId, -1);
    EXPECT_EQ(b->seg.numMemberships, 0);
    EXPECT_EQ(b->checkpoint, nullptr)
        << "recycled slot leaked the previous checkpoint";
}

TEST(DynInstPool, HoldersKeepInstAliveAcrossRelease)
{
    DynInstPool pool;
    DynInstPtr a = pool.create();
    a->seq = 42;
    DynInstPtr rob_copy = a;
    DynInstPtr lsq_copy = a;

    // A squash drops two of the three references; the slot must not be
    // recycled while the last holder is live.
    a.reset();
    rob_copy.reset();
    EXPECT_EQ(pool.liveCount(), 1u);
    EXPECT_EQ(lsq_copy->seq, 42u);

    DynInstPtr other = pool.create();
    EXPECT_NE(other.get(), lsq_copy.get());

    lsq_copy.reset();
    EXPECT_EQ(pool.liveCount(), 1u);  // `other` still live
}

TEST(DynInstPool, WindowChurnStaysWithinBoundedSlabs)
{
    DynInstPool pool(64);
    std::vector<DynInstPtr> window;
    // 8-wide fetch / retire churn far beyond one slab's worth.
    for (int round = 0; round < 1000; ++round) {
        for (int i = 0; i < 8; ++i)
            window.push_back(pool.create());
        if (window.size() >= 128)
            window.erase(window.begin(), window.begin() + 8);
    }
    EXPECT_EQ(pool.liveCount(), window.size());
    // Steady state: allocations bounded by the window, not the total.
    EXPECT_LE(pool.slotsAllocated(), 192u);
    EXPECT_GT(pool.slotsReused(), 0u);
    window.clear();
    EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(DynInstPool, CheckpointOwnershipSurvivesCopies)
{
    DynInstPool pool;
    DynInstPtr inst = pool.create();
    inst->checkpoint = std::make_unique<FetchCheckpoint>();
    inst->checkpoint->regs[3] = 99;

    DynInstPtr copy = inst;
    inst.reset();
    ASSERT_NE(copy->checkpoint, nullptr);
    EXPECT_EQ(copy->checkpoint->regs[3], 99u);
}

/**
 * Regression for the CircularQueue::clear() leak: the ROB and LSQ are
 * CircularQueue<DynInstPtr>, and a clear() that only reset the indices
 * left every abandoned slot holding a reference -- the pool reported
 * those instructions live forever (exactly what the auditor's pool
 * bound flags).
 */
TEST(DynInstPool, CircularQueueClearDropsReferences)
{
    DynInstPool pool;
    CircularQueue<DynInstPtr> rob(8);
    for (int i = 0; i < 6; ++i)
        rob.pushBack(pool.create());
    // Pop a couple first so the live region is offset from slot 0, the
    // way a real ROB wraps.
    (void)rob.popFront();
    (void)rob.popFront();
    rob.pushBack(pool.create());
    EXPECT_EQ(pool.liveCount(), 5u);

    rob.clear();
    EXPECT_EQ(pool.liveCount(), 0u)
        << "clear() left DynInstPtrs alive in the abandoned slots";

    // The recycled slots are reusable immediately.
    DynInstPtr fresh = pool.create();
    EXPECT_GT(pool.slotsReused(), 0u);
    EXPECT_EQ(pool.liveCount(), 1u);
}

/**
 * End-to-end: a full simulation (squashes included) on the pooled
 * allocator still validates against the golden model, and the pool
 * drains once the core is gone.
 */
TEST(DynInstPool, FullSimulationValidates)
{
    SimConfig cfg = makeSegmentedConfig(64, 32, true, true, "twolf");
    cfg.wl.iterations = 300;
    RunResult r = runSim(cfg);
    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.validated);
    EXPECT_GT(r.insts, 0u);
}

} // namespace
