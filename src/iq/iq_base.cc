#include "iq_base.hh"

namespace sciq {

IqBase::IqBase(const IqParams &params_, const Scoreboard &scoreboard_,
               const FuPool &fu_, const std::string &stat_name)
    : params(params_), scoreboard(scoreboard_), fu(fu_),
      statsGroup(stat_name)
{
    statsGroup.addScalar("inserted", &instsInserted,
                         "instructions dispatched into the queue");
    statsGroup.addScalar("issued", &instsIssued,
                         "instructions issued to function units");
    statsGroup.addScalar("dispatch_stalls_full", &dispatchStallsFull,
                         "dispatch attempts rejected (capacity/chains)");
    statsGroup.addAverage("occupancy", &occupancyAvg,
                          "average queue occupancy per cycle");
}

} // namespace sciq
