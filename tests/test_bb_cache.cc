/**
 * @file
 * Bit-identity tests for the basic-block-cached functional interpreter
 * (DESIGN.md §14).  The contract under test: with `bb_cache=1` versus
 * the step()-based reference (`bb_cache=0`), architectural state,
 * `executed` counts, checkpoint blob bytes and whole-simulation stats
 * are byte-identical — the cache is pure acceleration, never policy.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <tuple>

#include "common/serialize.hh"
#include "core/ooo_core.hh"
#include "isa/asm_builder.hh"
#include "isa/assembler.hh"
#include "isa/functional_core.hh"
#include "sim/checkpoint.hh"
#include "sim/fast_forward.hh"
#include "sim/simulator.hh"
#include "workload/workloads.hh"

using namespace sciq;

namespace {

/** Architectural state of `a` must equal `b`, field by field. */
void
expectSameArchState(const FunctionalCore &a, const FunctionalCore &b)
{
    EXPECT_EQ(a.instCount(), b.instCount());
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.halted(), b.halted());
    EXPECT_EQ(a.regFile(), b.regFile());
    EXPECT_TRUE(a.memory().equalContents(b.memory()));
    EXPECT_EQ(a.memory().numPages(), b.memory().numPages());
}

/** Serialize through save() into a fresh buffer. */
std::string
blobOf(const FunctionalCore &core)
{
    serial::Writer w;
    core.save(w);
    return w.take();
}

SimConfig
testConfig(const std::string &workload, bool bb_cache)
{
    SimConfig cfg = makeSegmentedConfig(128, 64, true, true, workload);
    cfg.wl.iterations = 300;
    cfg.fastForward = 1500;
    cfg.validate = true;
    cfg.bbCache = bb_cache;
    return cfg;
}

std::string
statsDump(Simulator &sim)
{
    std::ostringstream os;
    sim.core().statGroup().dumpJson(os);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// Full-run identity on every workload kernel.

class BbCacheIdentity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BbCacheIdentity, RunToHaltMatchesStepReference)
{
    const Program prog =
        buildWorkload(GetParam(), {.iterations = 300});

    FunctionalCore ref(prog, false);
    FunctionalCore bb(prog, true);
    const std::uint64_t ranRef = ref.run();
    const std::uint64_t ranBb = bb.run();

    EXPECT_EQ(ranRef, ranBb);
    EXPECT_TRUE(bb.halted());
    expectSameArchState(ref, bb);
    EXPECT_EQ(blobOf(ref), blobOf(bb));
}

TEST_P(BbCacheIdentity, MidRunBlobsAreByteIdentical)
{
    const Program prog =
        buildWorkload(GetParam(), {.iterations = 300});

    // Stop mid-run (inside loop bodies, not at a block edge) and
    // demand byte-identical architectural blobs: the block path must
    // neither overshoot the boundary nor allocate pages the step
    // reference would not.
    for (std::uint64_t n : {1ULL, 137ULL, 1500ULL, 20011ULL}) {
        FunctionalCore ref(prog, false);
        FunctionalCore bb(prog, true);
        EXPECT_EQ(ref.run(n), bb.run(n)) << "n=" << n;
        expectSameArchState(ref, bb);
        EXPECT_EQ(blobOf(ref), blobOf(bb)) << "n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, BbCacheIdentity,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

// ---------------------------------------------------------------------
// Boundary torture: exact stops at every offset around block edges.

TEST(BbCacheBoundary, EveryStopOffsetMatchesStepReference)
{
    // gcc is the branchiest kernel: short blocks, both branch
    // directions taken, so consecutive stop offsets land on block
    // starts, interiors, terminators and freshly-split suffixes.
    const Program prog = buildWorkload("gcc", {.iterations = 50});

    FunctionalCore ref(prog, false);
    std::uint64_t steps = 0;
    for (std::uint64_t n = 0; n <= 400; ++n) {
        // Advance the incremental step reference to exactly n insts.
        for (; steps < n && ref.step(); ++steps) {
        }
        FunctionalCore bb(prog, true);
        EXPECT_EQ(bb.run(n), n);
        EXPECT_EQ(bb.instCount(), ref.instCount()) << "n=" << n;
        EXPECT_EQ(bb.pc(), ref.pc()) << "n=" << n;
        EXPECT_EQ(bb.regFile(), ref.regFile()) << "n=" << n;
    }
}

TEST(BbCacheBoundary, ChunkedResumeMatchesOneShot)
{
    const Program prog = buildWorkload("twolf", {.iterations = 100});

    FunctionalCore oneShot(prog, true);
    oneShot.run();

    // Same program replayed in adversarial chunk sizes: every resume
    // re-enters through lookup(curPc) and may split blocks anywhere.
    FunctionalCore chunked(prog, true);
    std::uint64_t chunk = 1;
    while (!chunked.halted()) {
        chunked.run(chunk % 97 + 1);
        ++chunk;
    }
    expectSameArchState(oneShot, chunked);
}

TEST(BbCacheBoundary, RunPastHaltExecutesNothing)
{
    const Program prog = buildWorkload("swim", {.iterations = 20});
    FunctionalCore ref(prog, false);
    FunctionalCore bb(prog, true);
    ref.run();
    bb.run();
    ASSERT_TRUE(bb.halted());
    EXPECT_EQ(bb.run(10), 0u);
    EXPECT_EQ(ref.run(10), 0u);
    expectSameArchState(ref, bb);
}

// ---------------------------------------------------------------------
// Indirect control flow through the one-entry inline cache.

TEST(BbCacheIndirect, AlternatingTargetsMatchStepReference)
{
    // r1 flips between two handler addresses every iteration, so the
    // indirect inline cache misses constantly and must re-resolve
    // through lookup() without corrupting the replay.  The handler
    // addresses are captured at runtime via jal's link value (the
    // instruction following the jal is the handler).
    Program prog = assemble(R"(
        addi r5, r0, 200     # iterations
        addi r10, r0, 0
        jal r2, skip_a       # r2 = addr(handler_a), jump over it
    handler_a:
        addi r10, r10, 3
        addi r1, r3, 0       # next time: handler_b
        jr r6                # return to join
    skip_a:
        jal r3, skip_b       # r3 = addr(handler_b), jump over it
    handler_b:
        addi r10, r10, 5
        addi r1, r2, 0       # next time: handler_a
        jr r6
    skip_b:
        addi r1, r2, 0       # first dispatch: handler_a
    loop:
        jalr r6, r1          # r6 = addr(join)
        addi r5, r5, -1
        bne r5, r0, loop
        halt
    )");

    FunctionalCore ref(prog, false);
    FunctionalCore bb(prog, true);
    ref.run();
    bb.run();
    expectSameArchState(ref, bb);
    EXPECT_EQ(bb.reg(intReg(10)), 200u / 2 * (3 + 5));

    ASSERT_NE(bb.blockCache(), nullptr);
    EXPECT_GT(bb.blockCache()->blocksDiscovered(), 0u);
    EXPECT_GT(bb.blockCache()->succHits(), 0u);
}

// ---------------------------------------------------------------------
// Block-cache plumbing and observability.

TEST(BbCachePlumbing, DisabledCoreHasNoCache)
{
    const Program prog = buildWorkload("swim", {.iterations = 20});
    FunctionalCore ref(prog, false);
    EXPECT_FALSE(ref.blockCacheEnabled());
    EXPECT_EQ(ref.blockCache(), nullptr);

    FunctionalCore bb(prog, true);
    EXPECT_TRUE(bb.blockCacheEnabled());
    ASSERT_NE(bb.blockCache(), nullptr);
}

TEST(BbCachePlumbing, CountersAreCoherent)
{
    const Program prog = buildWorkload("mgrid", {.iterations = 100});
    FunctionalCore bb(prog, true);
    bb.run();
    const BbCache &c = *bb.blockCache();
    EXPECT_GT(c.blocksDiscovered(), 0u);
    EXPECT_GE(c.opsCached(), c.blocksDiscovered());
    // Steady-state loops must chain through the successor caches, not
    // the hash lookup: transitions vastly outnumber discoveries.
    EXPECT_GT(c.succHits(), 10 * c.blocksDiscovered());
}

// ---------------------------------------------------------------------
// Functional warming: trained state and checkpoint blobs.

class BbCacheWarm : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BbCacheWarm, CheckpointBlobBytesIdentical)
{
    SimConfig cfgRef = testConfig(GetParam(), false);
    SimConfig cfgBb = testConfig(GetParam(), true);
    const Program prog = buildWorkload(GetParam(), cfgRef.wl);

    std::string blobs[2];
    for (bool bb : {false, true}) {
        FunctionalCore golden(prog, bb);
        OooCore core(prog, cfgRef.core);
        FastForwardStats ff =
            fastForward(golden, core, cfgRef.fastForward);
        blobs[bb ? 1 : 0] =
            saveCheckpoint(bb ? cfgBb : cfgRef, golden, core, ff);
    }
    // Same warm caches, predictors, stat counters, memory image,
    // key hash — byte for byte.
    EXPECT_EQ(blobs[0], blobs[1]);
    EXPECT_GT(blobs[0].size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, BbCacheWarm,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

TEST(BbCacheWarm, CrossModeRestoredMatchesColdBitForBit)
{
    // The strongest end-to-end form: warm up and checkpoint with the
    // step reference (bb_cache=0), restore into a block-cached run
    // (bb_cache=1), and demand the whole stats tree match a cold
    // block-cached run byte for byte.
    SimConfig cfgRef = testConfig("vortex", false);
    SimConfig cfgBb = testConfig("vortex", true);
    auto cache = std::make_shared<CheckpointCache>();  // memory-only
    cfgRef.ckptCache = cache;
    cfgBb.ckptCache = cache;

    Simulator producer(cfgRef);
    RunResult cold = producer.run();
    EXPECT_FALSE(cold.ckptRestored);
    ASSERT_TRUE(cold.haltedCleanly);
    ASSERT_TRUE(cold.validated);

    Simulator restored(cfgBb);
    RunResult warm = restored.run();
    EXPECT_TRUE(warm.ckptRestored);
    ASSERT_TRUE(warm.haltedCleanly);
    ASSERT_TRUE(warm.validated);

    EXPECT_EQ(cold.cycles, warm.cycles);
    EXPECT_EQ(cold.insts, warm.insts);
    EXPECT_EQ(statsDump(producer), statsDump(restored));
}

TEST(BbCacheWarm, FastForwardStatsMatchStepReference)
{
    const Program prog = buildWorkload("ammp", {.iterations = 300});
    SimConfig cfg = testConfig("ammp", true);

    FastForwardStats stats[2];
    for (bool bb : {false, true}) {
        FunctionalCore golden(prog, bb);
        OooCore core(prog, cfg.core);
        stats[bb ? 1 : 0] = fastForward(golden, core, 5000);
    }
    EXPECT_EQ(stats[0].instsSkipped, stats[1].instsSkipped);
    EXPECT_EQ(stats[0].memAccessesWarmed, stats[1].memAccessesWarmed);
    EXPECT_EQ(stats[0].branchesWarmed, stats[1].branchesWarmed);
    EXPECT_EQ(stats[0].hitHalt, stats[1].hitHalt);
}

TEST(BbCacheWarm, HaltDuringWarmupMatchesStepReference)
{
    // Warm-up budget far past the program's end: both paths must stop
    // at HALT, exclude it from instsSkipped, and leave identical
    // architectural state.
    const Program prog = buildWorkload("equake", {.iterations = 20});
    SimConfig cfg = testConfig("equake", true);

    FunctionalCore goldenRef(prog, false);
    FunctionalCore goldenBb(prog, true);
    OooCore coreRef(prog, cfg.core);
    OooCore coreBb(prog, cfg.core);
    FastForwardStats ffRef =
        fastForward(goldenRef, coreRef, ~0ULL >> 1);
    FastForwardStats ffBb = fastForward(goldenBb, coreBb, ~0ULL >> 1);

    EXPECT_TRUE(ffRef.hitHalt);
    EXPECT_TRUE(ffBb.hitHalt);
    EXPECT_EQ(ffRef.instsSkipped, ffBb.instsSkipped);
    expectSameArchState(goldenRef, goldenBb);
}
