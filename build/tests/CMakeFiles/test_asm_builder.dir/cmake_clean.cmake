file(REMOVE_RECURSE
  "CMakeFiles/test_asm_builder.dir/test_asm_builder.cc.o"
  "CMakeFiles/test_asm_builder.dir/test_asm_builder.cc.o.d"
  "test_asm_builder"
  "test_asm_builder.pdb"
  "test_asm_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
