/**
 * @file
 * Shared fault-containment plumbing for sweep job execution: exception
 * classification through the error taxonomy, Failed/Timeout result
 * rows, and failure-artifact persistence (DESIGN.md §13).  Used by both
 * the per-job path (sweep.cc) and the batched lockstep path (batch.cc)
 * so a contained failure looks identical however the job was executed.
 */

#ifndef SCIQ_SIM_JOB_EXEC_HH
#define SCIQ_SIM_JOB_EXEC_HH

#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <new>
#include <string>
#include <thread>

#include "common/errors.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

namespace sciq {
namespace job_exec {

/**
 * Exponential backoff delay for retry `attempt` (1-based): base << (n-1),
 * clamped to `cap_ms` when nonzero.  A nonzero `jitter_seed` spreads the
 * delay deterministically over [3/4, 5/4] of the nominal value so a
 * fleet of workers reconnecting after a coordinator crash does not
 * stampede the fresh listener in lockstep.
 */
inline unsigned
backoffDelayMs(unsigned base_ms, unsigned attempt, unsigned cap_ms = 0,
               std::uint64_t jitter_seed = 0)
{
    if (base_ms == 0)
        return 0;
    const unsigned shift = attempt > 1 ? attempt - 1 : 0;
    std::uint64_t delay = shift >= 32
                              ? std::uint64_t(base_ms) << 32
                              : std::uint64_t(base_ms) << shift;
    if (cap_ms && delay > cap_ms)
        delay = cap_ms;
    if (jitter_seed && delay >= 4) {
        Random rng(jitter_seed + attempt);
        const std::uint64_t spread = delay / 4;
        delay = delay - spread + rng.below(2 * spread + 1);
    }
    return static_cast<unsigned>(delay);
}

/** The in-flight exception, classified through the taxonomy. */
struct Classified
{
    ErrorCode code = ErrorCode::Internal;
    bool transient = false;
    bool timeout = false;
    std::string message;
    std::string context;  ///< captured state dump, if the error had one
};

inline Classified
classify(std::exception_ptr ep)
{
    Classified c;
    try {
        std::rethrow_exception(ep);
    } catch (const DeadlockError &e) {
        c.code = e.code();
        c.timeout = e.isTimeout();
        c.message = e.what();
        c.context = e.context();
    } catch (const SimError &e) {
        c.code = e.code();
        c.transient = e.transient();
        c.message = e.what();
        c.context = e.context();
    } catch (const std::bad_alloc &) {
        c.code = ErrorCode::Resource;
        c.message = "out of memory";
    } catch (const PanicError &e) {
        // Unclassified panic (SCIQ_ASSERT): an internal invariant.
        c.code = ErrorCode::Invariant;
        c.message = e.what();
    } catch (const FatalError &e) {
        c.code = ErrorCode::Config;
        c.message = e.what();
    } catch (const std::exception &e) {
        c.message = e.what();
    } catch (...) {
        c.message = "unknown exception";
    }
    return c;
}

/** A Failed/Timeout row: config identity, zero stats, the outcome. */
inline RunResult
failedResult(const SimConfig &config, const Classified &c, unsigned attempts)
{
    RunResult r;
    r.workload = config.workload;
    r.iqKind = iqKindName(config.core.iqKind);
    r.iqSize = config.core.iq.numEntries;
    r.chains = config.core.iqKind == IqKind::Segmented
                   ? config.core.iq.maxChains
                   : -1;
    r.outcome.status = c.timeout ? JobOutcome::Status::Timeout
                                 : JobOutcome::Status::Failed;
    r.outcome.code = c.code;
    r.outcome.message = c.message;
    r.outcome.attempts = attempts;
    return r;
}

/**
 * Persist a failure's captured context (e.g. the watchdog's pipeline
 * dump) under the artifact directory.  Best-effort: artifact I/O
 * trouble must never turn a contained failure into a fatal one.
 */
inline void
writeArtifact(const std::string &dir, std::size_t index,
              const Classified &c, const std::string &key)
{
    if (dir.empty() || c.context.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/job" + std::to_string(index) + "-" +
                             errorCodeName(c.code) + ".dump";
    std::ofstream out(path);
    if (!out) {
        warn("cannot write failure artifact '%s'", path.c_str());
        return;
    }
    out << "sweep key: " << key << "\nerror: " << c.message << "\n\n"
        << c.context;
    inform("wrote failure artifact %s", path.c_str());
}

/**
 * Run one job with bounded retry-with-backoff for transient errors.
 * Never throws: every exception ends up in the returned outcome.  The
 * single execution path shared by the in-process sweep runner
 * (sweep.cc) and distributed sweep workers (shard.cc), so a contained
 * failure looks identical however the job reached a core.
 */
inline RunResult
executeWithRetry(const SimConfig &config, const std::string &key,
                 std::size_t index, unsigned max_retries,
                 unsigned backoff_ms, const std::string &artifact_dir)
{
    for (unsigned attempt = 1;; ++attempt) {
        std::exception_ptr ep;
        try {
            RunResult r = runSim(config);
            r.outcome.attempts = attempt;
            return r;
        } catch (...) {
            ep = std::current_exception();
        }
        Classified c = classify(ep);
        if (c.transient && attempt <= max_retries) {
            warn("job %zu (%s): transient %s error, retrying "
                 "(attempt %u/%u): %s",
                 index, key.c_str(), errorCodeName(c.code), attempt,
                 max_retries + 1, c.message.c_str());
            if (backoff_ms) {
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    backoffDelayMs(backoff_ms, attempt)));
            }
            continue;
        }
        warn("job %zu (%s) %s: [%s] %s", index, key.c_str(),
             c.timeout ? "timed out" : "failed", errorCodeName(c.code),
             c.message.c_str());
        writeArtifact(artifact_dir, index, c, key);
        return failedResult(config, c, attempt);
    }
}

} // namespace job_exec
} // namespace sciq

#endif // SCIQ_SIM_JOB_EXEC_HH
