# Empty compiler generated dependencies file for table2_chain_usage.
# This may be replaced when dependencies are built.
