file(REMOVE_RECURSE
  "CMakeFiles/test_fu_pool.dir/test_fu_pool.cc.o"
  "CMakeFiles/test_fu_pool.dir/test_fu_pool.cc.o.d"
  "test_fu_pool"
  "test_fu_pool.pdb"
  "test_fu_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fu_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
