/**
 * @file
 * Structured simulation-error taxonomy (DESIGN.md §13).
 *
 * Every failure a sweep can encounter is classified by an ErrorCode and
 * carried by a SimError subclass, so the sweep runner can contain it,
 * decide whether a retry is worthwhile (transient I/O flakes are; a bad
 * configuration never is), and surface the failure in machine-readable
 * results instead of tearing down the whole batch.
 *
 * The split of responsibilities with logging.hh: panic()/PanicError is
 * the low-level "the simulator itself is broken" escape hatch used by
 * SCIQ_ASSERT; SimError is the *classified* layer the fault-containment
 * machinery speaks.  The sweep runner maps stray PanicError/FatalError
 * into the taxonomy (invariant/config) at its catch boundary.
 */

#ifndef SCIQ_COMMON_ERRORS_HH
#define SCIQ_COMMON_ERRORS_HH

#include <stdexcept>
#include <string>

namespace sciq {

/** What went wrong, at the granularity recovery policy cares about. */
enum class ErrorCode
{
    None,        ///< no error (JobOutcome of a successful run)
    Config,      ///< bad user configuration (unknown key, bad range)
    Workload,    ///< workload construction failed (unknown name, ...)
    Checkpoint,  ///< checkpoint blob/file rejected or unwritable
    Deadlock,    ///< watchdog: no forward progress / deadline exceeded
    Invariant,   ///< internal invariant violated (auditor panic path)
    Resource,    ///< host resource exhausted (memory, disk)
    Internal,    ///< unclassified exception escaping a run
};

/** Stable lower-case name for JSON/journal output. */
const char *errorCodeName(ErrorCode code);

/** Parse errorCodeName output back; ErrorCode::Internal if unknown. */
ErrorCode errorCodeFromName(const std::string &name);

/**
 * Base class of every classified simulation error.
 *
 * @param context  Captured diagnostic state (e.g. the watchdog's
 *                 pipeline dump) - kept out of what() so log lines stay
 *                 one line; artifact writers persist it separately.
 * @param transient  True when a bounded retry has a chance of
 *                 succeeding (disk I/O flakes); policy, not mechanism:
 *                 the sweep runner is the only consumer.
 */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorCode code, const std::string &msg,
             std::string context = "", bool transient = false)
        : std::runtime_error(msg), code_(code),
          context_(std::move(context)), transient_(transient)
    {
    }

    ErrorCode code() const { return code_; }
    bool transient() const { return transient_; }
    const std::string &context() const { return context_; }

    /** The failing job's sweep key, annotated by the sweep runner. */
    const std::string &sweepKey() const { return sweepKey_; }
    void setSweepKey(std::string key) { sweepKey_ = std::move(key); }

  private:
    ErrorCode code_;
    std::string context_;
    bool transient_;
    std::string sweepKey_;
};

/** Bad user configuration: unknown key, out-of-range value, ... */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &msg)
        : SimError(ErrorCode::Config, msg)
    {
    }
};

/** Workload construction failed (unknown name, bad generator params). */
class WorkloadError : public SimError
{
  public:
    explicit WorkloadError(const std::string &msg)
        : SimError(ErrorCode::Workload, msg)
    {
    }
};

/**
 * Any reason a checkpoint cannot be written, read or applied.  I/O and
 * data-corruption rejections are transient (a retry re-reads the disk
 * or regenerates the blob); semantic mismatches (version, key hash,
 * wrong program) are not - retrying cannot change them.
 */
class CheckpointError : public SimError
{
  public:
    explicit CheckpointError(const std::string &msg, bool transient = false)
        : SimError(ErrorCode::Checkpoint, msg, "", transient)
    {
    }
};

/**
 * The watchdog aborted a run: no instruction committed for the
 * configured window (wedged scheduler), or the wall-clock deadline
 * expired (livelock / runaway configuration).  Carries the pipeline
 * state dump captured at abort time.
 */
class DeadlockError : public SimError
{
  public:
    DeadlockError(const std::string &msg, std::string state_dump,
                  bool wall_clock = false)
        : SimError(ErrorCode::Deadlock, msg, std::move(state_dump)),
          wallClock_(wall_clock)
    {
    }

    /** True when the wall-clock deadline (not the commit watchdog) fired. */
    bool isTimeout() const { return wallClock_; }

  private:
    bool wallClock_;
};

/**
 * An internal invariant was violated with audit_panic=1: the auditor's
 * panic path, carrying the offending structure's dump as context.
 */
class InvariantError : public SimError
{
  public:
    InvariantError(const std::string &msg, std::string state_dump = "")
        : SimError(ErrorCode::Invariant, msg, std::move(state_dump))
    {
    }
};

/** Host resource exhaustion (memory, disk space). */
class ResourceError : public SimError
{
  public:
    explicit ResourceError(const std::string &msg, bool transient = true)
        : SimError(ErrorCode::Resource, msg, "", transient)
    {
    }
};

} // namespace sciq

#endif // SCIQ_COMMON_ERRORS_HH
