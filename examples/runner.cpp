/**
 * @file
 * General-purpose simulation driver: run any workload on any queue
 * configuration and dump the full hierarchical statistics tree -
 * the "sim-outorder" style front door to the library.
 *
 * Usage examples:
 *   runner workload=swim iq=segmented iq_size=512 chains=128 hmp=1 lrp=1
 *   runner workload=gcc iq=prescheduled iq_size=320 stats=1
 *   runner workload=equake ff=5000 iters=2000 resize=1
 */

#include <iostream>

#include "common/config.hh"
#include "sim/simulator.hh"

using namespace sciq;

int
main(int argc, char **argv)
{
    ConfigMap args = ConfigMap::fromArgs(argc, argv);
    if (args.has("help")) {
        std::cout <<
            "keys: workload=<name> iq=ideal|segmented|prescheduled|fifo\n"
            "      iq_size=N seg_size=N chains=N|-1 hmp=0/1 lrp=0/1\n"
            "      pushdown=0/1 bypass=0/1 resize=0/1 iters=N ff=N\n"
            "      seed=N scale=X max_cycles=N validate=0/1 stats=0/1\n"
            "      ckpt=<file> ckpt_dir=<dir>   (warm-up checkpoints;\n"
            "      restore the ff= prefix instead of re-executing it)\n"
            "      bb_cache=0/1 (default 1: basic-block cache for the\n"
            "      functional paths; 0 = step()-based reference)\n"
            "count-valued keys (ff, iters, max_cycles, ...) accept\n"
            "decimal k/m/g suffixes, e.g. ff=300m\n";
        return 0;
    }

    SimConfig cfg = makeSegmentedConfig(512, 128, true, true, "swim");
    cfg.apply(args);

    cfg.printParameters(std::cout);
    std::cout << '\n';

    Simulator sim(cfg);
    RunResult r = sim.run();
    printResultHeader(std::cout);
    printResultRow(std::cout, r);

    std::cout << "\nbranch mispredict/cond-branch: "
              << 100.0 * r.branchMispredictRate << "%"
              << "   L1D miss (incl. delayed): "
              << 100.0 * r.l1dMissRate << "%\n";

    if (args.getBool("stats", false)) {
        std::cout << "\n==== full statistics ====\n";
        sim.core().statGroup().dump(std::cout);
        sim.warmStatGroup().dump(std::cout);
    }
    return r.haltedCleanly && (!cfg.validate || r.validated) ? 0 : 1;
}
