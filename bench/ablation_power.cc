/**
 * @file
 * Ablation A3: dynamic segment resizing (paper section 7).
 *
 * "The segmented structure lends itself naturally to dynamic resizing
 * by gating clocks and/or power on a segment granularity."  This bench
 * quantifies that claim on our substrate: segments are gated off when
 * queue occupancy is low and re-enabled under pressure.  We report IPC
 * plus a first-order energy proxy (powered segment-cycles, i.e. the
 * clock/leakage cost that gating saves).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sciq;
using namespace sciq::bench;

namespace {

SimConfig
makeResizeConfig(const std::string &wl, bool resize)
{
    SimConfig cfg = makeSegmentedConfig(512, 128, true, true, wl);
    cfg.core.iq.dynamicResize = resize;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, workloadNames());

    std::printf("Ablation: dynamic segment resizing, 512-entry "
                "segmented IQ (16 segments of 32)\n\n");
    std::printf("%-9s | %8s %8s | %8s %10s | %10s %12s\n", "bench",
                "ipc off", "ipc on", "IPC cost%", "avg active",
                "energy sv%", "(of 16 segs)");
    hr('-', 86);

    SweepBatch batch(args);
    for (const auto &wl : args.workloads) {
        batch.add(makeResizeConfig(wl, false));
        batch.add(makeResizeConfig(wl, true));
    }
    batch.run();

    for (const auto &wl : args.workloads) {
        RunResult off = batch.next();
        RunResult on = batch.next();
        const double ipc_cost =
            off.ipc > 0 ? 100.0 * (1.0 - on.ipc / off.ipc) : 0.0;
        const double saved =
            off.segCyclesActive > 0
                ? 100.0 * (1.0 - on.segCyclesActive / off.segCyclesActive)
                : 0.0;
        std::printf("%-9s | %8.3f %8.3f | %8.1f %10.1f | %10.1f\n",
                    wl.c_str(), off.ipc, on.ipc, ipc_cost,
                    on.segActiveAvg, saved);
    }

    std::printf("\nExpected: codes that never fill the queue (gcc, "
                "twolf, vortex) keep most segments gated\nwith little "
                "IPC cost; window-hungry FP codes grow to full size "
                "and save little.\n");
    finishBench(args);
    return 0;
}
