/** @file Unit tests for panic/fatal error reporting. */

#include <gtest/gtest.h>

#include <cstring>

#include "common/logging.hh"

using namespace sciq;

TEST(Logging, PanicThrowsWithMessage)
{
    try {
        panic("bad thing %d", 42);
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::strstr(e.what(), "bad thing 42"), nullptr);
        EXPECT_NE(std::strstr(e.what(), "panic"), nullptr);
    }
}

TEST(Logging, FatalThrowsWithMessage)
{
    try {
        fatal("user error: %s", "oops");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::strstr(e.what(), "user error: oops"), nullptr);
    }
}

TEST(Logging, PanicIsNotFatal)
{
    // The two error classes are distinct so tests can tell simulator
    // bugs from configuration errors.
    EXPECT_THROW(panic("x"), PanicError);
    EXPECT_THROW(fatal("x"), FatalError);
    bool caught = false;
    try {
        panic("x");
    } catch (const FatalError &) {
        // wrong type
    } catch (const PanicError &) {
        caught = true;
    }
    EXPECT_TRUE(caught);
}

TEST(Logging, AssertMacroPassesAndFails)
{
    EXPECT_NO_THROW(SCIQ_ASSERT(1 + 1 == 2, "math works"));
    try {
        SCIQ_ASSERT(1 == 2, "value was %d", 7);
        FAIL() << "assert did not throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::strstr(e.what(), "1 == 2"), nullptr);
        EXPECT_NE(std::strstr(e.what(), "value was 7"), nullptr);
    }
}

TEST(Logging, FormatHandlesLongStrings)
{
    std::string big(5000, 'x');
    try {
        fatal("%s", big.c_str());
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_GE(std::strlen(e.what()), 5000u);
    }
}
