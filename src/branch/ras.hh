/**
 * @file
 * Return address stack with checkpoint/restore for squash recovery.
 */

#ifndef SCIQ_BRANCH_RAS_HH
#define SCIQ_BRANCH_RAS_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace sciq {

class ReturnAddressStack
{
  public:
    /** Snapshot = (top-of-stack index, value at top). */
    struct Snapshot
    {
        unsigned tos = 0;
        Addr topValue = 0;
    };

    explicit ReturnAddressStack(unsigned entries = 32)
        : stack(entries, 0)
    {
    }

    void
    push(Addr return_pc)
    {
        tos = (tos + 1) % stack.size();
        stack[tos] = return_pc;
    }

    Addr
    pop()
    {
        Addr v = stack[tos];
        tos = (tos + stack.size() - 1) % stack.size();
        return v;
    }

    Addr peek() const { return stack[tos]; }

    Snapshot
    snapshot() const
    {
        return {tos, stack[tos]};
    }

    void
    restore(const Snapshot &snap)
    {
        tos = snap.tos;
        stack[tos] = snap.topValue;
    }

    /** Serialize the full stack contents and top-of-stack index. */
    void
    save(serial::Writer &w) const
    {
        w.u64(stack.size());
        for (Addr a : stack)
            w.u64(a);
        w.u32(tos);
    }

    /** Restore a full snapshot; the depth must match (serial::Error). */
    void
    restore(serial::Reader &r)
    {
        const std::uint64_t n = r.u64();
        if (n != stack.size()) {
            throw serial::Error("RAS depth mismatch: snapshot " +
                                std::to_string(n) + ", configured " +
                                std::to_string(stack.size()));
        }
        for (Addr &a : stack)
            a = r.u64();
        tos = r.u32();
    }

  private:
    std::vector<Addr> stack;
    unsigned tos = 0;
};

} // namespace sciq

#endif // SCIQ_BRANCH_RAS_HH
