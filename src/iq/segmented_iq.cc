#include "segmented_iq.hh"

#include <algorithm>
#include <chrono>

#include "branch/hit_miss_predictor.hh"
#include "branch/left_right_predictor.hh"
#include "common/logging.hh"

namespace sciq {

namespace {

/** Accumulate wall-clock into `acc` while in scope (profiling only). */
class ScopedTimer
{
  public:
    ScopedTimer(bool on, double &acc) : on_(on), acc_(acc)
    {
        if (on_)
            t0_ = std::chrono::steady_clock::now();
    }
    ~ScopedTimer()
    {
        if (on_) {
            acc_ += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
        }
    }

  private:
    bool on_;
    double &acc_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace

static_assert(kNumArchRegs <= 64,
              "regAvail fast-plan mask assumes <= 64 architectural regs");

SegmentedIq::SegmentedIq(const IqParams &params_,
                         const Scoreboard &scoreboard_, const FuPool &fu_,
                         HitMissPredictor *hmp_, LeftRightPredictor *lrp_)
    : IqBase(params_, scoreboard_, fu_, "iq"),
      chains(params_.maxChains), hmp(hmp_), lrp(lrp_)
{
    SCIQ_ASSERT(params.numEntries % params.segmentSize == 0,
                "IQ size %u not a multiple of segment size %u",
                params.numEntries, params.segmentSize);
    const unsigned n = params.numEntries / params.segmentSize;
    SCIQ_ASSERT(n >= 1, "need at least one segment");
    segments.resize(n);
    freePrevCycle.assign(n, params.segmentSize);
    if (params.maxChains > 0)
        chainStates.resize(static_cast<std::size_t>(params.maxChains));

    SCIQ_ASSERT(!params.useHmp || hmp != nullptr,
                "useHmp set but no hit/miss predictor supplied");
    SCIQ_ASSERT(!params.useLrp || lrp != nullptr,
                "useLrp set but no left/right predictor supplied");

    statsGroup.addScalar("chains_created", &chainsCreated,
                         "chain heads allocated");
    statsGroup.addScalar("heads_from_loads", &headsFromLoads,
                         "chains created for load instructions");
    statsGroup.addScalar("two_outstanding", &twoOutstanding,
                         "insts with two pending operands in diff chains");
    statsGroup.addScalar("chain_stalls", &chainStalls,
                         "dispatch stalls due to exhausted chain wires");
    statsGroup.addScalar("promotions", &promotions,
                         "segment-to-segment promotions");
    statsGroup.addScalar("pushdown_promotions", &pushdownPromotions,
                         "promotions forced by the pushdown mechanism");
    statsGroup.addScalar("deadlock_cycles", &deadlockCycles,
                         "cycles with the deadlock condition asserted");
    statsGroup.addScalar("deadlock_recoveries", &deadlockRecoveries,
                         "deadlock recovery actions performed");
    statsGroup.addAverage("chains_in_use", &chainsInUseAvg,
                          "chains allocated, sampled per cycle");
    statsGroup.addAverage("seg0_occupancy", &seg0Occupancy,
                          "instructions in segment 0 per cycle");
    statsGroup.addAverage("seg0_ready", &seg0Ready,
                          "ready instructions in segment 0 per cycle");
    statsGroup.addAverage("dispatch_segment", &dispatchSegment,
                          "segment instructions dispatch into (bypass)");
    statsGroup.addScalar("resize_grows", &resizeGrows,
                         "segments re-enabled by dynamic resizing");
    statsGroup.addScalar("resize_shrinks", &resizeShrinks,
                         "segments gated off by dynamic resizing");
    statsGroup.addScalar("segment_cycles_active", &segmentCyclesActive,
                         "sum over cycles of powered segments");
    statsGroup.addAverage("active_segments", &activeSegmentsAvg,
                          "powered segments per cycle");
    statsGroup.addScalar("log_peak", &logPeak,
                         "peak per-chain signal-log length");
    statsGroup.addScalar("dirty_segments", &dirtySegments,
                         "segments visited by the promotion pass");

    // With resizing off all segments are always powered; with it on we
    // start minimal and grow under dispatch pressure.
    activeSegments = params.dynamicResize ? 1 : n;

    eligCount.assign(n, 0);
    regCdPos.fill(-1);
    regSubPos.fill(-1);
    regSubChain.fill(kNoChain);

    const std::size_t seg_words = (n + 63) / 64;
    eligSegW.assign(seg_words, 0);
    nearFullW.assign(seg_words, 0);
    roomyW.assign(seg_words, 0);
    cdCountSeg.assign(n, 0);
    chainHot.resize(chainStates.size());
    if (soa()) {
        const unsigned cap = params.segmentSize;
        const std::size_t slot_words = (cap + 63) / 64;
        lanes.resize(n);
        for (SegmentLanes &L : lanes) {
            for (int m = 0; m < 2; ++m) {
                L.delay[m].assign(cap, 0);
                L.chain[m].assign(cap, kNoChain);
                L.gen[m].assign(cap, 0);
                L.applied[m].assign(cap, 0);
                L.headSeg[m].assign(cap, 0);
                L.flags[m].assign(cap, 0);
                L.subIdx[m].assign(cap, -1);
                L.src[m].assign(cap, kInvalidReg);
                L.cdBits[m].assign(slot_words, 0);
            }
            L.memCount.assign(cap, 0);
            L.seq.assign(cap, 0);
            L.occBits.assign(slot_words, 0);
            L.eligBits.assign(slot_words, 0);
            L.slotAt.reserve(cap);
        }
        memoStamp.assign(n, 0);
        memoEnd.assign(n, 0);
    }
    // Seed the word masks with the empty-segment free counts (the
    // legacy masks were lazily initialised on first size change, which
    // is equivalent: promotion rounds over empty segments are no-ops).
    for (unsigned k = 0; k < n; ++k)
        onSegSizeChanged(k);
}

void
SegmentedIq::SignalRing::grow()
{
    const std::size_t old_cap = buf.size();
    const std::size_t new_cap = old_cap ? old_cap * 2 : 8;
    std::vector<LoggedSignal> nb(new_cap);
    for (std::size_t i = 0; i < count; ++i)
        nb[i] = buf[(head + i) & (old_cap - 1)];
    buf = std::move(nb);
    head = 0;
}

std::size_t
SegmentedIq::occupancy() const
{
    return totalOcc;
}

SegmentedIq::ChainState &
SegmentedIq::stateOf(ChainId id)
{
    auto idx = static_cast<std::size_t>(id);
    if (idx >= chainStates.size()) {
        chainStates.resize(idx + 1);
        chainHot.resize(idx + 1);
    }
    return chainStates[idx];
}

const SegmentedIq::ChainState &
SegmentedIq::stateOf(ChainId id) const
{
    return const_cast<SegmentedIq *>(this)->stateOf(id);
}

bool
SegmentedIq::entryAvailable(const RegInfoEntry &e)
{
    if (!e.pending)
        return true;
    return e.selfTimed && !e.suspended && e.latency <= 0;
}

unsigned
SegmentedIq::predictedLatency(const DynInst &inst) const
{
    if (inst.isLoad())
        return params.predictedLoadLatency;
    return fu.latency(inst.opClass());
}

SegmentedIq::Plan
SegmentedIq::computePlan(const DynInstPtr &inst, bool counting) const
{
    Plan plan;
    ++work.planCalls;

    // Collect pending-source memberships from the register info table,
    // with head position/self-timed status read from the (compact)
    // per-chain-wire state.
    const auto srcs = inst->staticInst.srcRegs();
    const bool is_store = inst->isStore();
    ChainMembership mem[2];
    int src_of[2] = {-1, -1};
    int n = 0;
    for (int i = 0; i < 2; ++i) {
        RegIndex r = srcs[i];
        if (r == kInvalidReg)
            continue;
        if (is_store && i == 1)
            continue;  // store data does not gate address generation
        const RegInfoEntry &e = regInfo[r];
        if (entryAvailable(e))
            continue;
        // A chain freed since this entry was written means its head
        // wrote back long ago; the entry self-times to completion, so
        // keep it only while its countdown is still pending (handled
        // by entryAvailable); with a stale generation the wire carries
        // a different chain, so fall back to a pure countdown.
        ChainMembership m;
        m.chain = e.chain;
        m.gen = e.gen;
        if (e.chain != kNoChain && soa()) {
            // SoA engine: the 16-byte hot mirror holds exactly the
            // scalars this path reads (audited against ChainState).
            const ChainHot &ch = chainHot[static_cast<std::size_t>(e.chain)];
            if (ch.gen != e.gen) {
                // Wire reused: head long gone, value effectively ready.
                continue;
            }
            m.appliedSeq = ch.seqCounter;
            m.headSegment = ch.headSegment;
            m.selfTimed = ch.selfTimed != 0;
            m.suspended = ch.suspended != 0;
            m.delay = ch.selfTimed ? e.latency
                                   : 2 * ch.headSegment + e.latency;
        } else if (e.chain != kNoChain) {
            const ChainState &cs = stateOf(e.chain);
            if (cs.gen != e.gen) {
                // Wire reused: head long gone, value effectively ready.
                continue;
            }
            m.appliedSeq = cs.seqCounter;
            m.headSegment = cs.headSegment;
            m.selfTimed = cs.selfTimed;
            m.suspended = cs.suspended;
            m.delay = cs.selfTimed ? e.latency
                                   : 2 * cs.headSegment + e.latency;
        } else {
            m.selfTimed = true;
            m.suspended = false;
            m.delay = e.latency;
        }
        src_of[n] = i;
        mem[n++] = m;
    }

    // Merge two memberships of the same chain (track the later one),
    // and two pure-countdown memberships (the max delay dominates).
    const bool same_chain = n == 2 && mem[0].chain != kNoChain &&
                            mem[0].chain == mem[1].chain &&
                            mem[0].gen == mem[1].gen;
    const bool both_countdown =
        n == 2 && mem[0].chain == kNoChain && mem[1].chain == kNoChain;
    if (same_chain || both_countdown) {
        if (mem[1].delay > mem[0].delay) {
            mem[0] = mem[1];
            src_of[0] = src_of[1];
        }
        n = 1;
    }

    const bool two_real_chains = n == 2 && mem[0].chain != kNoChain &&
                                 mem[1].chain != kNoChain;
    if (two_real_chains)
        plan.hadTwoOutstanding = true;

    if (n == 2 && params.useLrp) {
        // Follow only the operand predicted to arrive later (4.3).
        plan.usedLrp = true;
        bool left = counting ? lrp->predictLeftCritical(inst->pc)
                             : lrp->peekLeftCritical(inst->pc);
        plan.lrpPickedLeft = left;
        int keep = -1;
        for (int k = 0; k < 2; ++k) {
            if ((left && src_of[k] == 0) || (!left && src_of[k] == 1))
                keep = k;
        }
        // If the predicted operand is not pending, keep the pending one.
        if (keep < 0)
            keep = 0;
        mem[0] = mem[keep];
        n = 1;
    }

    plan.numMemberships = n;
    for (int k = 0; k < n; ++k)
        plan.memberships[k] = mem[k];

    // Chain-head creation policy (3.4).
    if (inst->isLoad()) {
        bool predicted_hit = false;
        if (params.useHmp) {
            plan.usedHmp = true;
            predicted_hit = counting ? hmp->predictHit(inst->pc)
                                     : hmp->peekHit(inst->pc);
            plan.hmpPredictedHit = predicted_hit;
        }
        if (!predicted_hit) {
            plan.needNewChain = true;
            plan.isLoadHead = true;
        }
    } else if (two_real_chains && !params.useLrp &&
               inst->staticInst.dstReg() != kInvalidReg) {
        // A two-chain instruction must head a new chain so that its
        // dependents never need to follow more than two chains.
        plan.needNewChain = true;
    }

    return plan;
}

int
SegmentedIq::targetSegment() const
{
    // Dispatch is confined to the powered segments.
    const int n = static_cast<int>(activeSegments);
    if (!params.enableBypass) {
        return segments[n - 1].size() < params.segmentSize ? n - 1 : -1;
    }
    int highest = -1;
    for (int k = n - 1; k >= 0; --k) {
        if (!segments[k].empty()) {
            highest = k;
            break;
        }
    }
    if (highest < 0)
        return 0;  // entire queue empty: straight to the issue buffer
    if (segments[highest].size() < params.segmentSize)
        return highest;
    if (highest + 1 < n)
        return highest + 1;
    return -1;  // top (active) segment full
}

bool
SegmentedIq::fastPlanEligible(const DynInst &inst) const
{
    // Identity shortcut (SoA engine): a non-load whose gating arch
    // sources are all available in the table gets the default Plan --
    // computePlan would find no memberships, create no chain and read
    // no predictor, so skipping it is observable-equivalent.
    if (!soa() || inst.isLoad())
        return false;
    const auto srcs = inst.staticInst.srcRegs();
    const bool is_store = inst.isStore();
    for (int i = 0; i < 2; ++i) {
        const RegIndex r = srcs[i];
        if (r == kInvalidReg)
            continue;
        if (is_store && i == 1)
            continue;
        if (!((regAvail >> r) & 1))
            return false;
    }
    return true;
}

bool
SegmentedIq::canInsert(const DynInstPtr &inst)
{
    ScopedTimer timer(profiling, prof.dispatchSec);
    if (targetSegment() < 0) {
        dispatchStallsFull.inc();
        return false;
    }
    if (fastPlanEligible(*inst)) {
        work.laneWordsTouched += 1;
        planMemo = Plan{};
        planMemoSeq = inst->seq;
        return true;
    }
    Plan plan = computePlan(inst, false);
    planMemo = plan;
    planMemoSeq = inst->seq;
    if (plan.needNewChain && !chains.available()) {
        chainStalls.inc();
        return false;
    }
    return true;
}

void
SegmentedIq::insertSorted(std::vector<DynInstPtr> &seg,
                          const DynInstPtr &inst)
{
    auto pos = std::lower_bound(seg.begin(), seg.end(), inst,
                                [](const DynInstPtr &a, const DynInstPtr &b) {
                                    return a->seq < b->seq;
                                });
    seg.insert(pos, inst);
}

std::size_t
SegmentedIq::insertSortedPos(std::vector<DynInstPtr> &seg,
                             const DynInstPtr &inst)
{
    auto pos = std::lower_bound(seg.begin(), seg.end(), inst,
                                [](const DynInstPtr &a, const DynInstPtr &b) {
                                    return a->seq < b->seq;
                                });
    const std::size_t idx = static_cast<std::size_t>(pos - seg.begin());
    seg.insert(pos, inst);
    return idx;
}

void
SegmentedIq::insert(const DynInstPtr &inst, Cycle)
{
    ScopedTimer timer(profiling, prof.dispatchSec);
    const int target = targetSegment();
    SCIQ_ASSERT(target >= 0, "insert into full segmented IQ");

    Plan plan;
    if (planMemoSeq == inst->seq) {
        plan = planMemo;
        if (plan.usedLrp)
            lrp->predictLeftCritical(inst->pc);
        if (plan.usedHmp)
            hmp->predictHit(inst->pc);
    } else {
        plan = computePlan(inst, true);
    }
    planMemoSeq = kInvalidSeqNum;
    SCIQ_ASSERT(!plan.needNewChain || chains.available(),
                "insert without a free chain");

    inst->hadTwoOutstanding = plan.hadTwoOutstanding;
    inst->lrpUsed = plan.usedLrp;
    inst->lrpPredictedLeft = plan.lrpPickedLeft;
    inst->hmpUsed = plan.usedHmp;
    inst->hmpPredictedHit = plan.hmpPredictedHit;
    if (plan.hadTwoOutstanding)
        twoOutstanding.inc();

    auto &seg_state = inst->seg;
    seg_state.numMemberships = plan.numMemberships;
    for (int k = 0; k < plan.numMemberships; ++k)
        seg_state.memberships[k] = plan.memberships[k];

    if (plan.needNewChain) {
        auto [id, gen] = chains.alloc();
        seg_state.headedChain = id;
        seg_state.headedGen = gen;
        seg_state.chainReleased = false;
        ChainState &cs = stateOf(id);
        cs.gen = gen;
        cs.headSegment = target;
        cs.selfTimed = false;
        cs.suspended = false;
        cs.seqCounter = 0;
        cs.log.clear();
        cs.soaVisFloor.clear();  // seq numbering restarts with the wire
        // Subscriber lists are NOT cleared on wire reuse: stale-
        // generation listeners are skipped by delivery and drop off
        // through their own lifecycle.  If the cleared log left the
        // chain on the active list, the tick-5 prune sweep retires it.
        syncChainHot(id);
        chainsCreated.inc();
        if (plan.isLoadHead)
            headsFromLoads.inc();
    }

    seg_state.segment = target;
    if (soa()) {
        soaInsert(inst, target, plan);
    } else {
        insertSorted(segments[target], inst);
        ++totalOcc;
        onSegSizeChanged(static_cast<unsigned>(target));
        for (int k = 0; k < seg_state.numMemberships; ++k) {
            subscribeMember(inst.get(), k);
            subSyncMemberCd(inst.get(), k);
        }
        refreshElig(inst.get());
    }
    instsInserted.inc();
    dispatchSegment.sample(static_cast<double>(target));

    // Update the register information table for the destination.
    RegIndex dst = inst->staticInst.dstReg();
    if (dst != kInvalidReg) {
        undoLog.push_back({inst->seq, dst, regInfo[dst]});
        RegInfoEntry e;
        e.pending = true;
        const int exec_lat = static_cast<int>(predictedLatency(*inst));
        if (seg_state.headedChain != kNoChain) {
            e.chain = seg_state.headedChain;
            e.gen = seg_state.headedGen;
            e.appliedSeq = 0;
            e.latency = exec_lat;
            e.headSeg = target;
            e.selfTimed = false;
        } else {
            // Prefer to express the destination relative to a real
            // chain among the memberships (the latest one).
            int best = -1;
            for (int k = 0; k < plan.numMemberships; ++k) {
                if (plan.memberships[k].chain == kNoChain)
                    continue;
                if (best < 0 || plan.memberships[k].delay >
                                    plan.memberships[best].delay) {
                    best = k;
                }
            }
            if (best >= 0) {
                const ChainMembership &m = plan.memberships[best];
                e.chain = m.chain;
                e.gen = m.gen;
                e.appliedSeq = m.appliedSeq;
                e.headSeg = m.headSegment;
                e.selfTimed = m.selfTimed;
                e.suspended = m.suspended;
                e.latency = (m.selfTimed
                                 ? m.delay
                                 : m.delay - 2 * m.headSegment) + exec_lat;
            } else {
                // No real chains: pure countdown from now.
                int longest = 0;
                for (int k = 0; k < plan.numMemberships; ++k)
                    longest = std::max(longest,
                                       plan.memberships[k].delay);
                e.chain = kNoChain;
                e.selfTimed = true;
                e.latency = longest + exec_lat;
            }
        }
        unsubscribeReg(dst);
        regInfo[dst] = e;
        if (e.chain != kNoChain)
            subscribeReg(dst);
        syncRegCd(dst);
    }
}

int
SegmentedIq::effectiveDelay(const DynInst &inst) const
{
    int d = 0;
    for (int k = 0; k < inst.seg.numMemberships; ++k)
        d = std::max(d, inst.seg.memberships[k].delay);
    return d;
}

// --- Incremental-index maintenance (section 11) --------------------------

void
SegmentedIq::subscribeMember(DynInst *inst, int slot)
{
    ChainMembership &m = inst->seg.memberships[slot];
    if (m.chain == kNoChain)
        return;
    ChainState &cs = stateOf(m.chain);
    m.subIdx = static_cast<int>(cs.memberSubs.size());
    cs.memberSubs.push_back({inst, slot});
}

void
SegmentedIq::unsubscribeMember(DynInst *inst, int slot)
{
    ChainMembership &m = inst->seg.memberships[slot];
    if (m.subIdx < 0)
        return;
    ChainState &cs = stateOf(m.chain);
    const int i = m.subIdx;
    m.subIdx = -1;
    const MemberSub last = cs.memberSubs.back();
    cs.memberSubs[i] = last;
    cs.memberSubs.pop_back();
    if (static_cast<std::size_t>(i) < cs.memberSubs.size())
        last.inst->seg.memberships[last.slot].subIdx = i;
}

void
SegmentedIq::subSyncMemberCd(DynInst *inst, int slot)
{
    ChainMembership &m = inst->seg.memberships[slot];
    const bool want = m.selfTimed && !m.suspended && m.delay > 0;
    if (want && m.cdIdx < 0) {
        m.cdIdx = static_cast<int>(memberCountdown.size());
        memberCountdown.push_back({inst, slot});
    } else if (!want && m.cdIdx >= 0) {
        removeMemberCd(inst, slot);
    }
}

void
SegmentedIq::removeMemberCd(DynInst *inst, int slot)
{
    ChainMembership &m = inst->seg.memberships[slot];
    const int i = m.cdIdx;
    m.cdIdx = -1;
    const CdRef last = memberCountdown.back();
    memberCountdown[i] = last;
    memberCountdown.pop_back();
    if (static_cast<std::size_t>(i) < memberCountdown.size())
        last.inst->seg.memberships[last.slot].cdIdx = i;
}

void
SegmentedIq::subscribeReg(RegIndex r)
{
    ChainState &cs = stateOf(regInfo[r].chain);
    regSubChain[r] = regInfo[r].chain;
    regSubPos[r] = static_cast<int>(cs.regSubs.size());
    cs.regSubs.push_back(r);
}

void
SegmentedIq::unsubscribeReg(RegIndex r)
{
    if (regSubChain[r] == kNoChain)
        return;
    ChainState &cs = stateOf(regSubChain[r]);
    const int i = regSubPos[r];
    regSubChain[r] = kNoChain;
    regSubPos[r] = -1;
    const RegIndex last = cs.regSubs.back();
    cs.regSubs[i] = last;
    cs.regSubs.pop_back();
    if (static_cast<std::size_t>(i) < cs.regSubs.size())
        regSubPos[last] = i;
}

void
SegmentedIq::syncRegCd(RegIndex r)
{
    const RegInfoEntry &e = regInfo[r];
    const bool want =
        e.pending && e.selfTimed && !e.suspended && e.latency > 0;
    const int i = regCdPos[r];
    if (want && i < 0) {
        regCdPos[r] = static_cast<int>(regCountdown.size());
        regCountdown.push_back(r);
    } else if (!want && i >= 0) {
        regCdPos[r] = -1;
        const RegIndex last = regCountdown.back();
        regCountdown[i] = last;
        regCountdown.pop_back();
        if (static_cast<std::size_t>(i) < regCountdown.size())
            regCdPos[last] = i;
    }
    // Every table mutation funnels through here, so the availability
    // mask (fast-plan path) can be maintained in the same place.  A
    // stale-generation chain entry keeps its bit clear until delivery
    // or overwrite catches up -- conservative, never wrong.
    const std::uint64_t abit = 1ULL << r;
    if (entryAvailable(e))
        regAvail |= abit;
    else
        regAvail &= ~abit;
}

void
SegmentedIq::syncChainHot(ChainId id)
{
    const ChainState &cs = chainStates[static_cast<std::size_t>(id)];
    ChainHot &ch = chainHot[static_cast<std::size_t>(id)];
    ch.seqCounter = cs.seqCounter;
    ch.gen = cs.gen;
    ch.headSegment = static_cast<std::int16_t>(cs.headSegment);
    ch.selfTimed = cs.selfTimed ? 1 : 0;
    ch.suspended = cs.suspended ? 1 : 0;
}

void
SegmentedIq::eligCountInc(unsigned k)
{
    if (eligCount[k]++ == 0) {
        if (k < 64)
            eligMask |= 1ULL << k;
        eligSegW[k >> 6] |= 1ULL << (k & 63);
    }
}

void
SegmentedIq::eligCountDec(unsigned k)
{
    if (--eligCount[k] == 0) {
        if (k < 64)
            eligMask &= ~(1ULL << k);
        eligSegW[k >> 6] &= ~(1ULL << (k & 63));
    }
}

void
SegmentedIq::refreshElig(DynInst *inst)
{
    const int k = inst->seg.segment;
    const bool now = k >= 1 && effectiveDelay(*inst) < threshold(k - 1);
    if (now == inst->seg.promoEligible)
        return;
    inst->seg.promoEligible = now;
    if (now)
        eligCountInc(static_cast<unsigned>(k));
    else
        eligCountDec(static_cast<unsigned>(k));
}

void
SegmentedIq::leaveElig(DynInst *inst)
{
    if (!inst->seg.promoEligible)
        return;
    inst->seg.promoEligible = false;
    eligCountDec(static_cast<unsigned>(inst->seg.segment));
}

void
SegmentedIq::onSegSizeChanged(unsigned k)
{
    const std::size_t free_now = params.segmentSize - segments[k].size();
    const std::uint64_t wbit = 1ULL << (k & 63);
    if (free_now < params.issueWidth)
        nearFullW[k >> 6] |= wbit;
    else
        nearFullW[k >> 6] &= ~wbit;
    if (free_now * 2 > 3 * static_cast<std::size_t>(params.issueWidth))
        roomyW[k >> 6] |= wbit;
    else
        roomyW[k >> 6] &= ~wbit;
    if (k >= 64)
        return;
    if (free_now < params.issueWidth)
        nearFullMask |= 1ULL << k;
    else
        nearFullMask &= ~(1ULL << k);
}

void
SegmentedIq::onLeaveQueue(const DynInstPtr &inst)
{
    DynInst *p = inst.get();
    for (int s = 0; s < p->seg.numMemberships; ++s) {
        unsubscribeMember(p, s);
        if (p->seg.memberships[s].cdIdx >= 0)
            removeMemberCd(p, s);
    }
    leaveElig(p);
    --totalOcc;
}

void
SegmentedIq::emitSignal(const DynInstPtr &head, SignalKind kind,
                        int origin_segment, Cycle cycle)
{
    if (head->seg.headedChain == kNoChain || head->seg.chainReleased)
        return;
    ChainState &cs = stateOf(head->seg.headedChain);
    if (cs.gen != head->seg.headedGen)
        return;

    switch (kind) {
      case SignalKind::Assert:
        if (cs.headSegment > 0)
            cs.headSegment -= 1;
        else
            cs.selfTimed = true;
        break;
      case SignalKind::Suspend:
        cs.suspended = true;
        break;
      case SignalKind::Resume:
        cs.suspended = false;
        break;
    }
    cs.log.push_back(LoggedSignal{++cs.seqCounter, cycle, origin_segment,
                                  kind});
    syncChainHot(head->seg.headedChain);
    if (!cs.active) {
        cs.active = true;
        activeChains.push_back(head->seg.headedChain);
    }
    if (static_cast<double>(cs.log.size()) > logPeak.value())
        logPeak.set(static_cast<double>(cs.log.size()));
}

void
SegmentedIq::deliverToMembership(ChainMembership &m, int segment, Cycle now)
{
    work.laneWordsTouched += 4;  // DynInst deref + one ChainMembership
    if (m.chain == kNoChain)
        return;
    const ChainState &cs = stateOf(m.chain);
    if (cs.gen != m.gen)
        return;  // chain wire reused; all relevant signals were seen
    for (std::size_t i = 0; i < cs.log.size(); ++i) {
        const LoggedSignal &sig = cs.log.at(i);
        ++work.signalDeliveries;
        if (sig.seq <= m.appliedSeq)
            continue;
        const Cycle lag = segment > sig.originSegment
                              ? static_cast<Cycle>(segment -
                                                   sig.originSegment)
                              : 0;
        if (now < sig.cycle + lag)
            break;  // not yet visible here; later signals even less so
        m.appliedSeq = sig.seq;
        switch (sig.kind) {
          case SignalKind::Assert:
            if (m.headSegment > 0) {
                m.headSegment -= 1;
                m.delay = std::max(0, m.delay - 2);
            } else {
                m.selfTimed = true;
            }
            break;
          case SignalKind::Suspend:
            m.suspended = true;
            break;
          case SignalKind::Resume:
            m.suspended = false;
            break;
        }
    }
}

void
SegmentedIq::deliverToRegEntry(RegInfoEntry &e, const ChainState &cs,
                               Cycle now)
{
    work.laneWordsTouched += 3;  // one RegInfoEntry
    if (!e.pending || e.chain == kNoChain)
        return;
    if (cs.gen != e.gen)
        return;
    const int top = static_cast<int>(segments.size()) - 1;
    for (std::size_t i = 0; i < cs.log.size(); ++i) {
        const LoggedSignal &sig = cs.log.at(i);
        ++work.signalDeliveries;
        if (sig.seq <= e.appliedSeq)
            continue;
        const Cycle lag = top > sig.originSegment
                              ? static_cast<Cycle>(top -
                                                   sig.originSegment)
                              : 0;
        if (now < sig.cycle + lag)
            break;
        e.appliedSeq = sig.seq;
        switch (sig.kind) {
          case SignalKind::Assert:
            if (e.headSeg > 0)
                e.headSeg -= 1;
            else
                e.selfTimed = true;
            break;
          case SignalKind::Suspend:
            e.suspended = true;
            break;
          case SignalKind::Resume:
            e.suspended = false;
            break;
        }
    }
}

void
SegmentedIq::issueSelect(Cycle cycle, const TryIssue &try_issue)
{
    ScopedTimer timer(profiling, prof.issueSec);
    if (soa()) {
        soaIssueSelect(cycle, try_issue);
        return;
    }
    // Single pass: count ready entries for the stats sample and issue
    // oldest-first in the same sweep.  Issuing never changes another
    // entry's scoreboard readiness, so the fused count equals the
    // pre-issue count the stats used to take in a separate scan.
    auto &seg0 = segments[0];
    const std::size_t occ0 = seg0.size();
    unsigned ready = 0;
    unsigned issued = 0;
    for (auto it = seg0.begin(); it != seg0.end();) {
        // No refcounted copy on the scan path: the pointer is only
        // pinned (below) for the entry actually issued and erased.
        work.laneWordsTouched += 3;  // DynInstPtr deref + operand fields
        const bool r = operandsReady(**it);
        if (r)
            ++ready;
        if (r && issued < params.issueWidth && try_issue(*it)) {
            DynInstPtr inst = *it;
            instsIssued.inc();
            ++issued;
            ++issuedThisCycle;
            emitSignal(inst, SignalKind::Assert, 0, cycle);
            onLeaveQueue(inst);
            it = seg0.erase(it);
        } else {
            ++it;
        }
    }
    seg0Ready.sample(static_cast<double>(ready));
    seg0Occupancy.sample(static_cast<double>(occ0));
    if (issued > 0)
        onSegSizeChanged(0);
}

void
SegmentedIq::moveInst(const DynInstPtr &inst, unsigned from, unsigned to,
                      Cycle cycle)
{
    auto &src = segments[from];
    auto it = std::find(src.begin(), src.end(), inst);
    SCIQ_ASSERT(it != src.end(), "moveInst: inst not in segment %u", from);
    work.laneWordsTouched += 6;  // erase/insert shuffles + index upkeep
    leaveElig(inst.get());
    src.erase(it);
    onSegSizeChanged(from);
    inst->seg.segment = static_cast<int>(to);
    insertSorted(segments[to], inst);
    onSegSizeChanged(to);
    refreshElig(inst.get());

    // A promoting chain head asserts its wire in the segment it leaves.
    emitSignal(inst, SignalKind::Assert, static_cast<int>(from), cycle);
}

void
SegmentedIq::setAuditTracking(bool on)
{
    auditTracking = on;
    const std::size_t n = segments.size();
    freePrevSnapshot.assign(on ? n : 0, params.segmentSize);
    promotedInto.assign(on ? n : 0, 0);
}

void
SegmentedIq::dumpSegment(std::ostream &os, unsigned k) const
{
    const auto &seg = segments[k];
    os << "segment " << k << ": " << seg.size() << "/" << params.segmentSize
       << " entries, admit threshold " << threshold(k) << "\n";
    for (const auto &inst : seg) {
        os << "  seq=" << inst->seq << " pc=" << std::hex << inst->pc
           << std::dec << " seg=" << inst->seg.segment;
        if (inst->seg.headedChain != kNoChain) {
            os << " heads=" << inst->seg.headedChain
               << (inst->seg.chainReleased ? "(released)" : "");
        }
        for (int m = 0; m < inst->seg.numMemberships; ++m) {
            const ChainMembership &mem = inst->seg.memberships[m];
            os << " [chain=" << mem.chain << " delay=" << mem.delay
               << " headSeg=" << mem.headSegment
               << (mem.selfTimed ? " selfTimed" : "")
               << (mem.suspended ? " suspended" : "")
               << " applied=" << mem.appliedSeq << "]";
        }
        os << "\n";
    }
}

void
SegmentedIq::dumpState(std::ostream &os) const
{
    os << "segmented iq: occ=" << totalOcc << "/" << params.numEntries
       << " chains=" << chains.inUse() << "(peak " << chains.peak() << ")"
       << " activeSegments=" << activeSegments << "/" << segments.size()
       << " deadlockCycles="
       << static_cast<std::uint64_t>(deadlockCycles.value())
       << " deadlockRecoveries="
       << static_cast<std::uint64_t>(deadlockRecoveries.value()) << "\n";
    for (unsigned k = 0; k < segments.size(); ++k)
        dumpSegment(os, k);
}

void
SegmentedIq::tick(Cycle cycle, bool core_busy)
{
    const unsigned n = static_cast<unsigned>(segments.size());

    if (auditTracking) {
        freePrevSnapshot = freePrevCycle;
        promotedInto.assign(n, 0);
    }

    // 0. Release chain wires whose drain delay has matured.
    while (!chainDrainQueue.empty() &&
           chainDrainQueue.front().second <= cycle) {
        chains.free(chainDrainQueue.front().first);
        chainDrainQueue.pop_front();
    }

    // 1-3. Promotion, signal delivery, self-timed countdowns -- the
    //    per-cycle scheduler substages, dispatched to the selected
    //    engine (bit-identical architected behaviour either way).
    promotedThisCycle = 0;
    {
        ScopedTimer t(profiling, prof.promoteSec);
        if (soa())
            soaTickPromote(cycle);
        else
            aosTickPromote(cycle);
    }
    {
        ScopedTimer t(profiling, prof.deliverSec);
        if (soa())
            soaTickDeliver(cycle);
        else
            aosTickDeliver(cycle);
    }
    {
        ScopedTimer t(profiling, prof.countdownSec);
        if (soa())
            soaTickCountdown();
        else
            aosTickCountdown();
    }

    // 4. Deadlock detection and recovery (section 4.5).
    const std::size_t occ = totalOcc;
    if (occ > 0 && issuedThisCycle == 0 && promotedThisCycle == 0 &&
        !core_busy) {
        deadlockCycles.inc();
        if (soa())
            soaRunDeadlockRecovery(cycle);
        else
            runDeadlockRecovery(cycle);
    }
    issuedThisCycle = 0;

    // 5. Previous-cycle free counts for the next promotion round, and
    //    signal-log pruning (everything older than the wire pipeline
    //    depth has been seen everywhere).
    for (unsigned k = 0; k < n; ++k) {
        freePrevCycle[k] = static_cast<unsigned>(params.segmentSize -
                                                 segments[k].size());
    }
    if (cycle > n + 1) {
        const Cycle horizon = cycle - n - 1;
        for (std::size_t c = 0; c < activeChains.size();) {
            ChainState &cs =
                chainStates[static_cast<std::size_t>(activeChains[c])];
            while (!cs.log.empty() && cs.log.front().cycle < horizon)
                cs.log.pop_front();
            if (cs.log.empty()) {
                cs.active = false;
                activeChains[c] = activeChains.back();
                activeChains.pop_back();
            } else {
                ++c;
            }
        }
    }

    // 6. Dynamic segment resizing (paper section 7): gate segments by
    //    occupancy, shrinking only when the segment being turned off
    //    is already empty so no instruction is orphaned.
    if (params.dynamicResize && cycle >= nextResizeCheck) {
        nextResizeCheck = cycle + params.resizeInterval;
        const double active_cap =
            static_cast<double>(activeSegments) * params.segmentSize;
        if (activeSegments < n &&
            static_cast<double>(occ) > params.resizeGrowOcc * active_cap) {
            ++activeSegments;
            resizeGrows.inc();
        } else if (activeSegments > 1 &&
                   segments[activeSegments - 1].empty() &&
                   static_cast<double>(occ) <
                       params.resizeShrinkOcc *
                           static_cast<double>(activeSegments - 1) *
                           params.segmentSize) {
            --activeSegments;
            resizeShrinks.inc();
        }
    }
    segmentCyclesActive.inc(static_cast<double>(activeSegments));
    activeSegmentsAvg.sample(static_cast<double>(activeSegments));

    occupancyAvg.sample(static_cast<double>(occ));
    chainsInUseAvg.sample(static_cast<double>(chains.inUse()));
    if (profiling)
        ++prof.ticks;
}

void
SegmentedIq::aosTickPromote(Cycle cycle)
{
    // Promotion, per segment boundary, oldest-eligible first, limited
    // by inter-segment bandwidth and by the *previous* cycle's free
    // count in the destination (section 3.1).  Only dirty segments --
    // ones with tracked promotion candidates or pushdown pressure --
    // are visited; a segment with neither has empty eligible/pushdown
    // lists and its round is a no-op.
    const unsigned n = static_cast<unsigned>(segments.size());
    unsigned dirty = 0;
    const bool any_candidates =
        n > 64 || eligMask != 0 ||
        (params.enablePushdown && nearFullMask != 0);
    for (unsigned k = 1; any_candidates && k < n; ++k) {
        auto &seg = segments[k];
        if (seg.empty())
            continue;
        ++work.segmentsScanned;
        work.laneWordsTouched += 2;  // size/free probes

        bool pushdown_possible = false;
        const unsigned iw = params.issueWidth;
        const std::size_t free_here = params.segmentSize - seg.size();
        const std::size_t free_below =
            params.segmentSize - segments[k - 1].size();
        if (params.enablePushdown) {
            pushdown_possible =
                free_here < iw &&
                free_below * 2 > 3 * iw;  // > 1.5*IW without floats
        }
        if (eligCount[k] == 0 && !pushdown_possible)
            continue;
        ++dirty;

        const int thresh = threshold(k - 1);
        std::vector<DynInstPtr> &eligible = scratchElig;
        std::vector<DynInstPtr> &pushdown = scratchPush;
        eligible.clear();
        pushdown.clear();
        for (auto &inst : seg) {
            work.laneWordsTouched += 3;  // ptr deref + membership delays
            if (effectiveDelay(*inst) < thresh)
                eligible.push_back(inst);
        }

        if (pushdown_possible) {
            for (auto &inst : seg) {
                if (pushdown.size() >= iw)
                    break;
                work.laneWordsTouched += 3;
                if (effectiveDelay(*inst) >= thresh)
                    pushdown.push_back(inst);
            }
        }

        unsigned budget = std::min<unsigned>(
            params.issueWidth,
            std::min<unsigned>(
                freePrevCycle[k - 1],
                static_cast<unsigned>(params.segmentSize -
                                      segments[k - 1].size())));
        if (params.auditInjectOverPromote) {
            // Test-only fault: drop the previous-cycle free bound and
            // fill whatever space the destination has *now*.
            budget = std::min<unsigned>(
                params.issueWidth,
                static_cast<unsigned>(params.segmentSize -
                                      segments[k - 1].size()));
        }

        for (auto &inst : eligible) {
            if (budget == 0)
                break;
            moveInst(inst, k, k - 1, cycle);
            promotions.inc();
            ++promotedThisCycle;
            if (auditTracking)
                ++promotedInto[k - 1];
            --budget;
        }
        for (auto &inst : pushdown) {
            if (budget == 0)
                break;
            moveInst(inst, k, k - 1, cycle);
            promotions.inc();
            pushdownPromotions.inc();
            ++promotedThisCycle;
            if (auditTracking)
                ++promotedInto[k - 1];
            --budget;
        }
        eligible.clear();
        pushdown.clear();
    }
    dirtySegments.inc(static_cast<double>(dirty));
}

void
SegmentedIq::aosTickDeliver(Cycle cycle)
{
    // Deliver chain-wire signals (including those generated by this
    // cycle's issues and promotions) with pipelined visibility.  Only
    // chains with in-flight signals can change listener state, and per
    // chain only its subscribers are walked; everything a full sweep
    // would touch beyond that is a guaranteed no-op (no-chain
    // membership, stale generation, or empty log).
    for (std::size_t c = 0; c < activeChains.size(); ++c) {
        const ChainId id = activeChains[c];
        ChainState &cs = chainStates[static_cast<std::size_t>(id)];
        if (cs.log.empty())
            continue;
        for (const MemberSub &sub : cs.memberSubs) {
            deliverToMembership(sub.inst->seg.memberships[sub.slot],
                                sub.inst->seg.segment, cycle);
            subSyncMemberCd(sub.inst, sub.slot);
            refreshElig(sub.inst);
        }
        for (RegIndex r : cs.regSubs) {
            deliverToRegEntry(regInfo[r], cs, cycle);
            syncRegCd(r);
        }
    }
}

void
SegmentedIq::aosTickCountdown()
{
    // Self-timed countdowns (members and table entries), walking the
    // explicit countdown lists.  List membership is exactly the old
    // sweep's predicate (selfTimed, not suspended, delay > 0), and
    // decrements of distinct entries commute, so any visit order
    // matches the sweep.  Removal swaps the back element into the
    // hole, so the index does not advance then.
    for (std::size_t i = 0; i < memberCountdown.size();) {
        const CdRef ref = memberCountdown[i];
        ChainMembership &mem = ref.inst->seg.memberships[ref.slot];
        work.laneWordsTouched += 3;
        mem.delay -= 1;
        refreshElig(ref.inst);
        if (mem.delay == 0)
            removeMemberCd(ref.inst, ref.slot);
        else
            ++i;
    }
    for (std::size_t i = 0; i < regCountdown.size();) {
        const RegIndex r = regCountdown[i];
        work.laneWordsTouched += 2;
        regInfo[r].latency -= 1;
        if (regInfo[r].latency == 0)
            syncRegCd(r);
        else
            ++i;
    }
}

void
SegmentedIq::runDeadlockRecovery(Cycle cycle)
{
    deadlockRecoveries.inc();
    const unsigned n = static_cast<unsigned>(segments.size());

    // If the issue buffer is full of non-ready instructions, recycle
    // its youngest back to the top segment (placed after the bottom-up
    // force promotions have guaranteed it a slot).
    DynInstPtr recycled;
    if (activeSegments > 1 && segments[0].size() >= params.segmentSize) {
        recycled = segments[0].back();
        leaveElig(recycled.get());
        segments[0].pop_back();
        onSegSizeChanged(0);
    }

    // Force every full segment to promote one instruction downward;
    // processing bottom-up guarantees the destination has a slot.
    for (unsigned k = 1; k < n; ++k) {
        if (segments[k].size() < params.segmentSize)
            continue;
        if (segments[k - 1].size() >= params.segmentSize)
            continue;  // cannot happen after bottom-up processing
        DynInstPtr oldest = segments[k].front();
        moveInst(oldest, k, k - 1, cycle);
        promotions.inc();
        ++promotedThisCycle;
    }

    // With nothing full, nothing promoted and nothing in flight, the
    // scheduler has stalled on stale delay values; nudge the oldest
    // instruction in the lowest non-empty segment downward so the
    // oldest ready instruction eventually reaches the issue buffer.
    if (promotedThisCycle == 0 && !recycled) {
        for (unsigned k = 1; k < n; ++k) {
            if (segments[k].empty())
                continue;
            if (segments[k - 1].size() < params.segmentSize) {
                DynInstPtr oldest = segments[k].front();
                moveInst(oldest, k, k - 1, cycle);
                promotions.inc();
                ++promotedThisCycle;
            }
            break;
        }
    }

    if (recycled) {
        const unsigned top = activeSegments - 1;
        recycled->seg.segment = static_cast<int>(top);
        if (recycled->seg.headedChain != kNoChain &&
            !recycled->seg.chainReleased) {
            ChainState &cs = stateOf(recycled->seg.headedChain);
            if (cs.gen == recycled->seg.headedGen) {
                cs.headSegment = static_cast<int>(top);
                syncChainHot(recycled->seg.headedChain);
            }
        }
        insertSorted(segments[top], recycled);
        onSegSizeChanged(top);
        refreshElig(recycled.get());
        SCIQ_ASSERT(segments[top].size() <= params.segmentSize,
                    "deadlock recovery overflowed the top segment");
    }
}

void
SegmentedIq::onLoadMiss(const DynInstPtr &inst, Cycle cycle)
{
    emitSignal(inst, SignalKind::Suspend, 0, cycle);
}

void
SegmentedIq::onLoadComplete(const DynInstPtr &inst, Cycle cycle)
{
    emitSignal(inst, SignalKind::Resume, 0, cycle);
}

void
SegmentedIq::releaseChain(const DynInstPtr &inst, Cycle cycle)
{
    if (inst->seg.headedChain == kNoChain || inst->seg.chainReleased)
        return;
    // Delay the wire's reuse until every in-flight signal has been
    // seen at the top of the queue.
    inst->seg.chainReleased = true;
    chainDrainQueue.emplace_back(inst->seg.headedChain,
                                 cycle + segments.size() + 2);
}

void
SegmentedIq::onWriteback(const DynInstPtr &inst, Cycle cycle)
{
    // Chains are deallocated when the head writes back (section 6.1).
    releaseChain(inst, cycle);
}

void
SegmentedIq::onCommit(const DynInstPtr &inst)
{
    while (!undoLog.empty() && undoLog.front().seq <= inst->seq)
        undoLog.pop_front();
}

void
SegmentedIq::onSquashInst(const DynInstPtr &inst)
{
    // Called youngest-first: table restores unwind in reverse order.
    while (!undoLog.empty() && undoLog.back().seq == inst->seq) {
        const RegIndex r = undoLog.back().archDst;
        unsubscribeReg(r);
        regInfo[r] = undoLog.back().prev;
        if (regInfo[r].pending && regInfo[r].chain != kNoChain)
            subscribeReg(r);
        syncRegCd(r);
        undoLog.pop_back();
    }
    releaseChain(inst, 0);
}

void
SegmentedIq::squash(SeqNum youngest_kept)
{
    if (soa()) {
        soaSquash(youngest_kept);
        return;
    }
    // Segments are seq-sorted, so the squashed set is a suffix.
    for (unsigned k = 0; k < segments.size(); ++k) {
        auto &seg = segments[k];
        auto pos = std::upper_bound(
            seg.begin(), seg.end(), youngest_kept,
            [](SeqNum s, const DynInstPtr &p) { return s < p->seq; });
        if (pos == seg.end())
            continue;
        for (auto it = pos; it != seg.end(); ++it)
            onLeaveQueue(*it);
        seg.erase(pos, seg.end());
        onSegSizeChanged(k);
    }
}

// --- Data-oriented engine (DESIGN.md section 16) -------------------------
// Every function below is an exact behavioural mirror of its reference
// counterpart above: same visit order where order is observable, same
// stat increments, same architected state transitions.  The difference
// is purely representational (lanes + bitmasks instead of objects, and
// batched per-chain delivery instead of per-subscriber log scans).

int
SegmentedIq::laneEffDelay(const SegmentLanes &L, unsigned slot)
{
    int d = 0;
    const int mc = L.memCount[slot];
    if (mc > 0)
        d = std::max(d, static_cast<int>(L.delay[0][slot]));
    if (mc > 1)
        d = std::max(d, static_cast<int>(L.delay[1][slot]));
    return d;
}

unsigned
SegmentedIq::allocSlot(SegmentLanes &L) const
{
    const unsigned cap = params.segmentSize;
    for (std::size_t w = 0; w < L.occBits.size(); ++w) {
        const unsigned base = static_cast<unsigned>(w * 64);
        const unsigned span = std::min(64u, cap - base);
        std::uint64_t inv = ~L.occBits[w];
        if (span < 64)
            inv &= (1ULL << span) - 1;
        if (inv)
            return base + static_cast<unsigned>(__builtin_ctzll(inv));
    }
    SCIQ_ASSERT(false, "segmented IQ: no free lane slot");
    return 0;
}

void
SegmentedIq::setLaneElig(unsigned k, unsigned slot, bool now)
{
    std::uint64_t &w = lanes[k].eligBits[slot >> 6];
    const std::uint64_t bit = 1ULL << (slot & 63);
    if (((w & bit) != 0) == now)
        return;
    w ^= bit;
    if (now)
        eligCountInc(k);
    else
        eligCountDec(k);
}

void
SegmentedIq::syncLaneCd(unsigned k, unsigned slot, int mem)
{
    SegmentLanes &L = lanes[k];
    const std::uint8_t f = L.flags[mem][slot];
    const bool want = (f & kLaneSelfTimed) && !(f & kLaneSuspended) &&
                      L.delay[mem][slot] > 0;
    std::uint64_t &w = L.cdBits[mem][slot >> 6];
    const std::uint64_t bit = 1ULL << (slot & 63);
    if (((w & bit) != 0) == want)
        return;
    w ^= bit;
    if (want)
        ++cdCountSeg[k];
    else
        --cdCountSeg[k];
}

void
SegmentedIq::soaLeaveSlot(unsigned k, unsigned slot)
{
    SegmentLanes &L = lanes[k];
    const std::uint64_t bit = 1ULL << (slot & 63);
    for (int m = 0; m < L.memCount[slot]; ++m) {
        const std::int32_t si = L.subIdx[m][slot];
        if (si >= 0) {
            ChainState &cs = stateOf(L.chain[m][slot]);
            L.subIdx[m][slot] = -1;
            const SoaSub last = cs.soaSubs.back();
            cs.soaSubs[static_cast<std::size_t>(si)] = last;
            cs.soaSubs.pop_back();
            if (static_cast<std::size_t>(si) < cs.soaSubs.size())
                lanes[last.seg].subIdx[last.mem][last.slot] = si;
        }
        std::uint64_t &cw = L.cdBits[m][slot >> 6];
        if (cw & bit) {
            cw &= ~bit;
            --cdCountSeg[k];
        }
    }
    setLaneElig(k, slot, false);
    L.occBits[slot >> 6] &= ~bit;
    --totalOcc;
}

void
SegmentedIq::soaMove(unsigned from, std::size_t pos, unsigned to,
                     Cycle cycle)
{
    SegmentLanes &S = lanes[from];
    SegmentLanes &D = lanes[to];
    const unsigned slot = S.slotAt[pos];
    DynInstPtr inst = segments[from][pos];
    work.laneWordsTouched += 12;  // lane copy-out/copy-in + index upkeep

    setLaneElig(from, slot, false);
    segments[from].erase(segments[from].begin() +
                         static_cast<std::ptrdiff_t>(pos));
    S.slotAt.erase(S.slotAt.begin() + static_cast<std::ptrdiff_t>(pos));
    S.occBits[slot >> 6] &= ~(1ULL << (slot & 63));
    onSegSizeChanged(from);

    const unsigned slot2 = allocSlot(D);
    const std::uint64_t bit2 = 1ULL << (slot2 & 63);
    D.src[0][slot2] = S.src[0][slot];
    D.src[1][slot2] = S.src[1][slot];
    D.memCount[slot2] = S.memCount[slot];
    D.seq[slot2] = S.seq[slot];
    for (int m = 0; m < S.memCount[slot]; ++m) {
        D.delay[m][slot2] = S.delay[m][slot];
        D.chain[m][slot2] = S.chain[m][slot];
        D.gen[m][slot2] = S.gen[m][slot];
        D.applied[m][slot2] = S.applied[m][slot];
        D.headSeg[m][slot2] = S.headSeg[m][slot];
        D.flags[m][slot2] = S.flags[m][slot];
        const std::int32_t si = S.subIdx[m][slot];
        D.subIdx[m][slot2] = si;
        if (si >= 0) {
            stateOf(S.chain[m][slot]).soaSubs[static_cast<std::size_t>(si)] =
                {static_cast<std::uint16_t>(to),
                 static_cast<std::uint16_t>(slot2),
                 static_cast<std::uint16_t>(m)};
        }
        // The countdown predicate does not depend on the segment, so
        // the bit moves verbatim.
        std::uint64_t &sw = S.cdBits[m][slot >> 6];
        const std::uint64_t sbit = 1ULL << (slot & 63);
        if (sw & sbit) {
            sw &= ~sbit;
            --cdCountSeg[from];
            D.cdBits[m][slot2 >> 6] |= bit2;
            ++cdCountSeg[to];
        }
    }
    D.occBits[slot2 >> 6] |= bit2;
    inst->seg.segment = static_cast<int>(to);
    const std::size_t ipos = insertSortedPos(segments[to], inst);
    D.slotAt.insert(D.slotAt.begin() + static_cast<std::ptrdiff_t>(ipos),
                    static_cast<std::uint16_t>(slot2));
    onSegSizeChanged(to);
    setLaneElig(to, slot2,
                to >= 1 && laneEffDelay(D, slot2) < threshold(to - 1));

    // A promoting chain head asserts its wire in the segment it leaves.
    emitSignal(inst, SignalKind::Assert, static_cast<int>(from), cycle);
}

unsigned
SegmentedIq::nextCandidateSegment(unsigned from) const
{
    // Live query: the promotion loop mutates segment sizes as it runs
    // (a round at k can open room below k+1), so the masks must be
    // re-read after every round rather than snapshotted up front.
    const bool push = params.enablePushdown;
    for (std::size_t w = from >> 6; w < eligSegW.size(); ++w) {
        std::uint64_t cand = eligSegW[w];
        if (push) {
            std::uint64_t roomy_below = roomyW[w] << 1;
            if (w > 0)
                roomy_below |= roomyW[w - 1] >> 63;
            cand |= nearFullW[w] & roomy_below;
        }
        if (w == (from >> 6))
            cand &= ~0ULL << (from & 63);
        if (w == 0)
            cand &= ~1ULL;  // segment 0 never promotes
        ++work.laneWordsTouched;
        if (cand)
            return static_cast<unsigned>(w * 64) +
                   static_cast<unsigned>(__builtin_ctzll(cand));
    }
    return 0;
}

void
SegmentedIq::soaInsert(const DynInstPtr &inst, int target, const Plan &plan)
{
    const unsigned k = static_cast<unsigned>(target);
    SegmentLanes &L = lanes[k];
    const unsigned slot = allocSlot(L);
    const auto srcs = iqSources(*inst);
    L.src[0][slot] = srcs[0];
    L.src[1][slot] = srcs[1];
    L.memCount[slot] = static_cast<std::uint8_t>(plan.numMemberships);
    L.seq[slot] = inst->seq;
    for (int m = 0; m < plan.numMemberships; ++m) {
        const ChainMembership &mem = plan.memberships[m];
        L.delay[m][slot] = mem.delay;
        L.chain[m][slot] = mem.chain;
        L.gen[m][slot] = mem.gen;
        L.applied[m][slot] = mem.appliedSeq;
        L.headSeg[m][slot] = static_cast<std::int16_t>(mem.headSegment);
        L.flags[m][slot] =
            static_cast<std::uint8_t>((mem.selfTimed ? kLaneSelfTimed : 0) |
                                      (mem.suspended ? kLaneSuspended : 0));
        if (mem.chain != kNoChain) {
            ChainState &cs = stateOf(mem.chain);
            L.subIdx[m][slot] = static_cast<std::int32_t>(cs.soaSubs.size());
            cs.soaSubs.push_back({static_cast<std::uint16_t>(k),
                                  static_cast<std::uint16_t>(slot),
                                  static_cast<std::uint16_t>(m)});
        } else {
            L.subIdx[m][slot] = -1;
        }
        syncLaneCd(k, slot, m);
    }
    L.occBits[slot >> 6] |= 1ULL << (slot & 63);
    const std::size_t pos = insertSortedPos(segments[k], inst);
    L.slotAt.insert(L.slotAt.begin() + static_cast<std::ptrdiff_t>(pos),
                    static_cast<std::uint16_t>(slot));
    ++totalOcc;
    onSegSizeChanged(k);
    setLaneElig(k, slot,
                k >= 1 && laneEffDelay(L, slot) < threshold(k - 1));
}

void
SegmentedIq::soaTickPromote(Cycle cycle)
{
    unsigned dirty = 0;
    const unsigned iw = params.issueWidth;
    for (unsigned k = nextCandidateSegment(1); k != 0;
         k = nextCandidateSegment(k + 1)) {
        auto &seg = segments[k];
        if (seg.empty())
            continue;
        ++work.segmentsScanned;
        work.laneWordsTouched += 2;

        bool pushdown_possible = false;
        const std::size_t free_here = params.segmentSize - seg.size();
        const std::size_t free_below =
            params.segmentSize - segments[k - 1].size();
        if (params.enablePushdown) {
            pushdown_possible =
                free_here < iw && free_below * 2 > 3 * iw;
        }
        if (eligCount[k] == 0 && !pushdown_possible)
            continue;  // mask said candidate, live predicate disagrees
        ++dirty;

        const SegmentLanes &Lk = lanes[k];
        const std::size_t sz = seg.size();
        scratchEligPos.clear();
        scratchPushPos.clear();
        if (eligCount[k] != 0) {
            // slotAt sweep in seq order; the elig bit equals the
            // reference engine's effDelay-vs-threshold predicate.
            // Collection stops at issueWidth entries: the move loop
            // below can never consume more (budget <= issueWidth).
            work.laneWordsTouched += (sz + 3) / 4 + 1;
            for (std::size_t pos = 0;
                 pos < sz && scratchEligPos.size() < iw; ++pos) {
                const unsigned slot = Lk.slotAt[pos];
                if ((Lk.eligBits[slot >> 6] >> (slot & 63)) & 1)
                    scratchEligPos.push_back(
                        static_cast<std::uint32_t>(pos));
            }
        }
        if (pushdown_possible) {
            std::size_t examined = 0;
            for (std::size_t pos = 0;
                 pos < sz && scratchPushPos.size() < iw; ++pos) {
                const unsigned slot = Lk.slotAt[pos];
                ++examined;
                if (!((Lk.eligBits[slot >> 6] >> (slot & 63)) & 1))
                    scratchPushPos.push_back(
                        static_cast<std::uint32_t>(pos));
            }
            work.laneWordsTouched += (examined + 3) / 4 + 1;
        }

        unsigned budget = std::min<unsigned>(
            iw, std::min<unsigned>(
                    freePrevCycle[k - 1],
                    static_cast<unsigned>(params.segmentSize -
                                          segments[k - 1].size())));
        if (params.auditInjectOverPromote) {
            budget = std::min<unsigned>(
                iw, static_cast<unsigned>(params.segmentSize -
                                          segments[k - 1].size()));
        }

        movedOrig.clear();
        const auto moveAdjusted = [&](std::uint32_t orig) {
            std::size_t adj = orig;
            for (std::uint32_t prev : movedOrig) {
                if (prev < orig)
                    --adj;
            }
            soaMove(k, adj, k - 1, cycle);
            movedOrig.push_back(orig);
            promotions.inc();
            ++promotedThisCycle;
            if (auditTracking)
                ++promotedInto[k - 1];
        };
        for (std::uint32_t p : scratchEligPos) {
            if (budget == 0)
                break;
            moveAdjusted(p);
            --budget;
        }
        for (std::uint32_t p : scratchPushPos) {
            if (budget == 0)
                break;
            moveAdjusted(p);
            pushdownPromotions.inc();
            --budget;
        }
    }
    dirtySegments.inc(static_cast<double>(dirty));
}

void
SegmentedIq::soaTickDeliver(Cycle cycle)
{
    const int top = static_cast<int>(segments.size()) - 1;
    for (std::size_t c = 0; c < activeChains.size(); ++c) {
        const ChainId id = activeChains[c];
        ChainState &cs = chainStates[static_cast<std::size_t>(id)];
        if (cs.log.empty())
            continue;
        ++memoToken;
        const std::uint64_t front_seq = cs.log.front().seq;
        const std::size_t log_sz = cs.log.size();
        if (cs.soaVisFloor.size() != segments.size())
            cs.soaVisFloor.assign(segments.size(), 0);

        // Maximal visible prefix of the log at segment s this cycle --
        // exactly where the reference engine's per-subscriber scan
        // breaks.  Computed once per (chain, segment).  Visibility at a
        // fixed segment is monotone in time (entries are immutable and
        // `cycle` only grows), so the probe resumes from the highest
        // seq previously proven visible here instead of rescanning the
        // whole log; entries below the floor are applied via the
        // subscriber's own contiguous [start, end) window.
        const auto visibleEnd = [&](int s) -> std::size_t {
            const unsigned us = static_cast<unsigned>(s);
            if (memoStamp[us] == memoToken)
                return memoEnd[us];
            const std::uint64_t floor_seq = cs.soaVisFloor[us];
            std::size_t e =
                floor_seq >= front_seq
                    ? static_cast<std::size_t>(floor_seq - front_seq + 1)
                    : 0;
            if (e > log_sz)
                e = log_sz;
            while (e < log_sz) {
                const LoggedSignal &sig = cs.log.at(e);
                ++work.signalDeliveries;
                const Cycle lag =
                    s > sig.originSegment
                        ? static_cast<Cycle>(s - sig.originSegment)
                        : 0;
                if (cycle < sig.cycle + lag)
                    break;
                ++e;
            }
            memoStamp[us] = memoToken;
            memoEnd[us] = static_cast<std::uint32_t>(e);
            if (e > 0)
                cs.soaVisFloor[us] = front_seq + e - 1;
            return e;
        };

        for (const SoaSub &sub : cs.soaSubs) {
            ++work.laneWordsTouched;
            SegmentLanes &Ls = lanes[sub.seg];
            if (Ls.gen[sub.mem][sub.slot] != cs.gen)
                continue;  // wire reused; skipped like the reference
            const std::uint64_t applied = Ls.applied[sub.mem][sub.slot];
            const std::size_t start =
                applied < front_seq
                    ? 0
                    : static_cast<std::size_t>(applied - front_seq + 1);
            const std::size_t end = visibleEnd(static_cast<int>(sub.seg));
            std::int32_t d = Ls.delay[sub.mem][sub.slot];
            std::int16_t hs = Ls.headSeg[sub.mem][sub.slot];
            std::uint8_t fl = Ls.flags[sub.mem][sub.slot];
            std::uint64_t new_applied = applied;
            if (start < end) {
                // Contiguous already-applied prefix, then the shared
                // visible prefix: apply [start, end) with no per-entry
                // visibility test.
                work.laneWordsTouched += 2;
                for (std::size_t i = start; i < end; ++i) {
                    const LoggedSignal &sig = cs.log.at(i);
                    ++work.signalDeliveries;
                    switch (sig.kind) {
                      case SignalKind::Assert:
                        if (hs > 0) {
                            hs -= 1;
                            d = std::max(0, d - 2);
                        } else {
                            fl |= kLaneSelfTimed;
                        }
                        break;
                      case SignalKind::Suspend:
                        fl |= kLaneSuspended;
                        break;
                      case SignalKind::Resume:
                        fl &= static_cast<std::uint8_t>(~kLaneSuspended);
                        break;
                    }
                }
                new_applied = front_seq + end - 1;
            } else if (start > end) {
                // A listener moved *up* (deadlock recycle) can sit past
                // the shared prefix; replay the exact per-entry scan.
                work.laneWordsTouched += 2;
                for (std::size_t i = start; i < log_sz; ++i) {
                    const LoggedSignal &sig = cs.log.at(i);
                    ++work.signalDeliveries;
                    const Cycle lag =
                        static_cast<int>(sub.seg) > sig.originSegment
                            ? static_cast<Cycle>(
                                  static_cast<int>(sub.seg) -
                                  sig.originSegment)
                            : 0;
                    if (cycle < sig.cycle + lag)
                        break;
                    new_applied = sig.seq;
                    switch (sig.kind) {
                      case SignalKind::Assert:
                        if (hs > 0) {
                            hs -= 1;
                            d = std::max(0, d - 2);
                        } else {
                            fl |= kLaneSelfTimed;
                        }
                        break;
                      case SignalKind::Suspend:
                        fl |= kLaneSuspended;
                        break;
                      case SignalKind::Resume:
                        fl &= static_cast<std::uint8_t>(~kLaneSuspended);
                        break;
                    }
                }
            } else {
                continue;  // nothing newly visible here
            }
            if (new_applied == applied)
                continue;
            Ls.delay[sub.mem][sub.slot] = d;
            Ls.headSeg[sub.mem][sub.slot] = hs;
            Ls.flags[sub.mem][sub.slot] = fl;
            Ls.applied[sub.mem][sub.slot] = new_applied;
            syncLaneCd(sub.seg, sub.slot, sub.mem);
            setLaneElig(sub.seg, sub.slot,
                        sub.seg >= 1 &&
                            laneEffDelay(Ls, sub.slot) <
                                threshold(sub.seg - 1));
        }

        if (!cs.regSubs.empty()) {
            const std::size_t end_top = visibleEnd(top);
            for (RegIndex r : cs.regSubs) {
                work.laneWordsTouched += 2;
                RegInfoEntry &e = regInfo[r];
                if (!e.pending || e.chain == kNoChain)
                    continue;
                if (cs.gen != e.gen)
                    continue;
                const std::size_t start =
                    e.appliedSeq < front_seq
                        ? 0
                        : static_cast<std::size_t>(e.appliedSeq -
                                                   front_seq + 1);
                if (start >= end_top)
                    continue;  // table listens at the fixed top segment
                for (std::size_t i = start; i < end_top; ++i) {
                    const LoggedSignal &sig = cs.log.at(i);
                    ++work.signalDeliveries;
                    switch (sig.kind) {
                      case SignalKind::Assert:
                        if (e.headSeg > 0)
                            e.headSeg -= 1;
                        else
                            e.selfTimed = true;
                        break;
                      case SignalKind::Suspend:
                        e.suspended = true;
                        break;
                      case SignalKind::Resume:
                        e.suspended = false;
                        break;
                    }
                }
                e.appliedSeq = front_seq + end_top - 1;
                syncRegCd(r);
            }
        }
    }
}

void
SegmentedIq::soaTickCountdown()
{
    const unsigned n = static_cast<unsigned>(segments.size());
    for (unsigned k = 0; k < n; ++k) {
        if (cdCountSeg[k] == 0)
            continue;
        SegmentLanes &Lk = lanes[k];
        for (int m = 0; m < 2; ++m) {
            for (std::size_t w = 0; w < Lk.cdBits[m].size(); ++w) {
                std::uint64_t bits = Lk.cdBits[m][w];
                if (!bits)
                    continue;
                ++work.laneWordsTouched;
                while (bits) {
                    const unsigned slot =
                        static_cast<unsigned>(w * 64) +
                        static_cast<unsigned>(__builtin_ctzll(bits));
                    bits &= bits - 1;
                    work.laneWordsTouched += 2;
                    std::int32_t &d = Lk.delay[m][slot];
                    d -= 1;
                    setLaneElig(k, slot,
                                k >= 1 && laneEffDelay(Lk, slot) <
                                              threshold(k - 1));
                    if (d == 0) {
                        Lk.cdBits[m][w] &= ~(1ULL << (slot & 63));
                        --cdCountSeg[k];
                    }
                }
            }
        }
    }
    for (std::size_t i = 0; i < regCountdown.size();) {
        const RegIndex r = regCountdown[i];
        work.laneWordsTouched += 2;
        regInfo[r].latency -= 1;
        if (regInfo[r].latency == 0)
            syncRegCd(r);
        else
            ++i;
    }
}

void
SegmentedIq::soaIssueSelect(Cycle cycle, const TryIssue &try_issue)
{
    auto &seg0 = segments[0];
    SegmentLanes &L0 = lanes[0];
    const std::size_t occ0 = seg0.size();
    unsigned ready = 0;
    unsigned issued = 0;
    for (std::size_t pos = 0; pos < seg0.size();) {
        const unsigned slot = L0.slotAt[pos];
        ++work.laneWordsTouched;
        const bool r = scoreboard.isReady(L0.src[0][slot]) &&
                       scoreboard.isReady(L0.src[1][slot]);
        if (r)
            ++ready;
        if (r && issued < params.issueWidth && try_issue(seg0[pos])) {
            DynInstPtr inst = seg0[pos];
            instsIssued.inc();
            ++issued;
            ++issuedThisCycle;
            emitSignal(inst, SignalKind::Assert, 0, cycle);
            soaLeaveSlot(0, slot);
            seg0.erase(seg0.begin() + static_cast<std::ptrdiff_t>(pos));
            L0.slotAt.erase(L0.slotAt.begin() +
                            static_cast<std::ptrdiff_t>(pos));
        } else {
            ++pos;
        }
    }
    seg0Ready.sample(static_cast<double>(ready));
    seg0Occupancy.sample(static_cast<double>(occ0));
    if (issued > 0)
        onSegSizeChanged(0);
}

void
SegmentedIq::soaSquash(SeqNum youngest_kept)
{
    // Segments are seq-sorted, so the squashed set is a suffix.
    for (unsigned k = 0; k < segments.size(); ++k) {
        auto &seg = segments[k];
        auto pos = std::upper_bound(
            seg.begin(), seg.end(), youngest_kept,
            [](SeqNum s, const DynInstPtr &p) { return s < p->seq; });
        if (pos == seg.end())
            continue;
        SegmentLanes &Lk = lanes[k];
        const std::size_t first =
            static_cast<std::size_t>(pos - seg.begin());
        for (std::size_t i = first; i < seg.size(); ++i)
            soaLeaveSlot(k, Lk.slotAt[i]);
        seg.erase(pos, seg.end());
        Lk.slotAt.erase(Lk.slotAt.begin() +
                            static_cast<std::ptrdiff_t>(first),
                        Lk.slotAt.end());
        onSegSizeChanged(k);
    }
}

void
SegmentedIq::soaRunDeadlockRecovery(Cycle cycle)
{
    deadlockRecoveries.inc();
    const unsigned n = static_cast<unsigned>(segments.size());

    // If the issue buffer is full of non-ready instructions, recycle
    // its youngest back to the top segment.  Its lane data is stashed
    // (the seg-0 slot may be re-used by the force promotions below);
    // the soaSubs records keep their indices and are re-pointed at the
    // new lane on re-insert -- nothing walks them in between.
    DynInstPtr recycled;
    std::int32_t st_delay[2] = {0, 0};
    ChainId st_chain[2] = {kNoChain, kNoChain};
    std::uint32_t st_gen[2] = {0, 0};
    std::uint64_t st_applied[2] = {0, 0};
    std::int16_t st_headSeg[2] = {0, 0};
    std::uint8_t st_flags[2] = {0, 0};
    std::int32_t st_subIdx[2] = {-1, -1};
    bool st_cd[2] = {false, false};
    RegIndex st_src[2] = {kInvalidReg, kInvalidReg};
    std::uint8_t st_mc = 0;
    SeqNum st_seq = kInvalidSeqNum;
    if (activeSegments > 1 && segments[0].size() >= params.segmentSize) {
        SegmentLanes &L0 = lanes[0];
        const std::size_t pos = segments[0].size() - 1;
        const unsigned slot = L0.slotAt[pos];
        const std::uint64_t bit = 1ULL << (slot & 63);
        recycled = segments[0].back();
        setLaneElig(0, slot, false);
        st_mc = L0.memCount[slot];
        st_seq = L0.seq[slot];
        st_src[0] = L0.src[0][slot];
        st_src[1] = L0.src[1][slot];
        for (int m = 0; m < st_mc; ++m) {
            st_delay[m] = L0.delay[m][slot];
            st_chain[m] = L0.chain[m][slot];
            st_gen[m] = L0.gen[m][slot];
            st_applied[m] = L0.applied[m][slot];
            st_headSeg[m] = L0.headSeg[m][slot];
            st_flags[m] = L0.flags[m][slot];
            st_subIdx[m] = L0.subIdx[m][slot];
            std::uint64_t &cw = L0.cdBits[m][slot >> 6];
            st_cd[m] = (cw & bit) != 0;
            if (st_cd[m]) {
                cw &= ~bit;
                --cdCountSeg[0];
            }
        }
        L0.occBits[slot >> 6] &= ~bit;
        segments[0].pop_back();
        L0.slotAt.pop_back();
        onSegSizeChanged(0);
    }

    // Force every full segment to promote one instruction downward;
    // processing bottom-up guarantees the destination has a slot.
    for (unsigned k = 1; k < n; ++k) {
        if (segments[k].size() < params.segmentSize)
            continue;
        if (segments[k - 1].size() >= params.segmentSize)
            continue;  // cannot happen after bottom-up processing
        soaMove(k, 0, k - 1, cycle);
        promotions.inc();
        ++promotedThisCycle;
    }

    // With nothing full, nothing promoted and nothing in flight, the
    // scheduler has stalled on stale delay values; nudge the oldest
    // instruction in the lowest non-empty segment downward.
    if (promotedThisCycle == 0 && !recycled) {
        for (unsigned k = 1; k < n; ++k) {
            if (segments[k].empty())
                continue;
            if (segments[k - 1].size() < params.segmentSize) {
                soaMove(k, 0, k - 1, cycle);
                promotions.inc();
                ++promotedThisCycle;
            }
            break;
        }
    }

    if (recycled) {
        const unsigned top = activeSegments - 1;
        recycled->seg.segment = static_cast<int>(top);
        if (recycled->seg.headedChain != kNoChain &&
            !recycled->seg.chainReleased) {
            ChainState &cs = stateOf(recycled->seg.headedChain);
            if (cs.gen == recycled->seg.headedGen) {
                cs.headSegment = static_cast<int>(top);
                syncChainHot(recycled->seg.headedChain);
            }
        }
        SegmentLanes &D = lanes[top];
        const unsigned slot2 = allocSlot(D);
        const std::uint64_t bit2 = 1ULL << (slot2 & 63);
        D.src[0][slot2] = st_src[0];
        D.src[1][slot2] = st_src[1];
        D.memCount[slot2] = st_mc;
        D.seq[slot2] = st_seq;
        for (int m = 0; m < st_mc; ++m) {
            D.delay[m][slot2] = st_delay[m];
            D.chain[m][slot2] = st_chain[m];
            D.gen[m][slot2] = st_gen[m];
            D.applied[m][slot2] = st_applied[m];
            D.headSeg[m][slot2] = st_headSeg[m];
            D.flags[m][slot2] = st_flags[m];
            D.subIdx[m][slot2] = st_subIdx[m];
            if (st_subIdx[m] >= 0) {
                stateOf(st_chain[m])
                    .soaSubs[static_cast<std::size_t>(st_subIdx[m])] =
                    {static_cast<std::uint16_t>(top),
                     static_cast<std::uint16_t>(slot2),
                     static_cast<std::uint16_t>(m)};
            }
            if (st_cd[m]) {
                D.cdBits[m][slot2 >> 6] |= bit2;
                ++cdCountSeg[top];
            }
        }
        D.occBits[slot2 >> 6] |= bit2;
        const std::size_t ipos = insertSortedPos(segments[top], recycled);
        D.slotAt.insert(D.slotAt.begin() +
                            static_cast<std::ptrdiff_t>(ipos),
                        static_cast<std::uint16_t>(slot2));
        onSegSizeChanged(top);
        setLaneElig(top, slot2,
                    top >= 1 &&
                        laneEffDelay(D, slot2) < threshold(top - 1));
        SCIQ_ASSERT(segments[top].size() <= params.segmentSize,
                    "deadlock recovery overflowed the top segment");
    }
}

ChainMembership
SegmentedIq::debugMembership(const DynInstPtr &inst, int m) const
{
    if (!soa())
        return inst->seg.memberships[m];
    const unsigned k = static_cast<unsigned>(inst->seg.segment);
    const auto &seg = segments[k];
    for (std::size_t pos = 0; pos < seg.size(); ++pos) {
        if (seg[pos].get() != inst.get())
            continue;
        const SegmentLanes &Lk = lanes[k];
        const unsigned slot = Lk.slotAt[pos];
        ChainMembership out;
        out.chain = Lk.chain[m][slot];
        out.gen = Lk.gen[m][slot];
        out.appliedSeq = Lk.applied[m][slot];
        out.delay = Lk.delay[m][slot];
        out.headSegment = Lk.headSeg[m][slot];
        out.selfTimed = (Lk.flags[m][slot] & kLaneSelfTimed) != 0;
        out.suspended = (Lk.flags[m][slot] & kLaneSuspended) != 0;
        return out;
    }
    SCIQ_ASSERT(false, "debugMembership: instruction not resident");
    return {};
}

int
SegmentedIq::debugEffectiveDelay(const DynInstPtr &inst) const
{
    if (!soa())
        return effectiveDelay(*inst);
    int d = 0;
    for (int m = 0; m < inst->seg.numMemberships; ++m)
        d = std::max(d, debugMembership(inst, m).delay);
    return d;
}

} // namespace sciq
