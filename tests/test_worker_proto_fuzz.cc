/**
 * @file
 * Fuzz-hardening suite for the sweep wire protocol (DESIGN.md §18).
 *
 * The decoder and LineChannel face bytes from crashed, skewed or
 * hostile peers: truncated frames, oversized lines, type confusion,
 * interleaved garbage.  The contract under all of it is containment —
 * decodeMessage returns false (never throws, never narrows), the
 * channel caps its buffers and reports a clean dead/overflowed state,
 * and nothing crashes under ASan/UBSan (this binary is in the
 * sanitize_smoke label set).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/random.hh"
#include "sim/worker_proto.hh"

using namespace sciq;

namespace {

/** A connected AF_UNIX socketpair wrapped for raw-byte injection. */
struct Pair
{
    int raw = -1;   ///< we write hostile bytes here
    int sock = -1;  ///< the victim LineChannel's end

    Pair()
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        raw = fds[0];
        sock = fds[1];
    }

    ~Pair() { ::close(raw); }

    void
    inject(const std::string &bytes)
    {
        ASSERT_EQ(::write(raw, bytes.data(), bytes.size()),
                  static_cast<ssize_t>(bytes.size()));
    }
};

/** Every well-formed frame the protocol can produce, for mutation. */
std::vector<std::string>
corpus()
{
    std::vector<std::string> lines;
    Message m;

    m.type = MsgType::Hello;
    m.proto = kWorkerProtoVersion;
    m.worker = "fuzz-worker";
    lines.push_back(encodeMessage(m));

    m = Message();
    m.type = MsgType::Welcome;
    m.proto = kWorkerProtoVersion;
    m.shard = 1;
    m.shards = 4;
    m.jobs = 42;
    m.leaseMs = 60'000;
    m.heartbeatMs = 1'000;
    lines.push_back(encodeMessage(m));

    m = Message();
    m.type = MsgType::Reject;
    m.reason = "protocol version mismatch: want 2";
    lines.push_back(encodeMessage(m));

    m = Message();
    m.type = MsgType::LeaseReq;
    lines.push_back(encodeMessage(m));

    m = Message();
    m.type = MsgType::Lease;
    m.index = 7;
    m.key = "workload=swim iq=segmented iq_size=64";
    m.spec = "workload=swim iq=segmented iq_size=64 iters=1000";
    lines.push_back(encodeMessage(m));

    m = Message();
    m.type = MsgType::Wait;
    m.waitMs = 200;
    lines.push_back(encodeMessage(m));

    m = Message();
    m.type = MsgType::Drain;
    lines.push_back(encodeMessage(m));

    m = Message();
    m.type = MsgType::Result;
    m.index = 7;
    m.key = "workload=swim iq=segmented iq_size=64";
    m.result.workload = "swim";
    m.result.iqKind = "segmented";
    m.result.iqSize = 64;
    m.result.outcome.status = JobOutcome::Status::Ok;
    m.result.cycles = 123456;
    m.result.insts = 54321;
    m.result.ipc = 54321.0 / 123456.0;
    lines.push_back(encodeMessage(m));

    m = Message();
    m.type = MsgType::ResultAck;
    m.index = 7;
    lines.push_back(encodeMessage(m));

    m = Message();
    m.type = MsgType::Ping;
    m.seq = 1234567890123ull;
    lines.push_back(encodeMessage(m));

    m = Message();
    m.type = MsgType::Pong;
    m.seq = 1234567890123ull;
    lines.push_back(encodeMessage(m));

    return lines;
}

/** decodeMessage must classify, never throw. */
void
decodeMustContain(const std::string &line)
{
    Message out;
    EXPECT_NO_THROW((void)decodeMessage(line, out)) << line;
}

} // namespace

TEST(ProtoFuzz, CorpusRoundTrips)
{
    for (const std::string &line : corpus()) {
        Message out;
        ASSERT_TRUE(decodeMessage(line, out)) << line;
        EXPECT_EQ(encodeMessage(out), line);
    }
}

TEST(ProtoFuzz, TruncatedFramesDecodeFalseNotCrash)
{
    // Every prefix of every frame: a torn write can stop anywhere.
    for (const std::string &line : corpus()) {
        for (std::size_t n = 0; n < line.size(); ++n) {
            Message out;
            const std::string torn = line.substr(0, n);
            EXPECT_NO_THROW((void)decodeMessage(torn, out)) << torn;
        }
    }
}

TEST(ProtoFuzz, RandomMutationsAreContained)
{
    // Seeded byte-level mutations: flips, deletions, duplications and
    // splices between frames.  50k trials keeps this under a second.
    const std::vector<std::string> lines = corpus();
    Random rng(20'260'807);
    for (int trial = 0; trial < 50'000; ++trial) {
        std::string s = lines[rng.below(lines.size())];
        const unsigned edits = 1 + rng.below(8);
        for (unsigned e = 0; e < edits && !s.empty(); ++e) {
            const std::size_t at = rng.below(s.size());
            switch (rng.below(4)) {
              case 0:
                s[at] = static_cast<char>(rng.below(256));
                break;
              case 1:
                s.erase(at, 1 + rng.below(4));
                break;
              case 2:
                s.insert(at, s.substr(rng.below(s.size()),
                                      1 + rng.below(8)));
                break;
              default: {
                // Splice a window of another frame in (type confusion).
                const std::string &other =
                    lines[rng.below(lines.size())];
                const std::size_t from = rng.below(other.size());
                s.insert(at, other.substr(from, 1 + rng.below(16)));
                break;
              }
            }
        }
        decodeMustContain(s);
    }
}

TEST(ProtoFuzz, TypeConfusedFieldsDecodeFalse)
{
    // Structured type confusion the mutator may miss: valid JSON with
    // fields of the wrong JSON type or impossible values.
    const char *bad[] = {
        "{\"type\":42}",
        "{\"type\":\"no-such-type\"}",
        "{\"type\":[\"hello\"]}",
        "{\"type\":\"hello\",\"proto\":\"two\"}",
        "{\"type\":\"hello\",\"proto\":-2}",
        "{\"type\":\"hello\",\"proto\":4294967296}",
        "{\"type\":\"hello\",\"worker\":{\"name\":\"w0\"}}",
        "{\"type\":\"welcome\",\"proto\":2,\"shards\":1.5}",
        "{\"type\":\"welcome\",\"proto\":2,\"jobs\":-1}",
        "{\"type\":\"lease\",\"index\":1e300,\"key\":\"k\",\"spec\":\"s\"}",
        "{\"type\":\"lease\",\"index\":null,\"key\":\"k\",\"spec\":\"s\"}",
        "{\"type\":\"result\",\"index\":3,\"key\":\"k\",\"result\":7}",
        "{\"type\":\"result\",\"index\":3,\"key\":\"k\",\"result\":[]}",
        "{\"type\":\"result_ack\",\"index\":\"seven\"}",
        "{\"type\":\"ping\",\"seq\":-1}",
        "{\"type\":\"ping\",\"seq\":18446744073709551616}",
        "{\"type\":\"wait\",\"ms\":\"soon\"}",
        "[]",
        "null",
        "\"hello\"",
        "{}",
    };
    for (const char *line : bad) {
        Message out;
        EXPECT_FALSE(decodeMessage(line, out)) << line;
    }
}

TEST(ProtoFuzz, ChannelSurvivesInterleavedGarbage)
{
    // Garbage lines between valid frames: the receiver's skip-and-go-on
    // loop must still see every valid frame, in order.
    Pair p;
    LineChannel ch(p.sock);
    const std::vector<std::string> lines = corpus();
    Random rng(7);
    std::string stream;
    for (const std::string &line : lines) {
        stream += line + "\n";
        std::string junk;
        for (unsigned i = 0, n = 1 + rng.below(64); i < n; ++i) {
            char c = static_cast<char>(rng.below(256));
            junk += c == '\n' ? '\x01' : c;
        }
        stream += junk + "\n";
    }
    p.inject(stream);

    std::size_t seen = 0;
    std::string line;
    while (ch.recvLine(line, 1'000)) {
        Message out;
        if (!decodeMessage(line, out))
            continue;  // the containment contract: skip, don't die
        ASSERT_LT(seen, lines.size());
        EXPECT_EQ(encodeMessage(out), lines[seen]);
        if (++seen == lines.size())
            break;
    }
    EXPECT_EQ(seen, lines.size());
}

TEST(ProtoFuzz, OversizedLineTripsTheCapNotTheProcess)
{
    // A single line past maxLine() marks the channel overflowed and
    // dead (the caller contains it as a ResourceError-class failure);
    // it must never buffer without bound.
    Pair p;
    LineChannel ch(p.sock);
    ch.setMaxLine(4096);

    const std::string huge(64 * 1024, 'x');  // no newline anywhere
    p.inject(huge);

    std::string line;
    EXPECT_FALSE(ch.recvLine(line, 2'000));
    EXPECT_TRUE(ch.overflowed());
    EXPECT_FALSE(ch.alive());
}

TEST(ProtoFuzz, CompleteLinesBeforeAnOverflowAreStillDelivered)
{
    Pair p;
    LineChannel ch(p.sock);
    ch.setMaxLine(4096);

    p.inject("{\"type\":\"lease_req\"}\n" + std::string(64 * 1024, 'y'));

    std::string line;
    ASSERT_TRUE(ch.recvLine(line, 2'000));
    Message out;
    ASSERT_TRUE(decodeMessage(line, out));
    EXPECT_EQ(out.type, MsgType::LeaseReq);

    EXPECT_FALSE(ch.recvLine(line, 2'000));
    EXPECT_TRUE(ch.overflowed());
}

TEST(ProtoFuzz, PeerDisconnectIsACleanEofNotAnError)
{
    Pair p;
    LineChannel ch(p.sock);
    p.inject("{\"type\":\"drain\"}\n");
    ::close(p.raw);
    p.raw = -1;

    std::string line;
    ASSERT_TRUE(ch.recvLine(line, 1'000));
    Message out;
    ASSERT_TRUE(decodeMessage(line, out));
    EXPECT_EQ(out.type, MsgType::Drain);

    // Next read sees EOF: false return, dead channel, no overflow.
    EXPECT_FALSE(ch.recvLine(line, 1'000));
    EXPECT_FALSE(ch.alive());
    EXPECT_FALSE(ch.overflowed());

    // Sends to the gone peer fail cleanly (no SIGPIPE).
    EXPECT_FALSE(ch.sendLine("{\"type\":\"lease_req\"}"));
}

TEST(ProtoFuzz, FinalUnterminatedLineIsSurfacedOnEof)
{
    // A peer killed right before its trailing '\n': the complete bytes
    // it did write still reach the receiver (journal-tail semantics).
    Pair p;
    LineChannel ch(p.sock);
    p.inject("{\"type\":\"ping\",\"seq\":9}");
    ::close(p.raw);
    p.raw = -1;

    std::string line;
    ASSERT_TRUE(ch.recvLine(line, 1'000));
    Message out;
    ASSERT_TRUE(decodeMessage(line, out));
    EXPECT_EQ(out.type, MsgType::Ping);
    EXPECT_EQ(out.seq, 9u);
    EXPECT_FALSE(ch.recvLine(line, 1'000));
}
