/**
 * @file
 * Unit tests for the segmented dependence-chain instruction queue -
 * the paper's core contribution.  Covers chain creation policy (3.4),
 * delay-value maintenance and wire pipelining (3.2/3.3), promotion
 * thresholds (3.1), pushdown (4.1), dispatch bypass (4.2), LRP (4.3),
 * HMP (4.4) and deadlock recovery (4.5).
 */

#include <gtest/gtest.h>

#include "branch/hit_miss_predictor.hh"
#include "branch/left_right_predictor.hh"
#include "iq/segmented_iq.hh"
#include "iq_harness.hh"

using namespace sciq;
using namespace sciq::test;

namespace {

struct SegFixture : public ::testing::Test
{
    SegFixture() : scoreboard(128), rec(scoreboard)
    {
        params.numEntries = 16;
        params.segmentSize = 4;  // 4 segments
        params.issueWidth = 4;
        params.maxChains = -1;
        params.enableBypass = true;
        params.enablePushdown = true;
        params.predictedLoadLatency = 4;
        // These tests unit-test the reference engine's semantics and
        // read evolving membership state through inst->seg, which only
        // that engine keeps current.  The SoA engine is covered by the
        // differential + lane-level tests in test_iq_soa.cc.
        params.soaLayout = false;
    }

    std::unique_ptr<SegmentedIq>
    makeIq()
    {
        return std::make_unique<SegmentedIq>(params, scoreboard, fu, &hmp,
                                             &lrp);
    }

    /** Dispatch helper mirroring the core: clear dst then insert. */
    void
    dispatch(SegmentedIq &iq, const DynInstPtr &inst)
    {
        ASSERT_TRUE(iq.canInsert(inst)) << "seq " << inst->seq;
        if (inst->physDst != kInvalidReg)
            scoreboard.clearReady(inst->physDst);
        iq.insert(inst, cycle);
    }

    void
    tick(SegmentedIq &iq, bool busy = true)
    {
        iq.tick(++cycle, busy);
    }

    IqParams params;
    Scoreboard scoreboard;
    FuPool fu;
    HitMissPredictor hmp{64};
    LeftRightPredictor lrp{64};
    IssueRecorder rec;
    Cycle cycle = 0;
};

} // namespace

TEST_F(SegFixture, ThresholdsAreTwoPerSegment)
{
    EXPECT_EQ(SegmentedIq::threshold(0), 2);
    EXPECT_EQ(SegmentedIq::threshold(1), 4);
    EXPECT_EQ(SegmentedIq::threshold(2), 6);
    EXPECT_EQ(SegmentedIq::threshold(7), 16);
}

TEST_F(SegFixture, LoadCreatesChainHead)
{
    auto iq = makeIq();
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    EXPECT_NE(load->seg.headedChain, kNoChain);
    EXPECT_EQ(iq->chainsCreated.value(), 1.0);
    EXPECT_EQ(iq->headsFromLoads.value(), 1.0);
    EXPECT_EQ(iq->chainsInUse(), 1u);
}

TEST_F(SegFixture, NonLoadWithReadyOperandsHasNoChain)
{
    auto iq = makeIq();
    auto add = makeInst(1, Opcode::ADD, intReg(3), intReg(1), intReg(2));
    dispatch(*iq, add);
    EXPECT_EQ(add->seg.headedChain, kNoChain);
    EXPECT_EQ(add->seg.numMemberships, 0);
    EXPECT_EQ(iq->chainsCreated.value(), 0.0);
}

TEST_F(SegFixture, HmpPredictedHitSuppressesChain)
{
    params.useHmp = true;
    auto iq = makeIq();
    const Addr trained_pc = 0x1000 + 1 * kInstBytes;  // seq 1's pc
    for (int i = 0; i < 15; ++i)
        hmp.update(trained_pc, true);

    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    EXPECT_EQ(load->seg.headedChain, kNoChain);
    EXPECT_TRUE(load->hmpUsed);
    EXPECT_TRUE(load->hmpPredictedHit);
    EXPECT_EQ(iq->chainsCreated.value(), 0.0);

    // An untrained load still heads a chain.
    auto load2 = makeInst(2, Opcode::LD, intReg(4), intReg(1));
    dispatch(*iq, load2);
    EXPECT_NE(load2->seg.headedChain, kNoChain);
}

TEST_F(SegFixture, DependentJoinsProducersChainWithPredictedDelay)
{
    auto iq = makeIq();
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    auto dep = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(1));
    dispatch(*iq, dep);
    ASSERT_EQ(dep->seg.numMemberships, 1);
    const ChainMembership &m = dep->seg.memberships[0];
    EXPECT_EQ(m.chain, load->seg.headedChain);
    // Head in segment 0 (bypass put the load there): 2*0 + 4.
    EXPECT_EQ(m.delay, 4);
    EXPECT_EQ(m.headSegment, 0);
    EXPECT_FALSE(m.selfTimed);
}

TEST_F(SegFixture, TransitiveDelayAccumulatesExecutionLatency)
{
    auto iq = makeIq();
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    auto mul = makeInst(2, Opcode::FMUL, fpReg(3), fpReg(2), fpReg(1));
    mul->staticInst.rs1 = intReg(2);  // depend on the load
    mul->archSrc = mul->staticInst.srcRegs();
    mul->physSrc = mul->archSrc;
    dispatch(*iq, mul);
    auto dep = makeInst(3, Opcode::FADD, fpReg(4), fpReg(3), fpReg(1));
    dispatch(*iq, dep);
    ASSERT_EQ(dep->seg.numMemberships, 1);
    // load(4) + fmul(4) behind the same chain head.
    EXPECT_EQ(dep->seg.memberships[0].delay, 8);
    EXPECT_EQ(dep->seg.memberships[0].chain, load->seg.headedChain);
}

TEST_F(SegFixture, BypassTargetsHighestNonEmptySegment)
{
    auto iq = makeIq();
    auto first = makeInst(1, Opcode::NOP);
    dispatch(*iq, first);
    EXPECT_EQ(first->seg.segment, 0);  // empty queue: straight to bottom
    for (SeqNum s = 2; s <= 4; ++s)
        dispatch(*iq, makeInst(s, Opcode::NOP));
    // Segment 0 now full; next insert lands in segment 1.
    auto fifth = makeInst(5, Opcode::NOP);
    dispatch(*iq, fifth);
    EXPECT_EQ(fifth->seg.segment, 1);
}

TEST_F(SegFixture, NoBypassDispatchesToTop)
{
    params.enableBypass = false;
    auto iq = makeIq();
    auto inst = makeInst(1, Opcode::NOP);
    dispatch(*iq, inst);
    EXPECT_EQ(inst->seg.segment, 3);
}

TEST_F(SegFixture, ReadyInstructionPromotesOneSegmentPerCycle)
{
    params.enableBypass = false;
    auto iq = makeIq();
    auto inst = makeInst(1, Opcode::NOP);
    dispatch(*iq, inst);
    EXPECT_EQ(inst->seg.segment, 3);
    tick(*iq);
    EXPECT_EQ(inst->seg.segment, 2);
    tick(*iq);
    EXPECT_EQ(inst->seg.segment, 1);
    tick(*iq);
    EXPECT_EQ(inst->seg.segment, 0);
    iq->issueSelect(cycle, rec.acceptAll());
    ASSERT_EQ(rec.issued.size(), 1u);
}

TEST_F(SegFixture, MemberDelayFollowsHeadWithWirePipelining)
{
    params.enableBypass = false;
    auto iq = makeIq();
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    auto dep = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(1));
    dispatch(*iq, dep);
    ASSERT_EQ(dep->seg.numMemberships, 1);
    // Head dispatched into segment 3: delay = 2*3 + 4 = 10.
    EXPECT_EQ(dep->seg.memberships[0].delay, 10);

    // Head promotes 3->2; the member (in segment 3) sees the wire the
    // same cycle the head leaves its segment.
    tick(*iq);
    EXPECT_EQ(load->seg.segment, 2);
    EXPECT_EQ(dep->seg.memberships[0].delay, 8);
    EXPECT_EQ(dep->seg.memberships[0].headSegment, 2);

    // Subsequent assertions reach segment 3 one cycle per segment of
    // distance, so the member's view lags the head's true position.
    int last_delay = 8;
    for (int i = 0; i < 12 && !dep->seg.memberships[0].selfTimed; ++i) {
        tick(*iq);
        iq->issueSelect(cycle, rec.acceptAll());  // head issues from 0
        EXPECT_LE(dep->seg.memberships[0].delay, last_delay);
        last_delay = dep->seg.memberships[0].delay;
    }
    EXPECT_TRUE(dep->seg.memberships[0].selfTimed);
}

TEST_F(SegFixture, SelfTimedMemberCountsDownAndIssues)
{
    auto iq = makeIq();
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    auto dep = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(1));
    dispatch(*iq, dep);

    iq->issueSelect(cycle, rec.acceptAll());  // load issues (ready)
    ASSERT_EQ(rec.issued.size(), 1u);
    tick(*iq);  // assert delivered at segment 0; member self-times
    EXPECT_TRUE(dep->seg.memberships[0].selfTimed);
    EXPECT_EQ(dep->seg.memberships[0].delay, 3);  // 4 - first countdown
    for (int i = 0; i < 3; ++i)
        tick(*iq);
    EXPECT_EQ(dep->seg.memberships[0].delay, 0);

    // Once the value arrives the member issues from segment 0.
    scoreboard.setReady(intReg(2));
    iq->issueSelect(cycle, rec.acceptAll());
    EXPECT_EQ(rec.issued.size(), 2u);
}

TEST_F(SegFixture, SuspendStopsCountdownResumeRestarts)
{
    auto iq = makeIq();
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    auto dep = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(1));
    dispatch(*iq, dep);

    iq->issueSelect(cycle, rec.acceptAll());
    tick(*iq);  // self-timed, delay 3
    ASSERT_TRUE(dep->seg.memberships[0].selfTimed);

    // The load misses: suspend propagates on the chain wire (3.4).
    iq->onLoadMiss(load, cycle);
    tick(*iq);
    EXPECT_TRUE(dep->seg.memberships[0].suspended);
    const int frozen = dep->seg.memberships[0].delay;
    for (int i = 0; i < 5; ++i)
        tick(*iq);
    EXPECT_EQ(dep->seg.memberships[0].delay, frozen);

    // Data returns: resume self-timing.
    iq->onLoadComplete(load, cycle);
    tick(*iq);
    EXPECT_FALSE(dep->seg.memberships[0].suspended);
    tick(*iq);
    EXPECT_LT(dep->seg.memberships[0].delay, frozen);
}

TEST_F(SegFixture, TwoOutstandingOperandsMakeNewChainHead)
{
    auto iq = makeIq();
    auto load_a = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    auto load_b = makeInst(2, Opcode::LD, intReg(3), intReg(1));
    dispatch(*iq, load_a);
    dispatch(*iq, load_b);
    auto add = makeInst(3, Opcode::ADD, intReg(4), intReg(2), intReg(3));
    dispatch(*iq, add);
    EXPECT_EQ(add->seg.numMemberships, 2);
    EXPECT_NE(add->seg.headedChain, kNoChain);
    EXPECT_TRUE(add->hadTwoOutstanding);
    EXPECT_EQ(iq->twoOutstanding.value(), 1.0);
    EXPECT_EQ(iq->chainsInUse(), 3u);
}

TEST_F(SegFixture, SameChainOperandsMergeToOneMembership)
{
    auto iq = makeIq();
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    auto dep = makeInst(2, Opcode::ADDI, intReg(3), intReg(2), kInvalidReg);
    dep->staticInst.imm = 1;
    dispatch(*iq, dep);
    // Both operands of `add` come (transitively) from the same chain.
    auto add = makeInst(3, Opcode::ADD, intReg(4), intReg(2), intReg(3));
    dispatch(*iq, add);
    EXPECT_EQ(add->seg.numMemberships, 1);
    EXPECT_EQ(add->seg.headedChain, kNoChain);
    EXPECT_FALSE(add->hadTwoOutstanding);
    // Tracks the *later* operand: load(4) + addi(1) = 5.
    EXPECT_EQ(add->seg.memberships[0].delay, 5);
}

TEST_F(SegFixture, LrpRestrictsToOneChainAndNoNewHead)
{
    params.useLrp = true;
    auto iq = makeIq();
    auto load_a = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    auto load_b = makeInst(2, Opcode::LD, intReg(3), intReg(1));
    dispatch(*iq, load_a);
    dispatch(*iq, load_b);

    const Addr add_pc = 0x1000 + 3 * kInstBytes;
    for (int i = 0; i < 4; ++i)
        lrp.update(add_pc, false);  // right operand arrives later

    auto add = makeInst(3, Opcode::ADD, intReg(4), intReg(2), intReg(3));
    dispatch(*iq, add);
    EXPECT_EQ(add->seg.numMemberships, 1);
    EXPECT_EQ(add->seg.headedChain, kNoChain);
    EXPECT_TRUE(add->lrpUsed);
    EXPECT_FALSE(add->lrpPredictedLeft);
    EXPECT_EQ(add->seg.memberships[0].chain, load_b->seg.headedChain);
    EXPECT_EQ(iq->chainsInUse(), 2u);  // no third chain
}

TEST_F(SegFixture, ChainExhaustionStallsDispatch)
{
    params.maxChains = 1;
    auto iq = makeIq();
    auto load_a = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load_a);
    auto load_b = makeInst(2, Opcode::LD, intReg(3), intReg(1));
    EXPECT_FALSE(iq->canInsert(load_b));
    EXPECT_GT(iq->chainStalls.value(), 0.0);
    // A chainless instruction still dispatches.
    auto nop = makeInst(3, Opcode::NOP);
    EXPECT_TRUE(iq->canInsert(nop));
}

TEST_F(SegFixture, ChainFreedAfterWritebackDrain)
{
    params.maxChains = 1;
    auto iq = makeIq();
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    iq->issueSelect(cycle, rec.acceptAll());
    iq->onLoadComplete(load, cycle);
    iq->onWriteback(load, cycle);
    EXPECT_EQ(iq->chainsInUse(), 1u);  // still draining
    // After the wire-drain delay the chain wire is reusable.
    for (unsigned i = 0; i < iq->numSegments() + 3; ++i)
        tick(*iq);
    EXPECT_EQ(iq->chainsInUse(), 0u);
    auto load_b = makeInst(2, Opcode::LD, intReg(3), intReg(1));
    EXPECT_TRUE(iq->canInsert(load_b));
}

TEST_F(SegFixture, SquashRemovesInstructionsAndRestoresTable)
{
    auto iq = makeIq();
    auto nop = makeInst(1, Opcode::NOP);
    dispatch(*iq, nop);
    auto load = makeInst(2, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    auto dep = makeInst(3, Opcode::ADD, intReg(3), intReg(2), intReg(1));
    dispatch(*iq, dep);
    EXPECT_EQ(iq->occupancy(), 3u);
    EXPECT_EQ(iq->chainsInUse(), 1u);

    // Squash the load and its dependent (youngest first, as the core
    // does), keeping only seq 1.
    iq->onSquashInst(dep);
    iq->onSquashInst(load);
    iq->squash(1);
    EXPECT_EQ(iq->occupancy(), 1u);

    // The register info entry for r2 must be restored: a new reader of
    // r2 sees an available operand (pre-load state), not the squashed
    // load's chain.
    scoreboard.setReady(intReg(2));
    auto reader = makeInst(4, Opcode::ADD, intReg(4), intReg(2), intReg(1));
    dispatch(*iq, reader);
    EXPECT_EQ(reader->seg.numMemberships, 0);
}

TEST_F(SegFixture, PromotionLimitedByIssueWidthBandwidth)
{
    params.enableBypass = false;
    params.issueWidth = 2;
    auto iq = makeIq();
    // Six ready instructions in the top segment? Top holds only 4.
    std::vector<DynInstPtr> insts;
    for (SeqNum s = 1; s <= 4; ++s) {
        auto inst = makeInst(s, Opcode::NOP);
        dispatch(*iq, inst);
        insts.push_back(inst);
    }
    tick(*iq);
    // Only issueWidth (2) promoted; the oldest two go first.
    EXPECT_EQ(insts[0]->seg.segment, 2);
    EXPECT_EQ(insts[1]->seg.segment, 2);
    EXPECT_EQ(insts[2]->seg.segment, 3);
    EXPECT_EQ(insts[3]->seg.segment, 3);
}

TEST_F(SegFixture, PromotionLimitedByPreviousCycleFreeCount)
{
    params.enableBypass = true;
    auto iq = makeIq();
    // Fill segment 0 with unready loads (they never issue).
    std::vector<DynInstPtr> blockers;
    scoreboard.clearReady(intReg(1));
    for (SeqNum s = 1; s <= 4; ++s) {
        auto ld = makeInst(s, Opcode::LD, intReg(20 + s), intReg(1));
        dispatch(*iq, ld);
        EXPECT_EQ(ld->seg.segment, 0);
        blockers.push_back(ld);
    }
    // A ready instruction lands in segment 1 and cannot promote while
    // segment 0 shows no free entries.
    auto ready = makeInst(5, Opcode::NOP);
    dispatch(*iq, ready);
    EXPECT_EQ(ready->seg.segment, 1);
    tick(*iq);
    EXPECT_EQ(ready->seg.segment, 1);

    // Make one blocker issue; the free entry becomes visible to the
    // promotion logic one cycle later (previous-cycle rule).
    scoreboard.setReady(intReg(1));
    iq->issueSelect(cycle, rec.acceptAll());
    EXPECT_GE(rec.issued.size(), 1u);
    tick(*iq);  // free count recorded this cycle
    iq->issueSelect(cycle, rec.rejectAll());  // no further issue
    tick(*iq);
    EXPECT_EQ(ready->seg.segment, 0);
}

TEST_F(SegFixture, PushdownMovesIneligibleWorkDownward)
{
    params.numEntries = 32;
    params.segmentSize = 16;  // 2 segments
    params.issueWidth = 4;
    params.enableBypass = false;
    auto iq = makeIq();

    // A never-ready load heads a chain; its dependents are ineligible.
    scoreboard.clearReady(intReg(1));
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    tick(*iq);
    tick(*iq);  // the load promotes to segment 0 (delay 0) and waits

    std::vector<DynInstPtr> deps;
    for (SeqNum s = 2; s <= 14; ++s) {  // 13 insts: free(seg1)=3 < IW
        auto dep = makeInst(s, Opcode::ADD, intReg(20 + s), intReg(2),
                            intReg(3));
        dispatch(*iq, dep);
        deps.push_back(dep);
    }
    ASSERT_EQ(iq->segmentOccupancy(1), 13u);
    tick(*iq);
    // Segment 1 nearly full, segment 0 nearly empty: pushdown kicks in
    // even though no dependent is eligible by delay value.
    EXPECT_GT(iq->pushdownPromotions.value(), 0.0);
    EXPECT_GT(iq->segmentOccupancy(0), 1u);
}

TEST_F(SegFixture, DeadlockDetectedAndRecovered)
{
    params.numEntries = 4;
    params.segmentSize = 2;  // 2 tiny segments
    auto iq = makeIq();

    // A never-ready load plus dependents fill both segments; nothing
    // can issue or promote and nothing is in flight -> deadlock.
    scoreboard.clearReady(intReg(1));
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    for (SeqNum s = 2; s <= 4; ++s) {
        auto dep = makeInst(s, Opcode::ADD, intReg(10 + s), intReg(2),
                            intReg(3));
        ASSERT_TRUE(iq->canInsert(dep));
        scoreboard.clearReady(dep->physDst);
        iq->insert(dep, cycle);
    }
    EXPECT_EQ(iq->occupancy(), 4u);

    for (int i = 0; i < 4; ++i) {
        iq->issueSelect(cycle, rec.acceptAll());
        iq->tick(++cycle, /*core_busy=*/false);
    }
    EXPECT_GT(iq->deadlockCycles.value(), 0.0);
    EXPECT_GT(iq->deadlockRecoveries.value(), 0.0);

    // Recovery must preserve occupancy (nothing lost) and keep the
    // queue functional: making the load ready drains everything.
    EXPECT_EQ(iq->occupancy(), 4u);
    scoreboard.setReady(intReg(1));
    scoreboard.setReady(intReg(2));
    scoreboard.setReady(intReg(3));
    for (int i = 0; i < 20 && iq->occupancy() > 0; ++i) {
        iq->issueSelect(cycle, rec.acceptAll());
        iq->tick(++cycle, false);
    }
    EXPECT_EQ(iq->occupancy(), 0u);
}

TEST_F(SegFixture, NoDeadlockFlagWhileCoreBusy)
{
    params.numEntries = 4;
    params.segmentSize = 2;
    auto iq = makeIq();
    scoreboard.clearReady(intReg(1));
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    for (int i = 0; i < 4; ++i)
        iq->tick(++cycle, /*core_busy=*/true);
    EXPECT_EQ(iq->deadlockCycles.value(), 0.0);
}

TEST_F(SegFixture, Seg0AdmitsDelayZeroAndOne)
{
    // Paper 3.1: delay 1 is allowed into the bottom segment to enable
    // back-to-back issue of single-cycle dependent pairs.
    params.enableBypass = false;
    params.numEntries = 8;
    params.segmentSize = 4;  // 2 segments
    auto iq = makeIq();
    auto prod = makeInst(1, Opcode::ADD, intReg(2), intReg(1), intReg(1));
    dispatch(*iq, prod);
    auto dep = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(2));
    dispatch(*iq, dep);
    // The producer's operands were available, so its result is tracked
    // as a pure countdown: the dependent starts at delay = exec latency
    // = 1, which the bottom segment's threshold of 2 admits - this is
    // what enables back-to-back single-cycle dependent pairs.
    ASSERT_EQ(dep->seg.numMemberships, 1);
    EXPECT_EQ(dep->seg.memberships[0].delay, 1);
    EXPECT_TRUE(dep->seg.memberships[0].selfTimed);
    tick(*iq);
    EXPECT_EQ(prod->seg.segment, 0);
    EXPECT_EQ(dep->seg.segment, 0);  // delay 1 < threshold 2
}

TEST_F(SegFixture, OccupancyAndStatsSampled)
{
    auto iq = makeIq();
    dispatch(*iq, makeInst(1, Opcode::NOP));
    dispatch(*iq, makeInst(2, Opcode::NOP));
    tick(*iq);
    EXPECT_EQ(iq->occupancyAvg.samples(), 1u);
    EXPECT_DOUBLE_EQ(iq->occupancyAvg.value(), 2.0);
    EXPECT_EQ(iq->instsInserted.value(), 2.0);
}

TEST_F(SegFixture, TwoChainInstructionGatedByLaterChain)
{
    // Paper 3.2: an instruction on two chains "dynamically chooses the
    // larger value (indicating the later-arriving operand)".
    params.enableBypass = false;
    auto iq = makeIq();
    scoreboard.clearReady(intReg(1));
    auto fast_load = makeInst(1, Opcode::LD, intReg(2), intReg(3));
    auto slow_load = makeInst(2, Opcode::LD, intReg(4), intReg(1));
    dispatch(*iq, fast_load);
    dispatch(*iq, slow_load);
    auto add = makeInst(3, Opcode::ADD, intReg(5), intReg(2), intReg(4));
    dispatch(*iq, add);
    ASSERT_EQ(add->seg.numMemberships, 2);

    // Issue only the fast head: one membership self-times toward zero,
    // but the other (slow) chain still pins the effective delay, so
    // the instruction must not reach segment 0.
    for (int i = 0; i < 12; ++i) {
        iq->issueSelect(cycle, [&](const DynInstPtr &inst) {
            return inst == fast_load;
        });
        tick(*iq);
    }
    int fast_delay = -1, slow_delay = -1;
    for (int m = 0; m < 2; ++m) {
        if (add->seg.memberships[m].chain == fast_load->seg.headedChain)
            fast_delay = add->seg.memberships[m].delay;
        else
            slow_delay = add->seg.memberships[m].delay;
    }
    EXPECT_EQ(fast_delay, 0);
    EXPECT_GT(slow_delay, 1);
    EXPECT_GT(add->seg.segment, 0);
}

TEST_F(SegFixture, HmpMispredictionFloodsSegmentZero)
{
    // Paper 4.4: "predicting a miss reference as a hit ... will cause
    // a potentially large number of instructions dependent on the load
    // value to flood segment 0 well in advance of becoming ready."
    // Verify the mechanism (not the performance): with no chain, the
    // dependants count down and promote regardless of the load.
    params.useHmp = true;
    auto iq = makeIq();
    const Addr load_pc = 0x1000 + 1 * kInstBytes;
    for (int i = 0; i < 15; ++i)
        hmp.update(load_pc, true);  // train: predicted hit

    scoreboard.clearReady(intReg(1));  // the load can never issue
    auto load = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, load);
    ASSERT_EQ(load->seg.headedChain, kNoChain);  // HMP said hit

    std::vector<DynInstPtr> deps;
    for (SeqNum s = 2; s <= 7; ++s) {
        auto dep = makeInst(s, Opcode::ADD, intReg(10 + s), intReg(2),
                            intReg(3));
        dispatch(*iq, dep);
        deps.push_back(dep);
    }
    // Countdown memberships expire and the dependants flood segment 0
    // even though the load never issued; once it fills with non-ready
    // instructions the rest wedge behind it - the paper's "performance
    // degrades severely" scenario.
    for (int i = 0; i < 10; ++i)
        tick(*iq);
    EXPECT_EQ(iq->segmentOccupancy(0), params.segmentSize);
    unsigned ready = 0, in_seg0 = 0;
    for (const auto &dep : deps) {
        in_seg0 += dep->seg.segment == 0 ? 1 : 0;
        ready += iq->operandsReady(*dep) ? 1 : 0;
    }
    EXPECT_GE(in_seg0, 3u);   // the flood reached the issue buffer...
    EXPECT_EQ(ready, 0u);     // ...but none of them can actually issue
}
