/**
 * @file
 * The functional (architectural) SRV simulator.  Serves as the golden
 * reference for the out-of-order pipeline: after a pipelined run, the
 * committed architectural state must match this core's state exactly.
 */

#ifndef SCIQ_ISA_FUNCTIONAL_CORE_HH
#define SCIQ_ISA_FUNCTIONAL_CORE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/exec.hh"
#include "isa/program.hh"
#include "isa/sparse_memory.hh"

namespace sciq {

class FunctionalCore : public ExecContext
{
  public:
    explicit FunctionalCore(const Program &prog);

    /** Execute one instruction; returns false once halted. */
    bool step();

    /**
     * Run until HALT or max_insts executed.
     * @return number of instructions executed by this call.
     */
    std::uint64_t run(std::uint64_t max_insts = ~0ULL);

    bool halted() const { return isHalted; }
    Addr pc() const { return curPc; }
    std::uint64_t instCount() const { return executed; }

    /** PC and outcome of the most recently executed instruction. */
    Addr lastPc() const { return prevPc; }
    const ExecResult &lastResult() const { return prevResult; }
    const Instruction *lastInst() const { return prevInst; }

    std::uint64_t reg(RegIndex r) const { return regs[r]; }
    double fregAsDouble(unsigned n) const;

    SparseMemory &memory() { return mem; }
    const SparseMemory &memory() const { return mem; }

    /** The owned program copy (checkpointing fingerprints it). */
    const Program &prog() const { return program; }

    /**
     * Serialize the architectural state (registers, PC, halt flag,
     * instruction count and the memory image).  The program itself is
     * not written: a checkpoint is only valid against the identical
     * program, which the checkpoint layer verifies by checksum.
     */
    void save(serial::Writer &w) const;

    /**
     * Restore architectural state saved by save().  Last-instruction
     * introspection (lastPc/lastInst/lastResult) resets to empty; the
     * core must be at a step boundary, which save() guarantees.
     */
    void restore(serial::Reader &r);

    const std::array<std::uint64_t, kNumArchRegs> &regFile() const
    {
        return regs;
    }

    // ExecContext interface.
    std::uint64_t readReg(RegIndex r) override { return regs[r]; }
    void writeReg(RegIndex r, std::uint64_t v) override { regs[r] = v; }
    std::uint64_t
    readMem(Addr addr, unsigned size) override
    {
        return mem.read(addr, size);
    }
    void
    writeMem(Addr addr, unsigned size, std::uint64_t v) override
    {
        mem.write(addr, size, v);
    }

  private:
    /** Owned copy so callers may pass temporaries safely. */
    Program program;
    SparseMemory mem;
    std::array<std::uint64_t, kNumArchRegs> regs{};
    Addr curPc;
    bool isHalted = false;
    std::uint64_t executed = 0;

    Addr prevPc = 0;
    ExecResult prevResult{};
    const Instruction *prevInst = nullptr;
};

} // namespace sciq

#endif // SCIQ_ISA_FUNCTIONAL_CORE_HH
