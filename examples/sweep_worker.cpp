/**
 * @file
 * Distributed-sweep worker: connects to a sweep_serve coordinator over
 * an AF_UNIX socket or TCP, leases jobs one at a time and streams
 * results back (DESIGN.md §17/§18).
 *
 * Point every worker of a fleet at the same ckpt_dir= and the
 * cross-process producer election makes the whole fleet execute each
 * distinct warm-up exactly once.
 *
 * A worker survives coordinator restarts: on EOF or a missed heartbeat
 * deadline it keeps its unacked result, reconnects with capped
 * jittered backoff, and redelivers.
 *
 * Usage:
 *   sweep_worker socket=/tmp/sweep.sock name=w0 ckpt_dir=/tmp/ckpt
 *   sweep_worker connect=coordinator-host:7070 name=w1
 */

#include <iostream>
#include <memory>

#include "common/config.hh"
#include "sim/fault_injector.hh"
#include "sim/shard.hh"
#include "sim/worker_proto.hh"

using namespace sciq;

int
main(int argc, char **argv)
{
    ConfigMap args = ConfigMap::fromArgs(argc, argv);
    if (args.has("help")) {
        std::cout <<
            "keys: socket=PATH          coordinator AF_UNIX socket\n"
            "      connect=HOST:PORT    coordinator TCP endpoint\n"
            "      name=ID              worker name for logs\n"
            "      ckpt_dir=DIR         shared warm-state store\n"
            "      retries=N backoff_ms=N artifact_dir=DIR\n"
            "      connect_timeout_ms=N\n"
            "      reconnects=N reconnect_ms=N   coordinator-loss "
            "retry policy\n"
            "      fault_worker_abort=N fault_conn_drop=N fault_seed=N\n"
            "      (chaos testing: _exit(137) in place of the Nth "
            "result /\n"
            "      sever the connection at the Nth result send)\n";
        return 0;
    }
    const std::string complaint = args.unknownKeyMessage(
        {"socket", "connect", "name", "ckpt_dir", "retries",
         "backoff_ms", "artifact_dir", "connect_timeout_ms",
         "reconnects", "reconnect_ms", "fault_worker_abort",
         "fault_conn_drop", "fault_seed", "help"});
    if (!complaint.empty()) {
        std::cerr << complaint << "\n";
        return 2;
    }

    WorkerOptions options;
    try {
        if (args.has("connect")) {
            // Validate up front so a typo fails with a what-to-write
            // message instead of a late connect error.
            options.endpoint =
                tcpEndpoint(args.getString("connect")).str();
        } else {
            options.endpoint = args.getString("socket");
        }
    } catch (const std::exception &e) {
        std::cerr << "sweep_worker: " << e.what() << "\n";
        return 2;
    }
    if (options.endpoint.empty()) {
        std::cerr << "sweep_worker: socket= or connect= is required\n";
        return 2;
    }
    options.name = args.getString("name", "worker");
    options.ckptDir = args.getString("ckpt_dir");
    options.maxRetries = static_cast<unsigned>(args.getInt("retries", 2));
    options.backoffMs =
        static_cast<unsigned>(args.getInt("backoff_ms", 10));
    options.artifactDir = args.getString("artifact_dir");
    options.connectTimeoutMs =
        static_cast<unsigned>(args.getInt("connect_timeout_ms", 10'000));
    options.maxReconnects =
        static_cast<unsigned>(args.getInt("reconnects", 8));
    options.reconnectBackoffMs =
        static_cast<unsigned>(args.getInt("reconnect_ms", 100));
    options.abortExits = true;
    if (args.has("fault_worker_abort") || args.has("fault_conn_drop")) {
        options.faults = std::make_shared<FaultInjector>(
            static_cast<std::uint64_t>(args.getInt("fault_seed", 1)));
        options.faults->abortWorker =
            args.getInt("fault_worker_abort", 0);
        options.faults->dropConnection =
            args.getInt("fault_conn_drop", 0);
    }

    const WorkerReport report = runWorker(options);
    std::cout << options.name << ": ran " << report.jobsRun << " jobs, "
              << report.restored << " restored a warm-up, "
              << report.reconnects << " reconnects, "
              << report.redelivered << " redelivered\n";
    if (!report.error.empty()) {
        std::cerr << options.name << ": " << report.error << "\n";
        return 1;
    }
    return report.drained ? 0 : 1;
}
