file(REMOVE_RECURSE
  "CMakeFiles/sciq_sim.dir/fast_forward.cc.o"
  "CMakeFiles/sciq_sim.dir/fast_forward.cc.o.d"
  "CMakeFiles/sciq_sim.dir/pipe_trace.cc.o"
  "CMakeFiles/sciq_sim.dir/pipe_trace.cc.o.d"
  "CMakeFiles/sciq_sim.dir/sim_config.cc.o"
  "CMakeFiles/sciq_sim.dir/sim_config.cc.o.d"
  "CMakeFiles/sciq_sim.dir/simulator.cc.o"
  "CMakeFiles/sciq_sim.dir/simulator.cc.o.d"
  "libsciq_sim.a"
  "libsciq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
