/**
 * @file
 * SweepRunner: deterministic result ordering under parallel execution,
 * worker-count handling, error propagation, and the JSON emitter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "sim/sweep.hh"

using namespace sciq;

namespace {

std::vector<SimConfig>
smallConfigSet()
{
    std::vector<SimConfig> cfgs;
    for (const auto &wl : {"swim", "gcc"}) {
        for (unsigned size : {32u, 64u}) {
            SimConfig seg = makeSegmentedConfig(size, 32, true, true, wl);
            seg.wl.iterations = 200;
            cfgs.push_back(seg);
        }
        SimConfig ideal = makeIdealConfig(64, wl);
        ideal.wl.iterations = 200;
        cfgs.push_back(ideal);
    }
    return cfgs;
}

/** Every field of RunResult, bit-for-bit. */
void
expectIdentical(const RunResult &a, const RunResult &b, std::size_t i)
{
    EXPECT_EQ(a.workload, b.workload) << "config " << i;
    EXPECT_EQ(a.iqKind, b.iqKind) << "config " << i;
    EXPECT_EQ(a.iqSize, b.iqSize) << "config " << i;
    EXPECT_EQ(a.chains, b.chains) << "config " << i;
    EXPECT_EQ(a.cycles, b.cycles) << "config " << i;
    EXPECT_EQ(a.insts, b.insts) << "config " << i;
    EXPECT_EQ(a.ipc, b.ipc) << "config " << i;
    EXPECT_EQ(a.avgChains, b.avgChains) << "config " << i;
    EXPECT_EQ(a.peakChains, b.peakChains) << "config " << i;
    EXPECT_EQ(a.hmpAccuracy, b.hmpAccuracy) << "config " << i;
    EXPECT_EQ(a.hmpCoverage, b.hmpCoverage) << "config " << i;
    EXPECT_EQ(a.lrpMispredictRate, b.lrpMispredictRate) << "config " << i;
    EXPECT_EQ(a.branchMispredictRate, b.branchMispredictRate)
        << "config " << i;
    EXPECT_EQ(a.iqOccupancyAvg, b.iqOccupancyAvg) << "config " << i;
    EXPECT_EQ(a.seg0ReadyAvg, b.seg0ReadyAvg) << "config " << i;
    EXPECT_EQ(a.seg0OccupancyAvg, b.seg0OccupancyAvg) << "config " << i;
    EXPECT_EQ(a.deadlockCycleFrac, b.deadlockCycleFrac) << "config " << i;
    EXPECT_EQ(a.twoOutstandingFrac, b.twoOutstandingFrac)
        << "config " << i;
    EXPECT_EQ(a.headsFromLoadsFrac, b.headsFromLoadsFrac)
        << "config " << i;
    EXPECT_EQ(a.l1dMissRate, b.l1dMissRate) << "config " << i;
    EXPECT_EQ(a.l1dDelayedHitFrac, b.l1dDelayedHitFrac) << "config " << i;
    EXPECT_EQ(a.segActiveAvg, b.segActiveAvg) << "config " << i;
    EXPECT_EQ(a.segCyclesActive, b.segCyclesActive) << "config " << i;
    EXPECT_EQ(a.validated, b.validated) << "config " << i;
    EXPECT_EQ(a.haltedCleanly, b.haltedCleanly) << "config " << i;
}

TEST(SweepRunner, ParallelMatchesSerialBitForBit)
{
    const std::vector<SimConfig> cfgs = smallConfigSet();

    std::vector<RunResult> serial = SweepRunner(1).run(cfgs);
    std::vector<RunResult> parallel = SweepRunner(4).run(cfgs);

    ASSERT_EQ(serial.size(), cfgs.size());
    ASSERT_EQ(parallel.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        expectIdentical(serial[i], parallel[i], i);
}

TEST(SweepRunner, PreservesInputOrder)
{
    const std::vector<SimConfig> cfgs = smallConfigSet();
    std::vector<RunResult> results = SweepRunner(4).run(cfgs);
    ASSERT_EQ(results.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        EXPECT_EQ(results[i].workload, cfgs[i].workload);
        EXPECT_EQ(results[i].iqSize, cfgs[i].core.iq.numEntries);
        EXPECT_TRUE(results[i].haltedCleanly);
        EXPECT_TRUE(results[i].validated);
    }
}

TEST(SweepRunner, MoreJobsThanConfigs)
{
    SimConfig cfg = makeSegmentedConfig(32, 16, false, false, "swim");
    cfg.wl.iterations = 100;
    std::vector<RunResult> r = SweepRunner(16).run({cfg});
    ASSERT_EQ(r.size(), 1u);
    EXPECT_TRUE(r[0].haltedCleanly);
}

TEST(SweepRunner, EmptyBatch)
{
    EXPECT_TRUE(SweepRunner(4).run({}).empty());
}

TEST(SweepRunner, DefaultJobsIsNonZero)
{
    EXPECT_GE(SweepRunner(0).jobs(), 1u);
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

TEST(SweepRunner, ProgressCallbackSeesEveryRun)
{
    const std::vector<SimConfig> cfgs = smallConfigSet();
    std::size_t calls = 0;
    std::size_t last_done = 0;
    SweepRunner(2).run(cfgs,
                       [&](std::size_t done, std::size_t total,
                           const RunResult &r) {
                           ++calls;
                           EXPECT_EQ(total, cfgs.size());
                           EXPECT_GT(done, last_done);
                           last_done = done;
                           EXPECT_FALSE(r.workload.empty());
                       });
    EXPECT_EQ(calls, cfgs.size());
}

TEST(SweepRunner, WorkerExceptionsPropagate)
{
    std::vector<SimConfig> cfgs = smallConfigSet();
    cfgs[2].workload = "no-such-workload";
    EXPECT_THROW(SweepRunner(4).run(cfgs), FatalError);
    EXPECT_THROW(SweepRunner(1).run(cfgs), FatalError);
}

TEST(SweepJson, EmitsEveryResultWithFields)
{
    SimConfig cfg = makeSegmentedConfig(32, 16, true, false, "swim");
    cfg.wl.iterations = 100;
    std::vector<RunResult> results = SweepRunner(1).run({cfg, cfg});

    std::ostringstream os;
    writeResultsJson(os, results);
    const std::string json = os.str();

    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"workload\": \"swim\""), std::string::npos);
    EXPECT_NE(json.find("\"iq_kind\": \"segmented\""), std::string::npos);
    EXPECT_NE(json.find("\"ipc\":"), std::string::npos);
    EXPECT_NE(json.find("\"halted_cleanly\": true"), std::string::npos);
    // Two result objects.
    std::size_t count = 0;
    for (std::size_t pos = json.find("\"workload\"");
         pos != std::string::npos;
         pos = json.find("\"workload\"", pos + 1)) {
        ++count;
    }
    EXPECT_EQ(count, 2u);
}

TEST(SweepJson, EscapesStrings)
{
    RunResult r;
    r.workload = "we\"ird\\wl\n";
    r.iqKind = "ideal";
    std::ostringstream os;
    writeResultsJson(os, {r});
    EXPECT_NE(os.str().find("we\\\"ird\\\\wl\\n"), std::string::npos);
}

} // namespace
