/** @file Tests for the Palacharla-style dependence-steered FIFO IQ. */

#include <gtest/gtest.h>

#include "iq/fifo_iq.hh"
#include "iq_harness.hh"

using namespace sciq;
using namespace sciq::test;

namespace {

struct FifoFixture : public ::testing::Test
{
    FifoFixture() : scoreboard(128), rec(scoreboard)
    {
        params.numFifos = 4;
        params.fifoDepth = 4;
        params.numEntries = 16;
        params.issueWidth = 4;
    }

    std::unique_ptr<FifoIq>
    makeIq()
    {
        return std::make_unique<FifoIq>(params, scoreboard, fu);
    }

    void
    dispatch(FifoIq &iq, const DynInstPtr &inst)
    {
        ASSERT_TRUE(iq.canInsert(inst));
        if (inst->physDst != kInvalidReg)
            scoreboard.clearReady(inst->physDst);
        iq.insert(inst, 0);
    }

    IqParams params;
    Scoreboard scoreboard;
    FuPool fu;
    IssueRecorder rec;
};

} // namespace

TEST_F(FifoFixture, DependentSteeredBehindProducer)
{
    auto iq = makeIq();
    auto prod = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, prod);
    auto dep = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(1));
    dispatch(*iq, dep);
    EXPECT_EQ(dep->fifoId, prod->fifoId);
    EXPECT_EQ(iq->steeredBehindProducer.value(), 1.0);
}

TEST_F(FifoFixture, ReadyInstructionGetsEmptyFifo)
{
    auto iq = makeIq();
    auto a = makeInst(1, Opcode::NOP);
    auto b = makeInst(2, Opcode::NOP);
    dispatch(*iq, a);
    dispatch(*iq, b);
    EXPECT_NE(a->fifoId, b->fifoId);
    EXPECT_EQ(iq->steeredToEmpty.value(), 2.0);
}

TEST_F(FifoFixture, BuriedProducerForcesEmptyFifo)
{
    auto iq = makeIq();
    auto prod = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, prod);
    auto mid = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(1));
    dispatch(*iq, mid);  // now the producer is no longer a tail
    auto dep = makeInst(3, Opcode::ADD, intReg(4), intReg(2), intReg(1));
    dispatch(*iq, dep);
    EXPECT_NE(dep->fifoId, prod->fifoId);
}

TEST_F(FifoFixture, DispatchStallsWithoutEmptyFifo)
{
    auto iq = makeIq();
    // Four independent unready chains occupy all four FIFOs.
    scoreboard.clearReady(intReg(1));
    for (SeqNum s = 1; s <= 4; ++s) {
        auto ld = makeInst(s, Opcode::LD, intReg(10 + s), intReg(1));
        dispatch(*iq, ld);
    }
    // A fifth independent instruction has nowhere to go.
    auto indep = makeInst(5, Opcode::NOP);
    EXPECT_FALSE(iq->canInsert(indep));
    EXPECT_GT(iq->noEmptyFifoStalls.value(), 0.0);
    // But a dependent of one of the tails can still dispatch.
    auto dep = makeInst(6, Opcode::ADD, intReg(20), intReg(11), intReg(0));
    EXPECT_TRUE(iq->canInsert(dep));
}

TEST_F(FifoFixture, OnlyFifoHeadsConsideredForIssue)
{
    auto iq = makeIq();
    scoreboard.clearReady(intReg(1));
    auto head = makeInst(1, Opcode::LD, intReg(2), intReg(1));  // unready
    dispatch(*iq, head);
    // A ready instruction behind it cannot issue.
    auto behind = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(0));
    dispatch(*iq, behind);
    scoreboard.setReady(intReg(2));  // pretend the value arrived early
    iq->issueSelect(1, rec.acceptAll());
    EXPECT_TRUE(rec.issued.empty());

    scoreboard.setReady(intReg(1));
    iq->issueSelect(2, rec.acceptAll());
    ASSERT_EQ(rec.issued.size(), 1u);
    EXPECT_EQ(rec.issued[0]->seq, 1u);
    iq->issueSelect(3, rec.acceptAll());
    EXPECT_EQ(rec.issued.size(), 2u);
}

TEST_F(FifoFixture, HeadsIssueOldestFirstAcrossFifos)
{
    auto iq = makeIq();
    std::vector<DynInstPtr> insts;
    for (SeqNum s = 1; s <= 4; ++s) {
        auto inst = makeInst(s, Opcode::NOP);
        dispatch(*iq, inst);
        insts.push_back(inst);
    }
    params.issueWidth = 4;
    iq->issueSelect(1, rec.acceptAll());
    ASSERT_EQ(rec.issued.size(), 4u);
    for (SeqNum s = 1; s <= 4; ++s)
        EXPECT_EQ(rec.issued[s - 1]->seq, s);
}

TEST_F(FifoFixture, FuRejectDoesNotBlockOtherHeads)
{
    auto iq = makeIq();
    auto a = makeInst(1, Opcode::NOP);
    auto b = makeInst(2, Opcode::NOP);
    dispatch(*iq, a);
    dispatch(*iq, b);
    iq->issueSelect(1, [&](const DynInstPtr &inst) {
        return inst->seq == 2;  // pretend seq 1's unit is busy
    });
    EXPECT_EQ(iq->occupancy(), 1u);
    EXPECT_TRUE(b->issued || !a->issued);
}

TEST_F(FifoFixture, SquashClearsYoungerAndProducerTable)
{
    auto iq = makeIq();
    auto prod = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, prod);
    auto dep = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(1));
    dispatch(*iq, dep);
    dep->squashed = true;
    iq->squash(1);
    EXPECT_EQ(iq->occupancy(), 1u);
    // A new dependent of the squashed dest must not chase a stale
    // producer entry; it goes to an empty FIFO.
    scoreboard.setReady(intReg(3));
    auto reader = makeInst(3, Opcode::ADD, intReg(4), intReg(3), intReg(1));
    dispatch(*iq, reader);
    EXPECT_NE(reader->fifoId, -1);
}

TEST_F(FifoFixture, FifoDepthLimitSteersElsewhere)
{
    params.fifoDepth = 2;
    auto iq = makeIq();
    scoreboard.clearReady(intReg(1));
    auto prod = makeInst(1, Opcode::LD, intReg(2), intReg(1));
    dispatch(*iq, prod);
    auto dep1 = makeInst(2, Opcode::ADD, intReg(3), intReg(2), intReg(0));
    dispatch(*iq, dep1);  // fills the FIFO to depth 2
    auto dep2 = makeInst(3, Opcode::ADD, intReg(4), intReg(3), intReg(0));
    dispatch(*iq, dep2);  // producer fifo full: must go elsewhere
    EXPECT_NE(dep2->fifoId, prod->fifoId);
}
