file(REMOVE_RECURSE
  "CMakeFiles/sciq_mem.dir/cache.cc.o"
  "CMakeFiles/sciq_mem.dir/cache.cc.o.d"
  "CMakeFiles/sciq_mem.dir/hierarchy.cc.o"
  "CMakeFiles/sciq_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/sciq_mem.dir/main_memory.cc.o"
  "CMakeFiles/sciq_mem.dir/main_memory.cc.o.d"
  "libsciq_mem.a"
  "libsciq_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciq_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
