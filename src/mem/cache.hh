/**
 * @file
 * Event-driven set-associative cache model with MSHRs.
 *
 * Models what the paper's evaluation depends on: non-blocking caches
 * with up to N outstanding misses, *delayed hits* (accesses that merge
 * into an in-flight MSHR), LRU replacement, write-back/write-allocate
 * policy, and finite bandwidth to the next level.
 */

#ifndef SCIQ_MEM_CACHE_HH
#define SCIQ_MEM_CACHE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/event_queue.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace sciq {

/** How an access was satisfied (for predictors and statistics). */
enum class AccessOutcome : std::uint8_t
{
    Hit,        ///< line present in this cache
    DelayedHit, ///< merged into an in-flight miss (MSHR hit)
    Miss        ///< primary miss, fetched from below
};

/** Abstract "thing that can supply cache lines" (next level or memory). */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Request one line.  `done(cycle)` fires when the line data has
     * arrived back at the requester.
     */
    virtual void request(Addr line_addr, bool is_write, Cycle now,
                         std::function<void(Cycle)> done) = 0;
};

struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 64;
    unsigned latency = 3;        ///< lookup == hit latency, cycles
    unsigned mshrs = 32;         ///< max outstanding line misses
    unsigned fillBandwidth = 1;  ///< cycles between fills we can source
};

/**
 * One cache level.  Acts as a MemLevel for the level above it, so
 * L1 -> L2 -> memory compose naturally.
 */
class Cache : public MemLevel
{
  public:
    /** Completion callback: (completion cycle, how it was satisfied). */
    using AccessDone = std::function<void(Cycle, AccessOutcome)>;
    /** Early notification that the lookup missed (chain suspension). */
    using MissNotify = std::function<void(Cycle)>;

    Cache(const CacheParams &params, MemLevel &below, EventQueue &events);

    /**
     * CPU-side access.  The lookup completes `latency` cycles from
     * `now`; a hit calls `done` then.  A miss calls `on_miss` (if
     * provided) at lookup time and `done` when the fill arrives.
     */
    void access(Addr addr, bool is_write, Cycle now, AccessDone done,
                MissNotify on_miss = nullptr);

    /** MemLevel interface: the level above requests a line from us. */
    void request(Addr line_addr, bool is_write, Cycle now,
                 std::function<void(Cycle)> done) override;

    /** True if the line is currently resident (for tests). */
    bool isResident(Addr addr) const;

    /**
     * Install a line directly, bypassing timing (warm-up).  Models
     * measuring from a checkpoint with warm caches, as the paper's
     * 20-billion-instruction fast-forward does.
     */
    void warmInsert(Addr addr);

    /**
     * Fused isResident() + warmInsert(): returns the pre-insert
     * residency and installs the line if it was absent, with a single
     * set scan.  State-identical to the two separate calls; this is
     * the functional-warming hot path.
     */
    bool warmAccess(Addr addr);

    /** Invalidate everything (used between warmup configurations). */
    void flush();

    /**
     * Serialize the tag array (tags, valid/dirty bits, LRU state) and
     * the statistics counters.  Only legal while the cache is quiescent
     * (no MSHRs in flight): checkpoints are taken after functional
     * warming, before any timed access.  Throws serial::Error otherwise.
     */
    void save(serial::Writer &w) const;

    /**
     * Restore a tag-array snapshot into this cache.  The geometry
     * (sets, associativity, line size) must match the snapshot's;
     * mismatches throw serial::Error.
     */
    void restore(serial::Reader &r);

    unsigned lineBytes() const { return params_.lineBytes; }
    const CacheParams &params() const { return params_; }

    stats::Group &statGroup() { return statsGroup; }

    // Statistics (public so the harness can read them directly).
    stats::Scalar accesses;
    stats::Scalar hits;
    stats::Scalar misses;        ///< primary misses
    stats::Scalar delayedHits;   ///< merged into an in-flight MSHR
    stats::Scalar writebacks;
    stats::Scalar mshrFullStalls;

  private:
    struct Line
    {
        Addr tag = ~0ULL;
        bool valid = false;
        bool dirty = false;
        Cycle lastUse = 0;
    };

    struct Mshr
    {
        Addr lineAddr = 0;
        bool anyWrite = false;
        std::vector<std::function<void(Cycle)>> lineWaiters;
    };

    Addr lineAddrOf(Addr addr) const
    {
        return addr & ~static_cast<Addr>(params_.lineBytes - 1);
    }

    std::size_t
    setIndex(Addr line_addr) const
    {
        // lineBytes and numSets are asserted powers of two, so the
        // index is a shift+mask (a runtime division here dominated the
        // functional-warming profile).
        return (line_addr >> lineShift) & (numSets - 1);
    }

    Line *lookup(Addr line_addr);

    /**
     * Warm-path residency probe + install in a single set scan;
     * state-identical to `if (!lookup(la)) installLine(la, false, 0)`
     * plus setting the warm memo.  Returns pre-insert residency.
     */
    bool warmTouch(Addr line_addr);

    /** Allocate/merge an MSHR; may defer if all MSHRs are busy. */
    void startMiss(Addr line_addr, bool is_write, Cycle now,
                   std::function<void(Cycle)> cb);

    /** Install the filled line and wake the MSHR's waiters. */
    void handleFill(Addr line_addr, Cycle when);

    /** Victim selection + dirty-eviction writeback. */
    void installLine(Addr line_addr, bool dirty, Cycle now);

    CacheParams params_;
    MemLevel &below;
    EventQueue &events;
    stats::Group statsGroup;

    std::size_t numSets;
    unsigned lineShift = 0;   ///< log2(lineBytes)
    std::vector<Line> lines;  // numSets * assoc, set-major

    /**
     * Warm-path memo: these lines are known resident, so a repeated
     * warmAccess/warmInsert is a few compares instead of a set scan.
     * Sound because installs are the only line mutation during
     * functional warming: any installLine (the install may evict a
     * memoized line), flush() or restore() invalidates the whole memo.
     * Pure acceleration state — never serialized, never consulted by
     * the timed path.  Which lines happen to be memoized affects speed
     * only, never state: a memo hit returns exactly what the set scan
     * would.
     */
    static constexpr std::size_t kWarmMemoSlots = 4;
    static constexpr Addr kNoWarmLine = ~0ULL;
    std::array<Addr, kWarmMemoSlots> warmLines;
    std::size_t warmMemoNext = 0;

    bool
    warmMemoHas(Addr la) const
    {
        for (Addr w : warmLines)
            if (w == la)
                return true;
        return false;
    }

    void
    warmMemoAdd(Addr la)
    {
        warmLines[warmMemoNext] = la;
        warmMemoNext = (warmMemoNext + 1) % kWarmMemoSlots;
    }

    void warmMemoClear() { warmLines.fill(kNoWarmLine); }

    std::unordered_map<Addr, Mshr> mshrFile;

    /** Next cycle at which we may source a fill upward (bandwidth). */
    Cycle nextFillFree = 0;
};

} // namespace sciq

#endif // SCIQ_MEM_CACHE_HH
