/** @file Timing and behaviour tests for the cache and memory models. */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/main_memory.hh"

using namespace sciq;

namespace {

/** A fixed-latency backing level that records requests. */
class FakeLevel : public MemLevel
{
  public:
    FakeLevel(EventQueue &ev, unsigned latency) : events(ev), lat(latency)
    {
    }

    void
    request(Addr line, bool is_write, Cycle now,
            std::function<void(Cycle)> done) override
    {
        requests.push_back({line, is_write, now});
        Cycle when = now + lat;
        events.schedule(when, [done = std::move(done), when]() mutable {
            done(when);
        });
    }

    struct Req
    {
        Addr line;
        bool write;
        Cycle at;
    };

    std::vector<Req> requests;

  private:
    EventQueue &events;
    unsigned lat;
};

struct Result
{
    Cycle when = 0;
    AccessOutcome outcome{};
    bool done = false;
};

Cache::AccessDone
capture(Result &r)
{
    return [&r](Cycle when, AccessOutcome o) {
        r.when = when;
        r.outcome = o;
        r.done = true;
    };
}

CacheParams
smallCache()
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = 1024;  // 16 lines
    p.assoc = 2;
    p.lineBytes = 64;
    p.latency = 3;
    p.mshrs = 4;
    p.fillBandwidth = 1;
    return p;
}

} // namespace

TEST(Cache, MissThenHitLatency)
{
    EventQueue ev;
    FakeLevel below(ev, 20);
    Cache c(smallCache(), below, ev);

    Result miss;
    c.access(0x1000, false, 0, capture(miss));
    ev.runUntil(100);
    ASSERT_TRUE(miss.done);
    EXPECT_EQ(miss.outcome, AccessOutcome::Miss);
    // lookup (3) + below (20) = 23.
    EXPECT_EQ(miss.when, 23u);
    ASSERT_EQ(below.requests.size(), 1u);
    EXPECT_EQ(below.requests[0].line, 0x1000u);

    Result hit;
    c.access(0x1008, false, 100, capture(hit));  // same line
    ev.runUntil(200);
    ASSERT_TRUE(hit.done);
    EXPECT_EQ(hit.outcome, AccessOutcome::Hit);
    EXPECT_EQ(hit.when, 103u);  // hit latency only
    EXPECT_EQ(below.requests.size(), 1u);  // no new fill
}

TEST(Cache, DelayedHitMergesIntoMshr)
{
    EventQueue ev;
    FakeLevel below(ev, 50);
    Cache c(smallCache(), below, ev);

    Result first, second;
    c.access(0x2000, false, 0, capture(first));
    c.access(0x2010, false, 1, capture(second));  // same line, in flight
    ev.runUntil(200);
    ASSERT_TRUE(first.done && second.done);
    EXPECT_EQ(first.outcome, AccessOutcome::Miss);
    EXPECT_EQ(second.outcome, AccessOutcome::DelayedHit);
    EXPECT_EQ(first.when, second.when);  // both complete with the fill
    EXPECT_EQ(below.requests.size(), 1u);  // one fill serves both
    EXPECT_EQ(c.delayedHits.value(), 1.0);
    EXPECT_EQ(c.misses.value(), 1.0);
}

TEST(Cache, MissNotificationFiresAtLookup)
{
    EventQueue ev;
    FakeLevel below(ev, 50);
    Cache c(smallCache(), below, ev);

    Cycle miss_at = 0;
    Result r;
    c.access(0x3000, false, 10, capture(r),
             [&](Cycle when) { miss_at = when; });
    ev.runUntil(200);
    EXPECT_EQ(miss_at, 13u);  // miss detected at lookup time
    EXPECT_GT(r.when, miss_at);

    // Hits never call the miss notification.
    miss_at = 0;
    Result h;
    c.access(0x3000, false, 200, capture(h),
             [&](Cycle when) { miss_at = when; });
    ev.runUntil(300);
    EXPECT_EQ(miss_at, 0u);
}

TEST(Cache, LruEviction)
{
    EventQueue ev;
    FakeLevel below(ev, 10);
    CacheParams p = smallCache();  // 8 sets x 2 ways
    Cache c(p, below, ev);

    // Three lines mapping to the same set (stride = numSets*lineBytes).
    const Addr stride = 8 * 64;
    Result r;
    c.access(0x0, false, 0, capture(r));
    ev.runUntil(50);
    c.access(stride, false, 50, capture(r));
    ev.runUntil(100);
    // Touch line 0 so `stride` becomes LRU.
    c.access(0x0, false, 100, capture(r));
    ev.runUntil(150);
    c.access(2 * stride, false, 150, capture(r));
    ev.runUntil(250);

    EXPECT_TRUE(c.isResident(0x0));
    EXPECT_FALSE(c.isResident(stride));  // evicted (LRU)
    EXPECT_TRUE(c.isResident(2 * stride));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    EventQueue ev;
    FakeLevel below(ev, 10);
    Cache c(smallCache(), below, ev);

    const Addr stride = 8 * 64;
    Result r;
    c.access(0x0, true, 0, capture(r));  // write-allocate, dirty
    ev.runUntil(50);
    c.access(stride, false, 50, capture(r));
    ev.runUntil(100);
    c.access(2 * stride, false, 100, capture(r));
    ev.runUntil(200);

    bool saw_writeback = false;
    for (const auto &req : below.requests)
        saw_writeback |= req.write && req.line == 0x0;
    EXPECT_TRUE(saw_writeback);
    EXPECT_EQ(c.writebacks.value(), 1.0);
}

TEST(Cache, MshrLimitDefersMisses)
{
    EventQueue ev;
    FakeLevel below(ev, 100);
    CacheParams p = smallCache();
    p.mshrs = 2;
    Cache c(p, below, ev);

    Result r[3];
    c.access(0x0000, false, 0, capture(r[0]));
    c.access(0x1000, false, 0, capture(r[1]));
    c.access(0x2000, false, 0, capture(r[2]));  // must wait for an MSHR
    ev.runUntil(400);
    ASSERT_TRUE(r[0].done && r[1].done && r[2].done);
    EXPECT_GT(c.mshrFullStalls.value(), 0.0);
    // The third miss completes a full memory latency after the first
    // two free their MSHRs.
    EXPECT_GT(r[2].when, r[0].when);
}

TEST(Cache, FillBandwidthSerialisesLowerLevel)
{
    EventQueue ev;
    MainMemoryParams mp;
    mp.latency = 10;
    mp.bytesPerCycle = 8;
    mp.lineBytes = 64;  // 8 cycles per line on the bus
    MainMemory mem(mp, ev);

    std::vector<Cycle> done;
    for (int i = 0; i < 3; ++i) {
        mem.request(0x1000 + 64 * i, false, 0,
                    [&done](Cycle when) { done.push_back(when); });
    }
    ev.runUntil(200);
    ASSERT_EQ(done.size(), 3u);
    // First: 10 + 8 = 18; subsequent transfers queue on the bus.
    EXPECT_EQ(done[0], 18u);
    EXPECT_EQ(done[1], 26u);
    EXPECT_EQ(done[2], 34u);
}

TEST(Hierarchy, L1MissL2HitLatency)
{
    HierarchyParams hp;
    MemHierarchy h(hp);

    // Warm the L2 with a line, then flush the L1 only.
    Result warm;
    h.dcache().access(0x8000, false, 0, capture(warm));
    h.tick(500);
    ASSERT_TRUE(warm.done);
    h.dcache().flush();

    Result r;
    h.dcache().access(0x8000, false, 500, capture(r));
    h.tick(1000);
    ASSERT_TRUE(r.done);
    EXPECT_EQ(r.outcome, AccessOutcome::Miss);
    // L1 lookup 3 + L2 lookup 10 + transfer 1 = 14.
    EXPECT_EQ(r.when, 514u);
}

TEST(Hierarchy, FullMissGoesToMemory)
{
    HierarchyParams hp;
    MemHierarchy h(hp);

    Result r;
    h.dcache().access(0x9000, false, 0, capture(r));
    h.tick(500);
    ASSERT_TRUE(r.done);
    // 3 (L1) + 10 (L2) + 100 (mem) + 8 (bus) + 1 (L2->L1) = 122.
    EXPECT_EQ(r.when, 122u);
    EXPECT_EQ(h.memory().reads.value(), 1.0);
}

TEST(Hierarchy, IndependentMissesOverlap)
{
    // The mechanism the whole paper leans on: a large window overlaps
    // many memory accesses, so completion is bandwidth- rather than
    // latency-limited.
    HierarchyParams hp;
    MemHierarchy h(hp);

    std::vector<Cycle> done;
    for (int i = 0; i < 8; ++i) {
        h.dcache().access(0xA0000 + 64 * i, false, 0,
                          [&done](Cycle when, AccessOutcome) {
                              done.push_back(when);
                          });
    }
    h.tick(1000);
    ASSERT_EQ(done.size(), 8u);
    // Serialised misses would need 8 x 122 cycles; overlapped they
    // finish within one latency plus seven bus slots.
    EXPECT_LT(done.back(), 122u + 8u * 8u + 10u);
}

TEST(Hierarchy, FlushAllEmptiesCaches)
{
    MemHierarchy h;
    Result r;
    h.dcache().access(0xB000, false, 0, capture(r));
    h.tick(500);
    EXPECT_TRUE(h.dcache().isResident(0xB000));
    h.flushAll();
    EXPECT_FALSE(h.dcache().isResident(0xB000));
    EXPECT_FALSE(h.l2cache().isResident(0xB000));
}
