#include "core/dyn_inst.hh"

#include "core/dyn_inst_pool.hh"

namespace sciq {

void
DynInstPtr::release(DynInst *p) noexcept
{
    if (p->pool_)
        p->pool_->recycle(p);
    else
        delete p;
}

} // namespace sciq
