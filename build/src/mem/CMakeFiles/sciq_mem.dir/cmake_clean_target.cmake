file(REMOVE_RECURSE
  "libsciq_mem.a"
)
