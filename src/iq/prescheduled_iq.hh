/**
 * @file
 * Michaud & Seznec-style prescheduling instruction queue, the paper's
 * main quantitative comparison point (section 6.3).
 *
 * Instructions are placed at dispatch into a *scheduling array* line
 * chosen by their predicted ready time (a quasi-static schedule built
 * from predicted operation latencies; loads are predicted to hit).
 * The array shifts one line per cycle into a small fully-associative
 * issue buffer, and instructions issue from the issue buffer only.
 * Latency mispredictions cannot reflow the array - instructions that
 * arrive early simply sit in the issue buffer, which is the weakness
 * the segmented IQ addresses.
 */

#ifndef SCIQ_IQ_PRESCHEDULED_IQ_HH
#define SCIQ_IQ_PRESCHEDULED_IQ_HH

#include <array>
#include <deque>
#include <vector>

#include "iq/iq_base.hh"

namespace sciq {

class PrescheduledIq : public IqBase
{
  public:
    PrescheduledIq(const IqParams &params, const Scoreboard &scoreboard,
                   const FuPool &fu);

    bool canInsert(const DynInstPtr &inst) override;
    void insert(const DynInstPtr &inst, Cycle cycle) override;
    void issueSelect(Cycle cycle, const TryIssue &try_issue) override;
    void tick(Cycle cycle, bool core_busy) override;
    void onCommit(const DynInstPtr &inst) override;
    void onSquashInst(const DynInstPtr &inst) override;
    void squash(SeqNum youngest_kept) override;
    std::size_t occupancy() const override;

    /** Like the segmented IQ, prescheduling adds a dispatch stage. */
    unsigned extraDispatchCycles() const override { return 1; }

    unsigned numLines() const { return static_cast<unsigned>(lines.size()); }
    std::size_t issueBufferOccupancy() const { return issueBuffer.size(); }

    stats::Scalar arrayStallCycles;   ///< shifts blocked by a full buffer
    stats::Average issueBufferOcc;

  private:
    struct Undo
    {
        SeqNum seq;
        RegIndex archDst;
        std::uint64_t prevReady;
    };

    /**
     * Predicted scheduling-array line for this instruction.
     *
     * Ready times are tracked in *shift counts* rather than absolute
     * cycles: when the array stalls (full issue buffer), everything in
     * it slips together, so shift-based predictions keep dependents
     * behind their producers and the array free of priority
     * inversions (which would deadlock the issue buffer).
     */
    unsigned predictedDelay(const DynInst &inst) const;

    unsigned predictedLatency(const DynInst &inst) const;

    /** First line index at or after `want` with a free slot, or -1. */
    int findLine(unsigned want) const;

    std::deque<std::vector<DynInstPtr>> lines;  ///< [0] = oldest line
    std::vector<DynInstPtr> issueBuffer;        ///< seq-sorted

    /** Predicted ready time per architectural register, in shifts. */
    std::array<std::uint64_t, kNumArchRegs> regReadyShift{};

    /** Total successful array shifts so far. */
    std::uint64_t shiftCount = 0;

    std::deque<Undo> undoLog;
};

} // namespace sciq

#endif // SCIQ_IQ_PRESCHEDULED_IQ_HH
