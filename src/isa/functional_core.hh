/**
 * @file
 * The functional (architectural) SRV simulator.  Serves as the golden
 * reference for the out-of-order pipeline: after a pipelined run, the
 * committed architectural state must match this core's state exactly.
 *
 * Two interpreter paths produce bit-identical results (DESIGN.md §14):
 *
 *   - step(): fetch-decode-execute one instruction through the virtual
 *     ExecContext interface (the original path, kept as the
 *     differential reference and for single-step introspection);
 *   - runBlocks(): replay pre-decoded basic blocks from a BbCache with
 *     a devirtualized execute context (direct register-file access and
 *     page-cached memory), dispatching block-at-a-time.  This is the
 *     hot path for functional warming (5-10x the step() throughput).
 *
 * run() uses the block path when the cache is enabled (the default;
 * construct with bb_cache=false or `bb_cache=0` for the reference).
 */

#ifndef SCIQ_ISA_FUNCTIONAL_CORE_HH
#define SCIQ_ISA_FUNCTIONAL_CORE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>

#include "common/types.hh"
#include "isa/bb_cache.hh"
#include "isa/exec.hh"
#include "isa/exec_impl.hh"
#include "isa/program.hh"
#include "isa/sparse_memory.hh"

namespace sciq {

class FunctionalCore : public ExecContext
{
  public:
    /**
     * @param bb_cache enable the pre-decoded basic-block path for
     * run()/runBlocks().  Off = the step()-based reference; results
     * are bit-identical either way.
     */
    explicit FunctionalCore(const Program &prog, bool bb_cache = true);

    /** Execute one instruction; returns false once halted. */
    bool step();

    /**
     * Run until HALT or max_insts executed.  Stops exactly at the
     * instruction boundary: a stop mid-block executes a split-block
     * epilogue, never a whole block.
     * @return number of instructions executed by this call.
     */
    std::uint64_t run(std::uint64_t max_insts = ~0ULL);

    /**
     * Block-at-a-time execution with a per-instruction hook, called as
     * hook(const BbOp &, Addr pc, const ExecResult &) after each
     * instruction retires.  This is the functional-warming fast path:
     * the hook
     * trains caches/predictors per instruction while the dispatch
     * overhead is paid per block.  Requires the block cache; callers
     * must fall back to step() when blockCacheEnabled() is false.
     * @return number of instructions executed by this call.
     */
    template <typename Hook>
    std::uint64_t runBlocks(std::uint64_t max_insts, Hook &&hook);

    bool blockCacheEnabled() const { return bbCache != nullptr; }

    /** The block cache, or nullptr when disabled (observability). */
    const BbCache *blockCache() const { return bbCache.get(); }

    bool halted() const { return isHalted; }
    Addr pc() const { return curPc; }
    std::uint64_t instCount() const { return executed; }

    /** PC and outcome of the most recently executed instruction. */
    Addr lastPc() const { return prevPc; }
    const ExecResult &lastResult() const { return prevResult; }
    const Instruction *lastInst() const { return prevInst; }

    std::uint64_t reg(RegIndex r) const { return regs[r]; }
    double fregAsDouble(unsigned n) const;

    SparseMemory &memory() { return mem; }
    const SparseMemory &memory() const { return mem; }

    /** The owned program copy (checkpointing fingerprints it). */
    const Program &prog() const { return program; }

    /**
     * Serialize the architectural state (registers, PC, halt flag,
     * instruction count and the memory image).  The program itself is
     * not written: a checkpoint is only valid against the identical
     * program, which the checkpoint layer verifies by checksum.  The
     * block cache is pure acceleration state and never serialized, so
     * blobs are byte-identical with the cache on or off.
     */
    void save(serial::Writer &w) const;

    /**
     * Restore architectural state saved by save().  Last-instruction
     * introspection (lastPc/lastInst/lastResult) resets to empty; the
     * core must be at a step boundary, which save() guarantees.
     */
    void restore(serial::Reader &r);

    const std::array<std::uint64_t, kNumArchRegs> &regFile() const
    {
        return regs;
    }

    // ExecContext interface.
    std::uint64_t readReg(RegIndex r) override { return regs[r]; }
    void writeReg(RegIndex r, std::uint64_t v) override { regs[r] = v; }
    std::uint64_t
    readMem(Addr addr, unsigned size) override
    {
        return mem.read(addr, size);
    }
    void
    writeMem(Addr addr, unsigned size, std::uint64_t v) override
    {
        mem.write(addr, size, v);
    }

  private:
    /**
     * Devirtualized execute context for the block path: inline
     * register-file access plus a direct-mapped page-pointer cache so
     * in-page accesses skip SparseMemory's hash lookups.  Reads of
     * untouched pages never allocate (the serialized memory image — and
     * with it every checkpoint blob — must not depend on the
     * interpreter path).  Stack-local to one runBlocks() call, so
     * restore()/clear() can never invalidate a live cached pointer.
     */
    class DirectContext
    {
      public:
        DirectContext(std::array<std::uint64_t, kNumArchRegs> &regs_,
                      SparseMemory &mem_)
            : regs(regs_), mem(mem_)
        {
            slotPageNo.fill(~0ULL);
        }

        std::uint64_t readReg(RegIndex r) { return regs[r]; }
        void writeReg(RegIndex r, std::uint64_t v) { regs[r] = v; }

        std::uint64_t
        readMem(Addr addr, unsigned size)
        {
            const Addr off = addr & (SparseMemory::kPageSize - 1);
            if (off + size <= SparseMemory::kPageSize) [[likely]] {
                const Addr page_no = addr >> SparseMemory::kPageShift;
                const std::size_t slot = page_no & (kPageSlots - 1);
                if (slotPageNo[slot] != page_no) {
                    std::uint8_t *p = mem.pageData(addr);
                    if (p == nullptr)
                        return 0;  // untouched page reads as zero
                    slotPageNo[slot] = page_no;
                    slotPtr[slot] = p;
                }
                return loadLe(slotPtr[slot] + off, size);
            }
            return mem.read(addr, size);  // page-crossing slow path
        }

        void
        writeMem(Addr addr, unsigned size, std::uint64_t v)
        {
            const Addr off = addr & (SparseMemory::kPageSize - 1);
            if (off + size <= SparseMemory::kPageSize) [[likely]] {
                const Addr page_no = addr >> SparseMemory::kPageShift;
                const std::size_t slot = page_no & (kPageSlots - 1);
                if (slotPageNo[slot] != page_no) {
                    slotPtr[slot] = mem.pageDataForWrite(addr);
                    slotPageNo[slot] = page_no;
                }
                storeLe(slotPtr[slot] + off, size, v);
                return;
            }
            mem.write(addr, size, v);  // page-crossing slow path
        }

      private:
        static std::uint64_t
        loadLe(const std::uint8_t *p, unsigned size)
        {
            if constexpr (std::endian::native == std::endian::little) {
                std::uint64_t v = 0;
                std::memcpy(&v, p, size);
                return v;
            } else {
                std::uint64_t v = 0;
                for (unsigned i = 0; i < size; ++i)
                    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
                return v;
            }
        }

        static void
        storeLe(std::uint8_t *p, unsigned size, std::uint64_t v)
        {
            if constexpr (std::endian::native == std::endian::little) {
                std::memcpy(p, &v, size);
            } else {
                for (unsigned i = 0; i < size; ++i)
                    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
            }
        }

        std::array<std::uint64_t, kNumArchRegs> &regs;
        SparseMemory &mem;

        /**
         * Direct-mapped page-pointer cache.  Slots only ever hold
         * allocated pages (absent-page reads return 0 uncached), and
         * SparseMemory page pointers are stable until clear()/restore(),
         * which cannot happen while this stack-local context lives.
         */
        static constexpr std::size_t kPageSlots = 64;
        std::array<Addr, kPageSlots> slotPageNo;
        std::array<std::uint8_t *, kPageSlots> slotPtr{};
    };

    /** Owned copy so callers may pass temporaries safely. */
    Program program;
    SparseMemory mem;
    std::array<std::uint64_t, kNumArchRegs> regs{};
    Addr curPc;
    bool isHalted = false;
    std::uint64_t executed = 0;

    Addr prevPc = 0;
    ExecResult prevResult{};
    const Instruction *prevInst = nullptr;

    std::unique_ptr<BbCache> bbCache;
};

template <typename Hook>
std::uint64_t
FunctionalCore::runBlocks(std::uint64_t max_insts, Hook &&hook)
{
    SCIQ_ASSERT(bbCache != nullptr,
                "runBlocks() requires the basic-block cache");
    const std::uint64_t start = executed;
    DirectContext xc(regs, mem);
    BasicBlock *bb = nullptr;

    while (!isHalted && executed - start < max_insts) {
        if (bb == nullptr) {
            bb = bbCache->lookup(curPc);
            if (bb == nullptr) {
                // Off the program image: step() reproduces the
                // reference panic (message and counts identical).
                step();
                continue;
            }
        }

        // Split-block epilogue: never execute past the instruction
        // budget — checkpoint keys/blobs depend on exact stops.
        const std::uint64_t budget = max_insts - (executed - start);
        const std::size_t n = std::min<std::uint64_t>(
            bb->ops.size(), budget);

        const Addr base_pc = bb->startPc;
        const BbOp *ops = bb->ops.data();
        ExecResult res{};
        for (std::size_t i = 0; i < n; ++i) {
            const BbOp &op = ops[i];
            const Addr op_pc = base_pc + i * kInstBytes;
            res = executeImpl(op.inst, op_pc, xc);
            hook(op, op_pc, res);
            if (res.halted) [[unlikely]] {
                executed += i + 1;
                isHalted = true;
                prevPc = op_pc;
                prevResult = res;
                prevInst = op.src;
                curPc = op_pc;  // step() leaves the PC at the HALT
                return executed - start;
            }
        }
        executed += n;

        const BbOp &last = ops[n - 1];
        prevPc = base_pc + (n - 1) * kInstBytes;
        prevResult = res;
        prevInst = last.src;
        curPc = res.nextPc;

        if (n == bb->ops.size()) {
            bb = bbCache->successor(bb, res.nextPc, res.taken);
        } else {
            // Stopped mid-block: the budget is exhausted; a later run
            // resumes through lookup(curPc), discovering the suffix
            // block on first use.
            bb = nullptr;
        }
    }
    return executed - start;
}

} // namespace sciq

#endif // SCIQ_ISA_FUNCTIONAL_CORE_HH
