file(REMOVE_RECURSE
  "CMakeFiles/sciq_common.dir/config.cc.o"
  "CMakeFiles/sciq_common.dir/config.cc.o.d"
  "CMakeFiles/sciq_common.dir/logging.cc.o"
  "CMakeFiles/sciq_common.dir/logging.cc.o.d"
  "CMakeFiles/sciq_common.dir/stats.cc.o"
  "CMakeFiles/sciq_common.dir/stats.cc.o.d"
  "libsciq_common.a"
  "libsciq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
