/**
 * @file
 * Function-unit pool with the Table 1 configuration: 8 units each of
 * integer ALU, integer multiply(/divide), FP add/sub, FP mul/div/sqrt
 * and data-cache read/write ports.  All operations are fully pipelined
 * except divide and square root, which occupy their unit to completion.
 */

#ifndef SCIQ_CORE_FU_POOL_HH
#define SCIQ_CORE_FU_POOL_HH

#include <array>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/opcodes.hh"

namespace sciq {

struct FuPoolParams
{
    unsigned intAluUnits = 8;
    unsigned intMulUnits = 8;
    unsigned fpAddUnits = 8;
    unsigned fpMulUnits = 8;   ///< shared by FP mul/div/sqrt
    unsigned cachePorts = 8;   ///< data-cache rd/wr ports

    unsigned intAluLat = 1;
    unsigned intMulLat = 3;
    unsigned intDivLat = 20;
    unsigned fpAddLat = 2;
    unsigned fpMulLat = 4;
    unsigned fpDivLat = 12;
    unsigned fpSqrtLat = 24;
};

class FuPool
{
  public:
    explicit FuPool(const FuPoolParams &params = {});

    /** Execution latency of an op class (branches/mem use the int ALU). */
    unsigned latency(OpClass cls) const;

    /** Largest latency any op class can report (writeback horizon). */
    unsigned maxLatency() const;

    /**
     * Try to start an operation of class `cls` at `cycle`.
     * @return true and reserve a unit, false on a structural hazard.
     */
    bool tryAcquire(OpClass cls, Cycle cycle);

    /** Try to reserve a data-cache port for this cycle. */
    bool tryAcquirePort(Cycle cycle);

    /** Must be called once per cycle before any acquires. */
    void beginCycle(Cycle cycle);

    stats::Group &statGroup() { return statsGroup; }

    stats::Scalar structuralStalls;

  private:
    /** One pool of identical units, each free when busyUntil <= now. */
    struct Pool
    {
        unsigned units = 8;
        std::vector<Cycle> busyUntil;
    };

    enum PoolId : unsigned
    {
        PoolIntAlu,
        PoolIntMul,
        PoolFpAdd,
        PoolFpMul,
        PoolPorts,
        NumPools
    };

    PoolId poolOf(OpClass cls) const;

    FuPoolParams params;
    stats::Group statsGroup;
    std::array<Pool, NumPools> pools;
};

} // namespace sciq

#endif // SCIQ_CORE_FU_POOL_HH
