/** @file Unit tests for the key=value configuration store. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/logging.hh"

using namespace sciq;

TEST(ConfigMap, ParseFromArgs)
{
    const char *argv[] = {"prog", "iq_size=512", "workload=swim",
                          "positional", "hmp=true"};
    ConfigMap cfg = ConfigMap::fromArgs(5, argv);
    EXPECT_EQ(cfg.getInt("iq_size", 0), 512);
    EXPECT_EQ(cfg.getString("workload"), "swim");
    EXPECT_TRUE(cfg.getBool("hmp", false));
    ASSERT_EQ(cfg.positional().size(), 1u);
    EXPECT_EQ(cfg.positional()[0], "positional");
}

TEST(ConfigMap, DefaultsWhenAbsent)
{
    ConfigMap cfg;
    EXPECT_EQ(cfg.getInt("x", 7), 7);
    EXPECT_EQ(cfg.getString("y", "def"), "def");
    EXPECT_TRUE(cfg.getBool("z", true));
    EXPECT_DOUBLE_EQ(cfg.getDouble("w", 2.5), 2.5);
    EXPECT_FALSE(cfg.has("x"));
}

TEST(ConfigMap, BoolSpellings)
{
    ConfigMap cfg;
    for (const char *t : {"1", "true", "yes", "on", "TRUE", "On"}) {
        cfg.set("k", t);
        EXPECT_TRUE(cfg.getBool("k", false)) << t;
    }
    for (const char *f : {"0", "false", "no", "off", "False"}) {
        cfg.set("k", f);
        EXPECT_FALSE(cfg.getBool("k", true)) << f;
    }
}

TEST(ConfigMap, HexAndNegativeIntegers)
{
    ConfigMap cfg;
    cfg.set("a", "0x100");
    cfg.set("b", "-42");
    EXPECT_EQ(cfg.getInt("a", 0), 256);
    EXPECT_EQ(cfg.getInt("b", 0), -42);
}

TEST(ConfigMap, MalformedValuesFatal)
{
    ConfigMap cfg;
    cfg.set("a", "notanumber");
    EXPECT_THROW(cfg.getInt("a", 0), FatalError);
    EXPECT_THROW(cfg.getDouble("a", 0), FatalError);
    cfg.set("b", "maybe");
    EXPECT_THROW(cfg.getBool("b", false), FatalError);
}

TEST(ConfigMap, ParseLineRejectsMalformed)
{
    ConfigMap cfg;
    EXPECT_FALSE(cfg.parseLine("novalue"));
    EXPECT_FALSE(cfg.parseLine("=value"));
    EXPECT_TRUE(cfg.parseLine("k=v"));
    EXPECT_EQ(cfg.getString("k"), "v");
}

TEST(ConfigMap, LastSetWins)
{
    ConfigMap cfg;
    cfg.set("k", "1");
    cfg.set("k", "2");
    EXPECT_EQ(cfg.getInt("k", 0), 2);
}
