/** @file Tests for static-instruction operand and classification helpers. */

#include <gtest/gtest.h>

#include "isa/instruction.hh"

using namespace sciq;

namespace {

Instruction
make(Opcode op, RegIndex rd = kInvalidReg, RegIndex rs1 = kInvalidReg,
     RegIndex rs2 = kInvalidReg, std::int64_t imm = 0)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.imm = imm;
    return i;
}

} // namespace

TEST(Instruction, RFormatSources)
{
    auto i = make(Opcode::ADD, intReg(3), intReg(1), intReg(2));
    auto s = i.srcRegs();
    EXPECT_EQ(s[0], intReg(1));
    EXPECT_EQ(s[1], intReg(2));
    EXPECT_EQ(i.dstReg(), intReg(3));
}

TEST(Instruction, ZeroRegisterIsNeverADependence)
{
    auto i = make(Opcode::ADD, intReg(3), intReg(0), intReg(2));
    auto s = i.srcRegs();
    EXPECT_EQ(s[0], kInvalidReg);
    EXPECT_EQ(s[1], intReg(2));

    auto z = make(Opcode::ADD, intReg(0), intReg(1), intReg(2));
    EXPECT_EQ(z.dstReg(), kInvalidReg);
}

TEST(Instruction, LoadHasOnlyBaseSource)
{
    auto i = make(Opcode::LD, intReg(5), intReg(6), kInvalidReg, 8);
    auto s = i.srcRegs();
    EXPECT_EQ(s[0], intReg(6));
    EXPECT_EQ(s[1], kInvalidReg);
    EXPECT_EQ(i.dstReg(), intReg(5));
    EXPECT_TRUE(i.isLoad());
    EXPECT_TRUE(i.isMem());
    EXPECT_FALSE(i.isStore());
}

TEST(Instruction, StoreHasBaseAndDataSources)
{
    Instruction i;
    i.op = Opcode::FST;
    i.rs1 = intReg(6);
    i.rs2 = fpReg(2);
    auto s = i.srcRegs();
    EXPECT_EQ(s[0], intReg(6));
    EXPECT_EQ(s[1], fpReg(2));
    EXPECT_EQ(i.dstReg(), kInvalidReg);
    EXPECT_TRUE(i.isStore());
}

TEST(Instruction, BranchClassification)
{
    auto b = make(Opcode::BNE, kInvalidReg, intReg(1), intReg(2), -4);
    EXPECT_TRUE(b.isControl());
    EXPECT_TRUE(b.isCondBranch());
    EXPECT_FALSE(b.isIndirect());
    EXPECT_EQ(b.dstReg(), kInvalidReg);

    auto j = make(Opcode::J, kInvalidReg, kInvalidReg, kInvalidReg, 10);
    EXPECT_TRUE(j.isControl());
    EXPECT_FALSE(j.isCondBranch());

    auto jr = make(Opcode::JR, kInvalidReg, intReg(31));
    EXPECT_TRUE(jr.isIndirect());
    EXPECT_TRUE(jr.isReturn());

    auto jal = make(Opcode::JAL, intReg(31), kInvalidReg, kInvalidReg, 5);
    EXPECT_TRUE(jal.isCall());
    EXPECT_EQ(jal.dstReg(), intReg(31));

    auto jalr = make(Opcode::JALR, intReg(31), intReg(7));
    EXPECT_TRUE(jalr.isCall());
    EXPECT_TRUE(jalr.isIndirect());
}

TEST(Instruction, MemSizes)
{
    EXPECT_EQ(make(Opcode::LD).memSize(), 8u);
    EXPECT_EQ(make(Opcode::FLD).memSize(), 8u);
    EXPECT_EQ(make(Opcode::LW).memSize(), 4u);
    EXPECT_EQ(make(Opcode::ST).memSize(), 8u);
    EXPECT_EQ(make(Opcode::SW).memSize(), 4u);
    EXPECT_EQ(make(Opcode::FST).memSize(), 8u);
    EXPECT_EQ(make(Opcode::ADD).memSize(), 0u);
}

TEST(Instruction, HaltAndNop)
{
    EXPECT_TRUE(make(Opcode::HALT).isHalt());
    EXPECT_TRUE(make(Opcode::NOP).isNop());
    EXPECT_FALSE(make(Opcode::NOP).isControl());
    auto s = make(Opcode::NOP).srcRegs();
    EXPECT_EQ(s[0], kInvalidReg);
    EXPECT_EQ(s[1], kInvalidReg);
}

TEST(Instruction, UnaryFpSingleSource)
{
    auto i = make(Opcode::FSQRT, fpReg(1), fpReg(2));
    auto s = i.srcRegs();
    EXPECT_EQ(s[0], fpReg(2));
    EXPECT_EQ(s[1], kInvalidReg);
    EXPECT_EQ(i.dstReg(), fpReg(1));
}

class OpClassMapping
    : public ::testing::TestWithParam<std::pair<Opcode, OpClass>>
{
};

TEST_P(OpClassMapping, OpcodeMapsToExpectedClass)
{
    auto [op, cls] = GetParam();
    EXPECT_EQ(opInfo(op).opClass, cls);
}

INSTANTIATE_TEST_SUITE_P(
    Classes, OpClassMapping,
    ::testing::Values(std::make_pair(Opcode::ADD, OpClass::IntAlu),
                      std::make_pair(Opcode::MUL, OpClass::IntMul),
                      std::make_pair(Opcode::DIV, OpClass::IntDiv),
                      std::make_pair(Opcode::FADD, OpClass::FpAdd),
                      std::make_pair(Opcode::FMUL, OpClass::FpMul),
                      std::make_pair(Opcode::FDIV, OpClass::FpDiv),
                      std::make_pair(Opcode::FSQRT, OpClass::FpSqrt),
                      std::make_pair(Opcode::LD, OpClass::MemRead),
                      std::make_pair(Opcode::FST, OpClass::MemWrite),
                      std::make_pair(Opcode::BEQ, OpClass::Branch),
                      std::make_pair(Opcode::JALR, OpClass::Jump),
                      std::make_pair(Opcode::HALT, OpClass::Halt)));
