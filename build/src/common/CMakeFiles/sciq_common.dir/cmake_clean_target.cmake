file(REMOVE_RECURSE
  "libsciq_common.a"
)
