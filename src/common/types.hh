/**
 * @file
 * Fundamental scalar types shared by every module of the simulator.
 */

#ifndef SCIQ_COMMON_TYPES_HH
#define SCIQ_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace sciq {

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Simulated byte address. */
using Addr = std::uint64_t;

/** Dynamic-instruction sequence number (monotonic across fetch). */
using SeqNum = std::uint64_t;

/** Architectural or physical register index. */
using RegIndex = std::uint16_t;

/** Chain identifier in the segmented IQ (one-hot wire per chain). */
using ChainId = std::int32_t;

/** Sentinel for "no chain". */
constexpr ChainId kNoChain = -1;

/** Sentinel for "invalid register". */
constexpr RegIndex kInvalidReg = std::numeric_limits<RegIndex>::max();

/** Sentinel for "never" / unknown cycle. */
constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Sentinel sequence number meaning "no instruction". */
constexpr SeqNum kInvalidSeqNum = 0;

} // namespace sciq

#endif // SCIQ_COMMON_TYPES_HH
