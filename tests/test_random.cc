/** @file Unit tests for the deterministic xorshift PRNG. */

#include <gtest/gtest.h>

#include "common/random.hh"

using namespace sciq;

TEST(Random, DeterministicAcrossInstances)
{
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Random, BelowRespectsBound)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, RangeInclusive)
{
    Random r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    // Mean of U(0,1) should be near 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, ChanceApproximatesProbability)
{
    Random r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Random, ZeroSeedStillWorks)
{
    Random r(0);
    // Must not get stuck at zero.
    std::uint64_t x = r.next();
    std::uint64_t y = r.next();
    EXPECT_TRUE(x != 0 || y != 0);
    EXPECT_NE(x, y);
}
