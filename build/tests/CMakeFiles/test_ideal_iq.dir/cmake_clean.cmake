file(REMOVE_RECURSE
  "CMakeFiles/test_ideal_iq.dir/test_ideal_iq.cc.o"
  "CMakeFiles/test_ideal_iq.dir/test_ideal_iq.cc.o.d"
  "test_ideal_iq"
  "test_ideal_iq.pdb"
  "test_ideal_iq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ideal_iq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
