file(REMOVE_RECURSE
  "CMakeFiles/test_prescheduled_iq.dir/test_prescheduled_iq.cc.o"
  "CMakeFiles/test_prescheduled_iq.dir/test_prescheduled_iq.cc.o.d"
  "test_prescheduled_iq"
  "test_prescheduled_iq.pdb"
  "test_prescheduled_iq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prescheduled_iq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
